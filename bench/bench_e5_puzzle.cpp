// E5 (Thm. 7, "the puzzle"): a detector solving (U, k)-set agreement among
// ONE set of k+1 processes solves (Π, k)-set agreement among all n. Table:
// distinct decisions (<= k) and simulation cost vs (n, k).
#include "bench_common.hpp"

EFD_BENCH_JSON("E5")

namespace efd {
namespace {

void E5_Booster(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::int64_t steps = 0;
  std::size_t distinct = 0;
  double total_steps = 0;
  std::size_t footprint = 0;
  std::size_t writes = 0;
  for (auto _ : state) {
    const FailurePattern f = Environment(n, n - 1).sample(11, 1, 10);
    VectorOmegaK vo(k, 40);
    World w(f, vo.history(f, 11));
    const BoosterConfig cfg{"boost", n, k};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_booster_simulator(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_booster_server(cfg));
    RandomScheduler rs(11);
    const auto r = drive(w, rs, 20000000);
    if (!r.all_c_decided) throw std::runtime_error("E5: booster run did not decide");
    steps = r.steps;
    total_steps += static_cast<double>(r.steps);
    footprint = w.memory().footprint();
    writes = w.memory().write_count();
    distinct = bench::distinct_decisions(w, n).size();
    if (static_cast<int>(distinct) > k) throw std::runtime_error("E5: k bound broken");
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["distinct"] = static_cast<double>(distinct);
  bench::perf_counters(state, total_steps, footprint, writes);
  bench::json_run(state, "E5_Booster", {n, k});

  bench::table_header(
      "E5 (Thm. 7): boosting (U,k)-agreement (|U| = k+1) to all n processes",
      "n   k   inner-scope  distinct(<=k)  steps");
  efd::bench::row("%-3d %-3d %-12d %-14zu %lld\n", n, k, k + 1, distinct,
              static_cast<long long>(steps));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E5_Booster)
    ->ArgsProduct({{3, 4, 5, 6}, {1, 2}})
    ->Args({5, 3})
    ->Args({6, 4})
    ->Unit(benchmark::kMillisecond);
