// E9 (Thm. 10): the complete task hierarchy. Regenerates the classification
// table — task, maximal tolerated concurrency (of this library's solvers),
// weakest failure detector class — by exhaustive run exploration.
#include "bench_common.hpp"

#include "core/hierarchy.hpp"

EFD_BENCH_JSON("E9")

namespace efd {
namespace {

void E9_Hierarchy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<HierarchyRow> rows;
  for (auto _ : state) {
    rows = classify_standard_menu(n, 250000);
  }
  std::int64_t states = 0;
  ExploreStats merged;
  for (const auto& r : rows) {
    states += r.states_explored;
    merged.merge(r.stats);
  }
  state.counters["tasks"] = static_cast<double>(rows.size());
  state.counters["states_explored"] = static_cast<double>(states);
  state.counters["terminal_runs"] = static_cast<double>(merged.terminal_runs);
  state.counters["dedup_hits"] = static_cast<double>(merged.dedup_hits);
  bench::json_run(state, "E9_Hierarchy", {n});

  bench::table_header("E9 (Thm. 10): task hierarchy / weakest-FD classification", "");
  bench::row("%s\n", format_hierarchy(rows).c_str());
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E9_Hierarchy)->Arg(4)->Unit(benchmark::kMillisecond)->Iterations(1);
