// E2 (§2.2): with n S-processes and NO failure detector, (Π, n)-set
// agreement is solvable in every environment. Table: distinct decided values
// (must be <= live relayers) and steps, across fault loads.
#include "bench_common.hpp"

EFD_BENCH_JSON("E2")

namespace efd {
namespace {

void E2_NoAdviceSetAgreement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int faults = static_cast<int>(state.range(1));
  std::int64_t steps = 0;
  std::size_t distinct = 0;
  for (auto _ : state) {
    const FailurePattern f = Environment(n, n - 1).sample(17, faults, 10);
    TrivialFd trivial;
    World w(f, trivial.history(f, 17));
    const KsaConfig cfg{"nsa", n, n};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_nsa_noadvice_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_nsa_noadvice_server(cfg));
    RandomScheduler rs(17);
    const auto r = drive(w, rs, 500000);
    if (!r.all_c_decided) throw std::runtime_error("E2: run did not decide");
    steps = r.steps;
    distinct = bench::distinct_decisions(w, n).size();
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["distinct"] = static_cast<double>(distinct);
  bench::json_run(state, "E2_NoAdviceSetAgreement", {n, faults});

  bench::table_header("E2 (sec. 2.2): (Pi,n)-set agreement with NO detector",
                      "n   faults  distinct-decided  bound(n)  steps");
  efd::bench::row("%-3d %-7d %-17zu %-9d %lld\n", n, faults, distinct, n,
              static_cast<long long>(steps));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E2_NoAdviceSetAgreement)
    ->ArgsProduct({{3, 5, 8}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);
