// E1 (Prop. 1): the generic 1-concurrent solver decides every menu task;
// table: steps-to-decide per task and system size under 1-concurrency.
#include "bench_common.hpp"

EFD_BENCH_JSON("E1")

namespace efd {
namespace {

// The world's own telemetry (RunStats, sim/stats.hpp) plus the two memory
// figures perf_counters wants — no ad-hoc counter struct.
struct E1Run {
  RunStats stats;
  std::size_t footprint = 0;
  std::size_t writes = 0;
};

E1Run run_one_concurrent(const TaskPtr& task, std::uint64_t seed) {
  const int n = task->n_procs();
  const ValueVec in = task->sample_input(seed);
  const auto arrival = Task::participants(in);
  World w = World::failure_free(1);
  for (int i : arrival) {
    w.spawn_c(i, make_one_concurrent(task, in[static_cast<std::size_t>(i)], "p1"));
  }
  KConcurrencyScheduler sched(1, arrival, 0);
  const auto r = drive(w, sched, 1000000);
  ValueVec out = w.output_vector();
  out.resize(static_cast<std::size_t>(n));
  if (!r.all_c_decided || !task->relation(in, out)) {
    throw std::runtime_error("E1: 1-concurrent run failed for " + task->name());
  }
  return {w.run_stats(), w.memory().footprint(), w.memory().write_count()};
}

TaskPtr menu_task(int which, int n) {
  switch (which) {
    case 0:
      return std::make_shared<ConsensusTask>(n);
    case 1:
      return std::make_shared<SetAgreementTask>(n, 2);
    case 2:
      return std::make_shared<RenamingTask>(n, n - 1, n - 1);  // strong (n-1)-renaming
    case 3:
      return std::make_shared<WeakSymmetryBreakingTask>(n);
    default:
      return std::make_shared<IdentityTask>(n);
  }
}

void E1_OneConcurrent(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const TaskPtr task = menu_task(which, n);
  E1Run rs;
  double total_steps = 0;
  for (auto _ : state) {
    rs = run_one_concurrent(task, 1);
    total_steps += static_cast<double>(rs.stats.steps);
  }
  state.counters["steps"] = static_cast<double>(rs.stats.steps);
  state.counters["decides"] = static_cast<double>(rs.stats.decides);
  state.counters["null_steps"] = static_cast<double>(rs.stats.null_steps);
  state.counters["n"] = n;
  bench::perf_counters(state, total_steps, rs.footprint, rs.writes);
  bench::json_run(state, "E1_OneConcurrent", {which, n});

  bench::table_header("E1 (Prop. 1): every task is 1-concurrently solvable",
                      "task                                   n   steps-to-all-decided");
  efd::bench::row("%-38s %-3d %lld\n", task->name().c_str(), n,
                  static_cast<long long>(rs.stats.steps));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E1_OneConcurrent)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {3, 5, 8}})
    ->Unit(benchmark::kMicrosecond);
