// E12 (ablation, App. C.1 design choice): the leader-driven Paxos consensus
// under degraded advice. Tables: decision latency vs GST (how long chaotic
// leadership delays decisions, never breaking safety) and vs system size.
#include "bench_common.hpp"

EFD_BENCH_JSON("E12")

namespace efd {
namespace {

std::int64_t consensus_latency(int n, Time gst, std::uint64_t seed, bool adopt_commit_server) {
  FailurePattern f(n);
  OmegaFd omega(gst);
  World w(f, omega.history(f, seed));
  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(100 + i)));
  for (int i = 0; i < n; ++i) {
    w.spawn_s(i, adopt_commit_server ? make_consensus_server_ac(cfg) : make_consensus_server(cfg));
  }
  RandomScheduler rs(seed);
  const auto r = drive(w, rs, 5000000);
  if (!r.all_c_decided) throw std::runtime_error("E12: consensus did not decide");
  const auto vals = bench::distinct_decisions(w, n);
  if (vals.size() != 1) throw std::runtime_error("E12: agreement broken");
  return r.steps;
}

void E12_LatencyVsGst(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Time gst = state.range(1);
  const bool ac = state.range(2) != 0;
  std::int64_t steps = 0;
  for (auto _ : state) {
    steps = consensus_latency(n, gst, 5, ac);
  }
  state.counters["steps"] = static_cast<double>(steps);
  bench::json_run(state, "E12_LatencyVsGst", {n, gst, ac ? 1 : 0});

  bench::table_header("E12 (ablation): leader-driven consensus, latency vs GST",
                      "server        n   GST    steps-to-all-decided");
  efd::bench::row("%-13s %-3d %-6lld %lld\n", ac ? "adopt-commit" : "paxos", n,
                  static_cast<long long>(gst), static_cast<long long>(steps));
}

void E12_SafetyUnderChaos(benchmark::State& state) {
  // GST beyond the run: the oracle misbehaves throughout; count how many runs
  // decide anyway and verify agreement in every one of them.
  const int n = static_cast<int>(state.range(0));
  int decided_runs = 0;
  int safe_runs = 0;
  const int total = 20;
  for (auto _ : state) {
    decided_runs = 0;
    safe_runs = 0;
    for (std::uint64_t seed = 0; seed < total; ++seed) {
      FailurePattern f(n);
      OmegaFd omega(1000000);
      World w(f, omega.history(f, seed));
      const LeaderConsensusConfig cfg{"cons", n};
      for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
      for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
      RandomScheduler rs(seed);
      drive(w, rs, 30000);
      const auto vals = bench::distinct_decisions(w, n);
      if (!vals.empty()) ++decided_runs;
      if (vals.size() <= 1) ++safe_runs;
    }
  }
  state.counters["decided_runs"] = static_cast<double>(decided_runs);
  state.counters["safe_runs"] = static_cast<double>(safe_runs);
  bench::json_run(state, "E12_SafetyUnderChaos", {n});

  bench::table_header("E12b (ablation): safety with a never-stabilizing leader oracle",
                      "n   runs  decided-anyway  agreement-held");
  efd::bench::row("%-3d %-5d %-15d %d\n", n, total, decided_runs, safe_runs);
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E12_LatencyVsGst)
    ->ArgsProduct({{3, 5}, {0, 25, 100, 400}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(efd::E12_SafetyUnderChaos)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);
