// E6 (Thm. 8 / Fig. 1): extracting ¬Ωk from a detector that solves k-set
// agreement. Table: does the emulated history pass the ¬Ωk spec check, when
// does it stabilize, and how much local simulation the hunt spends.
#include "bench_common.hpp"

EFD_BENCH_JSON("E6")

namespace efd {
namespace {

struct E6Result {
  bool anti_ok = false;
  Time horizon = 0;
  Time stable_from = -1;  ///< first time after which the safe process never appears
};

E6Result run_extraction(int n, int k, int faults, std::uint64_t seed, std::int64_t steps) {
  FailurePattern f(n);
  // Crash `faults` high-indexed processes early so the hunt's witness is
  // reachable within the bench budget.
  for (int c = 0; c < faults; ++c) f.crash(n - 1 - c, 5 * (c + 1));
  auto vo = std::make_shared<VectorOmegaK>(k, 60);

  ExtractionConfig cfg;
  cfg.ns = "ex";
  cfg.n = n;
  cfg.k = k;
  cfg.explore_every = 2;
  cfg.budget0 = 4000;
  cfg.budget_step = 4000;
  cfg.max_budget = 24000;

  std::vector<ProcBody> bodies;
  for (int i = 0; i < n; ++i) bodies.push_back(make_extraction_sproc(cfg));
  const ReductionRun run = run_reduction(f, vo, seed, bodies, steps);
  const auto h = emulated_history_from_trace(run.trace, cfg);

  E6Result out;
  out.horizon = run.horizon;
  out.anti_ok = AntiOmegaK::check(k, f, *h, run.horizon);
  const int safe = f.correct_set().front();
  // Convergence time: last time `safe` appears in any correct sample.
  for (Time t = run.horizon - 1; t >= 0; --t) {
    bool seen = false;
    for (int qi : f.correct_set()) {
      const Value v = h->at(qi, t);
      for (std::size_t j = 0; j < v.size(); ++j) {
        if (v.at(j).int_or(-1) == safe) seen = true;
      }
    }
    if (seen) {
      out.stable_from = t + 1;
      break;
    }
  }
  if (out.stable_from < 0) out.stable_from = 0;
  return out;
}

void E6_Extraction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int faults = static_cast<int>(state.range(2));
  E6Result res;
  for (auto _ : state) {
    res = run_extraction(n, k, faults, 13, 6000);
  }
  state.counters["anti_ok"] = res.anti_ok ? 1 : 0;
  state.counters["stable_from"] = static_cast<double>(res.stable_from);
  bench::json_run(state, "E6_Extraction", {n, k, faults});

  bench::table_header(
      "E6 (Thm. 8 / Fig. 1): emulating anti-Omega-k from a KSA-solving detector",
      "n   k   faults  antiOmega-spec  stabilized-at  horizon");
  efd::bench::row("%-3d %-3d %-7d %-15s %-14lld %lld\n", n, k, faults,
              res.anti_ok ? "PASS" : "fail", static_cast<long long>(res.stable_from),
              static_cast<long long>(res.horizon));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E6_Extraction)
    ->Args({4, 2, 1})
    ->Args({4, 2, 2})
    ->Args({4, 3, 1})
    ->Args({5, 2, 2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
