// E13 (memory addressing): old string-keyed store vs interned RegId store.
//
// The seed's RegisterFile was an unordered_map<std::string, Value> and every
// access built the register name ("base[i]") and hashed it; its content hash
// rehashed the whole footprint per call. That legacy store is reproduced
// locally here and measured against the RegId-indexed flat-vector store of
// sim/memory.hpp on the four hot operations of the simulator: write, read,
// a collect-style sweep, and the exploration-dedup content hash. Verifies
// the tentpole claim that register access does no string construction or
// hashing: RegId ops must not scale with name length and must beat the
// string path by a wide margin.
#include "bench_common.hpp"

#include <string>
#include <unordered_map>

EFD_BENCH_JSON("E13")
EFD_BENCH_ALLOC_PROBE()

namespace efd {
namespace {

constexpr int kRegs = 256;  // footprint per store, matching mid-size runs

/// Counter + JSON epilogue shared by every E13 variant: `ops` mirrors
/// items-processed as an explicit counter so the emitted JSON is
/// self-contained (SetItemsProcessed only feeds the stdout report).
void e13_finish(benchmark::State& state, const char* name, std::int64_t items_per_iter,
                std::uint64_t allocs_delta) {
  const auto ops = static_cast<double>(state.iterations() * items_per_iter);
  state.SetItemsProcessed(state.iterations() * items_per_iter);
  state.counters["ops"] = ops;
  state.counters["ops_per_s"] = benchmark::Counter(ops, benchmark::Counter::kIsRate);
  bench::alloc_counter(state, allocs_delta, ops);
  bench::json_run(state, name);
}

/// The seed's string-keyed register file, verbatim semantics: name built and
/// hashed on every access, content hash recomputed over the whole footprint.
class LegacyRegisterFile {
 public:
  [[nodiscard]] Value read(const std::string& addr) const {
    const auto it = cells_.find(addr);
    return it == cells_.end() ? Value{} : it->second;
  }
  void write(const std::string& addr, Value v) { cells_[addr] = std::move(v); }
  [[nodiscard]] std::uint64_t content_hash() const {
    std::uint64_t acc = 0;
    for (const auto& [k, v] : cells_) {
      acc += cell_content_hash(std::hash<std::string>{}(k), v.hash());
    }
    return cell_content_hash(0x9AE16A3B2F90404FULL, acc);
  }

 private:
  std::unordered_map<std::string, Value> cells_;
};

std::string legacy_reg(const std::string& base, int i) {
  return base + "[" + std::to_string(i) + "]";
}

void E13_WriteLegacy(benchmark::State& state) {
  LegacyRegisterFile m;
  const std::string base = "e13/legacy/W";
  int i = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    m.write(legacy_reg(base, i), Value(i));
    i = (i + 1) % kRegs;
  }
  e13_finish(state, "E13_WriteLegacy", 1, bench::alloc_count() - a0);
}

void E13_WriteInterned(benchmark::State& state) {
  RegisterFile m;
  const Sym base = sym("e13/interned/W");
  int i = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    m.write(reg(base, i), Value(i));
    i = (i + 1) % kRegs;
  }
  e13_finish(state, "E13_WriteInterned", 1, bench::alloc_count() - a0);
}

void E13_ReadLegacy(benchmark::State& state) {
  LegacyRegisterFile m;
  const std::string base = "e13/legacy/R";
  for (int i = 0; i < kRegs; ++i) m.write(legacy_reg(base, i), Value(i));
  int i = 0;
  std::int64_t sink = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    sink += m.read(legacy_reg(base, i)).int_or(0);
    i = (i + 1) % kRegs;
  }
  benchmark::DoNotOptimize(sink);
  e13_finish(state, "E13_ReadLegacy", 1, bench::alloc_count() - a0);
}

void E13_ReadInterned(benchmark::State& state) {
  RegisterFile m;
  const Sym base = sym("e13/interned/R");
  for (int i = 0; i < kRegs; ++i) m.write(reg(base, i), Value(i));
  int i = 0;
  std::int64_t sink = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    sink += m.read(reg(base, i)).int_or(0);
    i = (i + 1) % kRegs;
  }
  benchmark::DoNotOptimize(sink);
  e13_finish(state, "E13_ReadInterned", 1, bench::alloc_count() - a0);
}

// A collect()-style sweep: read base[0..n-1] in one pass, as every snapshot
// and double-collect in the algorithm layer does.
void E13_SnapshotLegacy(benchmark::State& state) {
  LegacyRegisterFile m;
  const std::string base = "e13/legacy/S";
  for (int i = 0; i < kRegs; ++i) m.write(legacy_reg(base, i), Value(i));
  std::int64_t sink = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    for (int i = 0; i < kRegs; ++i) sink += m.read(legacy_reg(base, i)).int_or(0);
  }
  benchmark::DoNotOptimize(sink);
  e13_finish(state, "E13_SnapshotLegacy", kRegs, bench::alloc_count() - a0);
}

void E13_SnapshotInterned(benchmark::State& state) {
  RegisterFile m;
  const Sym base = sym("e13/interned/S");
  for (int i = 0; i < kRegs; ++i) m.write(reg(base, i), Value(i));
  std::int64_t sink = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    for (int i = 0; i < kRegs; ++i) sink += m.read(reg(base, i)).int_or(0);
  }
  benchmark::DoNotOptimize(sink);
  e13_finish(state, "E13_SnapshotInterned", kRegs, bench::alloc_count() - a0);
}

// Exploration dedup pattern (corridor DFS): one write, then a signature of
// the whole store. Legacy pays O(footprint) per signature; the incremental
// hash is O(1).
void E13_ContentHashLegacy(benchmark::State& state) {
  LegacyRegisterFile m;
  const std::string base = "e13/legacy/H";
  for (int i = 0; i < kRegs; ++i) m.write(legacy_reg(base, i), Value(i));
  int i = 0;
  std::uint64_t sink = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    m.write(legacy_reg(base, i), Value(i + 1));
    sink ^= m.content_hash();
    i = (i + 1) % kRegs;
  }
  benchmark::DoNotOptimize(sink);
  e13_finish(state, "E13_ContentHashLegacy", 1, bench::alloc_count() - a0);
}

void E13_ContentHashInterned(benchmark::State& state) {
  RegisterFile m;
  const Sym base = sym("e13/interned/H");
  for (int i = 0; i < kRegs; ++i) m.write(reg(base, i), Value(i));
  int i = 0;
  std::uint64_t sink = 0;
  const std::uint64_t a0 = bench::alloc_count();
  for (auto _ : state) {
    m.write(reg(base, i), Value(i + 1));
    sink ^= m.content_hash();
    i = (i + 1) % kRegs;
  }
  benchmark::DoNotOptimize(sink);
  e13_finish(state, "E13_ContentHashInterned", 1, bench::alloc_count() - a0);
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E13_WriteLegacy);
BENCHMARK(efd::E13_WriteInterned);
BENCHMARK(efd::E13_ReadLegacy);
BENCHMARK(efd::E13_ReadInterned);
BENCHMARK(efd::E13_SnapshotLegacy);
BENCHMARK(efd::E13_SnapshotInterned);
BENCHMARK(efd::E13_ContentHashLegacy);
BENCHMARK(efd::E13_ContentHashInterned);
