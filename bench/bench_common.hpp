// Shared helpers for the experiment benches (E1..E12, see EXPERIMENTS.md).
//
// Every bench binary regenerates one experiment table on stdout (printed
// once, before the google-benchmark timing output) and exposes the same
// quantities as benchmark counters so runs are machine-comparable.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>
#include <cstdarg>
#include <set>

#include "efd/efd.hpp"

namespace efd::bench {

/// Prints a table header exactly once per process.
inline void table_header(const char* title, const char* columns) {
  static std::once_flag flag;
  std::call_once(flag, [&] { std::printf("\n=== %s ===\n%s\n", title, columns); });
}

/// Prints one table row, suppressing exact duplicates (google-benchmark
/// re-invokes benchmark functions while calibrating iteration counts).
inline void row(const char* fmt, ...) {
  static std::set<std::string> seen;
  static std::mutex mu;
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  const std::lock_guard<std::mutex> guard(mu);
  if (seen.insert(buf).second) std::fputs(buf, stdout);
}

/// Distinct non-⊥ decisions of the world's C-processes.
inline std::set<Value> distinct_decisions(const World& w, int n) {
  std::set<Value> vals;
  for (int i = 0; i < n; ++i) {
    if (w.decided(cpid(i))) vals.insert(w.decision(cpid(i)));
  }
  return vals;
}

}  // namespace efd::bench
