// Shared helpers for the experiment benches (E1..E12, see EXPERIMENTS.md).
//
// Every bench binary regenerates one experiment table on stdout (printed
// once, before the google-benchmark timing output) and exposes the same
// quantities as benchmark counters so runs are machine-comparable.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>
#include <cstdarg>
#include <set>
#include <string>

#include "efd/efd.hpp"

namespace efd::bench {

/// Prints a table header exactly once per process.
inline void table_header(const char* title, const char* columns) {
  static std::once_flag flag;
  std::call_once(flag, [&] { std::printf("\n=== %s ===\n%s\n", title, columns); });
}

/// Prints one table row, suppressing exact duplicates (google-benchmark
/// re-invokes benchmark functions while calibrating iteration counts).
/// Sized by a measuring vsnprintf pass, so long rows are never silently
/// truncated (a truncated row would also defeat the duplicate suppression).
inline void row(const char* fmt, ...) {
  static std::set<std::string> seen;
  static std::mutex mu;
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int need = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (need < 0) {
    va_end(ap2);
    return;
  }
  std::string buf(static_cast<std::size_t>(need), '\0');
  std::vsnprintf(buf.data(), buf.size() + 1, fmt, ap2);
  va_end(ap2);
  const std::lock_guard<std::mutex> guard(mu);
  if (seen.insert(buf).second) std::fputs(buf.c_str(), stdout);
}

/// Attaches the standard perf counters of a simulation bench: model steps
/// per wall-second (rate over the whole timing loop), plus the final run's
/// register footprint and total write count.
inline void perf_counters(benchmark::State& state, double total_steps,
                          std::size_t footprint, std::size_t writes) {
  state.counters["steps_per_s"] = benchmark::Counter(total_steps, benchmark::Counter::kIsRate);
  state.counters["footprint"] = static_cast<double>(footprint);
  state.counters["writes"] = static_cast<double>(writes);
}

/// Distinct non-⊥ decisions of the world's C-processes.
inline std::set<Value> distinct_decisions(const World& w, int n) {
  std::set<Value> vals;
  for (int i = 0; i < n; ++i) {
    if (w.decided(cpid(i))) vals.insert(w.decision(cpid(i)));
  }
  return vals;
}

}  // namespace efd::bench
