// Shared helpers for the experiment benches (E1..E14, see EXPERIMENTS.md).
//
// Every bench binary regenerates one experiment's tables on stdout (printed
// once, before the google-benchmark timing output), exposes the same
// quantities as benchmark counters so runs are machine-comparable, and — via
// the telemetry::BenchEmitter behind these helpers — writes the whole run
// (counters + tables + git describe) to BENCH_E<n>.json at exit. Validate or
// diff the JSON files with tools/bench_diff.py.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <mutex>
#include <new>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "efd/efd.hpp"

namespace efd::bench {

// ---- heap-allocation telemetry (EFD_BENCH_ALLOC_PROBE) ----
//
// Benches that instantiate EFD_BENCH_ALLOC_PROBE() at file scope replace the
// global operator new/delete with counting forwarders, so a timing loop can
// report its true heap traffic (`allocs_per_step`). The arena-pooled hot
// path (sim/arena.hpp) must show ~0 allocations per explored state in
// steady state; tools/bench_diff.py fails a diff whose allocs_per_* counter
// rises. The counters are process-wide and relaxed: benches read deltas
// around single-threaded timing loops (the parallel E14 variants count
// worker allocations too, which is exactly what we want to observe).

struct AllocCounters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};
};

inline AllocCounters& alloc_counters() noexcept {
  static AllocCounters c;
  return c;
}

/// Total operator-new calls so far (0 unless EFD_BENCH_ALLOC_PROBE is live).
inline std::uint64_t alloc_count() noexcept {
  return alloc_counters().allocs.load(std::memory_order_relaxed);
}

/// Records `delta_allocs / steps` as the "allocs_per_step" counter.
inline void alloc_counter(benchmark::State& state, std::uint64_t delta_allocs,
                          double steps) {
  state.counters["allocs_per_step"] =
      steps > 0 ? static_cast<double>(delta_allocs) / steps : 0.0;
}

inline telemetry::BenchEmitter& emitter() { return telemetry::BenchEmitter::instance(); }

/// Names the experiment and registers the atexit JSON write. Each bench
/// binary calls this once via the EFD_BENCH_JSON macro below.
inline void init_json(const char* experiment) {
  emitter().set_experiment(experiment);
  std::atexit([] { (void)emitter().write_file(); });
}

/// Prints a table header exactly once per distinct TITLE (keyed by title so a
/// binary printing several tables gets every header; the old process-global
/// once_flag suppressed all but the first), and makes that table current for
/// the rows that follow.
inline void table_header(const char* title, const char* columns) {
  if (emitter().table_header_once(title, columns)) {
    std::printf("\n=== %s ===\n%s\n", title, columns);
  }
}

/// Prints one table row, suppressing exact duplicates (google-benchmark
/// re-invokes benchmark functions while calibrating iteration counts).
/// Sized by a measuring vsnprintf pass, so long rows are never silently
/// truncated (a truncated row would also defeat the duplicate suppression).
inline void row(const char* fmt, ...) {
  static std::set<std::string> seen;
  static std::mutex mu;
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int need = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (need < 0) {
    va_end(ap2);
    return;
  }
  std::string buf(static_cast<std::size_t>(need), '\0');
  std::vsnprintf(buf.data(), buf.size() + 1, fmt, ap2);
  va_end(ap2);
  const std::lock_guard<std::mutex> guard(mu);
  if (seen.insert(buf).second) {
    std::fputs(buf.c_str(), stdout);
    emitter().add_row(buf);
  }
}

/// Attaches the standard perf counters of a simulation bench: model steps
/// per wall-second (rate over the whole timing loop), plus the final run's
/// register footprint and total write count.
inline void perf_counters(benchmark::State& state, double total_steps,
                          std::size_t footprint, std::size_t writes) {
  state.counters["steps_per_s"] = benchmark::Counter(total_steps, benchmark::Counter::kIsRate);
  state.counters["footprint"] = static_cast<double>(footprint);
  state.counters["writes"] = static_cast<double>(writes);
}

/// Distinct non-⊥ decisions of the world's C-processes.
inline std::set<Value> distinct_decisions(const World& w, int n) {
  std::set<Value> vals;
  for (int i = 0; i < n; ++i) {
    if (w.decided(cpid(i))) vals.insert(w.decision(cpid(i)));
  }
  return vals;
}

/// Records the finished state's counters into the JSON emitter. `name` is the
/// benchmark function name (the installed google-benchmark has no
/// State::name(), so it is passed explicitly); `args` render as "/arg"
/// suffixes to match the stdout report. Counters are stored as their raw
/// accumulated values; rate counters additionally appear normalized
/// per-iteration so two runs with different calibrated iteration counts stay
/// comparable in tools/bench_diff.py.
inline void json_run(const benchmark::State& state, std::string name,
                     std::initializer_list<std::int64_t> args = {}) {
  for (const std::int64_t a : args) name += "/" + std::to_string(a);
  const auto iters = static_cast<double>(state.iterations());
  std::vector<std::pair<std::string, double>> counters;
  counters.reserve(state.counters.size() * 2);
  for (const auto& [key, c] : state.counters) {
    counters.emplace_back(key, c.value);
    if ((c.flags & benchmark::Counter::kIsRate) != 0 && iters > 0) {
      counters.emplace_back(key + "_per_iter", c.value / iters);
    }
  }
  emitter().record_benchmark(name, std::move(counters), state.iterations());
}

}  // namespace efd::bench

/// Place once at file scope in each bench binary: names the experiment and
/// arms the atexit BENCH_<exp>.json write.
#define EFD_BENCH_JSON(exp)                                     \
  namespace {                                                   \
  const bool efd_bench_json_registered = [] {                   \
    ::efd::bench::init_json(exp);                               \
    return true;                                                \
  }();                                                          \
  }

/// Place once at file scope (outside any namespace) in a bench binary that
/// reports allocation counters: replaces the global operator new/delete with
/// malloc/free forwarders that count into efd::bench::alloc_counters().
/// Replacement functions must have external linkage and appear in exactly
/// one TU — fine here, every bench binary is a single TU.
#define EFD_BENCH_ALLOC_PROBE()                                               \
  void* operator new(std::size_t n) {                                         \
    auto& c = ::efd::bench::alloc_counters();                                 \
    c.allocs.fetch_add(1, std::memory_order_relaxed);                         \
    c.bytes.fetch_add(n, std::memory_order_relaxed);                          \
    if (void* p = std::malloc(n != 0 ? n : 1)) return p;                      \
    throw std::bad_alloc{};                                                   \
  }                                                                           \
  void* operator new[](std::size_t n) { return ::operator new(n); }           \
  void* operator new(std::size_t n, const std::nothrow_t&) noexcept {         \
    auto& c = ::efd::bench::alloc_counters();                                 \
    c.allocs.fetch_add(1, std::memory_order_relaxed);                         \
    c.bytes.fetch_add(n, std::memory_order_relaxed);                          \
    return std::malloc(n != 0 ? n : 1);                                       \
  }                                                                           \
  void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {     \
    return ::operator new(n, t);                                              \
  }                                                                           \
  void operator delete(void* p) noexcept {                                    \
    if (p != nullptr) {                                                       \
      ::efd::bench::alloc_counters().frees.fetch_add(1,                       \
                                                     std::memory_order_relaxed); \
      std::free(p);                                                           \
    }                                                                         \
  }                                                                           \
  void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); } \
  void operator delete[](void* p) noexcept { ::operator delete(p); }          \
  void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); } \
  void operator delete(void* p, const std::nothrow_t&) noexcept {             \
    ::operator delete(p);                                                     \
  }                                                                           \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {           \
    ::operator delete(p);                                                     \
  }
