// E20 (unreliable links): the lossy-link acceptance pair and the link-fault
// layer's cost.
//
// The acceptance table drives timeout FloodMin and its retransmission-
// hardened variant under the IDENTICAL cross-link drop storm (every ch[i][j],
// i != j, charged to drop its next 2 deliveries): the raw protocol splits
// into 3 distinct own-input decisions (2-set agreement broken) at every
// seed, the hardened one stays safe and decides everywhere. The campaign
// table sweeps sampled plans through the real run_plan pipeline on the
// E20 campaign targets (mpfm_raw / mpfm_rt) and reports the link-plan mix.
// The timing rows price the fault layer itself: daemon-mode deliveries/s
// with charges off vs on (the off row measures the `faults_idle` fast path,
// which must stay at E19-level throughput — bench_diff.py polices the
// regression), and campaign plans/s with link dimensions off vs on.
#include "bench_common.hpp"

#include <memory>
#include <string>

EFD_BENCH_JSON("E20")

namespace efd {
namespace {

constexpr int kN = 3;  // FloodMin system size (n senders, n mailboxes)
constexpr int kF = 1;  // tolerated sender crashes

/// The E20 storm: every cross link drops its next 2 deliveries from step 0.
FaultPlan e20_storm() {
  FaultPlan plan;
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      if (i != j) plan.links.push_back(LinkAction{LinkFaultKind::kDrop, 0, i, j, 2});
    }
  }
  return plan;
}

/// Daemon-mode world with the raw (timeout) or hardened (rt) FloodMin bodies.
World e20_world(bool hardened) {
  const FailurePattern base(kN * kN);
  World w = make_mp_world(kN, kN, base, TrivialFd{}.history(base, 0));
  const FloodMinConfig cfg{kN, kF};
  for (int i = 0; i < kN; ++i) {
    w.spawn_c(i, hardened ? make_floodmin_rt(cfg, i, Value(i))
                          : make_floodmin_timeout(cfg, i, Value(i)));
  }
  return w;
}

struct E20Run {
  std::int64_t steps = 0;
  std::int64_t delivers = 0;
  std::int64_t dropped = 0;
  int decided = 0;
  int distinct = 0;
};

E20Run e20_drive(bool hardened, bool storm, std::uint64_t seed) {
  World w = e20_world(hardened);
  RandomScheduler rs(seed);
  E20Run r;
  if (storm) {
    (void)drive_with_plan(w, rs, 30000, e20_storm());
  } else {
    (void)drive(w, rs, 30000);
  }
  r.steps = w.run_stats().steps;
  r.delivers = w.run_stats().delivers;
  r.dropped = msg_substrate(w)->fabric().fault_counters().dropped;
  for (int i = 0; i < kN; ++i) {
    if (w.decided(cpid(i))) ++r.decided;
  }
  r.distinct = static_cast<int>(bench::distinct_decisions(w, kN).size());
  return r;
}

// ---- headline tables (printed once, stored into BENCH_E20.json) ----------

void e20_acceptance_table() {
  bench::table_header(
      "E20: FloodMin under the cross-link drop storm (2 drops per link), raw vs hardened",
      "protocol | seed |  steps | delivers | dropped | decided | distinct | verdict");
  for (const bool hardened : {false, true}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
      const E20Run r = e20_drive(hardened, true, seed);
      // Raw: everyone starves, times out, decides its OWN input — 3 distinct
      // decisions violate 2-set agreement. Hardened: retransmits get through.
      const bool violated = r.distinct > kF + 1;
      bench::row("%8s | %4llu | %6lld | %8lld | %7lld | %7d | %8d | %s\n",
                 hardened ? "rt" : "raw", static_cast<unsigned long long>(seed),
                 static_cast<long long>(r.steps), static_cast<long long>(r.delivers),
                 static_cast<long long>(r.dropped), r.decided, r.distinct,
                 violated ? "violated" : "safe");
    }
  }
}

void e20_campaign_table() {
  bench::table_header(
      "E20: sampled link-fault plans through run_plan (campaign targets)",
      "target   | plans | with-link | safety | storm-flag | clean");
  for (const char* name : {"mpfm_raw", "mpfm_rt"}) {
    const CampaignTarget* t = find_campaign_target(name);
    if (t == nullptr) {
      bench::row("%-8s | MISSING target\n", name);
      continue;
    }
    const int plans = 60;
    int with_link = 0, safety = 0, storms = 0, clean = 0;
    for (int i = 0; i < plans; ++i) {
      const std::uint64_t ps = campaign_plan_seed(42, t->name, i);
      const FaultPlan plan = FaultPlan::sample(ps, t->space);
      if (!plan.links.empty()) ++with_link;
      const PlanOutcome out = run_plan(*t, plan, ps, /*monitors=*/true);
      if (out.safety) ++safety;
      if (out.retransmit_storm) ++storms;
      if (!out.violated()) ++clean;
    }
    bench::row("%-8s | %5d | %9d | %6d | %10d | %5d\n", name, plans, with_link, safety,
               storms, clean);
  }
}

// ---- timing rows ---------------------------------------------------------

// Daemon-mode delivery throughput, fault charges off vs on. The off row is
// the zero-cost-when-idle claim: the fabric consults the charge map through
// one empty() test, so it must track E19_DaemonDrive throughput.
void E20_DeliveryThroughput(benchmark::State& state) {
  const bool storm = state.range(0) != 0;
  e20_acceptance_table();
  std::int64_t steps_total = 0;
  std::int64_t delivers_total = 0;
  bool decided = true;
  std::uint64_t seed = 1;
  E20Run last;
  for (auto _ : state) {
    last = e20_drive(/*hardened=*/true, storm, seed++);
    steps_total += last.steps;
    delivers_total += last.delivers;
    decided = decided && last.decided == kN;
  }
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps_total), benchmark::Counter::kIsRate);
  state.counters["deliveries_per_s"] =
      benchmark::Counter(static_cast<double>(delivers_total), benchmark::Counter::kIsRate);
  state.counters["dropped"] = static_cast<double>(last.dropped);
  state.counters["decided"] = decided ? 1 : 0;
  bench::json_run(state, "E20_DeliveryThroughput", {state.range(0)});
}

// Campaign plan throughput against the hardened E20 target, link dimensions
// stripped vs kept: what the link-fault layer costs per sampled plan.
void E20_PlanThroughput(benchmark::State& state) {
  const bool with_links = state.range(0) != 0;
  e20_campaign_table();
  const CampaignTarget* t = find_campaign_target("mpfm_rt");
  if (t == nullptr) {
    state.SkipWithError("mpfm_rt campaign target missing");
    return;
  }
  FaultPlan::Space space = t->space;
  if (!with_links) {
    space.mp_senders = 0;
    space.mp_mailboxes = 0;
    space.max_link_actions = 0;
  }
  std::int64_t plans_total = 0;
  std::int64_t violations = 0;
  int index = 0;
  for (auto _ : state) {
    const std::uint64_t ps = campaign_plan_seed(42, t->name, index++);
    const PlanOutcome out = run_plan(*t, FaultPlan::sample(ps, space), ps, /*monitors=*/true);
    if (out.violated()) ++violations;
    ++plans_total;
  }
  state.counters["plans_per_s"] =
      benchmark::Counter(static_cast<double>(plans_total), benchmark::Counter::kIsRate);
  state.counters["violations"] = static_cast<double>(violations);
  bench::json_run(state, "E20_PlanThroughput", {state.range(0)});
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E20_DeliveryThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E20_PlanThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
