// E8 (Lemma 11 / Thm. 12 / Cor. 13): strong renaming == consensus.
// Three pieces of evidence:
//  (a) lasso search: a naive strong 2-renaming candidate has a non-deciding
//      2-concurrent run (FLP-style witness);
//  (b) exhaustive exploration: Fig. 4 solves strong renaming 1-concurrently
//      but breaks 2-concurrently;
//  (c) the Lemma 11 construction: consensus built from a strong 2-renaming
//      box (itself powered by Ω-consensus — the equivalence in action).
#include "bench_common.hpp"

#include "core/bivalence.hpp"
#include "core/reduction.hpp"
#include "core/solvability.hpp"

EFD_BENCH_JSON("E8")

namespace efd {
namespace {

// The same naive flip-on-clash strong 2-renaming automaton the tests use.
struct NaiveRenaming final : SimProgram {
  Value init(int index, const Value&) const override {
    return vec(Value(index), Value(1), Value(0), Value(0));
  }
  SimAction action(const Value& st) const override {
    const int me = static_cast<int>(st.at(0).int_or(0));
    const auto phase = st.at(3).int_or(0);
    if (phase == 0) return {SimAction::Kind::kWrite, reg("nr/R", me), st.at(1)};
    if (phase == 1) return {SimAction::Kind::kRead, reg("nr/R", 1 - me), {}};
    if (phase == 2) return {SimAction::Kind::kDecide, "", st.at(1)};
    return {};
  }
  Value transition(const Value& st, const Value& result) const override {
    const auto phase = st.at(3).int_or(0);
    std::int64_t name = st.at(1).int_or(1);
    std::int64_t stable = st.at(2).int_or(0);
    std::int64_t next = phase + 1;
    if (phase == 1) {
      if (result.is_nil() || result.int_or(0) != name) {
        next = ++stable >= 2 ? 2 : 0;
      } else {
        stable = 0;
        name = 3 - name;
        next = 0;
      }
    }
    return vec(st.at(0), Value(name), Value(stable), Value(next));
  }
};

void E8a_LassoSearch(benchmark::State& state) {
  LassoResult r;
  double total_states = 0;
  for (auto _ : state) {
    LassoConfig cfg;
    cfg.participants = {0, 1};
    r = find_nontermination(std::make_shared<NaiveRenaming>(), {Value(0), Value(1)}, cfg);
    total_states += static_cast<double>(r.states);
  }
  state.counters["found"] = r.found ? 1 : 0;
  state.counters["states"] = static_cast<double>(r.states);
  state.counters["states_per_s"] =
      benchmark::Counter(total_states, benchmark::Counter::kIsRate);
  bench::json_run(state, "E8a_LassoSearch");

  bench::table_header("E8a (Thm. 12): non-deciding 2-concurrent run of a candidate",
                      "candidate          lasso-found  states-explored  cycle-length");
  efd::bench::row("%-18s %-12s %-16lld %zu\n", "naive-flip", r.found ? "yes" : "no",
              static_cast<long long>(r.states), r.cycle.size());
}

void E8b_Fig4BreaksAtTwo(benchmark::State& state) {
  const int n = 3;
  ExploreOutcome lvl1;
  ExploreOutcome lvl2;
  for (auto _ : state) {
    auto task = std::make_shared<RenamingTask>(RenamingTask::strong(n, 2));
    const ValueVec in = task->sample_input(0);
    const RenamingConfig rcfg{"ren", n};
    auto body = [rcfg](int, Value input) { return make_renaming_kconc(rcfg, input); };
    ExploreConfig cfg;
    cfg.arrival = Task::participants(in);
    cfg.k = 1;
    lvl1 = explore_k_concurrent(task, body, in, cfg);
    cfg.k = 2;
    lvl2 = explore_k_concurrent(task, body, in, cfg);
  }
  state.counters["lvl1_ok"] = lvl1.ok ? 1 : 0;
  state.counters["lvl2_ok"] = lvl2.ok ? 1 : 0;
  state.counters["lvl2_dedup_hits"] = static_cast<double>(lvl2.stats.dedup_hits);
  bench::json_run(state, "E8b_Fig4BreaksAtTwo");

  bench::table_header("E8b (Thm. 12): Fig. 4 on strong 2-renaming, by concurrency level",
                      "level  clean-sweep  violation");
  efd::bench::row("1      %-12s %s\n", lvl1.ok ? "yes" : "no",
              lvl1.violation.empty() ? "-" : lvl1.violation.c_str());
  efd::bench::row("2      %-12s %s\n", lvl2.ok ? "yes" : "no",
              lvl2.violation.empty() ? "-" : lvl2.violation.c_str());
}

void E8c_Lemma11Construction(benchmark::State& state) {
  const std::uint64_t seed = static_cast<std::uint64_t>(state.range(0));
  std::int64_t steps = 0;
  bool agreement = false;
  double total_steps = 0;
  std::size_t footprint = 0;
  std::size_t writes = 0;
  for (auto _ : state) {
    const int n = 2;
    const FailurePattern f = Environment(n, n - 1).sample(seed, static_cast<int>(seed % 2), 10);
    OmegaFd omega(30);
    World w(f, omega.history(f, seed));
    const SlotRenamingConfig scfg{"l11slots", n, 2};
    auto box = std::make_shared<ReplayProgram>(
        [scfg](int, const Value& input, Context& ctx) {
          return make_slot_renaming_client(scfg, input)(ctx);
        });
    for (int me = 0; me < 2; ++me) {
      w.spawn_c(me, make_consensus_from_renaming("l11", me, Value(500 + me), box));
    }
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_slot_renaming_server(scfg));
    RandomScheduler rs(seed + 77);
    const auto r = drive(w, rs, 2000000);
    if (!r.all_c_decided) throw std::runtime_error("E8c: Lemma 11 run did not decide");
    steps = r.steps;
    total_steps += static_cast<double>(r.steps);
    footprint = w.memory().footprint();
    writes = w.memory().write_count();
    agreement = w.decision(cpid(0)) == w.decision(cpid(1));
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["agreement"] = agreement ? 1 : 0;
  bench::perf_counters(state, total_steps, footprint, writes);
  bench::json_run(state, "E8c_Lemma11Construction", {static_cast<std::int64_t>(seed)});

  bench::table_header("E8c (Lemma 11): consensus from a strong 2-renaming box",
                      "seed  agreement  steps");
  efd::bench::row("%-5lld %-10s %lld\n", static_cast<long long>(seed), agreement ? "yes" : "NO",
              static_cast<long long>(steps));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E8a_LassoSearch)->Unit(benchmark::kMicrosecond);
BENCHMARK(efd::E8b_Fig4BreaksAtTwo)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E8c_Lemma11Construction)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);
