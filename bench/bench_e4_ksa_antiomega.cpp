// E4 (Thm. 9, colorless face): k-set agreement with →Ωk advice. Table:
// decision latency vs (n, k, GST) and the distinct-values bound; plus the
// full Thm. 9 double simulation (k-codes of BG-simulators) at small scale.
#include "bench_common.hpp"

EFD_BENCH_JSON("E4")

namespace efd {
namespace {

void E4_KsaWithAdvice(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const Time gst = state.range(2);
  std::int64_t steps = 0;
  std::size_t distinct = 0;
  for (auto _ : state) {
    const FailurePattern f = Environment(n, n - 1).sample(31, n / 2, 10);
    VectorOmegaK vo(k, gst);
    World w(f, vo.history(f, 31));
    const KsaConfig cfg{"ksa", n, k};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_ksa_server(cfg));
    RandomScheduler rs(31);
    const auto r = drive(w, rs, 5000000);
    if (!r.all_c_decided) throw std::runtime_error("E4: KSA run did not decide");
    steps = r.steps;
    distinct = bench::distinct_decisions(w, n).size();
    if (static_cast<int>(distinct) > k) throw std::runtime_error("E4: agreement bound broken");
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["distinct"] = static_cast<double>(distinct);
  bench::json_run(state, "E4_KsaWithAdvice", {n, k, gst});

  bench::table_header("E4 (Thm. 9): k-set agreement with vec-Omega-k advice",
                      "n   k   GST   distinct(<=k)  steps-to-all-decided");
  efd::bench::row("%-3d %-3d %-5lld %-14zu %lld\n", n, k, static_cast<long long>(gst), distinct,
              static_cast<long long>(steps));
}

void E4b_Theorem9DoubleSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::int64_t steps = 0;
  std::size_t distinct = 0;
  for (auto _ : state) {
    const FailurePattern f = Environment(n, n - 1).sample(7, 1, 10);
    VectorOmegaK vo(k, 40);
    World w(f, vo.history(f, 7));
    auto task = std::make_shared<SetAgreementTask>(n, k);
    Thm9Config cfg;
    cfg.ns = "t9";
    cfg.n = n;
    cfg.k = k;
    cfg.task_code = std::make_shared<ReplayProgram>(
        [task](int, const Value& input, Context& ctx) {
          return make_one_concurrent(task, input, "t9task")(ctx);
        });
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_thm9_simulator(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_thm9_server(cfg));
    RandomScheduler rs(9);
    const auto r = drive(w, rs, 40000000);
    if (!r.all_c_decided) throw std::runtime_error("E4b: double simulation did not decide");
    steps = r.steps;
    distinct = bench::distinct_decisions(w, n).size();
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["distinct"] = static_cast<double>(distinct);
  bench::json_run(state, "E4b_Theorem9DoubleSimulation", {n, k});

  bench::table_header(
      "E4b (Thm. 9): full double simulation (k-codes of BG-simulators of the task)",
      "n   k   distinct(<=k)  steps");
  efd::bench::row("%-3d %-3d %-14zu %lld\n", n, k, distinct, static_cast<long long>(steps));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E4_KsaWithAdvice)
    ->ArgsProduct({{3, 5, 8}, {1, 2, 3}, {20, 80, 200}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E4b_Theorem9DoubleSimulation)
    ->Args({2, 2})
    ->Args({3, 2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
