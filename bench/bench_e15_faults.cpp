// E15 (fault campaigns): plan throughput and liveness-monitor overhead.
//
// Two questions the campaign infrastructure (core/campaign.hpp) must answer
// before it can run always-on in CI:
//
//  * how many seeded FaultPlans per second does a full campaign sweep
//    sustain, including rehearsal drives, FD corruption, tape capture and —
//    for the seeded-buggy targets — ddmin shrinking with double-replay
//    verification;
//  * what does the always-on LivenessMonitor cost per simulator step? The
//    monitor observes EVERY step of every campaign drive, so its overhead
//    is a direct tax on sweep throughput. The A/B below drives the same
//    consensus scenario with the monitor detached and attached; the
//    acceptance line (EXPERIMENTS.md E15) is <= 5% on steps/s.
//
// The table reports plans/s per campaign target and the monitored vs bare
// drive throughput; BENCH_E15.json carries the counters for bench_diff.py.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

EFD_BENCH_JSON("E15")

namespace efd {
namespace {

/// One campaign sweep over a built-in target: N seeded plans, monitors on,
/// shrinking on (a no-op for clean targets, the real shrink+verify cost for
/// buggy ones), no tape saving (pure compute).
void run_campaign_bench(benchmark::State& state, const char* target_name, int plans,
                        const char* json_name) {
  const CampaignTarget* target = find_campaign_target(target_name);
  if (target == nullptr) {
    state.SkipWithError("unknown campaign target");
    return;
  }
  CampaignOptions opts;
  opts.seed = 42;
  opts.plans = plans;
  opts.monitors = true;
  opts.shrink = true;
  opts.save_dir = "";
  std::int64_t plans_total = 0;
  std::int64_t steps_total = 0;
  CampaignRun last;
  for (auto _ : state) {
    last = run_campaign(*target, opts);
    plans_total += last.plans;
    steps_total += last.total_steps + last.rehearsal_steps;
  }
  state.counters["plans"] = static_cast<double>(plans_total);
  state.counters["plans/s"] =
      benchmark::Counter(static_cast<double>(plans_total), benchmark::Counter::kIsRate);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps_total), benchmark::Counter::kIsRate);
  state.counters["violations"] = static_cast<double>(last.violations.size());
  state.counters["verdict_ok"] = last.verdict_ok() ? 1 : 0;
  bench::json_run(state, json_name);
  bench::row("%-18s | %7d plans | %4zu violations | verdict=%s", target_name, last.plans,
             last.violations.size(), last.verdict_ok() ? "ok" : "FAILED");
}

void E15_CampaignCons(benchmark::State& state) {
  bench::table_header("E15: campaign sweep throughput (seed 42, monitors+shrink on)",
                      "target             |   plans swept |     violations | verdict");
  run_campaign_bench(state, "cons", 32, "E15_CampaignCons");
}

void E15_CampaignRen(benchmark::State& state) {
  run_campaign_bench(state, "ren", 32, "E15_CampaignRen");
}

void E15_CampaignBuggyRenaming(benchmark::State& state) {
  // Dominated by shrink + double-replay: nearly every plan violates.
  run_campaign_bench(state, "brn", 32, "E15_CampaignBuggyRenaming");
}

/// A/B for the monitor tax: drive the consensus scenario to completion with
/// the campaign's own bounds, with and without the LivenessMonitor attached.
/// Identical worlds, schedules and step counts — only the observer differs.
void run_monitor_ab(benchmark::State& state, bool monitored, const char* json_name) {
  const CampaignTarget* target = find_campaign_target("cons");
  const Scenario* sc = find_scenario(target->scenario);
  if (sc == nullptr) {
    state.SkipWithError("missing consensus scenario");
    return;
  }
  const FailurePattern f(target->num_s);
  const DetectorPtr advice = target->advice();
  std::int64_t steps_total = 0;
  bool decided = true;
  bool wait_free = true;
  for (auto _ : state) {
    World w = sc->make_world(f, advice->history(f, 42));
    LivenessMonitor mon(target->bounds);
    if (monitored) w.attach_observer(&mon);
    RoundRobinScheduler rr;
    const DriveResult r = drive(w, rr, target->max_steps);
    if (monitored) {
      w.attach_observer(nullptr);
      mon.finalize(w);
      wait_free = wait_free && mon.wait_free_ok();
    }
    steps_total += r.steps;
    decided = decided && r.all_c_decided;
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps_total), benchmark::Counter::kIsRate);
  state.counters["decided"] = decided ? 1 : 0;
  state.counters["wait_free_ok"] = wait_free ? 1 : 0;
  bench::json_run(state, json_name);
  bench::row("%-18s | decided=%d | wait_free_ok=%d", monitored ? "monitored" : "bare",
             decided ? 1 : 0, wait_free ? 1 : 0);
}

void E15_DriveBare(benchmark::State& state) {
  bench::table_header("E15: LivenessMonitor overhead A/B (consensus scenario drive)",
                      "drive              | run outcome");
  run_monitor_ab(state, false, "E15_DriveBare");
}

void E15_DriveMonitored(benchmark::State& state) {
  run_monitor_ab(state, true, "E15_DriveMonitored");
}

/// The acceptance A/B (EXPERIMENTS.md E15): the E14 exploration workload —
/// (5,2)-set-agreement under the generic 1-concurrent solver at level 2 —
/// swept bare and with an accounting-mode LivenessMonitor attached to the
/// incremental engine's persistent world, INTERLEAVED within each timing
/// iteration so frequency scaling and cache state hit both sides equally.
/// The monitor tax on states/s must stay <= 5%.
void E15_ExploreMonitorOverhead(benchmark::State& state) {
  const TaskPtr task = std::make_shared<SetAgreementTask>(5, 2);
  ValueVec in(5);
  for (int i = 0; i < 5; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  const auto body = [task](int, Value input) { return make_one_concurrent(task, input, "e15"); };
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = {0, 1, 2, 3, 4};
  cfg.max_states = 30000;  // budget-bounded slice of the E14 sweep
  using clock = std::chrono::steady_clock;
  double bare_sec = 0;
  double mon_sec = 0;
  std::int64_t bare_states = 0;
  std::int64_t mon_states = 0;
  std::int64_t mon_steps = 0;
  bool same = true;
  for (auto _ : state) {
    const auto t0 = clock::now();
    const ExploreOutcome bare = explore_k_concurrent(task, body, in, cfg);
    const auto t1 = clock::now();
    LivenessMonitor mon;  // zero bounds: pure accounting, the always-on tax
    ExploreConfig mcfg = cfg;
    mcfg.observer = &mon;
    const auto t2 = clock::now();
    const ExploreOutcome watched = explore_k_concurrent(task, body, in, mcfg);
    const auto t3 = clock::now();
    bare_sec += std::chrono::duration<double>(t1 - t0).count();
    mon_sec += std::chrono::duration<double>(t3 - t2).count();
    bare_states += bare.states;
    mon_states += watched.states;
    mon_steps = mon.monitored_steps();
    same = same && bare.states == watched.states && bare.terminal_runs == watched.terminal_runs;
  }
  const double bare_rate = bare_sec > 0 ? static_cast<double>(bare_states) / bare_sec : 0;
  const double mon_rate = mon_sec > 0 ? static_cast<double>(mon_states) / mon_sec : 0;
  const double overhead = bare_rate > 0 ? (bare_rate - mon_rate) / bare_rate * 100.0 : 0;
  state.counters["bare_states_per_s"] = bare_rate;
  state.counters["monitored_states_per_s"] = mon_rate;
  state.counters["overhead_pct"] = overhead;
  state.counters["monitored_steps"] = static_cast<double>(mon_steps);
  state.counters["outcomes_match"] = same ? 1 : 0;
  bench::json_run(state, "E15_ExploreMonitorOverhead");
  bench::table_header("E15: LivenessMonitor overhead on E14 states/s (interleaved A/B)",
                      "sweep              |    states/s bare | states/s monitored | overhead");
  bench::row("%-18s | %16.0f | %18.0f | %+7.2f%%", "explore(5,2)@k=2", bare_rate, mon_rate,
             overhead);
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E15_CampaignCons)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E15_CampaignRen)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E15_CampaignBuggyRenaming)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E15_DriveBare)->Unit(benchmark::kMicrosecond);
BENCHMARK(efd::E15_DriveMonitored)->Unit(benchmark::kMicrosecond);
BENCHMARK(efd::E15_ExploreMonitorOverhead)->Unit(benchmark::kMillisecond);
