// E7 (Thm. 15 / Fig. 4): (j, j+k-1)-renaming solved k-concurrently. Table:
// largest chosen name vs (j, k) against the j+k-1 bound — the paper's
// namespace/concurrency trade-off.
#include "bench_common.hpp"

EFD_BENCH_JSON("E7")

namespace efd {
namespace {

void E7_Renaming(benchmark::State& state) {
  const int j = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = j + 2;
  std::int64_t steps = 0;
  std::int64_t max_name = 0;
  bool unique = true;
  for (auto _ : state) {
    const RenamingTask task(n, j, j + k - 1);
    const ValueVec in = task.sample_input(3);
    const auto arrival = Task::participants(in);
    World w = World::failure_free(1);
    const RenamingConfig cfg{"ren", n};
    for (int i : arrival) {
      w.spawn_c(i, make_renaming_kconc(cfg, in[static_cast<std::size_t>(i)]));
    }
    KConcurrencyScheduler sched(k, arrival, 0);
    const auto r = drive(w, sched, 2000000);
    if (!r.all_c_decided) throw std::runtime_error("E7: renaming run did not decide");
    steps = r.steps;
    max_name = 0;
    std::set<std::int64_t> names;
    for (int i : arrival) {
      const auto name = w.decision(cpid(i)).as_int();
      names.insert(name);
      max_name = std::max(max_name, name);
    }
    unique = names.size() == arrival.size();
    if (max_name > j + k - 1) throw std::runtime_error("E7: namespace bound broken");
  }
  state.counters["max_name"] = static_cast<double>(max_name);
  state.counters["steps"] = static_cast<double>(steps);
  bench::json_run(state, "E7_Renaming", {j, k});

  bench::table_header("E7 (Thm. 15 / Fig. 4): (j, j+k-1)-renaming under k-concurrency",
                      "j   k   max-name  bound(j+k-1)  unique  steps");
  efd::bench::row("%-3d %-3d %-9lld %-13d %-7s %lld\n", j, k, static_cast<long long>(max_name),
              j + k - 1, unique ? "yes" : "NO", static_cast<long long>(steps));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E7_Renaming)
    ->ArgsProduct({{2, 3, 4, 6}, {1, 2}})
    ->Args({4, 3})
    ->Args({6, 3})
    ->Args({6, 4})
    ->Args({6, 6})
    ->Unit(benchmark::kMicrosecond);
