// E11 (Fig. 3): the 1-resilient wrapper gates ANY renaming algorithm so the
// induced inner run is 2-concurrent. Table: participants vs decisions, the
// names stay within the wrapped algorithm's 2-concurrent bound (j+1 for
// Fig. 4), and wrapper overhead in steps.
#include "bench_common.hpp"

#include "algo/renaming_1resilient.hpp"

EFD_BENCH_JSON("E11")

namespace efd {
namespace {

void E11_OneResilientWrapper(benchmark::State& state) {
  const int j = static_cast<int>(state.range(0));
  const int participants = static_cast<int>(state.range(1));  // j or j-1
  const int n = j + 2;
  std::int64_t steps = 0;
  std::int64_t max_name = 0;
  bool unique = true;
  for (auto _ : state) {
    World w = World::failure_free(1);
    const OneResilientConfig cfg{"wrap", n, j};
    const RenamingConfig inner_cfg{"wren", n};
    auto inner = std::make_shared<ReplayProgram>(
        [inner_cfg](int, const Value& input, Context& ctx) {
          return make_renaming_kconc(inner_cfg, input)(ctx);
        });
    for (int i = 0; i < participants; ++i) {
      w.spawn_c(i, make_one_resilient_wrapper(cfg, inner, Value(100 + i)));
    }
    RoundRobinScheduler rr;
    const auto r = drive(w, rr, 20000000);
    if (!r.all_c_decided) throw std::runtime_error("E11: wrapper run did not decide");
    steps = r.steps;
    std::set<std::int64_t> names;
    max_name = 0;
    for (int i = 0; i < participants; ++i) {
      const auto name = w.decision(cpid(i)).as_int();
      names.insert(name);
      max_name = std::max(max_name, name);
    }
    unique = static_cast<int>(names.size()) == participants;
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["max_name"] = static_cast<double>(max_name);
  bench::json_run(state, "E11_OneResilientWrapper", {j, participants});

  bench::table_header("E11 (Fig. 3): 1-resilient wrapper around Fig. 4 renaming",
                      "j   participants  max-name  2-conc-bound(j+1)  unique  steps");
  efd::bench::row("%-3d %-13d %-9lld %-18d %-7s %lld\n", j, participants,
              static_cast<long long>(max_name), j + 1, unique ? "yes" : "NO",
              static_cast<long long>(steps));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E11_OneResilientWrapper)
    ->Args({3, 3})
    ->Args({3, 2})
    ->Args({4, 4})
    ->Args({4, 3})
    ->Args({5, 5})
    ->Unit(benchmark::kMillisecond);
