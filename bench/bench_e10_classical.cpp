// E10 (Prop. 3 / Prop. 5): EFD solvability vs classical solvability.
// Table: the same EFD algorithm run under fair scheduling (EFD runs) and
// under the personified scheduler (classical runs, p_i dies with q_i) — the
// task stays satisfied in both; in personified runs only processes with a
// correct S-counterpart are guaranteed to decide.
#include "bench_common.hpp"

#include "core/efd_system.hpp"

EFD_BENCH_JSON("E10")

namespace efd {
namespace {

EfdSetup ksa_setup(int n, int k, int faults, std::uint64_t seed) {
  EfdSetup s;
  s.task = std::make_shared<SetAgreementTask>(n, k);
  s.detector = std::make_shared<VectorOmegaK>(k, 40);
  s.pattern = Environment(n, n - 1).sample(seed, faults, 15);
  s.seed = seed;
  s.inputs.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) s.inputs[static_cast<std::size_t>(i)] = Value(i);
  const KsaConfig cfg{"ksa", n, k};
  s.c_body = [cfg](int, Value input) { return make_ksa_client(cfg, input); };
  s.s_body = [cfg](int) { return make_ksa_server(cfg); };
  return s;
}

void E10_EfdVsClassical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int faults = static_cast<int>(state.range(2));
  EfdRunResult fair;
  EfdRunResult personified;
  int correct_cnt = 0;
  for (auto _ : state) {
    const auto setup = ksa_setup(n, k, faults, 21);
    fair = run_efd_fair(setup, 3000000);
    PersonifiedScheduler ps;
    personified = run_efd(ksa_setup(n, k, faults, 21), ps, 300000);
    correct_cnt = setup.pattern.num_correct();
    if (!fair.all_decided || !fair.satisfied || !personified.satisfied) {
      throw std::runtime_error("E10: a run violated the task");
    }
  }
  int personified_decided = 0;
  for (const auto& o : personified.outputs) {
    if (!o.is_nil()) ++personified_decided;
  }
  state.counters["fair_decided"] = static_cast<double>(n);
  state.counters["personified_decided"] = static_cast<double>(personified_decided);
  state.counters["fair_steps"] = static_cast<double>(fair.stats.steps);
  state.counters["fair_null_steps"] = static_cast<double>(fair.stats.null_steps);
  bench::json_run(state, "E10_EfdVsClassical", {n, k, faults});

  bench::table_header(
      "E10 (Prop. 3/5): EFD runs vs personified (classical) runs, KSA algorithm",
      "n   k   faults  EFD-decided  classical-decided  correct-S  both-satisfied");
  efd::bench::row("%-3d %-3d %-7d %-12d %-18d %-10d %s\n", n, k, faults, n, personified_decided,
              correct_cnt, (fair.satisfied && personified.satisfied) ? "yes" : "NO");
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E10_EfdVsClassical)
    ->Args({3, 2, 1})
    ->Args({4, 2, 2})
    ->Args({5, 3, 2})
    ->Args({5, 2, 4})
    ->Unit(benchmark::kMillisecond);
