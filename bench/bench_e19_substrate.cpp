// E19 (message-passing substrate): the MP k-set agreement impossibility
// boundary, cross-backend agreement, and per-backend exploration throughput.
//
// FloodMin (n=3, f=1) explored exhaustively on both substrate backends —
// ShmSubstrate (registers-as-mailboxes) and the eager MsgSubstrate — at every
// concurrency level. The boundary table mechanizes "FloodMin solves k-set
// agreement iff k >= f+1": the kset=2 rows stay clean at every level, the
// kset=1 rows are violated from level 2 on (the freed window slot admits p2,
// whose FIFO inbox can order p1's flood before p0's). The agreement table
// pins the tentpole property: states, terminal runs, blocked dead ends and
// verdicts are byte-identical across backends at every tested thread count.
// The timing rows report explored states/second per backend and, for the
// daemon-mode fabric (per-link FIFO channels, deliveries as schedulable
// S-steps), end-to-end model steps/second and deliveries/second.
#include "bench_common.hpp"

#include <memory>
#include <string>

EFD_BENCH_JSON("E19")

namespace efd {
namespace {

constexpr int kN = 3;  // FloodMin system size
constexpr int kF = 1;  // tolerated crashes

std::function<ProcBody(int, Value)> e19_body() {
  const FloodMinConfig cfg{kN, kF};
  return [cfg](int i, Value input) { return make_floodmin(cfg, i, std::move(input)); };
}

ValueVec e19_inputs() {
  ValueVec in(kN);
  for (int i = 0; i < kN; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  return in;
}

std::function<World()> e19_factory(bool msg) {
  if (msg) {
    return [] {
      World w = World::failure_free(1);
      install_msg_eager(w, kN, kN);
      return w;
    };
  }
  return [] {
    World w = World::failure_free(1);
    install_shm_mailboxes(w);
    return w;
  };
}

ExploreOutcome e19_sweep(bool msg, int kset, int k, int threads) {
  ExploreConfig cfg;
  cfg.k = k;
  cfg.arrival = {0, 1, 2};
  cfg.max_states = 2000000;
  cfg.threads = threads;
  cfg.world_factory = e19_factory(msg);
  const TaskPtr task = std::make_shared<SetAgreementTask>(kN, kset);
  return explore_k_concurrent(task, e19_body(), e19_inputs(), cfg);
}

// ---- headline tables (printed once, stored into BENCH_E19.json) ----------

void e19_boundary_table() {
  bench::table_header(
      "E19: FloodMin (n=3, f=1) k-set agreement boundary, per backend",
      "kset | level |   shm verdict   |   msg verdict   |  states | blocked");
  for (int kset : {1, 2}) {
    for (int k = 1; k <= kN; ++k) {
      const ExploreOutcome shm = e19_sweep(false, kset, k, 1);
      const ExploreOutcome msg = e19_sweep(true, kset, k, 1);
      const auto verdict = [](const ExploreOutcome& o) {
        return o.budget_exhausted ? "exhausted" : (o.ok ? "clean" : "violated");
      };
      bench::row("%4d | %5d | %15s | %15s | %7lld | %7lld\n", kset, k, verdict(shm),
                 verdict(msg), static_cast<long long>(shm.states),
                 static_cast<long long>(shm.blocked_runs));
    }
  }
}

void e19_agreement_table() {
  bench::table_header(
      "E19: cross-backend agreement, FloodMin (3,2)-set-agreement full sweep",
      "backend | threads |  states | terminal | blocked | verdict | equal to shm x1");
  const ExploreOutcome base = e19_sweep(false, kF + 1, kN, 1);
  for (const bool msg : {false, true}) {
    for (const int threads : {1, 2, 8}) {
      const ExploreOutcome o = e19_sweep(msg, kF + 1, kN, threads);
      const bool equal = o.ok == base.ok && o.states == base.states &&
                         o.terminal_runs == base.terminal_runs &&
                         o.blocked_runs == base.blocked_runs &&
                         o.stats.dedup_misses == base.stats.dedup_misses;
      bench::row("%7s | %7d | %7lld | %8lld | %7lld | %7s | %s\n", msg ? "msg" : "shm",
                 threads, static_cast<long long>(o.states),
                 static_cast<long long>(o.terminal_runs),
                 static_cast<long long>(o.blocked_runs), o.ok ? "clean" : "violated",
                 equal ? "yes" : "NO");
    }
  }
}

// ---- timing rows ---------------------------------------------------------

void run_explore(benchmark::State& state, bool msg, const char* json_name) {
  e19_boundary_table();
  e19_agreement_table();
  std::int64_t states_total = 0;
  ExploreOutcome last;
  for (auto _ : state) {
    last = e19_sweep(msg, kF + 1, kN, 1);
    states_total += last.states;
  }
  state.counters["states"] = static_cast<double>(last.states);
  state.counters["states/s"] =
      benchmark::Counter(static_cast<double>(states_total), benchmark::Counter::kIsRate);
  state.counters["terminal_runs"] = static_cast<double>(last.terminal_runs);
  state.counters["blocked_runs"] = static_cast<double>(last.blocked_runs);
  state.counters["clean"] = last.ok && !last.budget_exhausted ? 1 : 0;
  bench::json_run(state, json_name);
}

void E19_ExploreShm(benchmark::State& state) { run_explore(state, false, "E19_ExploreShm"); }
void E19_ExploreMsg(benchmark::State& state) { run_explore(state, true, "E19_ExploreMsg"); }

// Daemon-mode end-to-end throughput: FloodMin over per-link FIFO channels,
// the n*n delivery daemons scheduled like any other S-process. Reports model
// steps/second and deliveries/second of the full fabric.
void E19_DaemonDrive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FloodMinConfig cfg{n, 1};
  const auto one_run = [&](std::uint64_t seed, bool& decided, std::int64_t& steps,
                           std::int64_t& delivers) {
    FailurePattern base(n * n);
    TrivialFd trivial;
    World w = make_mp_world(n, n, base, trivial.history(base, 0));
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_floodmin(cfg, i, Value(i)));
    RandomScheduler rs(seed);
    const DriveResult r = drive(w, rs, 200000);
    decided = decided && r.all_c_decided;
    steps += w.run_stats().steps;
    delivers += w.run_stats().delivers;
  };
  // One deterministic run for the table (dedup-stable across calibration
  // re-invocations); the timing loop below sweeps seeds.
  bool d1 = true;
  std::int64_t s1 = 0, del1 = 0;
  one_run(1, d1, s1, del1);
  bench::row("daemon drive n=%d (seed 1) | %6lld steps | %6lld deliveries | decided=%d\n",
             n, static_cast<long long>(s1), static_cast<long long>(del1), d1 ? 1 : 0);

  std::int64_t steps_total = 0;
  std::int64_t delivers_total = 0;
  bool decided = true;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    one_run(seed++, decided, steps_total, delivers_total);
  }
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps_total), benchmark::Counter::kIsRate);
  state.counters["deliveries_per_s"] =
      benchmark::Counter(static_cast<double>(delivers_total), benchmark::Counter::kIsRate);
  state.counters["decided"] = decided ? 1 : 0;
  bench::json_run(state, "E19_DaemonDrive", {n});
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E19_ExploreShm)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E19_ExploreMsg)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E19_DaemonDrive)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);
