// E14 (exploration engine): full-replay vs incremental vs parallel frontier.
//
// The seed's explorer re-executed the whole schedule prefix from a fresh
// World at every DFS node — O(depth²) coroutine steps per root-to-leaf path.
// The incremental engine keeps one persistent World, advances it a single
// step per DFS edge, and backtracks through an exact undo log (memory cells,
// signatures, decision flags, admission window), respawning only processes
// that are actually rescheduled after a rewind. The parallel engine shards
// the DFS frontier of the same tree over a work-stealing pool with a shared
// sharded signature set; clean-sweep outcomes are thread-count-invariant.
//
// Workload: (5,2)-set-agreement under the generic 1-concurrent solver at
// level 2 — a clean sweep of ~190k states whose runs go 61-65 steps deep
// (the sweep fails a max_depth=60 bound and is clean at 65), the regime
// where full-prefix replay hurts most. The table reports states/second per engine and
// the parallel scaling curve; all engines must agree on (states, terminal
// runs) for the sweep to count.
#include "bench_common.hpp"

#include <algorithm>
#include <memory>
#include <string>

EFD_BENCH_JSON("E14")
EFD_BENCH_ALLOC_PROBE()

namespace efd {
namespace {

TaskPtr e14_task() { return std::make_shared<SetAgreementTask>(5, 2); }

ValueVec e14_inputs() {
  ValueVec in(5);
  for (int i = 0; i < 5; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  return in;
}

std::function<ProcBody(int, Value)> e14_body(const TaskPtr& task) {
  return [task](int, Value input) { return make_one_concurrent(task, input, "e14"); };
}

ExploreConfig e14_cfg(ExploreEngine engine, int threads) {
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = {0, 1, 2, 3, 4};
  cfg.max_states = 400000;
  cfg.engine = engine;
  cfg.threads = threads;
  return cfg;
}

void run_one(benchmark::State& state, ExploreEngine engine, int threads, const char* label,
             const char* json_name, std::initializer_list<std::int64_t> json_args = {},
             const DedupConfig* dedup = nullptr) {
  const TaskPtr task = e14_task();
  const ValueVec in = e14_inputs();
  const auto body = e14_body(task);
  std::int64_t states_total = 0;
  std::int64_t last_states = 0;
  std::int64_t last_terminal = 0;
  ExploreStats last_stats;
  bool ok = true;
  const std::uint64_t allocs_before = bench::alloc_count();
  for (auto _ : state) {
    ExploreConfig cfg = e14_cfg(engine, threads);
    if (dedup != nullptr) cfg.dedup_store = *dedup;
    const ExploreOutcome o = explore_k_concurrent(task, body, in, cfg);
    states_total += o.states;
    last_states = o.states;
    last_terminal = o.terminal_runs;
    last_stats = o.stats;
    ok = ok && o.ok && !o.budget_exhausted;
  }
  const std::uint64_t allocs_delta = bench::alloc_count() - allocs_before;
  state.counters["states"] = static_cast<double>(last_states);
  state.counters["states/s"] =
      benchmark::Counter(static_cast<double>(states_total), benchmark::Counter::kIsRate);
  state.counters["clean"] = ok ? 1 : 0;
  state.counters["dedup_queries"] = static_cast<double>(last_stats.dedup_queries);
  state.counters["dedup_hits"] = static_cast<double>(last_stats.dedup_hits);
  state.counters["respawns"] = static_cast<double>(last_stats.respawns);
  state.counters["ghost_hits"] = static_cast<double>(last_stats.ghost_hits);
  state.counters["pool_steals"] = static_cast<double>(last_stats.pool_steals);
  if (dedup != nullptr) {
    // Per-tier traffic of the tiered store (core/diskset.hpp). Hit rates are
    // fractions of all duplicate answers; bench_diff treats *hit_rate as
    // higher-is-better, spill volume as informational.
    const double hits = static_cast<double>(
        std::max<std::int64_t>(1, last_stats.dedup_hits));
    state.counters["recent_hit_rate"] =
        static_cast<double>(last_stats.dedup_recent_hits) / hits;
    state.counters["mem_hit_rate"] =
        static_cast<double>(last_stats.dedup_mem_hits) / hits;
    state.counters["cold_hit_rate"] =
        static_cast<double>(last_stats.dedup_cold_hits) / hits;
    state.counters["bloom_skip_rate"] =
        static_cast<double>(last_stats.dedup_bloom_skips) /
        static_cast<double>(std::max<std::int64_t>(1, last_stats.dedup_cold_probes));
    state.counters["spills"] = static_cast<double>(last_stats.dedup_spills);
    state.counters["spilled_sigs"] = static_cast<double>(last_stats.dedup_spilled_sigs);
    state.counters["spill_bytes"] = static_cast<double>(last_stats.dedup_spill_bytes);
    state.counters["merges"] = static_cast<double>(last_stats.dedup_merges);
  }
  bench::alloc_counter(state, allocs_delta, static_cast<double>(states_total));
  bench::json_run(state, json_name, json_args);
  bench::row("%-22s | %8lld states | %7lld terminal | clean=%d", label,
             static_cast<long long>(last_states), static_cast<long long>(last_terminal),
             ok ? 1 : 0);
}

void E14_FullReplay(benchmark::State& state) {
  bench::table_header("E14: schedule exploration engines, (5,2)-set-agreement level 2",
                      "engine                 |   states explored |  terminal runs | clean sweep");
  run_one(state, ExploreEngine::kFullReplay, 1, "full replay", "E14_FullReplay");
}

void E14_Incremental(benchmark::State& state) {
  run_one(state, ExploreEngine::kIncremental, 1, "incremental", "E14_Incremental");
}

void E14_Parallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::string label = "parallel x" + std::to_string(threads);
  run_one(state, ExploreEngine::kIncremental, threads, label.c_str(), "E14_Parallel", {threads});
}

// Same sweep through the tiered dedup store with a memory budget small
// enough (1 MiB over 64 shards) that every shard spills to disk several
// times: exercises tier-0/1/2 traffic, run files and merges on the standard
// workload. Semantic counters (states, terminal runs, dedup traffic) must
// match the plain rows exactly — the tiers only move where duplicates are
// found — which makes this row the per-tier hit-rate source for
// EXPERIMENTS.md E17 and the counter source bench_diff validates.
void E14_Tiered(benchmark::State& state) {
  DedupConfig dedup;
  dedup.disk_tier = true;
  dedup.mem_budget_bytes = 1 << 20;
  run_one(state, ExploreEngine::kIncremental, 1, "tiered 1MiB+disk", "E14_Tiered", {}, &dedup);
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E14_FullReplay)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E14_Incremental)->Unit(benchmark::kMillisecond);
BENCHMARK(efd::E14_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(efd::E14_Tiered)->Unit(benchmark::kMillisecond);
