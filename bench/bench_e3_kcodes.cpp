// E3 (Fig. 2 / Thm. 14): simulating k codes with →Ωk. Table: steps until the
// first code completes and per-code progress, across (n, k) and fault loads.
#include "bench_common.hpp"

EFD_BENCH_JSON("E3")

namespace efd {
namespace {

// Code: read a register `reads` times, then decide.
struct SpinReadCode final : SimProgram {
  int reads;
  explicit SpinReadCode(int reads) : reads(reads) {}
  Value init(int idx, const Value&) const override { return vec(Value(idx), Value(0)); }
  SimAction action(const Value& st) const override {
    const auto c = st.at(1).int_or(0);
    if (c < reads) return {SimAction::Kind::kRead, "kcx", {}};
    if (c == reads) return {SimAction::Kind::kDecide, "", Value(1000 + st.at(0).int_or(0))};
    return {};
  }
  Value transition(const Value& st, const Value&) const override {
    return vec(st.at(0), Value(st.at(1).int_or(0) + 1));
  }
};

void E3_KCodes(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int faults = static_cast<int>(state.range(2));
  std::int64_t steps = 0;
  std::int64_t prog_total = 0;
  double total_steps = 0;
  std::size_t footprint = 0;
  std::size_t writes = 0;
  for (auto _ : state) {
    const FailurePattern f = Environment(n, n - 1).sample(23, faults, 10);
    VectorOmegaK vo(k, 50);
    World w(f, vo.history(f, 23));
    KCodesConfig cfg;
    cfg.ns = "kc";
    cfg.n = n;
    cfg.k = k;
    cfg.code = std::make_shared<SpinReadCode>(5);
    cfg.inputs.assign(static_cast<std::size_t>(k), Value(0));
    const KCodesHarvest harvest = [](const ValueVec& d) {
      for (const auto& v : d) {
        if (!v.is_nil()) return v;
      }
      return Value{};
    };
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_kcodes_simulator(cfg, harvest));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_kcodes_server(cfg));
    RandomScheduler rs(23);
    const auto r = drive(w, rs, 5000000);
    if (!r.all_c_decided) throw std::runtime_error("E3: simulation made no progress");
    steps = r.steps;
    total_steps += static_cast<double>(r.steps);
    footprint = w.memory().footprint();
    writes = w.memory().write_count();
    prog_total = 0;
    for (int j = 0; j < k; ++j) prog_total += kcodes_progress(w, cfg, j);
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["agreed_reads"] = static_cast<double>(prog_total);
  bench::perf_counters(state, total_steps, footprint, writes);
  bench::json_run(state, "E3_KCodes", {n, k, faults});

  bench::table_header("E3 (Fig. 2 / Thm. 14): k-codes simulation with vec-Omega-k",
                      "n   k   faults  steps-to-first-completion  total-agreed-reads");
  efd::bench::row("%-3d %-3d %-7d %-26lld %lld\n", n, k, faults, static_cast<long long>(steps),
              static_cast<long long>(prog_total));
}

}  // namespace
}  // namespace efd

BENCHMARK(efd::E3_KCodes)
    ->ArgsProduct({{3, 4, 6}, {1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
