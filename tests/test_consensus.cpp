// Tests for EFD consensus with Ω advice (algo/leader_consensus.hpp):
// termination in fair runs of every environment, agreement, validity, and
// wait-freedom in the EFD sense (C-progress depends only on S-processes).
#include <gtest/gtest.h>

#include <set>

#include "algo/leader_consensus.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "tasks/consensus.hpp"

namespace efd {
namespace {

struct ConsensusCase {
  int n;
  int faults;
  Time gst;
  std::uint64_t seed;
};

class ConsensusSweep : public ::testing::TestWithParam<ConsensusCase> {};

TEST_P(ConsensusSweep, AgreementValidityTermination) {
  const auto p = GetParam();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 20);
  OmegaFd omega(p.gst);
  World w(f, omega.history(f, p.seed));
  const LeaderConsensusConfig cfg{"cons", p.n};
  for (int i = 0; i < p.n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(100 + i)));
  for (int i = 0; i < p.n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RandomScheduler rs(p.seed * 31 + 1);
  const auto r = drive(w, rs, 400000);
  ASSERT_TRUE(r.all_c_decided) << f.to_string();

  std::set<std::int64_t> vals;
  for (int i = 0; i < p.n; ++i) vals.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(vals.size(), 1u);                       // agreement
  EXPECT_GE(*vals.begin(), 100);                    // validity
  EXPECT_LT(*vals.begin(), 100 + p.n);

  ConsensusTask task(p.n);
  ValueVec in(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) in[static_cast<std::size_t>(i)] = Value(100 + i);
  EXPECT_TRUE(task.relation(in, w.output_vector()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsensusSweep,
    ::testing::Values(ConsensusCase{2, 0, 10, 1}, ConsensusCase{2, 1, 25, 2},
                      ConsensusCase{3, 0, 10, 3}, ConsensusCase{3, 1, 30, 4},
                      ConsensusCase{3, 2, 40, 5}, ConsensusCase{4, 2, 35, 6},
                      ConsensusCase{5, 3, 50, 7}, ConsensusCase{5, 4, 60, 8},
                      ConsensusCase{4, 0, 0, 9}, ConsensusCase{6, 3, 45, 10}));

TEST(Consensus, SubsetParticipation) {
  // Only p2 participates: it must still decide its own value.
  const int n = 3;
  FailurePattern f(n);
  OmegaFd omega(10);
  World w(f, omega.history(f, 3));
  const LeaderConsensusConfig cfg{"cons", n};
  w.spawn_c(1, make_consensus_client(cfg, Value(55)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 100000);
  ASSERT_TRUE(r.all_c_decided);
  EXPECT_EQ(w.decision(cpid(1)).as_int(), 55);
}

TEST(Consensus, CProgressIndependentOfOtherCProcesses) {
  // EFD wait-freedom: p1 decides even though p2 never takes a single step.
  const int n = 2;
  FailurePattern f(n);
  OmegaFd omega(10);
  World w(f, omega.history(f, 5));
  const LeaderConsensusConfig cfg{"cons", n};
  w.spawn_c(0, make_consensus_client(cfg, Value(7)));
  w.spawn_c(1, make_consensus_client(cfg, Value(8)));  // spawned but never scheduled
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  // Custom schedule: only p1 and the S-processes run.
  for (int round = 0; round < 5000 && !w.decided(cpid(0)); ++round) {
    w.step(cpid(0));
    for (int i = 0; i < n; ++i) w.step(spid(i));
  }
  EXPECT_TRUE(w.decided(cpid(0)));
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 7);
  EXPECT_EQ(w.steps_taken(cpid(1)), 0);
}

TEST(Consensus, NoDecisionBeforeAnyInput) {
  const int n = 2;
  FailurePattern f(n);
  OmegaFd omega(0);
  World w(f, omega.history(f, 1));
  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RoundRobinScheduler rr;
  drive(w, rr, 5000);
  EXPECT_TRUE(w.memory().read("cons/DEC").is_nil());
}

TEST(Consensus, AdoptCommitServerVariant) {
  // The ablation server (rounds of adopt-commit instead of Paxos ballots)
  // implements the same interface with the same guarantees.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const int n = 3;
    const FailurePattern f = Environment(n, n - 1).sample(seed, static_cast<int>(seed % n), 15);
    OmegaFd omega(35);
    World w(f, omega.history(f, seed));
    const LeaderConsensusConfig cfg{"consac", n};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(200 + i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server_ac(cfg));
    RandomScheduler rs(seed * 5 + 2);
    const auto r = drive(w, rs, 600000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed << " " << f.to_string();
    std::set<std::int64_t> vals;
    for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
    EXPECT_EQ(vals.size(), 1u) << "seed " << seed;
    EXPECT_GE(*vals.begin(), 200);
    EXPECT_LT(*vals.begin(), 200 + n);
  }
}

TEST(Consensus, AdoptCommitServerSafetyBeforeGst) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const int n = 3;
    FailurePattern f(n);
    OmegaFd omega(1000000);  // never stabilizes within the run
    World w(f, omega.history(f, seed));
    const LeaderConsensusConfig cfg{"consac", n};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server_ac(cfg));
    RandomScheduler rs(seed);
    drive(w, rs, 30000);
    std::set<std::int64_t> vals;
    for (int i = 0; i < n; ++i) {
      if (w.decided(cpid(i))) vals.insert(w.decision(cpid(i)).as_int());
    }
    EXPECT_LE(vals.size(), 1u) << "seed " << seed;
  }
}

TEST(Consensus, SafetyHoldsEvenBeforeGst) {
  // With a huge GST the leader oracle misbehaves for the whole run; safety
  // (no two different decisions) must still hold whenever decisions happen.
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FailurePattern f(n);
    OmegaFd omega(1000000);  // never stabilizes within the run
    World w(f, omega.history(f, seed));
    const LeaderConsensusConfig cfg{"cons", n};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
    RandomScheduler rs(seed);
    drive(w, rs, 30000);
    std::set<std::int64_t> vals;
    for (int i = 0; i < n; ++i) {
      if (w.decided(cpid(i))) vals.insert(w.decision(cpid(i)).as_int());
    }
    EXPECT_LE(vals.size(), 1u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace efd
