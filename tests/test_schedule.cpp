// Tests for the schedulers (sim/schedule.hpp): fairness of round-robin,
// determinism of the random scheduler, and the k-concurrency window.
#include <gtest/gtest.h>

#include <algorithm>

#include "fd/detectors.hpp"
#include "sim/adversary.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

Proc count_steps(Context& ctx) {
  for (int i = 0; i < 100; ++i) co_await ctx.yield();
}

Proc decide_after(Context& ctx, int steps) {
  for (int i = 0; i < steps; ++i) co_await ctx.yield();
  co_await ctx.decide(Value(steps));
}

TEST(RoundRobin, SchedulesEveryEligibleProcess) {
  World w = World::failure_free(2);
  w.spawn_c(0, count_steps);
  w.spawn_c(1, count_steps);
  w.spawn_s(0, count_steps);
  RoundRobinScheduler rr;
  for (int i = 0; i < 30; ++i) {
    const auto pid = rr.next(w);
    ASSERT_TRUE(pid.has_value());
    w.step(*pid);
  }
  EXPECT_EQ(w.steps_taken(cpid(0)), 10);
  EXPECT_EQ(w.steps_taken(cpid(1)), 10);
  EXPECT_EQ(w.steps_taken(spid(0)), 10);
}

TEST(RoundRobin, SkipsCrashedSProcesses) {
  FailurePattern f(2);
  f.crash(0, 0);
  World w(f, TrivialFd{}.history(f, 0));
  w.spawn_s(0, count_steps);
  w.spawn_s(1, count_steps);
  RoundRobinScheduler rr;
  for (int i = 0; i < 10; ++i) {
    const auto pid = rr.next(w);
    ASSERT_TRUE(pid.has_value());
    EXPECT_EQ(*pid, spid(1));
    w.step(*pid);
  }
}

TEST(RoundRobin, ExhaustsWhenAllTerminated) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc { co_await ctx.decide(Value(1)); });
  RoundRobinScheduler rr;
  w.step(*rr.next(w));
  EXPECT_FALSE(rr.next(w).has_value());
}

TEST(RandomScheduler, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    World w = World::failure_free(1);
    w.spawn_c(0, count_steps);
    w.spawn_c(1, count_steps);
    w.spawn_c(2, count_steps);
    RandomScheduler rs(seed);
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      const auto pid = rs.next(w);
      order.push_back(pid->index);
      w.step(*pid);
    }
    return order;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(RandomScheduler, EventuallySchedulesEveryone) {
  World w = World::failure_free(1);
  for (int i = 0; i < 4; ++i) w.spawn_c(i, count_steps);
  RandomScheduler rs(1);
  for (int i = 0; i < 200; ++i) w.step(*rs.next(w));
  for (int i = 0; i < 4; ++i) EXPECT_GT(w.steps_taken(cpid(i)), 0) << "process " << i;
}

TEST(ExplicitSchedule, ReplaysExactly) {
  World w = World::failure_free(1);
  w.spawn_c(0, count_steps);
  w.spawn_c(1, count_steps);
  ExplicitSchedule es({cpid(0), cpid(0), cpid(1)});
  int steps = 0;
  while (const auto pid = es.next(w)) {
    w.step(*pid);
    ++steps;
  }
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(w.steps_taken(cpid(0)), 2);
  EXPECT_EQ(w.steps_taken(cpid(1)), 1);
}

TEST(KConcurrency, WindowNeverExceedsK) {
  World w = World::failure_free(1);
  w.enable_trace();
  std::vector<int> arrival;
  for (int i = 0; i < 5; ++i) {
    arrival.push_back(i);
    w.spawn_c(i, [](Context& ctx) { return decide_after(ctx, 6); });
  }
  KConcurrencyScheduler ks(2, arrival, 0);
  const auto r = drive(w, ks, 10000);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_LE(max_concurrency(w.trace()), 2);
}

TEST(KConcurrency, AdmitsInArrivalOrder) {
  World w = World::failure_free(1);
  w.enable_trace();
  const std::vector<int> arrival = {2, 0, 1};
  for (int i = 0; i < 3; ++i) {
    w.spawn_c(i, [](Context& ctx) { return decide_after(ctx, 2); });
  }
  KConcurrencyScheduler ks(1, arrival, 0);  // 1-concurrent: strictly sequential
  drive(w, ks, 1000);
  // First non-null step of each process appears in arrival order.
  std::vector<int> first_seen;
  for (const auto& s : w.trace()) {
    if (s.pid.is_c() && std::find(first_seen.begin(), first_seen.end(), s.pid.index) ==
                            first_seen.end()) {
      first_seen.push_back(s.pid.index);
    }
  }
  EXPECT_EQ(first_seen, arrival);
}

TEST(KConcurrency, InterleavesSProcesses) {
  World w = World::failure_free(2);
  w.spawn_c(0, [](Context& ctx) { return decide_after(ctx, 50); });
  w.spawn_s(0, count_steps);
  w.spawn_s(1, count_steps);
  KConcurrencyScheduler ks(1, {0}, 1);
  drive(w, ks, 300);
  EXPECT_GT(w.steps_taken(spid(0)), 5);
  EXPECT_GT(w.steps_taken(spid(1)), 5);
}

TEST(Drive, StopsWhenAllCDecided) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) { return decide_after(ctx, 3); });
  w.spawn_s(0, count_steps);  // would run 100 steps if allowed
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 10000);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_LT(r.steps, 20);
}

TEST(Drive, RespectsStepBound) {
  World w = World::failure_free(1);
  w.spawn_c(0, count_steps);  // never decides
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 50);
  EXPECT_FALSE(r.all_c_decided);
  EXPECT_EQ(r.steps, 50);
}

// Stop causes are explicit and mutually exclusive: exactly one of
// all_c_decided / budget_exhausted / exhausted is set.
TEST(Drive, BudgetExhaustionIsItsOwnStopCause) {
  World w = World::failure_free(1);
  w.spawn_c(0, count_steps);  // never decides
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 50);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_FALSE(r.all_c_decided);
  EXPECT_FALSE(r.exhausted);
}

TEST(Drive, SchedulerExhaustionIsNotBudgetExhaustion) {
  World w = World::failure_free(1);
  // Terminates without deciding: round-robin runs dry with budget left.
  w.spawn_c(0, [](Context& ctx) -> Proc { co_await ctx.yield(); });
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 50);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_FALSE(r.all_c_decided);
}

TEST(Drive, DecidedRunSetsNoOtherCause) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) { return decide_after(ctx, 3); });
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 10000);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_FALSE(r.exhausted);
}

// ---- record -> replay identity across scheduler families -------------------
//
// The tape pipeline's core property (sim/replay.hpp): for ANY scheduler,
// wrapping it in a RecordingScheduler and replaying the captured tape in a
// fresh world reproduces the run bit-for-bit — same trace hash, same
// deterministic RunStats subset. Exercised per scheduler family because each
// reaches the tape through a different code path (stateless random picks,
// rotation state, dynamic suppression).

namespace record_replay {

World make_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  w.spawn_c(0, [](Context& ctx) { return decide_after(ctx, 9); });
  w.spawn_c(1, [](Context& ctx) { return decide_after(ctx, 14); });
  w.spawn_c(2, [](Context& ctx) { return decide_after(ctx, 4); });
  for (int i = 0; i < f.n(); ++i) w.spawn_s(i, count_steps);
  return w;
}

void expect_identity(Scheduler& sched, const FailurePattern& f, const HistoryPtr& h) {
  World w = make_world(f, h);
  w.enable_trace();
  RecordingScheduler rec(sched);
  drive(w, rec, 400);
  const ScheduleTape tape = ScheduleTape::capture("", f, rec.steps(), {}, w.trace());

  World w2 = make_world(tape.pattern(), tape.history());
  const ReplayResult rr = replay_tape(w2, tape);
  EXPECT_TRUE(rr.hash_match) << "replay diverged from the recording";
  EXPECT_TRUE(deterministic_equal(w.run_stats(), w2.run_stats()));
  EXPECT_EQ(w.output_vector(), w2.output_vector());
}

}  // namespace record_replay

TEST(RecordReplay, RandomSchedulerIdentity) {
  const FailurePattern f(2);
  const auto h = TrivialFd{}.history(f, 0);
  for (const std::uint64_t seed : {1ULL, 9ULL, 77ULL}) {
    RandomScheduler rs(seed);
    record_replay::expect_identity(rs, f, h);
  }
}

TEST(RecordReplay, LockstepSchedulerIdentity) {
  const FailurePattern f(1);
  const auto h = TrivialFd{}.history(f, 0);
  LockstepScheduler ls({cpid(2), cpid(0), spid(0), cpid(1)});
  record_replay::expect_identity(ls, f, h);
}

TEST(RecordReplay, SuppressSchedulerIdentity) {
  // Dynamic suppression (state-dependent: p2 is starved until p3 decides)
  // still records to a plain pid sequence that replays without the wrapper.
  const FailurePattern f(2);
  const auto h = TrivialFd{}.history(f, 0);
  RoundRobinScheduler inner;
  SuppressScheduler sup(inner, [](Pid pid, const World& w) {
    return pid == cpid(1) && !w.decided(cpid(2));
  });
  record_replay::expect_identity(sup, f, h);
}

TEST(RecordReplay, CrashedPatternIdentity) {
  // Base-pattern crashes (refused steps, null scheduling) replay through the
  // tape's pattern line, independent of injected crash points.
  FailurePattern f(3);
  f.crash(1, 6);
  const auto h = TrivialFd{}.history(f, 0);
  RandomScheduler rs(13);
  record_replay::expect_identity(rs, f, h);
}

TEST(Drive, SOnlyWorldIsNeverVacuouslyDecided) {
  // No C-processes at all: the old drive() reported all_c_decided == true on
  // entry (vacuous truth over an empty set), hiding that the S-run merely hit
  // its step budget. Reduction harness runs (fd/reduction) are exactly this
  // shape.
  World w = World::failure_free(2);
  w.spawn_s(0, count_steps);
  w.spawn_s(1, count_steps);
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 30);
  EXPECT_FALSE(r.all_c_decided);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.steps, 30);
}

}  // namespace
}  // namespace efd
