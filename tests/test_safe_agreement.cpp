// Tests for safe agreement (algo/safe_agreement.hpp): agreement, validity,
// and the propose-window blocking behaviour BG-simulation relies on.
#include <gtest/gtest.h>

#include <set>

#include "algo/safe_agreement.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace efd {
namespace {

Proc party(Context& ctx, SafeAgreementInstance inst, int me, Value v) {
  co_await sa_propose(ctx, inst, me, v);
  const Value d = co_await sa_resolve(ctx, inst);
  co_await ctx.decide(d);
}

TEST(SafeAgreement, SoloProposerGetsOwnValue) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) {
    return party(ctx, SafeAgreementInstance{"sa", 3}, 0, Value(5));
  });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 5);
}

TEST(SafeAgreement, AgreementAcrossSchedules) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    World w = World::failure_free(1);
    for (int i = 0; i < 3; ++i) {
      w.spawn_c(i, [i](Context& ctx) {
        return party(ctx, SafeAgreementInstance{"sa", 3}, i, Value(10 + i));
      });
    }
    RandomScheduler rs(seed);
    const auto r = drive(w, rs, 50000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
    std::set<std::int64_t> vals;
    for (int i = 0; i < 3; ++i) vals.insert(w.decision(cpid(i)).as_int());
    EXPECT_EQ(vals.size(), 1u) << "seed " << seed;
    EXPECT_GE(*vals.begin(), 10);
    EXPECT_LE(*vals.begin(), 12);
  }
}

TEST(SafeAgreement, ResolveBlocksDuringProposeWindow) {
  // p2 writes level 1 and then stalls; p1's resolve must report "blocked".
  World w = World::failure_free(1);
  w.memory().write(reg("sa/L", 1), vec(Value(7), Value(1)));  // p2 mid-propose
  w.spawn_c(0, [](Context& ctx) -> Proc {
    const SafeAgreementInstance inst{"sa", 2};
    co_await sa_propose(ctx, inst, 0, Value(3));
    const Value r = co_await sa_try_resolve(ctx, inst);
    co_await ctx.decide(r);
  });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_EQ(w.decision(cpid(0)).at(0).as_int(), 0);  // blocked
}

TEST(SafeAgreement, LateProposerBacksOff) {
  // p1 completes its protocol alone; p2 proposing afterwards must see the
  // committed value and abstain, keeping agreement on p1's value.
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) {
    return party(ctx, SafeAgreementInstance{"sa", 2}, 0, Value(1));
  });
  RoundRobinScheduler rr1;
  drive(w, rr1, 1000);
  ASSERT_EQ(w.decision(cpid(0)).as_int(), 1);
  w.spawn_c(1, [](Context& ctx) {
    return party(ctx, SafeAgreementInstance{"sa", 2}, 1, Value(2));
  });
  RoundRobinScheduler rr2;
  drive(w, rr2, 1000);
  EXPECT_EQ(w.decision(cpid(1)).as_int(), 1);  // adopts, does not overwrite
}

TEST(SafeAgreement, MinIdCommittedWins) {
  // Both commit (possible in safe agreement); everyone resolves to the value
  // of the smallest-id committed party.
  World w = World::failure_free(1);
  w.memory().write(reg("sa/L", 0), vec(Value(50), Value(2)));
  w.memory().write(reg("sa/L", 1), vec(Value(60), Value(2)));
  w.spawn_c(2, [](Context& ctx) -> Proc {
    const SafeAgreementInstance inst{"sa", 3};
    co_await sa_propose(ctx, inst, 2, Value(70));
    const Value d = co_await sa_resolve(ctx, inst);
    co_await ctx.decide(d);
  });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_EQ(w.decision(cpid(2)).as_int(), 50);
}

TEST(SafeAgreement, ValidityDecidedWasProposed) {
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    World w = World::failure_free(1);
    for (int i = 0; i < 4; ++i) {
      w.spawn_c(i, [i](Context& ctx) {
        return party(ctx, SafeAgreementInstance{"sa", 4}, i, Value(100 + i));
      });
    }
    RandomScheduler rs(seed);
    drive(w, rs, 100000);
    for (int i = 0; i < 4; ++i) {
      const auto d = w.decision(cpid(i)).as_int();
      EXPECT_GE(d, 100);
      EXPECT_LE(d, 103);
    }
  }
}

}  // namespace
}  // namespace efd
