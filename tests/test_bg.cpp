// Tests for BG-simulation (algo/bg_simulation.hpp) and the Thm. 7 booster.
#include <gtest/gtest.h>

#include <set>

#include "algo/bg_simulation.hpp"
#include "algo/booster.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

// A simple colorless code: write own input, read everyone's, decide the
// minimum seen. Uses write-once registers, satisfying the BG contract.
struct MinCode final : SimProgram {
  int n;
  explicit MinCode(int n) : n(n) {}
  Value init(int idx, const Value& input) const override {
    return vec(Value(idx), input, Value(0), input);  // [idx, input, next_read, min]
  }
  SimAction action(const Value& st) const override {
    const auto stage = st.at(2).int_or(0);
    if (stage == -1) return {};  // halt
    if (stage == -2) return {SimAction::Kind::kDecide, "", st.at(3)};
    if (stage == 0) {
      return {SimAction::Kind::kWrite, reg("mc/in", static_cast<int>(st.at(0).int_or(0))),
              st.at(1)};
    }
    if (stage <= n) return {SimAction::Kind::kRead, reg("mc/in", static_cast<int>(stage) - 1), {}};
    return {SimAction::Kind::kDecide, "", st.at(3)};
  }
  Value transition(const Value& st, const Value& result) const override {
    const auto stage = st.at(2).int_or(0);
    Value min = st.at(3);
    if (stage >= 1 && stage <= n && result.is_int() &&
        (min.is_nil() || result.as_int() < min.as_int())) {
      min = result;
    }
    const std::int64_t next = stage > n ? -1 : stage + 1;
    return vec(st.at(0), st.at(1), Value(next), min);
  }
};

TEST(Bg, SimulatorsAgreeOnEveryCodesDecision) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w = World::failure_free(1);
    BgConfig cfg;
    cfg.ns = "bg";
    cfg.num_simulators = 3;
    cfg.num_codes = 2;
    cfg.code = std::make_shared<MinCode>(4);
    for (int i = 0; i < 3; ++i) {
      w.spawn_c(i, make_bg_simulator(cfg, Value(10 + i), adopt_any()));
    }
    RandomScheduler rs(seed);
    const auto r = drive(w, rs, 200000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
    // Decisions are code decisions; MinCode decides the min of what it saw,
    // which is one of the simulators' inputs.
    for (int i = 0; i < 3; ++i) {
      const auto d = w.decision(cpid(i)).as_int();
      EXPECT_GE(d, 10);
      EXPECT_LE(d, 12);
    }
    // Both codes, if decided, decided consistently across simulators: the
    // published decision registers are single-valued.
    for (int c = 0; c < 2; ++c) {
      const Value dec = w.memory().read(reg("bg/dec", c));
      if (!dec.is_nil()) {
        EXPECT_GE(dec.as_int(), 10);
        EXPECT_LE(dec.as_int(), 12);
      }
    }
  }
}

TEST(Bg, StalledSimulatorBlocksAtMostOneCode) {
  // 3 simulators, 3 codes; simulator p3 stops forever after a few steps.
  // At least 2 codes must still decide.
  World w = World::failure_free(1);
  BgConfig cfg;
  cfg.ns = "bg";
  cfg.num_simulators = 3;
  cfg.num_codes = 3;
  cfg.code = std::make_shared<MinCode>(4);
  for (int i = 0; i < 3; ++i) {
    w.spawn_c(i, make_bg_simulator(cfg, Value(20 + i), adopt_any()));
  }
  // p3 takes 7 steps (possibly mid-safe-agreement), then never runs again.
  for (int s = 0; s < 7; ++s) w.step(cpid(2));
  for (int round = 0; round < 30000 && !(w.decided(cpid(0)) && w.decided(cpid(1))); ++round) {
    w.step(cpid(0));
    w.step(cpid(1));
  }
  // The live simulators still decide: the stall blocks at most one code
  // (here: code 0, whose input agreement p3 wedged mid-propose), and
  // adopt_any harvests from any code that got through.
  EXPECT_TRUE(w.decided(cpid(0)));
  EXPECT_TRUE(w.decided(cpid(1)));
  int decided_codes = 0;
  for (int c = 0; c < 3; ++c) {
    if (!w.memory().read(reg("bg/dec", c)).is_nil()) ++decided_codes;
  }
  EXPECT_GE(decided_codes, 1);
}

TEST(Bg, InputBaseModeReadsRealInputs) {
  // Thm. 9 mode: codes take inputs from registers, not from safe agreement.
  World w = World::failure_free(1);
  w.memory().write(reg("ins", 0), Value(5));
  w.memory().write(reg("ins", 1), Value(3));
  BgConfig cfg;
  cfg.ns = "bg";
  cfg.num_simulators = 2;
  cfg.num_codes = 2;
  cfg.code = std::make_shared<MinCode>(2);
  cfg.input_base = "ins";
  for (int i = 0; i < 2; ++i) {
    w.spawn_c(i, make_bg_simulator(cfg, Value(999), adopt_any()));
  }
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 100000);
  ASSERT_TRUE(r.all_c_decided);
  // The simulators' own value 999 never entered the simulation: decisions
  // come from the register-published task inputs only (a code may decide
  // before observing the other's input, so 5 is as legal as 3).
  for (int i = 0; i < 2; ++i) {
    const auto d = w.decision(cpid(i)).as_int();
    EXPECT_TRUE(d == 3 || d == 5) << d;
  }
}

TEST(Booster, KSetAgreementAmongAllFromScopeKPlus1) {
  // Thm. 7: (U, k)-agreement with |U| = k+1 boosts to (Π, k)-agreement.
  struct Case {
    int n, k, faults;
    std::uint64_t seed;
  };
  for (const Case c : {Case{4, 2, 1, 1}, Case{5, 2, 2, 2}, Case{5, 3, 1, 3}, Case{4, 1, 2, 4}}) {
    const FailurePattern f = Environment(c.n, c.n - 1).sample(c.seed, c.faults, 10);
    VectorOmegaK vo(c.k, 40);
    World w(f, vo.history(f, c.seed));
    const BoosterConfig cfg{"boost", c.n, c.k};
    for (int i = 0; i < c.n; ++i) w.spawn_c(i, make_booster_simulator(cfg, Value(i)));
    for (int i = 0; i < c.n; ++i) w.spawn_s(i, make_booster_server(cfg));
    RandomScheduler rs(c.seed + 11);
    const auto r = drive(w, rs, 4000000);
    ASSERT_TRUE(r.all_c_decided) << "n=" << c.n << " k=" << c.k;
    std::set<std::int64_t> vals;
    for (int i = 0; i < c.n; ++i) {
      const auto d = w.decision(cpid(i)).as_int();
      EXPECT_GE(d, 0);
      EXPECT_LT(d, c.n);  // validity: some simulator's input
      vals.insert(d);
    }
    EXPECT_LE(static_cast<int>(vals.size()), c.k) << "n=" << c.n << " k=" << c.k;
  }
}

}  // namespace
}  // namespace efd
