// Tests for the liveness monitors (core/monitors.hpp): wait-freedom bounds
// over OWN steps, the starvation and livelock watchdogs, finalize semantics,
// and the telemetry JSON block.
#include <gtest/gtest.h>

#include "core/monitors.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

Proc spin(Context& ctx) {
  for (;;) co_await ctx.yield();
}

Proc decide_after(Context& ctx, int busy_steps, Value v) {
  for (int i = 0; i < busy_steps; ++i) co_await ctx.yield();
  co_await ctx.decide(v);
}

TEST(LivenessMonitor, CleanRunCertifiesWaitFreedom) {
  World w = World::failure_free(0);
  w.spawn_c(0, [](Context& ctx) { return decide_after(ctx, 3, Value(1)); });
  w.spawn_c(1, [](Context& ctx) { return decide_after(ctx, 5, Value(2)); });
  LivenessMonitor mon({/*own_steps_to_decide=*/10, /*starvation_window=*/50,
                       /*livelock_window=*/50});
  w.attach_observer(&mon);
  RoundRobinScheduler rr;
  const DriveResult r = drive(w, rr, 100);
  w.attach_observer(nullptr);
  mon.finalize(w);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_TRUE(mon.ok());
  EXPECT_TRUE(mon.wait_free_ok());
  EXPECT_EQ(mon.decisions(), 2);
  EXPECT_EQ(mon.max_own_steps_to_decide(), 6);  // 5 yields + the decide step
}

TEST(LivenessMonitor, FlagsWaitFreedomViolationOnOwnSteps) {
  World w = World::failure_free(0);
  w.spawn_c(0, spin);  // never decides
  LivenessMonitor mon({/*own_steps_to_decide=*/8, 0, 0});
  w.attach_observer(&mon);
  RoundRobinScheduler rr;
  (void)drive(w, rr, 50);
  w.attach_observer(nullptr);
  mon.finalize(w);
  EXPECT_FALSE(mon.wait_free_ok());
  ASSERT_EQ(mon.violations().size(), 1U);  // flagged once, not per step
  const MonitorViolation& v = mon.violations().front();
  EXPECT_EQ(v.kind, MonitorViolation::Kind::kWaitFree);
  EXPECT_EQ(v.pid, cpid(0));
  EXPECT_GT(v.measured, v.bound);
}

TEST(LivenessMonitor, OwnStepBoundIgnoresOtherProcessesSteps) {
  // p1 decides within 4 OWN steps while the S-process burns a hundred global
  // steps first: a bound of 8 own steps must hold regardless.
  World w = World::failure_free(1);
  w.spawn_s(0, spin);
  w.spawn_c(0, [](Context& ctx) { return decide_after(ctx, 3, Value(1)); });
  LivenessMonitor mon({/*own_steps_to_decide=*/8, 0, 0});
  w.attach_observer(&mon);
  std::vector<Pid> seq(100, spid(0));
  for (int i = 0; i < 4; ++i) seq.push_back(cpid(0));
  ExplicitSchedule sched(seq);
  (void)drive(w, sched, 200);
  w.attach_observer(nullptr);
  EXPECT_TRUE(mon.wait_free_ok());
  EXPECT_EQ(mon.max_own_steps_to_decide(), 4);
}

TEST(LivenessMonitor, StarvationIsObservedOnResurfaceAndAtFinalize) {
  World w = World::failure_free(0);
  w.spawn_c(0, spin);
  w.spawn_c(1, spin);
  LivenessMonitor mon({0, /*starvation_window=*/10, 0});
  w.attach_observer(&mon);
  std::vector<Pid> seq;
  seq.push_back(cpid(1));
  for (int i = 0; i < 25; ++i) seq.push_back(cpid(0));  // p2 starves for 25 steps
  seq.push_back(cpid(1));                               // resurfaces
  ExplicitSchedule sched(seq);
  (void)drive(w, sched, 100);
  w.attach_observer(nullptr);
  mon.finalize(w);
  EXPECT_TRUE(mon.wait_free_ok());  // starvation is not a wait-freedom violation
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_EQ(mon.violations().front().kind, MonitorViolation::Kind::kStarvation);
  EXPECT_GE(mon.max_starvation_gap(), 25);

  // End-of-run gap without resurfacing: finalize must flush it.
  World w2 = World::failure_free(0);
  w2.spawn_c(0, spin);
  w2.spawn_c(1, spin);
  LivenessMonitor mon2({0, /*starvation_window=*/10, 0});
  w2.attach_observer(&mon2);
  ExplicitSchedule sched2(std::vector<Pid>(30, cpid(0)));
  (void)drive(w2, sched2, 100);
  w2.attach_observer(nullptr);
  EXPECT_TRUE(mon2.ok());  // not yet: the gap is still open
  mon2.finalize(w2);
  ASSERT_FALSE(mon2.violations().empty());
  EXPECT_EQ(mon2.violations().front().kind, MonitorViolation::Kind::kStarvation);
}

TEST(LivenessMonitor, FlagsCollectiveLivelock) {
  World w = World::failure_free(0);
  w.spawn_c(0, spin);
  w.spawn_c(1, spin);
  LivenessMonitor mon({0, 0, /*livelock_window=*/12});
  w.attach_observer(&mon);
  RoundRobinScheduler rr;
  (void)drive(w, rr, 60);
  w.attach_observer(nullptr);
  mon.finalize(w);
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_EQ(mon.violations().front().kind, MonitorViolation::Kind::kLivelock);
  EXPECT_GE(mon.max_decision_drought(), 12);
}

TEST(LivenessMonitor, DecisionsResetTheLivelockDrought) {
  World w = World::failure_free(0);
  for (int i = 0; i < 4; ++i) {
    w.spawn_c(i, [i](Context& ctx) { return decide_after(ctx, 4, Value(i)); });
  }
  // Round-robin: a decision lands at least every ~20 collective steps.
  LivenessMonitor mon({0, 0, /*livelock_window=*/25});
  w.attach_observer(&mon);
  RoundRobinScheduler rr;
  const DriveResult r = drive(w, rr, 200);
  w.attach_observer(nullptr);
  mon.finalize(w);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_TRUE(mon.ok());
}

TEST(LivenessMonitor, ZeroBoundsDisableAllChecks) {
  World w = World::failure_free(0);
  w.spawn_c(0, spin);
  LivenessMonitor mon{MonitorBounds{}};
  w.attach_observer(&mon);
  RoundRobinScheduler rr;
  (void)drive(w, rr, 500);
  w.attach_observer(nullptr);
  mon.finalize(w);
  EXPECT_TRUE(mon.ok());
  EXPECT_EQ(mon.monitored_steps(), 500);
}

TEST(LivenessMonitor, JsonReportsBoundsAndViolations) {
  World w = World::failure_free(0);
  w.spawn_c(0, spin);
  LivenessMonitor mon({/*own_steps_to_decide=*/5, 0, 0});
  w.attach_observer(&mon);
  RoundRobinScheduler rr;
  (void)drive(w, rr, 20);
  w.attach_observer(nullptr);
  mon.finalize(w);
  const std::string json = mon.to_json().dump();
  EXPECT_NE(json.find("\"wait_free_ok\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_free\""), std::string::npos);
}

}  // namespace
}  // namespace efd
