// Tests for the FLP-style lasso search (core/bivalence.hpp), driven by a
// naive strong 2-renaming candidate — the concrete face of Lemma 11 /
// Thm. 12: candidate algorithms for 2-concurrent strong renaming livelock.
#include <gtest/gtest.h>

#include "core/bivalence.hpp"
#include "sim/memory.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace efd {
namespace {

// Naive strong 2-renaming for processes {0, 1}: publish a name, read the
// other's, flip 1<->2 on a clash, decide after two clash-free looks. Solo
// and asymmetric runs decide; symmetric lockstep flips forever — the
// non-deciding run Thm. 12 says must exist in SOME form for every candidate.
// State encoding: [me, name, stable, phase].
struct NaiveRenaming final : SimProgram {
  Value init(int index, const Value&) const override {
    return vec(Value(index), Value(1), Value(0), Value(0));
  }
  SimAction action(const Value& st) const override {
    const int me = static_cast<int>(st.at(0).int_or(0));
    const auto phase = st.at(3).int_or(0);
    if (phase == 0) return {SimAction::Kind::kWrite, reg("nr/R", me), st.at(1)};
    if (phase == 1) return {SimAction::Kind::kRead, reg("nr/R", 1 - me), {}};
    if (phase == 2) return {SimAction::Kind::kDecide, "", st.at(1)};
    return {};
  }
  Value transition(const Value& st, const Value& result) const override {
    const auto phase = st.at(3).int_or(0);
    std::int64_t name = st.at(1).int_or(1);
    std::int64_t stable = st.at(2).int_or(0);
    std::int64_t next = phase + 1;
    if (phase == 1) {
      if (result.is_nil() || result.int_or(0) != name) {
        next = ++stable >= 2 ? 2 : 0;
      } else {
        stable = 0;
        name = 3 - name;  // clash: flip
        next = 0;
      }
    }
    return vec(st.at(0), Value(name), Value(stable), Value(next));
  }
};

LassoConfig two_party_cfg() {
  LassoConfig cfg;
  cfg.participants = {0, 1};
  cfg.max_depth = 200;
  return cfg;
}

TEST(Lasso, SoloRunsOfCandidateTerminate) {
  // Run the automaton natively in a world: solo it decides name 1.
  World w = World::failure_free(1);
  w.spawn_c(0, make_sim_program_body(std::make_shared<NaiveRenaming>(), 0, Value{}));
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 1000);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 1);
}

TEST(Lasso, SequentialRunsGetDistinctNames) {
  World w = World::failure_free(1);
  auto prog = std::make_shared<NaiveRenaming>();
  w.spawn_c(0, make_sim_program_body(prog, 0, Value{}));
  w.spawn_c(1, make_sim_program_body(prog, 1, Value{}));
  while (!w.decided(cpid(0))) w.step(cpid(0));
  while (!w.decided(cpid(1))) w.step(cpid(1));
  EXPECT_NE(w.decision(cpid(0)), w.decision(cpid(1)));
}

TEST(Lasso, FindsNonTerminationInNaiveRenaming) {
  // FLP/Thm. 12 evidence: the candidate has an infinite non-deciding
  // 2-concurrent schedule.
  const auto r = find_nontermination(std::make_shared<NaiveRenaming>(), {Value(0), Value(1)},
                                     two_party_cfg());
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.cycle.empty());
}

TEST(Lasso, WitnessReplaysWithoutDecidingInAWorld) {
  const auto r = find_nontermination(std::make_shared<NaiveRenaming>(), {Value(0), Value(1)},
                                     two_party_cfg());
  ASSERT_TRUE(r.found);

  // Replay the lasso against the real coroutine runtime: still no decision.
  World w = World::failure_free(1);
  auto prog = std::make_shared<NaiveRenaming>();
  w.spawn_c(0, make_sim_program_body(prog, 0, Value{}));
  w.spawn_c(1, make_sim_program_body(prog, 1, Value{}));
  for (int c : r.prefix) w.step(cpid(c));
  for (int rep = 0; rep < 25; ++rep) {
    for (int c : r.cycle) w.step(cpid(c));
  }
  EXPECT_FALSE(w.all_c_decided());
}

TEST(Lasso, TerminatingAutomatonHasNoLasso) {
  // A trivially-deciding automaton: one write, one decide.
  struct Trivial final : SimProgram {
    Value init(int index, const Value& in) const override { return vec(Value(index), in, Value(0)); }
    SimAction action(const Value& st) const override {
      const auto pc = st.at(2).int_or(0);
      if (pc == 0) {
        return {SimAction::Kind::kWrite, reg("t/In", static_cast<int>(st.at(0).int_or(0))),
                st.at(1)};
      }
      if (pc == 1) return {SimAction::Kind::kDecide, "", st.at(1)};
      return {};
    }
    Value transition(const Value& st, const Value&) const override {
      return vec(st.at(0), st.at(1), Value(st.at(2).int_or(0) + 1));
    }
  };
  const auto r = find_nontermination(std::make_shared<Trivial>(), {Value(7), Value(8)},
                                     two_party_cfg());
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(Lasso, BudgetExhaustionIsReported) {
  LassoConfig cfg = two_party_cfg();
  cfg.max_states = 3;  // absurdly small
  const auto r = find_nontermination(std::make_shared<NaiveRenaming>(), {Value(0), Value(1)}, cfg);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.budget_exhausted);
}

}  // namespace
}  // namespace efd
