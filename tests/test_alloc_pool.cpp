// Tests for the arena-pooled coroutine frame allocator (sim/arena.hpp):
//  * FrameArena unit behavior — size-class freelist reuse, Scope nesting,
//    stats accounting, heap fallback for oversized and arena-less frames;
//  * pooling transparency, property-style — arena-backed runs must be
//    bit-identical to heap-backed runs: same trace_hash across seeds and
//    same ExploreOutcome across seeds AND thread counts (the kill switch
//    exists precisely so this A/B stays checkable);
//  * a regression test for the GCC 12.2 coroutine-argument hazard documented
//    in sim/proc.hpp's authoring rules (aggregate prvalues inside a
//    `co_await f(...)` expression are destroyed twice; named locals are the
//    safe form). Run under -DEFD_SANITIZE=address (`ctest -L alloc`), ASan
//    turns any double-destroy into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "algo/one_concurrent.hpp"
#include "core/solvability.hpp"
#include "sim/arena.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

/// Restores the process-global pooling switch, whatever a test set it to.
struct ArenaEnabledGuard {
  bool prev = FrameArena::enabled();
  ~ArenaEnabledGuard() { FrameArena::set_enabled(prev); }
};

// ---------------------------------------------------------------------------
// FrameArena unit behavior.
// ---------------------------------------------------------------------------

TEST(FrameArena, FreelistReusesBlocksOfTheSameSizeClass) {
  FrameArena a;
  void* p = a.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.stats().allocs, 1);
  EXPECT_EQ(a.stats().pool_hits, 0);  // first allocation bumps, no freelist yet
  a.deallocate(p, 100);
  EXPECT_EQ(a.stats().frees, 1);
  EXPECT_EQ(a.stats().live(), 0);
  // 100 and 128 bytes share the 64-byte size class [65..128]: the freed block
  // comes straight back.
  void* q = a.allocate(128);
  EXPECT_EQ(q, p);
  EXPECT_EQ(a.stats().pool_hits, 1);
  a.deallocate(q, 128);
}

TEST(FrameArena, DistinctSizeClassesDoNotShareFreelists) {
  FrameArena a;
  void* small = a.allocate(64);
  a.deallocate(small, 64);
  // 65 bytes is the next class up: must NOT reuse the 64-byte block.
  void* larger = a.allocate(65);
  EXPECT_NE(larger, small);
  a.deallocate(larger, 65);
  EXPECT_EQ(a.stats().live(), 0);
}

TEST(FrameArena, StatsAccountChunkGrowthAndLiveFrames) {
  FrameArena a;
  EXPECT_EQ(a.stats().chunk_bytes, 0);
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) blocks.push_back(a.allocate(256));
  EXPECT_GT(a.stats().chunk_bytes, 0);
  EXPECT_EQ(a.stats().live(), 100);
  for (void* p : blocks) a.deallocate(p, 256);
  EXPECT_EQ(a.stats().live(), 0);
  EXPECT_EQ(a.stats().allocs, 100);
  EXPECT_EQ(a.stats().frees, 100);
}

TEST(FrameArena, ScopesNestAndRestore) {
  FrameArena outer;
  FrameArena inner;
  EXPECT_EQ(FrameArena::current(), nullptr);
  {
    FrameArena::Scope s1(&outer);
    EXPECT_EQ(FrameArena::current(), &outer);
    {
      FrameArena::Scope s2(&inner);
      EXPECT_EQ(FrameArena::current(), &inner);
    }
    EXPECT_EQ(FrameArena::current(), &outer);
  }
  EXPECT_EQ(FrameArena::current(), nullptr);
}

TEST(FrameArena, FrameAllocPoolsOnlyUnderACurrentArena) {
  ArenaEnabledGuard guard;
  FrameArena::set_enabled(true);
  FrameArena a;
  // No current arena: heap fallback, arena untouched, free still routes.
  void* heap_frame = frame_alloc(200);
  EXPECT_EQ(a.stats().allocs, 0);
  frame_free(heap_frame);
  {
    FrameArena::Scope scope(&a);
    void* pooled = frame_alloc(200);
    EXPECT_EQ(a.stats().allocs, 1);
    frame_free(pooled);
    EXPECT_EQ(a.stats().frees, 1);
    // Oversized frames (beyond the largest 4 KiB class) bypass the arena.
    void* big = frame_alloc(64 * 1024);
    EXPECT_EQ(a.stats().allocs, 1);
    frame_free(big);
  }
}

TEST(FrameArena, KillSwitchRoutesFramesToTheHeap) {
  ArenaEnabledGuard guard;
  FrameArena a;
  FrameArena::Scope scope(&a);
  FrameArena::set_enabled(true);
  void* pooled = frame_alloc(128);
  EXPECT_EQ(a.stats().allocs, 1);
  FrameArena::set_enabled(false);
  void* heap_frame = frame_alloc(128);
  EXPECT_EQ(a.stats().allocs, 1);  // disabled: the arena saw nothing
  // A pooled frame frees correctly even after the switch flipped: the owner
  // header, not the global switch, routes the free.
  frame_free(pooled);
  EXPECT_EQ(a.stats().frees, 1);
  frame_free(heap_frame);
}

TEST(FrameArena, WorldRunsRecycleSubroutineFrames) {
  ArenaEnabledGuard guard;
  FrameArena::set_enabled(true);
  World w = World::failure_free(1);
  for (int i = 0; i < 3; ++i) {
    w.spawn_c(i, [](Context& ctx) -> Proc {
      static const Sym kBase = sym("alloc_pool/live");
      co_await ctx.write(reg(kBase, 0), Value(1));
      co_await collect(ctx, kBase, 3);
      co_await collect(ctx, kBase, 3);
      co_await ctx.decide(Value(0));
    });
  }
  RandomScheduler rs(7);
  drive(w, rs, 1000);
  const ArenaStats& s = w.arena_stats();
  EXPECT_GT(s.allocs, 3);  // top-level frames plus nested collect frames
  // Only the three top-level frames are still held (the World keeps finished
  // coroutines until destruction); every nested collect frame went back.
  EXPECT_EQ(s.live(), 3);
  // The second collect of each process reuses the first one's freed frame.
  EXPECT_GT(s.pool_hits, 0);
}

// ---------------------------------------------------------------------------
// Pooling transparency: arena on/off must be bit-identical.
// ---------------------------------------------------------------------------

/// Seed-parameterized pseudo-random process over a small register bank:
/// deterministic in (seed, self), mixes writes, reads, and nested collect
/// frames so the arena sees realistic traffic.
Proc churn_proc(Context& ctx, int self, std::uint64_t seed, Sym base) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(self + 1));
  for (int i = 0; i < 12; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const int cell = static_cast<int>((s >> 20) % 4);
    switch ((s >> 33) % 3) {
      case 0:
        co_await ctx.write(reg(base, cell), Value(static_cast<std::int64_t>(s % 97)));
        break;
      case 1: {
        const Value v = co_await ctx.read(reg(base, cell));
        co_await ctx.write(reg(base, (cell + 1) % 4), v);
        break;
      }
      default:
        co_await collect(ctx, base, 4);
        break;
    }
  }
  co_await ctx.decide(Value(self));
}

std::uint64_t traced_run_hash(bool arena, std::uint64_t seed) {
  ArenaEnabledGuard guard;
  FrameArena::set_enabled(arena);
  World w = World::failure_free(1);
  w.enable_trace();
  const Sym base = sym("alloc_pool/churn");
  for (int i = 0; i < 3; ++i) {
    w.spawn_c(i, [i, seed, base](Context& ctx) { return churn_proc(ctx, i, seed, base); });
  }
  RandomScheduler rs(seed * 2654435761u + 1);
  drive(w, rs, 5000);
  return trace_hash(w.trace());
}

TEST(PoolingTransparency, TraceHashMatchesHeapBaselineAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    EXPECT_EQ(traced_run_hash(true, seed), traced_run_hash(false, seed))
        << "arena-backed trace diverged from heap baseline at seed " << seed;
  }
}

ExploreOutcome sweep(bool arena, int threads, std::uint64_t seed) {
  ArenaEnabledGuard guard;
  FrameArena::set_enabled(arena);
  const TaskPtr task = std::make_shared<SetAgreementTask>(4, 2);
  const ValueVec in = task->sample_input(seed);
  const auto body = [task](int, Value input) {
    return make_one_concurrent(task, input, "alloc_pool/sweep");
  };
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = {0, 1, 2, 3};
  cfg.max_states = 400000;
  cfg.engine = ExploreEngine::kIncremental;
  cfg.threads = threads;
  return explore_k_concurrent(task, body, in, cfg);
}

void expect_same_outcome(const ExploreOutcome& a, const ExploreOutcome& b,
                         const std::string& what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
  EXPECT_EQ(a.states, b.states) << what;
  EXPECT_EQ(a.terminal_runs, b.terminal_runs) << what;
  EXPECT_EQ(a.violation, b.violation) << what;
  EXPECT_EQ(a.bad_schedule, b.bad_schedule) << what;
  EXPECT_EQ(a.stats.dedup_queries, b.stats.dedup_queries) << what;
  EXPECT_EQ(a.stats.dedup_hits, b.stats.dedup_hits) << what;
}

TEST(PoolingTransparency, ExploreOutcomeMatchesHeapBaselineAcrossSeedsAndThreads) {
  for (std::uint64_t seed : {1u, 7u}) {
    const ExploreOutcome heap1 = sweep(false, 1, seed);
    ASSERT_TRUE(heap1.ok) << heap1.violation;
    for (int threads : {1, 2, 8}) {
      expect_same_outcome(heap1, sweep(true, threads, seed),
                          "arena x" + std::to_string(threads) + " seed " +
                              std::to_string(seed));
    }
    expect_same_outcome(heap1, sweep(false, 8, seed),
                        "heap x8 seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// GCC 12.2 prvalue hazard (sim/proc.hpp authoring rules).
// ---------------------------------------------------------------------------

/// Destructor-balance canary: `live` going negative means a double-destroy
/// (the GCC 12.2 failure mode for aggregate prvalues passed inside a
/// `co_await f(...)` expression). Under ASan the double-destroy itself also
/// aborts the run via the heap-backed member.
struct DtorCanary {
  static std::atomic<int> live;
  static std::atomic<bool> went_negative;
  // Heap-backed member so a second destruction is a detectable double-free.
  std::shared_ptr<std::string> payload;

  explicit DtorCanary(std::string s)
      : payload(std::make_shared<std::string>(std::move(s))) {
    ++live;
  }
  DtorCanary(const DtorCanary& o) : payload(o.payload) { ++live; }
  DtorCanary(DtorCanary&& o) noexcept : payload(std::move(o.payload)) { ++live; }
  ~DtorCanary() {
    if (--live < 0) went_negative = true;
  }
};
std::atomic<int> DtorCanary::live{0};
std::atomic<bool> DtorCanary::went_negative{false};

Co<Value> child_taking_aggregate(Context& ctx, DtorCanary canary) {
  const Value v = co_await ctx.read(reg(*canary.payload, 0));
  co_return v;
}

Proc prvalue_hazard_proc(Context& ctx) {
  // The documented-SAFE form: bind the aggregate to a named local before the
  // co_await expression. (Passing `DtorCanary{...}` directly inside the
  // co_await is the GCC 12.2 double-destroy; the authoring rules ban it.)
  DtorCanary canary("alloc_pool/hazard");
  const Value v = co_await child_taking_aggregate(ctx, canary);
  co_await ctx.decide(v.is_nil() ? Value(0) : v);
}

TEST(PrvalueHazard, NamedLocalAggregateArgumentDestroysExactlyOnce) {
  ArenaEnabledGuard guard;
  for (const bool arena : {true, false}) {
    FrameArena::set_enabled(arena);
    DtorCanary::live = 0;
    DtorCanary::went_negative = false;
    {
      World w = World::failure_free(1);
      w.spawn_c(0, [](Context& ctx) { return prvalue_hazard_proc(ctx); });
      RandomScheduler rs(11);
      drive(w, rs, 100);
      EXPECT_TRUE(w.decided(cpid(0)));
    }
    EXPECT_EQ(DtorCanary::live.load(), 0) << "arena=" << arena;
    EXPECT_FALSE(DtorCanary::went_negative.load())
        << "double-destroy: arena=" << arena;
  }
}

}  // namespace
}  // namespace efd
