// Link-fault layer tests (ctest -L substrate): the PR 10 lossy-link stack
// from the fabric up.
//
//  * ChannelFabric charge semantics — the deterministic consumption order
//    (severed > empty > delay > reorder pick > pop > drop > dup) that the
//    replay contract depends on, counter bookkeeping, idle reclaim, and the
//    eager/unknown-link/negative-charge error cases;
//  * lossy (sender, mailbox) pairs — the stateless subset eager exploration
//    supports: swallowed sends mutate nothing, and a process whose inbound
//    flood was dropped dead-ends BLOCKED, identically at every explorer
//    thread count (the PR 10 blocked-recv audit regression);
//  * record -> replay identity for the E20 scenario pair and for a seed x
//    fault-kind mix of single-action plans: every lossy run is an ordinary
//    efd-tape-v1 artifact whose `linkfaults` line re-charges the fabric
//    bit-identically (double replay certified);
//  * the E20 acceptance shape itself — timeout FloodMin violated under the
//    cross-link drop storm, the retransmission-hardened variant clean and
//    live under the SAME storm, and the violation ddmin-shrinkable;
//  * plan-v1 `link` grammar round-trips, sever/heal resolution, and the
//    sampling rule that link dimensions never perturb the non-link stream;
//  * the retransmit-storm watchdog and the hardened consensus client.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "algo/mp_protocols.hpp"
#include "core/monitors.hpp"
#include "core/repro_scenarios.hpp"
#include "core/shrink.hpp"
#include "core/solvability.hpp"
#include "fd/detectors.hpp"
#include "sim/channel.hpp"
#include "sim/faultplan.hpp"
#include "sim/msg_world.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

constexpr int kN = 3;  ///< FloodMin system size (n senders, n mailboxes)
constexpr int kF = 1;  ///< tolerated sender crashes

// ---- fabric charge semantics ----------------------------------------------

/// A bare daemon-mode 2x2 fabric (no world): links ch[i][j] for i,j < 2.
ChannelFabric make_fabric() {
  std::vector<RegAddr> mailboxes{mp_mailbox(0), mp_mailbox(1)};
  std::vector<RegAddr> links;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) links.push_back(mp_link(i, j));
  }
  return ChannelFabric(2, std::move(mailboxes), std::move(links), /*eager=*/false);
}

TEST(LinkFaultFabric, DropChargesConsumePoppedMessages) {
  ChannelFabric fab = make_fabric();
  const RegAddr link = mp_link(0, 1);
  for (int k = 0; k < 3; ++k) fab.send(cpid(0), mp_mailbox(1), Value(10 + k));
  EXPECT_TRUE(fab.faults_idle());
  fab.charge_fault(link, LinkFaultKind::kDrop, 2);
  EXPECT_FALSE(fab.faults_idle());
  EXPECT_EQ(fab.link_faults(link).drop_next, 2);

  // The first two delivers pop-and-discard: the step reads as an empty
  // deliver and the mailbox never sees the message.
  EXPECT_TRUE(fab.deliver(link).is_nil());
  EXPECT_TRUE(fab.deliver(link).is_nil());
  EXPECT_EQ(fab.fault_counters().dropped, 2);
  EXPECT_TRUE(fab.peek(mp_mailbox(1)).is_nil());
  // The model drained back to idle and was reclaimed: zero-cost path again.
  EXPECT_TRUE(fab.faults_idle());

  // The third message is unaffected.
  EXPECT_EQ(fab.deliver(link), Value(12));
  EXPECT_EQ(fab.peek(mp_mailbox(1)), Value(12));
  EXPECT_EQ(fab.in_flight(link), 0u);
}

TEST(LinkFaultFabric, DupReenqueuesACopyAtTheBack) {
  ChannelFabric fab = make_fabric();
  const RegAddr link = mp_link(0, 0);
  fab.send(cpid(0), mp_mailbox(0), Value(1));
  fab.send(cpid(0), mp_mailbox(0), Value(2));
  fab.charge_fault(link, LinkFaultKind::kDup, 1);

  EXPECT_EQ(fab.deliver(link), Value(1));  // delivered AND re-enqueued
  EXPECT_EQ(fab.fault_counters().duplicated, 1);
  EXPECT_EQ(fab.in_flight(link), 2u);  // [2, 1-copy]
  EXPECT_TRUE(fab.faults_idle());
  EXPECT_EQ(fab.deliver(link), Value(2));
  EXPECT_EQ(fab.deliver(link), Value(1));  // the copy arrives last

  Value pending;
  ASSERT_TRUE(fab.state(mp_mailbox(0), pending));
  ValueVec items;
  pending.unpack_vec(items);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], Value(1));
  EXPECT_EQ(items[1], Value(2));
  EXPECT_EQ(items[2], Value(1));
}

TEST(LinkFaultFabric, DelayChargesHoldTheHeadPerStep) {
  ChannelFabric fab = make_fabric();
  const RegAddr link = mp_link(1, 0);
  fab.send(cpid(1), mp_mailbox(0), Value(9));
  fab.charge_fault(link, LinkFaultKind::kDelay, 2);

  // A delay charge is consumed by the STEP: the head stays in flight.
  EXPECT_TRUE(fab.deliver(link).is_nil());
  EXPECT_EQ(fab.in_flight(link), 1u);
  EXPECT_TRUE(fab.deliver(link).is_nil());
  EXPECT_EQ(fab.fault_counters().delayed, 2);
  EXPECT_EQ(fab.deliver(link), Value(9));
}

TEST(LinkFaultFabric, ReorderWindowPicksFromDeeperInTheChannel) {
  ChannelFabric fab = make_fabric();
  const RegAddr link = mp_link(0, 1);
  for (int k = 1; k <= 3; ++k) fab.send(cpid(0), mp_mailbox(1), Value(k));
  fab.charge_fault(link, LinkFaultKind::kReorder, 1);

  EXPECT_EQ(fab.deliver(link), Value(2));  // pick = min(window, size-1) = 1
  EXPECT_EQ(fab.fault_counters().reordered, 1);
  EXPECT_EQ(fab.deliver(link), Value(1));
  EXPECT_EQ(fab.deliver(link), Value(3));

  // A window wider than the channel clamps to the tail and, on a 1-deep
  // channel, degenerates to FIFO without counting a reorder.
  fab.send(cpid(0), mp_mailbox(1), Value(7));
  fab.charge_fault(link, LinkFaultKind::kReorder, 5);
  EXPECT_EQ(fab.deliver(link), Value(7));
  EXPECT_EQ(fab.fault_counters().reordered, 1);  // unchanged: pick was 0
}

TEST(LinkFaultFabric, SeverHoldsDeliveriesUntilHealed) {
  ChannelFabric fab = make_fabric();
  const RegAddr link = mp_link(0, 1);
  fab.send(cpid(0), mp_mailbox(1), Value(5));
  fab.charge_fault(link, LinkFaultKind::kSever, 1);
  EXPECT_TRUE(fab.link_faults(link).severed);

  // Sends still enqueue while severed; only deliveries hold.
  fab.send(cpid(0), mp_mailbox(1), Value(6));
  EXPECT_TRUE(fab.deliver(link).is_nil());
  EXPECT_TRUE(fab.deliver(link).is_nil());
  EXPECT_EQ(fab.fault_counters().held_severed, 2);
  EXPECT_EQ(fab.in_flight(link), 2u);

  fab.charge_fault(link, LinkFaultKind::kHeal, 1);
  EXPECT_TRUE(fab.faults_idle());  // sever was the only charge
  EXPECT_EQ(fab.deliver(link), Value(5));
  EXPECT_EQ(fab.deliver(link), Value(6));
}

TEST(LinkFaultFabric, PrecedenceSeveredThenDelayThenDrop) {
  ChannelFabric fab = make_fabric();
  const RegAddr link = mp_link(0, 0);
  fab.send(cpid(0), mp_mailbox(0), Value(3));
  fab.charge_fault(link, LinkFaultKind::kSever, 1);
  fab.charge_fault(link, LinkFaultKind::kDelay, 1);
  fab.charge_fault(link, LinkFaultKind::kDrop, 1);

  EXPECT_TRUE(fab.deliver(link).is_nil());  // severed: nothing else consumed
  EXPECT_EQ(fab.fault_counters().held_severed, 1);
  EXPECT_EQ(fab.link_faults(link).delay_next, 1);
  EXPECT_EQ(fab.link_faults(link).drop_next, 1);

  fab.charge_fault(link, LinkFaultKind::kHeal, 1);
  EXPECT_TRUE(fab.deliver(link).is_nil());  // delay: head stays
  EXPECT_EQ(fab.in_flight(link), 1u);
  EXPECT_TRUE(fab.deliver(link).is_nil());  // pop + drop: message gone
  EXPECT_EQ(fab.fault_counters().dropped, 1);
  EXPECT_EQ(fab.in_flight(link), 0u);
  EXPECT_TRUE(fab.faults_idle());
  EXPECT_TRUE(fab.peek(mp_mailbox(0)).is_nil());
}

TEST(LinkFaultFabric, ChargeErrorsAndZeroCharges) {
  ChannelFabric fab = make_fabric();
  EXPECT_THROW(fab.charge_fault(mp_link(5, 5), LinkFaultKind::kDrop, 1), std::out_of_range);
  EXPECT_THROW((void)fab.link_faults(mp_link(5, 5)), std::out_of_range);
  EXPECT_THROW(fab.charge_fault(mp_link(0, 1), LinkFaultKind::kDrop, -1),
               std::invalid_argument);
  // A zero charge drains to idle immediately: nothing is left behind.
  fab.charge_fault(mp_link(0, 1), LinkFaultKind::kDrop, 0);
  EXPECT_TRUE(fab.faults_idle());

  ChannelFabric eager(2, {mp_mailbox(0), mp_mailbox(1)}, {}, /*eager=*/true);
  EXPECT_THROW(eager.charge_fault(mp_link(0, 1), LinkFaultKind::kDrop, 1), std::logic_error);
  EXPECT_THROW((void)eager.deliver(mp_link(0, 1)), std::logic_error);
}

TEST(LinkFaultFabric, LossyPairsSwallowSendsInBothModes) {
  // Eager: the swallowed send mutates nothing (explorer-undo safe).
  ChannelFabric eager(2, {mp_mailbox(0), mp_mailbox(1)}, {}, /*eager=*/true);
  eager.set_lossy(0, mp_mailbox(1), true);
  const std::uint64_t h0 = eager.hash_acc();
  eager.send(cpid(0), mp_mailbox(1), Value(1));
  EXPECT_EQ(eager.fault_counters().lost_sends, 1);
  EXPECT_EQ(eager.hash_acc(), h0);
  EXPECT_TRUE(eager.peek(mp_mailbox(1)).is_nil());
  eager.send(cpid(1), mp_mailbox(1), Value(2));  // other senders unaffected
  EXPECT_EQ(eager.peek(mp_mailbox(1)), Value(2));
  eager.set_lossy(0, mp_mailbox(1), false);
  eager.send(cpid(0), mp_mailbox(1), Value(3));
  EXPECT_EQ(eager.fault_counters().lost_sends, 1);

  // Daemon: the message never reaches the in-flight channel.
  ChannelFabric daemon = make_fabric();
  daemon.set_lossy(0, mp_mailbox(1), true);
  EXPECT_FALSE(daemon.faults_idle());
  daemon.send(cpid(0), mp_mailbox(1), Value(4));
  EXPECT_EQ(daemon.in_flight(mp_link(0, 1)), 0u);
  EXPECT_EQ(daemon.fault_counters().lost_sends, 1);
}

// ---- lossy pairs under exhaustive exploration (blocked-recv audit) --------

std::function<ProcBody(int, Value)> floodmin_body() {
  const FloodMinConfig cfg{kN, kF};
  return [cfg](int i, Value input) { return make_floodmin(cfg, i, std::move(input)); };
}

ValueVec floodmin_inputs() {
  ValueVec in(static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  return in;
}

/// Same cross-backend-comparable summary as tests/test_substrate.cpp.
struct SweepSummary {
  bool ok = false;
  bool exhausted = false;
  std::int64_t states = 0;
  std::int64_t terminal_runs = 0;
  std::int64_t blocked_runs = 0;

  bool operator==(const SweepSummary&) const = default;
};

SweepSummary sweep(const std::function<World()>& factory, int kset, int k, int threads) {
  const TaskPtr task = std::make_shared<SetAgreementTask>(kN, kset);
  ExploreConfig cfg;
  cfg.k = k;
  cfg.arrival = Task::participants(floodmin_inputs());
  cfg.threads = threads;
  cfg.max_states = 2000000;
  cfg.world_factory = factory;
  const ExploreOutcome out = explore_k_concurrent(task, floodmin_body(), floodmin_inputs(), cfg);
  SweepSummary s;
  s.ok = out.ok;
  s.exhausted = out.budget_exhausted;
  s.states = out.states;
  s.terminal_runs = out.terminal_runs;
  s.blocked_runs = out.blocked_runs;
  return s;
}

/// Eager msg factory with the given (sender, mailbox) pairs statically lossy.
std::function<World()> lossy_msg_factory(std::vector<std::pair<int, int>> pairs) {
  return [pairs = std::move(pairs)] {
    World w = World::failure_free(1);
    install_msg_eager(w, kN, kN);
    ChannelFabric& fab = msg_substrate(w)->fabric();
    for (const auto& [i, j] : pairs) fab.set_lossy(i, mp_mailbox(j), true);
    return w;
  };
}

TEST(LinkFaultExplore, DroppedFloodsDeadEndBlockedAtEveryThreadCount) {
  // The PR 10 blocked-recv audit: when every cross pair is lossy, each
  // process hears only itself (1 < n - f), so every schedule dead-ends in a
  // blocked recv on a drained inbox — the dropped messages MUST surface as
  // blocked_runs, not as terminal runs or as a hang. Vacuously clean: no run
  // ever decides, so no decision set can violate the relation.
  std::vector<std::pair<int, int>> cross;
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      if (i != j) cross.emplace_back(i, j);
    }
  }
  const SweepSummary lossy = sweep(lossy_msg_factory(cross), kF + 1, kN, 1);
  ASSERT_FALSE(lossy.exhausted);
  EXPECT_TRUE(lossy.ok);
  EXPECT_EQ(lossy.terminal_runs, 0);
  EXPECT_GT(lossy.blocked_runs, 0);

  // Loss-free contrast: the same sweep has terminating runs.
  const SweepSummary clean = sweep(lossy_msg_factory({}), kF + 1, kN, 1);
  EXPECT_GT(clean.terminal_runs, 0);
  EXPECT_NE(clean, lossy);

  // Delivery traces (and hence every counter) are explorer-thread-invariant.
  for (int threads : {2, 8}) {
    EXPECT_EQ(sweep(lossy_msg_factory(cross), kF + 1, kN, threads), lossy)
        << "lossy sweep diverged at threads=" << threads;
  }
}

TEST(LinkFaultExplore, PartialLossStarvesExactlyTheCutProcess) {
  // Only the links INTO p3 are lossy: p1/p2 still hear each other and can
  // decide, but p3's pending messages were dropped, so every maximal run
  // ends with p3 blocked — terminal_runs stays zero while decisions happen.
  const SweepSummary s =
      sweep(lossy_msg_factory({{0, 2}, {1, 2}}), kF + 1, kN, 1);
  ASSERT_FALSE(s.exhausted);
  EXPECT_TRUE(s.ok);
  EXPECT_EQ(s.terminal_runs, 0);
  EXPECT_GT(s.blocked_runs, 0);
  EXPECT_EQ(sweep(lossy_msg_factory({{0, 2}, {1, 2}}), kF + 1, kN, 8), s);
}

// ---- record -> replay identity of lossy tapes -----------------------------

TEST(LinkFaultReplay, LossyScenarioTapesRoundTripBitIdentically) {
  // The E20 scenario pair: raw violated, hardened clean — under the SAME
  // storm — and both runs survive the full serialize -> parse -> fresh world
  // -> replay path twice (double replay, hash-certified).
  struct Case {
    const char* name;
    bool violated;
  };
  for (const Case c : {Case{"mp_floodmin_lossy_raw", true}, Case{"mp_floodmin_lossy_rt", false}}) {
    const Scenario* sc = find_scenario(c.name);
    ASSERT_NE(sc, nullptr) << c.name;
    for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
      SCOPED_TRACE(std::string(c.name) + " seed " + std::to_string(seed));
      const ScheduleTape tape = sc->record(seed);
      EXPECT_EQ(tape.substrate, "msg");
      EXPECT_FALSE(tape.linkfaults.empty()) << "lossy tapes must carry the linkfaults line";
      EXPECT_FALSE(tape.plan.empty()) << "campaign provenance: the plan line";
      ASSERT_TRUE(tape.expect_violated.has_value());
      EXPECT_EQ(*tape.expect_violated, c.violated);

      const std::string text = tape.serialize();
      const ScheduleTape parsed = ScheduleTape::parse(text);
      EXPECT_EQ(parsed.serialize(), text) << "canonical serialization must be a fixpoint";
      EXPECT_EQ(parsed.linkfaults, tape.linkfaults);

      const ScenarioReplayOutcome first = replay_in_scenario(*sc, parsed);
      EXPECT_TRUE(first.matches(parsed));
      EXPECT_EQ(first.violated, c.violated);
      const ScenarioReplayOutcome second = replay_in_scenario(*sc, parsed);
      EXPECT_EQ(second.replay.hash, first.replay.hash) << "double replay must be bit-identical";
      EXPECT_TRUE(second.matches(parsed));
    }
  }
}

TEST(LinkFaultReplay, SingleActionFaultMixRecordsAndReplays) {
  // Seed x fault-kind property: one sampled-shape link action of each kind
  // against the hardened scenario records a tape whose replay matches, and
  // the hardened protocol stays clean under every mix.
  const Scenario* sc = find_scenario("mp_floodmin_lossy_rt");
  ASSERT_NE(sc, nullptr);
  const FailurePattern base(kN * kN);
  for (std::uint64_t seed : {1ULL, 5ULL}) {
    for (const LinkFaultKind kind :
         {LinkFaultKind::kDrop, LinkFaultKind::kDup, LinkFaultKind::kDelay,
          LinkFaultKind::kReorder, LinkFaultKind::kSever}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " kind " +
                   std::string(link_fault_token(kind)));
      FaultPlan plan;
      plan.links.push_back(LinkAction{kind, /*step=*/3, /*from=*/0, /*to=*/1,
                                      /*amount=*/kind == LinkFaultKind::kSever ? 6 : 2});

      World w = sc->make_world(base, TrivialFd{}.history(base, 0));
      w.enable_trace();
      RandomScheduler inner(seed);
      RecordingScheduler rec(inner);
      const PlanDriveResult pdr = drive_with_plan(w, rec, 30000, plan);
      EXPECT_FALSE(sc->violated(w)) << "hardened FloodMin must stay safe under any single fault";

      ScheduleTape tape = ScheduleTape::capture(sc->name, base, rec.steps(), pdr.applied,
                                                w.trace());
      tape.linkfaults = pdr.applied_links;
      tape.plan = plan.to_string();
      tape.substrate = "msg";
      tape.expect_violated = false;
      if (kind == LinkFaultKind::kSever) {
        // drive_with_plan resolves a sever into a sever/heal pair.
        ASSERT_EQ(tape.linkfaults.size(), 2u);
        EXPECT_EQ(tape.linkfaults[1].kind, LinkFaultKind::kHeal);
      }

      const ScheduleTape parsed = ScheduleTape::parse(tape.serialize());
      const ScenarioReplayOutcome out = replay_in_scenario(*sc, parsed);
      EXPECT_TRUE(out.replay.hash_match) << "re-charging the tape's faults must reproduce the run";
      EXPECT_FALSE(out.violated);
    }
  }
}

TEST(LinkFaultReplay, MalformedLinkfaultsLinesAreParseErrors) {
  const Scenario* sc = find_scenario("mp_floodmin_lossy_raw");
  ASSERT_NE(sc, nullptr);
  const std::string text = sc->record(1).serialize();
  const std::size_t at = text.find("\nlinkfaults ");
  ASSERT_NE(at, std::string::npos);
  const std::size_t line_end = text.find('\n', at + 1);
  ASSERT_NE(line_end, std::string::npos);
  const auto with_line = [&](const std::string& line) {
    return text.substr(0, at + 1) + line + text.substr(line_end);
  };
  EXPECT_NO_THROW((void)ScheduleTape::parse(with_line("linkfaults drop 0 ch[0][1] 2")));
  for (const char* bad : {
           "linkfaults gremlin 0 ch[0][1] 2",   // unknown fault kind
           "linkfaults drop 0 ch[0][1]",        // missing amount
           "linkfaults drop 0 ch[0][1] 0",      // amount < 1
           "linkfaults drop -4 ch[0][1] 2",     // negative step index
           "linkfaults drop 0 ch[0][1] 2 zzz",  // trailing garbage
           "linkfaults",                        // empty list
       }) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)ScheduleTape::parse(with_line(bad)), TapeParseError);
  }
}

TEST(LinkFaultReplay, RawViolationShrinksToASmallWitness)
{
  // E20's triage contract: the storm-induced violation ddmin-shrinks (steps
  // AND link charges are both removal candidates) and the minimized tape
  // still violates on a double replay.
  const Scenario* sc = find_scenario("mp_floodmin_lossy_raw");
  ASSERT_NE(sc, nullptr);
  const ScheduleTape tape = sc->record(1);
  ASSERT_TRUE(tape.expect_violated.has_value() && *tape.expect_violated);

  ShrinkStats stats;
  const ScheduleTape min = shrink_tape(tape, scenario_predicate(*sc, true), {}, &stats);
  EXPECT_TRUE(stats.reached_fixpoint);
  EXPECT_GT(stats.removed_steps, 0);
  EXPECT_LE(min.steps.size(), tape.steps.size() / 4) << "E20 gates shrunk size at 25%";
  // The drop charges themselves may shrink away entirely: a schedule that
  // never runs the delivery daemons starves the timeout protocol just as
  // well, and ddmin is free to find that smaller cause.
  EXPECT_LE(min.linkfaults.size(), tape.linkfaults.size());

  const ScenarioReplayOutcome a = replay_in_scenario(*sc, min);
  const ScenarioReplayOutcome b = replay_in_scenario(*sc, min);
  EXPECT_TRUE(a.violated);
  EXPECT_TRUE(b.violated);
  EXPECT_EQ(a.replay.hash, b.replay.hash);
}

// ---- plan-v1 link grammar --------------------------------------------------

TEST(LinkFaultPlan, LinkGrammarRoundTripsAndResolvesSeverPairs) {
  FaultPlan plan;
  plan.links.push_back(LinkAction{LinkFaultKind::kDrop, 12, 0, 1, 2});
  plan.links.push_back(LinkAction{LinkFaultKind::kSever, 4, 1, 2, 10});
  plan.links.push_back(LinkAction{LinkFaultKind::kDelay, 30, 2, 0, 1});
  const std::string text = plan.to_string();
  EXPECT_NE(text.find("link drop 12 0 1 2"), std::string::npos) << text;
  EXPECT_NE(text.find("link sever 4 1 2 10"), std::string::npos) << text;
  EXPECT_EQ(FaultPlan::parse(text), plan);

  // resolve_links: step-sorted charges against canonical names; the sever
  // expands into a sever/heal pair `amount` steps apart.
  const std::vector<LinkFaultPoint> pts = plan.resolve_links();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].kind, LinkFaultKind::kSever);
  EXPECT_EQ(pts[0].step_index, 4);
  EXPECT_EQ(pts[0].link, mp_link(1, 2).name());
  EXPECT_EQ(pts[1].kind, LinkFaultKind::kDrop);
  EXPECT_EQ(pts[1].link, mp_link(0, 1).name());
  EXPECT_EQ(pts[2].kind, LinkFaultKind::kHeal);
  EXPECT_EQ(pts[2].step_index, 14);
  EXPECT_EQ(pts[2].link, mp_link(1, 2).name());
  EXPECT_EQ(pts[3].kind, LinkFaultKind::kDelay);

  for (const char* bad : {
           "plan-v1; link gremlin 3 0 1 2",  // unknown kind
           "plan-v1; link drop 3 0 1",       // missing amount
           "plan-v1; link drop 3 0 1 0",     // amount < 1
           "plan-v1; link drop -3 0 1 2",    // negative step
       }) {
    SCOPED_TRACE(bad);
    EXPECT_THROW((void)FaultPlan::parse(bad), std::invalid_argument);
  }
}

TEST(LinkFaultPlan, SamplingDrawsLinksLastAndWithinBounds) {
  FaultPlan::Space shm;
  shm.num_s = 4;
  shm.num_c = 3;
  shm.horizon = 200;
  shm.max_crashes = 2;
  FaultPlan::Space mp = shm;
  mp.mp_senders = 3;
  mp.mp_mailboxes = 3;
  mp.max_link_actions = 6;
  mp.max_link_charge = 3;
  mp.max_sever_window = 40;

  bool saw_links = false;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FaultPlan a = FaultPlan::sample(seed, shm);
    EXPECT_TRUE(a.links.empty()) << "shared-memory spaces never emit link actions";
    FaultPlan b = FaultPlan::sample(seed, mp);
    for (const LinkAction& l : b.links) {
      EXPECT_GE(l.step, 0);
      EXPECT_LT(l.step, mp.horizon);
      EXPECT_GE(l.from, 0);
      EXPECT_LT(l.from, mp.mp_senders);
      EXPECT_GE(l.to, 0);
      EXPECT_LT(l.to, mp.mp_mailboxes);
      EXPECT_GE(l.amount, 1);
      EXPECT_LE(l.amount, l.kind == LinkFaultKind::kSever ? mp.max_sever_window
                                                          : mp.max_link_charge);
    }
    saw_links = saw_links || !b.links.empty();
    // Links are drawn LAST from the seed stream: adding link dimensions must
    // not perturb the crash/fd/burst draws of existing targets.
    b.links.clear();
    EXPECT_EQ(b, a) << "seed " << seed;
  }
  EXPECT_TRUE(saw_links) << "64 seeds over a 6-action space must sample some links";
}

// ---- retransmit-storm watchdog and the hardened consensus client ----------

TEST(LinkFaultMonitor, RetransmitStormWindowFlagsUnboundedResends) {
  MonitorBounds bounds;
  bounds.retransmit_storm_window = 4;
  LivenessMonitor storm(bounds);
  for (int i = 0; i < 5; ++i) {
    storm.on_step(cpid(0), OpKind::kSend, false, false, false);
  }
  ASSERT_EQ(storm.violations().size(), 1u);
  EXPECT_EQ(storm.violations()[0].kind, MonitorViolation::Kind::kRetransmitStorm);
  EXPECT_EQ(storm.violations()[0].measured, 5);
  EXPECT_TRUE(storm.wait_free_ok()) << "a storm is not a wait-freedom violation per se";
  EXPECT_FALSE(storm.ok());

  // A decision anywhere resets the burst: bounded retransmit-and-recover
  // cycles never trip the watchdog.
  LivenessMonitor recovered(bounds);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 3; ++i) {
      recovered.on_step(cpid(0), OpKind::kSend, false, false, false);
    }
    // A fresh process decides each round (a finished process's steps are
    // ignored); each decision resets the collective send burst.
    recovered.on_step(cpid(round + 1), OpKind::kDecide, false, true, false);
  }
  EXPECT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.max_send_burst(), 3);
}

Proc dec_writer(Context& ctx, RegAddr dec, Value v, int waits) {
  for (int i = 0; i < waits; ++i) co_await ctx.yield();
  co_await ctx.write(dec, v);
  co_await ctx.decide(v);
}

TEST(LinkFaultProtocols, ConsensusClientRtRefloodsUntilDecisionLands) {
  // The hardened consensus client refloods its proposal on a doubling
  // backoff while DEC stays Nil. A deliberately slow decider makes the
  // client run several backoff rounds; the undrained server mailboxes then
  // hold one copy per (re)flood.
  const MpConsensusConfig cfg{"mpcrt", 2};
  World w = World::failure_free(1);
  install_msg_eager(w, /*senders=*/1, /*mailboxes=*/2);
  const RegAddr dec = reg(sym(cfg.ns + "/DEC"));
  w.spawn_c(0, make_mp_consensus_client_rt(cfg, Value(7), RetransmitConfig{2, 4}));
  w.spawn_c(1, [dec](Context& ctx) { return dec_writer(ctx, dec, Value(7), 40); });
  RoundRobinScheduler rr;
  drive(w, rr, 4000);

  ASSERT_TRUE(w.decided(cpid(0)));
  EXPECT_EQ(w.decision(cpid(0)), Value(7));
  Value pending;
  ASSERT_TRUE(msg_substrate(w)->fabric().state(mp_mailbox(0), pending));
  ValueVec copies;
  pending.unpack_vec(copies);
  EXPECT_GE(copies.size(), 2u) << "at least one reflood must have fired";
  for (const Value& m : copies) EXPECT_EQ(m, vec(0, 7));
}

}  // namespace
}  // namespace efd
