// Tests for the Fig. 2 k-codes simulation (algo/k_codes_sim.hpp): Thm. 14's
// progress guarantees in both leadership regimes.
#include <gtest/gtest.h>

#include "algo/k_codes_sim.hpp"
#include "fd/detectors.hpp"
#include "sim/memory.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

// Code: read a register `reads` times, then decide 1000 + own index.
struct SpinReadCode final : SimProgram {
  int reads;
  explicit SpinReadCode(int reads) : reads(reads) {}
  Value init(int idx, const Value&) const override { return vec(Value(idx), Value(0)); }
  SimAction action(const Value& st) const override {
    const auto c = st.at(1).int_or(0);
    if (c < reads) return {SimAction::Kind::kRead, "kcx", {}};
    if (c == reads) return {SimAction::Kind::kDecide, "", Value(1000 + st.at(0).int_or(0))};
    return {};
  }
  Value transition(const Value& st, const Value&) const override {
    return vec(st.at(0), Value(st.at(1).int_or(0) + 1));
  }
};

KCodesHarvest first_decision() {
  return [](const ValueVec& d) {
    for (const auto& v : d) {
      if (!v.is_nil()) return v;
    }
    return Value{};
  };
}

TEST(KCodes, ProgressWithManySimulatorsViaVectorOmega) {
  // m = n > k: S-processes lead via →Ωk; the stable slot's code completes.
  struct Case {
    int n, k, faults;
    std::uint64_t seed;
  };
  for (const Case c : {Case{3, 2, 1, 1}, Case{4, 2, 2, 2}, Case{4, 3, 1, 3}, Case{5, 2, 3, 4}}) {
    const FailurePattern f = Environment(c.n, c.n - 1).sample(c.seed, c.faults, 10);
    VectorOmegaK vo(c.k, 50);
    World w(f, vo.history(f, c.seed));
    KCodesConfig cfg;
    cfg.ns = "kc";
    cfg.n = c.n;
    cfg.k = c.k;
    cfg.code = std::make_shared<SpinReadCode>(4);
    cfg.inputs.assign(static_cast<std::size_t>(c.k), Value(0));
    for (int i = 0; i < c.n; ++i) w.spawn_c(i, make_kcodes_simulator(cfg, first_decision()));
    for (int i = 0; i < c.n; ++i) w.spawn_s(i, make_kcodes_server(cfg));
    RandomScheduler rs(c.seed + 7);
    const auto r = drive(w, rs, 3000000);
    ASSERT_TRUE(r.all_c_decided) << "n=" << c.n << " k=" << c.k;
    for (int i = 0; i < c.n; ++i) {
      const auto d = w.decision(cpid(i)).as_int();
      EXPECT_GE(d, 1000);
      EXPECT_LT(d, 1000 + c.k);
    }
  }
}

TEST(KCodes, RankedLeadersWhenFewSimulators) {
  // m <= k: the j-th smallest registered simulator leads code j; no S-advice
  // is needed at all (→Ωk may stay noisy forever).
  const int n = 3, k = 2;
  FailurePattern f(n);
  VectorOmegaK vo(k, 1000000);  // never stabilizes
  World w(f, vo.history(f, 5));
  KCodesConfig cfg;
  cfg.ns = "kc";
  cfg.n = n;
  cfg.k = k;
  cfg.code = std::make_shared<SpinReadCode>(3);
  cfg.inputs.assign(static_cast<std::size_t>(k), Value(0));
  // Only 2 simulators participate: ranks cover both codes.
  for (int i = 0; i < 2; ++i) w.spawn_c(i, make_kcodes_simulator(cfg, first_decision()));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_kcodes_server(cfg));
  RandomScheduler rs(9);
  const auto r = drive(w, rs, 2000000);
  ASSERT_TRUE(r.all_c_decided);
  EXPECT_GE(kcodes_progress(w, cfg, 0) + kcodes_progress(w, cfg, 1), 3);
}

TEST(KCodes, AtMostMinKLCodesTakeSteps) {
  // Thm. 14's second clause: with ℓ = 1 participating simulator, at most one
  // code makes progress (rank-led, code 0 only).
  const int n = 3, k = 2;
  FailurePattern f(n);
  VectorOmegaK vo(k, 1000000);
  World w(f, vo.history(f, 3));
  KCodesConfig cfg;
  cfg.ns = "kc";
  cfg.n = n;
  cfg.k = k;
  cfg.code = std::make_shared<SpinReadCode>(3);
  cfg.inputs.assign(static_cast<std::size_t>(k), Value(0));
  w.spawn_c(0, make_kcodes_simulator(cfg, first_decision()));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_kcodes_server(cfg));
  RandomScheduler rs(4);
  drive(w, rs, 500000);
  EXPECT_TRUE(w.decided(cpid(0)));
  EXPECT_EQ(kcodes_progress(w, cfg, 1), 0) << "code 2 progressed with a single simulator";
}

TEST(KCodes, SimulatorDecisionComesFromACode) {
  const int n = 3, k = 2;
  FailurePattern f(n);
  f.crash(2, 8);
  VectorOmegaK vo(k, 30);
  World w(f, vo.history(f, 6));
  KCodesConfig cfg;
  cfg.ns = "kc";
  cfg.n = n;
  cfg.k = k;
  cfg.code = std::make_shared<SpinReadCode>(2);
  cfg.inputs.assign(static_cast<std::size_t>(k), Value(0));
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_kcodes_simulator(cfg, first_decision()));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_kcodes_server(cfg));
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 2000000);
  ASSERT_TRUE(r.all_c_decided);
  for (int i = 0; i < n; ++i) {
    const auto d = w.decision(cpid(i)).as_int();
    EXPECT_TRUE(d == 1000 || d == 1001);
  }
}

}  // namespace
}  // namespace efd
