// Tests for the adopt-commit object (algo/adopt_commit.hpp): validity,
// commit-validity, commit-agreement — including an exhaustive check over all
// 2-party interleavings.
#include <gtest/gtest.h>

#include <set>

#include "algo/adopt_commit.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace efd {
namespace {

Proc party(Context& ctx, AdoptCommitInstance inst, int me, Value v) {
  const Value r = co_await adopt_commit(ctx, inst, me, v);
  co_await ctx.decide(r);
}

TEST(AdoptCommit, SoloCommitsOwnValue) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) { return party(ctx, AdoptCommitInstance{"ac", 3}, 0, Value(9)); });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  const Value r = w.decision(cpid(0));
  EXPECT_EQ(r.at(0).as_int(), 1);  // commit
  EXPECT_EQ(r.at(1).as_int(), 9);
}

TEST(AdoptCommit, UnanimousProposalsCommit) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    World w = World::failure_free(1);
    for (int i = 0; i < 3; ++i) {
      w.spawn_c(i, [i](Context& ctx) {
        return party(ctx, AdoptCommitInstance{"ac", 3}, i, Value(4));
      });
    }
    RandomScheduler rs(seed);
    const auto r = drive(w, rs, 50000);
    ASSERT_TRUE(r.all_c_decided);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(w.decision(cpid(i)).at(0).as_int(), 1) << "seed " << seed;
      EXPECT_EQ(w.decision(cpid(i)).at(1).as_int(), 4) << "seed " << seed;
    }
  }
}

void check_outcomes(const World& w, int n, std::int64_t lo, std::int64_t hi) {
  // Validity: every returned value was proposed.
  Value committed;
  for (int i = 0; i < n; ++i) {
    const Value r = w.decision(cpid(i));
    const auto v = r.at(1).as_int();
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    if (r.at(0).as_int() == 1) {
      // Commit-agreement part 1: all commits carry the same value.
      if (!committed.is_nil()) EXPECT_EQ(committed, r.at(1));
      committed = r.at(1);
    }
  }
  // Commit-agreement part 2: if anyone committed u, everyone returned u.
  if (!committed.is_nil()) {
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(w.decision(cpid(i)).at(1), committed);
    }
  }
}

TEST(AdoptCommit, RandomSchedulesKeepAgreement) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const int n = 3;
    World w = World::failure_free(1);
    for (int i = 0; i < n; ++i) {
      w.spawn_c(i, [i](Context& ctx) {
        return party(ctx, AdoptCommitInstance{"ac", 3}, i, Value(100 + i));
      });
    }
    RandomScheduler rs(seed);
    const auto r = drive(w, rs, 50000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
    check_outcomes(w, n, 100, 102);
  }
}

// Exhaustive: every interleaving of two parties (each takes a bounded number
// of steps, so the schedule space is a finite binary tree).
void explore_two_party(std::vector<int>& sched, int depth_limit, int& runs) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) { return party(ctx, AdoptCommitInstance{"ac", 2}, 0, Value(1)); });
  w.spawn_c(1, [](Context& ctx) { return party(ctx, AdoptCommitInstance{"ac", 2}, 1, Value(2)); });
  for (int c : sched) w.step(cpid(c));
  if (w.all_c_decided()) {
    ++runs;
    check_outcomes(w, 2, 1, 2);
    return;
  }
  ASSERT_LT(static_cast<int>(sched.size()), depth_limit) << "adopt-commit did not terminate";
  for (int c = 0; c < 2; ++c) {
    if (!w.decided(cpid(c))) {
      sched.push_back(c);
      explore_two_party(sched, depth_limit, runs);
      sched.pop_back();
    }
  }
}

TEST(AdoptCommit, ExhaustiveTwoPartyInterleavings) {
  std::vector<int> sched;
  int runs = 0;
  explore_two_party(sched, 60, runs);
  EXPECT_GT(runs, 100);  // the full tree was really walked
}

TEST(AdoptCommit, ConflictNeverDoubleCommitsDifferently) {
  // Directed adversarial schedule: perfectly interleaved lockstep.
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) { return party(ctx, AdoptCommitInstance{"ac", 2}, 0, Value(1)); });
  w.spawn_c(1, [](Context& ctx) { return party(ctx, AdoptCommitInstance{"ac", 2}, 1, Value(2)); });
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 1000);
  ASSERT_TRUE(r.all_c_decided);
  check_outcomes(w, 2, 1, 2);
}

}  // namespace
}  // namespace efd
