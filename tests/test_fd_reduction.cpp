// Tests for the failure-detector reduction harness (fd/reduction.hpp):
// emulated histories satisfy the target detector's specification.
#include <gtest/gtest.h>

#include "fd/reduction.hpp"

namespace efd {
namespace {

Value initial_anti_sample(int n, int k) {
  ValueVec v;
  for (int i = 0; i < n - k; ++i) v.emplace_back(i);
  return Value(std::move(v));
}

struct RedCase {
  int n, k, faults;
  std::uint64_t seed;
};

class VecToAntiSweep : public ::testing::TestWithParam<RedCase> {};

// →Ωk is at least as strong as ¬Ωk (the direction used throughout §4).
TEST_P(VecToAntiSweep, EmulatedHistoryIsAntiOmegaK) {
  const auto p = GetParam();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 30);
  auto vo = std::make_shared<VectorOmegaK>(p.k, 60);
  std::vector<ProcBody> bodies;
  for (int i = 0; i < p.n; ++i) bodies.push_back(make_vec_to_anti_converter("anti", p.n, p.k));
  const ReductionRun run = run_reduction(f, vo, p.seed, bodies, 4000);
  const auto h = history_from_out_registers(run.trace, "anti", p.n,
                                            initial_anti_sample(p.n, p.k));
  EXPECT_TRUE(AntiOmegaK::check(p.k, f, *h, run.horizon)) << f.to_string();
}

INSTANTIATE_TEST_SUITE_P(Sweep, VecToAntiSweep,
                         ::testing::Values(RedCase{3, 1, 1, 1}, RedCase{3, 2, 1, 2},
                                           RedCase{4, 2, 2, 3}, RedCase{4, 3, 1, 4},
                                           RedCase{5, 2, 3, 5}, RedCase{5, 3, 2, 6},
                                           RedCase{5, 4, 4, 7}, RedCase{6, 3, 3, 8}));

class OmegaToVecSweep : public ::testing::TestWithParam<RedCase> {};

// Ω is at least as strong as →Ωk for every k (slot 0 carries the leader).
TEST_P(OmegaToVecSweep, EmulatedHistoryIsVectorOmegaK) {
  const auto p = GetParam();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 20);
  auto omega = std::make_shared<OmegaFd>(50);
  std::vector<ProcBody> bodies;
  for (int i = 0; i < p.n; ++i) bodies.push_back(make_omega_to_vec_converter("vk", p.n, p.k));
  const ReductionRun run = run_reduction(f, omega, p.seed, bodies, 4000);
  ValueVec init;
  for (int j = 0; j < p.k; ++j) init.emplace_back(0);
  const auto h = history_from_out_registers(run.trace, "vk", p.n, Value(std::move(init)));
  EXPECT_TRUE(VectorOmegaK::check(p.k, f, *h, run.horizon)) << f.to_string();
}

INSTANTIATE_TEST_SUITE_P(Sweep, OmegaToVecSweep,
                         ::testing::Values(RedCase{3, 1, 1, 1}, RedCase{3, 2, 2, 2},
                                           RedCase{4, 2, 1, 3}, RedCase{4, 3, 3, 4},
                                           RedCase{5, 3, 2, 5}, RedCase{5, 2, 4, 6}));

TEST(ReductionHarness, HistoryBeforeFirstWriteIsInitial) {
  Trace empty;
  const auto h = history_from_out_registers(empty, "x", 2, Value(42));
  EXPECT_EQ(h->at(0, 0).as_int(), 42);
  EXPECT_EQ(h->at(1, 999).as_int(), 42);
}

TEST(ReductionHarness, HistoryFollowsWrites) {
  Trace t;
  StepRecord a;
  a.time = 5;
  a.pid = spid(0);
  a.op = OpKind::kWrite;
  a.addr = reg("x", 0);
  a.value = Value(1);
  t.push_back(a);
  a.time = 9;
  a.value = Value(2);
  t.push_back(a);
  const auto h = history_from_out_registers(t, "x", 1, Value(0));
  EXPECT_EQ(h->at(0, 4).as_int(), 0);
  EXPECT_EQ(h->at(0, 5).as_int(), 1);
  EXPECT_EQ(h->at(0, 8).as_int(), 1);
  EXPECT_EQ(h->at(0, 9).as_int(), 2);
}

TEST(ReductionHarness, IgnoresWritesFromWrongProcessOrAddress) {
  Trace t;
  StepRecord a;
  a.time = 1;
  a.pid = spid(1);  // q2 writing q1's register: not q1's module output
  a.op = OpKind::kWrite;
  a.addr = reg("x", 0);
  a.value = Value(7);
  t.push_back(a);
  const auto h = history_from_out_registers(t, "x", 2, Value(0));
  EXPECT_EQ(h->at(0, 5).as_int(), 0);
}

}  // namespace
}  // namespace efd
