// Replays every checked-in schedule tape under tests/corpus/ (ctest -L
// replay). Each tape is a self-contained, hand-minimized (or directed)
// reproduction of an interesting run — a fuzz counterexample, a leader
// killed mid-commit, an adversarial schedule — and must keep replaying
// bit-identically: trace hash AND scenario-predicate outcome both match the
// expectations stamped in the tape. A hash mismatch here means the
// simulator's step semantics drifted; a predicate mismatch means an
// algorithm regressed under a schedule that was once interesting enough to
// archive.
//
// Failing fuzz tests auto-dump new tapes (see test_fuzz.cpp); promote a tape
// into tests/corpus/ by re-stamping it with `efd_repro shrink` (or `record`)
// and committing the file.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/repro_scenarios.hpp"
#include "sim/replay.hpp"

#ifndef EFD_CORPUS_DIR
#error "tests/CMakeLists.txt must define EFD_CORPUS_DIR"
#endif

namespace efd {
namespace {

std::vector<std::string> corpus_tapes() {
  std::vector<std::string> paths;
  const std::filesystem::path dir{EFD_CORPUS_DIR};
  if (std::filesystem::is_directory(dir)) {
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.is_regular_file() && e.path().extension() == ".tape") {
        paths.push_back(e.path().string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(ReplayCorpus, CorpusIsSeeded) {
  // The repository ships hand-curated reproductions; an empty corpus means
  // the checkout (or the EFD_CORPUS_DIR wiring) is broken, which would make
  // every other test in this binary pass vacuously.
  EXPECT_GE(corpus_tapes().size(), 4u) << "corpus dir: " << EFD_CORPUS_DIR;
}

TEST(ReplayCorpus, EveryTapeReplaysAsStamped) {
  for (const std::string& path : corpus_tapes()) {
    SCOPED_TRACE(path);
    ScheduleTape tape;
    ASSERT_NO_THROW(tape = load_tape(path));
    ASSERT_FALSE(tape.scenario.empty()) << "corpus tapes must name a scenario";
    const Scenario* sc = find_scenario(tape.scenario);
    ASSERT_NE(sc, nullptr) << "unknown scenario '" << tape.scenario << "'";
    ASSERT_TRUE(tape.expect_hash) << "corpus tapes must stamp expect_hash";
    ASSERT_TRUE(tape.expect_violated) << "corpus tapes must stamp expect";

    const ScenarioReplayOutcome out = replay_in_scenario(*sc, tape);
    EXPECT_TRUE(out.replay.hash_match)
        << "trace hash drifted: expected " << std::hex << *tape.expect_hash << ", got "
        << out.replay.hash;
    EXPECT_EQ(out.violated, *tape.expect_violated) << "predicate outcome drifted";
  }
}

TEST(ReplayCorpus, TapesAreCanonicallySerialized) {
  // Corpus files are exactly what serialize() emits (plus optional leading
  // '#' comment lines), so diffs stay reviewable and tools can rewrite them.
  for (const std::string& path : corpus_tapes()) {
    SCOPED_TRACE(path);
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    std::string body = text;
    while (!body.empty() && body[0] == '#') {
      body.erase(0, body.find('\n') + 1);
    }
    EXPECT_EQ(ScheduleTape::parse(text).serialize(), body);
  }
}

}  // namespace
}  // namespace efd
