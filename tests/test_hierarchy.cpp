// Tests for the Thm. 10 hierarchy classifier (core/hierarchy.hpp).
#include <gtest/gtest.h>

#include "core/hierarchy.hpp"

namespace efd {
namespace {

TEST(Hierarchy, FdClassNames) {
  EXPECT_EQ(fd_class_name(1, 4), "Omega (= antiOmega-1)");
  EXPECT_EQ(fd_class_name(2, 4), "antiOmega-2");
  EXPECT_EQ(fd_class_name(4, 4), "trivial (wait-free)");
  EXPECT_EQ(fd_class_name(5, 4), "trivial (wait-free)");
}

TEST(Hierarchy, StandardMenuMatchesTheory) {
  // The (Pi,3)-set-agreement level-3 sweep covers ~2.3M states; the budget
  // must clear that because exhausted sweeps no longer certify a level
  // (they used to, which let a 250k budget "observe" level 3 by sampling).
  // The incremental engine keeps this fast; 4 threads sweep levels
  // concurrently and the outcome is thread-count invariant.
  const auto rows = classify_standard_menu(4, 2500000, 4);
  ASSERT_GE(rows.size(), 5u);

  auto find = [&rows](const std::string& needle) -> const HierarchyRow* {
    for (const auto& r : rows) {
      if (r.task.find(needle) != std::string::npos) return &r;
    }
    return nullptr;
  };

  const auto* identity = find("identity");
  ASSERT_NE(identity, nullptr);
  EXPECT_EQ(identity->observed_level, 4) << "identity is wait-free";

  const auto* consensus = find("consensus");
  ASSERT_NE(consensus, nullptr);
  EXPECT_EQ(consensus->observed_level, 1) << "consensus is class 1 (Omega)";
  EXPECT_EQ(consensus->weakest_fd, "Omega (= antiOmega-1)");

  const auto* ksa2 = find("(Pi,2)-set-agreement");
  ASSERT_NE(ksa2, nullptr);
  EXPECT_EQ(ksa2->observed_level, 2) << "2-set agreement is class 2";
  EXPECT_EQ(ksa2->weakest_fd, "antiOmega-2");

  const auto* ksa3 = find("(Pi,3)-set-agreement");
  ASSERT_NE(ksa3, nullptr);
  EXPECT_EQ(ksa3->observed_level, 3);

  const auto* strong = find("(2,2)-renaming");
  ASSERT_NE(strong, nullptr);
  EXPECT_EQ(strong->observed_level, 1) << "strong renaming is class 1 (Cor. 13)";

  const auto* ren34 = find("(3,4)-renaming");
  ASSERT_NE(ren34, nullptr);
  EXPECT_GE(ren34->observed_level, 2) << "Thm. 15: (3,4)-renaming is 2-concurrently solvable";
}

TEST(Hierarchy, FormatProducesOneRowPerTask) {
  const auto rows = classify_standard_menu(3, 60000);
  const std::string table = format_hierarchy(rows);
  std::size_t lines = 0;
  for (char c : table) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, rows.size() + 2);  // header + separator + rows
  EXPECT_NE(table.find("consensus"), std::string::npos);
}

TEST(Hierarchy, ViolationReportedAboveLevel) {
  const auto rows = classify_standard_menu(3, 60000);
  for (const auto& r : rows) {
    // Rows capped by the exploration budget carry a note instead of a
    // violation; every other below-n row must exhibit its violating run.
    if (r.observed_level < 3 && r.note.empty()) {
      EXPECT_FALSE(r.violation.empty())
          << r.task << " stopped below n without a recorded violation";
    }
  }
}

}  // namespace
}  // namespace efd
