// Tests for the simulable-program layer (algo/sim_program.hpp): the replay
// adapter that turns coroutines into automata, the native runner, and
// run_until_decision — the machinery every simulation construction rests on.
#include <gtest/gtest.h>

#include "algo/sim_program.hpp"
#include "sim/memory.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

Proc sum_three(Context& ctx, int index, Value input) {
  co_await ctx.write(reg("sp/in", index), input);
  std::int64_t total = input.int_or(0);
  for (int i = 0; i < 3; ++i) {
    const Value v = co_await ctx.read(reg("sp/in", i));
    if (i != index) total += v.int_or(0);
  }
  co_await ctx.decide(Value(total));
}

SimProgramPtr sum_three_program() {
  return std::make_shared<ReplayProgram>([](int index, const Value& input, Context& ctx) {
    return sum_three(ctx, index, input);
  });
}

TEST(ReplayProgram, ActionSequenceMatchesCoroutine) {
  const auto prog = sum_three_program();
  Value st = prog->init(1, Value(10));

  SimAction a = prog->action(st);
  EXPECT_EQ(a.kind, SimAction::Kind::kWrite);
  EXPECT_EQ(a.addr, reg("sp/in", 1));
  EXPECT_EQ(a.value.as_int(), 10);
  st = prog->transition(st, Value{});

  for (int i = 0; i < 3; ++i) {
    a = prog->action(st);
    EXPECT_EQ(a.kind, SimAction::Kind::kRead);
    EXPECT_EQ(a.addr, reg("sp/in", i));
    st = prog->transition(st, Value(i == 1 ? 10 : 5));
  }

  a = prog->action(st);
  EXPECT_EQ(a.kind, SimAction::Kind::kDecide);
  EXPECT_EQ(a.value.as_int(), 20);  // 10 + 5 + 5
  st = prog->transition(st, Value{});
  EXPECT_EQ(prog->action(st).kind, SimAction::Kind::kHalt);
}

TEST(ReplayProgram, StateIsPureReplayable) {
  // Calling action repeatedly on the same state is idempotent, and two
  // divergent result histories evolve independently.
  const auto prog = sum_three_program();
  Value st = prog->init(0, Value(1));
  st = prog->transition(st, Value{});  // past the write
  const SimAction once = prog->action(st);
  const SimAction twice = prog->action(st);
  EXPECT_EQ(once.kind, twice.kind);
  EXPECT_EQ(once.addr, twice.addr);

  st = prog->transition(st, Value(0));     // read of own slot (ignored by the sum)
  Value branch_a = prog->transition(st, Value(100));  // read of p2's slot
  Value branch_b = prog->transition(st, Value(200));
  branch_a = prog->transition(branch_a, Value(0));    // read of p3's slot
  branch_b = prog->transition(branch_b, Value(0));
  EXPECT_EQ(prog->action(branch_a).value.as_int(), 101);
  EXPECT_EQ(prog->action(branch_b).value.as_int(), 201);
}

TEST(NativeRunner, RunsProgramAsRealProcess) {
  World w = World::failure_free(1);
  const auto prog = sum_three_program();
  w.spawn_c(0, make_sim_program_body(prog, 0, Value(1)));
  w.spawn_c(1, make_sim_program_body(prog, 1, Value(2)));
  w.spawn_c(2, make_sim_program_body(prog, 2, Value(4)));
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 10000);
  ASSERT_TRUE(r.all_c_decided);
  // Everyone eventually reads everyone (round-robin interleaves writes first).
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 7);
  EXPECT_EQ(w.decision(cpid(1)).as_int(), 7);
  EXPECT_EQ(w.decision(cpid(2)).as_int(), 7);
}

TEST(NativeRunner, EquivalentToDirectCoroutine) {
  // The same algorithm run natively and through the replay adapter produces
  // identical runs under identical schedules.
  auto run = [](bool adapted) {
    World w = World::failure_free(1);
    if (adapted) {
      w.spawn_c(0, make_sim_program_body(sum_three_program(), 0, Value(3)));
    } else {
      w.spawn_c(0, [](Context& ctx) { return sum_three(ctx, 0, Value(3)); });
    }
    RoundRobinScheduler rr;
    drive(w, rr, 1000);
    return w.decision(cpid(0));
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(RunUntilDecision, InterceptsDecide) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc {
    const Value inner = co_await run_until_decision(ctx, sum_three_program(), 0, Value(8));
    // The inner decide was intercepted: WE are still undecided and can act on it.
    co_await ctx.write("intercepted", inner);
    co_await ctx.decide(Value(inner.int_or(0) * 2));
  });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_EQ(w.memory().read("intercepted").as_int(), 8);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 16);
}

TEST(RunUntilDecision, ThrowsOnHaltWithoutDecision) {
  struct NoDecision final : SimProgram {
    Value init(int, const Value&) const override { return Value(0); }
    SimAction action(const Value& st) const override {
      if (st.int_or(0) == 0) return {SimAction::Kind::kYield, "", {}};
      return {};  // halt without deciding
    }
    Value transition(const Value&, const Value&) const override { return Value(1); }
  };
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc {
    co_await run_until_decision(ctx, std::make_shared<NoDecision>(), 0, Value{});
    co_return;
  });
  // The first scheduled step delivers the yield; the resumed frame then sees
  // the halt action and throws, surfacing through World::step.
  EXPECT_THROW(w.step(cpid(0)), std::logic_error);
}

TEST(ReplayProgram, QueryActionsSurface) {
  // S-side programs expose their FD queries through the adapter.
  const auto prog = std::make_shared<ReplayProgram>([](int, const Value&, Context& ctx) -> Proc {
    const Value advice = co_await ctx.query();
    co_await ctx.write("saw", advice);
  });
  Value st = prog->init(0, Value{});
  EXPECT_EQ(prog->action(st).kind, SimAction::Kind::kQuery);
  st = prog->transition(st, Value(42));
  const SimAction a = prog->action(st);
  EXPECT_EQ(a.kind, SimAction::Kind::kWrite);
  EXPECT_EQ(a.value.as_int(), 42);
}

}  // namespace
}  // namespace efd
