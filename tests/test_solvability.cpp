// Tests for the exhaustive k-concurrent explorer (core/solvability.hpp):
// clean sweeps certify k-concurrent solvability on explored inputs, and the
// level-(k+1) violations the hierarchy is built from are actually found.
#include <gtest/gtest.h>

#include "algo/one_concurrent.hpp"
#include "algo/renaming.hpp"
#include "core/solvability.hpp"
#include "tasks/consensus.hpp"
#include "tasks/identity.hpp"
#include "tasks/renaming.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

std::function<ProcBody(int, Value)> one_conc(const TaskPtr& task, const std::string& ns) {
  return [task, ns](int, Value input) { return make_one_concurrent(task, input, ns); };
}

TEST(Explorer, EveryTaskSolvableOneConcurrently) {
  // Prop. 1, machine-checked on the menu: the generic solver is clean at
  // level 1 for every explored input.
  const int n = 3;
  std::vector<TaskPtr> menu = {
      std::make_shared<ConsensusTask>(n),
      std::make_shared<SetAgreementTask>(n, 2),
      std::make_shared<IdentityTask>(n),
  };
  for (const auto& task : menu) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      ExploreConfig cfg;
      cfg.k = 1;
      cfg.arrival = Task::participants(task->sample_input(seed));
      const auto o = explore_k_concurrent(task, one_conc(task, "p1"), task->sample_input(seed), cfg);
      EXPECT_TRUE(o.ok) << task->name() << ": " << o.violation;
      EXPECT_GT(o.terminal_runs, 0);
    }
  }
}

TEST(Explorer, GenericSolverSolvesKSetAgreementKConcurrently) {
  // The adoptive generic solver is clean at level k for (n, k)-agreement...
  const int n = 4, k = 2;
  auto task = std::make_shared<SetAgreementTask>(n, k);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  ExploreConfig cfg;
  cfg.k = k;
  cfg.arrival = {0, 1, 2, 3};
  cfg.max_states = 300000;
  const auto o = explore_k_concurrent(task, one_conc(task, "ksa"), in, cfg);
  EXPECT_TRUE(o.ok) << o.violation;
  EXPECT_FALSE(o.budget_exhausted);
}

TEST(Explorer, GenericSolverBreaksAtKPlus1) {
  // ...and a level-(k+1) run with k+1 distinct decisions is exhibited.
  const int n = 4, k = 2;
  auto task = std::make_shared<SetAgreementTask>(n, k);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  ExploreConfig cfg;
  cfg.k = k + 1;
  cfg.arrival = {0, 1, 2, 3};
  cfg.max_states = 300000;
  const auto o = explore_k_concurrent(task, one_conc(task, "ksa"), in, cfg);
  EXPECT_FALSE(o.ok);
  EXPECT_EQ(o.violation, "task relation violated");
  EXPECT_FALSE(o.bad_schedule.empty());
}

TEST(Explorer, ConsensusLevelIsExactlyOne) {
  const int n = 3;
  auto task = std::make_shared<ConsensusTask>(n);
  ValueVec in{Value(0), Value(1), Value(2)};
  const CleanLevelResult r = max_clean_level(task, one_conc(task, "c"), in, n);
  EXPECT_EQ(r.level, 1);
  EXPECT_FALSE(r.budget_exhausted) << "level 1 must be fully certified, not sampled";
}

TEST(Explorer, IdentityIsWaitFree) {
  const int n = 3;
  auto task = std::make_shared<IdentityTask>(n);
  const ValueVec in = task->sample_input(5);
  const CleanLevelResult r = max_clean_level(task, one_conc(task, "id"), in, n);
  EXPECT_EQ(r.level, n);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(Explorer, CleanLevelNotCertifiedOnExhaustedBudget) {
  // Regression: a sweep that ran out of budget used to bump the level even
  // though it had not covered level k — certifying solvability on a sample.
  // A starved sweep must leave the level at the last covered one and
  // surface the exhaustion.
  const int n = 3;
  auto task = std::make_shared<IdentityTask>(n);
  const ValueVec in = task->sample_input(5);
  ExploreConfig cfg;
  cfg.max_states = 2;  // even the level-1 sweep cannot finish
  const CleanLevelResult r = max_clean_level(task, one_conc(task, "idb"), in, n, cfg);
  EXPECT_EQ(r.level, 0);
  EXPECT_TRUE(r.budget_exhausted);
}

TEST(Explorer, Fig4RenamingCleanAtK) {
  // Thm. 15 evidence: every 2-concurrent schedule of Fig. 4 on (3,4)-renaming
  // decides unique names <= 4.
  const int n = 4;
  auto task = std::make_shared<RenamingTask>(n, 3, 4);
  const ValueVec in = task->sample_input(0);
  const RenamingConfig rcfg{"ren", n};
  auto body = [rcfg](int, Value input) { return make_renaming_kconc(rcfg, input); };
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = Task::participants(in);
  cfg.max_states = 400000;
  const auto o = explore_k_concurrent(task, body, in, cfg);
  EXPECT_TRUE(o.ok) << o.violation;
}

TEST(Explorer, Fig4StrongRenamingBreaksAtTwoConcurrent) {
  // Thm. 12 evidence: the Fig. 4 algorithm, which does solve strong renaming
  // 1-concurrently, fails somewhere at level 2 (name out of range 1..j).
  const int n = 3;
  auto task = std::make_shared<RenamingTask>(RenamingTask::strong(n, 2));
  const ValueVec in = task->sample_input(0);
  const RenamingConfig rcfg{"ren", n};
  auto body = [rcfg](int, Value input) { return make_renaming_kconc(rcfg, input); };

  ExploreConfig cfg;
  cfg.arrival = Task::participants(in);
  cfg.k = 1;
  EXPECT_TRUE(explore_k_concurrent(task, body, in, cfg).ok);
  cfg.k = 2;
  const auto o = explore_k_concurrent(task, body, in, cfg);
  EXPECT_FALSE(o.ok);
}

TEST(Explorer, ViolatingScheduleReplays) {
  // The reported bad schedule is a real counterexample: replaying it in a
  // fresh world reproduces the violation.
  const int n = 3;
  auto task = std::make_shared<ConsensusTask>(n);
  ValueVec in{Value(0), Value(1), Value(2)};
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = {0, 1, 2};
  const auto o = explore_k_concurrent(task, one_conc(task, "c"), in, cfg);
  ASSERT_FALSE(o.ok);
  ASSERT_FALSE(o.bad_schedule.empty());

  World w = World::failure_free(1);
  for (int i = 0; i < n; ++i) {
    w.spawn_c(i, make_one_concurrent(task, in[static_cast<std::size_t>(i)], "c"));
  }
  for (int c : o.bad_schedule) w.step(cpid(c));
  ValueVec out = w.output_vector();
  out.resize(static_cast<std::size_t>(n));
  EXPECT_FALSE(task->relation(in, out));
}

TEST(Explorer, DedupMatchesNoDedupVerdict) {
  // Signature dedup is an optimization, not a semantics change.
  const int n = 3;
  auto task = std::make_shared<SetAgreementTask>(n, 2);
  ValueVec in{Value(0), Value(1), Value(2)};
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = {0, 1, 2};
  cfg.max_states = 30000;  // the undeduped tree is exponential; cap both runs
  const auto with = explore_k_concurrent(task, one_conc(task, "s"), in, cfg);
  cfg.dedup = false;
  const auto without = explore_k_concurrent(task, one_conc(task, "s"), in, cfg);
  EXPECT_EQ(with.ok, without.ok);
  EXPECT_LE(with.states, without.states);
}

}  // namespace
}  // namespace efd
