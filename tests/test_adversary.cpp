// Tests for the adversarial schedulers (sim/adversary.hpp): lockstep
// preemption and suppression-based starvation, and the safety of the
// library's algorithms under them.
#include <gtest/gtest.h>

#include <set>

#include "algo/leader_consensus.hpp"
#include "algo/paxos.hpp"
#include "algo/set_agreement_antiomega.hpp"
#include "fd/detectors.hpp"
#include "sim/adversary.hpp"

namespace efd {
namespace {

Proc spin(Context& ctx) {
  for (;;) co_await ctx.yield();
}

TEST(Lockstep, StrictRotation) {
  World w = World::failure_free(1);
  w.spawn_c(0, spin);
  w.spawn_c(1, spin);
  LockstepScheduler ls({cpid(1), cpid(0)});
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    const auto pid = ls.next(w);
    order.push_back(pid->index);
    w.step(*pid);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 0, 1, 0, 1, 0}));
}

TEST(Lockstep, SkipsTerminated) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc { co_await ctx.decide(Value(1)); });
  w.spawn_c(1, spin);
  LockstepScheduler ls({cpid(0), cpid(1)});
  w.step(*ls.next(w));  // p1 decides & terminates
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ls.next(w)->index, 1);
}

Proc endless_proposer(Context& ctx, int me, Value v) {
  const PaxosInstance inst{"px", 2};
  for (int r = 0;; ++r) {
    const Value d = co_await paxos_attempt(ctx, inst, me, r, v);
    if (!d.is_nil()) {
      co_await ctx.decide(d);
      co_return;
    }
  }
}

TEST(Lockstep, PaxosLivelocksUnderRotation) {
  // The canonical adversarial fact the extraction builds on.
  World w = World::failure_free(1);
  for (int i = 0; i < 2; ++i) {
    w.spawn_c(i, [i](Context& ctx) { return endless_proposer(ctx, i, Value(i)); });
  }
  LockstepScheduler ls({cpid(0), cpid(1)});
  const auto r = drive(w, ls, 30000);
  EXPECT_FALSE(r.all_c_decided);
  EXPECT_TRUE(w.memory().read("px/DEC").is_nil());
}

TEST(Suppress, StarvedCProcessNeverSteps) {
  const int n = 3;
  FailurePattern f(n);
  OmegaFd omega(15);
  World w(f, omega.history(f, 2));
  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RoundRobinScheduler inner;
  SuppressScheduler sup(inner, [](Pid pid, const World&) { return pid == cpid(2); });
  // p1 and p2 decide even though p3 never takes a step (EFD wait-freedom);
  // all_c_decided never becomes true, so drive by decision checks.
  for (int step = 0; step < 100000 && !(w.decided(cpid(0)) && w.decided(cpid(1))); ++step) {
    const auto pid = sup.next(w);
    ASSERT_TRUE(pid.has_value());
    w.step(*pid);
  }
  EXPECT_TRUE(w.decided(cpid(0)));
  EXPECT_TRUE(w.decided(cpid(1)));
  EXPECT_EQ(w.steps_taken(cpid(2)), 0);
  EXPECT_EQ(w.decision(cpid(0)), w.decision(cpid(1)));
}

TEST(Suppress, FallsBackWhenInnerProposesOnlySuppressedPids) {
  // Regression: the inner scheduler's whole rotation is suppressed, so its
  // bounded polls only ever propose suppressed pids and run dry — but an
  // eligible outsider (p2, never in the rotation) exists. The old
  // SuppressScheduler returned nullopt here, reported upstream as schedule
  // exhaustion; it must instead consult the world and schedule the outsider.
  World w = World::failure_free(1);
  w.spawn_c(0, spin);
  w.spawn_c(1, spin);
  LockstepScheduler inner({cpid(0)});  // proposes p1 and nothing else
  SuppressScheduler sup(inner, [](Pid pid, const World&) { return pid == cpid(0); });
  for (int i = 0; i < 5; ++i) {
    const auto pid = sup.next(w);
    ASSERT_TRUE(pid.has_value()) << "spurious exhaustion with an eligible process left";
    EXPECT_EQ(*pid, cpid(1));
    w.step(*pid);
  }
  EXPECT_EQ(w.steps_taken(cpid(0)), 0);
  EXPECT_EQ(w.steps_taken(cpid(1)), 5);
}

TEST(Suppress, StillExhaustsWhenTrulyNothingIsSchedulable) {
  // The fallback consults the world, so genuine exhaustion — every process
  // suppressed, terminated, or crashed — is still reported as nullopt.
  World w = World::failure_free(1);
  w.spawn_c(0, spin);
  RoundRobinScheduler inner;
  SuppressScheduler sup(inner, [](Pid, const World&) { return true; });
  EXPECT_FALSE(sup.next(w).has_value());
}

TEST(Suppress, DynamicSuppressionByState) {
  // Suppress every S-process once the decision register is written: the
  // remaining C-processes must still finish on their own.
  const int n = 2;
  FailurePattern f(n);
  VectorOmegaK vo(1, 5);  // the KSA server consumes →Ωk-shaped samples
  World w(f, vo.history(f, 1));
  const KsaConfig cfg{"ksa", n, 1};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_ksa_server(cfg));
  RoundRobinScheduler inner;
  SuppressScheduler sup(inner, [cfg](Pid pid, const World& world) {
    return pid.is_s() && !world.memory().read(cfg.ns + "/inst0/DEC").is_nil();
  });
  const auto r = drive(w, sup, 200000);
  EXPECT_TRUE(r.all_c_decided);
}


// ---- degenerate-world drives (fault-campaign hardening) --------------------

Proc decide_one(Context& ctx) {
  co_await ctx.decide(Value(1));
}

TEST(DegenerateWorlds, AllSCrashedWorldYieldsDefinedDriveResult) {
  FailurePattern f(2);
  f.crash(0, 0);
  f.crash(1, 0);
  World w(f, TrivialFd{}.history(f, 0));
  w.spawn_s(0, spin);
  w.spawn_s(1, spin);
  w.spawn_c(0, decide_one);
  RoundRobinScheduler rr;
  const DriveResult r = drive(w, rr, 100);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_FALSE(r.exhausted);
  EXPECT_TRUE(w.decided(cpid(0)));
}

TEST(DegenerateWorlds, AllSCrashedNoClientsStopsDefined) {
  // Nothing is schedulable: the round-robin scheduler reports exhaustion
  // immediately and the drive terminates with a defined stop cause instead
  // of spinning or reporting a vacuous all-decided.
  FailurePattern f(1);
  f.crash(0, 0);
  World w(f, TrivialFd{}.history(f, 0));
  w.spawn_s(0, spin);
  RoundRobinScheduler rr;
  const DriveResult r = drive(w, rr, 50);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.steps, 0);
  EXPECT_FALSE(r.all_c_decided);  // vacuous-decided must not be reported
}

TEST(DegenerateWorlds, ZeroSWorldDrivesClientsToDecision) {
  World w = World::failure_free(0);
  w.spawn_c(0, decide_one);
  w.spawn_c(1, decide_one);
  RoundRobinScheduler rr;
  const DriveResult r = drive(w, rr, 100);
  EXPECT_TRUE(r.all_c_decided);
}

}  // namespace
}  // namespace efd
