// Tests for the Fig. 1 / Thm. 8 extraction: the hunt finds non-deciding
// (k+1)-concurrent runs and the emulated output is a legal ¬Ωk history.
#include <gtest/gtest.h>

#include "algo/extraction.hpp"
#include "fd/dag.hpp"
#include "fd/detectors.hpp"
#include "fd/reduction.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

// Builds a DAG offline by sampling a detector history directly (round-robin
// sampling order), so extract_once can be unit-tested without a live run.
FdDag sampled_dag(const FailurePattern& f, const History& h, int rounds) {
  const int n = f.n();
  FdDag dag(n);
  Time t = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int qi = 0; qi < n; ++qi) {
      ++t;
      if (!f.alive(qi, t)) continue;
      std::vector<int> preds(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) preds[static_cast<std::size_t>(j)] = dag.count(j) - 1;
      dag.append(qi, h.at(qi, t), std::move(preds));
    }
  }
  return dag;
}

TEST(ExtractOnce, FindsWitnessOnRichDag) {
  // q2 and q3 crash early (few samples); the hunt's stable witness must
  // starve the survivors whose samples keep the simulation deciding.
  const int n = 4, k = 2;
  FailurePattern f(n);
  f.crash(1, 0);  // initially dead: zero DAG samples, so their simulated
  f.crash(2, 0);  // servers stall instantly and cannot decide anything
  VectorOmegaK vo(k, 30);
  const auto h = vo.history(f, 5);
  const FdDag dag = sampled_dag(f, *h, 60);

  ExtractionConfig cfg;
  cfg.n = n;
  cfg.k = k;
  const ExtractionResult r = extract_once(dag, cfg, 20000);
  EXPECT_TRUE(r.witness_found);
  EXPECT_EQ(static_cast<int>(r.output.size()), n - k);
  EXPECT_EQ(static_cast<int>(r.starved.size()), k);
  // Output and starved set partition {0..n-1}.
  for (int id : r.output) {
    EXPECT_EQ(std::count(r.starved.begin(), r.starved.end(), id), 0);
  }
}

TEST(ExtractOnce, WitnessStarvesTheCorrectProcesses) {
  // q1 and q2 crash, so the correct set is {2, 3} and safe = q3 (index 2) —
  // deliberately OUTSIDE the fallback exclusion {0, 1}. A stable witness
  // must starve every correct process (any unstarved correct server's
  // plentiful samples let the simulated algorithm decide), so the emulated
  // output permanently excludes the correct safe process — the genuine ¬Ωk
  // mechanism, not the fallback.
  const int n = 4, k = 2;
  FailurePattern f(n);
  f.crash(0, 0);
  f.crash(1, 0);
  VectorOmegaK vo(k, 25);
  const auto h = vo.history(f, 9);
  const FdDag dag = sampled_dag(f, *h, 80);

  ExtractionConfig cfg;
  cfg.n = n;
  cfg.k = k;
  const ExtractionResult r = extract_once(dag, cfg, 30000);
  ASSERT_TRUE(r.witness_found);
  const int safe = f.correct_set().front();
  EXPECT_EQ(safe, 2);
  EXPECT_EQ(std::count(r.starved.begin(), r.starved.end(), safe), 1)
      << "the witness does not starve the stable correct leader";
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), safe), 0);
}

TEST(ExtractOnce, EmptyDagFallsBack) {
  const int n = 4, k = 2;
  FdDag dag(n);
  ExtractionConfig cfg;
  cfg.n = n;
  cfg.k = k;
  // With no samples every simulated server stalls instantly: every candidate
  // is a witness, and lexicographically the first is U = {0, 1}.
  const ExtractionResult r = extract_once(dag, cfg, 3000);
  EXPECT_EQ(static_cast<int>(r.output.size()), n - k);
}

class ExtractionEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

// The full Thm. 8 pipeline: D = →Ωk solves k-set agreement; the extraction
// S-processes build the DAG from D and emulate ¬Ωk; the emulated history
// satisfies AntiOmegaK::check.
TEST_P(ExtractionEndToEnd, EmulatedHistoryIsAntiOmegaK) {
  const std::uint64_t seed = GetParam();
  const int n = 4, k = 2;
  FailurePattern f(n);
  f.crash(static_cast<int>(seed % n == 0 ? 1 : seed % n), 25);  // never crash everyone
  auto vo = std::make_shared<VectorOmegaK>(k, 60);

  ExtractionConfig cfg;
  cfg.ns = "ex";
  cfg.n = n;
  cfg.k = k;
  cfg.explore_every = 2;
  cfg.budget0 = 4000;
  cfg.budget_step = 4000;
  cfg.max_budget = 24000;

  std::vector<ProcBody> bodies;
  for (int i = 0; i < n; ++i) bodies.push_back(make_extraction_sproc(cfg));
  const ReductionRun run = run_reduction(f, vo, seed, bodies, 7000);

  const auto h = emulated_history_from_trace(run.trace, cfg);
  EXPECT_TRUE(AntiOmegaK::check(k, f, *h, run.horizon)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractionEndToEnd, ::testing::Values(1, 2, 3, 13));

}  // namespace
}  // namespace efd
