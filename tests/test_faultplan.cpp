// Tests for fault plans (sim/faultplan.hpp): serialization round-trips,
// deterministic sampling inside the target space, burst suppression, and
// online trigger/storm resolution in drive_with_plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/faultplan.hpp"
#include "sim/replay.hpp"
#include "sim/trace.hpp"

namespace efd {
namespace {

Proc spin(Context& ctx) {
  for (;;) co_await ctx.yield();
}

Proc s_writer(Context& ctx) {
  const RegAddr a{"acc/X"};
  for (std::int64_t e = 1;; ++e) {
    co_await ctx.write(a, Value(e));
    co_await ctx.yield();
  }
}

FaultPlan::Space small_space() {
  FaultPlan::Space sp;
  sp.num_s = 3;
  sp.num_c = 2;
  sp.horizon = 300;
  sp.max_crashes = 2;
  sp.trigger_prefixes = {"acc/"};
  sp.allow_fd_faults = true;
  sp.max_gst = 40;
  sp.max_bursts = 2;
  sp.max_burst_len = 30;
  return sp;
}

TEST(FaultPlan, ToStringParseRoundTrip) {
  const FaultPlan::Space sp = small_space();
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan plan = FaultPlan::sample(seed, sp);
    const FaultPlan back = FaultPlan::parse(plan.to_string());
    ASSERT_EQ(back, plan) << "seed " << seed << ": " << plan.to_string();
  }
}

TEST(FaultPlan, ParseRejectsMalformedText) {
  EXPECT_THROW(FaultPlan::parse(""), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("plan-v2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("plan-v1; storm 12"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("plan-v1; fd sneaky 10 8"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("plan-v1; trig acc/ scribble 1 1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("plan-v1; burst 5 10 x9"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("plan-v1; frobnicate 1"), std::invalid_argument);
}

TEST(FaultPlan, SamplingIsDeterministicAndInSpace) {
  const FaultPlan::Space sp = small_space();
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan a = FaultPlan::sample(seed, sp);
    const FaultPlan b = FaultPlan::sample(seed, sp);
    ASSERT_EQ(a, b);
    ASSERT_LE(static_cast<int>(a.storm.size() + a.triggers.size()), sp.max_crashes);
    ASSERT_LE(static_cast<int>(a.bursts.size()), sp.max_bursts);
    for (const auto& c : a.storm) {
      ASSERT_GE(c.s_index, 0);
      ASSERT_LT(c.s_index, sp.num_s);
      ASSERT_LT(c.step_index, sp.horizon);
    }
    for (const auto& t : a.triggers) {
      ASSERT_EQ(t.reg_prefix, "acc/");
      ASSERT_GE(t.delay, 1);
      ASSERT_GE(t.occurrence, 1);
    }
    for (const auto& b2 : a.bursts) {
      ASSERT_GE(b2.length, 1);
      ASSERT_LE(b2.length, sp.max_burst_len);
    }
    if (a.fd.kind != FdFaultKind::kNone) {
      ASSERT_GE(a.fd.gst, 1);
      ASSERT_LE(a.fd.gst, sp.max_gst);
    }
  }
}

TEST(FaultPlan, NoFdFaultsWhenDisallowed) {
  FaultPlan::Space sp = small_space();
  sp.allow_fd_faults = false;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    EXPECT_EQ(FaultPlan::sample(seed, sp).fd.kind, FdFaultKind::kNone);
  }
}

void expect_in_space(const FaultPlan& p, const FaultPlan::Space& sp, std::uint64_t seed) {
  ASSERT_LE(static_cast<int>(p.storm.size() + p.triggers.size()), sp.max_crashes)
      << "seed " << seed;
  ASSERT_LE(static_cast<int>(p.bursts.size()), sp.max_bursts) << "seed " << seed;
  for (const auto& c : p.storm) {
    ASSERT_GE(c.s_index, 0) << "seed " << seed;
    ASSERT_LT(c.s_index, sp.num_s) << "seed " << seed;
    ASSERT_GE(c.step_index, 0) << "seed " << seed;
    ASSERT_LT(c.step_index, sp.horizon) << "seed " << seed;
  }
  for (const auto& t : p.triggers) {
    ASSERT_GE(t.delay, 1) << "seed " << seed;
    ASSERT_GE(t.occurrence, 1) << "seed " << seed;
  }
  if (p.fd.kind != FdFaultKind::kNone) {
    ASSERT_TRUE(sp.allow_fd_faults) << "seed " << seed;
    ASSERT_GE(p.fd.gst, 1) << "seed " << seed;
    ASSERT_LE(p.fd.gst, sp.max_gst) << "seed " << seed;
  }
}

TEST(FaultPlan, MutationIsDeterministicAndStaysInSpace) {
  const FaultPlan::Space sp = small_space();
  int changed = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan base = FaultPlan::sample(seed, sp);
    const FaultPlan m1 = base.mutate(seed + 1000, sp);
    const FaultPlan m2 = base.mutate(seed + 1000, sp);
    ASSERT_EQ(m1, m2) << "seed " << seed;
    expect_in_space(m1, sp, seed);
    if (m1 != base) ++changed;
    // Mutants stay serializable provenance.
    ASSERT_EQ(FaultPlan::parse(m1.to_string()), m1) << m1.to_string();
  }
  // Mutation must actually move through the space, not fixpoint.
  EXPECT_GT(changed, 150);
}

TEST(FaultPlan, MutationRespectsTightenedCaps) {
  FaultPlan::Space wide = small_space();
  FaultPlan::Space tight = small_space();
  tight.max_crashes = 1;
  tight.max_bursts = 1;
  tight.max_gst = 5;
  tight.allow_fd_faults = false;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const FaultPlan base = FaultPlan::sample(seed, wide);
    const FaultPlan m = base.mutate(seed, tight);
    expect_in_space(m, tight, seed);
    EXPECT_EQ(m.fd.kind, FdFaultKind::kNone) << "seed " << seed;
  }
}

TEST(FaultPlan, SpliceIsDeterministicAndStaysInSpace) {
  const FaultPlan::Space sp = small_space();
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const FaultPlan a = FaultPlan::sample(seed, sp);
    const FaultPlan b = FaultPlan::sample(seed + 7, sp);
    const FaultPlan s1 = FaultPlan::splice(a, b, seed, sp);
    const FaultPlan s2 = FaultPlan::splice(a, b, seed, sp);
    ASSERT_EQ(s1, s2) << "seed " << seed;
    expect_in_space(s1, sp, seed);
    // The crossover carries a's crash faults (clamped) and b's FD fault.
    if (s1.fd.kind != FdFaultKind::kNone) {
      EXPECT_EQ(s1.fd.kind, b.fd.kind) << "seed " << seed;
    }
    ASSERT_EQ(FaultPlan::parse(s1.to_string()), s1) << s1.to_string();
  }
}

TEST(BurstScheduler, SuppressesVictimInsideWindow) {
  World w = World::failure_free(0);
  w.spawn_c(0, spin);
  w.spawn_c(1, spin);
  RoundRobinScheduler rr;
  BurstScheduler bs(rr, {StarvationBurst{2, 4, cpid(0)}});
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    const auto pid = bs.next(w);
    ASSERT_TRUE(pid.has_value());
    order.push_back(pid->index);
    w.step(*pid);
  }
  for (int i = 2; i < 6; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 1) << "step " << i;
  // Outside the window round-robin resumes, so p1 still runs.
  EXPECT_TRUE(std::count(order.begin(), order.end(), 0) > 0);
}

TEST(BurstScheduler, YieldsWhenInnerInsists) {
  // One process only: the inner scheduler can never propose anyone else, so
  // the burst must yield instead of stalling the world.
  World w = World::failure_free(0);
  w.spawn_c(0, spin);
  RoundRobinScheduler rr;
  BurstScheduler bs(rr, {StarvationBurst{0, 5, cpid(0)}});
  for (int i = 0; i < 5; ++i) {
    const auto pid = bs.next(w);
    ASSERT_TRUE(pid.has_value());
    EXPECT_EQ(*pid, cpid(0));
    w.step(*pid);
  }
}

TEST(DriveWithPlan, StormCrashesAtItsStepIndex) {
  FailurePattern base(2);
  World w(base, TrivialFd{}.history(base, 0));
  w.spawn_s(0, s_writer);
  w.spawn_s(1, spin);
  RoundRobinScheduler rr;
  FaultPlan plan;
  plan.storm.push_back(CrashPoint{4, 0});
  const PlanDriveResult r = drive_with_plan(w, rr, 20, plan);
  EXPECT_TRUE(r.drive.budget_exhausted);
  ASSERT_EQ(r.applied.size(), 1U);
  EXPECT_EQ(r.applied[0], (CrashPoint{4, 0}));
  ASSERT_EQ(r.applied_at.size(), 1U);
  EXPECT_FALSE(w.alive(spid(0)));
  EXPECT_TRUE(w.alive(spid(1)));
}

TEST(DriveWithPlan, TriggerKillsMatchingWriterAfterDelay) {
  FailurePattern base(2);
  World w(base, TrivialFd{}.history(base, 0));
  w.spawn_s(0, s_writer);  // writes acc/X every other step
  w.spawn_s(1, spin);
  RoundRobinScheduler rr;
  FaultPlan plan;
  plan.triggers.push_back(CrashTrigger{"acc/", OpKind::kWrite, 2, 2});
  const PlanDriveResult r = drive_with_plan(w, rr, 40, plan);
  EXPECT_EQ(r.triggers_fired, 1);
  ASSERT_EQ(r.applied.size(), 1U);
  EXPECT_EQ(r.applied[0].s_index, 0);
  EXPECT_FALSE(w.alive(spid(0)));
  // Round-robin over q1, q2: q1's writes land at steps 0, 2 (yield), 4...
  // Write ops at step indices 0 and 4; the 2nd match at step 4 arms a kill
  // at step 4 - 1 + 2 = 5... the exact index is an implementation detail,
  // but it must be AFTER the second write and within the delay.
  EXPECT_GE(r.applied[0].step_index, 4);
  EXPECT_LE(r.applied[0].step_index, 7);
}

TEST(DriveWithPlan, AppliedPointsReplayIdentically) {
  // The applied crash points must reproduce the exact same run when fed to
  // drive_with_crashes — that is what makes campaign tapes self-contained.
  FaultPlan plan;
  plan.triggers.push_back(CrashTrigger{"acc/", OpKind::kWrite, 1, 1});
  plan.storm.push_back(CrashPoint{9, 1});

  FailurePattern base(2);
  World w1(base, TrivialFd{}.history(base, 0));
  w1.spawn_s(0, s_writer);
  w1.spawn_s(1, spin);
  w1.enable_trace();
  RoundRobinScheduler rr1;
  const PlanDriveResult r1 = drive_with_plan(w1, rr1, 30, plan);

  World w2(base, TrivialFd{}.history(base, 0));
  w2.spawn_s(0, s_writer);
  w2.spawn_s(1, spin);
  w2.enable_trace();
  RoundRobinScheduler rr2;
  const DriveResult r2 = drive_with_crashes(w2, rr2, 30, r1.applied);

  EXPECT_EQ(r1.drive.steps, r2.steps);
  EXPECT_EQ(trace_hash(w1.trace()), trace_hash(w2.trace()));
}

TEST(FaultPlan, CorruptWrapsAdvice) {
  FaultPlan plan;
  plan.fd = FdFault{FdFaultKind::kStuttering, 40, 4};
  const DetectorPtr inner = std::make_shared<OmegaFd>(10);
  const DetectorPtr wrapped = plan.corrupt(inner);
  const auto* st = dynamic_cast<const StutteringFd*>(wrapped.get());
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->corrupt_until(), 40);
  EXPECT_EQ(st->period(), 4);
  EXPECT_EQ(st->inner(), inner);
}

}  // namespace
}  // namespace efd
