// Tests for the task-level reductions of §5 (core/reduction.hpp):
// consensus ⇒ strong renaming (slot claiming) and the Lemma 11 construction
// strong renaming ⇒ consensus.
#include <gtest/gtest.h>

#include <set>

#include "core/reduction.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "tasks/renaming.hpp"

namespace efd {
namespace {

struct SlotCase {
  int n, j, participants, faults;
  std::uint64_t seed;
};

class SlotRenamingSweep : public ::testing::TestWithParam<SlotCase> {};

TEST_P(SlotRenamingSweep, StrongRenamingFromConsensus) {
  const auto p = GetParam();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 15);
  OmegaFd omega(40);
  World w(f, omega.history(f, p.seed));
  const SlotRenamingConfig cfg{"slots", p.n, p.j};
  for (int i = 0; i < p.participants; ++i) {
    w.spawn_c(i, make_slot_renaming_client(cfg, Value(100 + i)));
  }
  for (int i = 0; i < p.n; ++i) w.spawn_s(i, make_slot_renaming_server(cfg));
  RandomScheduler rs(p.seed * 3 + 1);
  const auto r = drive(w, rs, 1000000);
  ASSERT_TRUE(r.all_c_decided) << f.to_string();

  std::set<std::int64_t> names;
  for (int i = 0; i < p.participants; ++i) {
    const auto name = w.decision(cpid(i)).as_int();
    EXPECT_GE(name, 1);
    EXPECT_LE(name, p.j) << "strong renaming: name must be within {1..j}";
    names.insert(name);
  }
  EXPECT_EQ(static_cast<int>(names.size()), p.participants);  // distinct
}

INSTANTIATE_TEST_SUITE_P(Sweep, SlotRenamingSweep,
                         ::testing::Values(SlotCase{3, 2, 2, 1, 1}, SlotCase{3, 2, 1, 2, 2},
                                           SlotCase{4, 3, 3, 2, 3}, SlotCase{4, 3, 2, 1, 4},
                                           SlotCase{5, 4, 4, 3, 5}, SlotCase{5, 2, 2, 4, 6}));

// ---- Lemma 11: consensus from strong 2-renaming ----

SimProgramPtr strong2_renaming_program(int n, std::uint64_t /*unused*/) {
  // The renaming box: the consensus-powered slot-claiming algorithm's client,
  // wrapped as an automaton (the S-side runs live in the same world).
  const SlotRenamingConfig cfg{"l11slots", n, 2};
  return std::make_shared<ReplayProgram>([cfg](int index, const Value& input, Context& ctx) {
    return make_slot_renaming_client(cfg, input)(ctx);
    (void)index;
  });
}

class Lemma11Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma11Sweep, ConsensusFromStrongRenaming) {
  const std::uint64_t seed = GetParam();
  const int n = 2;
  const FailurePattern f = Environment(n, n - 1).sample(seed, static_cast<int>(seed % 2), 10);
  OmegaFd omega(30);
  World w(f, omega.history(f, seed));
  const auto box = strong2_renaming_program(n, seed);
  for (int me = 0; me < 2; ++me) {
    w.spawn_c(me, make_consensus_from_renaming("l11", me, Value(500 + me), box));
  }
  const SlotRenamingConfig scfg{"l11slots", n, 2};
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_slot_renaming_server(scfg));
  RandomScheduler rs(seed + 77);
  const auto r = drive(w, rs, 1000000);
  ASSERT_TRUE(r.all_c_decided);
  // Agreement + validity.
  const auto d0 = w.decision(cpid(0)).as_int();
  const auto d1 = w.decision(cpid(1)).as_int();
  EXPECT_EQ(d0, d1);
  EXPECT_TRUE(d0 == 500 || d0 == 501);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma11Sweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Lemma11, SoloWinnerDecidesOwnValue) {
  // Only p1 runs: it must obtain name 1 in its solo renaming run and decide
  // its own proposal (the property the Lemma 11 proof hinges on).
  const int n = 2;
  FailurePattern f(n);
  OmegaFd omega(10);
  World w(f, omega.history(f, 3));
  const auto box = strong2_renaming_program(n, 3);
  w.spawn_c(0, make_consensus_from_renaming("l11", 0, Value(42), box));
  const SlotRenamingConfig scfg{"l11slots", n, 2};
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_slot_renaming_server(scfg));
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 500000);
  ASSERT_TRUE(r.all_c_decided);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 42);
}

}  // namespace
}  // namespace efd
