// Tests for the coroutine process runtime and the World executor: one
// co_await == one model step, decide semantics, null steps after return,
// crash handling, FD query routing, subroutine composition.
#include <gtest/gtest.h>

#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace efd {
namespace {

Proc write_read_decide(Context& ctx) {
  co_await ctx.write("X", 7);
  const Value v = co_await ctx.read("X");
  co_await ctx.decide(v);
}

TEST(World, OneAwaitIsOneStep) {
  World w = World::failure_free(1);
  w.spawn_c(0, write_read_decide);
  EXPECT_TRUE(w.step(cpid(0)));  // write
  EXPECT_EQ(w.memory().read("X").as_int(), 7);
  EXPECT_FALSE(w.decided(cpid(0)));
  w.step(cpid(0));  // read
  EXPECT_FALSE(w.decided(cpid(0)));
  w.step(cpid(0));  // decide
  EXPECT_TRUE(w.decided(cpid(0)));
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 7);
}

TEST(World, PrimingConsumesNoStep) {
  World w = World::failure_free(1);
  w.spawn_c(0, write_read_decide);
  EXPECT_EQ(w.steps_taken(cpid(0)), 0);
  EXPECT_FALSE(w.participating(cpid(0)));
  w.step(cpid(0));
  EXPECT_EQ(w.steps_taken(cpid(0)), 1);
  EXPECT_TRUE(w.participating(cpid(0)));
}

TEST(World, NullStepsAfterTermination) {
  World w = World::failure_free(1);
  w.spawn_c(0, write_read_decide);
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  EXPECT_TRUE(w.terminated(cpid(0)));
  const int before = w.steps_taken(cpid(0));
  w.step(cpid(0));  // null step: allowed, no effect
  EXPECT_EQ(w.steps_taken(cpid(0)), before);
  EXPECT_TRUE(w.decided(cpid(0)));
}

TEST(World, TimeAdvancesPerStep) {
  World w = World::failure_free(1);
  w.spawn_c(0, write_read_decide);
  EXPECT_EQ(w.now(), 0);
  w.step(cpid(0));
  w.step(cpid(0));
  EXPECT_EQ(w.now(), 2);
}

TEST(World, CrashedSProcessTakesNoSteps) {
  FailurePattern f(2);
  f.crash(0, 0);  // q1 crashed from the start
  World w(f, TrivialFd{}.history(f, 0));
  w.spawn_s(0, write_read_decide);
  w.spawn_s(1, write_read_decide);
  EXPECT_FALSE(w.step(spid(0)));  // no step, no time advance
  EXPECT_EQ(w.now(), 0);
  EXPECT_TRUE(w.step(spid(1)));
  EXPECT_EQ(w.now(), 1);
}

TEST(World, CrashTakesEffectAtItsTime) {
  FailurePattern f(1);
  f.crash(0, 2);
  World w(f, TrivialFd{}.history(f, 0));
  w.spawn_s(0, write_read_decide);
  EXPECT_TRUE(w.step(spid(0)));   // t=0 alive
  EXPECT_TRUE(w.step(spid(0)));   // t=1 alive
  EXPECT_FALSE(w.step(spid(0)));  // t=2 crashed
}

TEST(World, QueryFromCProcessThrows) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc { co_await ctx.query(); });
  EXPECT_THROW(w.step(cpid(0)), std::logic_error);
}

TEST(World, QueryRoutesThroughHistory) {
  FailurePattern f(2);
  auto h = std::make_shared<FnHistory>([](int qi, Time t) { return Value(qi * 100 + t); });
  World w(f, h);
  w.spawn_s(1, [](Context& ctx) -> Proc {
    const Value v = co_await ctx.query();
    co_await ctx.write("seen", v);
  });
  w.step(spid(1));  // query at t=0
  w.step(spid(1));  // write
  EXPECT_EQ(w.memory().read("seen").as_int(), 100);
}

TEST(World, DuplicateSpawnThrows) {
  World w = World::failure_free(1);
  w.spawn_c(0, write_read_decide);
  EXPECT_THROW(w.spawn_c(0, write_read_decide), std::invalid_argument);
}

TEST(World, SpawnBeyondPatternThrows) {
  World w = World::failure_free(2);
  EXPECT_THROW(w.spawn_s(2, write_read_decide), std::invalid_argument);
}

TEST(World, OutputVectorTracksDecisions) {
  World w = World::failure_free(1);
  w.spawn_c(0, write_read_decide);
  w.spawn_c(1, write_read_decide);
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  const ValueVec out = w.output_vector();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].as_int(), 7);
  EXPECT_TRUE(out[1].is_nil());
  EXPECT_FALSE(w.all_c_decided());
}

// --- subroutine composition ---

Co<Value> sum_two(Context& ctx) {
  const Value a = co_await ctx.read("a");
  const Value b = co_await ctx.read("b");
  co_return Value(a.int_or(0) + b.int_or(0));
}

Proc uses_subroutine(Context& ctx) {
  co_await ctx.write("a", 3);
  co_await ctx.write("b", 4);
  const Value s = co_await sum_two(ctx);
  co_await ctx.decide(s);
}

TEST(Coroutine, SubroutineStepsBubbleUp) {
  World w = World::failure_free(1);
  w.spawn_c(0, uses_subroutine);
  // 2 writes + 2 subroutine reads + 1 decide = 5 steps.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(w.decided(cpid(0))) << "decided after only " << i << " steps";
    w.step(cpid(0));
  }
  EXPECT_TRUE(w.decided(cpid(0)));
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 7);
}

TEST(Coroutine, CollectReadsEachRegisterOnce) {
  World w = World::failure_free(1);
  w.memory().write(reg("V", 0), Value(10));
  w.memory().write(reg("V", 2), Value(30));
  w.spawn_c(0, [](Context& ctx) -> Proc {
    const Value v = co_await collect(ctx, "V", 3);
    co_await ctx.decide(v);
  });
  for (int i = 0; i < 4; ++i) w.step(cpid(0));  // 3 reads + decide
  const Value v = w.decision(cpid(0));
  EXPECT_EQ(v.at(0).as_int(), 10);
  EXPECT_TRUE(v.at(1).is_nil());
  EXPECT_EQ(v.at(2).as_int(), 30);
}

TEST(Coroutine, AwaitNonNilSpinsUntilWritten) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc {
    const Value v = co_await await_nonnil(ctx, "flag");
    co_await ctx.decide(v);
  });
  for (int i = 0; i < 10; ++i) w.step(cpid(0));
  EXPECT_FALSE(w.decided(cpid(0)));
  w.memory().write("flag", Value(5));
  w.step(cpid(0));  // read sees 5
  w.step(cpid(0));  // decide
  EXPECT_TRUE(w.decided(cpid(0)));
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 5);
}

TEST(Coroutine, DoubleCollectStableView) {
  World w = World::failure_free(1);
  w.memory().write(reg("D", 0), Value(1));
  w.memory().write(reg("D", 1), Value(2));
  w.spawn_c(0, [](Context& ctx) -> Proc {
    const Value v = co_await double_collect(ctx, "D", 2);
    co_await ctx.decide(v);
  });
  for (int i = 0; i < 5; ++i) w.step(cpid(0));  // 2+2 reads + decide
  EXPECT_EQ(w.decision(cpid(0)), vec(Value(1), Value(2)));
}

TEST(Coroutine, ExceptionInBodyPropagates) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc {
    co_await ctx.yield();
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(w.step(cpid(0)), std::runtime_error);
}

}  // namespace
}  // namespace efd
