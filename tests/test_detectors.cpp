// Tests for the failure-detector zoo (fd/detectors.hpp): every detector's
// histories satisfy its own specification across patterns and seeds, and the
// spec checkers reject histories that break the promise.
#include <gtest/gtest.h>

#include "fd/detectors.hpp"

namespace efd {
namespace {

constexpr Time kHorizon = 400;

FailurePattern pattern_with(int n, std::vector<std::pair<int, Time>> crashes) {
  FailurePattern f(n);
  for (auto [qi, t] : crashes) f.crash(qi, t);
  return f;
}

TEST(TrivialFd, AlwaysNil) {
  FailurePattern f(3);
  const auto h = TrivialFd{}.history(f, 1);
  for (int qi = 0; qi < 3; ++qi) {
    for (Time t = 0; t < 50; ++t) EXPECT_TRUE(h->at(qi, t).is_nil());
  }
}

TEST(OmegaFd, StabilizesOnCorrectLeader) {
  const auto f = pattern_with(3, {{0, 10}});
  OmegaFd omega(20);
  const auto h = omega.history(f, 7);
  EXPECT_TRUE(OmegaFd::check(f, *h, kHorizon));
  // The stable leader must be correct (q1 crashed, so not 0).
  const auto leader = h->at(1, kHorizon - 1).as_int();
  EXPECT_TRUE(f.correct(static_cast<int>(leader)));
}

TEST(OmegaFd, StabilizationAfterLastCrash) {
  const auto f = pattern_with(2, {{0, 100}});
  OmegaFd omega(5);
  EXPECT_GT(omega.stabilization_time(f), 100);
}

TEST(OmegaFd, CheckRejectsRotatingLeader) {
  FailurePattern f(3);
  FnHistory rotating([](int, Time t) { return Value(static_cast<int>(t % 3)); });
  EXPECT_FALSE(OmegaFd::check(f, rotating, kHorizon));
}

TEST(OmegaFd, CheckRejectsFaultyLeader) {
  const auto f = pattern_with(2, {{1, 0}});
  FnHistory fixed([](int, Time) { return Value(1); });  // q2 is faulty
  EXPECT_FALSE(OmegaFd::check(f, fixed, kHorizon));
}

TEST(AntiOmegaK, SampleShapeIsExactlyNMinusK) {
  FailurePattern f(5);
  AntiOmegaK anti(2, 10);
  const auto h = anti.history(f, 3);
  for (Time t = 0; t < 50; ++t) {
    const Value v = h->at(0, t);
    ASSERT_TRUE(v.is_vec());
    EXPECT_EQ(v.size(), 3u);
  }
}

TEST(AntiOmegaK, CheckRejectsAlwaysEveryone) {
  FailurePattern f(3);
  // Outputs every process in rotation: nobody is eventually excluded.
  FnHistory all([](int, Time t) {
    return vec(Value(static_cast<int>(t % 3)), Value(static_cast<int>((t + 1) % 3)));
  });
  EXPECT_FALSE(AntiOmegaK::check(1, f, all, kHorizon));
}

TEST(AntiOmegaK, CheckRejectsWrongArity) {
  FailurePattern f(3);
  FnHistory tiny([](int, Time) { return vec(Value(0)); });  // size 1, expected n-k=2
  EXPECT_FALSE(AntiOmegaK::check(1, f, tiny, kHorizon));
}

TEST(VectorOmegaK, StableSlotNamesCorrectProcess) {
  const auto f = pattern_with(4, {{1, 5}});
  VectorOmegaK vo(2, 30);
  const auto h = vo.history(f, 9);
  EXPECT_TRUE(VectorOmegaK::check(2, f, *h, kHorizon));
  const int slot = vo.stable_slot(f, 9);
  const auto leader = h->at(0, kHorizon - 1).at(static_cast<std::size_t>(slot)).as_int();
  EXPECT_TRUE(f.correct(static_cast<int>(leader)));
}

TEST(VectorOmegaK, CheckRejectsAllRotating) {
  FailurePattern f(3);
  FnHistory rot([](int, Time t) {
    return vec(Value(static_cast<int>(t % 3)), Value(static_cast<int>((t + 1) % 3)));
  });
  EXPECT_FALSE(VectorOmegaK::check(2, f, rot, kHorizon));
}

TEST(EventuallyPerfect, EventuallySuspectsExactlyTheCrashed) {
  const auto f = pattern_with(3, {{2, 4}});
  EventuallyPerfectFd p(10);
  const auto h = p.history(f, 5);
  const Value late = h->at(0, kHorizon - 1);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late.at(0).as_int(), 2);
}

// ---- parameterized sweep: every detector satisfies its own spec on every
// pattern of E_t and several seeds ----

struct SweepParam {
  int n;
  int k;
  std::uint64_t seed;
};

class DetectorSpecSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DetectorSpecSweep, OmegaSatisfiesSpec) {
  const auto [n, k, seed] = GetParam();
  for (const auto& f : Environment(n, n - 1).enumerate(15)) {
    OmegaFd omega(25);
    EXPECT_TRUE(OmegaFd::check(f, *omega.history(f, seed), kHorizon)) << f.to_string();
  }
}

TEST_P(DetectorSpecSweep, AntiOmegaSatisfiesSpec) {
  const auto [n, k, seed] = GetParam();
  if (k >= n) GTEST_SKIP();
  for (const auto& f : Environment(n, n - 1).enumerate(15)) {
    AntiOmegaK anti(k, 25);
    EXPECT_TRUE(AntiOmegaK::check(k, f, *anti.history(f, seed), kHorizon)) << f.to_string();
  }
}

TEST_P(DetectorSpecSweep, VectorOmegaSatisfiesSpec) {
  const auto [n, k, seed] = GetParam();
  if (k >= n) GTEST_SKIP();
  for (const auto& f : Environment(n, n - 1).enumerate(15)) {
    VectorOmegaK vo(k, 25);
    EXPECT_TRUE(VectorOmegaK::check(k, f, *vo.history(f, seed), kHorizon)) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DetectorSpecSweep,
                         ::testing::Values(SweepParam{2, 1, 1}, SweepParam{3, 1, 2},
                                           SweepParam{3, 2, 3}, SweepParam{4, 2, 4},
                                           SweepParam{4, 3, 5}, SweepParam{5, 2, 6},
                                           SweepParam{5, 4, 7}, SweepParam{4, 1, 8}));


// ---- degenerate-pattern histories (fault-campaign hardening) ---------------

TEST(DegeneratePatterns, OmegaOnZeroSWorldIsBottomForever) {
  const FailurePattern f(0);
  const OmegaFd om(5);
  const HistoryPtr h = om.history(f, 3);
  for (Time t = 0; t < 20; ++t) EXPECT_TRUE(h->at(0, t).is_nil());
}

TEST(DegeneratePatterns, VectorOmegaOnZeroSWorldKeepsSlotShape) {
  const FailurePattern f(0);
  const VectorOmegaK vo(2, 5);
  const HistoryPtr h = vo.history(f, 3);
  const Value v = h->at(0, 7);
  ASSERT_TRUE(v.is_vec());
  ASSERT_EQ(v.size(), 2U);
  EXPECT_TRUE(v.at(0).is_nil());
}

TEST(DegeneratePatterns, AntiOmegaWithKAboveNClampsSubsetSize) {
  const FailurePattern f(2);
  const AntiOmegaK ao(5, 4);  // k > n: n-k is negative
  const HistoryPtr h = ao.history(f, 9);
  for (Time t = 0; t < 10; ++t) {
    const Value v = h->at(0, t);
    ASSERT_TRUE(v.is_vec());
    EXPECT_TRUE(v.size() <= 2U);
  }
}

}  // namespace
}  // namespace efd
