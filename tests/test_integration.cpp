// Cross-module integration tests: the Thm. 9 double simulation end-to-end,
// Prop. 2's wait-free equivalence, and colorless-task coincidences (Prop. 5).
#include <gtest/gtest.h>

#include <set>

#include "algo/double_sim.hpp"
#include "algo/one_concurrent.hpp"
#include "algo/set_agreement_antiomega.hpp"
#include "algo/sim_program.hpp"
#include "core/efd_system.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "tasks/identity.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

SimProgramPtr one_concurrent_program(const TaskPtr& task, const std::string& ns) {
  return std::make_shared<ReplayProgram>([task, ns](int index, const Value& input, Context& ctx) {
    return make_one_concurrent(task, input, ns)(ctx);
    (void)index;
  });
}

// Thm. 9 end-to-end: k-set agreement (k-concurrently solvable by the generic
// solver) is solved by ALL n processes with →Ωk advice, via the k-codes
// simulation of BG-simulators of the task algorithm.
TEST(Theorem9, DoubleSimulationSolvesKSetAgreement) {
  const int n = 3, k = 2;
  for (std::uint64_t seed : {1u, 4u}) {
    const FailurePattern f = Environment(n, n - 1).sample(seed, 1, 10);
    VectorOmegaK vo(k, 40);
    World w(f, vo.history(f, seed));

    auto task = std::make_shared<SetAgreementTask>(n, k);
    Thm9Config cfg;
    cfg.ns = "t9";
    cfg.n = n;
    cfg.k = k;
    cfg.task_code = one_concurrent_program(task, "t9task");

    for (int i = 0; i < n; ++i) w.spawn_c(i, make_thm9_simulator(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_thm9_server(cfg));
    RandomScheduler rs(seed + 3);
    const auto r = drive(w, rs, 20000000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;

    std::set<std::int64_t> vals;
    ValueVec out(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = w.decision(cpid(i));
      vals.insert(w.decision(cpid(i)).as_int());
    }
    EXPECT_LE(static_cast<int>(vals.size()), k) << "seed " << seed;
    ValueVec in{Value(0), Value(1), Value(2)};
    EXPECT_TRUE(task->relation(in, out)) << "seed " << seed;
  }
}

// Thm. 9 with a COLORED task: identity is n-concurrently solvable, so with
// k = n the double simulation must hand every process its own output.
TEST(Theorem9, ColoredTaskKeepsOwnership) {
  const int n = 2, k = 2;
  FailurePattern f(n);
  VectorOmegaK vo(k, 20);
  World w(f, vo.history(f, 8));

  auto task = std::make_shared<IdentityTask>(n);
  Thm9Config cfg;
  cfg.ns = "t9";
  cfg.n = n;
  cfg.k = k;
  cfg.task_code = one_concurrent_program(task, "t9task");

  for (int i = 0; i < n; ++i) w.spawn_c(i, make_thm9_simulator(cfg, Value(100 + i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_thm9_server(cfg));
  RandomScheduler rs(5);
  const auto r = drive(w, rs, 20000000);
  ASSERT_TRUE(r.all_c_decided);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(w.decision(cpid(i)).as_int(), 100 + i) << "p" << (i + 1) << " lost its own output";
  }
}

// Prop. 2: with n >= m S-processes and the trivial detector, EFD solvability
// coincides with wait-free solvability — a wait-free task solves with no
// S-process help, and C-processes emulating the S-part solve it too.
TEST(Prop2, WaitFreeTaskNeedsNoAdvice) {
  const int n = 3;
  auto task = std::make_shared<IdentityTask>(n);
  EfdSetup s;
  s.task = task;
  s.detector = std::make_shared<TrivialFd>();
  s.pattern = Environment(n, n - 1).sample(2, 2, 5);  // crashes are irrelevant
  s.seed = 2;
  s.inputs = task->sample_input(7);
  s.c_body = [task](int, Value input) { return make_one_concurrent(task, input, "id"); };
  const auto r = run_efd_fair(s, 50000);
  EXPECT_TRUE(r.all_decided);
  EXPECT_TRUE(r.satisfied);
}

// Prop. 5 flavor: for the colorless k-set agreement, an EFD solution run in
// personified mode (classical solvability) still satisfies the task.
TEST(Prop5, ColorlessCoincidence) {
  const int n = 3, k = 2;
  auto task = std::make_shared<SetAgreementTask>(n, k);
  EfdSetup s;
  s.task = task;
  s.detector = std::make_shared<VectorOmegaK>(k, 30);
  FailurePattern f(n);
  f.crash(2, 12);
  s.pattern = f;
  s.seed = 6;
  s.inputs = ValueVec{Value(0), Value(1), Value(2)};
  const KsaConfig cfg{"ksa", n, k};
  s.c_body = [cfg](int, Value input) { return make_ksa_client(cfg, input); };
  s.s_body = [cfg](int) { return make_ksa_server(cfg); };

  PersonifiedScheduler ps;
  const auto r = run_efd(s, ps, 500000);
  EXPECT_TRUE(r.satisfied);
  for (int i = 0; i < n; ++i) {
    if (f.correct(i)) EXPECT_FALSE(r.outputs[static_cast<std::size_t>(i)].is_nil());
  }
}

}  // namespace
}  // namespace efd
