// Tests for the participating-set task and its immediate-snapshot solver:
// the wait-free (class n) member of the hierarchy menu.
#include <gtest/gtest.h>

#include "algo/participating_set.hpp"
#include "core/solvability.hpp"
#include "sim/schedule.hpp"
#include "tasks/participating_set.hpp"

namespace efd {
namespace {

TEST(PsTask, AcceptsImmediateSnapshotShapedOutputs) {
  ParticipatingSetTask t(3);
  ValueVec in{Value(1), Value(2), Value(3)};
  // p1 saw {0}, p2 saw {0,1}, p3 saw {0,1,2}: a chain.
  ValueVec out{ParticipatingSetTask::encode_view({0}), ParticipatingSetTask::encode_view({0, 1}),
               ParticipatingSetTask::encode_view({0, 1, 2})};
  EXPECT_TRUE(t.relation(in, out));
}

TEST(PsTask, RejectsMissingSelf) {
  ParticipatingSetTask t(2);
  ValueVec in{Value(1), Value(2)};
  ValueVec out{ParticipatingSetTask::encode_view({1}), kNil};
  EXPECT_FALSE(t.relation(in, out));
}

TEST(PsTask, RejectsIncomparableViews) {
  ParticipatingSetTask t(3);
  ValueVec in{Value(1), Value(2), Value(3)};
  ValueVec out{ParticipatingSetTask::encode_view({0, 1}),
               ParticipatingSetTask::encode_view({1, 2}), kNil};
  EXPECT_FALSE(t.relation(in, out));
}

TEST(PsTask, RejectsImmediacyViolation) {
  ParticipatingSetTask t(3);
  ValueVec in{Value(1), Value(2), Value(3)};
  // p1's view contains p2, yet p2's view is strictly larger than p1's:
  // comparable, but immediacy (j ∈ O[i] ⇒ O[j] ⊆ O[i]) is broken.
  ValueVec bad{ParticipatingSetTask::encode_view({0, 1}),
               ParticipatingSetTask::encode_view({0, 1, 2}), kNil};
  EXPECT_FALSE(t.relation(in, bad));
  // The legal shape with the same sets: the smaller view belongs to the
  // process the larger one saw last.
  ValueVec ok{ParticipatingSetTask::encode_view({0}),
              ParticipatingSetTask::encode_view({0, 1}), kNil};
  EXPECT_TRUE(t.relation(in, ok));
}

TEST(PsTask, RejectsNonParticipantInView) {
  ParticipatingSetTask t(3);
  ValueVec in{Value(1), kNil, Value(3)};
  ValueVec out{ParticipatingSetTask::encode_view({0, 1}), kNil, kNil};  // 1 not participating
  EXPECT_FALSE(t.relation(in, out));
}

TEST(PsSolver, SolvesUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const int n = 4;
    auto task = std::make_shared<ParticipatingSetTask>(n);
    const ValueVec in = task->sample_input(seed);
    World w = World::failure_free(1);
    const ParticipatingSetConfig cfg{"ps", n};
    for (int i = 0; i < n; ++i) {
      w.spawn_c(i, make_participating_set_solver(cfg, in[static_cast<std::size_t>(i)]));
    }
    RandomScheduler rs(seed);
    const auto r = drive(w, rs, 200000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
    EXPECT_TRUE(task->relation(in, w.output_vector())) << "seed " << seed;
  }
}

TEST(PsSolver, ExhaustivelyCleanAtFullConcurrency) {
  // The constructive class-n witness: EVERY n-concurrent schedule of the
  // immediate-snapshot solver satisfies the task (small n, exhaustive).
  const int n = 3;
  auto task = std::make_shared<ParticipatingSetTask>(n);
  const ValueVec in = task->sample_input(2);
  const ParticipatingSetConfig cfg{"ps", n};
  auto body = [cfg](int, Value input) { return make_participating_set_solver(cfg, input); };
  ExploreConfig ecfg;
  ecfg.k = n;
  ecfg.arrival = {0, 1, 2};
  ecfg.max_states = 400000;
  ecfg.max_depth = 400;
  const auto o = explore_k_concurrent(task, body, in, ecfg);
  EXPECT_TRUE(o.ok) << o.violation;
}

TEST(PsTask, PickOutputBuildsLegalChains) {
  // The generic sequential extension produces valid (1-concurrent) outputs.
  const int n = 4;
  ParticipatingSetTask t(n);
  const ValueVec in = t.sample_input(1);
  ValueVec out(static_cast<std::size_t>(n));
  for (int i : Task::participants(in)) {
    out[static_cast<std::size_t>(i)] = t.pick_output(in, out, i);
    EXPECT_TRUE(t.relation(in, out)) << "after p" << (i + 1);
  }
}

TEST(PsTask, EncodeDecodeRoundTrip) {
  const auto v = ParticipatingSetTask::encode_view({3, 1, 1, 2});
  EXPECT_EQ(ParticipatingSetTask::decode_view(v), (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace efd
