// Tests for the Fig. 4 renaming algorithm and the Fig. 3 1-resilient
// wrapper: name bounds, uniqueness, and the wrapper's 2-concurrency.
#include <gtest/gtest.h>

#include <set>

#include "algo/renaming.hpp"
#include "algo/renaming_1resilient.hpp"
#include "algo/sim_program.hpp"
#include "sim/schedule.hpp"
#include "tasks/renaming.hpp"

namespace efd {
namespace {

struct RenCase {
  int n, j, kconc;
  std::uint64_t seed;
};

class RenamingSweep : public ::testing::TestWithParam<RenCase> {};

// Thm. 15: under k-concurrent schedules Fig. 4 decides unique names <= j+k-1.
TEST_P(RenamingSweep, NamesUniqueAndBounded) {
  const auto p = GetParam();
  const RenamingTask task(p.n, p.j, p.j + p.kconc - 1);
  const ValueVec in = task.sample_input(p.seed);
  const auto arrival = Task::participants(in);

  World w = World::failure_free(1);
  w.enable_trace();
  const RenamingConfig cfg{"ren", p.n};
  for (int i : arrival) {
    w.spawn_c(i, make_renaming_kconc(cfg, in[static_cast<std::size_t>(i)]));
  }
  KConcurrencyScheduler ks(p.kconc, arrival, 0);
  const auto r = drive(w, ks, 500000);
  ASSERT_TRUE(r.all_c_decided);
  EXPECT_LE(max_concurrency(w.trace()), p.kconc);

  std::set<std::int64_t> names;
  for (int i : arrival) {
    const auto name = w.decision(cpid(i)).as_int();
    EXPECT_GE(name, 1);
    EXPECT_LE(name, p.j + p.kconc - 1) << "name exceeds j+k-1";
    names.insert(name);
  }
  EXPECT_EQ(static_cast<int>(names.size()), static_cast<int>(arrival.size()));

  ValueVec out(static_cast<std::size_t>(p.n));
  for (int i : arrival) out[static_cast<std::size_t>(i)] = w.decision(cpid(i));
  EXPECT_TRUE(task.relation(in, out));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RenamingSweep,
                         ::testing::Values(RenCase{3, 2, 1, 0}, RenCase{3, 2, 2, 1},
                                           RenCase{4, 3, 2, 2}, RenCase{5, 3, 2, 3},
                                           RenCase{5, 4, 2, 4}, RenCase{5, 4, 3, 5},
                                           RenCase{6, 4, 2, 6}, RenCase{6, 5, 3, 7},
                                           RenCase{7, 5, 4, 8}, RenCase{6, 3, 3, 9}));

TEST(Renaming, SoloRunGetsNameOne) {
  World w = World::failure_free(1);
  const RenamingConfig cfg{"ren", 3};
  w.spawn_c(0, make_renaming_kconc(cfg, Value(500)));
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 1);
}

TEST(Renaming, SequentialRunsPackNames) {
  // 1-concurrent runs of j processes use exactly names 1..j (strong).
  const int n = 4, j = 3;
  World w = World::failure_free(1);
  const RenamingConfig cfg{"ren", n};
  std::vector<int> arrival = {2, 0, 1};
  for (int i : arrival) w.spawn_c(i, make_renaming_kconc(cfg, Value(100 + i)));
  KConcurrencyScheduler ks(1, arrival, 0);
  drive(w, ks, 10000);
  std::set<std::int64_t> names;
  for (int i : arrival) names.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(names, (std::set<std::int64_t>{1, 2, 3}));
  (void)j;
}

// ---- Fig. 3 wrapper ----

SimProgramPtr fig4_program(const RenamingConfig& cfg) {
  return std::make_shared<ReplayProgram>([cfg](int, const Value& input, Context& ctx) {
    return make_renaming_kconc(cfg, input)(ctx);
  });
}

TEST(OneResilientWrapper, InducesTwoConcurrentRunAndDecides) {
  // j participants, no crash: everyone decides a unique name <= j+1 (the
  // wrapped Fig. 4 run is 2-concurrent).
  const int n = 5, j = 4;
  World w = World::failure_free(1);
  const OneResilientConfig cfg{"wrap", n, j};
  const RenamingConfig inner_cfg{"wren", n};
  for (int i = 0; i < j; ++i) {
    w.spawn_c(i, make_one_resilient_wrapper(cfg, fig4_program(inner_cfg), Value(100 + i)));
  }
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 2000000);
  ASSERT_TRUE(r.all_c_decided);
  std::set<std::int64_t> names;
  for (int i = 0; i < j; ++i) {
    const auto name = w.decision(cpid(i)).as_int();
    EXPECT_GE(name, 1);
    EXPECT_LE(name, j + 1);  // 2-concurrent Fig. 4 bound
    names.insert(name);
  }
  EXPECT_EQ(static_cast<int>(names.size()), j);
}

TEST(OneResilientWrapper, ToleratesOneStalledProcess) {
  // j-1 participants run; the j-th never shows up (the "1-resilient" case:
  // |S| = j-1, only the minimum undecided id advances A, strictly serially).
  const int n = 5, j = 3;
  World w = World::failure_free(1);
  const OneResilientConfig cfg{"wrap", n, j};
  const RenamingConfig inner_cfg{"wren", n};
  for (int i = 0; i < j - 1; ++i) {
    w.spawn_c(i, make_one_resilient_wrapper(cfg, fig4_program(inner_cfg), Value(100 + i)));
  }
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 2000000);
  ASSERT_TRUE(r.all_c_decided);
  std::set<std::int64_t> names;
  for (int i = 0; i < j - 1; ++i) names.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(static_cast<int>(names.size()), j - 1);
}

}  // namespace
}  // namespace efd
