// Tests for the EFD run harness (core/efd_system.hpp), incl. the
// personified scheduler realizing classical solvability (Prop. 3 / §2.3).
#include <gtest/gtest.h>

#include "algo/leader_consensus.hpp"
#include "algo/one_concurrent.hpp"
#include "core/efd_system.hpp"
#include "tasks/consensus.hpp"
#include "tasks/identity.hpp"

namespace efd {
namespace {

EfdSetup consensus_setup(int n, int faults, std::uint64_t seed) {
  EfdSetup s;
  s.task = std::make_shared<ConsensusTask>(n);
  s.detector = std::make_shared<OmegaFd>(30);
  s.pattern = Environment(n, n - 1).sample(seed, faults, 15);
  s.seed = seed;
  s.inputs.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) s.inputs[static_cast<std::size_t>(i)] = Value(i);
  const LeaderConsensusConfig cfg{"cons", n};
  s.c_body = [cfg](int, Value input) { return make_consensus_client(cfg, input); };
  s.s_body = [cfg](int) { return make_consensus_server(cfg); };
  return s;
}

TEST(EfdSystem, FairRunSolvesConsensus) {
  const auto setup = consensus_setup(3, 1, 4);
  const auto r = run_efd_fair(setup, 300000);
  EXPECT_TRUE(r.all_decided);
  EXPECT_TRUE(r.satisfied);
}

TEST(EfdSystem, TracedRunReportsConcurrency) {
  const auto setup = consensus_setup(3, 0, 5);
  const auto r = run_efd_fair(setup, 300000, /*trace=*/true);
  EXPECT_TRUE(r.all_decided);
  EXPECT_GE(r.max_concurrency, 1);
  EXPECT_LE(r.max_concurrency, 3);
}

TEST(EfdSystem, PartialParticipationIsHonored) {
  auto setup = consensus_setup(3, 0, 6);
  setup.inputs[1] = kNil;  // p2 does not participate
  const auto r = run_efd_fair(setup, 300000);
  EXPECT_TRUE(r.all_decided);
  EXPECT_TRUE(r.satisfied);
  EXPECT_TRUE(r.outputs[1].is_nil());
}

TEST(EfdSystem, RestrictedAlgorithmNeedsNoSBodies) {
  const int n = 2;
  EfdSetup s;
  s.task = std::make_shared<IdentityTask>(n);
  s.detector = std::make_shared<TrivialFd>();
  s.pattern = FailurePattern(n);
  s.inputs = {Value(10), Value(20)};
  s.c_body = [task = s.task](int, Value input) { return make_one_concurrent(task, input, "id"); };
  const auto r = run_efd_fair(s, 10000);
  EXPECT_TRUE(r.all_decided);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.outputs[0].as_int(), 10);
}

TEST(EfdSystem, ValidatesArity) {
  auto setup = consensus_setup(3, 0, 1);
  setup.inputs.pop_back();
  RoundRobinScheduler rr;
  EXPECT_THROW(run_efd(setup, rr, 100), std::invalid_argument);
}

TEST(Personified, CProcessStopsWithItsSProcess) {
  // In personified runs p_i takes steps only while q_i is alive (§2.3).
  const int n = 2;
  FailurePattern f(n);
  f.crash(1, 6);
  World w(f, OmegaFd(10).history(f, 1));
  auto spin = [](Context& ctx) -> Proc {
    for (;;) co_await ctx.yield();
  };
  for (int i = 0; i < n; ++i) w.spawn_c(i, spin);
  for (int i = 0; i < n; ++i) w.spawn_s(i, spin);
  PersonifiedScheduler ps;
  for (int s = 0; s < 200; ++s) {
    const auto pid = ps.next(w);
    ASSERT_TRUE(pid.has_value());
    w.step(*pid);
  }
  const int p2_steps = w.steps_taken(cpid(1));
  EXPECT_GT(w.steps_taken(cpid(0)), p2_steps);
  EXPECT_LE(p2_steps, 6);  // p2 froze when q2 crashed at t=6
}

TEST(Personified, EfdSolutionAlsoSolvesClassically) {
  // Prop. 3: every personified run of an EFD algorithm satisfies the task.
  const auto setup = consensus_setup(3, 1, 9);
  PersonifiedScheduler ps;
  const auto r = run_efd(setup, ps, 300000);
  EXPECT_TRUE(r.satisfied);
  // All C-processes whose S-counterpart is correct must decide.
  for (int i = 0; i < 3; ++i) {
    if (setup.pattern.correct(i)) {
      EXPECT_FALSE(r.outputs[static_cast<std::size_t>(i)].is_nil()) << "p" << (i + 1);
    }
  }
}

}  // namespace
}  // namespace efd
