// Tests for the task formalism and the menu tasks (tasks/*): relation
// semantics, prefix closure, and the pick_output sequential-extension axiom.
#include <gtest/gtest.h>

#include "tasks/consensus.hpp"
#include "tasks/identity.hpp"
#include "tasks/renaming.hpp"
#include "tasks/set_agreement.hpp"
#include "tasks/symmetry_breaking.hpp"

namespace efd {
namespace {

ValueVec v3(Value a, Value b, Value c) { return ValueVec{std::move(a), std::move(b), std::move(c)}; }

// ---------- set agreement ----------

TEST(SetAgreement, AcceptsValidOutputs) {
  SetAgreementTask t(3, 2);
  EXPECT_TRUE(t.relation(v3(1, 2, 3), v3(1, 1, 3)));
  EXPECT_TRUE(t.relation(v3(1, 2, 3), v3(2, 2, 2)));
}

TEST(SetAgreement, RejectsTooManyDistinct) {
  SetAgreementTask t(3, 2);
  EXPECT_FALSE(t.relation(v3(1, 2, 3), v3(1, 2, 3)));
}

TEST(SetAgreement, RejectsInventedValues) {
  SetAgreementTask t(3, 2);
  EXPECT_FALSE(t.relation(v3(1, 2, 3), v3(9, kNil, kNil)));
}

TEST(SetAgreement, RejectsOutputWithoutInput) {
  SetAgreementTask t(3, 2);
  EXPECT_FALSE(t.relation(v3(1, kNil, 3), v3(1, 1, kNil)));
}

TEST(SetAgreement, PartialOutputsAccepted) {
  SetAgreementTask t(3, 1);
  EXPECT_TRUE(t.relation(v3(1, 2, 3), v3(kNil, kNil, kNil)));
  EXPECT_TRUE(t.relation(v3(1, 2, 3), v3(kNil, 2, kNil)));
}

TEST(SetAgreement, ScopeRestrictsParticipation) {
  SetAgreementTask t(3, 1, {0, 1});
  EXPECT_TRUE(t.input_ok(v3(1, 2, kNil)));
  EXPECT_FALSE(t.input_ok(v3(1, 2, 3)));  // p3 out of scope
}

TEST(SetAgreement, IsColorless) { EXPECT_TRUE(SetAgreementTask(3, 2).colorless()); }

TEST(Consensus, IsOneSetAgreement) {
  ConsensusTask t(3);
  EXPECT_TRUE(t.relation(v3(1, 2, 3), v3(2, 2, 2)));
  EXPECT_FALSE(t.relation(v3(1, 2, 3), v3(1, 2, kNil)));
}

// ---------- renaming ----------

TEST(Renaming, AcceptsDistinctNamesInRange) {
  RenamingTask t(4, 3, 4);
  ValueVec in{Value(100), Value(200), Value(300), kNil};
  ValueVec out{Value(1), Value(4), Value(2), kNil};
  EXPECT_TRUE(t.relation(in, out));
}

TEST(Renaming, RejectsDuplicateNames) {
  RenamingTask t(4, 3, 4);
  ValueVec in{Value(100), Value(200), Value(300), kNil};
  EXPECT_FALSE(t.relation(in, {Value(1), Value(1), kNil, kNil}));
}

TEST(Renaming, RejectsNameOutOfRange) {
  RenamingTask t(4, 2, 2);
  ValueVec in{Value(100), Value(200), kNil, kNil};
  EXPECT_FALSE(t.relation(in, {Value(3), kNil, kNil, kNil}));
  EXPECT_FALSE(t.relation(in, {Value(0), kNil, kNil, kNil}));
}

TEST(Renaming, RejectsTooManyParticipants) {
  RenamingTask t(4, 2, 3);
  ValueVec in{Value(1), Value(2), Value(3), kNil};  // 3 > j=2
  EXPECT_FALSE(t.input_ok(in));
}

TEST(Renaming, RejectsDuplicateOriginalNames) {
  RenamingTask t(4, 3, 4);
  EXPECT_FALSE(t.input_ok({Value(5), Value(5), kNil, kNil}));
}

TEST(Renaming, StrongFactory) {
  const auto t = RenamingTask::strong(5, 3);
  EXPECT_EQ(t.max_participants(), 3);
  EXPECT_EQ(t.namespace_size(), 3);
}

TEST(Renaming, IsColored) { EXPECT_FALSE(RenamingTask(4, 2, 3).colorless()); }

TEST(Renaming, ConstructorValidation) {
  EXPECT_THROW(RenamingTask(3, 3, 3), std::invalid_argument);  // j < n required
  EXPECT_THROW(RenamingTask(4, 3, 2), std::invalid_argument);  // l >= j required
}

// ---------- weak symmetry breaking ----------

TEST(Wsb, RejectsUniformFullOutput) {
  WeakSymmetryBreakingTask t(3);
  ValueVec in{Value(7), Value(8), Value(9)};
  EXPECT_FALSE(t.relation(in, {Value(0), Value(0), Value(0)}));
  EXPECT_FALSE(t.relation(in, {Value(1), Value(1), Value(1)}));
  EXPECT_TRUE(t.relation(in, {Value(0), Value(1), Value(0)}));
}

TEST(Wsb, PartialUniformAllowed) {
  WeakSymmetryBreakingTask t(3);
  ValueVec in{Value(7), Value(8), Value(9)};
  EXPECT_TRUE(t.relation(in, {Value(0), Value(0), kNil}));
}

TEST(Wsb, RejectsNonBinaryOutput) {
  WeakSymmetryBreakingTask t(2);
  EXPECT_FALSE(t.relation({Value(1), Value(2)}, {Value(2), kNil}));
}

// ---------- identity ----------

TEST(Identity, OnlyOwnInputAccepted) {
  IdentityTask t(2);
  EXPECT_TRUE(t.relation({Value(1), Value(2)}, {Value(1), kNil}));
  EXPECT_FALSE(t.relation({Value(1), Value(2)}, {Value(2), kNil}));
}

// ---------- helpers ----------

TEST(TaskHelpers, Participants) {
  EXPECT_EQ(Task::participants(v3(1, kNil, 3)), (std::vector<int>{0, 2}));
}

TEST(TaskHelpers, DistinctValues) {
  const auto d = Task::distinct_values(v3(2, 2, 1));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].as_int(), 1);
  EXPECT_EQ(d[1].as_int(), 2);
}

TEST(TaskHelpers, RestrictTo) {
  const auto r = restrict_to(v3(1, 2, 3), {0, 2});
  EXPECT_EQ(r[0].as_int(), 1);
  EXPECT_TRUE(r[1].is_nil());
  EXPECT_EQ(r[2].as_int(), 3);
}

// ---------- property sweeps ----------

struct TaskCase {
  TaskPtr task;
  std::uint64_t seed;
};

class TaskAxioms : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<TaskCase> cases() {
    std::vector<TaskCase> out;
    for (std::uint64_t s : {1u, 5u, 9u}) {
      out.push_back({std::make_shared<SetAgreementTask>(4, 2), s});
      out.push_back({std::make_shared<ConsensusTask>(3), s});
      out.push_back({std::make_shared<RenamingTask>(5, 3, 4), s});
      out.push_back({std::make_shared<WeakSymmetryBreakingTask>(3), s});
      out.push_back({std::make_shared<IdentityTask>(3), s});
    }
    return out;
  }
};

// Axiom: sample inputs are legal; the empty output relates to every legal
// input (prefix closure down to the all-⊥ vector).
TEST_P(TaskAxioms, SampleInputsLegalAndEmptyOutputRelates) {
  const auto c = cases()[static_cast<std::size_t>(GetParam())];
  const ValueVec in = c.task->sample_input(c.seed);
  EXPECT_TRUE(c.task->input_ok(in)) << c.task->name();
  const ValueVec empty(static_cast<std::size_t>(c.task->n_procs()));
  EXPECT_TRUE(c.task->relation(in, empty)) << c.task->name();
}

// Axiom (paper condition (2)+(3)): pick_output extends any reachable partial
// output and the extension still relates; iterating it completes the vector.
TEST_P(TaskAxioms, PickOutputSequentialCompletion) {
  const auto c = cases()[static_cast<std::size_t>(GetParam())];
  const ValueVec in = c.task->sample_input(c.seed);
  ValueVec out(static_cast<std::size_t>(c.task->n_procs()));
  for (int i : Task::participants(in)) {
    const Value v = c.task->pick_output(in, out, i);
    out[static_cast<std::size_t>(i)] = v;
    EXPECT_TRUE(c.task->relation(in, out))
        << c.task->name() << " broke after assigning p" << (i + 1) << " := " << v.to_string();
  }
  // Complete output: every participant decided.
  for (int i : Task::participants(in)) {
    EXPECT_FALSE(out[static_cast<std::size_t>(i)].is_nil());
  }
}

// Axiom: erasing any single decided position preserves the relation (prefix
// closure of outputs).
TEST_P(TaskAxioms, OutputPrefixClosure) {
  const auto c = cases()[static_cast<std::size_t>(GetParam())];
  const ValueVec in = c.task->sample_input(c.seed);
  ValueVec out(static_cast<std::size_t>(c.task->n_procs()));
  for (int i : Task::participants(in)) {
    out[static_cast<std::size_t>(i)] = c.task->pick_output(in, out, i);
  }
  // WSB's "not all equal" obligation binds only the COMPLETE vector, so
  // erasing below it is what prefix closure must keep legal.
  for (int i : Task::participants(in)) {
    ValueVec partial = out;
    partial[static_cast<std::size_t>(i)] = kNil;
    EXPECT_TRUE(c.task->relation(in, partial)) << c.task->name() << " erased p" << (i + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskAxioms, ::testing::Range(0, 15));

}  // namespace
}  // namespace efd
