// Tests for failure patterns and environments (fd/failure_pattern.hpp).
#include <gtest/gtest.h>

#include "fd/failure_pattern.hpp"

namespace efd {
namespace {

TEST(FailurePattern, FreshPatternIsFailureFree) {
  FailurePattern f(3);
  EXPECT_EQ(f.n(), 3);
  EXPECT_EQ(f.num_correct(), 3);
  EXPECT_EQ(f.num_faulty(), 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(f.correct(i));
    EXPECT_TRUE(f.alive(i, 1000000));
  }
}

TEST(FailurePattern, CrashIsPermanent) {
  FailurePattern f(2);
  f.crash(0, 5);
  EXPECT_TRUE(f.alive(0, 4));
  EXPECT_FALSE(f.alive(0, 5));
  EXPECT_FALSE(f.alive(0, 500));
  EXPECT_FALSE(f.correct(0));
  EXPECT_TRUE(f.correct(1));
}

TEST(FailurePattern, CorrectAndFaultySets) {
  FailurePattern f(4);
  f.crash(1, 0);
  f.crash(3, 7);
  EXPECT_EQ(f.correct_set(), (std::vector<int>{0, 2}));
  EXPECT_EQ(f.faulty_set(), (std::vector<int>{1, 3}));
  EXPECT_EQ(f.num_correct(), 2);
  EXPECT_EQ(f.num_faulty(), 2);
}

TEST(FailurePattern, LastCrashTime) {
  FailurePattern f(3);
  EXPECT_EQ(f.last_crash_time(), 0);
  f.crash(0, 4);
  f.crash(2, 9);
  EXPECT_EQ(f.last_crash_time(), 9);
}

TEST(FailurePattern, ToString) {
  FailurePattern f(2);
  EXPECT_EQ(f.to_string(), "{failure-free}");
  f.crash(1, 3);
  EXPECT_EQ(f.to_string(), "{q2@3}");
}

TEST(Environment, AllowsRespectsBound) {
  Environment e(3, 1);
  FailurePattern ok(3);
  ok.crash(0, 1);
  EXPECT_TRUE(e.allows(ok));
  FailurePattern bad(3);
  bad.crash(0, 1);
  bad.crash(1, 2);
  EXPECT_FALSE(e.allows(bad));
}

TEST(Environment, RequiresOneCorrectProcess) {
  Environment e(2, 2);
  FailurePattern all_dead(2);
  all_dead.crash(0, 0);
  all_dead.crash(1, 0);
  EXPECT_FALSE(e.allows(all_dead));
}

TEST(Environment, EnumerateCoversAllSubsets) {
  Environment e(3, 1);
  const auto pats = e.enumerate(5);
  // {} plus the three singletons.
  EXPECT_EQ(pats.size(), 4u);
  for (const auto& f : pats) EXPECT_TRUE(e.allows(f));
}

TEST(Environment, EnumerateWaitFree) {
  const auto pats = wait_free_env(3).enumerate(0);
  // All subsets except the full set: 2^3 - 1 = 7.
  EXPECT_EQ(pats.size(), 7u);
}

TEST(Environment, SampleIsDeterministicAndLegal) {
  Environment e(5, 3);
  const auto a = e.sample(42, 2, 100);
  const auto b = e.sample(42, 2, 100);
  EXPECT_EQ(a.faulty_set(), b.faulty_set());
  EXPECT_EQ(a.num_faulty(), 2);
  EXPECT_TRUE(e.allows(a));
  for (int i : a.faulty_set()) {
    EXPECT_LT(*a.crash_time(i), 100);
  }
}

TEST(Environment, SampleClampsToEnvironmentBound) {
  Environment e(3, 1);
  const auto f = e.sample(7, 5, 10);  // asks for 5 faults, gets at most 1
  EXPECT_LE(f.num_faulty(), 1);
}


// ---- edge-case regressions (fault-campaign hardening) ----------------------

TEST(Environment, SampleClampsNegativeFaultRequests) {
  Environment e(3, 2);
  const auto f = e.sample(11, -4, 10);
  EXPECT_EQ(f.num_faulty(), 0);
  EXPECT_EQ(f.n(), 3);
}

TEST(Environment, ZeroProcessEnvironmentIsDefined) {
  Environment e(0, 0);
  const auto f = e.sample(3, 1, 10);  // nothing to crash
  EXPECT_EQ(f.n(), 0);
  EXPECT_EQ(f.num_faulty(), 0);
  // enumerate keeps the single (empty, failure-free) pattern.
  const auto pats = e.enumerate(0);
  ASSERT_EQ(pats.size(), 1U);
  EXPECT_EQ(pats[0].n(), 0);
}

TEST(FailurePattern, AllCrashedVectorPatternIsDefined) {
  FailurePattern f(std::vector<std::optional<Time>>{Time{0}, Time{3}});
  EXPECT_EQ(f.num_correct(), 0);
  EXPECT_TRUE(f.correct_set().empty());
  EXPECT_EQ(f.last_crash_time(), 3);
  EXPECT_FALSE(f.alive(0, 0));
  EXPECT_TRUE(f.alive(1, 2));
}

}  // namespace
}  // namespace efd
