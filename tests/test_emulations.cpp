// Tests for derived detectors (fd/emulations.hpp): each mapped detector's
// histories satisfy the target specification, and a mapped detector can
// drive a solver written for the target — the solvability-transfer fact of
// §2.2 ("if D' is weaker than D, tasks solvable with D' solve with D").
#include <gtest/gtest.h>

#include <set>

#include "algo/leader_consensus.hpp"
#include "algo/set_agreement_antiomega.hpp"
#include "fd/emulations.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

constexpr Time kHorizon = 400;

struct EmuCase {
  int n, k, faults;
  std::uint64_t seed;
};

class EmulationSweep : public ::testing::TestWithParam<EmuCase> {};

TEST_P(EmulationSweep, OmegaFromDiamondPSatisfiesOmega) {
  const auto p = GetParam();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 20);
  const auto omega = omega_from_diamond_p(std::make_shared<EventuallyPerfectFd>(30), p.n);
  EXPECT_TRUE(OmegaFd::check(f, *omega->history(f, p.seed), kHorizon)) << f.to_string();
}

TEST_P(EmulationSweep, VecOmegaFromOmegaSatisfiesVecOmega) {
  const auto p = GetParam();
  if (p.k >= p.n) GTEST_SKIP();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 20);
  const auto vec = vec_omega_from_omega(std::make_shared<OmegaFd>(30), p.n, p.k);
  EXPECT_TRUE(VectorOmegaK::check(p.k, f, *vec->history(f, p.seed), kHorizon)) << f.to_string();
}

TEST_P(EmulationSweep, AntiOmegaFromVecOmegaSatisfiesAntiOmega) {
  const auto p = GetParam();
  if (p.k >= p.n) GTEST_SKIP();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 20);
  const auto anti =
      anti_omega_from_vec_omega(std::make_shared<VectorOmegaK>(p.k, 30), p.n, p.k);
  EXPECT_TRUE(AntiOmegaK::check(p.k, f, *anti->history(f, p.seed), kHorizon)) << f.to_string();
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmulationSweep,
                         ::testing::Values(EmuCase{3, 1, 1, 1}, EmuCase{3, 2, 2, 2},
                                           EmuCase{4, 2, 1, 3}, EmuCase{4, 3, 3, 4},
                                           EmuCase{5, 2, 2, 5}, EmuCase{5, 4, 4, 6},
                                           EmuCase{6, 3, 2, 7}));

TEST(Emulation, ChainedDetectorsStack) {
  // ◇P → Ω → →Ω2 → ¬Ω2, all at once.
  const int n = 4, k = 2;
  FailurePattern f(n);
  f.crash(3, 10);
  const auto chain = anti_omega_from_vec_omega(
      vec_omega_from_omega(omega_from_diamond_p(std::make_shared<EventuallyPerfectFd>(25), n),
                           n, k),
      n, k);
  EXPECT_TRUE(AntiOmegaK::check(k, f, *chain->history(f, 3), kHorizon));
  EXPECT_NE(chain->name().find("antiOmega"), std::string::npos);
}

TEST(Emulation, MappedDetectorDrivesARealSolver) {
  // Consensus clients/servers written for Ω run unchanged on the Ω derived
  // from ◇P: solvability transfers through the reduction.
  const int n = 3;
  FailurePattern f(n);
  f.crash(0, 8);
  const auto omega = omega_from_diamond_p(std::make_shared<EventuallyPerfectFd>(25), n);
  World w(f, omega->history(f, 5));
  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(70 + i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RandomScheduler rs(5);
  const auto r = drive(w, rs, 400000);
  ASSERT_TRUE(r.all_c_decided);
  std::set<std::int64_t> vals;
  for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(vals.size(), 1u);
}

TEST(Emulation, KsaRunsOnVecOmegaDerivedFromOmega) {
  const int n = 4, k = 2;
  FailurePattern f(n);
  f.crash(2, 12);
  const auto vo = vec_omega_from_omega(std::make_shared<OmegaFd>(35), n, k);
  World w(f, vo->history(f, 9));
  const KsaConfig cfg{"ksa", n, k};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_ksa_server(cfg));
  RandomScheduler rs(9);
  const auto r = drive(w, rs, 800000);
  ASSERT_TRUE(r.all_c_decided);
  EXPECT_LE(static_cast<int>([&] {
              std::set<std::int64_t> vals;
              for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
              return vals.size();
            }()),
            k);
}

TEST(Emulation, StabilizationTimeIsInherited) {
  const int n = 3;
  FailurePattern f(n);
  f.crash(1, 50);
  auto base = std::make_shared<OmegaFd>(20);
  const auto derived = vec_omega_from_omega(base, n, 2);
  EXPECT_EQ(derived->stabilization_time(f), base->stabilization_time(f));
}

}  // namespace
}  // namespace efd
