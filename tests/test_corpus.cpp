// Tests for the persistent finding corpus (core/corpus.hpp) and the farm
// engine built on it (core/campaign.hpp run_farm): content keys, atomic
// novel-vs-duplicate classification across reopen, alias persistence,
// quarantine of malformed entries, and restart-with-corpus resume.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/campaign.hpp"
#include "core/corpus.hpp"
#include "core/repro_scenarios.hpp"
#include "sim/replay.hpp"

namespace efd {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test tmpdir.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("efd_corpus_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A real finding-shaped tape: the synthetic known-bad scenario's recording,
/// finding line stamped like the farm does.
ScheduleTape sample_tape(std::uint64_t seed) {
  const Scenario* sc = find_scenario("synth_write_race");
  ScheduleTape t = sc->record(seed);
  t.finding = "safety";
  return t;
}

TEST(CorpusKey, IsContentBasedAndStable) {
  const ScheduleTape a = sample_tape(1);
  const ScheduleTape b = sample_tape(1);
  EXPECT_EQ(corpus_key(a), corpus_key(b));

  ScheduleTape other_finding = a;
  other_finding.finding = "wait-free";
  EXPECT_NE(corpus_key(a), corpus_key(other_finding));

  ScheduleTape other_scenario = a;
  other_scenario.scenario = "somewhere_else";
  EXPECT_NE(corpus_key(a), corpus_key(other_scenario));

  // Distinct recordings hash distinct (different schedules -> trace hash).
  const ScheduleTape c = sample_tape(2);
  if (a.expect_hash != c.expect_hash) EXPECT_NE(corpus_key(a), corpus_key(c));
}

TEST(CorpusStore, InsertIsFirstInsertWinsAndAtomic) {
  const std::string dir = fresh_dir("insert");
  CorpusStore store;
  const CorpusStore::LoadReport rep = store.open(dir);
  EXPECT_EQ(rep.loaded, 0);
  EXPECT_EQ(rep.quarantined, 0);

  const ScheduleTape t = sample_tape(1);
  const std::uint64_t key = corpus_key(t);
  EXPECT_FALSE(store.contains(key));
  std::string path;
  EXPECT_TRUE(store.insert(key, t, "synth_s1", &path));
  EXPECT_TRUE(store.contains(key));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.path_of(key), path);
  ASSERT_TRUE(fs::exists(path));

  // Duplicate insert: no write, no error, same stored path.
  EXPECT_FALSE(store.insert(key, t, "synth_s1_again"));
  EXPECT_EQ(store.size(), 1u);

  // No temp-file litter: the publish is write-then-rename.
  int files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().extension(), ".tape") << e.path();
    ++files;
  }
  EXPECT_EQ(files, 1);

  // The stored entry is a loadable tape with its provenance intact.
  const ScheduleTape back = load_tape(path);
  EXPECT_EQ(back.finding, "safety");
  EXPECT_EQ(corpus_key(back), key);
}

TEST(CorpusStore, DedupAndAliasesSurviveReopen) {
  const std::string dir = fresh_dir("reopen");
  const ScheduleTape t = sample_tape(3);
  const std::uint64_t key = corpus_key(t);
  const std::uint64_t raw_alias = key ^ 0xABCDEF;

  {
    CorpusStore store;
    store.open(dir);
    EXPECT_TRUE(store.insert(key, t, "synth_s3"));
    store.add_alias(raw_alias, key);
    EXPECT_TRUE(store.contains(raw_alias));
  }

  CorpusStore again;
  const CorpusStore::LoadReport rep = again.open(dir);
  EXPECT_EQ(rep.loaded, 1);
  EXPECT_EQ(rep.aliases, 1);
  EXPECT_TRUE(again.contains(key)) << "finding forgotten across restart";
  EXPECT_TRUE(again.contains(raw_alias)) << "alias forgotten across restart";
  EXPECT_FALSE(again.insert(key, t, "synth_s3_rediscovered")) << "rediscovery not deduped";
}

TEST(CorpusStore, MalformedEntriesAreQuarantinedNotFatal) {
  const std::string dir = fresh_dir("quarantine");
  {
    CorpusStore store;
    store.open(dir);
    store.insert(corpus_key(sample_tape(1)), sample_tape(1), "good");
  }
  // Garbage and a torn (truncated mid-write by a crashed foreign process)
  // entry land next to the good one.
  { std::ofstream(dir + "/garbage.tape") << "not a tape at all\n"; }
  const ScheduleTape good = sample_tape(2);
  {
    std::string text;
    {
      const std::string tmp = dir + "/torn_src.tmp";
      save_tape(good, tmp);
      std::ifstream in(tmp);
      text.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
      fs::remove(tmp);
    }
    std::ofstream(dir + "/torn.tape") << text.substr(0, text.size() / 2);
  }

  CorpusStore store;
  const CorpusStore::LoadReport rep = store.open(dir);
  EXPECT_EQ(rep.loaded, 1);
  EXPECT_EQ(rep.quarantined, 2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / "garbage.tape"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / "torn.tape"));
  // The farm stays usable after quarantining.
  EXPECT_TRUE(store.insert(corpus_key(good), good, "after_quarantine"));
}

TEST(CorpusStore, AbsorbIndexesReadOnlySeedsWithoutMoving) {
  const std::string own = fresh_dir("absorb_own");
  const std::string seedbed = fresh_dir("absorb_seed");
  const ScheduleTape t = sample_tape(4);
  save_tape(t, seedbed + "/seeded.tape");
  { std::ofstream(seedbed + "/junk.tape") << "junk\n"; }

  CorpusStore store;
  store.open(own);
  const CorpusStore::LoadReport rep = store.absorb(seedbed);
  EXPECT_EQ(rep.loaded, 1);
  EXPECT_EQ(rep.quarantined, 1);
  EXPECT_TRUE(store.contains(corpus_key(t)));
  // The seed directory is NOT ours: nothing moved, nothing deleted.
  EXPECT_TRUE(fs::exists(seedbed + "/junk.tape"));
  EXPECT_FALSE(fs::exists(fs::path(seedbed) / "quarantine"));

  // A missing seed directory is a no-op, not an error.
  const CorpusStore::LoadReport none = store.absorb(own + "/does_not_exist");
  EXPECT_EQ(none.loaded, 0);
}

TEST(CorpusStore, UnwritableDirThrowsCorpusIoError) {
  const std::string dir = fresh_dir("unwritable");
  { std::ofstream(dir + "/blocker") << "x"; }
  CorpusStore store;
  EXPECT_THROW(store.open(dir + "/blocker/corpus"), CorpusIoError);
}

FarmOptions small_farm(const std::string& corpus_dir) {
  FarmOptions o;
  o.seed = 42;
  o.workers = 2;
  o.batch = 14;
  o.max_plans = 56;
  o.soak_interval_s = 0;  // no streaming in unit tests
  o.corpus_dir = corpus_dir;
  return o;
}

TEST(Farm, RestartWithCorpusReportsKnownFindingsAsDuplicates) {
  const std::string dir = fresh_dir("farm_resume");
  std::vector<const CampaignTarget*> targets = {find_campaign_target("cons"),
                                                find_campaign_target("synth")};
  ASSERT_NE(targets[0], nullptr);
  ASSERT_NE(targets[1], nullptr);

  const FarmStats first = run_farm(targets, small_farm(dir));
  EXPECT_EQ(first.plans, 56);
  EXPECT_GT(first.violations, 0) << "seeded-buggy target produced no findings";
  EXPECT_GT(first.novel, 0);
  EXPECT_EQ(first.clean + first.violations, first.plans);
  EXPECT_EQ(static_cast<std::int64_t>(first.corpus_size), first.novel);

  // Same seed over the persisted corpus: everything is a rediscovery.
  const FarmStats second = run_farm(targets, small_farm(dir));
  EXPECT_EQ(second.plans, first.plans);
  EXPECT_EQ(second.violations, first.violations);
  EXPECT_EQ(second.novel, 0) << "restart re-reported known findings as novel";
  EXPECT_EQ(second.duplicates, second.violations);
  EXPECT_EQ(second.corpus_seeded, static_cast<int>(first.corpus_size));
  // Raw-tape aliases make exact rediscoveries skip the shrinker entirely.
  EXPECT_EQ(second.shrunk, 0);
}

TEST(Farm, VerdictsAreDeterministicAcrossRunsAndWorkerCounts) {
  std::vector<const CampaignTarget*> targets = {find_campaign_target("synth")};
  ASSERT_NE(targets[0], nullptr);
  FarmOptions a = small_farm("");
  FarmOptions b = small_farm("");
  b.workers = 5;
  b.batch = 7;
  const FarmStats ra = run_farm(targets, a);
  const FarmStats rb = run_farm(targets, b);
  EXPECT_EQ(ra.plans, rb.plans);
  EXPECT_EQ(ra.clean, rb.clean);
  EXPECT_EQ(ra.violations, rb.violations);
  EXPECT_EQ(ra.total_steps, rb.total_steps);
  EXPECT_EQ(ra.coverage_sigs, rb.coverage_sigs);
}

TEST(Farm, OneShotAndFarmAgreeOnPlanVerdicts) {
  // The farm executes the SAME (plan_seed, plan) stream as run_campaign
  // (campaign_plan_seed + FaultPlan::sample), so with mutation off their
  // clean/violation split must be identical.
  const CampaignTarget* t = find_campaign_target("bcf");
  ASSERT_NE(t, nullptr);
  FarmOptions fo = small_farm("");
  fo.mutate = false;
  fo.max_plans = 30;
  fo.shrink = false;
  const FarmStats farm = run_farm({t}, fo);

  CampaignOptions co;
  co.seed = fo.seed;
  co.plans = 30;
  co.shrink = false;
  co.save_dir = "";
  const CampaignRun shot = run_campaign(*t, co);
  EXPECT_EQ(farm.clean, shot.clean_plans);
  EXPECT_EQ(farm.violations, static_cast<std::int64_t>(shot.violations.size()));
  EXPECT_EQ(farm.total_steps, shot.total_steps);
}

TEST(Farm, StopFlagDrainsGracefully) {
  std::vector<const CampaignTarget*> targets = {find_campaign_target("cons")};
  ASSERT_NE(targets[0], nullptr);
  std::atomic<bool> stop{true};  // raised before the first batch
  FarmOptions o = small_farm("");
  o.max_plans = 0;
  o.stop = &stop;
  const FarmStats r = run_farm(targets, o);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.plans, 0);
}

}  // namespace
}  // namespace efd
