// Tests for the register-based Paxos (algo/paxos.hpp): agreement and
// validity under contention and preemption, and livelock under lockstep.
#include <gtest/gtest.h>

#include <set>

#include "algo/paxos.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace efd {
namespace {

Proc proposer(Context& ctx, PaxosInstance inst, int me, Value v, int attempts) {
  for (int r = 0; r < attempts; ++r) {
    const Value d = co_await paxos_attempt(ctx, inst, me, r, v);
    if (!d.is_nil()) {
      co_await ctx.decide(d);
      co_return;
    }
  }
  // Give up proposing; adopt whatever gets decided.
  const Value d = co_await await_nonnil(ctx, inst.dec);
  co_await ctx.decide(d);
}

TEST(Paxos, SoloProposerDecidesOwnValue) {
  World w = World::failure_free(1);
  const PaxosInstance inst{"px", 3};
  w.spawn_c(0, [](Context& ctx) { return proposer(ctx, PaxosInstance{"px", 3}, 0, Value(42), 5); });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 42);
  EXPECT_EQ(w.memory().read(inst.dec).as_int(), 42);
}

TEST(Paxos, AgreementUnderContention) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    World w = World::failure_free(1);
    for (int i = 0; i < 3; ++i) {
      w.spawn_c(i, [i](Context& ctx) {
        return proposer(ctx, PaxosInstance{"px", 3}, i, Value(100 + i), 50);
      });
    }
    RandomScheduler rs(seed);
    const auto r = drive(w, rs, 100000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
    std::set<std::int64_t> vals;
    for (int i = 0; i < 3; ++i) vals.insert(w.decision(cpid(i)).as_int());
    EXPECT_EQ(vals.size(), 1u) << "seed " << seed;
    EXPECT_GE(*vals.begin(), 100);
    EXPECT_LE(*vals.begin(), 102);
  }
}

TEST(Paxos, ValidityDecidedValueWasProposed) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    World w = World::failure_free(1);
    for (int i = 0; i < 2; ++i) {
      w.spawn_c(i, [i](Context& ctx) {
        return proposer(ctx, PaxosInstance{"px", 2}, i, Value(7 + i), 50);
      });
    }
    RandomScheduler rs(seed);
    drive(w, rs, 50000);
    const auto d = w.memory().read("px/DEC").as_int();
    EXPECT_TRUE(d == 7 || d == 8);
  }
}

TEST(Paxos, PreemptedAttemptReturnsNil) {
  World w = World::failure_free(1);
  // p2 pre-installs a high ballot, so p1's first attempt must fail.
  w.memory().write("px/RB[1]", Value(1000));
  w.spawn_c(0, [](Context& ctx) -> Proc {
    // Named instance: an aggregate prvalue inside co_await trips a GCC 12.2
    // double-destruction bug (see the authoring rules in sim/proc.hpp).
    const PaxosInstance inst{"px", 2};
    const Value d = co_await paxos_attempt(ctx, inst, 0, 0, Value(1));
    co_await ctx.decide(vec(d));  // wrap: decide [nil] to observe the failure
  });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_TRUE(w.decision(cpid(0)).at(0).is_nil());
  EXPECT_TRUE(w.memory().read("px/DEC").is_nil());
}

TEST(Paxos, LaterBallotAdoptsAcceptedValue) {
  World w = World::failure_free(1);
  // A previous ballot (5) accepted value 99 at actor 1; a new proposer must
  // adopt 99 even though it proposes 1.
  w.memory().write("px/ACC[1]", vec(Value(5), Value(99)));
  w.spawn_c(0, [](Context& ctx) {
    return proposer(ctx, PaxosInstance{"px", 2}, 0, Value(1), 10);
  });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 99);
}

TEST(Paxos, LockstepContentionLivelocks) {
  // Two proposers single-stepped in lockstep preempt each other forever —
  // the adversary the Fig. 1 extraction relies on.
  World w = World::failure_free(1);
  for (int i = 0; i < 2; ++i) {
    w.spawn_c(i, [i](Context& ctx) {
      return proposer(ctx, PaxosInstance{"px", 2}, i, Value(i), 1000000);
    });
  }
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 20000);
  EXPECT_FALSE(r.all_c_decided);
  EXPECT_TRUE(w.memory().read("px/DEC").is_nil());
}

TEST(Paxos, DecisionRegisterIsStable) {
  World w = World::failure_free(1);
  for (int i = 0; i < 3; ++i) {
    w.spawn_c(i, [i](Context& ctx) {
      return proposer(ctx, PaxosInstance{"px", 3}, i, Value(i), 200);
    });
  }
  RandomScheduler rs(77);
  // Poll DEC after every step: once set, it must never change.
  Value seen;
  for (int step = 0; step < 50000 && !w.all_c_decided(); ++step) {
    const auto pid = rs.next(w);
    if (!pid) break;
    w.step(*pid);
    const Value d = w.memory().read("px/DEC");
    if (!seen.is_nil()) EXPECT_EQ(d, seen);
    if (!d.is_nil()) seen = d;
  }
  EXPECT_FALSE(seen.is_nil());
}

}  // namespace
}  // namespace efd
