// Tests for the exploration-engine rework (core/solvability, core/bivalence,
// sim/schedule's AdmissionWindow):
//  * regression coverage for the three soundness fixes — terminated-but-
//    undecided retirement, budget-exhausted level certification, and the
//    commutative lasso memory fold;
//  * determinism properties — outcomes byte-identical across engines
//    (incremental vs full-replay), thread counts, and interning orders;
//  * incremental-vs-full-replay equivalence on seeded random process trees.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algo/one_concurrent.hpp"
#include "core/bivalence.hpp"
#include "core/solvability.hpp"
#include "core/workpool.hpp"
#include "sim/memory.hpp"
#include "sim/schedule.hpp"
#include "tasks/consensus.hpp"
#include "tasks/set_agreement.hpp"
#include "tasks/task.hpp"

namespace efd {
namespace {

// ---------------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------------

/// A task whose relation accepts everything: isolates scheduling/termination
/// behavior from task semantics.
class FreeTask final : public Task {
 public:
  explicit FreeTask(int n) : n_(n) {}
  [[nodiscard]] std::string name() const override { return "free"; }
  [[nodiscard]] int n_procs() const override { return n_; }
  [[nodiscard]] bool input_ok(const ValueVec&) const override { return true; }
  [[nodiscard]] bool relation(const ValueVec&, const ValueVec&) const override { return true; }
  [[nodiscard]] Value pick_output(const ValueVec&, const ValueVec&, int) const override {
    return Value(0);
  }
  [[nodiscard]] ValueVec sample_input(std::uint64_t seed) const override {
    ValueVec in(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      in[static_cast<std::size_t>(i)] = Value(static_cast<std::int64_t>(seed) + i);
    }
    return in;
  }

 private:
  int n_;
};

/// Odd-indexed processes write once and terminate WITHOUT deciding; even
/// ones write and decide.
Proc quitter_proc(Context& ctx, int self, std::string ns) {
  co_await ctx.write(reg(ns + "/Q", self), Value(self));
  if (self % 2 == 0) co_await ctx.decide(Value(self));
}

std::function<ProcBody(int, Value)> quitter_body(const std::string& ns) {
  return [ns](int i, Value) {
    return ProcBody([i, ns](Context& ctx) { return quitter_proc(ctx, i, ns); });
  };
}

/// Seed-parameterized pseudo-random process: a fixed-length mix of reads,
/// writes, yields, and read-then-copy chains over a small register bank,
/// then a decide. Deterministic in (seed, self), so both engines explore
/// the identical choice tree.
Proc fuzz_proc(Context& ctx, int self, std::uint64_t seed, int len, std::string ns) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(self + 1));
  for (int i = 0; i < len; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t roll = (s >> 33) % 4;
    const int cell = static_cast<int>((s >> 20) % 4);
    if (roll == 0) {
      co_await ctx.write(reg(ns + "/F", cell), Value(static_cast<std::int64_t>((s >> 7) % 5)));
    } else if (roll == 1) {
      co_await ctx.read(reg(ns + "/F", cell));
    } else if (roll == 2) {
      co_await ctx.yield();
    } else {
      const Value v = co_await ctx.read(reg(ns + "/F", cell));
      co_await ctx.write(reg(ns + "/F", (cell + 1) % 4), v);
    }
  }
  co_await ctx.decide(Value(static_cast<std::int64_t>(self)));
}

std::function<ProcBody(int, Value)> fuzz_body(std::uint64_t seed, int len,
                                              const std::string& ns) {
  return [seed, len, ns](int i, Value) {
    return ProcBody([i, seed, len, ns](Context& ctx) { return fuzz_proc(ctx, i, seed, len, ns); });
  };
}

std::function<ProcBody(int, Value)> one_conc(const TaskPtr& task, const std::string& ns) {
  return [task, ns](int, Value input) { return make_one_concurrent(task, input, ns); };
}

void expect_outcome_eq(const ExploreOutcome& a, const ExploreOutcome& b,
                       const std::string& what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
  EXPECT_EQ(a.terminal_runs, b.terminal_runs) << what;
  EXPECT_EQ(a.states, b.states) << what;
  EXPECT_EQ(a.violation, b.violation) << what;
  EXPECT_EQ(a.bad_schedule, b.bad_schedule) << what;
}

// ---------------------------------------------------------------------------
// AdmissionWindow: the shared admission-bookkeeping helper.
// ---------------------------------------------------------------------------

TEST(AdmissionWindow, AdmitsInArrivalOrderUpToK) {
  AdmissionWindow win(2, {3, 1, 0, 2});
  win.refresh([](int) { return false; });
  EXPECT_EQ(win.active(), (std::vector<int>{3, 1}));
  EXPECT_EQ(win.next_arrival(), 2u);
  EXPECT_FALSE(win.exhausted());
}

TEST(AdmissionWindow, RetiresTerminatedUndecidedProcesses) {
  // Regression (soundness fix): a process whose coroutine terminated without
  // deciding can never decide, so keeping it admitted would starve the
  // window forever. "Finished" must mean decided OR terminated.
  AdmissionWindow win(1, {0, 1, 2});
  std::vector<bool> finished(3, false);
  auto fin = [&finished](int c) { return finished[static_cast<std::size_t>(c)]; };
  win.refresh(fin);
  EXPECT_EQ(win.active(), (std::vector<int>{0}));
  finished[0] = true;  // terminated, never decided
  win.refresh(fin);
  EXPECT_EQ(win.active(), (std::vector<int>{1})) << "dead process must free its slot";
  finished[1] = true;
  finished[2] = true;
  win.refresh(fin);
  win.refresh(fin);
  EXPECT_TRUE(win.exhausted());
}

TEST(AdmissionWindow, SchedulerDoesNotSpinOnDeadProcesses) {
  // The KConcurrencyScheduler shares the window: a quitter must not trap the
  // k=1 window in an infinite null-step loop.
  World w = World::failure_free(1);
  w.spawn_c(0, quitter_body("awq")(0, Value{}));
  w.spawn_c(1, quitter_body("awq")(1, Value{}));
  KConcurrencyScheduler sched(1, {1, 0});  // the quitter (odd) arrives first
  const DriveResult r = drive(w, sched, 1000);
  EXPECT_LT(r.steps, 1000) << "scheduler kept stepping a terminated process";
  EXPECT_TRUE(w.decided(cpid(0))) << "process 0 was starved by the dead window slot";
}

// ---------------------------------------------------------------------------
// Terminated-but-undecided retirement in the explorers.
// ---------------------------------------------------------------------------

TEST(ExploreEngine, QuitterRunsExploreCleanlyInsteadOfFakingNontermination) {
  // Regression: the old explorer retired only DECIDED processes, so a
  // process that terminated undecided pinned the window and every run
  // "ran out of depth" — reported as possible non-termination.
  auto task = std::make_shared<FreeTask>(2);
  ExploreConfig cfg;
  cfg.k = 1;
  cfg.arrival = {1, 0};  // the quitter first: its slot must free for p0
  cfg.max_depth = 50;
  for (const ExploreEngine engine : {ExploreEngine::kIncremental, ExploreEngine::kFullReplay}) {
    cfg.engine = engine;
    const auto o = explore_k_concurrent(task, quitter_body("quit"), task->sample_input(1), cfg);
    EXPECT_TRUE(o.ok) << o.violation;
    EXPECT_GT(o.terminal_runs, 0);
    EXPECT_FALSE(o.budget_exhausted);
  }
}

// ---------------------------------------------------------------------------
// Incremental vs full-replay equivalence.
// ---------------------------------------------------------------------------

ExploreOutcome run_menu(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
                        const ValueVec& in, int k, ExploreEngine engine, int threads = 1,
                        bool dedup = true) {
  ExploreConfig cfg;
  cfg.k = k;
  cfg.arrival = Task::participants(in);
  cfg.max_states = 400000;
  cfg.engine = engine;
  cfg.threads = threads;
  cfg.dedup = dedup;
  return explore_k_concurrent(task, body, in, cfg);
}

TEST(ExploreEngine, EnginesAgreeOnCleanSweep) {
  auto task = std::make_shared<SetAgreementTask>(3, 2);
  ValueVec in{Value(0), Value(1), Value(2)};
  const auto inc = run_menu(task, one_conc(task, "eq1"), in, 2, ExploreEngine::kIncremental);
  const auto full = run_menu(task, one_conc(task, "eq1"), in, 2, ExploreEngine::kFullReplay);
  EXPECT_TRUE(inc.ok) << inc.violation;
  EXPECT_GT(inc.terminal_runs, 0);
  expect_outcome_eq(inc, full, "ksa(3,2) level 2");
}

TEST(ExploreEngine, EnginesAgreeOnViolation) {
  auto task = std::make_shared<ConsensusTask>(3);
  ValueVec in{Value(0), Value(1), Value(2)};
  const auto inc = run_menu(task, one_conc(task, "eq2"), in, 2, ExploreEngine::kIncremental);
  const auto full = run_menu(task, one_conc(task, "eq2"), in, 2, ExploreEngine::kFullReplay);
  EXPECT_FALSE(inc.ok);
  EXPECT_FALSE(inc.bad_schedule.empty());
  expect_outcome_eq(inc, full, "consensus(3) level 2 violation");
}

TEST(ExploreEngine, EnginesAgreeWithoutDedup) {
  auto task = std::make_shared<SetAgreementTask>(3, 2);
  ValueVec in{Value(0), Value(1), Value(2)};
  const auto inc =
      run_menu(task, one_conc(task, "eq3"), in, 2, ExploreEngine::kIncremental, 1, false);
  const auto full =
      run_menu(task, one_conc(task, "eq3"), in, 2, ExploreEngine::kFullReplay, 1, false);
  expect_outcome_eq(inc, full, "ksa(3,2) level 2, dedup off");
}

TEST(ExploreEngine, EnginesAgreeOnSeededRandomTrees) {
  // The sharp equivalence check: arbitrary read/write/yield interleavings,
  // including write-over-write undo and processes of different lengths.
  auto task = std::make_shared<FreeTask>(3);
  const ValueVec in = task->sample_input(0);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const std::string ns = "fz" + std::to_string(seed);
    const auto body = fuzz_body(seed, 4 + static_cast<int>(seed % 3), ns);
    const auto inc = run_menu(task, body, in, 2, ExploreEngine::kIncremental);
    const auto full = run_menu(task, body, in, 2, ExploreEngine::kFullReplay);
    EXPECT_TRUE(inc.ok);
    expect_outcome_eq(inc, full, "fuzz seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance.
// ---------------------------------------------------------------------------

TEST(ExploreEngine, OutcomeIsThreadCountInvariantOnCleanSweep) {
  auto task = std::make_shared<SetAgreementTask>(4, 2);
  ValueVec in{Value(0), Value(1), Value(2), Value(3)};
  const auto t1 = run_menu(task, one_conc(task, "par1"), in, 2, ExploreEngine::kIncremental, 1);
  const auto t2 = run_menu(task, one_conc(task, "par1"), in, 2, ExploreEngine::kIncremental, 2);
  const auto t8 = run_menu(task, one_conc(task, "par1"), in, 2, ExploreEngine::kIncremental, 8);
  EXPECT_TRUE(t1.ok) << t1.violation;
  expect_outcome_eq(t1, t2, "ksa(4,2) threads 1 vs 2");
  expect_outcome_eq(t1, t8, "ksa(4,2) threads 1 vs 8");
}

TEST(ExploreEngine, OutcomeIsThreadCountInvariantOnViolation) {
  // Violating sweeps fall back to the canonical sequential pass, so even
  // bad_schedule is byte-identical.
  auto task = std::make_shared<ConsensusTask>(3);
  ValueVec in{Value(0), Value(1), Value(2)};
  const auto t1 = run_menu(task, one_conc(task, "par2"), in, 2, ExploreEngine::kIncremental, 1);
  const auto t2 = run_menu(task, one_conc(task, "par2"), in, 2, ExploreEngine::kIncremental, 2);
  const auto t8 = run_menu(task, one_conc(task, "par2"), in, 2, ExploreEngine::kIncremental, 8);
  EXPECT_FALSE(t1.ok);
  expect_outcome_eq(t1, t2, "consensus(3) threads 1 vs 2");
  expect_outcome_eq(t1, t8, "consensus(3) threads 1 vs 8");
}

TEST(ExploreEngine, ParallelCleanLevelMatchesSequential) {
  auto task = std::make_shared<SetAgreementTask>(3, 2);
  ValueVec in{Value(0), Value(1), Value(2)};
  ExploreConfig cfg;
  cfg.max_states = 400000;
  const CleanLevelResult seq = max_clean_level(task, one_conc(task, "mcl"), in, 3, cfg);
  cfg.threads = 4;
  const CleanLevelResult par = max_clean_level(task, one_conc(task, "mcl"), in, 3, cfg);
  EXPECT_EQ(seq.level, 2);
  EXPECT_EQ(par.level, seq.level);
  EXPECT_EQ(par.budget_exhausted, seq.budget_exhausted);
}

// ---------------------------------------------------------------------------
// Interning-order independence.
// ---------------------------------------------------------------------------

TEST(ExploreEngine, OutcomeInvariantUnderInterningOrder) {
  // Same workload under two register namespaces, with decoy registers (and
  // the second namespace's own registers, in reverse) interned in between:
  // RegIds and interning order differ completely, outcomes must not.
  auto task = std::make_shared<FreeTask>(3);
  const ValueVec in = task->sample_input(0);
  auto run = [&](const std::string& ns) {
    return run_menu(task, fuzz_body(7, 5, ns), in, 2, ExploreEngine::kIncremental);
  };
  const auto a = run("ordA");
  for (int i = 31; i >= 0; --i) {
    (void)reg("ordDecoy/D", i);
    (void)sym("ordDecoy/S" + std::to_string(i));
  }
  for (int i = 3; i >= 0; --i) (void)reg("ordB/F", i);  // reversed id order
  const auto b = run("ordB");
  expect_outcome_eq(a, b, "interning-order invariance");
}

TEST(LassoSig, MemoryFoldIsCommutative) {
  // Regression (soundness fix): the searcher signature used to fold memory
  // cells with a position-dependent FNV chain in std::map<RegId, ...> order
  // — and RegId order is process-global interning order, so signatures (and
  // with them dedup and cycle detection) depended on which registers
  // unrelated code had interned first. Pin the fixed formula: a commutative
  // per-cell sum keyed by the canonical-name hash, recomputed here from
  // first principles in REVERSE cell order.
  std::map<RegId, Value> mem;
  mem[reg("lsig/A", 0).id()] = Value(11);
  mem[reg("lsig/A", 1).id()] = Value(22);
  mem[reg("lsig/B", 7).id()] = Value(33);
  const std::vector<Value> state{Value(1), Value(2)};
  const std::vector<bool> decided{false, true};
  const std::vector<bool> halted{true, false};

  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& s : state) h = h * 1099511628211ULL + s.hash();
  for (bool d : decided) h = h * 1099511628211ULL + (d ? 2u : 1u);
  for (bool d : halted) h = h * 1099511628211ULL + (d ? 5u : 3u);
  std::uint64_t acc = 0;
  for (auto it = mem.rbegin(); it != mem.rend(); ++it) {
    acc += cell_content_hash(reg_name_hash(it->first), it->second.hash());
  }
  const std::uint64_t expected = h * 1099511628211ULL + cell_content_hash(0x9AE16A3B2F90404FULL, acc);

  EXPECT_EQ(lasso_config_sig(state, decided, halted, mem), expected)
      << "memory fold is order-dependent again";
}

// ---------------------------------------------------------------------------
// Parallel lasso search.
// ---------------------------------------------------------------------------

/// Namespaced variant of test_bivalence's naive strong 2-renaming candidate:
/// symmetric lockstep flips names forever, so a lasso exists.
struct NsRenaming final : SimProgram {
  std::string ns;
  explicit NsRenaming(std::string n) : ns(std::move(n)) {}
  Value init(int index, const Value&) const override {
    return vec(Value(index), Value(1), Value(0), Value(0));
  }
  SimAction action(const Value& st) const override {
    const int me = static_cast<int>(st.at(0).int_or(0));
    const auto phase = st.at(3).int_or(0);
    if (phase == 0) return {SimAction::Kind::kWrite, reg(ns + "/R", me), st.at(1)};
    if (phase == 1) return {SimAction::Kind::kRead, reg(ns + "/R", 1 - me), {}};
    if (phase == 2) return {SimAction::Kind::kDecide, "", st.at(1)};
    return {};
  }
  Value transition(const Value& st, const Value& result) const override {
    const auto phase = st.at(3).int_or(0);
    std::int64_t name = st.at(1).int_or(1);
    std::int64_t stable = st.at(2).int_or(0);
    std::int64_t next = phase + 1;
    if (phase == 1) {
      if (result.is_nil() || result.int_or(0) != name) {
        next = ++stable >= 2 ? 2 : 0;
      } else {
        stable = 0;
        name = 3 - name;
        next = 0;
      }
    }
    return vec(st.at(0), Value(name), Value(stable), Value(next));
  }
};

TEST(LassoParallel, FindsTheLassoAndIsThreadCountInvariant) {
  LassoConfig cfg;
  cfg.participants = {0, 1};
  cfg.max_depth = 200;
  const ValueVec in{Value(0), Value(1)};
  const auto prog = std::make_shared<NsRenaming>("lpar");

  const auto seq = find_nontermination(prog, in, cfg);
  cfg.threads = 2;
  const auto t2 = find_nontermination(prog, in, cfg);
  cfg.threads = 8;
  const auto t8 = find_nontermination(prog, in, cfg);

  EXPECT_TRUE(seq.found);
  EXPECT_TRUE(t2.found);
  EXPECT_FALSE(t2.cycle.empty());
  EXPECT_EQ(t2.found, t8.found);
  EXPECT_EQ(t2.prefix, t8.prefix);
  EXPECT_EQ(t2.cycle, t8.cycle);
  EXPECT_EQ(t2.states, t8.states);
  EXPECT_EQ(t2.budget_exhausted, t8.budget_exhausted);
}

// ---------------------------------------------------------------------------
// Supporting machinery: undo log, pool, interner.
// ---------------------------------------------------------------------------

TEST(ExploreEngine, UndoWriteRestoresExactMemoryState) {
  RegisterFile m;
  const RegAddr a = reg("undo/X", 0);
  const RegAddr b = reg("undo/X", 1);
  const std::uint64_t h_empty = m.content_hash();

  m.write(a, Value(1));
  const std::uint64_t h_a1 = m.content_hash();

  // Overwrite and undo: back to a=1.
  m.write(a, Value(3));
  m.undo_write(a, Value(1), true);
  EXPECT_EQ(m.content_hash(), h_a1);
  EXPECT_EQ(m.read(a).as_int(), 1);

  // First write to b and undo: cell reads as never-written again.
  m.write(b, Value(2));
  m.undo_write(b, Value{}, false);
  EXPECT_EQ(m.content_hash(), h_a1);
  EXPECT_FALSE(m.written(b));
  EXPECT_EQ(m.footprint(), 1u);

  m.undo_write(a, Value{}, false);
  EXPECT_EQ(m.content_hash(), h_empty);
  EXPECT_EQ(m.content_hash(), m.content_hash_slow());
  EXPECT_EQ(m.footprint(), 0u);
}

TEST(ExploreEngine, WorkStealingPoolRunsEveryTaskOnce) {
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  WorkStealingPool::run(std::move(tasks), 4);
  EXPECT_EQ(hits.load(), 100);
}

TEST(ExploreEngine, ResidentPoolReusesItsCrewAcrossBatches) {
  // Many small batches on one pool: every task runs exactly once per batch,
  // stats reset between runs, and the same persistent crew serves them all
  // (the farm issues thousands of such batches per minute — per-batch
  // thread spawn is exactly what this class exists to avoid).
  ResidentPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::set<std::thread::id> crew_ids;
  std::mutex ids_mu;
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&hits, &crew_ids, &ids_mu] {
        hits.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(ids_mu);
        crew_ids.insert(std::this_thread::get_id());
      });
    }
    PoolStats st;
    pool.run(std::move(tasks), &st);
    EXPECT_EQ(hits.load(), 16);
    EXPECT_EQ(st.tasks, 16);
  }
  // Worker 0 is the caller; at most 3 spawned workers ever touch a task.
  EXPECT_LE(crew_ids.size(), 4u);
}

TEST(ExploreEngine, ResidentPoolRethrowsFirstTaskError) {
  ResidentPool pool(3);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i] {
      if (i == 5) throw std::runtime_error("task five");
    });
  }
  EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
  // The pool stays usable after a throwing batch.
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> ok;
  for (int i = 0; i < 8; ++i) {
    ok.push_back([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run(std::move(ok));
  EXPECT_EQ(hits.load(), 8);
}

TEST(ExploreEngine, ShardedSigSetFirstInsertWins) {
  ShardedSigSet set;
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.insert(43));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ExploreEngine, InternerIsThreadSafe) {
  // Hammer the process-global interner from 8 threads: shared names must
  // unify to one id, and per-thread names must all intern. (Meaningful
  // under -DEFD_SANITIZE=thread, where any lock hole shows up as a race.)
  std::vector<std::thread> crew;
  std::atomic<bool> go{false};
  std::vector<RegId> shared_ids(8, kInvalidRegId);
  for (int t = 0; t < 8; ++t) {
    crew.emplace_back([t, &go, &shared_ids] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 200; ++i) {
        (void)reg("mt/t" + std::to_string(t), i);
        (void)reg_name_hash(reg("mt/shared", i % 16).id());
      }
      shared_ids[static_cast<std::size_t>(t)] = reg("mt/shared", 3).id();
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : crew) th.join();
  for (const RegId id : shared_ids) EXPECT_EQ(id, shared_ids[0]);
  EXPECT_EQ(reg_name(reg("mt/shared", 3).id()), "mt/shared[3]");
}

}  // namespace
}  // namespace efd
