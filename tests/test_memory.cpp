// Unit tests for the register file (sim/memory.hpp).
#include "sim/memory.hpp"

#include <gtest/gtest.h>

namespace efd {
namespace {

TEST(RegisterFile, UnwrittenReadsAsNil) {
  RegisterFile m;
  EXPECT_TRUE(m.read("nope").is_nil());
  EXPECT_EQ(m.footprint(), 0u);
}

TEST(RegisterFile, WriteThenRead) {
  RegisterFile m;
  m.write("a", Value(1));
  EXPECT_EQ(m.read("a").as_int(), 1);
  EXPECT_EQ(m.footprint(), 1u);
}

TEST(RegisterFile, OverwriteKeepsLatest) {
  RegisterFile m;
  m.write("a", Value(1));
  m.write("a", Value(2));
  EXPECT_EQ(m.read("a").as_int(), 2);
  EXPECT_EQ(m.footprint(), 1u);
  EXPECT_EQ(m.write_count(), 2u);
}

TEST(RegisterFile, DistinctAddressesAreIndependent) {
  RegisterFile m;
  m.write("a", Value(1));
  m.write("b", Value("x"));
  EXPECT_EQ(m.read("a").as_int(), 1);
  EXPECT_EQ(m.read("b").as_str(), "x");
}

TEST(RegisterFile, IndexedNames) {
  EXPECT_EQ(reg("V", 0), "V[0]");
  EXPECT_EQ(reg("V", 12), "V[12]");
  EXPECT_EQ(reg2("cons", 1, 3), "cons[1][3]");
  EXPECT_EQ(reg3("x", 1, 2, 3), "x[1][2][3]");
}

TEST(RegisterFile, ContentHashIsOrderIndependent) {
  RegisterFile a;
  a.write("x", Value(1));
  a.write("y", Value(2));
  RegisterFile b;
  b.write("y", Value(2));
  b.write("x", Value(1));
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

TEST(RegisterFile, ContentHashSeesValues) {
  RegisterFile a;
  a.write("x", Value(1));
  RegisterFile b;
  b.write("x", Value(2));
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(RegisterFile, ContentHashSeesAddresses) {
  RegisterFile a;
  a.write("x", Value(1));
  RegisterFile b;
  b.write("y", Value(1));
  EXPECT_NE(a.content_hash(), b.content_hash());
}

}  // namespace
}  // namespace efd
