// Unit tests for the register file (sim/memory.hpp) and the address
// interner (sim/regid.hpp).
#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "sim/regid.hpp"

namespace efd {
namespace {

TEST(RegisterFile, UnwrittenReadsAsNil) {
  RegisterFile m;
  EXPECT_TRUE(m.read("nope").is_nil());
  EXPECT_EQ(m.footprint(), 0u);
}

TEST(RegisterFile, WriteThenRead) {
  RegisterFile m;
  m.write("a", Value(1));
  EXPECT_EQ(m.read("a").as_int(), 1);
  EXPECT_EQ(m.footprint(), 1u);
}

TEST(RegisterFile, OverwriteKeepsLatest) {
  RegisterFile m;
  m.write("a", Value(1));
  m.write("a", Value(2));
  EXPECT_EQ(m.read("a").as_int(), 2);
  EXPECT_EQ(m.footprint(), 1u);
  EXPECT_EQ(m.write_count(), 2u);
}

TEST(RegisterFile, DistinctAddressesAreIndependent) {
  RegisterFile m;
  m.write("a", Value(1));
  m.write("b", Value("x"));
  EXPECT_EQ(m.read("a").as_int(), 1);
  EXPECT_EQ(m.read("b").as_str(), "x");
}

TEST(RegisterFile, IndexedNames) {
  EXPECT_EQ(reg("V", 0).name(), "V[0]");
  EXPECT_EQ(reg("V", 12).name(), "V[12]");
  EXPECT_EQ(reg2("cons", 1, 3).name(), "cons[1][3]");
  EXPECT_EQ(reg3("x", 1, 2, 3).name(), "x[1][2][3]");
}

TEST(Interning, RoundTripsThroughNames) {
  // Structured handle -> canonical name -> handle yields the same RegId.
  const Sym base = sym("it/V");
  const RegAddr structured = reg(base, 7);
  EXPECT_EQ(structured.name(), "it/V[7]");
  const RegAddr by_name{structured.name()};
  EXPECT_EQ(structured, by_name);
  EXPECT_EQ(structured.id(), by_name.id());
  // Literal string form unifies with the structured form.
  EXPECT_EQ(reg("it/V", 7), RegAddr{"it/V[7]"});
  EXPECT_EQ(reg2(base, 1, 2), RegAddr{"it/V[1][2]"});
  EXPECT_EQ(reg3(base, 1, 2, 3), RegAddr{"it/V[1][2][3]"});
  // Arity-0: the base symbol itself names a register.
  EXPECT_EQ(reg(sym("it/DEC")), RegAddr{"it/DEC"});
}

TEST(Interning, IsIdempotent) {
  const RegAddr a = reg(sym("it/W"), 3);
  const std::size_t count = interned_register_count();
  const RegAddr b = reg(sym("it/W"), 3);
  const RegAddr c{"it/W[3]"};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(interned_register_count(), count);  // no new ids
  // Every id below the count is valid and resolvable.
  ASSERT_GT(count, 0u);
  EXPECT_EQ(RegAddr::from_id(a.id()).name(), "it/W[3]");
  EXPECT_EQ(reg_name_hash(a.id()), a.name_hash());
}

TEST(Interning, LargeIndicesBypassTheDenseCache) {
  const Sym base = sym("it/big");
  const RegAddr a = reg(base, 100000);  // beyond the dense child cache
  EXPECT_EQ(a.name(), "it/big[100000]");
  EXPECT_EQ(reg(base, 100000), a);
  EXPECT_EQ(RegAddr{"it/big[100000]"}, a);
}

TEST(RegisterFile, NeverWrittenInternedIdsReadAsNil) {
  RegisterFile m;
  // Intern addresses without writing them: both an id below any future
  // vector size and one far beyond it must read as Nil.
  const RegAddr lo = reg(sym("nil/A"), 0);
  const RegAddr hi = reg(sym("nil/A"), 999);
  EXPECT_TRUE(m.read(lo).is_nil());
  m.write(reg(sym("nil/B"), 1), Value(5));
  EXPECT_TRUE(m.read(lo).is_nil());
  EXPECT_TRUE(m.read(hi).is_nil());
  EXPECT_EQ(m.footprint(), 1u);
}

TEST(RegisterFile, FootprintAndWriteCountInvariants) {
  RegisterFile m;
  EXPECT_EQ(m.footprint(), 0u);
  EXPECT_EQ(m.write_count(), 0u);
  const Sym base = sym("fw/R");
  std::size_t writes = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      m.write(reg(base, i), Value(round * 10 + i));
      ++writes;
      // footprint counts distinct cells, write_count every operation.
      EXPECT_EQ(m.footprint(), round == 0 ? static_cast<std::size_t>(i + 1) : 10u);
      EXPECT_EQ(m.write_count(), writes);
    }
  }
  // An explicitly written Nil still counts as written.
  m.write(reg(base, 10), Value{});
  EXPECT_EQ(m.footprint(), 11u);
  EXPECT_TRUE(m.read(reg(base, 10)).is_nil());
}

TEST(RegisterFile, ContentHashIsOrderIndependent) {
  RegisterFile a;
  a.write("x", Value(1));
  a.write("y", Value(2));
  RegisterFile b;
  b.write("y", Value(2));
  b.write("x", Value(1));
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

TEST(RegisterFile, ContentHashSeesValues) {
  RegisterFile a;
  a.write("x", Value(1));
  RegisterFile b;
  b.write("x", Value(2));
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(RegisterFile, ContentHashSeesAddresses) {
  RegisterFile a;
  a.write("x", Value(1));
  RegisterFile b;
  b.write("y", Value(1));
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(RegisterFile, IncrementalHashMatchesRecomputeUnderRandomWrites) {
  // Property test: after any sequence of writes (including overwrites and
  // explicit Nil writes), the incrementally maintained hash equals the
  // from-scratch recompute.
  std::mt19937 rng(20120716);  // PODC'12, for determinism
  const Sym base = sym("ph/R");
  RegisterFile m;
  EXPECT_EQ(m.content_hash(), m.content_hash_slow());
  for (int step = 0; step < 2000; ++step) {
    const int i = static_cast<int>(rng() % 64);
    const std::uint32_t kind = rng() % 4;
    Value v;
    switch (kind) {
      case 0: v = Value(static_cast<std::int64_t>(rng() % 16)); break;
      case 1: v = Value("s" + std::to_string(rng() % 8)); break;
      case 2: v = vec(Value(static_cast<std::int64_t>(rng() % 4)), Value(i)); break;
      default: break;  // explicit Nil write
    }
    m.write(reg(base, i), std::move(v));
    ASSERT_EQ(m.content_hash(), m.content_hash_slow()) << "after step " << step;
  }
  EXPECT_LE(m.footprint(), 64u);
  EXPECT_EQ(m.write_count(), 2000u);
}

TEST(RegisterFile, IncrementalHashIsWriteHistoryIndependent) {
  // Two stores whose final contents agree hash equally, no matter how many
  // intermediate overwrites each saw.
  const Sym base = sym("wh/R");
  RegisterFile a;
  for (int i = 0; i < 8; ++i) a.write(reg(base, i), Value(i));
  RegisterFile b;
  for (int round = 0; round < 5; ++round) {
    for (int i = 7; i >= 0; --i) b.write(reg(base, i), Value(round * 100 + i));
  }
  for (int i = 0; i < 8; ++i) b.write(reg(base, i), Value(i));
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_NE(a.write_count(), b.write_count());
}

TEST(RegisterFile, WriteToInvalidAddressThrows) {
  RegisterFile m;
  EXPECT_THROW(m.write(RegAddr{}, Value(1)), std::logic_error);
}

}  // namespace
}  // namespace efd
