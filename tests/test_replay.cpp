// Tests for the record/replay pipeline (sim/replay.hpp), crash-point fault
// injection, the ddmin shrinker (core/shrink.hpp), and the scenario registry
// (core/repro_scenarios.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/repro_scenarios.hpp"
#include "core/shrink.hpp"
#include "fd/detectors.hpp"
#include "sim/adversary.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

Proc spin(Context& ctx) {
  for (;;) co_await ctx.yield();
}

Proc query_spin(Context& ctx) {
  for (;;) co_await ctx.query();
}

Proc decide_after(Context& ctx, int steps) {
  for (int i = 0; i < steps; ++i) co_await ctx.yield();
  co_await ctx.decide(Value(steps));
}

// ---- tape text round-trip --------------------------------------------------

ScheduleTape sample_tape() {
  ScheduleTape t;
  t.scenario = "demo";
  t.num_s = 3;
  t.base_crash = {std::nullopt, Time{12}, std::nullopt};
  t.crashes = {{5, 0}, {9, 2}};
  t.fd = {{0, 1, Value(2)},
          {1, 3, vec(Value(0), Value("a\"b\\c"))},
          {0, 7, Value{}},
          {2, 8, Value(-41)}};
  t.steps = {cpid(0), spid(1), cpid(0), spid(2), cpid(1)};
  t.expect_hash = 0xDEADBEEF12345678ULL;
  t.expect_violated = true;
  return t;
}

TEST(Tape, SerializeParseRoundTrip) {
  const ScheduleTape t = sample_tape();
  const ScheduleTape r = ScheduleTape::parse(t.serialize());
  EXPECT_EQ(r.scenario, t.scenario);
  EXPECT_EQ(r.num_s, t.num_s);
  EXPECT_EQ(r.base_crash, t.base_crash);
  EXPECT_EQ(r.crashes, t.crashes);
  EXPECT_EQ(r.steps, t.steps);
  EXPECT_EQ(r.expect_hash, t.expect_hash);
  EXPECT_EQ(r.expect_violated, t.expect_violated);
  ASSERT_EQ(r.fd.size(), t.fd.size());
  for (std::size_t i = 0; i < t.fd.size(); ++i) {
    EXPECT_EQ(r.fd[i].qi, t.fd[i].qi);
    EXPECT_EQ(r.fd[i].time, t.fd[i].time);
    EXPECT_EQ(r.fd[i].value, t.fd[i].value) << "delta " << i;
  }
  // Round-tripping the round-trip is byte-stable.
  EXPECT_EQ(r.serialize(), t.serialize());
}

TEST(Tape, ParseRejectsMalformedInput) {
  EXPECT_THROW(ScheduleTape::parse(""), std::runtime_error);
  EXPECT_THROW(ScheduleTape::parse("efd-tape-v0\ns 1\n"), std::runtime_error);
  const std::string ok = sample_tape().serialize();
  // Bad pid token in the schedule body.
  std::string bad = ok;
  bad.replace(bad.find("q2"), 2, "x2");
  EXPECT_THROW(ScheduleTape::parse(bad), std::runtime_error);
  // Truncated schedule (declared count never satisfied).
  bad = ok.substr(0, ok.find("steps 5")) + "steps 50\np1 p2\nend\n";
  EXPECT_THROW(ScheduleTape::parse(bad), std::runtime_error);
  // Crash point naming a non-existent S-process.
  bad = ok;
  bad.replace(bad.find("crash 5 0"), 9, "crash 5 7");
  EXPECT_THROW(ScheduleTape::parse(bad), std::runtime_error);
  // Pattern width disagreeing with the s line.
  bad = ok;
  bad.replace(bad.find("pattern - 12 -"), 14, "pattern - 12");
  EXPECT_THROW(ScheduleTape::parse(bad), std::runtime_error);
}

TEST(Tape, CommentsAndBlankLinesIgnored) {
  std::string text = "# a comment\nefd-tape-v1\n\ns 0\n# mid comment\nsteps 1\np1\nend\n";
  const ScheduleTape t = ScheduleTape::parse(text);
  EXPECT_EQ(t.num_s, 0);
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_EQ(t.steps[0], cpid(0));
}

TEST(Tape, HistoryServesLatestDeltaAtOrBeforeT) {
  ScheduleTape t;
  t.num_s = 2;
  t.base_crash = {std::nullopt, std::nullopt};
  t.fd = {{0, 5, Value(1)}, {0, 9, Value(2)}};
  const HistoryPtr h = t.history();
  EXPECT_TRUE(h->at(0, 4).is_nil());   // before the first delta: ⊥
  EXPECT_EQ(h->at(0, 5), Value(1));
  EXPECT_EQ(h->at(0, 8), Value(1));    // holds between deltas
  EXPECT_EQ(h->at(0, 9), Value(2));
  EXPECT_EQ(h->at(0, 1000), Value(2)); // holds forever after
  EXPECT_TRUE(h->at(1, 50).is_nil());  // process with no deltas: ⊥
}

// ---- recording transparency ------------------------------------------------

TEST(Recording, WrapperDoesNotPerturbTheRun) {
  auto run = [](bool wrapped) {
    World w = World::failure_free(1);
    w.enable_trace();
    for (int i = 0; i < 3; ++i) {
      w.spawn_c(i, [](Context& ctx) { return decide_after(ctx, 10); });
    }
    RandomScheduler rs(42);
    if (wrapped) {
      RecordingScheduler rec(rs);
      drive(w, rec, 1000);
    } else {
      drive(w, rs, 1000);
    }
    return trace_hash(w.trace());
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Recording, CapturedScheduleMatchesTrace) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, [](Context& ctx) { return decide_after(ctx, 5); });
  w.spawn_c(1, [](Context& ctx) { return decide_after(ctx, 5); });
  RandomScheduler rs(7);
  RecordingScheduler rec(rs);
  drive(w, rec, 1000);
  ASSERT_EQ(rec.steps().size(), w.trace().size());
  for (std::size_t i = 0; i < rec.steps().size(); ++i) {
    EXPECT_EQ(rec.steps()[i], w.trace()[i].pid) << "step " << i;
  }
}

// ---- crash-point injection -------------------------------------------------

TEST(CrashPoints, KillAtExactStepIndex) {
  FailurePattern f(2);
  World w(f, TrivialFd{}.history(f, 0));
  w.spawn_s(0, spin);
  w.spawn_s(1, spin);
  ExplicitSchedule sched(std::vector<Pid>(10, spid(0)));
  const auto r = drive_with_crashes(w, sched, 100, {{4, 0}});
  // q1 stepped 4 times, then crashed: the remaining 6 scheduled steps are
  // refused (no time advance), so the drive still attempts all 10.
  EXPECT_EQ(w.steps_taken(spid(0)), 4);
  EXPECT_EQ(r.steps, 10);
  EXPECT_FALSE(w.alive(spid(0)));
  EXPECT_TRUE(w.alive(spid(1)));
  EXPECT_EQ(w.run_stats().injected_crashes, 1);
  EXPECT_EQ(w.run_stats().crashed_attempts, 6);
}

TEST(CrashPoints, InjectionNeverRevives) {
  FailurePattern f(1);
  f.crash(0, 2);
  World w(f, TrivialFd{}.history(f, 0));
  w.spawn_s(0, spin);
  ExplicitSchedule sched(std::vector<Pid>(8, spid(0)));
  // Injecting at step 5 targets a process already dead since t=2: a no-op,
  // not a revival (alive uses t < crash_time; overwriting with a later time
  // would resurrect it for the interim).
  drive_with_crashes(w, sched, 100, {{5, 0}});
  EXPECT_EQ(w.steps_taken(spid(0)), 2);
  EXPECT_EQ(w.run_stats().injected_crashes, 0);
}

TEST(CrashPoints, OutOfRangeIndexThrows) {
  World w = World::failure_free(1);
  EXPECT_THROW(w.inject_crash(3), std::out_of_range);
  EXPECT_THROW(w.inject_crash(-1), std::out_of_range);
}

// ---- record -> replay identity --------------------------------------------

TEST(Replay, EveryRegistryScenarioReplaysIdentically) {
  for (const auto& sc : scenarios()) {
    for (const std::uint64_t seed : {1ULL, 2ULL}) {
      const ScheduleTape tape = sc.record(seed);
      ASSERT_TRUE(tape.expect_hash) << sc.name;
      const ScenarioReplayOutcome out = replay_in_scenario(sc, tape);
      EXPECT_TRUE(out.replay.hash_match) << sc.name << " seed " << seed;
      EXPECT_TRUE(out.matches(tape)) << sc.name << " seed " << seed;
      // And the text form is lossless: parse(serialize) replays to the same
      // hash as the in-memory tape.
      const ScheduleTape reparsed = ScheduleTape::parse(tape.serialize());
      const ScenarioReplayOutcome out2 = replay_in_scenario(sc, reparsed);
      EXPECT_EQ(out2.replay.hash, out.replay.hash) << sc.name << " seed " << seed;
    }
  }
}

TEST(Replay, DeterministicStatsSubsetIsReproduced) {
  const Scenario* sc = find_scenario("cons_leader_crash_commit");
  ASSERT_NE(sc, nullptr);
  const ScheduleTape tape = sc->record(5);
  const ScenarioReplayOutcome a = replay_in_scenario(*sc, tape);
  const ScenarioReplayOutcome b = replay_in_scenario(*sc, tape);
  EXPECT_TRUE(deterministic_equal(a.stats, b.stats));
  EXPECT_EQ(a.replay.hash, b.replay.hash);
}

TEST(Replay, HashMismatchIsDetected) {
  const Scenario* sc = find_scenario("synth_write_race");
  ASSERT_NE(sc, nullptr);
  ScheduleTape tape = sc->record(1);
  ASSERT_GE(tape.steps.size(), 2u);
  // Corrupt the schedule: swap the first two steps of different processes.
  const auto it = std::adjacent_find(tape.steps.begin(), tape.steps.end(),
                                     [](Pid a, Pid b) { return !(a == b); });
  ASSERT_NE(it, tape.steps.end());
  std::iter_swap(it, it + 1);
  World w = sc->make_world(tape.pattern(), tape.history());
  EXPECT_FALSE(replay_tape(w, tape).hash_match);
}

// ---- shrinking -------------------------------------------------------------

TEST(Shrink, SynthRaceMinimizesToThreeSteps) {
  const Scenario* sc = find_scenario("synth_write_race");
  ASSERT_NE(sc, nullptr);
  const ScheduleTape tape = sc->record(1);  // verified violating seed
  ASSERT_TRUE(tape.expect_violated && *tape.expect_violated);

  ShrinkStats stats;
  const ScheduleTape min = shrink_tape(tape, scenario_predicate(*sc, true), {}, &stats);
  EXPECT_TRUE(stats.reached_fixpoint);
  // ISSUE acceptance bar: <= 25% of the original. The actual minimum is the
  // 3-step witness (p1 writes, p2 overwrites, p1 decides).
  EXPECT_LE(min.steps.size() * 4, tape.steps.size());
  EXPECT_EQ(min.steps.size(), 3u);
  EXPECT_FALSE(min.expect_hash) << "stale hash must be cleared on schedule change";

  // Still a counterexample.
  World w = sc->make_world(min.pattern(), min.history());
  replay_tape(w, min);
  EXPECT_TRUE(sc->violated(w));
}

TEST(Shrink, NonFailingTapeIsReturnedUnchanged) {
  const Scenario* sc = find_scenario("synth_write_race");
  const ScheduleTape tape = sc->record(3);  // verified NON-violating seed
  ASSERT_FALSE(*tape.expect_violated);
  ShrinkStats stats;
  const ScheduleTape out = shrink_tape(tape, scenario_predicate(*sc, true), {}, &stats);
  EXPECT_EQ(out.steps, tape.steps);
  EXPECT_EQ(stats.candidates, 1);
  EXPECT_EQ(stats.removed_steps, 0);
}

TEST(Shrink, KeepsLoadBearingCrashPoints) {
  // Structural predicate: "fails" while some crash point on q1 survives and
  // at least two steps remain. The shrinker must drop the irrelevant q2
  // crash and the step excess, but never the load-bearing fault.
  ScheduleTape t;
  t.num_s = 2;
  t.base_crash = {std::nullopt, std::nullopt};
  t.steps.assign(16, spid(0));
  t.crashes = {{3, 0}, {7, 1}};
  const TapePredicate pred = [](const ScheduleTape& c) {
    const bool has_q1 = std::any_of(c.crashes.begin(), c.crashes.end(),
                                    [](const CrashPoint& p) { return p.s_index == 0; });
    return has_q1 && c.steps.size() >= 2;
  };
  ShrinkStats stats;
  const ScheduleTape min = shrink_tape(t, pred, {}, &stats);
  EXPECT_EQ(min.steps.size(), 2u);
  ASSERT_EQ(min.crashes.size(), 1u);
  EXPECT_EQ(min.crashes[0].s_index, 0);
  // The surviving crash index was remapped into the shrunken schedule.
  EXPECT_LE(min.crashes[0].step_index, static_cast<std::int64_t>(min.steps.size()));
  EXPECT_TRUE(stats.reached_fixpoint);
}

TEST(Shrink, CrashIndicesRemapUnderStepRemoval) {
  // Predicate pins the schedule's q2 steps; the crash at index 10 must shift
  // left exactly by the number of removed earlier steps so it still lands
  // after the same surviving prefix.
  ScheduleTape t;
  t.num_s = 2;
  t.base_crash = {std::nullopt, std::nullopt};
  for (int i = 0; i < 10; ++i) t.steps.push_back(spid(0));
  t.steps.push_back(spid(1));
  t.crashes = {{10, 1}};  // kill q2 right before its only step
  const TapePredicate pred = [](const ScheduleTape& c) {
    const bool has_q2_step =
        std::any_of(c.steps.begin(), c.steps.end(), [](Pid p) { return p == spid(1); });
    return has_q2_step && !c.crashes.empty();
  };
  const ScheduleTape min = shrink_tape(t, pred, {}, nullptr);
  ASSERT_EQ(min.steps.size(), 1u);
  EXPECT_EQ(min.steps[0], spid(1));
  ASSERT_EQ(min.crashes.size(), 1u);
  EXPECT_EQ(min.crashes[0].step_index, 0);
}

// ---- scenario registry -----------------------------------------------------

TEST(Scenarios, RegistryNamesAreUniqueAndResolvable) {
  std::vector<std::string> names;
  for (const auto& sc : scenarios()) {
    names.push_back(sc.name);
    EXPECT_EQ(find_scenario(sc.name), &sc);
    EXPECT_FALSE(sc.summary.empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(Scenarios, LeaderCrashTapeActuallyKillsTheLeader) {
  const Scenario* sc = find_scenario("cons_leader_crash_commit");
  ASSERT_NE(sc, nullptr);
  const ScheduleTape tape = sc->record(7);
  ASSERT_EQ(tape.crashes.size(), 1u) << "recording must locate the commit point";
  const ScenarioReplayOutcome out = replay_in_scenario(*sc, tape);
  EXPECT_EQ(out.stats.injected_crashes, 1);
  EXPECT_FALSE(out.violated) << "paxos safety must survive the mid-commit kill";
  EXPECT_TRUE(out.replay.hash_match);
}

// A replay world whose S-process queries are answered purely from the tape's
// deltas — no detector object anywhere — still evolves identically.
TEST(Replay, TapeIsSelfContainedForFdQueries) {
  FailurePattern f(2);
  const OmegaFd omega(4);
  World w(f, omega.history(f, 11));
  w.enable_trace();
  w.spawn_s(0, query_spin);
  w.spawn_s(1, query_spin);
  RoundRobinScheduler rr;
  RecordingScheduler rec(rr);
  drive(w, rec, 40);
  const ScheduleTape tape = ScheduleTape::capture("", f, rec.steps(), {}, w.trace());

  World w2(tape.pattern(), tape.history());
  w2.spawn_s(0, query_spin);
  w2.spawn_s(1, query_spin);
  const ReplayResult rr2 = replay_tape(w2, tape);
  EXPECT_TRUE(rr2.hash_match);
}

}  // namespace
}  // namespace efd
