// Tests for the faulty-advice wrappers (fd/faulty.hpp): every wrapper's
// history must equal the inner detector's history exactly from its
// stabilization time on (the "finite prefix of arbitrary lies" contract),
// and stay type-correct before it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fd/detectors.hpp"
#include "fd/faulty.hpp"

namespace efd {
namespace {

FailurePattern crashy_pattern() {
  FailurePattern f(4);
  f.crash(2, 17);
  return f;
}

std::vector<DetectorPtr> inner_detectors() {
  return {
      std::make_shared<OmegaFd>(10),
      std::make_shared<AntiOmegaK>(2, 12),
      std::make_shared<VectorOmegaK>(2, 12),
      std::make_shared<TrivialFd>(),
  };
}

std::vector<FdFaultKind> fault_kinds() {
  return {FdFaultKind::kLying, FdFaultKind::kOmissive, FdFaultKind::kStuttering};
}

TEST(FaultyFd, HistoryEqualsInnerAfterStabilization) {
  const FailurePattern f = crashy_pattern();
  for (const auto& inner : inner_detectors()) {
    for (const FdFaultKind kind : fault_kinds()) {
      for (const Time until : {Time{0}, Time{9}, Time{64}}) {
        const DetectorPtr faulty = make_faulty(kind, inner, until, 5);
        const Time stable = faulty->stabilization_time(f);
        EXPECT_GE(stable, until);
        EXPECT_GE(stable, inner->stabilization_time(f));
        for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
          const HistoryPtr hf = faulty->history(f, seed);
          const HistoryPtr hi = inner->history(f, seed);
          for (int qi = 0; qi < f.n(); ++qi) {
            for (Time t = stable; t < stable + 40; ++t) {
              ASSERT_EQ(hf->at(qi, t), hi->at(qi, t))
                  << faulty->name() << " diverges from " << inner->name() << " at (q"
                  << qi + 1 << ", " << t << "), stabilization " << stable;
            }
          }
        }
      }
    }
  }
}

TEST(FaultyFd, LyingKeepsPerSampleTypeInvariants) {
  const FailurePattern f = crashy_pattern();
  const auto inner = std::make_shared<VectorOmegaK>(2, 12);
  const LyingFd liar(inner, 50);
  const HistoryPtr h = liar.history(f, 3);
  for (int qi = 0; qi < f.n(); ++qi) {
    for (Time t = 0; t < 50; ++t) {
      const Value v = h->at(qi, t);
      ASSERT_TRUE(v.is_vec());
      ASSERT_EQ(static_cast<int>(v.size()), 2);
    }
  }
}

TEST(FaultyFd, LyingActuallyLies) {
  // With a large window and a crashy pattern the liar must differ from the
  // inner history somewhere before stabilization (else it is no fault at all).
  const FailurePattern f = crashy_pattern();
  const auto inner = std::make_shared<OmegaFd>(10);
  const LyingFd liar(inner, 200);
  const HistoryPtr hf = liar.history(f, 5);
  const HistoryPtr hi = inner->history(f, 5);
  bool differs = false;
  for (int qi = 0; qi < f.n() && !differs; ++qi) {
    for (Time t = 0; t < 200 && !differs; ++t) differs = hf->at(qi, t) != hi->at(qi, t);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultyFd, OmissiveServesOnlyPastInnerValues) {
  const FailurePattern f = crashy_pattern();
  const auto inner = std::make_shared<OmegaFd>(10);
  const OmissiveFd om(inner, 120, 8);
  const HistoryPtr hf = om.history(f, 11);
  const HistoryPtr hi = inner->history(f, 11);
  for (int qi = 0; qi < f.n(); ++qi) {
    for (Time t = 0; t < 120; ++t) {
      const Value v = hf->at(qi, t);
      bool seen = false;
      for (Time u = 0; u <= t && !seen; ++u) seen = hi->at(qi, u) == v;
      ASSERT_TRUE(seen) << "omissive output at t=" << t << " is not a past inner value";
    }
  }
}

TEST(FaultyFd, StutteringFreezesOnPeriodBoundaries) {
  const FailurePattern f = crashy_pattern();
  const auto inner = std::make_shared<OmegaFd>(10);
  const StutteringFd st(inner, 100, 8);
  const HistoryPtr hf = st.history(f, 21);
  const HistoryPtr hi = inner->history(f, 21);
  for (int qi = 0; qi < f.n(); ++qi) {
    for (Time t = 0; t < 100; ++t) {
      ASSERT_EQ(hf->at(qi, t), hi->at(qi, (t / 8) * 8));
    }
  }
}

TEST(FaultyFd, MakeFaultyNoneIsIdentity) {
  const DetectorPtr inner = std::make_shared<OmegaFd>(10);
  EXPECT_EQ(make_faulty(FdFaultKind::kNone, inner, 50), inner);
}

TEST(FaultyFd, KindNamesRoundTrip) {
  for (const FdFaultKind k : {FdFaultKind::kNone, FdFaultKind::kLying, FdFaultKind::kOmissive,
                              FdFaultKind::kStuttering}) {
    EXPECT_EQ(fd_fault_kind_from(to_string(k)), k);
  }
  EXPECT_THROW(fd_fault_kind_from("grumpy"), std::invalid_argument);
}

}  // namespace
}  // namespace efd
