// Cross-cutting property sweeps that don't belong to a single module:
// determinism of the whole pipeline, scheduler/stride interactions, DAG
// causal-order properties, k-codes poll mode, and environment coverage.
#include <gtest/gtest.h>

#include "algo/k_codes_sim.hpp"
#include "algo/leader_consensus.hpp"
#include "fd/dag.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

// --- determinism: identical (bodies, pattern, history, schedule) => runs
// are bit-identical, the property every replay-based analysis rests on ---

ValueVec run_consensus(std::uint64_t sched_seed) {
  const int n = 3;
  FailurePattern f(n);
  f.crash(1, 7);
  OmegaFd omega(20);
  World w(f, omega.history(f, 5));
  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RandomScheduler rs(sched_seed);
  drive(w, rs, 300000);
  return w.output_vector();
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  for (std::uint64_t seed : {1u, 9u, 33u}) {
    EXPECT_EQ(Value(run_consensus(seed)), Value(run_consensus(seed)));
  }
}

TEST(Determinism, TraceReplayReproducesRun) {
  // Record a traced run, replay its schedule explicitly: identical outputs.
  const int n = 2;
  FailurePattern f(n);
  OmegaFd omega(10);
  const LeaderConsensusConfig cfg{"cons", n};
  auto build = [&](World& w) {
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(5 + i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  };
  World a(f, omega.history(f, 2));
  build(a);
  a.enable_trace();
  RandomScheduler rs(77);
  drive(a, rs, 300000);
  std::vector<Pid> sched;
  for (const auto& s : a.trace()) sched.push_back(s.pid);

  World b(f, omega.history(f, 2));
  build(b);
  ExplicitSchedule es(std::move(sched));
  drive(b, es, 400000);
  EXPECT_EQ(Value(a.output_vector()), Value(b.output_vector()));
}

// --- scheduler stride interactions ---

TEST(KConcurrency, LargerStrideGivesMoreSSteps) {
  auto s_steps = [](int stride) {
    const int n = 2;
    FailurePattern f(n);
    OmegaFd omega(5);
    World w(f, omega.history(f, 1));
    const LeaderConsensusConfig cfg{"cons", n};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
    KConcurrencyScheduler ks(1, {0, 1}, stride);
    drive(w, ks, 5000);
    return w.steps_taken(spid(0)) + w.steps_taken(spid(1));
  };
  EXPECT_LT(s_steps(1), s_steps(4));
}

// --- DAG causal order: transitivity and sampling monotonicity ---

TEST(FdDagProperties, PrecedesIsTransitiveAcrossBuilders) {
  const int n = 3;
  FailurePattern f(n);
  OmegaFd omega(10);
  World w(f, omega.history(f, 3));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_dag_builder("g", n));
  RoundRobinScheduler rr;
  drive(w, rr, 600);
  const FdDag dag = read_dag(w, "g", n);
  for (int a = 0; a < n; ++a) {
    for (int sa = 0; sa < std::min(dag.count(a), 4); ++sa) {
      for (int b = 0; b < n; ++b) {
        for (int sb = 0; sb < std::min(dag.count(b), 4); ++sb) {
          if (!dag.precedes(a, sa, b, sb)) continue;
          for (int c = 0; c < n; ++c) {
            for (int sc = 0; sc < std::min(dag.count(c), 4); ++sc) {
              if (dag.precedes(b, sb, c, sc)) {
                EXPECT_TRUE(dag.precedes(a, sa, c, sc))
                    << "q" << a << "#" << sa << " -> q" << b << "#" << sb << " -> q" << c << "#"
                    << sc;
              }
            }
          }
        }
      }
    }
  }
}

TEST(FdDagProperties, OwnVerticesAreChained) {
  const int n = 2;
  FailurePattern f(n);
  OmegaFd omega(5);
  World w(f, omega.history(f, 1));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_dag_builder("g", n));
  RoundRobinScheduler rr;
  drive(w, rr, 300);
  const FdDag dag = read_dag(w, "g", n);
  for (int p = 0; p < n; ++p) {
    for (int s = 1; s < dag.count(p); ++s) {
      EXPECT_TRUE(dag.precedes(p, s - 1, p, s));
    }
  }
}

// --- k-codes poll mode: a simulator departs on its own register ---

struct OneShot final : SimProgram {
  Value init(int idx, const Value&) const override { return vec(Value(idx), Value(0)); }
  SimAction action(const Value& st) const override {
    if (st.at(1).int_or(0) == 0) return {SimAction::Kind::kRead, "once", {}};
    return {};
  }
  Value transition(const Value& st, const Value&) const override {
    return vec(st.at(0), Value(1));
  }
};

TEST(KCodesPollMode, SimulatorDecidesFromPolledRegister) {
  const int n = 2, k = 1;
  FailurePattern f(n);
  VectorOmegaK vo(k, 5);
  World w(f, vo.history(f, 2));
  KCodesConfig cfg;
  cfg.ns = "kc";
  cfg.n = n;
  cfg.k = k;
  cfg.code = std::make_shared<OneShot>();
  cfg.inputs.assign(1, Value(0));
  cfg.poll_base = "mydec";
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_kcodes_simulator(cfg, {}));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_kcodes_server(cfg));
  // Nobody decides until the polled registers are written externally.
  RoundRobinScheduler rr;
  drive(w, rr, 3000);
  EXPECT_FALSE(w.all_c_decided());
  w.memory().write(reg("mydec", 0), Value(41));
  w.memory().write(reg("mydec", 1), Value(42));
  const auto r = drive(w, rr, 50000);
  EXPECT_TRUE(r.all_c_decided);
  EXPECT_EQ(w.decision(cpid(0)).as_int(), 41);
  EXPECT_EQ(w.decision(cpid(1)).as_int(), 42);
}

// --- environment sweeps: detectors behave across the whole of E_t ---

TEST(EnvironmentCoverage, OmegaAcrossAllWaitFreePatterns) {
  const int n = 4;
  for (const auto& f : wait_free_env(n).enumerate(12)) {
    OmegaFd omega(20);
    const auto h = omega.history(f, 3);
    EXPECT_TRUE(OmegaFd::check(f, *h, 300)) << f.to_string();
  }
}

TEST(EnvironmentCoverage, ConsensusAcrossAllSingleFaultPatterns) {
  const int n = 3;
  for (const auto& f : Environment(n, 1).enumerate(8)) {
    OmegaFd omega(25);
    World w(f, omega.history(f, 4));
    const LeaderConsensusConfig cfg{"cons", n};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
    RoundRobinScheduler rr;
    const auto r = drive(w, rr, 300000);
    EXPECT_TRUE(r.all_c_decided) << f.to_string();
  }
}

}  // namespace
}  // namespace efd
