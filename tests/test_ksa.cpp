// Tests for k-set agreement with →Ωk (algo/set_agreement_antiomega.hpp) and
// the no-advice (Π, n)-set agreement of §2.2.
#include <gtest/gtest.h>

#include <set>

#include "algo/set_agreement_antiomega.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

struct KsaCase {
  int n;
  int k;
  int faults;
  Time gst;
  std::uint64_t seed;
};

class KsaSweep : public ::testing::TestWithParam<KsaCase> {};

TEST_P(KsaSweep, AtMostKValuesAllFromInputs) {
  const auto p = GetParam();
  const FailurePattern f = Environment(p.n, p.n - 1).sample(p.seed, p.faults, 15);
  VectorOmegaK vo(p.k, p.gst);
  World w(f, vo.history(f, p.seed));
  const KsaConfig cfg{"ksa", p.n, p.k};
  for (int i = 0; i < p.n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
  for (int i = 0; i < p.n; ++i) w.spawn_s(i, make_ksa_server(cfg));
  RandomScheduler rs(p.seed * 17 + 3);
  const auto r = drive(w, rs, 800000);
  ASSERT_TRUE(r.all_c_decided) << f.to_string();

  std::set<std::int64_t> vals;
  for (int i = 0; i < p.n; ++i) {
    const auto d = w.decision(cpid(i)).as_int();
    EXPECT_GE(d, 0);
    EXPECT_LT(d, p.n);  // validity: someone's input
    vals.insert(d);
  }
  EXPECT_LE(static_cast<int>(vals.size()), p.k);

  SetAgreementTask task(p.n, p.k);
  ValueVec in(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  EXPECT_TRUE(task.relation(in, w.output_vector()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KsaSweep,
    ::testing::Values(KsaCase{3, 2, 0, 20, 1}, KsaCase{3, 2, 2, 35, 2}, KsaCase{4, 2, 1, 30, 3},
                      KsaCase{4, 3, 2, 30, 4}, KsaCase{5, 2, 2, 40, 5}, KsaCase{5, 3, 4, 50, 6},
                      KsaCase{5, 4, 2, 40, 7}, KsaCase{6, 2, 3, 45, 8}, KsaCase{6, 5, 5, 60, 9},
                      KsaCase{4, 2, 3, 50, 10}));

TEST(Ksa, ConsensusDegenerateCase) {
  // k = 1: →Ω1 is Ω; the algorithm degenerates to consensus.
  const int n = 3;
  FailurePattern f(n);
  f.crash(1, 5);
  VectorOmegaK vo(1, 25);
  World w(f, vo.history(f, 2));
  const KsaConfig cfg{"ksa", n, 1};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(10 * i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_ksa_server(cfg));
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 400000);
  ASSERT_TRUE(r.all_c_decided);
  std::set<std::int64_t> vals;
  for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(vals.size(), 1u);
}

TEST(NoAdvice, NSetAgreementSolvableInEveryEnvironment) {
  // §2.2: with n S-processes and NO failure detector, (Π, n)-set agreement
  // is solvable: each correct S-process relays one input into its slot.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const int n = 4;
    FailurePattern f = Environment(n, n - 1).sample(seed, static_cast<int>(seed % n), 10);
    TrivialFd trivial;
    World w(f, trivial.history(f, seed));
    const KsaConfig cfg{"nsa", n, n};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_nsa_noadvice_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_nsa_noadvice_server(cfg));
    RandomScheduler rs(seed + 500);
    const auto r = drive(w, rs, 100000);
    ASSERT_TRUE(r.all_c_decided) << f.to_string();
    std::set<std::int64_t> vals;
    for (int i = 0; i < n; ++i) {
      const auto d = w.decision(cpid(i)).as_int();
      EXPECT_GE(d, 0);
      EXPECT_LT(d, n);
      vals.insert(d);
    }
    EXPECT_LE(static_cast<int>(vals.size()), n);
  }
}

TEST(NoAdvice, FewerRelayersFewerValues) {
  // With only one correct S-process, the no-advice algorithm actually
  // achieves 1-set agreement among deciders — the S-count bounds the values.
  const int n = 3;
  FailurePattern f(n);
  f.crash(1, 0);
  f.crash(2, 0);
  TrivialFd trivial;
  World w(f, trivial.history(f, 0));
  const KsaConfig cfg{"nsa", n, n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_nsa_noadvice_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_nsa_noadvice_server(cfg));
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 50000);
  ASSERT_TRUE(r.all_c_decided);
  std::set<std::int64_t> vals;
  for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(vals.size(), 1u);
}

TEST(Ksa, SafetyUnderPermanentNoise) {
  // →Ωk that never stabilizes: liveness may be lost, but never more than k
  // distinct decisions.
  const int n = 4, k = 2;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FailurePattern f(n);
    VectorOmegaK vo(k, 1000000);
    World w(f, vo.history(f, seed));
    const KsaConfig cfg{"ksa", n, k};
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_ksa_server(cfg));
    RandomScheduler rs(seed);
    drive(w, rs, 40000);
    std::set<std::int64_t> vals;
    for (int i = 0; i < n; ++i) {
      if (w.decided(cpid(i))) vals.insert(w.decision(cpid(i)).as_int());
    }
    EXPECT_LE(static_cast<int>(vals.size()), k) << "seed " << seed;
  }
}

}  // namespace
}  // namespace efd
