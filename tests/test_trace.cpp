// Tests for run traces and the k-concurrency checker (sim/trace.hpp).
#include <gtest/gtest.h>

#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace efd {
namespace {

Proc two_then_decide(Context& ctx) {
  co_await ctx.yield();
  co_await ctx.yield();
  co_await ctx.decide(Value(1));
}

Proc quit_without_deciding(Context& ctx) {
  co_await ctx.yield();
}

TEST(Trace, RecordsStepsInOrder) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, [](Context& ctx) -> Proc {
    co_await ctx.write("a", 1);
    const Value v = co_await ctx.read("a");
    co_await ctx.decide(v);
  });
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  const Trace& t = w.trace();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].op, OpKind::kWrite);
  EXPECT_EQ(t[0].addr, "a");
  EXPECT_EQ(t[1].op, OpKind::kRead);
  EXPECT_EQ(t[1].result.as_int(), 1);
  EXPECT_EQ(t[2].op, OpKind::kDecide);
  EXPECT_EQ(t[2].value.as_int(), 1);
}

TEST(Trace, NullStepsAreMarked) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, [](Context& ctx) -> Proc { co_await ctx.decide(Value(0)); });
  w.step(cpid(0));
  w.step(cpid(0));  // null
  ASSERT_EQ(w.trace().size(), 2u);
  EXPECT_FALSE(w.trace()[0].null_step);
  EXPECT_TRUE(w.trace()[1].null_step);
}

TEST(Trace, MaxConcurrencySequential) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, two_then_decide);
  w.spawn_c(1, two_then_decide);
  // p1 runs to completion, then p2: 1-concurrent.
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  for (int i = 0; i < 3; ++i) w.step(cpid(1));
  EXPECT_EQ(max_concurrency(w.trace()), 1);
  EXPECT_TRUE(is_k_concurrent(w.trace(), 1));
}

TEST(Trace, MaxConcurrencyInterleaved) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, two_then_decide);
  w.spawn_c(1, two_then_decide);
  w.step(cpid(0));
  w.step(cpid(1));  // both participating & undecided now
  for (int i = 0; i < 2; ++i) w.step(cpid(0));
  for (int i = 0; i < 2; ++i) w.step(cpid(1));
  EXPECT_EQ(max_concurrency(w.trace()), 2);
  EXPECT_FALSE(is_k_concurrent(w.trace(), 1));
}

TEST(Trace, SStepsDoNotCountTowardConcurrency) {
  World w = World::failure_free(2);
  w.enable_trace();
  w.spawn_c(0, two_then_decide);
  w.spawn_s(0, two_then_decide);
  w.spawn_s(1, two_then_decide);
  for (int i = 0; i < 2; ++i) {
    w.step(cpid(0));
    w.step(spid(0));
    w.step(spid(1));
  }
  w.step(cpid(0));
  EXPECT_EQ(max_concurrency(w.trace()), 1);
}

// Regression: a C-process that terminates WITHOUT deciding used to stay in
// the checker's undecided set forever, inflating max_concurrency for every
// later step (only kDecide retired a process). The terminating step is now
// recorded in the trace and retires the quitter like a decision does.
TEST(Trace, TerminatedQuitterRetiresFromConcurrency) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, quit_without_deciding);
  w.spawn_c(1, two_then_decide);
  w.step(cpid(0));  // the quitter's frame completes here, no decision
  for (int i = 0; i < 3; ++i) w.step(cpid(1));
  ASSERT_EQ(w.trace().size(), 4u);
  EXPECT_TRUE(w.trace()[0].terminated);
  EXPECT_EQ(max_concurrency(w.trace()), 1);
  EXPECT_TRUE(is_k_concurrent(w.trace(), 1));
}

TEST(Trace, DecidingStepIsAlsoTerminatingWhenFrameEnds) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, two_then_decide);  // decide is its last operation
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  EXPECT_FALSE(w.trace()[0].terminated);
  EXPECT_FALSE(w.trace()[1].terminated);
  EXPECT_TRUE(w.trace()[2].terminated);
}

TEST(Trace, StepsOfCountsNonNullOnly) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, [](Context& ctx) -> Proc { co_await ctx.decide(Value(0)); });
  w.step(cpid(0));
  w.step(cpid(0));
  EXPECT_EQ(steps_of(w.trace(), cpid(0)), 1);
}

TEST(Trace, FormatTraceTruncates) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, two_then_decide);
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  const std::string s = format_trace(w.trace(), 2);
  EXPECT_NE(s.find("more steps"), std::string::npos);
}

}  // namespace
}  // namespace efd
