// Tests for the campaign engine (core/campaign.hpp): determinism, clean
// verdicts for the paper algorithms, guaranteed catches for the seeded-buggy
// variants, tape/shrink integration, and the efd-campaign-v1 JSON document.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "core/campaign.hpp"
#include "core/repro_scenarios.hpp"
#include "sim/replay.hpp"

namespace efd {
namespace {

CampaignOptions small_opts() {
  CampaignOptions o;
  o.seed = 42;
  o.plans = 12;
  o.save_dir = "";  // keep unit tests filesystem-free
  return o;
}

TEST(Campaign, TargetRegistryIsWellFormed) {
  std::set<std::string> names;
  int clean = 0;
  int buggy = 0;
  for (const auto& t : campaign_targets()) {
    EXPECT_TRUE(names.insert(t.name).second) << "duplicate target " << t.name;
    EXPECT_NE(find_scenario(t.scenario), nullptr) << t.name;
    EXPECT_TRUE(static_cast<bool>(t.advice)) << t.name;
    EXPECT_TRUE(static_cast<bool>(t.make_sched)) << t.name;
    (t.expect_clean ? clean : buggy)++;
  }
  EXPECT_GE(clean, 3);   // the paper algorithms under campaign
  EXPECT_GE(buggy, 3);   // the seeded-buggy variants the campaign must catch
  EXPECT_EQ(find_campaign_target("cons")->scenario, "cons_leader_crash_commit");
  EXPECT_EQ(find_campaign_target("no-such-target"), nullptr);
}

TEST(Campaign, CorrectAlgorithmsSurviveAllPlans) {
  for (const char* name : {"cons", "ren", "p1c"}) {
    const CampaignTarget* t = find_campaign_target(name);
    ASSERT_NE(t, nullptr);
    const CampaignRun r = run_campaign(*t, small_opts());
    EXPECT_TRUE(r.verdict_ok()) << name;
    EXPECT_EQ(r.clean_plans, r.plans) << name;
    EXPECT_TRUE(r.violations.empty()) << name;
    EXPECT_GT(r.total_steps, 0) << name;
    EXPECT_GT(r.monitored_steps, 0) << name;
  }
}

TEST(Campaign, SeededBuggyVariantsAreCaughtAndShrunk) {
  for (const char* name : {"synth", "bcf", "brn"}) {
    const CampaignTarget* t = find_campaign_target(name);
    ASSERT_NE(t, nullptr);
    CampaignOptions o = small_opts();
    o.plans = 20;
    const CampaignRun r = run_campaign(*t, o);
    EXPECT_TRUE(r.verdict_ok()) << name;
    ASSERT_GE(r.safety_violations(), 1) << name;
    for (const auto& v : r.violations) {
      if (!v.safety) continue;
      EXPECT_GT(v.tape_steps, 0) << name;
      ASSERT_GT(v.shrunk_steps, 0) << name;
      EXPECT_LE(v.shrunk_steps, v.tape_steps) << name;
      EXPECT_TRUE(v.shrunk_replay_ok) << name << " seed " << v.plan_seed;
      // The plan line is valid plan-v1 provenance.
      EXPECT_NO_THROW((void)FaultPlan::parse(v.plan)) << v.plan;
    }
  }
}

TEST(Campaign, RunsAreDeterministic) {
  const CampaignTarget* t = find_campaign_target("bcf");
  ASSERT_NE(t, nullptr);
  const CampaignRun a = run_campaign(*t, small_opts());
  const CampaignRun b = run_campaign(*t, small_opts());
  EXPECT_EQ(a.clean_plans, b.clean_plans);
  EXPECT_EQ(a.total_steps, b.total_steps);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].plan_seed, b.violations[i].plan_seed);
    EXPECT_EQ(a.violations[i].plan, b.violations[i].plan);
    EXPECT_EQ(a.violations[i].tape_steps, b.violations[i].tape_steps);
    EXPECT_EQ(a.violations[i].shrunk_steps, b.violations[i].shrunk_steps);
  }
}

TEST(Campaign, MonitorsOffSkipsLivenessAccounting) {
  const CampaignTarget* t = find_campaign_target("cons");
  ASSERT_NE(t, nullptr);
  CampaignOptions o = small_opts();
  o.plans = 3;
  o.monitors = false;
  const CampaignRun r = run_campaign(*t, o);
  EXPECT_TRUE(r.verdict_ok());
  EXPECT_EQ(r.monitored_steps, 0);
  EXPECT_EQ(r.wait_free_violations(), 0);
}

TEST(Campaign, JsonDocumentHasCampaignSchema) {
  const CampaignTarget* t = find_campaign_target("synth");
  ASSERT_NE(t, nullptr);
  CampaignOptions o = small_opts();
  o.plans = 6;
  std::vector<CampaignRun> runs;
  runs.push_back(run_campaign(*t, o));
  const telemetry::Json doc = campaign_json(runs, o);
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"efd-campaign-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"targets\""), std::string::npos);
  EXPECT_NE(text.find("\"plan_mix\""), std::string::npos);
  EXPECT_NE(text.find("\"violation_list\""), std::string::npos);
  // Round-trips through the telemetry parser.
  const telemetry::Json back = telemetry::Json::parse(text);
  EXPECT_EQ(back.dump(), text);
}

// Regression: plan seeds were derived from the plan INDEX alone, so every
// target swept the same plan sequence (perfectly correlated coverage) and
// two targets' tapes could collide on the same save stem. The seed mix must
// fold the target name.
TEST(Campaign, PlanSeedsDifferAcrossTargets) {
  int collisions = 0;
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t a = campaign_plan_seed(42, "cons", i);
    const std::uint64_t b = campaign_plan_seed(42, "ksa", i);
    const std::uint64_t c = campaign_plan_seed(42, "synth", i);
    if (a == b || b == c || a == c) ++collisions;
    // Same target, same index: stable.
    EXPECT_EQ(a, campaign_plan_seed(42, "cons", i));
  }
  EXPECT_EQ(collisions, 0);

  // And the sampled PLANS differ too, not just the seeds.
  const CampaignTarget* cons = find_campaign_target("cons");
  const CampaignTarget* ksa = find_campaign_target("ksa");
  ASSERT_NE(cons, nullptr);
  ASSERT_NE(ksa, nullptr);
  int distinct = 0;
  for (int i = 0; i < 16; ++i) {
    const FaultPlan pa =
        FaultPlan::sample(campaign_plan_seed(42, "cons", i), cons->space);
    const FaultPlan pb =
        FaultPlan::sample(campaign_plan_seed(42, "ksa", i), ksa->space);
    if (pa.to_string() != pb.to_string()) ++distinct;
  }
  EXPECT_GT(distinct, 8);
}

// Regression: violation tapes carried no record of WHY they were kept — a
// wait-freedom-only finding saved with expect_violated=false was
// indistinguishable from a mislabeled clean run. run_plan must stamp the
// monitor verdict into the tape's finding line, and it must round-trip.
TEST(Campaign, SafetyFindingsStampFindingProvenance) {
  const CampaignTarget* t = find_campaign_target("synth");
  ASSERT_NE(t, nullptr);
  bool found = false;
  for (int i = 0; i < 40 && !found; ++i) {
    const std::uint64_t seed = campaign_plan_seed(42, t->name, i);
    const PlanOutcome out = run_plan(*t, FaultPlan::sample(seed, t->space), seed, true);
    if (!out.safety) continue;
    found = true;
    EXPECT_TRUE(out.tape.finding == "safety" || out.tape.finding == "safety+wait-free")
        << out.tape.finding;
    EXPECT_EQ(out.tape.expect_violated, std::optional<bool>(true));
    // Serialization round-trips the finding line.
    const ScheduleTape back = ScheduleTape::parse(out.tape.serialize());
    EXPECT_EQ(back.finding, out.tape.finding);
  }
  EXPECT_TRUE(found) << "synth produced no safety finding in 40 plans";
}

TEST(Campaign, WaitFreeOnlyFindingsAreStampedAndKept) {
  // A correct algorithm with an absurdly tight wait-freedom bound: the
  // monitor fires with NO safety violation, and the tape must say so.
  CampaignTarget t = *find_campaign_target("cons");
  t.bounds.own_steps_to_decide = 1;
  bool found = false;
  for (int i = 0; i < 20 && !found; ++i) {
    const std::uint64_t seed = campaign_plan_seed(7, t.name, i);
    const PlanOutcome out = run_plan(t, FaultPlan{}, seed, true);
    if (!out.wait_free_bad || out.safety) continue;
    found = true;
    EXPECT_EQ(out.tape.finding, "wait-free");
    // The safety predicate did NOT fire: replay will report "ok, as
    // expected" — the finding line is what marks it a liveness finding.
    EXPECT_EQ(out.tape.expect_violated, std::optional<bool>(false));
    EXPECT_FALSE(out.detail.empty());
  }
  EXPECT_TRUE(found) << "tight bound produced no wait-freedom finding";
}

// Regression: the save-dir was (re-)created inside the per-violation loop
// with the failure ignored — an unwritable directory silently dropped every
// tape. It must be checked once, up front, with a typed error.
TEST(Campaign, UnwritableSaveDirFailsUpFront) {
  const CampaignTarget* t = find_campaign_target("cons");
  ASSERT_NE(t, nullptr);
  CampaignOptions o = small_opts();
  o.plans = 1;
  const std::string blocker =
      (std::filesystem::path(::testing::TempDir()) / "efd_campaign_blocker").string();
  std::ofstream(blocker) << "x";
  o.save_dir = blocker + "/pending";
  EXPECT_THROW((void)run_campaign(*t, o), CorpusIoError);
}

// Satellite of the fault-campaign issue: every campaign algorithm's safety
// checker must reject a KNOWN-BAD world — the checkers themselves are under
// test, not just the algorithms. Each scenario's `violated` predicate gets a
// seeded plan/schedule reproducing its canonical violation.
TEST(Campaign, SafetyCheckersRejectKnownBadRuns) {
  for (const char* name :
       {"synth_write_race", "buggy_cons_first_writer", "buggy_ren_stale_claim"}) {
    const Scenario* sc = find_scenario(name);
    ASSERT_NE(sc, nullptr);
    // The native recordings of the buggy scenarios are violating runs.
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
      const ScheduleTape tape = sc->record(seed);
      found = tape.expect_violated.value_or(false);
    }
    EXPECT_TRUE(found) << name << ": no violating recording in 40 seeds";
  }
  // buggy_torn_commit needs its fault plan (writer killed mid-pair).
  const Scenario* tw = find_scenario("buggy_torn_commit");
  ASSERT_NE(tw, nullptr);
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 60 && !found; ++seed) {
    found = tw->record(seed).expect_violated.value_or(false);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace efd
