// Tests for the snapshot objects (sim/snapshot.hpp): versioned atomic
// snapshots and one-shot immediate snapshots (self-inclusion, containment,
// immediacy — the Borowsky–Gafni properties).
#include <gtest/gtest.h>

#include "sim/memory.hpp"
#include "sim/schedule.hpp"
#include "sim/snapshot.hpp"
#include "sim/world.hpp"

namespace efd {
namespace {

Proc writer_then_snap(Context& ctx, int me, int n, Value v) {
  co_await versioned_write(ctx, "VS", me, v);
  const Value snap = co_await atomic_snapshot(ctx, "VS", n);
  co_await ctx.decide(snap);
}

TEST(AtomicSnapshot, SeesOwnWrite) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) { return writer_then_snap(ctx, 0, 2, Value(7)); });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  const Value snap = w.decision(cpid(0));
  EXPECT_EQ(snap.at(0).as_int(), 7);
  EXPECT_TRUE(snap.at(1).is_nil());
}

TEST(AtomicSnapshot, VersionedWritesIncreaseSeq) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) -> Proc {
    co_await versioned_write(ctx, "VS", 0, Value(1));
    co_await versioned_write(ctx, "VS", 0, Value(2));
    co_await ctx.decide(co_await ctx.read(reg("VS", 0)));
  });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  const Value cell = w.decision(cpid(0));
  EXPECT_EQ(cell.at(0).as_int(), 2);  // seq
  EXPECT_EQ(cell.at(1).as_int(), 2);  // value
}

TEST(AtomicSnapshot, SnapshotsAreMonotone) {
  // Across many random schedules: every process's snapshot contains its own
  // write, and later snapshots (by the same process) contain earlier ones.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const int n = 3;
    World w = World::failure_free(1);
    for (int i = 0; i < n; ++i) {
      w.spawn_c(i, [i, n](Context& ctx) { return writer_then_snap(ctx, i, n, Value(100 + i)); });
    }
    RandomScheduler rs(seed);
    const auto r = drive(w, rs, 50000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(w.decision(cpid(i)).at(static_cast<std::size_t>(i)).as_int(), 100 + i);
    }
  }
}

// ---- immediate snapshot ----

Proc is_participant(Context& ctx, int me, int n, Value v) {
  const Value view = co_await immediate_snapshot(ctx, "is", me, n, v);
  co_await ctx.decide(view);
}

void check_is_properties(const World& w, int n) {
  std::vector<Value> views;
  for (int i = 0; i < n; ++i) views.push_back(w.decision(cpid(i)));
  for (int i = 0; i < n; ++i) {
    ASSERT_FALSE(views[static_cast<std::size_t>(i)].is_nil());
    // Self-inclusion.
    EXPECT_TRUE(view_contains(views[static_cast<std::size_t>(i)], i)) << "p" << (i + 1);
    for (int j = 0; j < n; ++j) {
      const Value& vi = views[static_cast<std::size_t>(i)];
      const Value& vj = views[static_cast<std::size_t>(j)];
      // Containment: comparable.
      EXPECT_TRUE(view_subset(vi, vj) || view_subset(vj, vi)) << i << "," << j;
      // Immediacy.
      if (view_contains(vi, j)) EXPECT_TRUE(view_subset(vj, vi)) << i << "," << j;
    }
  }
}

TEST(ImmediateSnapshot, SoloViewIsSelf) {
  World w = World::failure_free(1);
  w.spawn_c(0, [](Context& ctx) { return is_participant(ctx, 0, 3, Value(5)); });
  RoundRobinScheduler rr;
  drive(w, rr, 1000);
  const Value view = w.decision(cpid(0));
  EXPECT_EQ(view_size(view), 1);
  EXPECT_EQ(view.at(0).as_int(), 5);
}

TEST(ImmediateSnapshot, LockstepGivesFullViews) {
  // All processes in lockstep descend together and land at the same level
  // with everyone in view.
  const int n = 3;
  World w = World::failure_free(1);
  for (int i = 0; i < n; ++i) {
    w.spawn_c(i, [i, n](Context& ctx) { return is_participant(ctx, i, n, Value(i)); });
  }
  RoundRobinScheduler rr;
  const auto r = drive(w, rr, 50000);
  ASSERT_TRUE(r.all_c_decided);
  check_is_properties(w, n);
}

class ImmediateSnapshotSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImmediateSnapshotSweep, PropertiesUnderRandomSchedules) {
  const std::uint64_t seed = GetParam();
  const int n = 4;
  World w = World::failure_free(1);
  for (int i = 0; i < n; ++i) {
    w.spawn_c(i, [i, n](Context& ctx) { return is_participant(ctx, i, n, Value(10 * i)); });
  }
  RandomScheduler rs(seed);
  const auto r = drive(w, rs, 200000);
  ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
  check_is_properties(w, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImmediateSnapshotSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(ViewHelpers, SubsetAndSize) {
  const Value a = vec(Value(1), kNil, Value(3));
  const Value b = vec(Value(1), Value(2), Value(3));
  EXPECT_TRUE(view_subset(a, b));
  EXPECT_FALSE(view_subset(b, a));
  EXPECT_EQ(view_size(a), 2);
  EXPECT_TRUE(view_contains(a, 0));
  EXPECT_FALSE(view_contains(a, 1));
}

}  // namespace
}  // namespace efd
