// Unit tests for the Value algebra (sim/value.hpp).
#include "sim/value.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace efd {
namespace {

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_FALSE(v.is_int());
  EXPECT_FALSE(v.is_str());
  EXPECT_FALSE(v.is_vec());
  EXPECT_EQ(v, kNil);
}

TEST(Value, IntRoundTrip) {
  Value v(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.int_or(-1), 42);
  EXPECT_EQ(Value(-7).as_int(), -7);
}

TEST(Value, IntOrFallsBackOnNonInt) {
  EXPECT_EQ(kNil.int_or(99), 99);
  EXPECT_EQ(Value("x").int_or(5), 5);
  EXPECT_EQ(Value(ValueVec{}).int_or(3), 3);
}

TEST(Value, BoolConvertsToInt) {
  EXPECT_EQ(Value(true).as_int(), 1);
  EXPECT_EQ(Value(false).as_int(), 0);
}

TEST(Value, StringRoundTrip) {
  Value v("hello");
  EXPECT_TRUE(v.is_str());
  EXPECT_EQ(v.as_str(), "hello");
}

TEST(Value, VectorRoundTrip) {
  Value v = vec(Value(1), Value("a"), kNil);
  ASSERT_TRUE(v.is_vec());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(0).as_int(), 1);
  EXPECT_EQ(v.at(1).as_str(), "a");
  EXPECT_TRUE(v.at(2).is_nil());
}

TEST(Value, AtOutOfRangeIsNil) {
  Value v = vec(Value(1));
  EXPECT_TRUE(v.at(5).is_nil());
  EXPECT_TRUE(Value(3).at(0).is_nil());  // non-vector
}

TEST(Value, SizeOfNonVectorIsZero) {
  EXPECT_EQ(kNil.size(), 0u);
  EXPECT_EQ(Value(7).size(), 0u);
  EXPECT_EQ(Value("abc").size(), 0u);
}

TEST(Value, StructuralEquality) {
  EXPECT_EQ(vec(Value(1), Value(2)), vec(Value(1), Value(2)));
  EXPECT_NE(vec(Value(1), Value(2)), vec(Value(2), Value(1)));
  EXPECT_EQ(Value("x"), Value(std::string("x")));
  EXPECT_NE(Value(1), Value("1"));
}

TEST(Value, DeepEqualityOnNestedVectors) {
  Value a = vec(vec(Value(1), kNil), Value("s"));
  Value b = vec(vec(Value(1), kNil), Value("s"));
  EXPECT_EQ(a, b);
}

TEST(Value, KindOrdering) {
  // Nil < Int < Str < Vec.
  EXPECT_LT(kNil, Value(0));
  EXPECT_LT(Value(123456), Value(""));
  EXPECT_LT(Value("zzz"), Value(ValueVec{}));
}

TEST(Value, IntOrdering) {
  EXPECT_LT(Value(-5), Value(3));
  EXPECT_LT(Value(3), Value(4));
}

TEST(Value, StringOrderingIsLexicographic) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
}

TEST(Value, VectorOrderingIsLexicographic) {
  EXPECT_LT(vec(Value(1)), vec(Value(1), Value(0)));
  EXPECT_LT(vec(Value(1), Value(2)), vec(Value(1), Value(3)));
  EXPECT_LT(vec(Value(0), Value(9)), vec(Value(1)));
}

TEST(Value, ToString) {
  EXPECT_EQ(kNil.to_string(), "nil");
  EXPECT_EQ(Value(5).to_string(), "5");
  EXPECT_EQ(Value("hi").to_string(), "\"hi\"");
  EXPECT_EQ(vec(Value(1), kNil).to_string(), "[1, nil]");
}

TEST(Value, HashIsStructural) {
  EXPECT_EQ(vec(Value(1), Value("a")).hash(), vec(Value(1), Value("a")).hash());
  EXPECT_NE(Value(1).hash(), Value(2).hash());
  EXPECT_NE(kNil.hash(), Value(0).hash());
  EXPECT_NE(Value("1").hash(), Value(1).hash());
}

TEST(Value, HashDistinguishesNestingShape) {
  EXPECT_NE(vec(vec(Value(1)), Value(2)).hash(), vec(Value(1), vec(Value(2))).hash());
}

TEST(Value, UsableInUnorderedSet) {
  std::unordered_set<Value> set;
  set.insert(Value(1));
  set.insert(vec(Value(1), Value(2)));
  set.insert(Value(1));  // duplicate
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(vec(Value(1), Value(2))));
}

TEST(Value, CopyIsCheapAndShared) {
  Value big(ValueVec(1000, Value(7)));
  Value copy = big;  // shares payload
  EXPECT_EQ(copy.size(), 1000u);
  EXPECT_EQ(copy, big);
}

// Property sweep: ordering is a strict total order on a sample of values.
class ValueOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueOrderProperty, TotalOrderAxioms) {
  const int seed = GetParam();
  std::vector<Value> vals = {
      kNil, Value(seed), Value(seed - 1), Value("s" + std::to_string(seed)),
      vec(Value(seed)), vec(Value(seed), kNil), vec(vec(Value(seed)))};
  for (const auto& a : vals) {
    EXPECT_EQ(a <=> a, std::strong_ordering::equal);
    for (const auto& b : vals) {
      // Antisymmetry & totality.
      const bool lt = a < b;
      const bool gt = b < a;
      const bool eq = a == b;
      EXPECT_EQ(lt + gt + eq, 1) << a.to_string() << " vs " << b.to_string();
      if (eq) EXPECT_EQ(a.hash(), b.hash());
      for (const auto& c : vals) {
        if (a < b && b < c) EXPECT_LT(a, c);  // transitivity
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderProperty, ::testing::Values(0, 1, 7, 42, 1000, -3));

}  // namespace
}  // namespace efd
