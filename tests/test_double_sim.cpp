// Dedicated coverage for the Thm. 9 double simulation (algo/double_sim.hpp)
// beyond the integration smoke: crash patterns, partial participation, and
// the k-concurrency the inner BG discipline enforces.
#include <gtest/gtest.h>

#include <set>

#include "algo/double_sim.hpp"
#include "algo/one_concurrent.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

SimProgramPtr task_program(const TaskPtr& task) {
  return std::make_shared<ReplayProgram>([task](int, const Value& input, Context& ctx) {
    return make_one_concurrent(task, input, "t9task")(ctx);
  });
}

Thm9Config make_cfg(int n, int k, const TaskPtr& task) {
  Thm9Config cfg;
  cfg.ns = "t9";
  cfg.n = n;
  cfg.k = k;
  cfg.task_code = task_program(task);
  return cfg;
}

TEST(DoubleSim, SurvivesSCrashes) {
  const int n = 3, k = 2;
  FailurePattern f(n);
  f.crash(0, 6);  // even the initially-preferred S-process may die
  VectorOmegaK vo(k, 50);
  World w(f, vo.history(f, 21));
  auto task = std::make_shared<SetAgreementTask>(n, k);
  const auto cfg = make_cfg(n, k, task);
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_thm9_simulator(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_thm9_server(cfg));
  RandomScheduler rs(4);
  const auto r = drive(w, rs, 30000000);
  ASSERT_TRUE(r.all_c_decided);
  ValueVec in{Value(0), Value(1), Value(2)};
  EXPECT_TRUE(task->relation(in, w.output_vector()));
}

TEST(DoubleSim, PartialParticipation) {
  // Only p1 and p3 participate; the non-participant's task code never starts
  // (its input register stays ⊥), yet the others decide.
  const int n = 3, k = 2;
  FailurePattern f(n);
  VectorOmegaK vo(k, 30);
  World w(f, vo.history(f, 5));
  auto task = std::make_shared<SetAgreementTask>(n, k);
  const auto cfg = make_cfg(n, k, task);
  w.spawn_c(0, make_thm9_simulator(cfg, Value(10)));
  w.spawn_c(2, make_thm9_simulator(cfg, Value(30)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_thm9_server(cfg));
  RandomScheduler rs(6);
  const auto r = drive(w, rs, 30000000);
  ASSERT_TRUE(r.all_c_decided);
  ValueVec in{Value(10), kNil, Value(30)};
  ValueVec out = w.output_vector();
  out.resize(static_cast<std::size_t>(n));
  EXPECT_TRUE(task->relation(in, out));
  EXPECT_TRUE(out[1].is_nil());
}

TEST(DoubleSim, AgreementBoundAcrossSeeds) {
  const int n = 3, k = 2;
  for (std::uint64_t seed : {2u, 8u}) {
    FailurePattern f(n);
    f.crash(static_cast<int>(seed % n), 10);
    VectorOmegaK vo(k, 40);
    World w(f, vo.history(f, seed));
    auto task = std::make_shared<SetAgreementTask>(n, k);
    const auto cfg = make_cfg(n, k, task);
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_thm9_simulator(cfg, Value(100 + i)));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_thm9_server(cfg));
    RandomScheduler rs(seed + 1);
    const auto r = drive(w, rs, 30000000);
    ASSERT_TRUE(r.all_c_decided) << "seed " << seed;
    std::set<std::int64_t> vals;
    for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
    EXPECT_LE(static_cast<int>(vals.size()), k) << "seed " << seed;
  }
}

}  // namespace
}  // namespace efd
