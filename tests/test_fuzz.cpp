// Randomized end-to-end fuzzing: across seeds, system sizes, fault loads and
// schedules, every algorithm keeps its task's safety invariants and decides
// in fair runs. These sweeps are the repository's failure-injection net —
// each case draws a fresh failure pattern AND a fresh schedule from the seed.
#include <gtest/gtest.h>

#include <set>

#include "algo/leader_consensus.hpp"
#include "algo/participating_set.hpp"
#include "algo/renaming.hpp"
#include "algo/set_agreement_antiomega.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "tasks/consensus.hpp"
#include "tasks/participating_set.hpp"
#include "tasks/renaming.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] std::uint64_t seed() const { return GetParam(); }
  [[nodiscard]] int pick(std::uint64_t salt, int lo, int hi) const {
    std::uint64_t z = seed() * 0x9E3779B97F4A7C15ULL + salt;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z ^= z >> 27;
    return lo + static_cast<int>(z % static_cast<std::uint64_t>(hi - lo + 1));
  }
};

TEST_P(Fuzz, ConsensusWithOmega) {
  const int n = pick(1, 2, 6);
  const int faults = pick(2, 0, n - 1);
  const FailurePattern f = Environment(n, n - 1).sample(seed(), faults, 20);
  OmegaFd omega(pick(3, 0, 60));
  World w(f, omega.history(f, seed()));
  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RandomScheduler rs(seed() ^ 0xABCDEF);
  const auto r = drive(w, rs, 600000);
  ASSERT_TRUE(r.all_c_decided) << "n=" << n << " " << f.to_string();
  std::set<std::int64_t> vals;
  for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(vals.size(), 1u);
  EXPECT_GE(*vals.begin(), 0);
  EXPECT_LT(*vals.begin(), n);
}

TEST_P(Fuzz, KsaWithVecOmega) {
  const int n = pick(4, 3, 6);
  const int k = pick(5, 1, n - 1);
  const int faults = pick(6, 0, n - 1);
  const FailurePattern f = Environment(n, n - 1).sample(seed() + 1, faults, 15);
  VectorOmegaK vo(k, pick(7, 10, 80));
  World w(f, vo.history(f, seed()));
  const KsaConfig cfg{"ksa", n, k};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_ksa_server(cfg));
  RandomScheduler rs(seed() ^ 0x123457);
  const auto r = drive(w, rs, 1500000);
  ASSERT_TRUE(r.all_c_decided) << "n=" << n << " k=" << k << " " << f.to_string();
  SetAgreementTask task(n, k);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  EXPECT_TRUE(task.relation(in, w.output_vector()));
}

TEST_P(Fuzz, RenamingUnderRandomWindow) {
  const int j = pick(8, 2, 5);
  const int n = j + pick(9, 1, 3);
  const int kconc = pick(10, 1, j);
  const RenamingTask task(n, j, j + kconc - 1);
  const ValueVec in = task.sample_input(seed());
  const auto arrival = Task::participants(in);
  World w = World::failure_free(1);
  w.enable_trace();
  const RenamingConfig cfg{"ren", n};
  for (int i : arrival) {
    w.spawn_c(i, make_renaming_kconc(cfg, in[static_cast<std::size_t>(i)]));
  }
  KConcurrencyScheduler ks(kconc, arrival, 0);
  const auto r = drive(w, ks, 500000);
  ASSERT_TRUE(r.all_c_decided) << "j=" << j << " k=" << kconc;
  EXPECT_LE(max_concurrency(w.trace()), kconc);
  ValueVec out(static_cast<std::size_t>(n));
  for (int i : arrival) out[static_cast<std::size_t>(i)] = w.decision(cpid(i));
  EXPECT_TRUE(task.relation(in, out)) << "j=" << j << " k=" << kconc;
}

TEST_P(Fuzz, ParticipatingSetAnyConcurrency) {
  const int n = pick(11, 2, 5);
  auto task = std::make_shared<ParticipatingSetTask>(n);
  const ValueVec in = task->sample_input(seed());
  World w = World::failure_free(1);
  const ParticipatingSetConfig cfg{"ps", n};
  for (int i = 0; i < n; ++i) {
    w.spawn_c(i, make_participating_set_solver(cfg, in[static_cast<std::size_t>(i)]));
  }
  RandomScheduler rs(seed() ^ 0x777);
  const auto r = drive(w, rs, 400000);
  ASSERT_TRUE(r.all_c_decided) << "n=" << n;
  EXPECT_TRUE(task->relation(in, w.output_vector()));
}

TEST_P(Fuzz, NoAdviceNsaEveryEnvironment) {
  const int n = pick(12, 2, 6);
  const int faults = pick(13, 0, n - 1);
  const FailurePattern f = Environment(n, n - 1).sample(seed() + 2, faults, 12);
  TrivialFd trivial;
  World w(f, trivial.history(f, 0));
  const KsaConfig cfg{"nsa", n, n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_nsa_noadvice_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_nsa_noadvice_server(cfg));
  RandomScheduler rs(seed() ^ 0x9999);
  const auto r = drive(w, rs, 400000);
  ASSERT_TRUE(r.all_c_decided) << f.to_string();
  SetAgreementTask task(n, n);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  EXPECT_TRUE(task.relation(in, w.output_vector()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace efd
