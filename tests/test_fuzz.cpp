// Randomized end-to-end fuzzing: across seeds, system sizes, fault loads and
// schedules, every algorithm keeps its task's safety invariants and decides
// in fair runs. These sweeps are the repository's failure-injection net —
// each case draws a fresh failure pattern AND a fresh schedule from the seed.
//
// Tests that record their run (via RecordingScheduler) stash the captured
// ScheduleTape in the fixture; on failure TearDown auto-dumps it as
// <suite>_<test>_seed<N>.tape so the exact failing schedule can be replayed,
// shrunk (tools/efd_repro) and promoted into tests/corpus/. Dump target:
// $EFD_TAPE_DUMP_DIR if set, else tests/corpus/pending/.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <set>

#include "algo/bg_simulation.hpp"
#include "algo/mp_protocols.hpp"
#include "algo/extraction.hpp"
#include "algo/k_codes_sim.hpp"
#include "algo/leader_consensus.hpp"
#include "algo/participating_set.hpp"
#include "algo/renaming.hpp"
#include "algo/set_agreement_antiomega.hpp"
#include "fd/detectors.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"
#include "tasks/consensus.hpp"
#include "tasks/participating_set.hpp"
#include "tasks/renaming.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] std::uint64_t seed() const { return GetParam(); }
  [[nodiscard]] int pick(std::uint64_t salt, int lo, int hi) const {
    std::uint64_t z = seed() * 0x9E3779B97F4A7C15ULL + salt;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z ^= z >> 27;
    return lo + static_cast<int>(z % static_cast<std::uint64_t>(hi - lo + 1));
  }

  /// Tests that record their run park the tape here for the failure dump.
  void stash_tape(ScheduleTape tape) { tape_ = std::move(tape); }

  /// Captures `w`'s recorded run as a tape, stashes it for the failure dump,
  /// and checks the text round-trip replays bit-identically in a fresh world
  /// built by `make_world(pattern, history)` — the tape alone (no detector
  /// object, no scheduler state) must reproduce the run.
  template <class MakeWorld>
  void expect_tape_roundtrip(const World& w, const FailurePattern& base,
                             const RecordingScheduler& rec, MakeWorld&& make_world) {
    ScheduleTape tape = ScheduleTape::capture("", base, rec.steps(), {}, w.trace());
    const ScheduleTape parsed = ScheduleTape::parse(tape.serialize());
    stash_tape(std::move(tape));
    World w2 = make_world(parsed.pattern(), parsed.history());
    const ReplayResult rr = replay_tape(w2, parsed);
    EXPECT_TRUE(rr.hash_match) << "tape round-trip diverged from the recording";
  }

  void TearDown() override {
    if (!HasFailure() || !tape_) return;
    namespace fs = std::filesystem;
    const char* env = std::getenv("EFD_TAPE_DUMP_DIR");
    const fs::path dir = env ? fs::path(env) : fs::path(EFD_CORPUS_DIR) / "pending";
    std::error_code ec;
    fs::create_directories(dir, ec);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = std::string(info->test_suite_name()) + "_" + info->name() + "_seed" +
                       std::to_string(seed()) + ".tape";
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    try {
      save_tape(*tape_, (dir / name).string());
      std::fprintf(stderr, "[  TAPE    ] dumped failing schedule to %s\n",
                   (dir / name).string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[  TAPE    ] dump failed: %s\n", e.what());
    }
  }

 private:
  std::optional<ScheduleTape> tape_;
};

TEST_P(Fuzz, ConsensusWithOmega) {
  const int n = pick(1, 2, 6);
  const int faults = pick(2, 0, n - 1);
  const FailurePattern f = Environment(n, n - 1).sample(seed(), faults, 20);
  OmegaFd omega(pick(3, 0, 60));
  World w(f, omega.history(f, seed()));
  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_consensus_server(cfg));
  RandomScheduler rs(seed() ^ 0xABCDEF);
  const auto r = drive(w, rs, 600000);
  ASSERT_TRUE(r.all_c_decided) << "n=" << n << " " << f.to_string();
  std::set<std::int64_t> vals;
  for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(vals.size(), 1u);
  EXPECT_GE(*vals.begin(), 0);
  EXPECT_LT(*vals.begin(), n);
}

TEST_P(Fuzz, KsaWithVecOmega) {
  const int n = pick(4, 3, 6);
  const int k = pick(5, 1, n - 1);
  const int faults = pick(6, 0, n - 1);
  const FailurePattern f = Environment(n, n - 1).sample(seed() + 1, faults, 15);
  VectorOmegaK vo(k, pick(7, 10, 80));
  World w(f, vo.history(f, seed()));
  const KsaConfig cfg{"ksa", n, k};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_ksa_server(cfg));
  RandomScheduler rs(seed() ^ 0x123457);
  const auto r = drive(w, rs, 1500000);
  ASSERT_TRUE(r.all_c_decided) << "n=" << n << " k=" << k << " " << f.to_string();
  SetAgreementTask task(n, k);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  EXPECT_TRUE(task.relation(in, w.output_vector()));
}

TEST_P(Fuzz, RenamingUnderRandomWindow) {
  const int j = pick(8, 2, 5);
  const int n = j + pick(9, 1, 3);
  const int kconc = pick(10, 1, j);
  const RenamingTask task(n, j, j + kconc - 1);
  const ValueVec in = task.sample_input(seed());
  const auto arrival = Task::participants(in);
  World w = World::failure_free(1);
  w.enable_trace();
  const RenamingConfig cfg{"ren", n};
  for (int i : arrival) {
    w.spawn_c(i, make_renaming_kconc(cfg, in[static_cast<std::size_t>(i)]));
  }
  KConcurrencyScheduler ks(kconc, arrival, 0);
  const auto r = drive(w, ks, 500000);
  ASSERT_TRUE(r.all_c_decided) << "j=" << j << " k=" << kconc;
  EXPECT_LE(max_concurrency(w.trace()), kconc);
  ValueVec out(static_cast<std::size_t>(n));
  for (int i : arrival) out[static_cast<std::size_t>(i)] = w.decision(cpid(i));
  EXPECT_TRUE(task.relation(in, out)) << "j=" << j << " k=" << kconc;
}

TEST_P(Fuzz, ParticipatingSetAnyConcurrency) {
  const int n = pick(11, 2, 5);
  auto task = std::make_shared<ParticipatingSetTask>(n);
  const ValueVec in = task->sample_input(seed());
  World w = World::failure_free(1);
  const ParticipatingSetConfig cfg{"ps", n};
  for (int i = 0; i < n; ++i) {
    w.spawn_c(i, make_participating_set_solver(cfg, in[static_cast<std::size_t>(i)]));
  }
  RandomScheduler rs(seed() ^ 0x777);
  const auto r = drive(w, rs, 400000);
  ASSERT_TRUE(r.all_c_decided) << "n=" << n;
  EXPECT_TRUE(task->relation(in, w.output_vector()));
}

TEST_P(Fuzz, NoAdviceNsaEveryEnvironment) {
  const int n = pick(12, 2, 6);
  const int faults = pick(13, 0, n - 1);
  const FailurePattern f = Environment(n, n - 1).sample(seed() + 2, faults, 12);
  TrivialFd trivial;
  World w(f, trivial.history(f, 0));
  const KsaConfig cfg{"nsa", n, n};
  for (int i = 0; i < n; ++i) w.spawn_c(i, make_nsa_noadvice_client(cfg, Value(i)));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_nsa_noadvice_server(cfg));
  RandomScheduler rs(seed() ^ 0x9999);
  const auto r = drive(w, rs, 400000);
  ASSERT_TRUE(r.all_c_decided) << f.to_string();
  SetAgreementTask task(n, n);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  EXPECT_TRUE(task.relation(in, w.output_vector()));
}

// ---- end-to-end targets with tape capture ---------------------------------
//
// The three simulation pipelines (k-codes, BG, extraction) fuzzed with the
// same seed/pick scaffold. Each records its schedule, asserts task safety,
// and round-trips the captured tape — so any failure ships with a replayable
// artifact (see TearDown) and the tape pipeline itself is fuzzed across the
// full parameter space for free.

// Code under simulation: read a register `reads` times, then decide
// 1000 + own index (structure from the k-codes unit tests).
struct FuzzSpinReadCode final : SimProgram {
  int reads;
  explicit FuzzSpinReadCode(int reads) : reads(reads) {}
  Value init(int idx, const Value&) const override { return vec(Value(idx), Value(0)); }
  SimAction action(const Value& st) const override {
    const auto c = st.at(1).int_or(0);
    if (c < reads) return {SimAction::Kind::kRead, "kcx", {}};
    if (c == reads) return {SimAction::Kind::kDecide, "", Value(1000 + st.at(0).int_or(0))};
    return {};
  }
  Value transition(const Value& st, const Value&) const override {
    return vec(st.at(0), Value(st.at(1).int_or(0) + 1));
  }
};

// Colorless min-of-inputs code with write-once registers (BG contract).
struct FuzzMinCode final : SimProgram {
  int n;
  explicit FuzzMinCode(int n) : n(n) {}
  Value init(int idx, const Value& input) const override {
    return vec(Value(idx), input, Value(0), input);  // [idx, input, next_read, min]
  }
  SimAction action(const Value& st) const override {
    const auto stage = st.at(2).int_or(0);
    if (stage == -1) return {};
    if (stage == 0) {
      return {SimAction::Kind::kWrite, reg("mc/in", static_cast<int>(st.at(0).int_or(0))),
              st.at(1)};
    }
    if (stage <= n) return {SimAction::Kind::kRead, reg("mc/in", static_cast<int>(stage) - 1), {}};
    return {SimAction::Kind::kDecide, "", st.at(3)};
  }
  Value transition(const Value& st, const Value& result) const override {
    const auto stage = st.at(2).int_or(0);
    Value min = st.at(3);
    if (stage >= 1 && stage <= n && result.is_int() &&
        (min.is_nil() || result.as_int() < min.as_int())) {
      min = result;
    }
    const std::int64_t next = stage > n ? -1 : stage + 1;
    return vec(st.at(0), st.at(1), Value(next), min);
  }
};

KCodesHarvest fuzz_first_decision() {
  return [](const ValueVec& d) {
    for (const auto& v : d) {
      if (!v.is_nil()) return v;
    }
    return Value{};
  };
}

TEST_P(Fuzz, KCodesSimulationEndToEnd) {
  const int n = pick(14, 3, 4);
  const int k = pick(15, 1, n - 1);
  const int faults = pick(16, 0, n - 2);
  const FailurePattern f = Environment(n, n - 1).sample(seed() + 3, faults, 12);
  VectorOmegaK vo(k, pick(17, 20, 60));
  KCodesConfig cfg;
  cfg.ns = "kc";
  cfg.n = n;
  cfg.k = k;
  cfg.code = std::make_shared<FuzzSpinReadCode>(pick(18, 2, 4));
  cfg.inputs.assign(static_cast<std::size_t>(k), Value(0));
  const auto make_world = [&](const FailurePattern& fp, HistoryPtr h) {
    World w(fp, std::move(h));
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_kcodes_simulator(cfg, fuzz_first_decision()));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_kcodes_server(cfg));
    return w;
  };

  World w = make_world(f, vo.history(f, seed()));
  w.enable_trace();
  RandomScheduler rs(seed() ^ 0xC0DE5);
  RecordingScheduler rec(rs);
  const auto r = drive(w, rec, 3000000);
  expect_tape_roundtrip(w, f, rec, make_world);

  ASSERT_TRUE(r.all_c_decided) << "n=" << n << " k=" << k << " " << f.to_string();
  for (int i = 0; i < n; ++i) {
    const auto d = w.decision(cpid(i)).as_int();
    EXPECT_GE(d, 1000);
    EXPECT_LT(d, 1000 + k);  // decisions come from one of the k codes
  }
}

TEST_P(Fuzz, BgSimulationEndToEnd) {
  const int sims = pick(19, 2, 4);
  const int codes = pick(20, 1, 3);
  BgConfig cfg;
  cfg.ns = "bg";
  cfg.num_simulators = sims;
  cfg.num_codes = codes;
  cfg.code = std::make_shared<FuzzMinCode>(sims);
  const auto make_world = [&](const FailurePattern& fp, HistoryPtr h) {
    World w(fp, std::move(h));
    for (int i = 0; i < sims; ++i) {
      w.spawn_c(i, make_bg_simulator(cfg, Value(10 + i), adopt_any()));
    }
    return w;
  };

  const FailurePattern f(1);
  TrivialFd trivial;
  World w = make_world(f, trivial.history(f, 0));
  w.enable_trace();
  RandomScheduler rs(seed() ^ 0xB6B6);
  RecordingScheduler rec(rs);
  const auto r = drive(w, rec, 400000);
  expect_tape_roundtrip(w, f, rec, make_world);

  ASSERT_TRUE(r.all_c_decided) << "sims=" << sims << " codes=" << codes;
  // MinCode decides the minimum input it saw — some simulator's input.
  for (int i = 0; i < sims; ++i) {
    const auto d = w.decision(cpid(i)).as_int();
    EXPECT_GE(d, 10);
    EXPECT_LT(d, 10 + sims);
  }
  // Published code decisions are single-valued per code and in range.
  for (int c = 0; c < codes; ++c) {
    const Value dec = w.memory().read(reg("bg/dec", c));
    if (!dec.is_nil()) {
      EXPECT_GE(dec.as_int(), 10);
      EXPECT_LT(dec.as_int(), 10 + sims);
    }
  }
}

TEST_P(Fuzz, ExtractionReductionEndToEnd) {
  // The Fig. 1 pipeline under fuzzed environments: extraction S-processes
  // sample →Ωk into a DAG and emulate ¬Ωk; the emulated history must satisfy
  // AntiOmegaK::check on the run's horizon. Replicates run_reduction's world
  // shape inline so the schedule can be recorded.
  const int n = 4, k = 2;
  FailurePattern f(n);
  f.crash(pick(21, 0, n - 1), Time{pick(22, 10, 40)});
  VectorOmegaK vo(k, pick(23, 30, 80));

  ExtractionConfig cfg;
  cfg.ns = "ex";
  cfg.n = n;
  cfg.k = k;
  cfg.explore_every = 2;
  cfg.budget0 = 4000;
  cfg.budget_step = 4000;
  cfg.max_budget = 24000;
  const auto make_world = [&](const FailurePattern& fp, HistoryPtr h) {
    World w(fp, std::move(h));
    for (int i = 0; i < n; ++i) w.spawn_s(i, make_extraction_sproc(cfg));
    return w;
  };

  World w = make_world(f, vo.history(f, seed()));
  w.enable_trace();
  RoundRobinScheduler rr;
  RecordingScheduler rec(rr);
  const auto r = drive(w, rec, 7000);
  EXPECT_TRUE(r.budget_exhausted);  // S-only world: never vacuously decided
  expect_tape_roundtrip(w, f, rec, make_world);

  const auto h = emulated_history_from_trace(w.trace(), cfg);
  EXPECT_TRUE(AntiOmegaK::check(k, f, *h, w.now())) << "seed " << seed();
}

// ---- message-passing world targets (sim/msg_world, daemon mode) -----------
//
// Same scaffold, second substrate: per-link FIFO channels, deliveries taken
// by the n*m link daemons as ordinary schedulable S-steps, partitions as
// daemon crashes. Each run records its schedule, asserts task safety, and
// round-trips the tape — MP runs must replay bit-identically through the
// unchanged efd-tape-v1 path, fuzzed across the parameter space.

TEST_P(Fuzz, MpFloodMinEndToEnd) {
  // FloodMin (f = 1) under an optional one-sided partition: a victim's
  // outbound links are all severed at a fuzzed time. The n - 1 other senders
  // still satisfy every process's n - f threshold, so all decide, and any
  // (n-f)-subset of inputs contains one of the 2 smallest: 2-set agreement.
  const int n = pick(24, 3, 4);
  const FloodMinConfig cfg{n, 1};
  FailurePattern base(n * n);
  if (pick(25, 0, 1) == 1) {
    const int victim = pick(26, 0, n - 1);
    const Time t{pick(27, 0, 25)};
    for (int j = 0; j < n; ++j) {
      if (j != victim) sever_link(base, n, victim, j, t);
    }
  }
  const auto make_world = [&](const FailurePattern& fp, HistoryPtr h) {
    World w = make_mp_world(n, n, fp, std::move(h));
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_floodmin(cfg, i, Value(i)));
    return w;
  };
  TrivialFd trivial;
  World w = make_world(base, trivial.history(base, 0));
  w.enable_trace();
  RandomScheduler rs(seed() ^ 0xF10D);
  RecordingScheduler rec(rs);
  const auto r = drive(w, rec, 300000);
  expect_tape_roundtrip(w, base, rec, make_world);

  ASSERT_TRUE(r.all_c_decided) << "n=" << n << " " << base.to_string();
  EXPECT_GT(w.run_stats().delivers, 0) << "daemon-mode runs must take deliver steps";
  SetAgreementTask task(n, 2);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  EXPECT_TRUE(task.relation(in, w.output_vector()));
}

TEST_P(Fuzz, MpConsensusOmegaFlood) {
  // Hybrid consensus: clients flood proposals over per-link channels to the
  // server mailboxes; the crash-prone, Omega-advised servers run the proven
  // register adopt-commit chain and publish DEC. Servers sit at S-indices
  // 0..ns-1, BELOW the link daemons, so the lowest-correct-index leader the
  // detector stabilizes on is a server, never a daemon.
  const int n = pick(28, 2, 4);
  const MpConsensusConfig cfg{"mpc", 2};
  const int ns = cfg.n_servers;
  FailurePattern base(ns + n * ns);
  if (pick(30, 0, 1) == 1) base.crash(pick(29, 0, ns - 1), Time{pick(31, 5, 40)});
  OmegaFd omega(pick(32, 0, 60));
  const auto make_world = [&](const FailurePattern& fp, HistoryPtr h) {
    World w = make_mp_world(n, ns, fp, std::move(h), /*s_base=*/ns);
    for (int i = 0; i < n; ++i) w.spawn_c(i, make_mp_consensus_client(cfg, Value(20 + i)));
    for (int j = 0; j < ns; ++j) w.spawn_s(j, make_mp_consensus_server(cfg));
    return w;
  };
  World w = make_world(base, omega.history(base, seed()));
  w.enable_trace();
  RandomScheduler rs(seed() ^ 0x5B5B);
  RecordingScheduler rec(rs);
  const auto r = drive(w, rec, 800000);
  expect_tape_roundtrip(w, base, rec, make_world);

  ASSERT_TRUE(r.all_c_decided) << "n=" << n << " " << base.to_string();
  std::set<std::int64_t> vals;
  for (int i = 0; i < n; ++i) vals.insert(w.decision(cpid(i)).as_int());
  EXPECT_EQ(vals.size(), 1u) << "consensus agreement";
  EXPECT_GE(*vals.begin(), 20);
  EXPECT_LT(*vals.begin(), 20 + n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace efd
