// Dedup-layer tests: the FlatSigSet bugfix pass, the ShardedSigSet atomic
// size counter, and the tiered out-of-core store (core/diskset.hpp).
//
//  * FlatSigSet regression — inserting a DUPLICATE at the 70% load boundary
//    must not grow the table (the old code ran the grow check before
//    probing), and the aside-tracked zero signature must not count toward
//    the load factor;
//  * ShardedSigSet::size() — hammered from 8 writer threads while a poller
//    asserts monotonicity (the old stripe-by-stripe sum could return totals
//    no single moment exhibited);
//  * TieredSigSet property tests against a std::unordered_set oracle —
//    random streams with duplicates, forced spills at tiny byte budgets,
//    merge-then-query equivalence, and the mem-exhaustion latch;
//  * explorer integration — ExploreOutcome through the disk tier is
//    byte-identical to the plain store across {1,2,8} threads, and a
//    memory-capped store with no disk tier degrades to a lower bound.
//
// Labeled `dedup` in ctest; sized to stay viable under ASan/TSan builds.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "algo/one_concurrent.hpp"
#include "core/diskset.hpp"
#include "core/sigset.hpp"
#include "core/solvability.hpp"
#include "core/workpool.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

// ---------------------------------------------------------------------------
// FlatSigSet bugfix regressions.
// ---------------------------------------------------------------------------

/// Distinct non-zero signatures, deterministic (splitmix64 stream).
std::vector<std::uint64_t> distinct_sigs(std::size_t n, std::uint64_t seed = 42) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  std::uint64_t x = seed;
  while (out.size() < n) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    if (z != 0) out.push_back(z);
  }
  return out;
}

TEST(FlatSigSet, DuplicateAtLoadBoundaryDoesNotGrowTable) {
  FlatSigSet set;
  const std::size_t initial_bytes = set.bytes();  // 1024 slots
  // Fill to one below the growth boundary: with 1024 slots the table grows
  // on the insert that would make (table_size + 1) * 10 >= 1024 * 7, i.e.
  // while placing the 717th distinct non-zero signature.
  const auto sigs = distinct_sigs(716);
  for (const std::uint64_t s : sigs) ASSERT_TRUE(set.insert(s));
  ASSERT_EQ(set.bytes(), initial_bytes) << "716 entries must fit in 1024 slots";

  // The regression: duplicates at the boundary triggered a spurious doubling
  // when the grow check ran before the probe. Re-insert every signature —
  // the table must not move.
  for (const std::uint64_t s : sigs) EXPECT_FALSE(set.insert(s));
  EXPECT_EQ(set.bytes(), initial_bytes) << "duplicate insert grew the table";
  EXPECT_EQ(set.size(), sigs.size());

  // The 717th distinct signature is the legitimate growth trigger.
  EXPECT_TRUE(set.insert(distinct_sigs(1, 777)[0]));
  EXPECT_EQ(set.bytes(), initial_bytes * 2);
}

TEST(FlatSigSet, AsideZeroDoesNotSkewLoadFactor) {
  FlatSigSet set;
  const std::size_t initial_bytes = set.bytes();
  EXPECT_TRUE(set.insert(0));    // tracked aside: occupies no slot
  EXPECT_FALSE(set.insert(0));   // duplicate zero
  const auto sigs = distinct_sigs(716);
  for (const std::uint64_t s : sigs) ASSERT_TRUE(set.insert(s));
  // 716 slot-occupying entries + the aside zero: were the zero counted
  // toward the load factor, the table would already have doubled.
  EXPECT_EQ(set.bytes(), initial_bytes);
  EXPECT_EQ(set.size(), sigs.size() + 1);
  EXPECT_TRUE(set.contains(0));
}

TEST(FlatSigSet, DrainIntoMovesEverythingAndResets) {
  FlatSigSet set;
  const auto sigs = distinct_sigs(1000);
  for (const std::uint64_t s : sigs) set.insert(s);
  set.insert(0);
  const std::size_t grown_bytes = set.bytes();
  EXPECT_GT(grown_bytes, 1024 * sizeof(std::uint64_t));

  std::vector<std::uint64_t> drained;
  set.drain_into(drained);
  EXPECT_EQ(drained.size(), sigs.size() + 1);
  std::unordered_set<std::uint64_t> want(sigs.begin(), sigs.end());
  want.insert(0);
  for (const std::uint64_t s : drained) EXPECT_TRUE(want.count(s)) << s;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.bytes(), 1024 * sizeof(std::uint64_t)) << "drain must release the table";
  // Drained signatures read as fresh again.
  EXPECT_TRUE(set.insert(sigs[0]));
  EXPECT_TRUE(set.insert(0));
}

// ---------------------------------------------------------------------------
// ShardedSigSet atomic size.
// ---------------------------------------------------------------------------

TEST(ShardedSigSet, SizeIsMonotonicUnderConcurrentInserts) {
  ShardedSigSet set;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> done{false};
  std::atomic<bool> monotonic{true};

  std::thread poller([&] {
    std::size_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t now = set.size();
      if (now < last) monotonic.store(false, std::memory_order_relaxed);
      last = now;
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Disjoint ranges: every insert is a first insert.
      const std::uint64_t base = 1 + static_cast<std::uint64_t>(t) * kPerThread;
      for (std::uint64_t i = 0; i < kPerThread; ++i) set.insert(base + i);
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  poller.join();

  EXPECT_TRUE(monotonic.load()) << "size() went backwards mid-sweep (torn total)";
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(ShardedSigSet, SizeCountsDuplicatesOnce) {
  ShardedSigSet set;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t s = 1; s <= 5000; ++s) set.insert(s);
  }
  EXPECT_EQ(set.size(), 5000u);
}

// ---------------------------------------------------------------------------
// TieredSigSet vs std::unordered_set oracle.
// ---------------------------------------------------------------------------

/// Feeds an identical random stream (with many duplicates, including 0) to
/// the store and an oracle; every insert verdict must match.
void oracle_stream(TieredSigSet& store, std::size_t n, std::uint64_t seed,
                   std::uint64_t key_range) {
  std::mt19937_64 rng(seed);
  std::unordered_set<std::uint64_t> oracle;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t sig = rng() % key_range;  // small range forces dups
    const bool fresh_oracle = oracle.insert(sig).second;
    const bool fresh_store = store.insert(sig);
    ASSERT_EQ(fresh_store, fresh_oracle)
        << "insert #" << i << " sig " << sig << " diverged from the oracle";
  }
  EXPECT_EQ(store.size(), oracle.size());
  // Merge-then-query equivalence: everything ever inserted reads as a
  // duplicate, wherever it now lives (tier 1 table or merged disk runs).
  for (const std::uint64_t sig : oracle) {
    EXPECT_FALSE(store.insert(sig)) << "sig " << sig << " lost after spill/merge";
  }
  EXPECT_EQ(store.size(), oracle.size());
}

TEST(TieredSigSet, PlainConfigMatchesOracle) {
  DedupConfig cfg;  // plain: no budget, no disk — tier-0 cache still active
  TieredSigSet store(cfg);
  oracle_stream(store, 60000, 7, 40000);
  EXPECT_FALSE(store.mem_exhausted());
  const TierStats t = store.tier_stats();
  EXPECT_EQ(t.spills, 0);
  EXPECT_EQ(t.cold_hits, 0);
}

TEST(TieredSigSet, TinyBudgetSpillsToDiskAndMatchesOracle) {
  DedupConfig cfg;
  cfg.disk_tier = true;
  cfg.mem_budget_bytes = 64 * 1024;  // 4 KiB floor per shard: spills constantly
  TieredSigSet store(cfg);
  oracle_stream(store, 60000, 11, 40000);
  EXPECT_FALSE(store.mem_exhausted());
  const TierStats t = store.tier_stats();
  EXPECT_GT(t.spills, 0) << "budget this small must spill";
  EXPECT_GT(t.spilled_sigs, 0);
  EXPECT_GT(t.spill_bytes, 0);
  EXPECT_GT(t.merges, 0) << "enough spills per shard must trigger run merges";
  EXPECT_GT(t.cold_hits, 0) << "post-merge queries must hit the disk runs";
}

TEST(TieredSigSet, RecentCacheDisabledStillMatchesOracle) {
  DedupConfig cfg;
  cfg.disk_tier = true;
  cfg.mem_budget_bytes = 64 * 1024;
  cfg.recent_bits = 0;  // tier-0 off: every duplicate takes the locked path
  TieredSigSet store(cfg);
  oracle_stream(store, 30000, 13, 20000);
  EXPECT_EQ(store.tier_stats().recent_hits, 0);
}

TEST(TieredSigSet, ConcurrentInsertersAgreeWithOracleSet) {
  DedupConfig cfg;
  cfg.disk_tier = true;
  cfg.mem_budget_bytes = 64 * 1024;
  TieredSigSet store(cfg);
  constexpr int kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  std::atomic<std::int64_t> fresh_total{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      std::int64_t fresh = 0;
      for (std::size_t i = 0; i < kPerThread; ++i) {
        if (store.insert(rng() % 50000)) ++fresh;
      }
      fresh_total.fetch_add(fresh, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  // First-insert-wins: across all threads exactly one insert per distinct
  // signature reported fresh, so the fresh count equals the union's size.
  std::unordered_set<std::uint64_t> oracle;
  for (int t = 0; t < kThreads; ++t) {
    std::mt19937_64 rng(1000 + t);
    for (std::size_t i = 0; i < kPerThread; ++i) oracle.insert(rng() % 50000);
  }
  EXPECT_EQ(fresh_total.load(), static_cast<std::int64_t>(oracle.size()));
  EXPECT_EQ(store.size(), oracle.size());
  for (const std::uint64_t sig : oracle) EXPECT_FALSE(store.insert(sig));
}

TEST(TieredSigSet, MemBudgetWithoutDiskLatchesExhaustion) {
  DedupConfig cfg;
  cfg.mem_budget_bytes = 64 * 1024;  // capped, nowhere to spill
  TieredSigSet store(cfg);
  std::unordered_set<std::uint64_t> oracle;
  std::mt19937_64 rng(17);
  for (std::size_t i = 0; i < 30000; ++i) {
    const std::uint64_t sig = rng();
    // Insert semantics stay exact even past the latch; only the flag trips.
    ASSERT_EQ(store.insert(sig), oracle.insert(sig).second);
  }
  EXPECT_TRUE(store.mem_exhausted());
  EXPECT_EQ(store.size(), oracle.size());
}

TEST(TieredSigSet, SpillDirIsRemovedOnDestruction) {
  std::string dir;
  {
    DedupConfig cfg;
    cfg.disk_tier = true;
    cfg.mem_budget_bytes = 64 * 1024;
    TieredSigSet store(cfg);
    for (std::uint64_t s = 1; s <= 20000; ++s) store.insert(s);
    dir = store.spill_dir();
    ASSERT_FALSE(dir.empty()) << "spills must have created the directory";
    // Run files are unlinked at mmap time: the directory exists but is empty.
  }
  struct stat st {};
  EXPECT_NE(::stat(dir.c_str(), &st), 0) << dir << " leaked after destruction";
}

// ---------------------------------------------------------------------------
// DedupConfig::from_env.
// ---------------------------------------------------------------------------

/// setenv/unsetenv guard (tests run single-threaded).
struct EnvGuard {
  std::string key;
  EnvGuard(const std::string& k, const std::string& v) : key(k) {
    ::setenv(k.c_str(), v.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(key.c_str()); }
};

TEST(DedupConfig, FromEnvParsesTiersBudgetAndDir) {
  {
    const DedupConfig cfg = DedupConfig::from_env();
    EXPECT_TRUE(cfg.plain()) << "default environment must mean plain in-memory";
  }
  {
    EnvGuard t("EFD_DEDUP_TIERS", "tiered");
    EnvGuard m("EFD_DEDUP_MEM_MB", "512");
    EnvGuard d("EFD_DEDUP_DIR", "/tmp/efd-test-spill");
    const DedupConfig cfg = DedupConfig::from_env();
    EXPECT_TRUE(cfg.disk_tier);
    EXPECT_EQ(cfg.mem_budget_bytes, 512u * 1024 * 1024);
    EXPECT_EQ(cfg.spill_dir, "/tmp/efd-test-spill");
    EXPECT_FALSE(cfg.plain());
  }
  {
    EnvGuard t("EFD_DEDUP_TIERS", "mem");
    EXPECT_TRUE(DedupConfig::from_env().plain());
  }
  {
    EnvGuard t("EFD_DEDUP_TIERS", "bogus");
    EXPECT_THROW(DedupConfig::from_env(), std::runtime_error);
  }
  {
    EnvGuard m("EFD_DEDUP_MEM_MB", "-3");
    EXPECT_THROW(DedupConfig::from_env(), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Explorer integration: thread-count invariance with the disk tier, and the
// memory-capped lower-bound path.
// ---------------------------------------------------------------------------

ExploreOutcome sweep_with_store(const DedupConfig& store, int threads) {
  const TaskPtr task = std::make_shared<SetAgreementTask>(4, 2);
  const ValueVec in = task->sample_input(1);
  const auto body = [task](int, Value input) {
    return make_one_concurrent(task, input, "dedup/sweep");
  };
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = {0, 1, 2, 3};
  cfg.max_states = 400000;
  cfg.engine = ExploreEngine::kIncremental;
  cfg.threads = threads;
  cfg.dedup_store = store;
  return explore_k_concurrent(task, body, in, cfg);
}

TEST(TieredExplore, OutcomeInvariantAcrossThreadCountsWithDiskTier) {
  const ExploreOutcome plain = sweep_with_store(DedupConfig{}, 1);
  ASSERT_TRUE(plain.ok) << plain.violation;
  ASSERT_FALSE(plain.budget_exhausted);

  DedupConfig tiered;
  tiered.disk_tier = true;
  tiered.mem_budget_bytes = 64 * 1024;  // tiny: the sweep spills constantly
  for (const int threads : {1, 2, 8}) {
    const ExploreOutcome o = sweep_with_store(tiered, threads);
    EXPECT_TRUE(o.ok) << o.violation;
    EXPECT_FALSE(o.budget_exhausted);
    EXPECT_FALSE(o.mem_exhausted);
    EXPECT_EQ(o.states, plain.states) << "threads=" << threads;
    EXPECT_EQ(o.terminal_runs, plain.terminal_runs) << "threads=" << threads;
    EXPECT_EQ(o.stats.dedup_queries, plain.stats.dedup_queries) << "threads=" << threads;
    EXPECT_EQ(o.stats.dedup_misses, plain.stats.dedup_misses) << "threads=" << threads;
    EXPECT_GT(o.stats.dedup_spills, 0) << "threads=" << threads;
  }
}

TEST(TieredExplore, MemoryCapWithoutDiskReportsLowerBound) {
  DedupConfig capped;
  capped.mem_budget_bytes = 64 * 1024;  // no disk tier: must abort
  const ExploreOutcome o = sweep_with_store(capped, 1);
  EXPECT_TRUE(o.mem_exhausted);
  EXPECT_TRUE(o.budget_exhausted) << "mem exhaustion must read as budget exhaustion";
  EXPECT_TRUE(o.stats.mem_exhausted);

  const ExploreOutcome full = sweep_with_store(DedupConfig{}, 1);
  EXPECT_LT(o.states, full.states) << "the capped sweep must have stopped early";
}

}  // namespace
}  // namespace efd
