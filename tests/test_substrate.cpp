// Cross-backend differential tests for the substrate abstraction (ctest -L
// substrate): the SAME coroutine bodies (ctx.send / ctx.recv) run against
// ShmSubstrate (registers-as-mailboxes) and the native MsgSubstrate, and
// every semantic observable must agree:
//
//  * exploration verdicts and semantic counters (states, terminal runs,
//    dedup traffic, blocked dead ends) — per level, per thread count;
//  * hierarchy rows (core/hierarchy classify) — byte-identical formatting;
//  * driven runs — step-for-step identical traces and state hashes;
//  * daemon-mode record/replay — MP tapes round-trip bit-identically
//    (trace-hash certified) through the unchanged efd-tape-v1 path.
//
// The explored MP family is EAGER (sends land instantly, no link daemons);
// recv on an empty mailbox BLOCKS under exploration (core/solvability), so
// both backends install a substrate explicitly and follow the same rule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/mp_protocols.hpp"
#include "core/hierarchy.hpp"
#include "core/repro_scenarios.hpp"
#include "core/solvability.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

constexpr int kN = 3;  ///< FloodMin system size (n senders, n mailboxes)
constexpr int kF = 1;  ///< tolerated sender crashes

std::function<World()> shm_factory() {
  return [] {
    World w = World::failure_free(1);
    install_shm_mailboxes(w);
    return w;
  };
}

std::function<World()> msg_factory() {
  return [] {
    World w = World::failure_free(1);
    install_msg_eager(w, kN, kN);
    return w;
  };
}

std::function<ProcBody(int, Value)> floodmin_body() {
  const FloodMinConfig cfg{kN, kF};
  return [cfg](int i, Value input) { return make_floodmin(cfg, i, std::move(input)); };
}

ValueVec floodmin_inputs() {
  ValueVec in(static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  return in;
}

/// The cross-backend-comparable summary of one sweep: the verdict plus every
/// counter DESIGN.md 4h promises to be backend-invariant.
struct SweepSummary {
  bool ok = false;
  bool exhausted = false;
  std::string violation;
  std::vector<int> bad_schedule;
  std::int64_t states = 0;
  std::int64_t terminal_runs = 0;
  std::int64_t blocked_runs = 0;
  std::int64_t dedup_queries = 0;
  std::int64_t dedup_misses = 0;

  bool operator==(const SweepSummary&) const = default;
};

SweepSummary sweep(const std::function<World()>& factory, int kset, int k, int threads) {
  const TaskPtr task = std::make_shared<SetAgreementTask>(kN, kset);
  ExploreConfig cfg;
  cfg.k = k;
  cfg.arrival = Task::participants(floodmin_inputs());
  cfg.threads = threads;
  cfg.max_states = 2000000;
  cfg.world_factory = factory;
  const ExploreOutcome out = explore_k_concurrent(task, floodmin_body(), floodmin_inputs(), cfg);
  SweepSummary s;
  s.ok = out.ok;
  s.exhausted = out.budget_exhausted;
  s.violation = out.violation;
  s.bad_schedule = out.bad_schedule;
  s.states = out.states;
  s.terminal_runs = out.terminal_runs;
  s.blocked_runs = out.blocked_runs;
  s.dedup_queries = out.stats.dedup_queries;
  s.dedup_misses = out.stats.dedup_misses;
  return s;
}

TEST(Substrate, CountersAndVerdictsIdenticalAcrossBackendsAndThreads) {
  for (int kset : {1, 2}) {
    for (int k = 1; k <= kN; ++k) {
      const SweepSummary baseline = sweep(shm_factory(), kset, k, 1);
      SCOPED_TRACE("kset=" + std::to_string(kset) + " k=" + std::to_string(k) +
                   " baseline states=" + std::to_string(baseline.states));
      ASSERT_FALSE(baseline.exhausted) << "budget too small for a certified comparison";
      for (int threads : {1, 2, 8}) {
        EXPECT_EQ(sweep(shm_factory(), kset, k, threads), baseline)
            << "shm backend diverged at threads=" << threads;
        EXPECT_EQ(sweep(msg_factory(), kset, k, threads), baseline)
            << "msg backend diverged at threads=" << threads;
      }
    }
  }
}

TEST(Substrate, FloodMinBoundaryMatchesTheory) {
  // FloodMin solves k-set agreement iff k >= f + 1 (the E19 impossibility
  // boundary): any (n-f)-subset of inputs contains one of the f+1 smallest,
  // so decisions span at most f+1 values — and no fewer, as exploration
  // shows. Checked as consensus (kset = f = 1) the split needs only two
  // concurrency slots: p0 and p1 decide 0, retire, and the freed slot admits
  // p2, whose inbox can FIFO-order p1's flood before p0's — it hears p1,
  // decides min(2,1) = 1 against p0's 0. At k = 1 a lone process can never
  // hear a second sender: every schedule dead-ends blocked, vacuously clean.
  EXPECT_TRUE(sweep(shm_factory(), kF + 1, kN, 1).ok) << "solvable side must certify clean";
  for (int k : {2, kN}) {
    const SweepSummary split = sweep(shm_factory(), kF, k, 1);
    EXPECT_FALSE(split.ok) << "unsolvable side must exhibit the violating run at k=" << k;
    EXPECT_EQ(split.violation, "task relation violated");
    EXPECT_FALSE(split.bad_schedule.empty());
  }
}

TEST(Substrate, BlockedDeadEndsCountedAndBackendInvariant) {
  // At k = 1 the single admitted sender floods, then blocks on its inbox
  // forever (nobody else ran): every schedule is a blocked dead end, no run
  // terminates, and no safety violation exists.
  const SweepSummary s = sweep(shm_factory(), kF + 1, 1, 1);
  EXPECT_TRUE(s.ok);
  EXPECT_EQ(s.terminal_runs, 0);
  EXPECT_GT(s.blocked_runs, 0);
  EXPECT_EQ(sweep(msg_factory(), kF + 1, 1, 1), s);
}

TEST(Substrate, HierarchyRowsIdenticalAcrossBackendsAndThreads) {
  const TaskPtr task = std::make_shared<SetAgreementTask>(kN, kF + 1);
  std::vector<std::string> rendered;
  for (int threads : {1, 2, 8}) {
    for (const auto& factory : {shm_factory(), msg_factory()}) {
      ExploreConfig base;
      base.threads = threads;
      base.max_states = 2000000;
      base.world_factory = factory;
      const HierarchyRow row =
          classify(task, floodmin_body(), floodmin_inputs(), kN, base);
      EXPECT_FALSE(row.level_exhausted);
      rendered.push_back(format_hierarchy({row}));
    }
  }
  for (std::size_t i = 1; i < rendered.size(); ++i) {
    EXPECT_EQ(rendered[i], rendered[0]) << "hierarchy row diverged (variant " << i << ")";
  }
}

TEST(Substrate, DrivenRunsBitIdenticalAcrossBackends) {
  // Outside exploration the backends must also agree step for step: the same
  // round-robin schedule over the same bodies yields the same trace hash, the
  // same decisions, and the same full-state hash — on ShmSubstrate the
  // mailboxes live in registers, on eager MsgSubstrate in the fabric, and
  // state_hash() is designed to not see the difference.
  auto run = [](const std::function<World()>& factory) {
    World w = factory();
    w.enable_trace();
    for (int i = 0; i < kN; ++i) {
      w.spawn_c(i, make_floodmin(FloodMinConfig{kN, kF}, i, Value(i)));
    }
    RoundRobinScheduler rr;
    drive(w, rr, 4000);
    return w;
  };
  World shm = run(shm_factory());
  World msg = run(msg_factory());
  EXPECT_EQ(trace_hash(shm.trace()), trace_hash(msg.trace()));
  EXPECT_EQ(shm.state_hash(), msg.state_hash());
  EXPECT_TRUE(deterministic_equal(shm.run_stats(), msg.run_stats()));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(shm.decided(cpid(i)), msg.decided(cpid(i))) << "p" << i + 1;
    if (shm.decided(cpid(i))) {
      EXPECT_EQ(shm.decision(cpid(i)), msg.decision(cpid(i)));
    }
  }
  EXPECT_GT(shm.run_stats().sends, 0);
  EXPECT_GT(shm.run_stats().recvs, 0);
}

TEST(Substrate, DaemonTapesReplayBitIdentically) {
  // Daemon-mode MsgSubstrate runs (per-link FIFO channels, deliveries as
  // ordinary schedulable S-steps) recorded by the MP scenarios must survive
  // the FULL efd-tape-v1 path: record -> serialize -> parse -> fresh world
  // -> replay, trace hash and predicate certified.
  for (const char* name :
       {"mp_floodmin_clean", "mp_floodmin_partition", "mp_floodmin_crash_bcast"}) {
    const Scenario* sc = find_scenario(name);
    ASSERT_NE(sc, nullptr) << name;
    for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
      SCOPED_TRACE(std::string(name) + " seed " + std::to_string(seed));
      ScheduleTape tape = sc->record(seed);
      EXPECT_EQ(tape.substrate, "msg") << "MP tapes must carry substrate provenance";
      const ScheduleTape parsed = ScheduleTape::parse(tape.serialize());
      const ScenarioReplayOutcome out = replay_in_scenario(*sc, parsed);
      EXPECT_TRUE(out.replay.hash_match) << "replay diverged from the recording";
      ASSERT_TRUE(parsed.expect_violated);
      EXPECT_EQ(out.violated, *parsed.expect_violated);
      EXPECT_GT(out.stats.delivers, 0) << "daemon runs must take deliver steps";
    }
  }
}

}  // namespace
}  // namespace efd
