// Tests for the CHT sampling DAG (fd/dag.hpp): structure, encoding, causal
// precedence, and the live builder process.
#include <gtest/gtest.h>

#include "fd/dag.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

TEST(FdDag, AppendAndCount) {
  FdDag d(2);
  EXPECT_EQ(d.total(), 0);
  d.append(0, Value(10), {-1, -1});
  d.append(0, Value(11), {0, -1});
  d.append(1, Value(20), {1, -1});
  EXPECT_EQ(d.count(0), 2);
  EXPECT_EQ(d.count(1), 1);
  EXPECT_EQ(d.total(), 3);
  EXPECT_EQ(d.of(0)[1].seq, 1);
  EXPECT_EQ(d.of(0)[1].sample.as_int(), 11);
}

TEST(FdDag, SamplesOfPreservesOrder) {
  FdDag d(1);
  d.append(0, Value(1), {-1});
  d.append(0, Value(2), {0});
  const ValueVec s = d.samples_of(0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].as_int(), 1);
  EXPECT_EQ(s[1].as_int(), 2);
}

TEST(FdDag, EncodeDecodeRoundTrip) {
  FdDag d(2);
  d.append(0, vec(Value(1), Value(2)), {-1, -1});
  d.append(1, Value("x"), {0, -1});
  const FdDag e = FdDag::decode(d.encode());
  EXPECT_EQ(e.n(), 2);
  EXPECT_EQ(e.count(0), 1);
  EXPECT_EQ(e.count(1), 1);
  EXPECT_EQ(e.of(0)[0].sample, vec(Value(1), Value(2)));
  EXPECT_EQ(e.of(1)[0].preds, (std::vector<int>{0, -1}));
}

TEST(FdDag, MergeIsUnionBySeq) {
  FdDag a(2);
  a.append(0, Value(1), {-1, -1});
  FdDag b(2);
  b.append(0, Value(1), {-1, -1});
  b.append(0, Value(2), {0, -1});
  b.append(1, Value(3), {1, -1});
  a.merge(b);
  EXPECT_EQ(a.count(0), 2);
  EXPECT_EQ(a.count(1), 1);
  a.merge(b);  // idempotent
  EXPECT_EQ(a.total(), 3);
}

TEST(FdDag, PrecedesWithinProcess) {
  FdDag d(1);
  d.append(0, Value(1), {-1});
  d.append(0, Value(2), {0});
  EXPECT_TRUE(d.precedes(0, 0, 0, 1));
  EXPECT_FALSE(d.precedes(0, 1, 0, 0));
  EXPECT_FALSE(d.precedes(0, 0, 0, 0));
}

TEST(FdDag, PrecedesAcrossProcesses) {
  FdDag d(2);
  d.append(0, Value(1), {-1, -1});
  d.append(1, Value(2), {0, -1});  // saw q1's vertex 0
  EXPECT_TRUE(d.precedes(0, 0, 1, 0));
  EXPECT_FALSE(d.precedes(1, 0, 0, 0));
}

TEST(DagBuilder, BuildsGrowingCausalDag) {
  const int n = 3;
  FailurePattern f(n);
  f.crash(2, 12);
  OmegaFd omega(30);
  World w(f, omega.history(f, 2));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_dag_builder("g", n));
  RoundRobinScheduler rr;
  drive(w, rr, 900);

  const FdDag dag = read_dag(w, "g", n);
  // Correct processes keep sampling; the crashed one stops.
  EXPECT_GT(dag.count(0), 3);
  EXPECT_GT(dag.count(1), 3);
  EXPECT_LT(dag.count(2), dag.count(0));
  // Later vertices causally follow earlier ones of other processes.
  ASSERT_GT(dag.count(0), 1);
  const auto& last = dag.of(0).back();
  EXPECT_GE(last.preds[1], 0) << "q1's last vertex must have seen some vertex of q2";
}

TEST(DagBuilder, SamplesComeFromTheDetectorHistory) {
  const int n = 2;
  FailurePattern f(n);
  OmegaFd omega(0);  // stable from t=0: always outputs the safe process 0
  World w(f, omega.history(f, 4));
  for (int i = 0; i < n; ++i) w.spawn_s(i, make_dag_builder("g", n));
  RoundRobinScheduler rr;
  drive(w, rr, 200);
  const FdDag dag = read_dag(w, "g", n);
  for (int p = 0; p < n; ++p) {
    for (const auto& v : dag.of(p)) EXPECT_EQ(v.sample.as_int(), 0);
  }
}

TEST(FdDag, MergeSizeMismatchThrows) {
  FdDag a(2);
  FdDag b(3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(FdDag, AppendPredsArityThrows) {
  FdDag a(2);
  EXPECT_THROW(a.append(0, Value(1), {-1}), std::invalid_argument);
}

}  // namespace
}  // namespace efd
