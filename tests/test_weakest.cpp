// Tests for the Thm. 10 round trip (core/weakest.hpp): one detector both
// solves the level-k task and yields ¬Ωk back.
#include <gtest/gtest.h>

#include "core/weakest.hpp"
#include "fd/emulations.hpp"

namespace efd {
namespace {

RoundTripConfig base_cfg(int n, int k, std::uint64_t seed) {
  RoundTripConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.seed = seed;
  cfg.pattern = FailurePattern(n);
  cfg.pattern.crash(n - 1, 25);
  cfg.extraction.explore_every = 2;
  cfg.extraction.budget0 = 4000;
  cfg.extraction.budget_step = 4000;
  cfg.extraction.max_budget = 24000;
  return cfg;
}

TEST(WeakestRoundTrip, VectorOmegaSolvesAndYieldsAntiOmega) {
  const auto cfg = base_cfg(4, 2, 7);
  const auto d = std::make_shared<VectorOmegaK>(2, 60);
  const auto r = weakest_fd_round_trip(d, cfg);
  EXPECT_TRUE(r.solved);
  EXPECT_LE(static_cast<int>(r.distinct), 2);
  EXPECT_TRUE(r.anti_omega_ok);
}

TEST(WeakestRoundTrip, WorksWithKEqualOne) {
  const auto cfg = base_cfg(3, 1, 9);
  const auto d = std::make_shared<VectorOmegaK>(1, 50);
  const auto r = weakest_fd_round_trip(d, cfg);
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.distinct, 1u);
  EXPECT_TRUE(r.anti_omega_ok);
}

TEST(WeakestRoundTrip, DerivedDetectorChainAlsoRoundTrips) {
  // A strictly stronger detector (Ω lifted to →Ω2 samples) solves the task
  // and still yields ¬Ω2 — "any detector that solves T is at least ¬Ωk".
  const auto cfg = base_cfg(4, 2, 11);
  const auto d = vec_omega_from_omega(std::make_shared<OmegaFd>(50), 4, 2);
  const auto r = weakest_fd_round_trip(d, cfg);
  EXPECT_TRUE(r.solved);
  EXPECT_TRUE(r.anti_omega_ok);
}

TEST(WeakestRoundTrip, ReportsSolveCost) {
  const auto cfg = base_cfg(4, 2, 7);
  const auto d = std::make_shared<VectorOmegaK>(2, 60);
  const auto r = weakest_fd_round_trip(d, cfg);
  EXPECT_GT(r.solve_steps, 0);
  EXPECT_GT(r.horizon, 0);
}

}  // namespace
}  // namespace efd
