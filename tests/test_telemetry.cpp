// Tests for the telemetry layer: RunStats (sim/stats.hpp), AdmissionStats,
// ExploreStats determinism across engines and thread counts, and the
// telemetry::Json / BenchEmitter machinery behind BENCH_E<n>.json.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "algo/one_concurrent.hpp"
#include "core/solvability.hpp"
#include "core/telemetry.hpp"
#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"
#include "tasks/set_agreement.hpp"

namespace efd {
namespace {

Proc count_steps(Context& ctx) {
  for (int i = 0; i < 100; ++i) co_await ctx.yield();
}

Proc decide_after(Context& ctx, int steps) {
  for (int i = 0; i < steps; ++i) co_await ctx.yield();
  co_await ctx.decide(Value(steps));
}

Proc mixed_ops(Context& ctx) {
  co_await ctx.write(reg("tel/R", ctx.pid().index), Value(1));
  const Value v = co_await ctx.read(reg("tel/R", ctx.pid().index));
  co_await ctx.decide(v);
}

// ---------------------------------------------------------------------------
// RunStats
// ---------------------------------------------------------------------------

TEST(RunStats, OpCountersSumToTraceLength) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, mixed_ops);
  w.spawn_c(1, [](Context& ctx) { return decide_after(ctx, 2); });
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  for (int i = 0; i < 3; ++i) w.step(cpid(1));
  w.step(cpid(0));  // null step: already terminated
  const RunStats& st = w.run_stats();
  EXPECT_EQ(st.steps, static_cast<std::int64_t>(w.trace().size()));
  EXPECT_EQ(st.op_total(), st.steps);
  EXPECT_EQ(st.reads, 1);
  EXPECT_EQ(st.writes, 1);
  EXPECT_EQ(st.yields, 2);
  EXPECT_EQ(st.decides, 2);
  EXPECT_EQ(st.null_steps, 1);
}

TEST(RunStats, CrashedAttemptsStayOutsideTheInvariant) {
  FailurePattern f(2);
  f.crash(0, 0);
  World w(f, TrivialFd{}.history(f, 0));
  w.enable_trace();
  w.spawn_s(0, count_steps);  // crashed from time 0
  w.spawn_s(1, count_steps);
  for (int i = 0; i < 4; ++i) w.step(spid(0));  // refused: no step, no record
  for (int i = 0; i < 3; ++i) w.step(spid(1));
  const RunStats& st = w.run_stats();
  EXPECT_EQ(st.crashed_attempts, 4);
  EXPECT_EQ(st.steps, 3);
  EXPECT_EQ(st.steps, static_cast<std::int64_t>(w.trace().size()));
  EXPECT_EQ(st.op_total(), st.steps);
}

TEST(RunStats, FormatRunReportMentionsTheMix) {
  World w = World::failure_free(1);
  w.enable_trace();
  w.spawn_c(0, mixed_ops);
  for (int i = 0; i < 3; ++i) w.step(cpid(0));
  const std::string report = format_run_report(w);
  EXPECT_NE(report.find("steps"), std::string::npos);
  EXPECT_NE(report.find("decided"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AdmissionStats
// ---------------------------------------------------------------------------

TEST(AdmissionStats, CountsAdmissionsAndRetirements) {
  World w = World::failure_free(1);
  std::vector<int> arrival;
  for (int i = 0; i < 5; ++i) {
    arrival.push_back(i);
    w.spawn_c(i, [](Context& ctx) { return decide_after(ctx, 4); });
  }
  KConcurrencyScheduler ks(2, arrival, 0);
  const auto r = drive(w, ks, 10000);
  ASSERT_TRUE(r.all_c_decided);
  const AdmissionStats& st = ks.admission_stats();
  EXPECT_EQ(st.admitted, 5);
  // Retirements are counted when the window refreshes; drive() stops as soon
  // as the last process decides, before any further refresh, so up to
  // `peak_active` just-finished processes are still counted as active.
  EXPECT_GE(st.retired, st.admitted - st.peak_active);
  EXPECT_LE(st.retired, st.admitted);
  EXPECT_LE(st.peak_active, 2);
  EXPECT_GE(st.peak_active, 1);
}

// ---------------------------------------------------------------------------
// ExploreStats
// ---------------------------------------------------------------------------

ExploreOutcome sweep(ExploreEngine engine, int threads) {
  auto task = std::make_shared<SetAgreementTask>(3, 2);
  ValueVec in(3);
  for (int i = 0; i < 3; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  auto body = [task](int, Value input) { return make_one_concurrent(task, input, "tel"); };
  ExploreConfig cfg;
  cfg.k = 2;
  cfg.arrival = {0, 1, 2};
  cfg.max_states = 200000;
  cfg.engine = engine;
  cfg.threads = threads;
  return explore_k_concurrent(task, body, in, cfg);
}

void expect_deterministic_subset_eq(const ExploreStats& a, const ExploreStats& b,
                                    const char* what) {
  EXPECT_EQ(a.states, b.states) << what;
  EXPECT_EQ(a.terminal_runs, b.terminal_runs) << what;
  EXPECT_EQ(a.dedup_queries, b.dedup_queries) << what;
  EXPECT_EQ(a.dedup_misses, b.dedup_misses) << what;
}

TEST(ExploreStats, MirrorsTheOutcome) {
  const ExploreOutcome o = sweep(ExploreEngine::kIncremental, 1);
  ASSERT_TRUE(o.ok);
  ASSERT_FALSE(o.budget_exhausted);
  EXPECT_EQ(o.stats.states, o.states);
  EXPECT_EQ(o.stats.terminal_runs, o.terminal_runs);
  EXPECT_GT(o.stats.dedup_queries, 0);
  EXPECT_GT(o.stats.dedup_misses, 0);
  EXPECT_LE(o.stats.dedup_misses, o.stats.dedup_queries);
  EXPECT_EQ(o.stats.dedup_hits, o.stats.dedup_queries - o.stats.dedup_misses);
  EXPECT_GT(o.stats.max_undo_depth, 0);
  EXPECT_GT(o.stats.respawns, 0);  // k=2 backtracking must rebuild frames
  EXPECT_EQ(o.stats.threads, 1);
}

TEST(ExploreStats, DeterministicSubsetMatchesAcrossEngines) {
  const ExploreOutcome full = sweep(ExploreEngine::kFullReplay, 1);
  const ExploreOutcome inc = sweep(ExploreEngine::kIncremental, 1);
  ASSERT_TRUE(full.ok);
  ASSERT_TRUE(inc.ok);
  expect_deterministic_subset_eq(full.stats, inc.stats, "full-replay vs incremental");
  // The reference engine has no undo log, so its run-shape fields stay zero.
  EXPECT_EQ(full.stats.respawns, 0);
  EXPECT_EQ(full.stats.max_undo_depth, 0);
}

TEST(ExploreStats, DeterministicSubsetMatchesAcrossThreadCounts) {
  const ExploreOutcome one = sweep(ExploreEngine::kIncremental, 1);
  ASSERT_TRUE(one.ok);
  for (int threads : {2, 8}) {
    const ExploreOutcome many = sweep(ExploreEngine::kIncremental, threads);
    ASSERT_TRUE(many.ok) << threads;
    expect_deterministic_subset_eq(one.stats, many.stats,
                                   "1 thread vs parallel frontier");
    EXPECT_EQ(many.stats.threads, threads);
  }
}

TEST(ExploreStats, MergeSumsCountsAndMaxesDepth) {
  ExploreStats a;
  a.states = 10;
  a.terminal_runs = 2;
  a.dedup_queries = 7;
  a.dedup_misses = 5;
  a.dedup_hits = 2;
  a.max_undo_depth = 4;
  a.respawns = 1;
  a.threads = 1;
  ExploreStats b;
  b.states = 3;
  b.terminal_runs = 1;
  b.dedup_queries = 2;
  b.dedup_misses = 2;
  b.max_undo_depth = 9;
  b.threads = 4;
  a.merge(b);
  EXPECT_EQ(a.states, 13);
  EXPECT_EQ(a.terminal_runs, 3);
  EXPECT_EQ(a.dedup_queries, 9);
  EXPECT_EQ(a.dedup_misses, 7);
  EXPECT_EQ(a.dedup_hits, 2);
  EXPECT_EQ(a.max_undo_depth, 9);
  EXPECT_EQ(a.respawns, 1);
  EXPECT_EQ(a.threads, 4);
}

// ---------------------------------------------------------------------------
// telemetry::Json
// ---------------------------------------------------------------------------

TEST(TelemetryJson, RoundTripsThroughDumpAndParse) {
  namespace tj = telemetry;
  tj::Json doc = tj::Json::object();
  doc["schema"] = tj::Json("efd-bench-v1");
  doc["count"] = tj::Json(static_cast<std::int64_t>(42));
  doc["rate"] = tj::Json(1.5);
  doc["flag"] = tj::Json(true);
  doc["escaped"] = tj::Json("tab\there \"quoted\" back\\slash\nnewline");
  tj::Json arr = tj::Json::array();
  arr.push_back(tj::Json(static_cast<std::int64_t>(1)));
  arr.push_back(tj::Json("two"));
  arr.push_back(tj::Json());
  doc["items"] = std::move(arr);

  const std::string text = doc.dump();
  const tj::Json parsed = tj::Json::parse(text);
  EXPECT_EQ(parsed.dump(), text);
  EXPECT_EQ(parsed.find("count")->as_int(), 42);
  EXPECT_DOUBLE_EQ(parsed.find("rate")->as_double(), 1.5);
  EXPECT_TRUE(parsed.find("flag")->as_bool());
  EXPECT_EQ(parsed.find("escaped")->as_string(),
            "tab\there \"quoted\" back\\slash\nnewline");
  ASSERT_EQ(parsed.find("items")->size(), 3u);
  EXPECT_TRUE(parsed.find("items")->at(2).is_null());
  // Compact dump parses too.
  EXPECT_EQ(tj::Json::parse(doc.dump(0)).dump(), text);
}

TEST(TelemetryJson, ParseRejectsMalformedInput) {
  using telemetry::Json;
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("'single'"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// telemetry::BenchEmitter
// ---------------------------------------------------------------------------

// Regression: the bench layer's header suppression was one process-global
// std::once_flag, so in a binary with several tables every header after the
// first vanished (E4/E8). Suppression is per-TITLE now.
TEST(BenchEmitter, HeaderPrintsOncePerDistinctTitle) {
  telemetry::BenchEmitter em;
  EXPECT_TRUE(em.table_header_once("table A", "col1 col2"));
  EXPECT_FALSE(em.table_header_once("table A", "col1 col2"));
  EXPECT_TRUE(em.table_header_once("table B", "col1"));
  EXPECT_FALSE(em.table_header_once("table B", "col1"));
  EXPECT_FALSE(em.table_header_once("table A", "col1 col2"));
}

TEST(BenchEmitter, BuildsTheSchemaDocument) {
  telemetry::BenchEmitter em;
  em.set_experiment("ETEST");
  em.table_header_once("first", "a b");
  em.add_row("1 2\n");
  em.table_header_once("second", "c");
  em.add_row("3\n");
  em.record_benchmark("Bench/1", {{"steps", 12.0}, {"rate_per_s", 5.5}}, 3);
  em.record_benchmark("Bench/1", {{"steps", 14.0}}, 7);  // re-record overwrites

  const telemetry::Json doc = em.to_json();
  EXPECT_EQ(doc.find("schema")->as_string(), "efd-bench-v1");
  EXPECT_EQ(doc.find("experiment")->as_string(), "ETEST");
  EXPECT_FALSE(doc.find("git")->as_string().empty());
  ASSERT_EQ(doc.find("benchmarks")->size(), 1u);
  const telemetry::Json& b = doc.find("benchmarks")->at(0);
  EXPECT_EQ(b.find("name")->as_string(), "Bench/1");
  EXPECT_EQ(b.find("iterations")->as_int(), 7);
  EXPECT_DOUBLE_EQ(b.find("counters")->find("steps")->as_double(), 14.0);
  ASSERT_EQ(doc.find("tables")->size(), 2u);
  EXPECT_EQ(doc.find("tables")->at(0).find("title")->as_string(), "first");
  EXPECT_EQ(doc.find("tables")->at(1).find("rows")->at(0).as_string(), "3");
  // The document round-trips through the parser.
  EXPECT_EQ(telemetry::Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(BenchEmitter, WritesTheFileWhereAsked) {
  telemetry::BenchEmitter em;
  em.set_experiment("ETESTFILE");
  em.record_benchmark("B", {{"x", 1.0}}, 1);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(em.write_file(dir));
  const std::string path = dir + "/BENCH_ETESTFILE.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const telemetry::Json doc = telemetry::Json::parse(ss.str());
  EXPECT_EQ(doc.find("experiment")->as_string(), "ETESTFILE");
  std::remove(path.c_str());
}

TEST(BenchEmitter, EmptyEmitterWritesNothing) {
  telemetry::BenchEmitter em;
  em.set_experiment("ENOTHING");
  EXPECT_FALSE(em.write_file(::testing::TempDir()));
}

}  // namespace
}  // namespace efd
