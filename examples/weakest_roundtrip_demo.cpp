// The headline classification, end to end (Thm. 10).
//
// One detector (→Ω2) is pushed through BOTH directions of the weakest-
// failure-detector equivalence for level-2 tasks:
//   forward  (Thm. 9): it solves 2-set agreement among all processes;
//   backward (Thm. 8): the Fig. 1 extraction distills ¬Ω2 back out of it.
// The round trip is what "¬Ωk is the weakest failure detector for class-k
// tasks" means operationally.
#include <cstdio>

#include "efd/efd.hpp"

int main() {
  using namespace efd;
  RoundTripConfig cfg;
  cfg.n = 4;
  cfg.k = 2;
  cfg.seed = 7;
  cfg.pattern = FailurePattern(cfg.n);
  cfg.pattern.crash(3, 25);
  cfg.extraction.explore_every = 2;
  cfg.extraction.budget0 = 4000;
  cfg.extraction.budget_step = 4000;
  cfg.extraction.max_budget = 24000;

  const auto detector = std::make_shared<VectorOmegaK>(cfg.k, 60);
  std::printf("detector : %s, pattern %s\n", detector->name().c_str(),
              cfg.pattern.to_string().c_str());

  const RoundTripResult r = weakest_fd_round_trip(detector, cfg);

  std::printf("forward  : %d-set agreement among %d processes  -> %s (%zu distinct, %lld steps)\n",
              cfg.k, cfg.n, r.solved ? "SOLVED" : "failed", r.distinct,
              static_cast<long long>(r.solve_steps));
  std::printf("backward : Fig. 1 extraction of anti-Omega-%d   -> %s (horizon %lld)\n", cfg.k,
              r.anti_omega_ok ? "SPEC PASSES" : "spec failed", static_cast<long long>(r.horizon));
  std::printf("Thm. 10  : class-%d task <=> anti-Omega-%d, demonstrated both ways.\n", cfg.k,
              cfg.k);
  return (r.solved && r.anti_omega_ok) ? 0 : 1;
}
