// "Solving a puzzle" (paper §3, Thm. 7).
//
// A failure detector that solves k-set agreement among ONE fixed set of k+1
// processes is strong enough to solve it among ALL n. Here →Ω2 drives a
// 2-set-agreement instance scoped to {p1, p2, p3}; processes p1..p6
// BG-simulate those three codes (each seeding the codes with its own input —
// legal, set agreement is colorless) and adopt the first simulated decision.
// The output never contains more than k = 2 distinct values.
#include <cstdio>
#include <set>

#include "efd/efd.hpp"

int main() {
  using namespace efd;
  const int n = 6;
  const int k = 2;

  FailurePattern pattern(n);
  pattern.crash(2, 7);
  pattern.crash(5, 15);
  VectorOmegaK advice(k, /*gst=*/45);
  World world(pattern, advice.history(pattern, /*seed=*/19));

  const BoosterConfig cfg{"boost", n, k};
  for (int i = 0; i < n; ++i) {
    world.spawn_c(i, make_booster_simulator(cfg, Value(10 * (i + 1))));
    world.spawn_s(i, make_booster_server(cfg));
  }

  RandomScheduler sched(19);
  const DriveResult run = drive(world, sched, 20000000);

  std::printf("inner scope U  : {p1, p2, p3}  (k+1 = %d simulated codes)\n", k + 1);
  std::printf("pattern        : %s\n", pattern.to_string().c_str());
  std::printf("run            : %lld steps, all %d processes decided = %s\n",
              static_cast<long long>(run.steps), n, run.all_c_decided ? "yes" : "no");

  std::set<std::int64_t> distinct;
  for (int i = 0; i < n; ++i) {
    const auto d = world.decision(cpid(i)).int_or(-1);
    std::printf("p%d decided     : %lld\n", i + 1, static_cast<long long>(d));
    distinct.insert(d);
  }
  std::printf("distinct values: %zu  (Thm. 7 bound: <= %d)\n", distinct.size(), k);
  return run.all_c_decided && static_cast<int>(distinct.size()) <= k ? 0 : 1;
}
