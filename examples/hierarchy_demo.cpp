// The task hierarchy (paper §4.3, Thm. 10).
//
// Classifies a menu of tasks by exhaustively exploring every k-concurrent
// schedule of this library's solver for each task: the largest clean level
// is the task's (observed) concurrency class, and Thm. 10 names its weakest
// failure detector — ¬Ωk, with Ω at level 1 and no detector at level n.
#include <cstdio>

#include "efd/efd.hpp"

int main() {
  using namespace efd;
  const int n = 4;
  std::printf("Classifying the standard task menu at n = %d (exhaustive exploration)...\n\n", n);
  const auto rows = classify_standard_menu(n, /*max_states=*/250000);
  std::printf("%s\n", format_hierarchy(rows).c_str());
  std::printf(
      "Reading the table: a task solvable k- but not (k+1)-concurrently has\n"
      "weakest failure detector anti-Omega-k (Thm. 10); all tasks on the same\n"
      "level are equivalent to k-set agreement.\n");
  return 0;
}
