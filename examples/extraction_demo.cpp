// Extracting ¬Ωk from a task-solving detector (paper §4.1, Thm. 8, Fig. 1).
//
// The S-processes are given →Ω2 — a detector that solves 2-set agreement.
// They know nothing about its structure: they only sample it into the CHT
// DAG and locally hunt for (2+1)-concurrent runs of the 2-set-agreement
// algorithm that never decide. The starved set of the first persistent
// witness must contain a correct process, so publishing its complement
// emulates ¬Ω2: eventually some correct process is never output.
#include <cstdio>

#include "efd/efd.hpp"

int main() {
  using namespace efd;
  const int n = 4;
  const int k = 2;

  FailurePattern pattern(n);
  pattern.crash(3, 25);
  auto advice = std::make_shared<VectorOmegaK>(k, 60);

  ExtractionConfig cfg;
  cfg.ns = "ex";
  cfg.n = n;
  cfg.k = k;
  cfg.explore_every = 2;
  cfg.budget0 = 4000;
  cfg.budget_step = 4000;
  cfg.max_budget = 24000;

  std::printf("running the Fig. 1 reduction: %d S-processes sampling vec-Omega-%d...\n", n, k);
  std::vector<ProcBody> bodies;
  for (int i = 0; i < n; ++i) bodies.push_back(make_extraction_sproc(cfg));
  const ReductionRun run = run_reduction(pattern, advice, /*seed=*/13, bodies, /*steps=*/6000);

  const auto emulated = emulated_history_from_trace(run.trace, cfg);
  std::printf("pattern  : %s   (safe correct process: q%d)\n", pattern.to_string().c_str(),
              pattern.correct_set().front() + 1);
  std::printf("emulated anti-Omega-%d samples at the end of the run:\n", k);
  for (int i = 0; i < n; ++i) {
    std::printf("  q%d outputs %s\n", i + 1,
                emulated->at(i, run.horizon - 1).to_string().c_str());
  }
  const bool ok = AntiOmegaK::check(k, pattern, *emulated, run.horizon);
  std::printf("anti-Omega-%d specification check: %s\n", k, ok ? "PASS" : "fail");
  return ok ? 0 : 1;
}
