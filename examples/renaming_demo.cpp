// Renaming under bounded concurrency (paper §5, Fig. 4 / Thm. 15).
//
// Runs the Fig. 4 algorithm for j participants at every concurrency level
// k = 1..j and reports the largest name chosen: at level k it never exceeds
// j + k - 1, and at level 1 (sequential) the names pack into 1..j (strong
// renaming). This is the shape behind Cor. 13: squeezing the namespace to j
// costs you concurrency — and therefore consensus-grade advice.
#include <cstdio>
#include <set>

#include "efd/efd.hpp"

int main() {
  using namespace efd;
  const int n = 8;
  const int j = 6;

  std::printf("Fig. 4 renaming, j = %d participants of n = %d (namespace bound j+k-1)\n", j, n);
  std::printf("%-12s %-12s %-14s %-10s %s\n", "k (conc.)", "max name", "bound j+k-1", "unique",
              "names");

  for (int k = 1; k <= j; ++k) {
    const RenamingTask task(n, j, j + k - 1);
    const ValueVec inputs = task.sample_input(/*seed=*/3);
    const auto arrival = Task::participants(inputs);

    World w = World::failure_free(1);
    w.enable_trace();
    const RenamingConfig cfg{"ren", n};
    for (int i : arrival) {
      w.spawn_c(i, make_renaming_kconc(cfg, inputs[static_cast<std::size_t>(i)]));
    }
    KConcurrencyScheduler sched(k, arrival, 0);
    drive(w, sched, 1000000);

    std::set<std::int64_t> names;
    std::int64_t max_name = 0;
    std::string list;
    for (int i : arrival) {
      const auto name = w.decision(cpid(i)).int_or(-1);
      names.insert(name);
      max_name = std::max(max_name, name);
      list += std::to_string(name) + " ";
    }
    std::printf("%-12d %-12lld %-14d %-10s %s\n", k, static_cast<long long>(max_name),
                j + k - 1, names.size() == arrival.size() ? "yes" : "NO", list.c_str());
  }
  return 0;
}
