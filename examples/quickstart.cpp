// Quickstart: wait-freedom with advice, in one page.
//
// Four computation processes want consensus — impossible wait-free [FLP].
// In the EFD model they get ADVICE: four crash-prone synchronization
// processes query an Ω failure detector and drive a Paxos instance; each
// computation process just publishes its proposal and busy-waits on the
// decision register, so its progress never depends on other computation
// processes.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "efd/efd.hpp"

int main() {
  using namespace efd;
  const int n = 4;

  // One S-process (q2) crashes at time 9; Ω stabilizes by time 40.
  FailurePattern pattern(n);
  pattern.crash(1, 9);
  OmegaFd omega(/*gst=*/40);

  World world(pattern, omega.history(pattern, /*seed=*/7));

  const LeaderConsensusConfig cfg{"cons", n};
  for (int i = 0; i < n; ++i) {
    world.spawn_c(i, make_consensus_client(cfg, Value(100 + i)));  // proposal
    world.spawn_s(i, make_consensus_server(cfg));                  // advice
  }

  RoundRobinScheduler fair;
  const DriveResult run = drive(world, fair, /*max_steps=*/200000);

  std::printf("pattern        : %s\n", pattern.to_string().c_str());
  std::printf("run            : %lld steps, all decided = %s\n",
              static_cast<long long>(run.steps), run.all_c_decided ? "yes" : "no");
  std::printf("%s", format_run_report(world).c_str());
  for (int i = 0; i < n; ++i) {
    std::printf("p%d decided     : %s\n", i + 1, world.decision(cpid(i)).to_string().c_str());
  }

  // Verify against the task relation.
  ConsensusTask task(n);
  ValueVec inputs;
  for (int i = 0; i < n; ++i) inputs.emplace_back(100 + i);
  std::printf("task satisfied : %s\n",
              task.relation(inputs, world.output_vector()) ? "yes" : "no");
  return run.all_c_decided ? 0 : 1;
}
