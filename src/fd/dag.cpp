#include "fd/dag.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/memory.hpp"

namespace efd {

int FdDag::total() const {
  int t = 0;
  for (const auto& v : per_proc_) t += static_cast<int>(v.size());
  return t;
}

void FdDag::append(int proc, Value sample, std::vector<int> preds) {
  if (static_cast<int>(preds.size()) != n()) {
    throw std::invalid_argument("FdDag::append: preds size mismatch");
  }
  auto& list = per_proc_.at(static_cast<std::size_t>(proc));
  DagVertex v;
  v.proc = proc;
  v.seq = static_cast<int>(list.size());
  v.sample = std::move(sample);
  v.preds = std::move(preds);
  list.push_back(std::move(v));
  ++stats_.appends;
}

void FdDag::merge(const FdDag& other) {
  if (other.n() != n()) throw std::invalid_argument("FdDag::merge: size mismatch");
  ++stats_.merges;
  for (int p = 0; p < n(); ++p) {
    auto& mine = per_proc_[static_cast<std::size_t>(p)];
    const auto& theirs = other.per_proc_[static_cast<std::size_t>(p)];
    for (std::size_t s = mine.size(); s < theirs.size(); ++s) {
      mine.push_back(theirs[s]);
      ++stats_.merged_vertices;
    }
  }
}

ValueVec FdDag::samples_of(int proc) const {
  ValueVec out;
  for (const auto& v : of(proc)) out.push_back(v.sample);
  return out;
}

bool FdDag::precedes(int proc_a, int seq_a, int proc_b, int seq_b) const {
  const auto& list = per_proc_.at(static_cast<std::size_t>(proc_b));
  if (seq_b < 0 || seq_b >= static_cast<int>(list.size())) return false;
  const auto& vb = list[static_cast<std::size_t>(seq_b)];
  if (proc_a == proc_b) return seq_a < seq_b;
  // preds are transitively closed by construction (each vertex records the
  // highest seq of every process it has seen, and "seen" includes everything
  // its predecessors saw because publications are cumulative).
  return vb.preds.at(static_cast<std::size_t>(proc_a)) >= seq_a;
}

Value FdDag::encode() const {
  ValueVec procs;
  for (const auto& list : per_proc_) {
    ValueVec vl;
    for (const auto& v : list) {
      ValueVec preds;
      for (int p : v.preds) preds.emplace_back(p);
      vl.push_back(vec(Value(v.proc), Value(v.seq), v.sample, Value(std::move(preds))));
    }
    procs.emplace_back(std::move(vl));
  }
  return Value(std::move(procs));
}

FdDag FdDag::decode(const Value& v) {
  FdDag dag(static_cast<int>(v.size()));
  for (std::size_t p = 0; p < v.size(); ++p) {
    const Value list = v.at(p);
    for (std::size_t s = 0; s < list.size(); ++s) {
      const Value cell = list.at(s);
      std::vector<int> preds;
      const Value pv = cell.at(3);
      preds.reserve(pv.size());
      for (std::size_t q = 0; q < pv.size(); ++q) {
        preds.push_back(static_cast<int>(pv.at(q).int_or(-1)));
      }
      dag.append(static_cast<int>(p), cell.at(2), std::move(preds));
    }
  }
  return dag;
}

namespace {

// Standalone coroutine (not a lambda: captures of a coroutine lambda die with
// the lambda object after World::spawn).
Proc dag_builder(Context& ctx, std::string ns, int n) {
  const int me = ctx.pid().index;
  const Sym dag_base = sym(ns + "/dag");
  const RegAddr my_dag = reg(dag_base, me);
  FdDag local(n);
  for (;;) {
    const Value sample = co_await ctx.query();
    // Merge everyone's publication to compute causal predecessors.
    for (int j = 0; j < n; ++j) {
      if (j == me) continue;
      const Value pub = co_await ctx.read(reg(dag_base, j));
      if (!pub.is_nil()) local.merge(FdDag::decode(pub));
    }
    std::vector<int> preds(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) preds[static_cast<std::size_t>(j)] = local.count(j) - 1;
    local.append(me, sample, std::move(preds));
    co_await ctx.write(my_dag, local.encode());
  }
}

}  // namespace

ProcBody make_dag_builder(std::string ns, int n) {
  return [ns = std::move(ns), n](Context& ctx) { return dag_builder(ctx, ns, n); };
}

FdDag read_dag(const World& w, const std::string& ns, int n) {
  FdDag dag(n);
  for (int j = 0; j < n; ++j) {
    const Value pub = w.memory().read(reg(ns + "/dag", j));
    if (!pub.is_nil()) dag.merge(FdDag::decode(pub));
  }
  return dag;
}

}  // namespace efd
