// Failure-detector reduction harness (paper §2.2, "Comparing failure
// detectors").
//
// D' is weaker than D in E if S-processes running a reduction algorithm with
// D can maintain registers whose evolution is a history of D'. The harness
// runs such a reduction in a traced World and reconstructs the emulated
// history from the timestamped writes to the output registers, so detector
// spec checks (OmegaFd::check, AntiOmegaK::check, ...) apply to emulated
// detectors exactly as to native ones.
//
// Shipped reductions:
//  * →Ωk  ⇒  ¬Ωk   (complement construction, [28])
//  * Ω    ⇒  →Ωk   (embed the leader in slot 0, pad with rotation)
//  * any D solving a non-(k+1)-concurrent task  ⇒  ¬Ωk: the Fig. 1
//    extraction (algo/extraction.hpp), which plugs into the same harness.
#pragma once

#include <vector>

#include "fd/detectors.hpp"
#include "fd/history.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace efd {

struct ReductionRun {
  Trace trace;
  FailurePattern pattern{0};
  Time horizon = 0;
  DriveResult stop;  ///< why the run ended — S-only worlds stop on
                     ///< budget_exhausted (the expected cause) or scheduler
                     ///< exhaustion (every S-process crashed), never on the
                     ///< vacuous all_c_decided the old drive() reported
  RunStats stats;    ///< step mix incl. crashed_attempts (refused steps)
};

/// Runs S-process bodies (C-processes take null steps: this is a reduction
/// algorithm) under round-robin fair scheduling for `steps` steps.
ReductionRun run_reduction(const FailurePattern& pattern, const DetectorPtr& detector,
                           std::uint64_t seed, const std::vector<ProcBody>& s_bodies,
                           std::int64_t steps);

/// Emulated history from the timestamped writes to reg(out_base, i): the
/// value of q_i's emulated module at time t is its latest write at or before
/// t, `initial` before the first write.
HistoryPtr history_from_out_registers(const Trace& trace, const std::string& out_base, int n,
                                      Value initial);

/// S-process body emulating ¬Ωk from →Ωk: each sample's complement (padded to
/// exactly n-k ids) is published to reg(out_base, me). Once a slot stabilizes
/// on a correct process, that process is never output again.
ProcBody make_vec_to_anti_converter(std::string out_base, int n, int k);

/// S-process body emulating →Ωk from Ω: the Ω leader occupies slot 0, the
/// remaining slots rotate deterministically.
ProcBody make_omega_to_vec_converter(std::string out_base, int n, int k);

}  // namespace efd
