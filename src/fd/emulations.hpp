// Derived failure detectors: static (sample-level) emulations.
//
// The reduction harness (fd/reduction.hpp) emulates detectors by running
// S-process algorithms; for the common case where the emulation is a pure
// per-sample function of the source detector's output, MappedDetector builds
// the derived detector directly — realizing "if D' is weaker than D, every
// task solvable with D' is solvable with D" (§2.2) as a type: plug the
// mapped detector into any solver written for D'.
//
// Shipped maps:
//   ◇P → Ω          smallest unsuspected process
//   Ω  → →Ωk        leader in slot 0, rotating noise elsewhere
//   →Ωk → ¬Ωk       complement of the named slots, truncated to n-k ids
#pragma once

#include <functional>

#include "fd/detectors.hpp"

namespace efd {

/// D' whose histories are pointwise images of D's: H'(q, t) = map(q, t, H(q, t)).
class MappedDetector final : public FailureDetector {
 public:
  using SampleMap = std::function<Value(int qi, Time t, const Value& sample)>;

  MappedDetector(DetectorPtr source, std::string name, SampleMap map)
      : source_(std::move(source)), name_(std::move(name)), map_(std::move(map)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
  [[nodiscard]] Time stabilization_time(const FailurePattern& f) const override {
    return source_->stabilization_time(f);
  }

 private:
  DetectorPtr source_;
  std::string name_;
  SampleMap map_;
};

/// Ω from ◇P: output the smallest process not currently suspected.
[[nodiscard]] DetectorPtr omega_from_diamond_p(DetectorPtr diamond_p, int n);

/// →Ωk from Ω: the leader occupies slot 0; remaining slots rotate.
[[nodiscard]] DetectorPtr vec_omega_from_omega(DetectorPtr omega, int n, int k);

/// ¬Ωk from →Ωk: ids not named by the sample, truncated to exactly n-k.
[[nodiscard]] DetectorPtr anti_omega_from_vec_omega(DetectorPtr vec_omega, int n, int k);

}  // namespace efd
