#include "fd/faulty.hpp"

#include <algorithm>
#include <stdexcept>

namespace efd {
namespace {

// SplitMix64-style hash of (seed, qi, t, salt) — same construction the
// concrete detectors use for their pre-GST noise.
std::uint64_t noise(std::uint64_t seed, int qi, Time t, std::uint64_t salt) {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(qi) << 32) ^
                    static_cast<std::uint64_t>(t) ^ (salt * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(FdFaultKind k) {
  switch (k) {
    case FdFaultKind::kNone: return "none";
    case FdFaultKind::kLying: return "lying";
    case FdFaultKind::kOmissive: return "omissive";
    case FdFaultKind::kStuttering: return "stuttering";
  }
  return "none";
}

FdFaultKind fd_fault_kind_from(const std::string& name) {
  if (name == "none") return FdFaultKind::kNone;
  if (name == "lying") return FdFaultKind::kLying;
  if (name == "omissive") return FdFaultKind::kOmissive;
  if (name == "stuttering") return FdFaultKind::kStuttering;
  throw std::invalid_argument("fd_fault_kind_from: unknown kind '" + name + "'");
}

FaultyFdBase::FaultyFdBase(DetectorPtr inner, Time corrupt_until)
    : inner_(std::move(inner)), until_(corrupt_until) {
  if (!inner_) throw std::invalid_argument("FaultyFdBase: null inner detector");
  if (until_ < 0) until_ = 0;
}

Time FaultyFdBase::stabilization_time(const FailurePattern& f) const {
  return std::max(until_, inner_->stabilization_time(f));
}

// ----------------------------------------------------------------- lying

std::string LyingFd::name() const {
  return "lying(" + inner_->name() + ")@" + std::to_string(until_);
}

HistoryPtr LyingFd::history(const FailurePattern& f, std::uint64_t seed) const {
  const HistoryPtr inner_h = inner_->history(f, seed);
  if (until_ == 0) return inner_h;
  const int n = f.n();
  const Time until = until_;
  // Lies sample the inner history across a window that covers both the
  // chaotic prefix and the stabilized suffix, so pre-GST output includes
  // truthful-looking-but-misplaced values as well as noise.
  const Time lie_span = std::max<Time>(Time{1}, until + inner_->stabilization_time(f) + 8);
  return std::make_shared<FnHistory>([inner_h, n, until, lie_span, seed](int qi, Time t) {
    if (t >= until) return inner_h->at(qi, t);
    const int fake_q =
        n > 0 ? static_cast<int>(noise(seed, qi, t, 11) % static_cast<std::uint64_t>(n)) : qi;
    const Time fake_t =
        static_cast<Time>(noise(seed, qi, t, 13) % static_cast<std::uint64_t>(lie_span));
    return inner_h->at(fake_q, fake_t);
  });
}

// -------------------------------------------------------------- omissive

std::string OmissiveFd::name() const {
  return "omissive(" + inner_->name() + ")@" + std::to_string(until_);
}

HistoryPtr OmissiveFd::history(const FailurePattern& f, std::uint64_t seed) const {
  const HistoryPtr inner_h = inner_->history(f, seed);
  if (until_ == 0) return inner_h;
  const Time until = until_;
  const auto period = static_cast<std::uint64_t>(drop_period_);
  // A sample time refreshes when its hash falls in the keep bucket; the
  // module start (t = 0) always delivers, so outputs are always some inner
  // sample (type preservation). The back-scan is capped: past the cap the
  // module falls back to the initial sample, which is still a legal omissive
  // behaviour (every update since start was dropped).
  const auto refreshes = [seed, period](int qi, Time t) {
    return t == 0 || noise(seed, qi, t, 17) % period == 0;
  };
  return std::make_shared<FnHistory>([inner_h, until, refreshes](int qi, Time t) {
    if (t >= until) return inner_h->at(qi, t);
    const Time scan_floor = std::max<Time>(Time{0}, t - 256);
    for (Time s = t; s >= scan_floor; --s) {
      if (refreshes(qi, s)) return inner_h->at(qi, s);
    }
    return inner_h->at(qi, 0);
  });
}

// ------------------------------------------------------------ stuttering

std::string StutteringFd::name() const {
  return "stuttering(" + inner_->name() + ")@" + std::to_string(until_);
}

HistoryPtr StutteringFd::history(const FailurePattern& f, std::uint64_t seed) const {
  const HistoryPtr inner_h = inner_->history(f, seed);
  if (until_ == 0) return inner_h;
  const Time until = until_;
  const auto period = static_cast<Time>(period_);
  return std::make_shared<FnHistory>([inner_h, until, period](int qi, Time t) {
    if (t >= until) return inner_h->at(qi, t);
    return inner_h->at(qi, (t / period) * period);
  });
}

// --------------------------------------------------------------- factory

DetectorPtr make_faulty(FdFaultKind kind, DetectorPtr inner, Time corrupt_until, int param) {
  switch (kind) {
    case FdFaultKind::kNone: return inner;
    case FdFaultKind::kLying: return std::make_shared<LyingFd>(std::move(inner), corrupt_until);
    case FdFaultKind::kOmissive:
      return std::make_shared<OmissiveFd>(std::move(inner), corrupt_until, param);
    case FdFaultKind::kStuttering:
      return std::make_shared<StutteringFd>(std::move(inner), corrupt_until, param);
  }
  return inner;
}

}  // namespace efd
