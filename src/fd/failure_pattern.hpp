// Failure patterns and environments (paper §2.1).
//
// Only S-processes fail. A failure pattern F maps each time τ to the set of
// S-processes crashed by τ; crashes are permanent. An environment E is a set
// of allowed failure patterns; E_t is the classic "at most t faulty"
// environment. The simulator represents a pattern by one crash time per
// S-process (Nil crash time = correct).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/ids.hpp"

namespace efd {

/// A concrete failure pattern over n S-processes.
class FailurePattern {
 public:
  /// All n S-processes correct.
  explicit FailurePattern(int n) : crash_at_(static_cast<std::size_t>(n)) {}

  /// Pattern with the given crash times (std::nullopt = never crashes).
  explicit FailurePattern(std::vector<std::optional<Time>> crash_at)
      : crash_at_(std::move(crash_at)) {}

  [[nodiscard]] int n() const noexcept { return static_cast<int>(crash_at_.size()); }

  /// Marks S-process qi crashed from time `t` on.
  void crash(int qi, Time t) { crash_at_.at(static_cast<std::size_t>(qi)) = t; }

  /// True iff qi has not crashed by time t (i.e. qi ∉ F(t)).
  [[nodiscard]] bool alive(int qi, Time t) const {
    const auto& c = crash_at_.at(static_cast<std::size_t>(qi));
    return !c.has_value() || t < *c;
  }

  /// True iff qi takes infinitely many steps in fair runs (never crashes).
  [[nodiscard]] bool correct(int qi) const {
    return !crash_at_.at(static_cast<std::size_t>(qi)).has_value();
  }

  [[nodiscard]] std::optional<Time> crash_time(int qi) const {
    return crash_at_.at(static_cast<std::size_t>(qi));
  }

  /// Indices of correct S-processes.
  [[nodiscard]] std::vector<int> correct_set() const;
  /// Indices of faulty S-processes.
  [[nodiscard]] std::vector<int> faulty_set() const;
  [[nodiscard]] int num_correct() const;
  [[nodiscard]] int num_faulty() const { return n() - num_correct(); }

  /// Latest crash time in the pattern (0 when failure-free) — a lower bound
  /// for any "after all crashes happened" stabilization point.
  [[nodiscard]] Time last_crash_time() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::optional<Time>> crash_at_;
};

/// The environment E_t: all patterns over n S-processes with at most t faulty
/// (and, per the paper's standing assumption, at least one correct process).
class Environment {
 public:
  Environment(int n, int max_faulty) : n_(n), t_(max_faulty) {}

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int max_faulty() const noexcept { return t_; }

  [[nodiscard]] bool allows(const FailurePattern& f) const {
    return f.n() == n_ && f.num_faulty() <= t_ && f.num_correct() >= 1;
  }

  /// All patterns in which each faulty process (any subset of size ≤ t)
  /// crashes at the single time `crash_time`. Exponential in n; intended for
  /// exhaustive checks at small n.
  [[nodiscard]] std::vector<FailurePattern> enumerate(Time crash_time) const;

  /// A deterministic pseudo-random pattern: `faults` processes (chosen by
  /// seed) crash at seed-derived times in [0, horizon).
  [[nodiscard]] FailurePattern sample(std::uint64_t seed, int faults, Time horizon) const;

 private:
  int n_;
  int t_;
};

/// The wait-free environment E_{n-1} over n S-processes.
inline Environment wait_free_env(int n) { return Environment(n, n - 1); }

}  // namespace efd
