// Failure-detector histories (paper §2.1).
//
// A history H maps (S-process, time) to the detector output sampled by that
// process at that time. A FailureDetector maps a failure pattern to a set of
// histories; the simulator draws one deterministic history per (pattern,
// seed) pair. "Eventual" properties are realized with an explicit global
// stabilization time (GST): before GST the history may be arbitrary
// (seed-derived noise), from GST on it satisfies the detector's promise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fd/failure_pattern.hpp"
#include "sim/ids.hpp"
#include "sim/value.hpp"

namespace efd {

/// One failure-detector history H : Π^S × T → R.
class History {
 public:
  virtual ~History() = default;
  /// Output of qi's module at time t. Only queried while qi is alive.
  [[nodiscard]] virtual Value at(int qi, Time t) const = 0;
};

/// History backed by an arbitrary function.
class FnHistory final : public History {
 public:
  explicit FnHistory(std::function<Value(int, Time)> fn) : fn_(std::move(fn)) {}
  [[nodiscard]] Value at(int qi, Time t) const override { return fn_(qi, t); }

 private:
  std::function<Value(int, Time)> fn_;
};

using HistoryPtr = std::shared_ptr<const History>;

}  // namespace efd
