#include "fd/reduction.hpp"

#include <algorithm>
#include <memory>

#include "sim/memory.hpp"

namespace efd {

ReductionRun run_reduction(const FailurePattern& pattern, const DetectorPtr& detector,
                           std::uint64_t seed, const std::vector<ProcBody>& s_bodies,
                           std::int64_t steps) {
  ReductionRun out;
  out.pattern = pattern;
  World w(pattern, detector->history(pattern, seed));
  for (std::size_t i = 0; i < s_bodies.size(); ++i) {
    w.spawn_s(static_cast<int>(i), s_bodies[i]);
  }
  w.enable_trace();
  RoundRobinScheduler rr;
  out.stop = drive(w, rr, steps);
  out.trace = w.trace();
  out.horizon = w.now();
  out.stats = w.run_stats();
  return out;
}

HistoryPtr history_from_out_registers(const Trace& trace, const std::string& out_base, int n,
                                      Value initial) {
  auto pubs = std::make_shared<std::vector<std::vector<std::pair<Time, Value>>>>(
      static_cast<std::size_t>(n));
  const Sym out_sym = sym(out_base);
  for (const auto& s : trace) {
    if (s.op != OpKind::kWrite || !s.pid.is_s()) continue;
    if (s.pid.index >= 0 && s.pid.index < n && s.addr == reg(out_sym, s.pid.index)) {
      (*pubs)[static_cast<std::size_t>(s.pid.index)].emplace_back(s.time, s.value);
    }
  }
  return std::make_shared<FnHistory>(
      [pubs, initial = std::move(initial)](int qi, Time t) {
        const auto& seq = (*pubs)[static_cast<std::size_t>(qi)];
        Value cur = initial;
        for (const auto& [when, v] : seq) {
          if (when > t) break;
          cur = v;
        }
        return cur;
      });
}

namespace {

// NOTE: every ProcBody below is a lambda that CALLS a standalone coroutine
// with by-value parameters. A lambda must never itself be the coroutine: its
// captures live in the lambda object, which dies after World::spawn, leaving
// the suspended frame with dangling references.

Proc vec_to_anti_converter(Context& ctx, std::string out_base, int n, int k) {
  const int me = ctx.pid().index;
  const RegAddr my_out = reg(sym(out_base), me);
  for (;;) {
    const Value sample = co_await ctx.query();  // k-vector of S-ids
    std::vector<bool> named(static_cast<std::size_t>(n), false);
    for (std::size_t j = 0; j < sample.size(); ++j) {
      const auto id = sample.at(j).int_or(-1);
      if (id >= 0 && id < n) named[static_cast<std::size_t>(id)] = true;
    }
    ValueVec out;
    // Duplicate slots in the sample leave the complement too large; truncate
    // to exactly n-k ids.
    for (int i = 0; i < n && static_cast<int>(out.size()) < n - k; ++i) {
      if (!named[static_cast<std::size_t>(i)]) out.emplace_back(i);
    }
    co_await ctx.write(my_out, Value(std::move(out)));
  }
}

Proc omega_to_vec_converter(Context& ctx, std::string out_base, int n, int k) {
  const int me = ctx.pid().index;
  const RegAddr my_out = reg(sym(out_base), me);
  std::int64_t tick = 0;
  for (;;) {
    const Value leader = co_await ctx.query();  // Ω: one S-id
    ValueVec out;
    out.push_back(leader);
    for (int j = 1; j < k; ++j) {
      out.emplace_back(static_cast<std::int64_t>((tick + j + me) % n));
    }
    ++tick;
    co_await ctx.write(my_out, Value(std::move(out)));
  }
}

}  // namespace

ProcBody make_vec_to_anti_converter(std::string out_base, int n, int k) {
  return [out_base = std::move(out_base), n, k](Context& ctx) {
    return vec_to_anti_converter(ctx, out_base, n, k);
  };
}

ProcBody make_omega_to_vec_converter(std::string out_base, int n, int k) {
  return [out_base = std::move(out_base), n, k](Context& ctx) {
    return omega_to_vec_converter(ctx, out_base, n, k);
  };
}

}  // namespace efd
