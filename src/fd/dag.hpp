// The Chandra–Hadzilacos–Toueg sampling DAG (paper Appendix B, after [9, 28]).
//
// S-processes periodically query their failure-detector module and publish
// the sampled values with causal predecessor edges; the union of these
// publications is a DAG G whose vertices [q_i, d, k] mean "q_i's k-th query
// returned d" and whose edges respect causal precedence. Two facts make G
// useful: (1) a crashed process contributes finitely many vertices, and
// (2) a correct process contributes infinitely many, each causally after
// everything published before it. The Fig. 1 extraction feeds simulated
// S-processes from G instead of the live detector.
//
// Representation: per-process, seq-ordered vertex lists; each vertex carries
// the latest sequence number of every process it causally follows. The DAG is
// Value-encodable so S-processes can exchange it through registers.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/proc.hpp"
#include "sim/world.hpp"

namespace efd {

/// Construction telemetry of one FdDag instance. merged_vertices counts
/// vertices adopted from other processes' publications — the causal-edge
/// traffic the Appendix B extraction depends on.
struct DagStats {
  std::int64_t appends = 0;          ///< vertices this instance sampled itself
  std::int64_t merged_vertices = 0;  ///< vertices adopted via merge()
  std::int64_t merges = 0;           ///< merge() calls
};

struct DagVertex {
  int proc = 0;           ///< S-index of the sampler
  int seq = 0;            ///< 0-based query count of `proc`
  Value sample;           ///< the detector's answer
  std::vector<int> preds; ///< preds[j] = highest seq of q_j seen before this query (-1 = none)
};

class FdDag {
 public:
  explicit FdDag(int n) : per_proc_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] int n() const noexcept { return static_cast<int>(per_proc_.size()); }
  [[nodiscard]] const std::vector<DagVertex>& of(int proc) const {
    return per_proc_.at(static_cast<std::size_t>(proc));
  }
  [[nodiscard]] int count(int proc) const { return static_cast<int>(of(proc).size()); }
  [[nodiscard]] int total() const;

  /// Appends q_proc's next vertex; preds must have size n.
  void append(int proc, Value sample, std::vector<int> preds);

  /// Union with another publication of the same system (vertices are keyed by
  /// (proc, seq); identical keys must carry identical samples).
  void merge(const FdDag& other);

  /// The seq-ordered samples of q_proc — what a simulated q_proc consumes.
  [[nodiscard]] ValueVec samples_of(int proc) const;

  /// True iff vertex (proc_a, seq_a) causally precedes (proc_b, seq_b).
  [[nodiscard]] bool precedes(int proc_a, int seq_a, int proc_b, int seq_b) const;

  [[nodiscard]] Value encode() const;
  [[nodiscard]] static FdDag decode(const Value& v);

  [[nodiscard]] const DagStats& stats() const noexcept { return stats_; }

 private:
  std::vector<std::vector<DagVertex>> per_proc_;
  DagStats stats_;
};

/// S-process body that builds the DAG forever: each round it queries the
/// detector, merges every other process's publication, appends a vertex
/// causally after everything it saw, and republishes at reg(ns + "/dag", i).
ProcBody make_dag_builder(std::string ns, int n);

/// Host-side: assemble the full DAG from the publication registers of `w`.
[[nodiscard]] FdDag read_dag(const World& w, const std::string& ns, int n);

}  // namespace efd
