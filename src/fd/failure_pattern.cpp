#include "fd/failure_pattern.hpp"

#include <algorithm>
#include <sstream>

namespace efd {
namespace {

// SplitMix64: small deterministic PRNG step used for pattern sampling.
std::uint64_t mix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<int> FailurePattern::correct_set() const {
  std::vector<int> out;
  for (int i = 0; i < n(); ++i) {
    if (correct(i)) out.push_back(i);
  }
  return out;
}

std::vector<int> FailurePattern::faulty_set() const {
  std::vector<int> out;
  for (int i = 0; i < n(); ++i) {
    if (!correct(i)) out.push_back(i);
  }
  return out;
}

int FailurePattern::num_correct() const {
  return static_cast<int>(correct_set().size());
}

Time FailurePattern::last_crash_time() const {
  Time t = 0;
  for (int i = 0; i < n(); ++i) {
    if (const auto c = crash_time(i)) t = std::max(t, *c);
  }
  return t;
}

std::string FailurePattern::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int i = 0; i < n(); ++i) {
    if (const auto c = crash_time(i)) {
      if (!first) os << ", ";
      first = false;
      os << "q" << (i + 1) << "@" << *c;
    }
  }
  os << "}";
  return first ? std::string("{failure-free}") : os.str();
}

std::vector<FailurePattern> Environment::enumerate(Time crash_time) const {
  std::vector<FailurePattern> out;
  // 1ULL: n_ == 31 or 32 would overflow a 32-bit shift into UB.
  const std::uint64_t limit = 1ULL << n_;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const int faults = __builtin_popcountll(mask);
    // n_ == 0: keep the one (empty, failure-free) pattern instead of
    // excluding it as "everyone crashed".
    if (faults > t_ || (n_ > 0 && faults == n_)) continue;
    FailurePattern f(n_);
    for (int i = 0; i < n_; ++i) {
      if ((mask >> i) & 1U) f.crash(i, crash_time);
    }
    out.push_back(std::move(f));
  }
  return out;
}

FailurePattern Environment::sample(std::uint64_t seed, int faults, Time horizon) const {
  // Clamp below as well: a negative request (or n_ == 0, where n_ - 1 is
  // -1) must sample the failure-free pattern, not run a negative-length
  // Fisher-Yates prefix.
  faults = std::max(0, std::min({faults, t_, n_ - 1}));
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ULL + 1;
  std::vector<int> ids(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) ids[static_cast<std::size_t>(i)] = i;
  // Deterministic Fisher-Yates prefix to pick the faulty set.
  for (int i = 0; i < faults; ++i) {
    const auto j = i + static_cast<int>(mix(s) % static_cast<std::uint64_t>(n_ - i));
    std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
  }
  FailurePattern f(n_);
  for (int i = 0; i < faults; ++i) {
    const Time when = horizon > 0 ? static_cast<Time>(mix(s) % static_cast<std::uint64_t>(horizon))
                                  : 0;
    f.crash(ids[static_cast<std::size_t>(i)], when);
  }
  return f;
}

}  // namespace efd
