#include "fd/emulations.hpp"

#include <memory>

namespace efd {

HistoryPtr MappedDetector::history(const FailurePattern& f, std::uint64_t seed) const {
  auto src = source_->history(f, seed);
  auto map = map_;
  return std::make_shared<FnHistory>(
      [src, map](int qi, Time t) { return map(qi, t, src->at(qi, t)); });
}

DetectorPtr omega_from_diamond_p(DetectorPtr diamond_p, int n) {
  return std::make_shared<MappedDetector>(
      std::move(diamond_p), "Omega(from diamondP)",
      [n](int, Time, const Value& suspects) {
        std::vector<bool> bad(static_cast<std::size_t>(n), false);
        for (std::size_t j = 0; j < suspects.size(); ++j) {
          const auto id = suspects.at(j).int_or(-1);
          if (id >= 0 && id < n) bad[static_cast<std::size_t>(id)] = true;
        }
        for (int i = 0; i < n; ++i) {
          if (!bad[static_cast<std::size_t>(i)]) return Value(i);
        }
        return Value(0);  // everyone suspected (pre-stabilization noise)
      });
}

DetectorPtr vec_omega_from_omega(DetectorPtr omega, int n, int k) {
  return std::make_shared<MappedDetector>(
      std::move(omega), "vecOmega" + std::to_string(k) + "(from Omega)",
      [n, k](int qi, Time t, const Value& leader) {
        ValueVec out;
        out.reserve(static_cast<std::size_t>(k));
        out.push_back(leader);
        for (int j = 1; j < k; ++j) {
          out.emplace_back(static_cast<std::int64_t>((t + j + qi) % n));
        }
        return Value(std::move(out));
      });
}

DetectorPtr anti_omega_from_vec_omega(DetectorPtr vec_omega, int n, int k) {
  return std::make_shared<MappedDetector>(
      std::move(vec_omega), "antiOmega" + std::to_string(k) + "(from vecOmega)",
      [n, k](int, Time, const Value& slots) {
        std::vector<bool> named(static_cast<std::size_t>(n), false);
        for (std::size_t j = 0; j < slots.size(); ++j) {
          const auto id = slots.at(j).int_or(-1);
          if (id >= 0 && id < n) named[static_cast<std::size_t>(id)] = true;
        }
        ValueVec out;
        for (int i = 0; i < n && static_cast<int>(out.size()) < n - k; ++i) {
          if (!named[static_cast<std::size_t>(i)]) out.emplace_back(i);
        }
        return Value(std::move(out));
      });
}

}  // namespace efd
