// Faulty-advice wrappers: corrupt any inner detector's output for a finite
// prefix (paper Thm. 8/9 regime — failure detectors are only EVENTUALLY
// correct, so algorithms must survive an arbitrary finite prefix of lies).
//
// Each wrapper takes an inner detector and a corruption window bound
// `corrupt_until` (the wrapper's own GST): histories agree with the inner
// detector's history EXACTLY from max(corrupt_until, inner stabilization) on,
// so every eventual property of the inner detector is preserved by
// construction — the wrappers never weaken the advice, only delay it.
// Before the window closes, each wrapper corrupts differently:
//
//  * LyingFd       — arbitrary adversarial output: samples the INNER history
//                    at seed-scrambled (process, time) coordinates, so lies
//                    are type-correct for any inner detector (a ¬Ωk sample
//                    stays a set of exactly n−k ids) but carry no truth;
//  * OmissiveFd    — drops updates: only a seed-chosen ~1/drop_period subset
//                    of sample times deliver a fresh inner value; in between
//                    the module serves the last delivered one;
//  * StutteringFd  — stale snapshots: serves the inner value frozen at the
//                    last multiple of `period` ≤ t (a coarse module clock).
//
// All three keep per-sample TYPE invariants because every output is the
// inner history evaluated at some (possibly wrong) coordinate pair.
#pragma once

#include <string>

#include "fd/detectors.hpp"

namespace efd {

/// The corruption families a FaultPlan can apply to a scenario's advice.
enum class FdFaultKind : std::uint8_t { kNone, kLying, kOmissive, kStuttering };

[[nodiscard]] const char* to_string(FdFaultKind k);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] FdFaultKind fd_fault_kind_from(const std::string& name);

/// Common shape of the wrappers: inner detector + corruption window.
class FaultyFdBase : public FailureDetector {
 public:
  FaultyFdBase(DetectorPtr inner, Time corrupt_until);

  /// max(own corruption window, inner stabilization): from here the wrapped
  /// history equals the inner one AND the inner promise holds.
  [[nodiscard]] Time stabilization_time(const FailurePattern& f) const override;

  [[nodiscard]] const DetectorPtr& inner() const noexcept { return inner_; }
  [[nodiscard]] Time corrupt_until() const noexcept { return until_; }

 protected:
  DetectorPtr inner_;
  Time until_;
};

/// Arbitrary lies before the window closes: output = inner history at
/// seed-scrambled coordinates (see file comment).
class LyingFd final : public FaultyFdBase {
 public:
  LyingFd(DetectorPtr inner, Time corrupt_until) : FaultyFdBase(std::move(inner), corrupt_until) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
};

/// Dropped updates: before the window closes only seed-chosen refresh times
/// deliver a fresh inner sample; other times repeat the last delivered one
/// (the initial sample is inner@0, so outputs stay type-correct).
class OmissiveFd final : public FaultyFdBase {
 public:
  OmissiveFd(DetectorPtr inner, Time corrupt_until, int drop_period = 8)
      : FaultyFdBase(std::move(inner), corrupt_until), drop_period_(drop_period < 1 ? 1 : drop_period) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
  [[nodiscard]] int drop_period() const noexcept { return drop_period_; }

 private:
  int drop_period_;
};

/// Stale snapshots: before the window closes the module serves the inner
/// value frozen at the last multiple of `period` ≤ t.
class StutteringFd final : public FaultyFdBase {
 public:
  StutteringFd(DetectorPtr inner, Time corrupt_until, int period = 8)
      : FaultyFdBase(std::move(inner), corrupt_until), period_(period < 1 ? 1 : period) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
  [[nodiscard]] int period() const noexcept { return period_; }

 private:
  int period_;
};

/// Wraps `inner` per `kind` (kNone returns `inner` unchanged). `param` is
/// drop_period / period for the omissive / stuttering families; ignored for
/// lying.
[[nodiscard]] DetectorPtr make_faulty(FdFaultKind kind, DetectorPtr inner, Time corrupt_until,
                                      int param = 8);

}  // namespace efd
