// Concrete failure detectors (paper §2.3 and [28]).
//
// Each detector maps a failure pattern (plus a seed and a stabilization time
// GST) to one history. Before GST outputs are adversarial seed-derived noise
// that still respects the detector's per-sample type (e.g. ¬Ωk always emits a
// set of exactly n−k process ids); from GST on the eventual promise holds.
// Each detector also ships a `check` that verifies a history against the
// detector's specification on a finite horizon — used by tests and by the
// reduction harness to validate emulated detectors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fd/failure_pattern.hpp"
#include "fd/history.hpp"

namespace efd {

/// Abstract failure detector D.
class FailureDetector {
 public:
  virtual ~FailureDetector() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// One history in D(F), deterministic in (F, seed).
  [[nodiscard]] virtual HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const = 0;

  /// Earliest time from which this detector's history (as produced above) is
  /// guaranteed to satisfy its eventual promise for pattern `f`.
  [[nodiscard]] virtual Time stabilization_time(const FailurePattern& f) const = 0;
};

using DetectorPtr = std::shared_ptr<const FailureDetector>;

/// The trivial detector: always outputs ⊥. Solving a task with it is exactly
/// wait-free (restricted-algorithm) solvability when n ≥ m (Prop. 2).
class TrivialFd final : public FailureDetector {
 public:
  [[nodiscard]] std::string name() const override { return "trivial"; }
  [[nodiscard]] HistoryPtr history(const FailurePattern&, std::uint64_t) const override;
  [[nodiscard]] Time stabilization_time(const FailurePattern&) const override { return 0; }
};

/// Ω: eventually every correct S-process permanently outputs the same correct
/// S-process id. Output encoding: Int (0-based S-index).
class OmegaFd final : public FailureDetector {
 public:
  explicit OmegaFd(Time gst) : gst_(gst) {}
  [[nodiscard]] std::string name() const override { return "Omega"; }
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
  [[nodiscard]] Time stabilization_time(const FailurePattern& f) const override;

  /// Spec check on [0, horizon): some correct leader is output by every alive
  /// process at every time ≥ some τ < horizon.
  static bool check(const FailurePattern& f, const History& h, Time horizon);

 private:
  Time gst_;
};

/// ¬Ωk (anti-Omega-k): each sample is a set of exactly n−k S-ids; eventually
/// some correct process is never output at any correct process. Output
/// encoding: Vec of n−k Ints, sorted.
class AntiOmegaK final : public FailureDetector {
 public:
  AntiOmegaK(int k, Time gst) : k_(k), gst_(gst) {}
  [[nodiscard]] std::string name() const override { return "antiOmega" + std::to_string(k_); }
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
  [[nodiscard]] Time stabilization_time(const FailurePattern& f) const override;
  [[nodiscard]] int k() const noexcept { return k_; }

  static bool check(int k, const FailurePattern& f, const History& h, Time horizon);

 private:
  int k_;
  Time gst_;
};

/// Vector-Ω-k (written →Ωk in the paper): each sample is a k-vector of S-ids;
/// eventually at least one position stabilizes on the same correct process at
/// all correct processes. Equivalent to ¬Ωk [28]. Output encoding: Vec of k
/// Ints.
class VectorOmegaK final : public FailureDetector {
 public:
  VectorOmegaK(int k, Time gst) : k_(k), gst_(gst) {}
  [[nodiscard]] std::string name() const override { return "vecOmega" + std::to_string(k_); }
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
  [[nodiscard]] Time stabilization_time(const FailurePattern& f) const override;
  [[nodiscard]] int k() const noexcept { return k_; }
  /// The vector slot that stabilizes in histories produced by this instance.
  [[nodiscard]] int stable_slot(const FailurePattern& f, std::uint64_t seed) const;

  static bool check(int k, const FailurePattern& f, const History& h, Time horizon);

 private:
  int k_;
  Time gst_;
};

/// The eventually-perfect-style detector ◇P restricted to completeness +
/// eventual accuracy: outputs the set of S-ids it currently suspects.
/// Encoding: Vec of Ints (sorted suspect list). Included as a strong
/// reference point for reduction experiments.
class EventuallyPerfectFd final : public FailureDetector {
 public:
  explicit EventuallyPerfectFd(Time gst) : gst_(gst) {}
  [[nodiscard]] std::string name() const override { return "diamondP"; }
  [[nodiscard]] HistoryPtr history(const FailurePattern& f, std::uint64_t seed) const override;
  [[nodiscard]] Time stabilization_time(const FailurePattern& f) const override;

 private:
  Time gst_;
};

}  // namespace efd
