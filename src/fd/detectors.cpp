#include "fd/detectors.hpp"

#include <algorithm>

namespace efd {
namespace {

// Deterministic noise: hash of (seed, qi, t, salt).
std::uint64_t noise(std::uint64_t seed, int qi, Time t, std::uint64_t salt) {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(qi) << 32) ^
                    static_cast<std::uint64_t>(t) ^ (salt * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// The canonical "safe" correct process: the smallest correct index.
int safe_process(const FailurePattern& f) {
  const auto c = f.correct_set();
  return c.empty() ? 0 : c.front();
}

Value sorted_set_value(std::vector<int> ids) {
  std::sort(ids.begin(), ids.end());
  ValueVec out;
  out.reserve(ids.size());
  for (int id : ids) out.emplace_back(id);
  return Value(std::move(out));
}

// A pseudo-random subset of {0..n-1} of size `sz` (clamped into [0, n]:
// anti-Omega-k with k > n would otherwise ask for a negative size, and the
// size_t cast in resize would turn that into a huge allocation).
std::vector<int> noise_subset(int n, int sz, std::uint64_t seed, int qi, Time t) {
  sz = std::max(0, std::min(sz, n));
  std::vector<int> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < sz; ++i) {
    const auto j =
        i + static_cast<int>(noise(seed, qi, t, static_cast<std::uint64_t>(i)) %
                             static_cast<std::uint64_t>(n - i));
    std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
  }
  ids.resize(static_cast<std::size_t>(sz));
  return ids;
}

}  // namespace

// ---------------------------------------------------------------- trivial

HistoryPtr TrivialFd::history(const FailurePattern&, std::uint64_t) const {
  return std::make_shared<FnHistory>([](int, Time) { return Value{}; });
}

// ------------------------------------------------------------------ Omega

HistoryPtr OmegaFd::history(const FailurePattern& f, std::uint64_t seed) const {
  const int n = f.n();
  // Zero-S world: there is nobody to elect (and the pre-stable noise would
  // divide by zero); the module output is ⊥ forever.
  if (n == 0) {
    return std::make_shared<FnHistory>([](int, Time) { return Value{}; });
  }
  const int safe = safe_process(f);
  const Time stable = stabilization_time(f);
  return std::make_shared<FnHistory>([n, safe, stable, seed](int qi, Time t) {
    if (t >= stable) return Value(safe);
    return Value(static_cast<int>(noise(seed, qi, t, 7) % static_cast<std::uint64_t>(n)));
  });
}

Time OmegaFd::stabilization_time(const FailurePattern& f) const {
  return std::max(gst_, f.last_crash_time() + 1);
}

bool OmegaFd::check(const FailurePattern& f, const History& h, Time horizon) {
  const auto correct = f.correct_set();
  if (correct.empty() || horizon <= 0) return false;
  const Value last = h.at(correct.front(), horizon - 1);
  if (!last.is_int()) return false;
  const int leader = static_cast<int>(last.as_int());
  if (!f.correct(leader)) return false;
  // Finite-horizon reading of "eventually forever": every correct process
  // outputs `leader` throughout at least the last quarter of the horizon
  // (a 1-step suffix would make the check vacuously true).
  const Time tail_start = horizon - std::max<Time>(1, horizon / 4);
  for (Time t = horizon - 1; t >= 0; --t) {
    for (int qi : correct) {
      if (h.at(qi, t) != last) return t < tail_start;
    }
  }
  return true;
}

// ------------------------------------------------------------- anti-Omega-k

HistoryPtr AntiOmegaK::history(const FailurePattern& f, std::uint64_t seed) const {
  const int n = f.n();
  const int k = k_;
  const int safe = safe_process(f);
  const Time stable = stabilization_time(f);
  // Stable output: the first n-k non-safe ids in sorted order.
  std::vector<int> stable_ids;
  for (int i = 0; i < n && static_cast<int>(stable_ids.size()) < n - k; ++i) {
    if (i != safe) stable_ids.push_back(i);
  }
  const Value stable_out = sorted_set_value(stable_ids);
  return std::make_shared<FnHistory>([n, k, stable, stable_out, seed](int qi, Time t) {
    if (t >= stable) return stable_out;
    return sorted_set_value(noise_subset(n, n - k, seed, qi, t));
  });
}

Time AntiOmegaK::stabilization_time(const FailurePattern& f) const {
  return std::max(gst_, f.last_crash_time() + 1);
}

bool AntiOmegaK::check(int k, const FailurePattern& f, const History& h, Time horizon) {
  const int n = f.n();
  const auto correct = f.correct_set();
  if (correct.empty() || horizon <= 0) return false;
  // Every sample must be a set of exactly n-k ids.
  for (int qi : correct) {
    for (Time t = 0; t < horizon; ++t) {
      const Value v = h.at(qi, t);
      if (!v.is_vec() || static_cast<int>(v.size()) != n - k) return false;
    }
  }
  // Some correct process is absent from all correct samples throughout at
  // least the last quarter of the horizon (the finite-horizon reading of
  // "eventually never output"; a 1-step suffix would be vacuous).
  const Time tail_start = horizon - std::max<Time>(1, horizon / 4);
  for (int cand : correct) {
    Time last_seen = -1;
    for (int qi : correct) {
      for (Time t = 0; t < horizon; ++t) {
        const Value v = h.at(qi, t);
        for (std::size_t j = 0; j < v.size(); ++j) {
          if (v.at(j).int_or(-1) == cand) last_seen = std::max(last_seen, t);
        }
      }
    }
    if (last_seen < tail_start) return true;
  }
  return false;
}

// ----------------------------------------------------------- vector-Omega-k

HistoryPtr VectorOmegaK::history(const FailurePattern& f, std::uint64_t seed) const {
  const int n = f.n();
  // Zero-S world: nothing to point at (and the rotating noise would divide
  // by zero); every slot is ⊥ forever.
  if (n == 0) {
    const int k = k_;
    return std::make_shared<FnHistory>([k](int, Time) {
      return Value(ValueVec(static_cast<std::size_t>(k)));
    });
  }
  const int k = k_;
  const int safe = safe_process(f);
  const int slot = stable_slot(f, seed);
  const Time stable = stabilization_time(f);
  return std::make_shared<FnHistory>([n, k, safe, slot, stable, seed](int qi, Time t) {
    ValueVec out;
    out.reserve(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      if (t >= stable && j == slot) {
        out.emplace_back(safe);
      } else {
        // Rotating noise on non-promised slots: a legal →Ωk history (only the
        // stable slot is constrained) that is deterministically adversarial —
        // under lockstep schedules it keeps handing non-stable instances to
        // fresh proposers, the behaviour the Fig. 1 extraction exploits.
        const auto phase = static_cast<std::uint64_t>(t) + static_cast<std::uint64_t>(13 * j) +
                           static_cast<std::uint64_t>(5 * qi) + seed;
        out.emplace_back(static_cast<int>(phase % static_cast<std::uint64_t>(n)));
      }
    }
    return Value(std::move(out));
  });
}

int VectorOmegaK::stable_slot(const FailurePattern&, std::uint64_t seed) const {
  return static_cast<int>(seed % static_cast<std::uint64_t>(k_));
}

Time VectorOmegaK::stabilization_time(const FailurePattern& f) const {
  return std::max(gst_, f.last_crash_time() + 1);
}

bool VectorOmegaK::check(int k, const FailurePattern& f, const History& h, Time horizon) {
  const auto correct = f.correct_set();
  if (correct.empty() || horizon <= 0) return false;
  for (int slot = 0; slot < k; ++slot) {
    const Value last = h.at(correct.front(), horizon - 1).at(static_cast<std::size_t>(slot));
    if (!last.is_int() || !f.correct(static_cast<int>(last.as_int()))) continue;
    bool clean = true;
    // Require the stabilization to cover at least the last quarter of the
    // horizon so the check is meaningful for algorithms run past GST.
    const Time tail_start = horizon - std::max<Time>(1, horizon / 4);
    for (Time t = tail_start; t < horizon && clean; ++t) {
      for (int qi : correct) {
        if (h.at(qi, t).at(static_cast<std::size_t>(slot)) != last) {
          clean = false;
          break;
        }
      }
    }
    if (clean) return true;
  }
  return false;
}

// --------------------------------------------------------------- diamond-P

HistoryPtr EventuallyPerfectFd::history(const FailurePattern& f, std::uint64_t seed) const {
  const int n = f.n();
  const Time stable = stabilization_time(f);
  const FailurePattern pat = f;
  return std::make_shared<FnHistory>([n, stable, seed, pat](int qi, Time t) {
    if (t >= stable) {
      std::vector<int> suspects;
      for (int j = 0; j < n; ++j) {
        if (!pat.alive(j, t)) suspects.push_back(j);
      }
      return sorted_set_value(std::move(suspects));
    }
    const int sz = static_cast<int>(noise(seed, qi, t, 3) % static_cast<std::uint64_t>(n));
    return sorted_set_value(noise_subset(n, sz, seed, qi, t));
  });
}

Time EventuallyPerfectFd::stabilization_time(const FailurePattern& f) const {
  return std::max(gst_, f.last_crash_time() + 1);
}

}  // namespace efd
