// (j, ℓ)-renaming (paper §5, [3]).
//
// Defined on n > j processes; in every run at most j processes participate.
// Inputs are distinct original names (positive ints from a large space);
// every participant must output a distinct new name in {1..ℓ}. Strong
// j-renaming is (j, j)-renaming. Renaming is a *colored* task: a process may
// not adopt another's output, which is exactly why it evaded weakest-FD
// characterizations before the EFD framework.
#pragma once

#include "tasks/task.hpp"

namespace efd {

class RenamingTask final : public Task {
 public:
  RenamingTask(int n, int j, int l);

  /// Strong j-renaming: (j, j)-renaming.
  static RenamingTask strong(int n, int j) { return {n, j, j}; }

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int n_procs() const override { return n_; }
  [[nodiscard]] int max_participants() const noexcept { return j_; }
  [[nodiscard]] int namespace_size() const noexcept { return l_; }

  [[nodiscard]] bool input_ok(const ValueVec& in) const override;
  [[nodiscard]] bool relation(const ValueVec& in, const ValueVec& out) const override;
  [[nodiscard]] Value pick_output(const ValueVec& in, const ValueVec& out, int i) const override;
  [[nodiscard]] ValueVec sample_input(std::uint64_t seed) const override;

 private:
  int n_;
  int j_;
  int l_;
};

}  // namespace efd
