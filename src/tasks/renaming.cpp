#include "tasks/renaming.hpp"

#include <algorithm>
#include <stdexcept>

namespace efd {

RenamingTask::RenamingTask(int n, int j, int l) : n_(n), j_(j), l_(l) {
  if (!(0 < j && j < n)) throw std::invalid_argument("RenamingTask: need 0 < j < n");
  if (l < j) throw std::invalid_argument("RenamingTask: namespace smaller than participants");
}

std::string RenamingTask::name() const {
  return "(" + std::to_string(j_) + "," + std::to_string(l_) + ")-renaming[n=" +
         std::to_string(n_) + "]";
}

bool RenamingTask::input_ok(const ValueVec& in) const {
  if (static_cast<int>(in.size()) != n_) return false;
  const auto parts = participants(in);
  if (static_cast<int>(parts.size()) > j_) return false;
  std::vector<Value> names;
  for (int i : parts) {
    const Value& v = in[static_cast<std::size_t>(i)];
    if (!v.is_int() || v.as_int() < 1) return false;  // original names: positive ints
    names.push_back(v);
  }
  std::sort(names.begin(), names.end());
  return std::adjacent_find(names.begin(), names.end()) == names.end();  // distinct
}

bool RenamingTask::relation(const ValueVec& in, const ValueVec& out) const {
  if (!input_ok(in) || static_cast<int>(out.size()) != n_) return false;
  if (!outputs_within_inputs(in, out)) return false;
  std::vector<std::int64_t> names;
  for (const auto& v : out) {
    if (v.is_nil()) continue;
    if (!v.is_int()) return false;
    const auto x = v.as_int();
    if (x < 1 || x > l_) return false;
    names.push_back(x);
  }
  std::sort(names.begin(), names.end());
  return std::adjacent_find(names.begin(), names.end()) == names.end();
}

Value RenamingTask::pick_output(const ValueVec&, const ValueVec& out, int) const {
  // Smallest name in {1..l} not already taken; exists while ≤ j ≤ l
  // participants hold names.
  std::vector<std::int64_t> taken;
  for (const auto& v : out) {
    if (v.is_int()) taken.push_back(v.as_int());
  }
  std::sort(taken.begin(), taken.end());
  std::int64_t cand = 1;
  for (const auto t : taken) {
    if (t == cand) ++cand;
  }
  if (cand > l_) throw std::logic_error("RenamingTask::pick_output: namespace exhausted");
  return Value(cand);
}

ValueVec RenamingTask::sample_input(std::uint64_t seed) const {
  // First j processes (rotated by seed) participate with distinct large names.
  ValueVec in(static_cast<std::size_t>(n_));
  const int rot = static_cast<int>(seed % static_cast<std::uint64_t>(n_));
  for (int a = 0; a < j_; ++a) {
    const int i = (a + rot) % n_;
    in[static_cast<std::size_t>(i)] = Value(static_cast<std::int64_t>(100 + i));
  }
  return in;
}

}  // namespace efd
