#include "tasks/symmetry_breaking.hpp"

#include <algorithm>
#include <stdexcept>

namespace efd {

WeakSymmetryBreakingTask::WeakSymmetryBreakingTask(int n) : n_(n) {
  if (n < 2) throw std::invalid_argument("WeakSymmetryBreakingTask: need n >= 2");
}

bool WeakSymmetryBreakingTask::input_ok(const ValueVec& in) const {
  if (static_cast<int>(in.size()) != n_) return false;
  // Inputs are distinct identities (positive ints), as in renaming-style
  // colored tasks; participation is unrestricted.
  std::vector<Value> names;
  for (const auto& v : in) {
    if (v.is_nil()) continue;
    if (!v.is_int() || v.as_int() < 1) return false;
    names.push_back(v);
  }
  std::sort(names.begin(), names.end());
  return std::adjacent_find(names.begin(), names.end()) == names.end();
}

bool WeakSymmetryBreakingTask::relation(const ValueVec& in, const ValueVec& out) const {
  if (!input_ok(in) || static_cast<int>(out.size()) != n_) return false;
  if (!outputs_within_inputs(in, out)) return false;
  int zeros = 0;
  int ones = 0;
  int decided = 0;
  for (const auto& v : out) {
    if (v.is_nil()) continue;
    const auto x = v.int_or(-1);
    if (x != 0 && x != 1) return false;
    ++decided;
    (x == 0 ? zeros : ones) += 1;
  }
  // The "not all equal" obligation only binds on the complete output of a
  // full-participation run.
  if (decided == n_ && (zeros == 0 || ones == 0)) return false;
  return true;
}

Value WeakSymmetryBreakingTask::pick_output(const ValueVec&, const ValueVec& out, int) const {
  int zeros = 0;
  int ones = 0;
  int decided = 0;
  for (const auto& v : out) {
    if (v.is_nil()) continue;
    ++decided;
    (v.int_or(0) == 0 ? zeros : ones) += 1;
  }
  if (decided == n_ - 1) {
    // Last decider: break symmetry if everyone so far agreed.
    if (zeros == 0) return Value(0);
    if (ones == 0) return Value(1);
  }
  return Value(0);
}

ValueVec WeakSymmetryBreakingTask::sample_input(std::uint64_t seed) const {
  ValueVec in(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    in[static_cast<std::size_t>(i)] =
        Value(static_cast<std::int64_t>(1 + ((seed + static_cast<std::uint64_t>(i) * 17) % 1000) * static_cast<std::uint64_t>(n_) + static_cast<std::uint64_t>(i)));
  }
  return in;
}

}  // namespace efd
