#include "tasks/consensus.hpp"

namespace efd {

ValueVec ConsensusTask::sample_input(std::uint64_t seed) const {
  // Binary consensus inputs keep the bivalence search space small.
  ValueVec in(static_cast<std::size_t>(n_procs()));
  for (int i = 0; i < n_procs(); ++i) {
    in[static_cast<std::size_t>(i)] =
        Value(static_cast<std::int64_t>((seed >> (i % 63)) & 1ULL));
  }
  return in;
}

}  // namespace efd
