// The identity task: every participant outputs its own input. Wait-free
// solvable (level n in the hierarchy) — the menu's calibration point showing
// that class-n tasks need no advice at all (Prop. 2).
#pragma once

#include "tasks/task.hpp"

namespace efd {

class IdentityTask final : public Task {
 public:
  explicit IdentityTask(int n) : n_(n) {}

  [[nodiscard]] std::string name() const override {
    return "identity[n=" + std::to_string(n_) + "]";
  }
  [[nodiscard]] int n_procs() const override { return n_; }

  [[nodiscard]] bool input_ok(const ValueVec& in) const override {
    return static_cast<int>(in.size()) == n_;
  }
  [[nodiscard]] bool relation(const ValueVec& in, const ValueVec& out) const override {
    if (!input_ok(in) || static_cast<int>(out.size()) != n_) return false;
    for (int i = 0; i < n_; ++i) {
      const Value& o = out[static_cast<std::size_t>(i)];
      if (!o.is_nil() && o != in[static_cast<std::size_t>(i)]) return false;
    }
    return outputs_within_inputs(in, out);
  }
  [[nodiscard]] Value pick_output(const ValueVec& in, const ValueVec&, int i) const override {
    return in.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] ValueVec sample_input(std::uint64_t seed) const override {
    ValueVec in(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      in[static_cast<std::size_t>(i)] = Value(static_cast<std::int64_t>(seed % 97) + i);
    }
    return in;
  }

 private:
  int n_;
};

}  // namespace efd
