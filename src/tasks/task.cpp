#include "tasks/task.hpp"

#include <algorithm>

namespace efd {

std::vector<int> Task::participants(const ValueVec& in) {
  std::vector<int> out;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (!in[i].is_nil()) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<Value> Task::distinct_values(const ValueVec& v) {
  std::vector<Value> vals;
  for (const auto& x : v) {
    if (!x.is_nil()) vals.push_back(x);
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

bool Task::outputs_within_inputs(const ValueVec& in, const ValueVec& out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!out[i].is_nil() && (i >= in.size() || in[i].is_nil())) return false;
  }
  return true;
}

ValueVec restrict_to(const ValueVec& in, const std::vector<int>& keep) {
  ValueVec out(in.size());
  for (int i : keep) {
    if (i >= 0 && static_cast<std::size_t>(i) < in.size()) out[static_cast<std::size_t>(i)] = in[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace efd
