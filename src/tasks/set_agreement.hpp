// (U, k)-set agreement (paper §2.1).
//
// Processes in U ⊆ Π^C propose values; every decided value must be some
// participant's proposal, and at most k distinct values may be decided.
// (Π^C, k)-agreement is classic k-set agreement; (Π^C, 1)-agreement is
// consensus. Set agreement is colorless: adopting another participant's
// input or output is always legal.
#pragma once

#include <vector>

#include "tasks/task.hpp"

namespace efd {

class SetAgreementTask final : public Task {
 public:
  /// Agreement among all n processes.
  SetAgreementTask(int n, int k);
  /// Agreement among U (0-based C-indices); others must not participate.
  SetAgreementTask(int n, int k, std::vector<int> u);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int n_procs() const override { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] const std::vector<int>& scope() const noexcept { return u_; }

  [[nodiscard]] bool input_ok(const ValueVec& in) const override;
  [[nodiscard]] bool relation(const ValueVec& in, const ValueVec& out) const override;
  [[nodiscard]] Value pick_output(const ValueVec& in, const ValueVec& out, int i) const override;
  [[nodiscard]] bool colorless() const override { return true; }
  [[nodiscard]] ValueVec sample_input(std::uint64_t seed) const override;

 private:
  [[nodiscard]] bool in_scope(int i) const;

  int n_;
  int k_;
  std::vector<int> u_;  ///< sorted scope
};

}  // namespace efd
