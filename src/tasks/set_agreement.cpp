#include "tasks/set_agreement.hpp"

#include <algorithm>
#include <stdexcept>

namespace efd {

SetAgreementTask::SetAgreementTask(int n, int k) : n_(n), k_(k) {
  if (n < 1 || k < 1) throw std::invalid_argument("SetAgreementTask: need n,k >= 1");
  u_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) u_[static_cast<std::size_t>(i)] = i;
}

SetAgreementTask::SetAgreementTask(int n, int k, std::vector<int> u) : n_(n), k_(k), u_(std::move(u)) {
  if (n < 1 || k < 1) throw std::invalid_argument("SetAgreementTask: need n,k >= 1");
  std::sort(u_.begin(), u_.end());
  u_.erase(std::unique(u_.begin(), u_.end()), u_.end());
  for (int i : u_) {
    if (i < 0 || i >= n) throw std::invalid_argument("SetAgreementTask: scope index out of range");
  }
}

std::string SetAgreementTask::name() const {
  const bool full = static_cast<int>(u_.size()) == n_;
  return (full ? std::string("(Pi,") : "(U" + std::to_string(u_.size()) + ",") +
         std::to_string(k_) + ")-set-agreement[n=" + std::to_string(n_) + "]";
}

bool SetAgreementTask::in_scope(int i) const {
  return std::binary_search(u_.begin(), u_.end(), i);
}

bool SetAgreementTask::input_ok(const ValueVec& in) const {
  if (static_cast<int>(in.size()) != n_) return false;
  for (int i = 0; i < n_; ++i) {
    if (!in[static_cast<std::size_t>(i)].is_nil() && !in_scope(i)) return false;
  }
  return true;
}

bool SetAgreementTask::relation(const ValueVec& in, const ValueVec& out) const {
  if (!input_ok(in) || static_cast<int>(out.size()) != n_) return false;
  if (!outputs_within_inputs(in, out)) return false;
  // Hot in the incremental explorer: re-evaluated on every decision edge, so
  // count distinct decisions and check validity in place instead of building
  // sorted distinct-value vectors. Quadratic in n, which is tiny, and
  // allocation-free, which the arena-pooled hot path requires.
  int distinct = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Value& v = out[i];
    if (v.is_nil()) continue;
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (out[j] == v) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    if (++distinct > k_) return false;
    // Validity: every decided value is some participant's proposal.
    bool proposed = false;
    for (const auto& p : in) {
      if (!p.is_nil() && p == v) {
        proposed = true;
        break;
      }
    }
    if (!proposed) return false;
  }
  return true;
}

Value SetAgreementTask::pick_output(const ValueVec& in, const ValueVec& out, int i) const {
  // Adopting an already-decided value never increases the distinct count;
  // with no decisions yet, deciding one's own input is valid (1 <= k).
  for (const auto& v : out) {
    if (!v.is_nil()) return v;
  }
  return in.at(static_cast<std::size_t>(i));
}

ValueVec SetAgreementTask::sample_input(std::uint64_t seed) const {
  ValueVec in(static_cast<std::size_t>(n_));
  for (int i : u_) {
    // Proposals drawn from {0..k}: the paper's canonical input alphabet.
    const auto v = (seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(i + 1))) %
                   static_cast<std::uint64_t>(k_ + 1);
    in[static_cast<std::size_t>(i)] = Value(static_cast<std::int64_t>(v));
  }
  return in;
}

}  // namespace efd
