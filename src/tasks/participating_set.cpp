#include "tasks/participating_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace efd {

ParticipatingSetTask::ParticipatingSetTask(int n) : n_(n) {
  if (n < 1) throw std::invalid_argument("ParticipatingSetTask: need n >= 1");
}

Value ParticipatingSetTask::encode_view(const std::vector<int>& ids) {
  std::vector<int> s = ids;
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  ValueVec out;
  out.reserve(s.size());
  for (int id : s) out.emplace_back(id);
  return Value(std::move(out));
}

std::vector<int> ParticipatingSetTask::decode_view(const Value& v) {
  std::vector<int> out;
  for (std::size_t i = 0; i < v.size(); ++i) out.push_back(static_cast<int>(v.at(i).int_or(-1)));
  return out;
}

bool ParticipatingSetTask::input_ok(const ValueVec& in) const {
  return static_cast<int>(in.size()) == n_;
}

bool ParticipatingSetTask::relation(const ValueVec& in, const ValueVec& out) const {
  if (!input_ok(in) || static_cast<int>(out.size()) != n_) return false;
  if (!outputs_within_inputs(in, out)) return false;

  auto is_subset = [](const std::vector<int>& a, const std::vector<int>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };

  std::vector<std::pair<int, std::vector<int>>> views;
  for (int i = 0; i < n_; ++i) {
    const Value& o = out[static_cast<std::size_t>(i)];
    if (o.is_nil()) continue;
    if (!o.is_vec()) return false;
    auto ids = decode_view(o);
    if (!std::is_sorted(ids.begin(), ids.end())) return false;
    for (int id : ids) {
      // Views contain only participants.
      if (id < 0 || id >= n_ || in[static_cast<std::size_t>(id)].is_nil()) return false;
    }
    // (1) self-inclusion.
    if (!std::binary_search(ids.begin(), ids.end(), i)) return false;
    views.emplace_back(i, std::move(ids));
  }
  for (const auto& [i, vi] : views) {
    for (const auto& [j, vj] : views) {
      // (2) containment: comparable pairs only.
      if (!is_subset(vi, vj) && !is_subset(vj, vi)) return false;
      // (3) immediacy: j in view_i implies view_j ⊆ view_i.
      if (std::binary_search(vi.begin(), vi.end(), j) && !is_subset(vj, vi)) return false;
    }
  }
  return true;
}

Value ParticipatingSetTask::pick_output(const ValueVec& in, const ValueVec& out, int i) const {
  // Sequential extension: my view = everyone already decided plus every
  // participant I can see — the largest view so far, which keeps containment
  // and immediacy intact.
  std::vector<int> ids;
  for (int q = 0; q < n_; ++q) {
    if (!in[static_cast<std::size_t>(q)].is_nil() &&
        (q == i || !out[static_cast<std::size_t>(q)].is_nil())) {
      ids.push_back(q);
    }
  }
  // Also absorb ids inside earlier views (their owners participate by (1)).
  for (int q = 0; q < n_; ++q) {
    const Value& o = out[static_cast<std::size_t>(q)];
    if (o.is_nil()) continue;
    for (int id : decode_view(o)) ids.push_back(id);
  }
  return encode_view(ids);
}

ValueVec ParticipatingSetTask::sample_input(std::uint64_t seed) const {
  ValueVec in(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    in[static_cast<std::size_t>(i)] = Value(static_cast<std::int64_t>(seed % 50 + 1) + i);
  }
  return in;
}

}  // namespace efd
