// Distributed tasks (paper §2.1).
//
// A task T = (I, O, Δ) over m C-processes: prefix-closed sets of input and
// output m-vectors (⊥ = not participating / undecided) and a total relation
// Δ. The library represents a task by a predicate `relation(I, O)` that must
// accept every (input, partial-output) pair allowed by Δ — prefix closure of
// outputs is the task author's obligation and is exercised by the property
// tests in tests/test_tasks.cpp.
//
// `pick_output` is the task's "sequential specification" used by the generic
// 1-concurrent solver of Prop. 1 (Appendix A): given the inputs seen so far
// and the outputs already chosen, extend the output vector at position i.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/value.hpp"

namespace efd {

class Task {
 public:
  virtual ~Task() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Number of C-processes (the paper's m; we use n = m throughout).
  [[nodiscard]] virtual int n_procs() const = 0;

  /// I ∈ 𝕀 (prefix closure included): is this a legal (partial) input vector?
  [[nodiscard]] virtual bool input_ok(const ValueVec& in) const = 0;

  /// (I, O) ∈ Δ where O may be partial (some ⊥). Must satisfy the paper's
  /// conditions: O[i] ≠ ⊥ ⇒ I[i] ≠ ⊥, and prefix closure in O.
  [[nodiscard]] virtual bool relation(const ValueVec& in, const ValueVec& out) const = 0;

  /// Sequential extension: a value v such that replacing out[i] (= ⊥) by v
  /// keeps (in, out) ∈ Δ. Precondition: in[i] ≠ ⊥, out[i] = ⊥, and
  /// relation(in, out) holds. Exists by the task axioms (condition (3)).
  [[nodiscard]] virtual Value pick_output(const ValueVec& in, const ValueVec& out,
                                          int i) const = 0;

  /// True for colorless tasks (a process may adopt any participant's input or
  /// output). Used by the Prop. 5 experiments.
  [[nodiscard]] virtual bool colorless() const { return false; }

  /// A canonical full-participation input vector, deterministic in `seed`.
  [[nodiscard]] virtual ValueVec sample_input(std::uint64_t seed) const = 0;

  // ---- helpers ----

  /// Participants of an input vector (indices with non-⊥ input).
  [[nodiscard]] static std::vector<int> participants(const ValueVec& in);
  /// Distinct non-⊥ values in a vector.
  [[nodiscard]] static std::vector<Value> distinct_values(const ValueVec& v);
  /// True iff every non-⊥ position of `out` has a non-⊥ input.
  [[nodiscard]] static bool outputs_within_inputs(const ValueVec& in, const ValueVec& out);
};

using TaskPtr = std::shared_ptr<const Task>;

/// Restriction of `in` to the given participant set (others forced to ⊥).
[[nodiscard]] ValueVec restrict_to(const ValueVec& in, const std::vector<int>& keep);

}  // namespace efd
