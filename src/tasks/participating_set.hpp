// The participating-set (immediate snapshot) task.
//
// Every participant outputs a view — a set of participant ids — such that
// (1) self-inclusion: i ∈ O[i];
// (2) containment: any two views are ⊆-comparable;
// (3) immediacy: j ∈ O[i] ⇒ O[j] ⊆ O[i];
// and every id in a view belongs to a participant. The task is WAIT-FREE
// solvable (the one-shot immediate snapshot of sim/snapshot.hpp solves it),
// making it the menu's nontrivial class-n citizen: unbounded concurrency,
// no advice needed — the opposite pole from consensus in the Thm. 10
// hierarchy. Views are encoded as sorted Vec of ids.
#pragma once

#include "tasks/task.hpp"

namespace efd {

class ParticipatingSetTask final : public Task {
 public:
  explicit ParticipatingSetTask(int n);

  [[nodiscard]] std::string name() const override {
    return "participating-set[n=" + std::to_string(n_) + "]";
  }
  [[nodiscard]] int n_procs() const override { return n_; }

  [[nodiscard]] bool input_ok(const ValueVec& in) const override;
  [[nodiscard]] bool relation(const ValueVec& in, const ValueVec& out) const override;
  [[nodiscard]] Value pick_output(const ValueVec& in, const ValueVec& out, int i) const override;
  [[nodiscard]] ValueVec sample_input(std::uint64_t seed) const override;

  /// Encodes a participant-id set as the task's output value.
  [[nodiscard]] static Value encode_view(const std::vector<int>& ids);
  [[nodiscard]] static std::vector<int> decode_view(const Value& v);

 private:
  int n_;
};

}  // namespace efd
