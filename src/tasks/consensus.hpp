// Consensus = (Π^C, 1)-set agreement (paper §2.1). Thin named wrapper so the
// hierarchy and bench tables can refer to "consensus" directly.
#pragma once

#include "tasks/set_agreement.hpp"

namespace efd {

class ConsensusTask final : public Task {
 public:
  explicit ConsensusTask(int n) : inner_(n, 1) {}

  [[nodiscard]] std::string name() const override {
    return "consensus[n=" + std::to_string(inner_.n_procs()) + "]";
  }
  [[nodiscard]] int n_procs() const override { return inner_.n_procs(); }
  [[nodiscard]] bool input_ok(const ValueVec& in) const override { return inner_.input_ok(in); }
  [[nodiscard]] bool relation(const ValueVec& in, const ValueVec& out) const override {
    return inner_.relation(in, out);
  }
  [[nodiscard]] Value pick_output(const ValueVec& in, const ValueVec& out, int i) const override {
    return inner_.pick_output(in, out, i);
  }
  [[nodiscard]] bool colorless() const override { return true; }
  [[nodiscard]] ValueVec sample_input(std::uint64_t seed) const override;

 private:
  SetAgreementTask inner_;
};

}  // namespace efd
