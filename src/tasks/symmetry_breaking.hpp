// Weak symmetry breaking (paper §1, [13, 18, 1]).
//
// Every participant outputs 0 or 1; in runs where ALL n processes participate
// and decide, not all outputs may be equal. A canonical "colored" task used
// in the paper's motivation for the EFD classification.
#pragma once

#include "tasks/task.hpp"

namespace efd {

class WeakSymmetryBreakingTask final : public Task {
 public:
  explicit WeakSymmetryBreakingTask(int n);

  [[nodiscard]] std::string name() const override {
    return "weak-symmetry-breaking[n=" + std::to_string(n_) + "]";
  }
  [[nodiscard]] int n_procs() const override { return n_; }

  [[nodiscard]] bool input_ok(const ValueVec& in) const override;
  [[nodiscard]] bool relation(const ValueVec& in, const ValueVec& out) const override;
  [[nodiscard]] Value pick_output(const ValueVec& in, const ValueVec& out, int i) const override;
  [[nodiscard]] ValueVec sample_input(std::uint64_t seed) const override;

 private:
  int n_;
};

}  // namespace efd
