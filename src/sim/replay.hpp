// Deterministic schedule record/replay (the `efd-tape-v1` pipeline).
//
// Every run of a World is fully determined by (process bodies, schedule,
// failure pattern, FD history). A ScheduleTape captures the last three as a
// compact, versioned text artifact, so any run — a fuzz counterexample, a
// directed crash scenario, a hand-built regression — can be replayed
// byte-identically, diffed, shrunk (core/shrink.hpp) and checked into
// tests/corpus/ as a one-command reproduction:
//
//  * RecordingScheduler wraps ANY scheduler and records the pids it emits;
//  * ScheduleTape::capture folds the recorded schedule, the base failure
//    pattern, the injected crash points, and the FD samples observed in the
//    trace (stored as per-process value deltas) into one artifact;
//  * replay_tape rebuilds the identical run in a fresh world: the tape's
//    history() answers FD queries from the recorded deltas, so no detector
//    object is needed — the tape is self-contained;
//  * crash-point injection (drive_with_crashes + World::inject_crash) crashes
//    an S-process at an exact schedule STEP INDEX, not just at the
//    pattern-sampled times — "kill the leader mid-commit" is a tape entry.
//
// Identity is checked against trace_hash (sim/trace.hpp) and the
// deterministic RunStats subset (sim/stats.hpp); both are stable across
// processes, interning orders and thread counts.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fd/failure_pattern.hpp"
#include "fd/history.hpp"
#include "sim/channel.hpp"  // LinkFaultKind
#include "sim/schedule.hpp"
#include "sim/trace.hpp"

namespace efd {

/// Base of the tape error taxonomy. Tools map the subclasses to distinct
/// exit codes (see tools/efd_repro.cpp): parse errors mean the artifact is
/// malformed, IO errors mean it could not be read or written at all.
class TapeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed or truncated tape text (always carries a line-numbered message).
class TapeParseError : public TapeError {
 public:
  using TapeError::TapeError;
};

/// The tape file could not be opened / read / written.
class TapeIoError : public TapeError {
 public:
  using TapeError::TapeError;
};

/// Crash an S-process immediately before the schedule step with this index
/// executes (index = position in the recorded step sequence, counting refused
/// steps of already-crashed processes).
struct CrashPoint {
  std::int64_t step_index = 0;
  int s_index = 0;

  friend bool operator==(const CrashPoint&, const CrashPoint&) = default;
};

/// Charge `amount` link-fault charges of `kind` against the link named
/// `link` ("ch[i][j]") immediately before the schedule step with this index
/// executes. Unlike `plan`/`finding`, the tape's `linkfaults` line is
/// SEMANTIC: a drop changes which messages reach a mailbox, so replay
/// re-charges the fabric exactly as the recording drive did (sever/heal
/// ignore the amount; it serializes as the sever window's length purely as
/// provenance).
struct LinkFaultPoint {
  std::int64_t step_index = 0;
  std::string link;
  LinkFaultKind kind = LinkFaultKind::kDrop;
  int amount = 1;

  friend bool operator==(const LinkFaultPoint&, const LinkFaultPoint&) = default;
};

/// A recorded run: schedule, environment, and expectations. Text format
/// `efd-tape-v1` (spec in EXPERIMENTS.md), one artifact per counterexample.
class ScheduleTape {
 public:
  static constexpr const char* kFormat = "efd-tape-v1";

  /// One FD history delta: q_{qi+1}'s module output changes to `value` at
  /// `time` (holds until the next delta of the same process).
  struct FdDelta {
    int qi = 0;
    Time time = 0;
    Value value;
  };

  std::string scenario;  ///< registry key (core/repro_scenarios); "" = unbound
  /// Provenance only: the one-line FaultPlan (sim/faultplan.hpp) this tape
  /// was recorded under, if any. Replay never consults it — all plan effects
  /// (trigger kills, corrupted advice, starvation bursts) are already baked
  /// into crashes / fd / steps; it documents WHERE a campaign tape came from.
  std::string plan;
  /// Provenance only: what kind of finding this tape captures ("safety",
  /// "wait-free", "safety+wait-free"; "" for non-finding tapes). A
  /// wait-freedom-only finding has expect_violated == false — the safety
  /// predicate really did hold — so without this stamp a replay reports
  /// "as expected" and triage cannot tell the tape captured a liveness
  /// violation at all. efd_repro print/replay surface it.
  std::string finding;
  /// Provenance only: which substrate (sim/substrate.hpp) the run was
  /// recorded on — "shm", "msg", or "" for plain register tapes. Replay
  /// never consults it (the scenario rebuilds its own world, substrate and
  /// all); parse validates the token so a typo fails loudly.
  std::string substrate;
  int num_s = 0;
  std::vector<std::optional<Time>> base_crash;  ///< base pattern crash times
  std::vector<CrashPoint> crashes;              ///< injected, sorted by step_index
  std::vector<LinkFaultPoint> linkfaults;       ///< charged, sorted by step_index
  std::vector<FdDelta> fd;                      ///< chronological per process
  std::vector<Pid> steps;                       ///< the schedule, in order

  // Optional expectations, stamped at capture / by tools:
  std::optional<std::uint64_t> expect_hash;  ///< trace hash of the recorded run
  std::optional<bool> expect_violated;       ///< scenario predicate outcome

  /// The base failure pattern (injected crash points NOT applied).
  [[nodiscard]] FailurePattern pattern() const;

  /// Self-contained replay history: the value of q_{qi+1}'s module at time t
  /// is its latest recorded delta at or before t, ⊥ before the first. At the
  /// exact (process, time) points the recorded run queried, this reproduces
  /// the original history's answers verbatim.
  [[nodiscard]] HistoryPtr history() const;

  /// Builds a tape from a recorded run. `base` is the pattern the world was
  /// CONSTRUCTED with (before any injected crash), `steps` the pids emitted
  /// by the RecordingScheduler, `crashes` the injections the driver applied,
  /// and `trace` the recorded trace (FD deltas and expect_hash come from it).
  [[nodiscard]] static ScheduleTape capture(std::string scenario, const FailurePattern& base,
                                            std::vector<Pid> steps,
                                            std::vector<CrashPoint> crashes, const Trace& trace);

  /// Versioned text round-trip. parse throws TapeParseError with a
  /// line-numbered message on malformed input.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static ScheduleTape parse(const std::string& text);
};

/// File IO conveniences (throw TapeIoError on IO failure, TapeParseError on
/// malformed content).
[[nodiscard]] ScheduleTape load_tape(const std::string& path);
void save_tape(const ScheduleTape& tape, const std::string& path);

/// Wraps an inner scheduler and records every pid it emits. Transparent:
/// forwards next() verbatim, so recording never perturbs the run.
class RecordingScheduler final : public Scheduler {
 public:
  explicit RecordingScheduler(Scheduler& inner) : inner_(inner) {}

  [[nodiscard]] std::optional<Pid> next(const World& w) override {
    const auto pid = inner_.next(w);
    if (pid) steps_.push_back(*pid);
    return pid;
  }

  [[nodiscard]] const std::vector<Pid>& steps() const noexcept { return steps_; }

 private:
  Scheduler& inner_;
  std::vector<Pid> steps_;
};

/// Replays a tape's step sequence (an ExplicitSchedule over tape.steps; the
/// crash points are applied by drive_with_crashes / replay_tape, since a
/// scheduler cannot mutate the world).
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(const ScheduleTape& tape) : steps_(tape.steps) {}

  [[nodiscard]] std::optional<Pid> next(const World&) override {
    if (pos_ >= steps_.size()) return std::nullopt;
    return steps_[pos_++];
  }

 private:
  std::vector<Pid> steps_;
  std::size_t pos_ = 0;
};

/// drive() with crash-point fault injection: immediately before attempting
/// step index i (= DriveResult::steps so far), every CrashPoint with
/// step_index == i is applied via World::inject_crash, and every
/// LinkFaultPoint with step_index == i is charged via
/// Substrate::apply_link_fault (a link fault against a backend without
/// faultable links throws). Stop causes as in drive(). Neither list need be
/// sorted.
DriveResult drive_with_crashes(World& w, Scheduler& sched, std::int64_t max_steps,
                               const std::vector<CrashPoint>& crashes,
                               const std::vector<LinkFaultPoint>& linkfaults = {});

struct ReplayResult {
  DriveResult drive;
  std::uint64_t hash = 0;    ///< trace_hash of the replayed run
  bool hash_match = true;    ///< hash == tape.expect_hash (true when unset)
};

/// Replays `tape` in `w` (which must have been freshly built from
/// tape.pattern() / tape.history() plus the scenario's process bodies).
/// Enables tracing, replays the schedule with the tape's crash points, and
/// returns the trace hash. Replay stops early, exactly like the recording
/// drive() did, once every C-process has decided.
ReplayResult replay_tape(World& w, const ScheduleTape& tape);

}  // namespace efd
