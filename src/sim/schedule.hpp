// Schedulers: who takes the next step.
//
// A Scheduler produces the schedule Sch of a run, one pid at a time, possibly
// reacting to the world's current state (decisions, crashes). The library
// ships:
//  * ExplicitSchedule  — replay a fixed finite sequence (the α(I,σ) map used
//                        by exhaustive exploration);
//  * RoundRobinScheduler — fair: cycles over alive S-processes and
//                        non-terminated C-processes;
//  * RandomScheduler   — seeded uniform choice among eligible processes;
//  * KConcurrencyScheduler — admits C-processes per an arrival order while
//                        keeping at most k participating-undecided at any
//                        time (the paper's k-concurrent runs), interleaving
//                        S-process steps fairly.
// `drive` runs a world under a scheduler until all C-processes decide, the
// scheduler is exhausted, or a step bound is hit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/ids.hpp"
#include "sim/world.hpp"

namespace efd {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Next process to step, or nullopt when the schedule is exhausted.
  [[nodiscard]] virtual std::optional<Pid> next(const World& w) = 0;
};

/// Replays a fixed sequence of pids.
class ExplicitSchedule final : public Scheduler {
 public:
  explicit ExplicitSchedule(std::vector<Pid> seq) : seq_(std::move(seq)) {}
  [[nodiscard]] std::optional<Pid> next(const World&) override {
    if (pos_ >= seq_.size()) return std::nullopt;
    return seq_[pos_++];
  }

 private:
  std::vector<Pid> seq_;
  std::size_t pos_ = 0;
};

/// Fair round-robin over alive S-processes and non-terminated C-processes.
/// Produces fair runs: every correct S-process is scheduled infinitely often.
class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::optional<Pid> next(const World& w) override;

 private:
  std::size_t cursor_ = 0;
};

/// Seeded uniform choice among eligible (alive, non-terminated) processes.
/// Fair with probability 1; deterministic given the seed.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : state_(seed * 2862933555777941757ULL + 3037ULL) {}
  [[nodiscard]] std::optional<Pid> next(const World& w) override;

 private:
  std::uint64_t state_;
};

/// k-concurrent scheduler (paper §2.2): C-processes arrive in `arrival`
/// order; a new one is admitted only while fewer than k admitted C-processes
/// are undecided. Alive S-processes are interleaved round-robin, `s_stride`
/// S-steps per C-step, so runs stay fair on the S side.
class KConcurrencyScheduler final : public Scheduler {
 public:
  KConcurrencyScheduler(int k, std::vector<int> arrival, int s_stride = 1)
      : k_(k), arrival_(std::move(arrival)), s_stride_(s_stride) {}

  [[nodiscard]] std::optional<Pid> next(const World& w) override;

 private:
  int k_;
  std::vector<int> arrival_;  ///< C-process indices in arrival order
  int s_stride_;
  std::size_t next_arrival_ = 0;
  std::vector<int> active_;  ///< admitted, undecided C indices
  std::size_t c_cursor_ = 0;
  std::size_t s_cursor_ = 0;
  int s_budget_ = 0;
};

struct DriveResult {
  std::int64_t steps = 0;       ///< scheduled (possibly null) steps executed
  bool all_c_decided = false;   ///< stop cause: every C-process decided
  bool exhausted = false;       ///< stop cause: scheduler returned nullopt
};

/// Runs `w` under `sched` until all C-processes decide, the scheduler is
/// exhausted, or `max_steps` steps were attempted.
DriveResult drive(World& w, Scheduler& sched, std::int64_t max_steps);

}  // namespace efd
