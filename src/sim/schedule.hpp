// Schedulers: who takes the next step.
//
// A Scheduler produces the schedule Sch of a run, one pid at a time, possibly
// reacting to the world's current state (decisions, crashes). The library
// ships:
//  * ExplicitSchedule  — replay a fixed finite sequence (the α(I,σ) map used
//                        by exhaustive exploration);
//  * RoundRobinScheduler — fair: cycles over alive S-processes and
//                        non-terminated C-processes;
//  * RandomScheduler   — seeded uniform choice among eligible processes;
//  * KConcurrencyScheduler — admits C-processes per an arrival order while
//                        keeping at most k participating-undecided at any
//                        time (the paper's k-concurrent runs), interleaving
//                        S-process steps fairly.
// `drive` runs a world under a scheduler until all C-processes decide, the
// scheduler is exhausted, or a step bound is hit.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "sim/ids.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"

namespace efd {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Next process to step, or nullopt when the schedule is exhausted.
  [[nodiscard]] virtual std::optional<Pid> next(const World& w) = 0;
};

/// Replays a fixed sequence of pids.
class ExplicitSchedule final : public Scheduler {
 public:
  explicit ExplicitSchedule(std::vector<Pid> seq) : seq_(std::move(seq)) {}
  [[nodiscard]] std::optional<Pid> next(const World&) override {
    if (pos_ >= seq_.size()) return std::nullopt;
    return seq_[pos_++];
  }

 private:
  std::vector<Pid> seq_;
  std::size_t pos_ = 0;
};

/// Fair round-robin over alive S-processes and non-terminated C-processes.
/// Produces fair runs: every correct S-process is scheduled infinitely often.
class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::optional<Pid> next(const World& w) override;

 private:
  std::size_t cursor_ = 0;
};

/// Seeded uniform choice among eligible (alive, non-terminated) processes.
/// Fair with probability 1; deterministic given the seed.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : state_(seed * 2862933555777941757ULL + 3037ULL) {}
  [[nodiscard]] std::optional<Pid> next(const World& w) override;

 private:
  std::uint64_t state_;
};

/// The admission window of a k-concurrent run (paper §2.2): C-processes are
/// admitted in `arrival` order, at most k concurrently; a slot frees when
/// its process finishes. "Finished" means decided OR terminated: a process
/// whose coroutine ran to completion without deciding can never decide, only
/// take null steps, so keeping it admitted would starve the window forever.
/// (Its slot freeing admits runs the strict paper window would block — a
/// superset of the k-concurrent runs, which is the safe direction for
/// exploration-based certification.)
///
/// This is the single source of truth for admission bookkeeping: both the
/// KConcurrencyScheduler and the exhaustive explorers (core/solvability)
/// refresh through it — they historically hand-mirrored each other and
/// disagreed on exactly the terminated-but-undecided case. Copyable, so
/// explorers can store per-node snapshots for backtracking.
class AdmissionWindow {
 public:
  AdmissionWindow() = default;
  AdmissionWindow(int k, std::vector<int> arrival) : k_(k), arrival_(std::move(arrival)) {}

  /// Retires finished processes and admits arrivals while the window has
  /// room. `finished(c)` reports whether C-index c is decided or terminated.
  /// (Constrained so a non-const World& still picks the overload below.)
  template <class FinishedFn,
            class = std::enable_if_t<std::is_invocable_r_v<bool, FinishedFn&, int>>>
  void refresh(FinishedFn&& finished) {
    const auto before = active_.size();
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](int c) { return finished(c); }),
                  active_.end());
    stats_.retired += static_cast<std::int64_t>(before - active_.size());
    while (next_arrival_ < arrival_.size() && static_cast<int>(active_.size()) < k_) {
      active_.push_back(arrival_[next_arrival_++]);
      ++stats_.admitted;
    }
    stats_.peak_active = std::max(stats_.peak_active, static_cast<int>(active_.size()));
  }

  /// Convenience refresh against a live World.
  void refresh(const World& w) {
    refresh([&w](int c) { return w.decided(cpid(c)) || w.terminated(cpid(c)); });
  }

  /// Inverse log of one refresh_tracked() call. Retirements are recorded as
  /// (original position, value); the common per-DFS-edge case (at most one
  /// retirement — only the stepped process can change finished state — and
  /// at most one admission) fits the inline array, so tracking allocates
  /// nothing in steady state. The overflow vector only engages when more
  /// processes retire in a single refresh than the inline slots hold.
  struct RefreshUndo {
    struct Retired {
      std::uint32_t pos;  ///< index in active_ before the refresh
      int c;
    };
    std::size_t prev_next_arrival = 0;
    int prev_peak = 0;
    std::uint32_t admitted = 0;
    std::uint32_t retired = 0;
    std::array<Retired, 4> inline_retired{};
    std::vector<Retired> overflow_retired;  ///< entries 4.. in retire order
  };

  /// refresh(), but records the exact delta into `u` so unrefresh() can
  /// rewind it. `u` is reset and reused; repeated track/unwind cycles touch
  /// the heap only if a single refresh retires more than 4 processes.
  /// Replaces the incremental explorer's per-edge full-window snapshots.
  template <class FinishedFn,
            class = std::enable_if_t<std::is_invocable_r_v<bool, FinishedFn&, int>>>
  void refresh_tracked(FinishedFn&& finished, RefreshUndo& u) {
    u.prev_next_arrival = next_arrival_;
    u.prev_peak = stats_.peak_active;
    u.admitted = 0;
    u.retired = 0;
    u.overflow_retired.clear();
    std::size_t out = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const int c = active_[i];
      if (finished(c)) {
        const RefreshUndo::Retired entry{static_cast<std::uint32_t>(i), c};
        if (u.retired < u.inline_retired.size()) {
          u.inline_retired[u.retired] = entry;
        } else {
          u.overflow_retired.push_back(entry);
        }
        ++u.retired;
      } else {
        active_[out++] = c;
      }
    }
    active_.resize(out);
    stats_.retired += static_cast<std::int64_t>(u.retired);
    while (next_arrival_ < arrival_.size() && static_cast<int>(active_.size()) < k_) {
      active_.push_back(arrival_[next_arrival_++]);
      ++stats_.admitted;
      ++u.admitted;
    }
    stats_.peak_active = std::max(stats_.peak_active, static_cast<int>(active_.size()));
  }

  /// Exact inverse of the refresh_tracked() call that filled `u`. Must be
  /// applied in LIFO order relative to other window mutations.
  void unrefresh(const RefreshUndo& u) {
    active_.resize(active_.size() - u.admitted);  // admissions append at the tail
    stats_.admitted -= static_cast<std::int64_t>(u.admitted);
    next_arrival_ = u.prev_next_arrival;
    // Reinserting retirees in increasing original position inverts the
    // stable remove: earlier reinsertions restore exactly the prefix the
    // later positions were measured against.
    for (std::uint32_t i = 0; i < u.retired; ++i) {
      const auto& entry = i < u.inline_retired.size()
                              ? u.inline_retired[i]
                              : u.overflow_retired[i - u.inline_retired.size()];
      active_.insert(active_.begin() + entry.pos, entry.c);
    }
    stats_.retired -= static_cast<std::int64_t>(u.retired);
    stats_.peak_active = u.prev_peak;
  }

  /// Admitted, unfinished C-indices, in admission order (stable across
  /// retirements: survivors keep their relative order).
  [[nodiscard]] const std::vector<int>& active() const noexcept { return active_; }
  /// Arrival-order position of the next not-yet-admitted process.
  [[nodiscard]] std::size_t next_arrival() const noexcept { return next_arrival_; }
  [[nodiscard]] bool all_arrived() const noexcept { return next_arrival_ == arrival_.size(); }
  /// Everyone arrived and every admitted process finished.
  [[nodiscard]] bool exhausted() const noexcept { return all_arrived() && active_.empty(); }

  /// Admission totals since construction (copied with the window, so the
  /// incremental explorer's undo log rewinds them along with the rest).
  [[nodiscard]] const AdmissionStats& stats() const noexcept { return stats_; }

 private:
  int k_ = 1;
  std::vector<int> arrival_;    ///< C-process indices in arrival order
  std::size_t next_arrival_ = 0;
  std::vector<int> active_;     ///< admitted, unfinished C indices
  AdmissionStats stats_;
};

/// k-concurrent scheduler (paper §2.2): C-processes arrive in `arrival`
/// order; a new one is admitted only while fewer than k admitted C-processes
/// are undecided. Alive S-processes are interleaved round-robin, `s_stride`
/// S-steps per C-step, so runs stay fair on the S side.
class KConcurrencyScheduler final : public Scheduler {
 public:
  KConcurrencyScheduler(int k, std::vector<int> arrival, int s_stride = 1)
      : window_(k, std::move(arrival)), s_stride_(s_stride) {}

  [[nodiscard]] std::optional<Pid> next(const World& w) override;

  /// Admission totals of the run so far (telemetry).
  [[nodiscard]] const AdmissionStats& admission_stats() const noexcept {
    return window_.stats();
  }

 private:
  AdmissionWindow window_;
  int s_stride_;
  std::size_t c_cursor_ = 0;
  std::size_t s_cursor_ = 0;
  int s_budget_ = 0;
};

struct DriveResult {
  std::int64_t steps = 0;       ///< scheduled (possibly null) steps attempted
  bool all_c_decided = false;   ///< stop cause: every C-process decided
  bool exhausted = false;       ///< stop cause: scheduler returned nullopt
  bool budget_exhausted = false;  ///< stop cause: max_steps hit first
};

/// Runs `w` under `sched` until all C-processes decide, the scheduler is
/// exhausted, or `max_steps` steps were attempted. Exactly one stop-cause
/// flag is set, checked in that priority order — in particular a world with
/// NO C-processes (reduction harnesses) reports budget_exhausted, never the
/// vacuous all_c_decided the pre-telemetry drive returned.
DriveResult drive(World& w, Scheduler& sched, std::int64_t max_steps);

}  // namespace efd
