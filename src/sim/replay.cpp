#include "sim/replay.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "sim/world.hpp"

namespace efd {
namespace {

// ---- value literals -------------------------------------------------------
//
// Same surface syntax as Value::to_string — nil / 123 / "str" / [a, b] —
// except strings are escaped (\\ and \") so arbitrary payloads round-trip.

void encode_value(std::ostream& os, const Value& v) {
  if (v.is_nil()) {
    os << "nil";
  } else if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_str()) {
    os << '"';
    for (const char c : v.as_str()) {
      if (c == '\\' || c == '"') os << '\\';
      os << c;
    }
    os << '"';
  } else {
    os << '[';
    const auto& vec = v.as_vec();
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (i != 0) os << ", ";
      encode_value(os, vec[i]);
    }
    os << ']';
  }
}

struct ValueParser {
  std::string_view s;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("tape value literal: " + what + " at offset " +
                             std::to_string(pos) + " in '" + std::string(s) + "'");
  }
  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  }
  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Value parse() {
    skip_ws();
    if (pos >= s.size()) fail("empty literal");
    const char c = s[pos];
    if (c == 'n') {
      if (s.substr(pos, 3) != "nil") fail("expected 'nil'");
      pos += 3;
      return Value{};
    }
    if (c == '"') {
      ++pos;
      std::string out;
      while (pos < s.size() && s[pos] != '"') {
        if (s[pos] == '\\') {
          ++pos;
          if (pos >= s.size()) fail("dangling escape");
        }
        out.push_back(s[pos++]);
      }
      if (!consume('"')) fail("unterminated string");
      return Value(std::move(out));
    }
    if (c == '[') {
      ++pos;
      ValueVec out;
      skip_ws();
      if (consume(']')) return Value(std::move(out));
      for (;;) {
        out.push_back(parse());
        if (consume(']')) return Value(std::move(out));
        if (!consume(',')) fail("expected ',' or ']'");
      }
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = pos;
      if (c == '-') ++pos;
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
      if (pos == start || (c == '-' && pos == start + 1)) fail("malformed integer");
      return Value(std::int64_t(std::stoll(std::string(s.substr(start, pos - start)))));
    }
    fail("unrecognized literal");
  }
};

Value parse_value(std::string_view text) {
  ValueParser p{text};
  const Value v = p.parse();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage");
  return v;
}

// ---- pid tokens -----------------------------------------------------------

std::optional<Pid> parse_pid(std::string_view tok) {
  if (tok.size() < 2 || (tok[0] != 'p' && tok[0] != 'q')) return std::nullopt;
  int idx = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
    idx = idx * 10 + (tok[i] - '0');
  }
  if (idx < 1) return std::nullopt;  // 1-based in the paper's notation
  return tok[0] == 'p' ? cpid(idx - 1) : spid(idx - 1);
}

[[noreturn]] void parse_fail(int line_no, const std::string& what) {
  throw TapeParseError("efd-tape parse error, line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

FailurePattern ScheduleTape::pattern() const {
  if (static_cast<int>(base_crash.size()) != num_s) {
    throw TapeParseError("ScheduleTape: pattern width " +
                             std::to_string(base_crash.size()) + " != s " +
                             std::to_string(num_s));
  }
  return FailurePattern(base_crash);
}

HistoryPtr ScheduleTape::history() const {
  // Per-process chronological delta lists (fd is chronological overall, so
  // a stable partition preserves per-process order).
  auto deltas = std::make_shared<std::map<int, std::vector<std::pair<Time, Value>>>>();
  for (const auto& d : fd) (*deltas)[d.qi].emplace_back(d.time, d.value);
  return std::make_shared<FnHistory>([deltas](int qi, Time t) {
    const auto it = deltas->find(qi);
    if (it == deltas->end()) return Value{};
    Value cur;
    for (const auto& [when, v] : it->second) {
      if (when > t) break;
      cur = v;
    }
    return cur;
  });
}

ScheduleTape ScheduleTape::capture(std::string scenario, const FailurePattern& base,
                                   std::vector<Pid> steps, std::vector<CrashPoint> crashes,
                                   const Trace& trace) {
  ScheduleTape t;
  t.scenario = std::move(scenario);
  t.num_s = base.n();
  t.base_crash.reserve(static_cast<std::size_t>(base.n()));
  for (int i = 0; i < base.n(); ++i) t.base_crash.push_back(base.crash_time(i));
  t.steps = std::move(steps);
  t.crashes = std::move(crashes);
  std::sort(t.crashes.begin(), t.crashes.end(),
            [](const CrashPoint& a, const CrashPoint& b) { return a.step_index < b.step_index; });
  // FD deltas: one entry whenever a process's sampled output changes.
  std::map<int, Value> last;
  for (const auto& s : trace) {
    if (s.op != OpKind::kQuery || s.null_step) continue;
    const auto it = last.find(s.pid.index);
    if (it != last.end() && it->second == s.result) continue;
    last[s.pid.index] = s.result;
    t.fd.push_back(FdDelta{s.pid.index, s.time, s.result});
  }
  t.expect_hash = trace_hash(trace);
  return t;
}

std::string ScheduleTape::serialize() const {
  std::ostringstream os;
  os << kFormat << "\n";
  if (!scenario.empty()) os << "scenario " << scenario << "\n";
  if (!plan.empty()) os << "plan " << plan << "\n";
  if (!finding.empty()) os << "finding " << finding << "\n";
  if (!substrate.empty()) os << "substrate " << substrate << "\n";
  if (expect_violated) os << "expect " << (*expect_violated ? "violated" : "ok") << "\n";
  if (expect_hash) {
    os << "hash " << std::hex << *expect_hash << std::dec << "\n";
  }
  os << "s " << num_s << "\n";
  if (num_s > 0) {
    os << "pattern";
    for (const auto& c : base_crash) {
      os << ' ';
      if (c) {
        os << *c;
      } else {
        os << '-';
      }
    }
    os << "\n";
  }
  for (const auto& c : crashes) os << "crash " << c.step_index << " " << c.s_index << "\n";
  if (!linkfaults.empty()) {
    // One line, ';'-separated actions in step order: canonical because parse
    // stable-sorts by step_index and same-step order is preserved.
    std::vector<LinkFaultPoint> pts = linkfaults;
    std::stable_sort(pts.begin(), pts.end(), [](const LinkFaultPoint& a,
                                                const LinkFaultPoint& b) {
      return a.step_index < b.step_index;
    });
    os << "linkfaults ";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (i != 0) os << "; ";
      os << link_fault_token(pts[i].kind) << " " << pts[i].step_index << " " << pts[i].link
         << " " << pts[i].amount;
    }
    os << "\n";
  }
  for (const auto& d : fd) {
    os << "fd " << d.qi << " " << d.time << " ";
    encode_value(os, d.value);
    os << "\n";
  }
  os << "steps " << steps.size() << "\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    os << steps[i].to_string() << (((i + 1) % 20 == 0 || i + 1 == steps.size()) ? '\n' : ' ');
  }
  os << "end\n";
  return os.str();
}

ScheduleTape ScheduleTape::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_line() || line != kFormat) parse_fail(line_no, "missing '" + std::string(kFormat) + "' header");

  ScheduleTape t;
  bool saw_s = false;
  std::optional<std::size_t> declared_steps;
  while (next_line()) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "scenario") {
      if (!(ls >> t.scenario)) parse_fail(line_no, "scenario: missing name");
    } else if (key == "plan") {
      std::string rest;
      std::getline(ls, rest);
      const std::size_t at = rest.find_first_not_of(" \t");
      if (at == std::string::npos) parse_fail(line_no, "plan: missing text");
      t.plan = rest.substr(at);
    } else if (key == "finding") {
      if (!(ls >> t.finding)) parse_fail(line_no, "finding: missing kind");
    } else if (key == "substrate") {
      if (!(ls >> t.substrate) || (t.substrate != "shm" && t.substrate != "msg")) {
        parse_fail(line_no, "substrate: want 'shm' or 'msg'");
      }
    } else if (key == "expect") {
      std::string v;
      if (!(ls >> v) || (v != "violated" && v != "ok")) {
        parse_fail(line_no, "expect: want 'violated' or 'ok'");
      }
      t.expect_violated = (v == "violated");
    } else if (key == "hash") {
      std::uint64_t h = 0;
      if (!(ls >> std::hex >> h)) parse_fail(line_no, "hash: malformed hex");
      t.expect_hash = h;
    } else if (key == "s") {
      if (!(ls >> t.num_s) || t.num_s < 0) parse_fail(line_no, "s: malformed count");
      saw_s = true;
      if (t.num_s == 0) t.base_crash.clear();
    } else if (key == "pattern") {
      t.base_crash.clear();
      std::string tok;
      while (ls >> tok) {
        if (tok == "-") {
          t.base_crash.push_back(std::nullopt);
        } else {
          try {
            t.base_crash.push_back(Time(std::stoll(tok)));
          } catch (const std::exception&) {
            parse_fail(line_no, "pattern: malformed crash time '" + tok + "'");
          }
        }
      }
      if (static_cast<int>(t.base_crash.size()) != t.num_s) {
        parse_fail(line_no, "pattern: width != s");
      }
    } else if (key == "crash") {
      CrashPoint c;
      if (!(ls >> c.step_index >> c.s_index) || c.step_index < 0 || c.s_index < 0 ||
          c.s_index >= t.num_s) {
        parse_fail(line_no, "crash: malformed or out-of-range entry");
      }
      t.crashes.push_back(c);
    } else if (key == "linkfaults") {
      std::string rest;
      std::getline(ls, rest);
      std::istringstream entries(rest);
      std::string entry;
      bool any = false;
      while (std::getline(entries, entry, ';')) {
        std::istringstream es(entry);
        LinkFaultPoint p;
        std::string kind_tok;
        if (!(es >> kind_tok)) continue;  // tolerate a trailing ';'
        any = true;
        if (!parse_link_fault_token(kind_tok, p.kind)) {
          parse_fail(line_no, "linkfaults: unknown fault kind '" + kind_tok + "'");
        }
        if (!(es >> p.step_index >> p.link >> p.amount) || p.step_index < 0 || p.amount < 1) {
          parse_fail(line_no, "linkfaults: malformed entry '" + entry + "'");
        }
        std::string extra;
        if (es >> extra) parse_fail(line_no, "linkfaults: trailing garbage '" + extra + "'");
        t.linkfaults.push_back(std::move(p));
      }
      if (!any) parse_fail(line_no, "linkfaults: empty list");
    } else if (key == "fd") {
      FdDelta d;
      if (!(ls >> d.qi >> d.time) || d.qi < 0 || d.qi >= t.num_s) {
        parse_fail(line_no, "fd: malformed or out-of-range entry");
      }
      std::string rest;
      std::getline(ls, rest);
      try {
        d.value = parse_value(rest);
      } catch (const std::exception& e) {
        parse_fail(line_no, e.what());
      }
      t.fd.push_back(std::move(d));
    } else if (key == "steps") {
      std::size_t n = 0;
      if (!(ls >> n)) parse_fail(line_no, "steps: malformed count");
      declared_steps = n;
      t.steps.reserve(n);
      // The schedule body: whitespace-separated pid tokens up to 'end'.
      std::string tok;
      while (t.steps.size() < n) {
        if (!(in >> tok)) parse_fail(line_no, "steps: truncated schedule");
        const auto pid = parse_pid(tok);
        if (!pid) parse_fail(line_no, "steps: bad pid token '" + tok + "'");
        t.steps.push_back(*pid);
      }
      std::string endtok;
      if (!(in >> endtok) || endtok != "end") parse_fail(line_no, "missing 'end' after schedule");
      break;
    } else {
      parse_fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_s) parse_fail(line_no, "missing 's' line");
  if (!declared_steps) parse_fail(line_no, "missing 'steps' section");
  if (static_cast<int>(t.base_crash.size()) != t.num_s) parse_fail(line_no, "missing 'pattern' line");
  std::sort(t.crashes.begin(), t.crashes.end(),
            [](const CrashPoint& a, const CrashPoint& b) { return a.step_index < b.step_index; });
  // stable: same-step charges keep their written order (sever before heal).
  std::stable_sort(t.linkfaults.begin(), t.linkfaults.end(),
                   [](const LinkFaultPoint& a, const LinkFaultPoint& b) {
                     return a.step_index < b.step_index;
                   });
  return t;
}

ScheduleTape load_tape(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TapeIoError("load_tape: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw TapeIoError("load_tape: read failed for " + path);
  return ScheduleTape::parse(buf.str());
}

void save_tape(const ScheduleTape& tape, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw TapeIoError("save_tape: cannot open " + path);
  out << tape.serialize();
  if (!out) throw TapeIoError("save_tape: write failed for " + path);
}

DriveResult drive_with_crashes(World& w, Scheduler& sched, std::int64_t max_steps,
                               const std::vector<CrashPoint>& crashes,
                               const std::vector<LinkFaultPoint>& linkfaults) {
  std::vector<CrashPoint> pending = crashes;
  std::sort(pending.begin(), pending.end(),
            [](const CrashPoint& a, const CrashPoint& b) { return a.step_index < b.step_index; });
  std::vector<LinkFaultPoint> pending_lf = linkfaults;
  std::stable_sort(pending_lf.begin(), pending_lf.end(),
                   [](const LinkFaultPoint& a, const LinkFaultPoint& b) {
                     return a.step_index < b.step_index;
                   });
  std::size_t next_crash = 0;
  std::size_t next_lf = 0;

  DriveResult r;
  for (;;) {
    while (next_crash < pending.size() && pending[next_crash].step_index <= r.steps) {
      w.inject_crash(pending[next_crash].s_index);
      ++next_crash;
    }
    while (next_lf < pending_lf.size() && pending_lf[next_lf].step_index <= r.steps) {
      const LinkFaultPoint& p = pending_lf[next_lf];
      w.substrate().apply_link_fault(RegAddr(p.link), p.kind, p.amount);
      ++next_lf;
    }
    if (w.num_c() > 0 && w.all_c_decided()) {
      r.all_c_decided = true;
      return r;
    }
    if (r.steps >= max_steps) {
      r.budget_exhausted = true;
      return r;
    }
    const auto pid = sched.next(w);
    if (!pid) {
      r.exhausted = true;
      return r;
    }
    w.step(*pid);
    ++r.steps;
  }
}

ReplayResult replay_tape(World& w, const ScheduleTape& tape) {
  w.enable_trace();
  ReplayScheduler rs(tape);
  ReplayResult out;
  out.drive = drive_with_crashes(w, rs, static_cast<std::int64_t>(tape.steps.size()),
                                 tape.crashes, tape.linkfaults);
  out.hash = trace_hash(w.trace());
  out.hash_match = !tape.expect_hash || *tape.expect_hash == out.hash;
  return out;
}

}  // namespace efd
