// Run-level telemetry: cheap, always-on counters of one World execution.
//
// RunStats is carried by every World and incremented inside step()/respawn()/
// redeliver() — a handful of integer adds per model step, so it stays on even
// in exploration hot loops. The block absorbs the ad-hoc per-bench counters
// of earlier PRs (steps, footprint, writes) into one place with a checkable
// invariant:
//
//     steps == reads + writes + queries + yields + decides + null_steps
//     steps == trace.size()                     (when tracing is enabled)
//
// crashed_attempts counts step(pid) calls that returned false (crashed
// S-process): no time passes and no trace record is produced, so they are
// deliberately OUTSIDE the invariant above.
//
// AdmissionStats mirrors the bookkeeping of sim/schedule's AdmissionWindow
// (admissions, retirements, peak active) — the quantities the paper's
// k-concurrency bound is about. The struct lives here so World, schedulers
// and the bench layer share one vocabulary.
#pragma once

#include <cstdint>
#include <string>

namespace efd {

class World;

/// Counters of one World's execution. Steps are counted by the op kind the
/// scheduled process executed; null steps (terminated processes) separately.
struct RunStats {
  std::int64_t steps = 0;             ///< successful step() calls (time advanced)
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t queries = 0;           ///< failure-detector queries (S-processes)
  std::int64_t yields = 0;
  std::int64_t decides = 0;
  std::int64_t sends = 0;             ///< message sends (message substrates)
  std::int64_t recvs = 0;             ///< mailbox dequeues (message substrates)
  std::int64_t delivers = 0;          ///< in-flight -> mailbox deliveries
  std::int64_t null_steps = 0;        ///< steps of already-terminated processes
  std::int64_t crashed_attempts = 0;  ///< step() calls refused (crashed S-process)
  std::int64_t injected_crashes = 0;  ///< crash points applied (fault injection)
  std::int64_t respawns = 0;          ///< coroutine rebuilds (incremental explorer)
  std::int64_t redelivers = 0;        ///< replayed step results into rebuilt frames

  /// Sum of the per-op-kind counters; equals `steps` by construction and
  /// trace.size() when the run was traced (the test_telemetry invariant).
  [[nodiscard]] std::int64_t op_total() const noexcept {
    return reads + writes + queries + yields + decides + sends + recvs + delivers +
           null_steps;
  }
};

/// True iff the deterministic subset of two runs' stats agrees: everything a
/// schedule + environment fixes (step mix, refused steps, injected crashes).
/// respawns/redelivers are engine-shape counters (how the incremental
/// explorer got there), deliberately excluded — record/replay identity
/// (sim/replay.hpp) is asserted on this subset plus the trace hash.
[[nodiscard]] constexpr bool deterministic_equal(const RunStats& a, const RunStats& b) noexcept {
  return a.steps == b.steps && a.reads == b.reads && a.writes == b.writes &&
         a.queries == b.queries && a.yields == b.yields && a.decides == b.decides &&
         a.sends == b.sends && a.recvs == b.recvs && a.delivers == b.delivers &&
         a.null_steps == b.null_steps && a.crashed_attempts == b.crashed_attempts &&
         a.injected_crashes == b.injected_crashes;
}

/// Admission bookkeeping totals of an AdmissionWindow (k-concurrent runs).
struct AdmissionStats {
  std::int64_t admitted = 0;   ///< processes ever admitted into the window
  std::int64_t retired = 0;    ///< processes retired (decided OR terminated)
  int peak_active = 0;         ///< max simultaneously admitted, unfinished
};

/// Human-readable run report: step mix, decisions, register footprint and
/// write/read volume of `w` — what examples/quickstart prints.
[[nodiscard]] std::string format_run_report(const World& w);

}  // namespace efd
