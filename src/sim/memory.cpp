#include "sim/memory.hpp"

#include <algorithm>
#include <vector>

namespace efd {

std::string reg(const std::string& base, int i) { return base + "[" + std::to_string(i) + "]"; }

std::string reg2(const std::string& base, int i, int j) {
  return base + "[" + std::to_string(i) + "][" + std::to_string(j) + "]";
}

std::string reg3(const std::string& base, int i, int j, int k) {
  return base + "[" + std::to_string(i) + "][" + std::to_string(j) + "][" + std::to_string(k) + "]";
}

Value RegisterFile::read(const std::string& addr) const {
  const auto it = cells_.find(addr);
  return it == cells_.end() ? Value{} : it->second;
}

void RegisterFile::write(const std::string& addr, Value v) {
  cells_[addr] = std::move(v);
  ++writes_;
}

std::uint64_t RegisterFile::content_hash() const {
  // Order-independent: combine per-cell hashes with a commutative fold over
  // sorted keys so the hash is stable across unordered_map iteration orders.
  std::vector<const std::pair<const std::string, Value>*> items;
  items.reserve(cells_.size());
  for (const auto& kv : cells_) items.push_back(&kv);
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto* kv : items) {
    h = h * 1099511628211ULL + std::hash<std::string>{}(kv->first);
    h = h * 1099511628211ULL + kv->second.hash();
  }
  return h;
}

}  // namespace efd
