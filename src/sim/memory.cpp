#include "sim/memory.hpp"

#include <stdexcept>

namespace efd {

std::uint64_t RegisterFile::cached_name_hash(RegId id) noexcept {
  std::uint64_t& slot = name_hash_[id];
  if (slot == 0) slot = reg_name_hash(id);
  return slot;
}

void RegisterFile::write(RegAddr addr, Value v) {
  if (!addr.valid()) throw std::logic_error("RegisterFile::write: invalid register address");
  const RegId id = addr.id();
  if (static_cast<std::size_t>(id) >= cells_.size()) {
    // Grow to the process-wide interned id: ids are dense, so this bounds
    // the store by the number of distinct registers the process ever named.
    const std::size_t need = static_cast<std::size_t>(id) + 1;
    cells_.resize(need);
    written_.resize(need, 0);
    cell_hash_.resize(need, 0);
    name_hash_.resize(need, 0);
  }
  const std::uint64_t h = cell_content_hash(cached_name_hash(id), v.hash());
  if (written_[id] != 0) {
    hash_acc_ -= cell_hash_[id];
  } else {
    written_[id] = 1;
    ++footprint_;
  }
  hash_acc_ += h;
  cell_hash_[id] = h;
  cells_[id] = std::move(v);
  ++writes_;
}

void RegisterFile::undo_write(RegAddr addr, const Value& prev, bool was_written) {
  const RegId id = addr.id();
  if (static_cast<std::size_t>(id) >= cells_.size() || written_[id] == 0) {
    throw std::logic_error("RegisterFile::undo_write: cell was not written");
  }
  hash_acc_ -= cell_hash_[id];
  if (was_written) {
    const std::uint64_t h = cell_content_hash(cached_name_hash(id), prev.hash());
    hash_acc_ += h;
    cell_hash_[id] = h;
    cells_[id] = prev;
  } else {
    written_[id] = 0;
    cell_hash_[id] = 0;
    cells_[id] = Value{};
    --footprint_;
  }
  --writes_;
}

std::uint64_t RegisterFile::content_hash_slow() const noexcept {
  std::uint64_t acc = 0;
  for (std::size_t id = 0; id < cells_.size(); ++id) {
    if (written_[id] != 0) {
      acc += cell_content_hash(reg_name_hash(static_cast<RegId>(id)), cells_[id].hash());
    }
  }
  return cell_content_hash(0x9AE16A3B2F90404FULL, acc);
}

}  // namespace efd
