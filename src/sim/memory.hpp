// Shared memory: an unbounded array of atomic read/write registers.
//
// Registers are addressed by interned RegAddr handles (see regid.hpp);
// reg(sym("V"), 2) names the canonical register "V[2]". A register never
// written reads as Nil (⊥), matching the paper's convention for initial
// register values. All accesses are single model steps performed by the
// World executor — the RegisterFile itself is a plain sequential store;
// atomicity comes from the one-step-at-a-time interleaving semantics of the
// simulator.
//
// The store is a RegId-indexed flat vector, so a read/write never
// constructs or hashes a std::string. content_hash() is maintained
// incrementally: each written cell contributes
//     cell_hash = mix(name_hash(RegId), value.hash())
// and the store keeps the commutative (mod 2^64) sum of cell hashes,
// updated by delta on every write. Keying by the canonical-name hash (not
// the RegId) makes the hash independent of interning order, and the
// commutative fold makes it independent of write interleaving — the two
// properties replay-based exploration dedup (corridor DFS, bivalence
// search) relies on. The string-accepting overloads intern by full name and
// exist for tests and debug probes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/regid.hpp"
#include "sim/value.hpp"

namespace efd {

/// Contribution of one written cell to the commutative content hash.
/// Binds the (stable) name hash to the value hash so that swapping the
/// values of two registers changes the total.
[[nodiscard]] constexpr std::uint64_t cell_content_hash(std::uint64_t name_hash,
                                                        std::uint64_t value_hash) noexcept {
  std::uint64_t x = name_hash ^ (value_hash * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// The shared store. One instance per World.
class RegisterFile {
 public:
  /// Current value of `addr`; Nil if never written.
  [[nodiscard]] Value read(RegAddr addr) const noexcept {
    ++reads_;
    const RegId id = addr.id();
    return (id < cells_.size() && written_[id] != 0) ? cells_[id] : Value{};
  }

  /// True iff `addr` was ever written (an explicitly written Nil counts).
  [[nodiscard]] bool written(RegAddr addr) const noexcept {
    const RegId id = addr.id();
    return id < cells_.size() && written_[id] != 0;
  }

  /// Overwrites `addr` with `v` (an explicitly written Nil still counts as
  /// written: the cell then contributes to footprint and content hash,
  /// exactly as the string-keyed store did).
  void write(RegAddr addr, Value v);

  /// Exact inverse of the most recent write(addr, ...): restores the cell to
  /// `prev` / never-written (`was_written == false`), rewinding footprint,
  /// write count, and the incremental content hash. Used by the incremental
  /// explorer's undo log; `(prev, was_written)` must be the pair observed via
  /// read()/written() immediately before that write.
  void undo_write(RegAddr addr, const Value& prev, bool was_written);

  /// Number of distinct registers ever written.
  [[nodiscard]] std::size_t footprint() const noexcept { return footprint_; }

  /// Total number of write operations applied (for bench reporting).
  [[nodiscard]] std::size_t write_count() const noexcept { return writes_; }

  /// Total number of read operations served (telemetry; undo_write does not
  /// count its internal lookups — it goes through the cells directly).
  [[nodiscard]] std::size_t read_count() const noexcept { return reads_; }

  /// Deterministic hash of the full memory contents (for exploration
  /// dedup). O(1): maintained incrementally by write().
  [[nodiscard]] std::uint64_t content_hash() const noexcept {
    // A final mix so an empty store doesn't hash to a trivial constant
    // relative to single-cell stores.
    return cell_content_hash(0x9AE16A3B2F90404FULL, hash_acc_);
  }

  /// Raw commutative cell-hash accumulator, BEFORE the final mix. World
  /// combines it with a substrate's accumulator (sim/substrate.hpp) so a
  /// message-passing backend's mailbox state folds into the same state hash
  /// a register-emulated mailbox would produce: content_hash() ==
  /// cell_content_hash(seed, hash_acc()) by construction.
  [[nodiscard]] std::uint64_t hash_acc() const noexcept { return hash_acc_; }

  /// From-scratch recompute of content_hash() over the written cells.
  /// O(footprint); for tests and debugging only.
  [[nodiscard]] std::uint64_t content_hash_slow() const noexcept;

 private:
  [[nodiscard]] std::uint64_t cached_name_hash(RegId id) noexcept;

  std::vector<Value> cells_;          ///< RegId-indexed; holes read as Nil
  std::vector<std::uint8_t> written_; ///< 1 iff the cell was ever written
  std::vector<std::uint64_t> cell_hash_;  ///< last cell_content_hash per id
  // Per-store cache of the interner's name hashes (the interner is now
  // lock-guarded for thread safety; caching keeps hot write loops off the
  // process-global shared lock). 0 marks "not fetched yet": FNV-1a of a
  // register name is never 0 in practice, and a false miss only re-fetches.
  std::vector<std::uint64_t> name_hash_;
  std::uint64_t hash_acc_ = 0;        ///< commutative sum of cell hashes
  std::size_t footprint_ = 0;
  std::size_t writes_ = 0;
  mutable std::size_t reads_ = 0;     ///< mutable: read() stays const/noexcept
};

}  // namespace efd
