// Shared memory: an unbounded array of atomic read/write registers.
//
// Registers are addressed by string names; `reg("V", i)` builds the indexed
// name "V[i]". A register never written reads as Nil (⊥), matching the
// paper's convention for initial register values. All accesses are single
// model steps performed by the World executor — the RegisterFile itself is a
// plain sequential store; atomicity comes from the one-step-at-a-time
// interleaving semantics of the simulator.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "sim/value.hpp"

namespace efd {

/// Builds the canonical name of an indexed register, e.g. reg("V", 2) == "V[2]".
[[nodiscard]] std::string reg(const std::string& base, int i);
/// Doubly-indexed register name, e.g. reg2("cons", 1, 3) == "cons[1][3]".
[[nodiscard]] std::string reg2(const std::string& base, int i, int j);
/// Triply-indexed register name.
[[nodiscard]] std::string reg3(const std::string& base, int i, int j, int k);

/// The shared store. One instance per World.
class RegisterFile {
 public:
  /// Current value of `addr`; Nil if never written.
  [[nodiscard]] Value read(const std::string& addr) const;

  /// Overwrites `addr` with `v`.
  void write(const std::string& addr, Value v);

  /// Number of distinct registers ever written.
  [[nodiscard]] std::size_t footprint() const noexcept { return cells_.size(); }

  /// Total number of write operations applied (for bench reporting).
  [[nodiscard]] std::size_t write_count() const noexcept { return writes_; }

  /// Deterministic hash of the full memory contents (for exploration dedup).
  [[nodiscard]] std::uint64_t content_hash() const;

 private:
  std::unordered_map<std::string, Value> cells_;
  std::size_t writes_ = 0;
};

}  // namespace efd
