// Coroutine process runtime for the EFD simulator.
//
// A process automaton (the paper's A^C_i or A^S_i) is written as a C++20
// coroutine of type Co<void> taking a Context&. Every
//
//     co_await ctx.read(addr) / ctx.write(addr, v) / ctx.query() /
//     ctx.yield() / ctx.decide(v)
//
// is exactly ONE step of the model: the coroutine suspends, and the step is
// performed when (and only when) the scheduler next selects this process.
// Local computation between awaits is free, matching the standard model in
// which a step is a single shared-memory access (or FD query) plus arbitrary
// local transitions.
//
// Subroutines compose: a helper `Co<Value> collect(Context&, ...)` can be
// `co_await`ed from another coroutine; its steps bubble up to the scheduler
// transparently (continuation chaining with symmetric transfer).
//
// AUTHORING RULES (violations are lifetime bugs):
//  * a coroutine takes its parameters BY VALUE (except Context&, which is a
//    stable heap object owned by the World) — reference parameters dangle
//    once the caller's full-expression ends;
//  * never pass an aggregate-struct prvalue (e.g. PaxosInstance{...}) as an
//    argument inside a `co_await f(...)` expression: GCC 12.2 destroys that
//    temporary twice. Bind it to a named local first (string and Value
//    prvalues are unaffected; see /tmp reproductions in the repo history);
//  * a lambda must never itself be a coroutine: its captures live in the
//    lambda object, which typically dies right after being passed to
//    World::spawn. Factories return lambdas that CALL a standalone
//    coroutine function (see e.g. algo/leader_consensus.cpp).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "sim/arena.hpp"
#include "sim/ids.hpp"
#include "sim/regid.hpp"
#include "sim/value.hpp"

namespace efd {

/// What a suspended process is waiting to do on its next scheduled step.
/// Fits in 3 bits (Trace packs it with kOpMask) — at most 8 kinds.
enum class OpKind : std::uint8_t {
  kRead,     ///< read a shared register; step result = register value
  kWrite,    ///< write a shared register; step result = Nil
  kQuery,    ///< query the failure detector (S-processes only)
  kYield,    ///< null local step (used by busy-wait loops); result = Nil
  kDecide,   ///< decide step: records the decision value
  kSend,     ///< enqueue a message to a mailbox (message substrates); result = Nil
  kRecv,     ///< dequeue from own mailbox; result = message or Nil when empty
  kDeliver,  ///< move one in-flight message onto its mailbox (link daemons)
};

struct PendingOp {
  OpKind kind{OpKind::kYield};
  RegAddr addr;  ///< interned register/mailbox/link handle
  Value value;   ///< value for kWrite/kDecide/kSend
};

template <class T>
class Co;

namespace detail {

template <class T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  // Coroutine frames come from the thread's current FrameArena (installed by
  // World entry points) and fall back to the global heap otherwise. The
  // sized delete is ignored on purpose: frame_free reads the size from the
  // block's own header, so frames can be freed from any thread/scope.
  static void* operator new(std::size_t bytes) { return frame_alloc(bytes); }
  static void operator delete(void* p) noexcept { frame_free(p); }
  static void operator delete(void* p, std::size_t) noexcept { frame_free(p); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T, usable as a process body (T=void)
/// or as an awaitable subroutine. Move-only; owns its frame.
template <class T>
class Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    std::optional<T> result;
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { result.emplace(std::move(v)); }
  };

  Co() noexcept = default;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept { return h_; }

  /// Awaiting a Co<T> starts it and yields T when it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // start (or resume into) the subroutine
      }
      T await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
        return std::move(*h.promise().result);
      }
    };
    return Awaiter{h_};
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};

  friend struct promise_type;
};

template <>
class Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Co() noexcept = default;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept { return h_; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{h_};
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};

  friend struct promise_type;
};

/// A process body.
using Proc = Co<void>;

/// Per-process mailbox between the coroutine and the World executor.
///
/// The coroutine side registers pending operations via the awaitable
/// factories; the World side inspects `pending()`, performs the operation,
/// and calls `deliver(result)`, which resumes the innermost suspended frame.
class Context {
 public:
  explicit Context(Pid pid) noexcept : pid_(pid) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] Pid pid() const noexcept { return pid_; }

  // ---- coroutine-side awaitable factories (each is one model step) ----

  struct StepAwaiter {
    Context* ctx;
    PendingOp op;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      ctx->pending_ = std::move(op);
      ctx->has_pending_ = true;
      ctx->resume_target_ = h;
    }
    Value await_resume() noexcept { return std::move(ctx->result_); }
  };

  [[nodiscard]] StepAwaiter read(RegAddr addr) noexcept {
    return {this, {OpKind::kRead, addr, Value{}}};
  }
  [[nodiscard]] StepAwaiter write(RegAddr addr, Value v) noexcept {
    return {this, {OpKind::kWrite, addr, std::move(v)}};
  }
  [[nodiscard]] StepAwaiter query() noexcept { return {this, {OpKind::kQuery, {}, Value{}}}; }
  [[nodiscard]] StepAwaiter yield() noexcept { return {this, {OpKind::kYield, {}, Value{}}}; }
  [[nodiscard]] StepAwaiter decide(Value v) noexcept {
    return {this, {OpKind::kDecide, {}, std::move(v)}};
  }
  [[nodiscard]] StepAwaiter send(RegAddr to, Value v) noexcept {
    return {this, {OpKind::kSend, to, std::move(v)}};
  }
  [[nodiscard]] StepAwaiter recv(RegAddr mbox) noexcept {
    return {this, {OpKind::kRecv, mbox, Value{}}};
  }
  [[nodiscard]] StepAwaiter deliver(RegAddr link) noexcept {
    return {this, {OpKind::kDeliver, link, Value{}}};
  }

  // ---- world-side protocol ----

  [[nodiscard]] bool has_pending() const noexcept { return has_pending_; }
  [[nodiscard]] const PendingOp& pending() const noexcept { return pending_; }

  /// Consumes the pending op, stores the step result, and resumes the process
  /// until it registers its next op or finishes.
  void deliver(Value result) {
    assert(has_pending_);
    has_pending_ = false;
    result_ = std::move(result);
    auto h = std::exchange(resume_target_, {});
    h.resume();
  }

  [[nodiscard]] bool decided() const noexcept { return decided_; }
  [[nodiscard]] const Value& decision() const noexcept { return decision_; }
  void record_decision(Value v) noexcept {
    decided_ = true;
    decision_ = std::move(v);
  }

  /// Returns the mailbox to its freshly-constructed state so World::respawn
  /// can reuse the Context object (it is a stable heap address handed by
  /// reference into coroutine frames, so it must not be reallocated).
  void reset() noexcept {
    pending_ = PendingOp{};
    has_pending_ = false;
    result_ = Value{};
    resume_target_ = {};
    decided_ = false;
    decision_ = Value{};
  }

 private:
  Pid pid_;
  PendingOp pending_{};
  bool has_pending_ = false;
  Value result_;
  std::coroutine_handle<> resume_target_{};
  bool decided_ = false;
  Value decision_;
};

// ---- common multi-step helpers (each register access is one step) ----

/// Reads base[0..n-1] one register at a time; returns the n collected values.
Co<Value> collect(Context& ctx, Sym base, int n);

/// Repeated double collect of base[0..n-1] until two identical collects.
/// Returns the stable view. May take unboundedly many steps under contention
/// (standard for register-based snapshots); our algorithms only use it where
/// the paper's constructions tolerate that.
Co<Value> double_collect(Context& ctx, Sym base, int n);

/// Busy-waits (one read step per iteration) until `addr` is non-Nil; returns
/// the first non-Nil value observed.
Co<Value> await_nonnil(Context& ctx, RegAddr addr);

/// DEPRECATED(string-intern-per-call): these convenience overloads intern
/// `base` on EVERY call, taking the global Sym table lock inside the step
/// loop. New code (and all hot paths) must hoist the handle once —
/// `static const Sym kBase = sym("base");` — and call the Sym overloads
/// above. Kept only for cold call sites and tests; grep for the marker
/// `string-intern-per-call` before adding a caller.
inline Co<Value> collect(Context& ctx, const std::string& base, int n) {
  return collect(ctx, sym(base), n);
}
inline Co<Value> double_collect(Context& ctx, const std::string& base, int n) {
  return double_collect(ctx, sym(base), n);
}

}  // namespace efd
