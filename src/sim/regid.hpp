// Interned register addressing.
//
// The simulator used to key shared memory by register-name strings
// ("V[2]"), paying a heap allocation plus a string hash on every model
// step. This layer interns every register address exactly once into a
// dense 32-bit RegId; all hot-path lookups afterwards are integer ops.
//
// Two handle types:
//  * Sym    — an interned base symbol ("V", "px/RB"). Obtained from
//             sym(name); algorithms intern their bases once per coroutine
//             (or per instance struct) and build indexed addresses from
//             them with reg()/reg2()/reg3() at zero string cost.
//  * RegAddr — an interned full register address. Internally just a RegId.
//             reg(Sym, i) resolves through small integer-keyed caches, so
//             a register access never constructs or hashes a std::string.
//
// Canonical names are still the source of truth for identity: reg(sym("V"),
// 2) renders "V[2]" on first use and unifies with any RegAddr made from the
// literal string "V[2]" (string-accepting constructors are kept for tests,
// traces, and debug output). Per-RegId the interner also stores an FNV-1a
// hash of the canonical name; those name hashes are what the RegisterFile's
// incremental content hash is keyed by, so exploration dedup hashes do not
// depend on interning order (see memory.hpp).
//
// The interner is process-global, append-only, and thread-safe: a single
// World still steps one coroutine at a time, but the parallel frontier
// explorer (core/solvability.hpp) runs many independent Worlds concurrently,
// all resolving addresses through this table. Lookups of already-interned
// names take a shared (read) lock; the first resolution of a new name takes
// an exclusive lock, re-checks, and appends. Ids are dense and immutable
// once handed out, and name references stay valid across appends.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace efd {

/// Dense identifier of an interned register address.
using RegId = std::uint32_t;
inline constexpr RegId kInvalidRegId = 0xFFFFFFFFu;

/// An interned base symbol. POD handle; compare/hash by id.
class Sym {
 public:
  constexpr Sym() noexcept = default;
  [[nodiscard]] constexpr std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0xFFFFFFFFu; }
  /// The interned base name (e.g. "px/RB").
  [[nodiscard]] const std::string& name() const;
  friend constexpr bool operator==(Sym a, Sym b) noexcept { return a.id_ == b.id_; }

 private:
  friend Sym sym(std::string_view);
  constexpr explicit Sym(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_ = 0xFFFFFFFFu;
};

/// Interns a base symbol (one string hash; amortized by callers that keep
/// the Sym around). Idempotent: equal names yield equal Syms.
[[nodiscard]] Sym sym(std::string_view name);

/// An interned full register address — a dense RegId plus debug accessors.
class RegAddr {
 public:
  /// Invalid address (used by ops without a register, e.g. decide steps).
  constexpr RegAddr() noexcept = default;
  /// Interns `name` as-is. Convenience for tests/traces/debug and for
  /// config-level register names; not for per-access hot paths.
  RegAddr(const std::string& name);  // NOLINT(google-explicit-constructor)
  RegAddr(const char* name);         // NOLINT(google-explicit-constructor)
  RegAddr(std::string_view name);    // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr RegId id() const noexcept { return id_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != kInvalidRegId; }
  /// Canonical register name, e.g. "V[2]" (interner lookup; debug/traces).
  [[nodiscard]] const std::string& name() const;
  /// FNV-1a hash of the canonical name: stable across processes and
  /// interning orders (used by the incremental content hash).
  [[nodiscard]] std::uint64_t name_hash() const;

  [[nodiscard]] static constexpr RegAddr from_id(RegId id) noexcept {
    RegAddr a;
    a.id_ = id;
    return a;
  }

  friend constexpr bool operator==(RegAddr a, RegAddr b) noexcept { return a.id_ == b.id_; }

 private:
  RegId id_ = kInvalidRegId;
};

/// Arity-0 address: the base symbol itself names the register (e.g. a
/// namespace-scoped scalar like "cons/DEC").
[[nodiscard]] RegAddr reg(Sym base);
/// Indexed register address, canonical name base.name() + "[i]".
[[nodiscard]] RegAddr reg(Sym base, int i);
/// Doubly-indexed register address ("b[i][j]").
[[nodiscard]] RegAddr reg2(Sym base, int i, int j);
/// Triply-indexed register address ("b[i][j][k]").
[[nodiscard]] RegAddr reg3(Sym base, int i, int j, int k);

/// String-accepting conveniences (intern the base per call — fine for
/// setup, tests, and debug output; hot paths hoist the Sym instead).
[[nodiscard]] RegAddr reg(const std::string& base, int i);
[[nodiscard]] RegAddr reg2(const std::string& base, int i, int j);
[[nodiscard]] RegAddr reg3(const std::string& base, int i, int j, int k);

/// Number of register addresses interned process-wide so far. RegIds are
/// dense: every id in [0, interned_register_count()) is valid.
[[nodiscard]] std::size_t interned_register_count();
/// Canonical name / stable name hash of an interned id (debug, hashing).
[[nodiscard]] const std::string& reg_name(RegId id);
[[nodiscard]] std::uint64_t reg_name_hash(RegId id);

}  // namespace efd

template <>
struct std::hash<efd::Sym> {
  std::size_t operator()(efd::Sym s) const noexcept { return s.id(); }
};

template <>
struct std::hash<efd::RegAddr> {
  std::size_t operator()(efd::RegAddr a) const noexcept { return a.id(); }
};
