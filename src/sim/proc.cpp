#include "sim/proc.hpp"

#include "sim/memory.hpp"

namespace efd {

Co<Value> collect(Context& ctx, Sym base, int n) {
  // Fast path: gather into a frame-local buffer and pack straight into a
  // Value (inline when the elements permit) — no ValueVec heap round-trip.
  // The buffer lives in the coroutine frame, i.e. in the world's arena.
  constexpr int kBuf = 16;
  if (n >= 0 && n <= kBuf) {
    Value buf[kBuf];
    for (int i = 0; i < n; ++i) {
      buf[i] = co_await ctx.read(reg(base, i));
    }
    co_return Value(buf, buf + n);
  }
  ValueVec out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(co_await ctx.read(reg(base, i)));
  }
  co_return Value(std::move(out));
}

Co<Value> double_collect(Context& ctx, Sym base, int n) {
  Value prev = co_await collect(ctx, base, n);
  for (;;) {
    Value cur = co_await collect(ctx, base, n);
    if (cur == prev) co_return cur;
    prev = std::move(cur);
  }
}

Co<Value> await_nonnil(Context& ctx, RegAddr addr) {
  for (;;) {
    Value v = co_await ctx.read(addr);
    if (!v.is_nil()) co_return v;
  }
}

}  // namespace efd
