// Process identities and time for the EFD model.
//
// The system has m C-processes p_1..p_m (computation) and n S-processes
// q_1..q_n (synchronization). Following the paper we almost always use n = m,
// but the types keep the two populations distinct: only S-processes can crash
// and only S-processes may query a failure detector.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace efd {

/// Discrete model time. The time sequence T of a run is non-decreasing; we
/// use one tick per step, so step index and time coincide in this simulator.
using Time = std::int64_t;

enum class ProcKind : std::uint8_t {
  kC,  ///< computation process (wait-free participant in the task)
  kS,  ///< synchronization process (crash-prone, may query a failure detector)
};

/// Identity of a process: its population (C or S) and its 0-based index.
struct Pid {
  ProcKind kind{ProcKind::kC};
  int index{0};

  friend auto operator<=>(const Pid&, const Pid&) = default;

  [[nodiscard]] bool is_c() const noexcept { return kind == ProcKind::kC; }
  [[nodiscard]] bool is_s() const noexcept { return kind == ProcKind::kS; }

  /// "p3" / "q1" in the paper's 1-based notation.
  [[nodiscard]] std::string to_string() const {
    return (is_c() ? "p" : "q") + std::to_string(index + 1);
  }
};

/// C-process p_{i+1} (0-based index i).
constexpr Pid cpid(int i) noexcept { return Pid{ProcKind::kC, i}; }
/// S-process q_{i+1} (0-based index i).
constexpr Pid spid(int i) noexcept { return Pid{ProcKind::kS, i}; }

}  // namespace efd

template <>
struct std::hash<efd::Pid> {
  std::size_t operator()(const efd::Pid& p) const noexcept {
    return (static_cast<std::size_t>(p.kind) << 24) ^ static_cast<std::size_t>(p.index);
  }
};
