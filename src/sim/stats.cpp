#include "sim/stats.hpp"

#include <sstream>

#include "sim/world.hpp"

namespace efd {

std::string format_run_report(const World& w) {
  const RunStats& s = w.run_stats();
  const RegisterFile& m = w.memory();
  std::ostringstream os;
  os << "run report\n";
  os << "  steps          : " << s.steps << " (reads " << s.reads << ", writes " << s.writes
     << ", queries " << s.queries << ", yields " << s.yields << ", decides " << s.decides
     << ", null " << s.null_steps << ")\n";
  os << "  crashed steps  : " << s.crashed_attempts << " refused (no time advance)\n";
  if (s.injected_crashes > 0) {
    os << "  fault injection: " << s.injected_crashes << " crash points applied\n";
  }
  os << "  registers      : " << m.footprint() << " written (" << m.write_count()
     << " writes, " << m.read_count() << " reads)\n";
  int decided = 0;
  for (int i = 0; i < w.num_c(); ++i) {
    if (w.exists(cpid(i)) && w.decided(cpid(i))) ++decided;
  }
  os << "  decided        : " << decided << "/" << w.num_c() << " C-processes\n";
  return os.str();
}

}  // namespace efd
