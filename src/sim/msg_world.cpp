#include "sim/msg_world.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace efd {
namespace {

Proc link_daemon(Context& ctx, RegAddr link) {
  for (;;) {
    (void)co_await ctx.deliver(link);
  }
}

}  // namespace

RegAddr mp_mailbox(int j) {
  static const Sym kMb = sym("mb");
  return reg(kMb, j);
}

RegAddr mp_link(int sender, int mbox) {
  static const Sym kCh = sym("ch");
  return reg2(kCh, sender, mbox);
}

std::vector<RegAddr> mp_mailboxes(int m) {
  std::vector<RegAddr> out;
  out.reserve(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) out.push_back(mp_mailbox(j));
  return out;
}

void install_msg_eager(World& w, int n, int m) {
  w.set_substrate(std::make_unique<MsgSubstrate>(
      ChannelFabric(n, mp_mailboxes(m), {}, /*eager=*/true)));
}

void install_shm_mailboxes(World& w) { w.set_substrate(std::make_unique<ShmSubstrate>()); }

MsgSubstrate* msg_substrate(World& w) {
  if (!w.substrate_set() || w.substrate().kind() != SubstrateKind::kMsg) return nullptr;
  return static_cast<MsgSubstrate*>(&w.substrate());
}

ProcBody make_link_daemon(RegAddr link) {
  return [link](Context& ctx) { return link_daemon(ctx, link); };
}

World make_mp_world(int n, int m, FailurePattern pattern, HistoryPtr history, int s_base) {
  if (pattern.n() < s_base + n * m) {
    throw std::invalid_argument("make_mp_world: pattern must cover one S-process per link");
  }
  std::vector<RegAddr> links;
  links.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) links.push_back(mp_link(i, j));
  }
  World w(std::move(pattern), std::move(history));
  w.set_substrate(std::make_unique<MsgSubstrate>(
      ChannelFabric(n, mp_mailboxes(m), links, /*eager=*/false)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      w.spawn_s(s_base + mp_link_s_index(m, i, j), make_link_daemon(mp_link(i, j)));
    }
  }
  return w;
}

void sever_link(FailurePattern& pattern, int m, int sender, int mbox, Time t, int s_base) {
  pattern.crash(s_base + mp_link_s_index(m, sender, mbox), t);
}

FailurePattern mp_partition(int n, int m, const std::vector<int>& group, Time t, int extra_s) {
  FailurePattern p(n * m + extra_s);
  const auto in_group = [&group](int x) {
    return std::find(group.begin(), group.end(), x) != group.end();
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      if (in_group(i) != in_group(j)) sever_link(p, m, i, j, t);
    }
  }
  return p;
}

}  // namespace efd
