// The World: deterministic executor of EFD runs.
//
// A World holds the shared registers, the spawned C- and S-process
// coroutines, a failure pattern for the S-processes, and one failure-detector
// history. `step(pid)` performs exactly one step of `pid`: it executes the
// process's pending operation against the memory / FD history at the current
// time, then resumes the coroutine until it registers its next operation.
// Runs are fully deterministic given (process bodies, schedule, pattern,
// history), which is what makes replay-based exploration (corridor DFS,
// bivalence search) sound.
//
// Allocation (PR 6): every path that can resume or construct a coroutine
// (spawn/respawn/prime/step/redeliver) installs the world's FrameArena as the
// thread's current arena, so all frames — bodies and their subroutines — are
// pooled per World. respawn() additionally reuses the process's Context
// (reset in place) instead of reallocating it, and step() only assembles a
// trace record when tracing is enabled. Steady-state stepping is
// allocation-free; see sim/arena.hpp for the pooling contract.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "fd/failure_pattern.hpp"
#include "fd/history.hpp"
#include "sim/arena.hpp"
#include "sim/ids.hpp"
#include "sim/memory.hpp"
#include "sim/proc.hpp"
#include "sim/stats.hpp"
#include "sim/substrate.hpp"
#include "sim/trace.hpp"

namespace efd {

/// Factory producing a process body bound to its Context.
using ProcBody = std::function<Proc(Context&)>;

/// Per-step observer hook (core/monitors.hpp implements it). Called once for
/// every successful (non-refused) step, after the op executed; refused steps
/// of crashed S-processes are invisible to observers, like to the trace.
/// `op` is the executed operation kind (kYield for null steps) — the
/// retransmit-storm monitor classifies send traffic with it.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(Pid pid, OpKind op, bool null_step, bool decided_now,
                       bool terminated_now) = 0;
};

class World {
 public:
  /// A world with `num_s` S-processes failing per `pattern` and consulting
  /// `history`. C-processes are added via spawn_c; their count is free.
  World(FailurePattern pattern, HistoryPtr history)
      : pattern_(std::move(pattern)), history_(std::move(history)) {
    if (!history_) throw std::invalid_argument("World: null history");
  }

  /// Convenience: failure-free world with a trivial (all-Nil) history.
  static World failure_free(int num_s);

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  // Movable: Contexts and the FrameArena are heap-allocated (stable
  // addresses), so suspended coroutine frames referencing them — and frame
  // headers naming the arena — survive the move.
  World(World&&) noexcept = default;
  World& operator=(World&&) noexcept = default;

  // ---- population ----

  /// Spawns C-process p_{i+1}. The body typically starts by writing its input.
  void spawn_c(int i, const ProcBody& body) { spawn(cpid(i), body); }
  /// Spawns S-process q_{i+1}.
  void spawn_s(int i, const ProcBody& body) { spawn(spid(i), body); }
  /// The body is only invoked, never stored: callers may (and the
  /// incremental explorer does) pass the same cached ProcBody repeatedly
  /// without paying a std::function copy per call.
  void spawn(Pid pid, const ProcBody& body);

  /// Replaces pid's coroutine with a fresh instance of `body` (Context reset
  /// in place: undecided, zero steps). Used by the incremental explorer to
  /// rewind a single process: coroutine frames cannot run backwards, so a
  /// backtracked process is respawned and fast-forwarded with redeliver().
  /// The old frame is recycled through the world's arena into the new one.
  void respawn(Pid pid, const ProcBody& body);

  [[nodiscard]] bool exists(Pid pid) const noexcept {
    const auto& v = pid.is_c() ? c_slots_ : s_slots_;
    return pid.index >= 0 && static_cast<std::size_t>(pid.index) < v.size() &&
           v[static_cast<std::size_t>(pid.index)].ctx != nullptr;
  }
  [[nodiscard]] std::vector<Pid> pids() const;
  [[nodiscard]] int num_c() const noexcept { return num_c_; }
  [[nodiscard]] int num_s() const noexcept { return num_s_; }

  // ---- execution ----

  /// Performs one step of `pid` at the current time. Returns false (and does
  /// not advance time) if `pid` is a crashed S-process; otherwise advances
  /// time by one tick. Steps of terminated processes are null steps.
  bool step(Pid pid);

  /// The operation pid's coroutine is suspended on, or nullptr if pid has
  /// terminated. Inspecting it does not perform the step; step(pid) will
  /// execute exactly this operation. (Primes the coroutine if needed.)
  [[nodiscard]] const PendingOp* pending_op(Pid pid);

  /// Replays one step of pid from a recorded run WITHOUT touching memory,
  /// the FD history, the trace, or model time: delivers `result` (the value
  /// the original step produced) straight to the coroutine, recording a
  /// decision if the pending op is a decide. Deterministic replay makes this
  /// equivalent to the original step from the coroutine's point of view —
  /// the caller is responsible for the shared-memory side (the incremental
  /// explorer restores memory via its undo log). C-processes only.
  void redeliver(Pid pid, Value result);

  /// Batched redeliver(): fast-forwards pid through `results` in order,
  /// paying the slot lookup, priming check, and arena scope once for the
  /// whole replay instead of per step. Exactly equivalent to redelivering
  /// each element in sequence; the incremental explorer replays whole
  /// per-process logs through this.
  void redeliver_all(Pid pid, const std::vector<Value>& results);

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// True iff pid's coroutine has run to completion.
  [[nodiscard]] bool terminated(Pid pid) const { return slot(pid).proc.done(); }
  /// True iff pid executed a decide step.
  [[nodiscard]] bool decided(Pid pid) const { return slot(pid).ctx->decided(); }
  [[nodiscard]] Value decision(Pid pid) const { return slot(pid).ctx->decision(); }
  /// Non-null steps taken by pid so far.
  [[nodiscard]] int steps_taken(Pid pid) const { return slot(pid).steps; }
  /// True once pid has taken at least one step (C-processes: participating).
  [[nodiscard]] bool participating(Pid pid) const { return slot(pid).steps > 0; }

  /// True iff every spawned C-process has decided.
  [[nodiscard]] bool all_c_decided() const;
  /// Output vector O of the run so far: O[i] = decision of p_{i+1}, ⊥ if none.
  [[nodiscard]] ValueVec output_vector() const;

  // ---- environment access ----

  [[nodiscard]] RegisterFile& memory() noexcept { return mem_; }
  [[nodiscard]] const RegisterFile& memory() const noexcept { return mem_; }
  [[nodiscard]] const FailurePattern& pattern() const noexcept { return pattern_; }

  // ---- substrate (communication-step semantics; sim/substrate.hpp) ----

  /// Installs a substrate. Must happen before the first send/recv/deliver
  /// step; pure register worlds never need one.
  void set_substrate(std::unique_ptr<Substrate> s) noexcept { substrate_ = std::move(s); }
  /// True once a substrate is installed — the explorers' cheap gate for
  /// MP-aware paths (pure register worlds skip them entirely).
  [[nodiscard]] bool substrate_set() const noexcept { return substrate_ != nullptr; }
  /// The installed substrate, or nullptr.
  [[nodiscard]] const Substrate* substrate_if() const noexcept { return substrate_.get(); }
  /// The substrate, lazily defaulting to registers-as-mailboxes: a world
  /// whose processes send/recv without an explicit install behaves as if
  /// every mailbox were one register holding its pending FIFO.
  [[nodiscard]] Substrate& substrate() {
    if (!substrate_) substrate_ = std::make_unique<ShmSubstrate>();
    return *substrate_;
  }

  /// Deterministic hash of the full shared state: register contents PLUS
  /// substrate-held mailbox state. Equals memory().content_hash() exactly
  /// when the substrate holds no state (none installed, or ShmSubstrate),
  /// and is byte-identical across backends holding the same mailbox
  /// contents — the property cross-backend exploration signatures rely on.
  [[nodiscard]] std::uint64_t state_hash() const noexcept {
    const std::uint64_t sub = substrate_ ? substrate_->hash_acc() : 0;
    return cell_content_hash(0x9AE16A3B2F90404FULL, mem_.hash_acc() + sub);
  }

  /// Crash-point fault injection: S-process q_{qi+1} crashes NOW (at the
  /// current time), regardless of what the constructed pattern said. No-op
  /// on an already-crashed process (crashes are permanent; re-injecting must
  /// not revive it for the interim). Used by drive_with_crashes
  /// (sim/replay.hpp) to kill a process at an exact schedule step index —
  /// "crash the leader mid-commit" scenarios.
  void inject_crash(int qi) {
    if (qi < 0 || qi >= pattern_.n()) {
      throw std::out_of_range("World::inject_crash: no such S-process");
    }
    if (!pattern_.alive(qi, now_)) return;
    pattern_.crash(qi, now_);
    ++stats_.injected_crashes;
  }
  [[nodiscard]] const History& history() const noexcept { return *history_; }
  /// True iff pid can take a step now (C-processes always can).
  [[nodiscard]] bool alive(Pid pid) const {
    return pid.is_c() || pattern_.alive(pid.index, now_);
  }

  // ---- tracing & telemetry ----

  void enable_trace(bool on = true) noexcept { tracing_ = on; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Attaches a per-step observer (nullptr detaches). The world does not own
  /// it; the caller keeps it alive across the drive. Unattached worlds pay
  /// one pointer test per step (E14 A/B: within noise, see EXPERIMENTS E15).
  void attach_observer(StepObserver* obs) noexcept { observer_ = obs; }
  [[nodiscard]] StepObserver* observer() const noexcept { return observer_; }

  /// Always-on run counters (see sim/stats.hpp for the invariants).
  [[nodiscard]] const RunStats& run_stats() const noexcept { return stats_; }
  /// Frame-pool telemetry of this world's arena (benchmark reporting).
  [[nodiscard]] const ArenaStats& arena_stats() const noexcept { return arena_->stats(); }

 private:
  struct Slot {
    Proc proc;
    std::unique_ptr<Context> ctx;  ///< null => slot index never spawned
    bool primed = false;
    int steps = 0;
  };

  [[nodiscard]] const Slot& slot(Pid pid) const;
  [[nodiscard]] Slot& slot(Pid pid);
  void prime(Slot& s);

  FailurePattern pattern_;
  HistoryPtr history_;
  RegisterFile mem_;
  std::unique_ptr<Substrate> substrate_;  ///< null: pure-register world
  // The arena must be declared before the slot vectors: members destroy in
  // reverse order, so the frames (owned by the slots' coroutines) are freed
  // back into a still-live arena.
  std::unique_ptr<FrameArena> arena_ = std::make_unique<FrameArena>();
  std::vector<Slot> c_slots_;
  std::vector<Slot> s_slots_;
  Time now_ = 0;
  int num_c_ = 0;
  int num_s_ = 0;
  bool tracing_ = false;
  Trace trace_;
  RunStats stats_;
  StepObserver* observer_ = nullptr;
};

}  // namespace efd
