#include "sim/snapshot.hpp"

#include "sim/memory.hpp"

namespace efd {
namespace {

/// Widest snapshot assembled on the frame instead of the heap. System sizes
/// explored exhaustively are far below this; larger n falls back to a
/// heap-backed ValueVec.
constexpr int kStackCells = 16;

}  // namespace

Co<void> versioned_write(Context& ctx, Sym base, int me, Value v) {
  const Value cur = co_await ctx.read(reg(base, me));
  const std::int64_t seq = cur.is_vec() ? cur.at(0).int_or(0) : 0;
  co_await ctx.write(reg(base, me), vec(Value(seq + 1), std::move(v)));
}

Co<Value> atomic_snapshot(Context& ctx, Sym base, int n) {
  const Value stable = co_await double_collect(ctx, base, n);
  if (n <= kStackCells) {
    // Assemble on the frame: the range constructor packs int-only
    // snapshots inline, so the common small-n case never allocates.
    Value buf[kStackCells];
    for (int i = 0; i < n; ++i) {
      const Value cell = stable.at(static_cast<std::size_t>(i));
      if (cell.is_vec()) buf[i] = cell.at(1);
    }
    co_return Value(buf, buf + n);
  }
  ValueVec out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Value cell = stable.at(static_cast<std::size_t>(i));
    if (cell.is_vec()) out[static_cast<std::size_t>(i)] = cell.at(1);
  }
  co_return Value(std::move(out));
}

Co<Value> immediate_snapshot(Context& ctx, Sym ns_r, int me, int n, Value v) {
  // R[p] = [level, value]; a process descends one level per iteration until
  // the processes at its level or below fill it.
  int level = n + 1;
  for (;;) {
    --level;
    co_await ctx.write(reg(ns_r, me), vec(Value(level), v));
    const Value snap = co_await double_collect(ctx, ns_r, n);
    if (n <= kStackCells) {
      Value buf[kStackCells];
      int at_or_below = 0;
      for (int q = 0; q < n; ++q) {
        const Value cell = snap.at(static_cast<std::size_t>(q));
        if (cell.is_vec() && cell.at(0).int_or(n + 1) <= level) {
          buf[q] = cell.at(1);
          ++at_or_below;
        }
      }
      if (at_or_below >= level) co_return Value(buf, buf + n);
      continue;
    }
    ValueVec view(static_cast<std::size_t>(n));
    int at_or_below = 0;
    for (int q = 0; q < n; ++q) {
      const Value cell = snap.at(static_cast<std::size_t>(q));
      if (cell.is_vec() && cell.at(0).int_or(n + 1) <= level) {
        view[static_cast<std::size_t>(q)] = cell.at(1);
        ++at_or_below;
      }
    }
    if (at_or_below >= level) co_return Value(std::move(view));
  }
}

bool view_contains(const Value& view, int id) {
  return !view.at(static_cast<std::size_t>(id)).is_nil();
}

bool view_subset(const Value& a, const Value& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a.at(i).is_nil() && b.at(i).is_nil()) return false;
  }
  return true;
}

int view_size(const Value& view) {
  int s = 0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (!view.at(i).is_nil()) ++s;
  }
  return s;
}

}  // namespace efd
