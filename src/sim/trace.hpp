// Run traces and run-shape checkers (fairness, k-concurrency).
//
// A trace is the executed prefix of a run: one record per scheduled step,
// including null steps of decided/terminated processes. The checkers below
// implement the paper's run predicates on finite prefixes:
//  * participation: a C-process participates once it takes its first step
//    (its first step is the input write, per §2.2);
//  * k-concurrency: at every moment, at most k participating C-processes are
//    undecided (§2.2).
#pragma once

#include <string>
#include <vector>

#include "sim/ids.hpp"
#include "sim/proc.hpp"
#include "sim/value.hpp"

namespace efd {

struct StepRecord {
  Time time{};
  Pid pid{};
  OpKind op{OpKind::kYield};
  RegAddr addr;       ///< interned register handle for read/write
  Value value;        ///< written / decided value
  Value result;       ///< read result / FD sample
  bool null_step{false};  ///< process already terminated; step had no effect
  bool terminated{false};  ///< this step ran the coroutine to completion

  /// Canonical register name of `addr` ("" when the op has no register).
  [[nodiscard]] const std::string& addr_name() const;
  [[nodiscard]] std::string to_string() const;
};

using Trace = std::vector<StepRecord>;

/// Maximum over time of |{participating C-processes not yet decided}|.
[[nodiscard]] int max_concurrency(const Trace& trace);

/// True iff the trace is k-concurrent in the paper's sense.
[[nodiscard]] bool is_k_concurrent(const Trace& trace, int k);

/// Number of (non-null) steps taken by `pid` in the trace.
[[nodiscard]] int steps_of(const Trace& trace, Pid pid);

/// Renders at most `limit` records, one per line (for demos / debugging).
[[nodiscard]] std::string format_trace(const Trace& trace, std::size_t limit = 100);

/// Order-dependent deterministic hash of a trace: folds every field of every
/// record, keying registers by their canonical-NAME hash (not the RegId), so
/// the result is stable across processes, interning orders and thread
/// counts. This is the identity record/replay (sim/replay.hpp) is checked
/// against: replaying a tape must reproduce this hash bit-for-bit.
[[nodiscard]] std::uint64_t trace_hash(const Trace& trace);

}  // namespace efd
