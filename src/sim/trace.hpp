// Run traces and run-shape checkers (fairness, k-concurrency).
//
// A trace is the executed prefix of a run: one record per scheduled step,
// including null steps of decided/terminated processes. The checkers below
// implement the paper's run predicates on finite prefixes:
//  * participation: a C-process participates once it takes its first step
//    (its first step is the input write, per §2.2);
//  * k-concurrency: at every moment, at most k participating C-processes are
//    undecided (§2.2).
//
// Storage (PR 6): Trace is a struct-of-arrays container, not a
// std::vector<StepRecord>. Each per-step field lives in its own dense array
// (time / packed pid / op+flags byte / RegId / value indices); the Values
// themselves sit in a side pool that Nil never enters (the overwhelmingly
// common value AND result of a step is Nil, which costs 4 bytes of sentinel
// index instead of 24 bytes of Value). A step record is ~21 bytes of dense
// arrays versus the ~96-byte AoS StepRecord, the checkers and trace_hash scan
// flat arrays, and appending a Nil-valued step allocates nothing.
//
// The record API is preserved through MATERIALIZED views: trace[i] and
// iteration yield StepRecord by value. `const StepRecord& r = trace[i]` and
// `for (const auto& s : trace)` still work (lifetime extension); what no
// longer works is mutating a record in place — traces are append-only.
#pragma once

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "sim/ids.hpp"
#include "sim/proc.hpp"
#include "sim/value.hpp"

namespace efd {

/// One step of a run, materialized from the trace's column arrays.
struct StepRecord {
  Time time{};
  Pid pid{};
  OpKind op{OpKind::kYield};
  RegAddr addr;       ///< interned register handle for read/write
  Value value;        ///< written / decided value
  Value result;       ///< read result / FD sample
  bool null_step{false};  ///< process already terminated; step had no effect
  bool terminated{false};  ///< this step ran the coroutine to completion

  /// Canonical register name of `addr` ("" when the op has no register).
  [[nodiscard]] const std::string& addr_name() const;
  [[nodiscard]] std::string to_string() const;
};

/// Append-only struct-of-arrays trace. Records are read back as materialized
/// StepRecord values; hot consumers (checkers, trace_hash) use the column
/// accessors instead and never touch a Value they don't need.
class Trace {
 public:
  Trace() = default;

  /// Appends one step from its parts (the World's fast path: no StepRecord
  /// is ever assembled). Nil values/results are not pooled.
  void append(Time time, Pid pid, OpKind op, RegAddr addr, const Value& value,
              const Value& result, bool null_step, bool terminated) {
    time_.push_back(time);
    pid_.push_back(pack_pid(pid));
    opflags_.push_back(static_cast<std::uint8_t>(static_cast<unsigned>(op) |
                                                 (null_step ? kNullBit : 0u) |
                                                 (terminated ? kTermBit : 0u)));
    addr_.push_back(addr.id());
    value_.push_back(pool(value));
    result_.push_back(pool(result));
  }
  void push_back(const StepRecord& r) {
    append(r.time, r.pid, r.op, r.addr, r.value, r.result, r.null_step, r.terminated);
  }

  [[nodiscard]] std::size_t size() const noexcept { return time_.size(); }
  [[nodiscard]] bool empty() const noexcept { return time_.empty(); }
  void clear() noexcept {
    time_.clear();
    pid_.clear();
    opflags_.clear();
    addr_.clear();
    value_.clear();
    result_.clear();
    pool_.clear();
  }

  /// Materializes record i (copies the two Values).
  [[nodiscard]] StepRecord operator[](std::size_t i) const {
    StepRecord r;
    r.time = time_[i];
    r.pid = pid_at(i);
    r.op = op_at(i);
    r.addr = RegAddr::from_id(addr_[i]);
    r.value = value_at(i);
    r.result = result_at(i);
    r.null_step = null_at(i);
    r.terminated = term_at(i);
    return r;
  }

  // ---- column accessors (no Value copies) ----
  [[nodiscard]] Time time_at(std::size_t i) const noexcept { return time_[i]; }
  [[nodiscard]] Pid pid_at(std::size_t i) const noexcept {
    const std::uint32_t p = pid_[i];
    return Pid{static_cast<ProcKind>(p >> 31), static_cast<int>(p & 0x7FFFFFFFu)};
  }
  [[nodiscard]] OpKind op_at(std::size_t i) const noexcept {
    return static_cast<OpKind>(opflags_[i] & kOpMask);
  }
  [[nodiscard]] RegAddr addr_at(std::size_t i) const noexcept {
    return RegAddr::from_id(addr_[i]);
  }
  [[nodiscard]] const Value& value_at(std::size_t i) const noexcept {
    return value_[i] == kNilIdx ? kNil : pool_[value_[i]];
  }
  [[nodiscard]] const Value& result_at(std::size_t i) const noexcept {
    return result_[i] == kNilIdx ? kNil : pool_[result_[i]];
  }
  [[nodiscard]] bool null_at(std::size_t i) const noexcept {
    return (opflags_[i] & kNullBit) != 0;
  }
  [[nodiscard]] bool term_at(std::size_t i) const noexcept {
    return (opflags_[i] & kTermBit) != 0;
  }

  /// Input iterator yielding materialized StepRecord values.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = StepRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = StepRecord;

    const_iterator() = default;
    const_iterator(const Trace* t, std::size_t i) noexcept : t_(t), i_(i) {}
    [[nodiscard]] StepRecord operator*() const { return (*t_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) noexcept {
      return a.i_ == b.i_;
    }

   private:
    const Trace* t_ = nullptr;
    std::size_t i_ = 0;
  };
  [[nodiscard]] const_iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] const_iterator end() const noexcept { return {this, size()}; }

 private:
  static constexpr std::uint32_t kNilIdx = 0xFFFFFFFFu;
  static constexpr std::uint8_t kOpMask = 0x07;
  static constexpr std::uint8_t kNullBit = 0x40;
  static constexpr std::uint8_t kTermBit = 0x80;

  [[nodiscard]] static std::uint32_t pack_pid(Pid pid) noexcept {
    return (static_cast<std::uint32_t>(pid.kind) << 31) |
           (static_cast<std::uint32_t>(pid.index) & 0x7FFFFFFFu);
  }
  [[nodiscard]] std::uint32_t pool(const Value& v) {
    if (v.is_nil()) return kNilIdx;
    pool_.push_back(v);
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  std::vector<Time> time_;
  std::vector<std::uint32_t> pid_;      ///< kind in bit 31, index below
  std::vector<std::uint8_t> opflags_;   ///< op in bits 0..2, flags in 6..7
  std::vector<RegId> addr_;             ///< kInvalidRegId for register-less ops
  std::vector<std::uint32_t> value_;    ///< pool index, kNilIdx for Nil
  std::vector<std::uint32_t> result_;   ///< pool index, kNilIdx for Nil
  std::vector<Value> pool_;             ///< non-Nil values, in append order
};

/// Maximum over time of |{participating C-processes not yet decided}|.
[[nodiscard]] int max_concurrency(const Trace& trace);

/// True iff the trace is k-concurrent in the paper's sense.
[[nodiscard]] bool is_k_concurrent(const Trace& trace, int k);

/// Number of (non-null) steps taken by `pid` in the trace.
[[nodiscard]] int steps_of(const Trace& trace, Pid pid);

/// Renders at most `limit` records, one per line (for demos / debugging).
[[nodiscard]] std::string format_trace(const Trace& trace, std::size_t limit = 100);

/// Order-dependent deterministic hash of a trace: folds every field of every
/// record, keying registers by their canonical-NAME hash (not the RegId), so
/// the result is stable across processes, interning orders and thread
/// counts. This is the identity record/replay (sim/replay.hpp) is checked
/// against: replaying a tape must reproduce this hash bit-for-bit.
[[nodiscard]] std::uint64_t trace_hash(const Trace& trace);

}  // namespace efd
