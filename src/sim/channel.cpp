#include "sim/channel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/memory.hpp"  // cell_content_hash

namespace efd {
namespace {

std::uint64_t pack_pair(int sender, int slot) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender)) << 32) |
         static_cast<std::uint32_t>(slot);
}

}  // namespace

const char* link_fault_token(LinkFaultKind kind) noexcept {
  switch (kind) {
    case LinkFaultKind::kDrop: return "drop";
    case LinkFaultKind::kDup: return "dup";
    case LinkFaultKind::kDelay: return "delay";
    case LinkFaultKind::kReorder: return "reorder";
    case LinkFaultKind::kSever: return "sever";
    case LinkFaultKind::kHeal: return "heal";
  }
  return "?";
}

bool parse_link_fault_token(const std::string& tok, LinkFaultKind& out) noexcept {
  if (tok == "drop") out = LinkFaultKind::kDrop;
  else if (tok == "dup") out = LinkFaultKind::kDup;
  else if (tok == "delay") out = LinkFaultKind::kDelay;
  else if (tok == "reorder") out = LinkFaultKind::kReorder;
  else if (tok == "sever") out = LinkFaultKind::kSever;
  else if (tok == "heal") out = LinkFaultKind::kHeal;
  else return false;
  return true;
}

ChannelFabric::ChannelFabric(int num_senders, std::vector<RegAddr> mailboxes,
                             std::vector<RegAddr> links, bool eager)
    : num_senders_(num_senders), eager_(eager) {
  if (num_senders < 0) throw std::invalid_argument("ChannelFabric: negative sender count");
  mailboxes_.reserve(mailboxes.size());
  for (std::size_t j = 0; j < mailboxes.size(); ++j) {
    const RegAddr addr = mailboxes[j];
    if (!mbox_slot_.emplace(addr.id(), static_cast<int>(j)).second) {
      throw std::invalid_argument("ChannelFabric: duplicate mailbox " + addr.name());
    }
    Mailbox m;
    m.addr = addr;
    m.name_hash = addr.name_hash();
    mailboxes_.push_back(std::move(m));
  }
  if (eager_ && !links.empty()) {
    throw std::invalid_argument("ChannelFabric: eager fabrics have no links");
  }
  if (!eager_ && links.size() != mailboxes_.size() * static_cast<std::size_t>(num_senders_)) {
    throw std::invalid_argument("ChannelFabric: need one link per (sender, mailbox)");
  }
  links_.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    const RegAddr addr = links[i];
    if (!link_slot_.emplace(addr.id(), static_cast<int>(i)).second) {
      throw std::invalid_argument("ChannelFabric: duplicate link " + addr.name());
    }
    Link l;
    l.addr = addr;
    // Link order is sender-major: link i serves (sender i / m, mailbox i % m).
    l.mbox_slot = static_cast<int>(i % mailboxes_.size());
    links_.push_back(std::move(l));
  }
}

ChannelFabric::Mailbox& ChannelFabric::mbox_at(RegAddr addr) {
  const auto it = mbox_slot_.find(addr.id());
  if (it == mbox_slot_.end()) {
    throw std::out_of_range("ChannelFabric: unknown mailbox " + addr.name());
  }
  return mailboxes_[static_cast<std::size_t>(it->second)];
}

const ChannelFabric::Mailbox& ChannelFabric::mbox_at(RegAddr addr) const {
  const auto it = mbox_slot_.find(addr.id());
  if (it == mbox_slot_.end()) {
    throw std::out_of_range("ChannelFabric: unknown mailbox " + addr.name());
  }
  return mailboxes_[static_cast<std::size_t>(it->second)];
}

void ChannelFabric::rehash(Mailbox& m) {
  if (m.touched) hash_acc_ -= m.term;  // not touched => term == 0 already
  m.touched = true;
  const Value as_cell(m.pending.data(), m.pending.data() + m.pending.size());
  m.term = cell_content_hash(m.name_hash, as_cell.hash());
  hash_acc_ += m.term;
}

void ChannelFabric::send(Pid sender, RegAddr mbox, const Value& msg) {
  if (eager_) {
    Mailbox& m = mbox_at(mbox);
    if (!lossy_.empty() && sender.is_c()) {
      const std::uint64_t key = pack_pair(sender.index, mbox_slot_.at(m.addr.id()));
      if (std::find(lossy_.begin(), lossy_.end(), key) != lossy_.end()) {
        ++fault_counters_.lost_sends;  // statically lossy: nothing mutates
        return;
      }
    }
    m.pending.push_back(msg);
    rehash(m);
    return;
  }
  if (!sender.is_c() || sender.index < 0 || sender.index >= num_senders_) {
    throw std::logic_error("ChannelFabric: sender " + sender.to_string() +
                           " has no outgoing links");
  }
  Mailbox& m = mbox_at(mbox);  // validates the destination
  const int slot = mbox_slot_.at(m.addr.id());
  if (!lossy_.empty() &&
      std::find(lossy_.begin(), lossy_.end(), pack_pair(sender.index, slot)) != lossy_.end()) {
    ++fault_counters_.lost_sends;
    return;
  }
  Link& l = links_[static_cast<std::size_t>(sender.index) * mailboxes_.size() +
                   static_cast<std::size_t>(slot)];
  l.in_flight.push_back(msg);
  ++total_in_flight_;
}

Value ChannelFabric::recv(RegAddr mbox) {
  Mailbox& m = mbox_at(mbox);
  if (m.pending.empty()) {
    rehash(m);  // empty recv still marks the mailbox touched
    return Value{};
  }
  Value head = std::move(m.pending.front());
  m.pending.erase(m.pending.begin());
  rehash(m);
  return head;
}

Value ChannelFabric::deliver(RegAddr link) {
  if (eager_) throw std::logic_error("ChannelFabric: eager fabrics deliver inside send");
  const auto it = link_slot_.find(link.id());
  if (it == link_slot_.end()) {
    throw std::out_of_range("ChannelFabric: unknown link " + link.name());
  }
  Link& l = links_[static_cast<std::size_t>(it->second)];
  if (!link_faults_.empty() && link_faults_.count(it->second) != 0) {
    return faulty_deliver(l, it->second);
  }
  if (l.in_flight.empty()) return Value{};
  Value msg = std::move(l.in_flight.front());
  l.in_flight.pop_front();
  --total_in_flight_;
  Mailbox& m = mailboxes_[static_cast<std::size_t>(l.mbox_slot)];
  m.pending.push_back(msg);
  rehash(m);
  return msg;
}

Value ChannelFabric::faulty_deliver(Link& l, int slot) {
  // Charge precedence is part of the replay contract (see header): severed
  // holds everything; an empty channel consumes nothing; a delay charge is
  // consumed by the STEP (the head stays in flight); a reorder charge picks
  // the pop position; drop and dup charges are consumed by the popped
  // MESSAGE, drop before dup.
  LinkFaultModel& f = link_faults_[slot];
  const auto reclaim = [this, slot, &f] {
    if (f.idle()) link_faults_.erase(slot);
  };
  if (f.severed) {
    ++fault_counters_.held_severed;
    return Value{};
  }
  if (l.in_flight.empty()) {
    reclaim();
    return Value{};
  }
  if (f.delay_next > 0) {
    --f.delay_next;
    ++fault_counters_.delayed;
    reclaim();
    return Value{};
  }
  std::size_t pick = 0;
  if (f.reorder_window > 0) {
    pick = std::min(static_cast<std::size_t>(f.reorder_window), l.in_flight.size() - 1);
    --f.reorder_window;
    if (pick > 0) ++fault_counters_.reordered;
  }
  Value msg = std::move(l.in_flight[pick]);
  l.in_flight.erase(l.in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
  --total_in_flight_;
  if (f.drop_next > 0) {
    --f.drop_next;
    ++fault_counters_.dropped;
    reclaim();
    return Value{};  // the message is gone; the step reads as an empty deliver
  }
  if (f.dup_next > 0) {
    --f.dup_next;
    ++fault_counters_.duplicated;
    l.in_flight.push_back(msg);
    ++total_in_flight_;
  }
  reclaim();
  Mailbox& m = mailboxes_[static_cast<std::size_t>(l.mbox_slot)];
  m.pending.push_back(msg);
  rehash(m);
  return msg;
}

void ChannelFabric::charge_fault(RegAddr link, LinkFaultKind kind, int amount) {
  if (eager_) {
    throw std::logic_error("ChannelFabric: eager fabrics have no links to fault");
  }
  const auto it = link_slot_.find(link.id());
  if (it == link_slot_.end()) {
    throw std::out_of_range("ChannelFabric: unknown link " + link.name());
  }
  if (amount < 0) throw std::invalid_argument("ChannelFabric: negative fault charge");
  LinkFaultModel& f = link_faults_[it->second];
  switch (kind) {
    case LinkFaultKind::kDrop: f.drop_next += amount; break;
    case LinkFaultKind::kDup: f.dup_next += amount; break;
    case LinkFaultKind::kDelay: f.delay_next += amount; break;
    case LinkFaultKind::kReorder: f.reorder_window += amount; break;
    case LinkFaultKind::kSever: f.severed = true; break;
    case LinkFaultKind::kHeal: f.severed = false; break;
  }
  if (f.idle()) link_faults_.erase(it->second);
}

void ChannelFabric::set_lossy(int sender, RegAddr mbox, bool lossy) {
  const Mailbox& m = mbox_at(mbox);  // validates the destination
  const std::uint64_t key = pack_pair(sender, mbox_slot_.at(m.addr.id()));
  const auto it = std::find(lossy_.begin(), lossy_.end(), key);
  if (lossy && it == lossy_.end()) lossy_.push_back(key);
  if (!lossy && it != lossy_.end()) lossy_.erase(it);
}

LinkFaultModel ChannelFabric::link_faults(RegAddr link) const {
  const auto it = link_slot_.find(link.id());
  if (it == link_slot_.end()) {
    throw std::out_of_range("ChannelFabric: unknown link " + link.name());
  }
  const auto fit = link_faults_.find(it->second);
  return fit == link_faults_.end() ? LinkFaultModel{} : fit->second;
}

Value ChannelFabric::peek(RegAddr mbox) const {
  const Mailbox& m = mbox_at(mbox);
  return m.pending.empty() ? Value{} : m.pending.front();
}

bool ChannelFabric::state(RegAddr mbox, Value& out) const {
  const Mailbox& m = mbox_at(mbox);
  out = m.touched ? Value(m.pending.data(), m.pending.data() + m.pending.size()) : Value{};
  return m.touched;
}

void ChannelFabric::restore(RegAddr mbox, const Value& prev, bool prev_present) {
  Mailbox& m = mbox_at(mbox);
  if (m.touched) hash_acc_ -= m.term;
  m.pending.clear();
  m.term = 0;
  m.touched = prev_present;
  if (!prev_present) return;
  if (prev.is_vec()) prev.unpack_vec(m.pending);  // a Nil prev restores an empty queue
  const Value as_cell(m.pending.data(), m.pending.data() + m.pending.size());
  m.term = cell_content_hash(m.name_hash, as_cell.hash());
  hash_acc_ += m.term;
}

std::size_t ChannelFabric::in_flight(RegAddr link) const {
  const auto it = link_slot_.find(link.id());
  if (it == link_slot_.end()) {
    throw std::out_of_range("ChannelFabric: unknown link " + link.name());
  }
  return links_[static_cast<std::size_t>(it->second)].in_flight.size();
}

}  // namespace efd
