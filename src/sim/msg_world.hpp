// Message-passing worlds: the MsgSubstrate backend and its builders.
//
// Conventions (shared with the differential tests and the MP scenarios):
//  * mailbox j is addressed "mb[j]" — process p_{j+1}'s inbox;
//  * the (sender i, mailbox j) link is addressed "ch[i][j]";
//  * in daemon mode, link (i, j)'s delivery daemon is S-process
//    q_{mp_link_s_index(m, i, j) + 1} = q_{i*m + j + 1}: a delivery is just
//    another schedulable step, recorded on tapes as that daemon's pid, so
//    RecordingScheduler/ReplayScheduler and crash points work unchanged.
//    Crashing a daemon severs its link permanently — a PARTITION is nothing
//    but a set of daemon crashes in the ordinary FailurePattern, and
//    FaultPlan storms/triggers reach them with no new machinery.
//  * eager mode has no links and no daemons: a send lands on the mailbox
//    instantly. Exhaustive exploration runs eager mode (the sends-instant
//    subfamily; see DESIGN.md 4h), record/replay and fuzzing drive both.
//
// The SAME coroutine bodies (ctx.send / ctx.recv) run against ShmSubstrate
// (registers-as-mailboxes) and MsgSubstrate: that is the cross-backend
// differential axis tests/test_substrate.cpp sweeps.
#pragma once

#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/substrate.hpp"
#include "sim/world.hpp"

namespace efd {

/// Mailbox j's address, canonical name "mb[j]".
[[nodiscard]] RegAddr mp_mailbox(int j);
/// Link (sender i, mailbox j)'s address, canonical name "ch[i][j]".
[[nodiscard]] RegAddr mp_link(int sender, int mbox);
/// S-index of link (sender, mbox)'s delivery daemon in an m-mailbox world.
[[nodiscard]] constexpr int mp_link_s_index(int m, int sender, int mbox) noexcept {
  return sender * m + mbox;
}

/// The native message-passing substrate: a ChannelFabric behind the
/// Substrate contract.
class MsgSubstrate final : public Substrate {
 public:
  explicit MsgSubstrate(ChannelFabric fabric) : fabric_(std::move(fabric)) {}

  [[nodiscard]] SubstrateKind kind() const noexcept override { return SubstrateKind::kMsg; }
  [[nodiscard]] const char* name() const noexcept override { return "msg"; }

  Value apply_send(RegisterFile&, Pid sender, RegAddr mbox, const Value& msg) override {
    fabric_.send(sender, mbox, msg);
    return Value{};
  }
  Value apply_recv(RegisterFile&, RegAddr mbox) override { return fabric_.recv(mbox); }
  Value apply_deliver(RegisterFile&, RegAddr link) override { return fabric_.deliver(link); }

  [[nodiscard]] Value peek_recv(const RegisterFile&, RegAddr mbox) const override {
    return fabric_.peek(mbox);
  }
  [[nodiscard]] bool cell_state(const RegisterFile&, RegAddr mbox, Value& out) const override {
    return fabric_.state(mbox, out);
  }
  void restore_cell(RegisterFile&, RegAddr mbox, const Value& prev,
                    bool prev_present) override {
    fabric_.restore(mbox, prev, prev_present);
  }
  [[nodiscard]] std::uint64_t hash_acc() const noexcept override { return fabric_.hash_acc(); }

  void apply_link_fault(RegAddr link, LinkFaultKind kind, int amount) override {
    fabric_.charge_fault(link, kind, amount);
  }
  [[nodiscard]] LinkFaultCounters link_fault_counters() const noexcept override {
    return fabric_.fault_counters();
  }

  [[nodiscard]] const ChannelFabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] ChannelFabric& fabric() noexcept { return fabric_; }

 private:
  ChannelFabric fabric_;
};

/// The world's MsgSubstrate, or nullptr when another backend is installed.
/// (Fault-charging helpers and the lossy-pair tests reach the fabric here.)
[[nodiscard]] MsgSubstrate* msg_substrate(World& w);

/// The standard mailbox set mb[0..m-1].
[[nodiscard]] std::vector<RegAddr> mp_mailboxes(int m);

/// Installs an EAGER MsgSubstrate (n senders, m mailboxes, no links) on `w`.
void install_msg_eager(World& w, int n, int m);

/// Installs the registers-as-mailboxes ShmSubstrate explicitly (rather than
/// relying on World's lazy default), so both differential backends follow
/// the same code path from the first step.
void install_shm_mailboxes(World& w);

/// A delivery daemon body for one link: an endless loop of deliver steps.
/// Spawn it as S-process mp_link_s_index(m, sender, mbox).
[[nodiscard]] ProcBody make_link_daemon(RegAddr link);

/// Daemon-mode MP world: installs a MsgSubstrate with per-link in-flight
/// channels and spawns the n*m link daemons at S-indices
/// [s_base, s_base + n*m). The pattern must cover them; S-indices below
/// s_base are free for scenario S-processes (e.g. consensus servers — put
/// them FIRST so a lowest-correct-index leader detector elects a server,
/// not a daemon).
[[nodiscard]] World make_mp_world(int n, int m, FailurePattern pattern, HistoryPtr history,
                                  int s_base = 0);

/// Severs link (sender, mbox) from time `t` on: crashes its daemon.
void sever_link(FailurePattern& pattern, int m, int sender, int mbox, Time t, int s_base = 0);

/// A partition at time `t` between `group` and its complement in an n-process,
/// m-mailbox world: every cross-group link's daemon crashes at t (messages
/// already delivered stay; in-flight ones on severed links are lost). The
/// returned pattern covers n*m + extra_s S-processes, all others correct.
[[nodiscard]] FailurePattern mp_partition(int n, int m, const std::vector<int>& group,
                                          Time t, int extra_s = 0);

}  // namespace efd
