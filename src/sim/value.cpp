#include "sim/value.hpp"

#include <sstream>

namespace efd {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

int kind_rank(const Value& v) noexcept {
  if (v.is_nil()) return 0;
  if (v.is_int()) return 1;
  if (v.is_str()) return 2;
  return 3;
}

/// True iff `v` packs into one int16 lane of an inline vector.
bool lane_packable(const Value& v, std::int16_t& lane) noexcept {
  if (v.is_nil()) {
    lane = -32768;  // Value::kNilLane
    return true;
  }
  if (!v.is_int()) return false;
  const std::int64_t x = v.int_or(0);
  if (x < -32767 || x > 32767) return false;
  lane = static_cast<std::int16_t>(x);
  return true;
}

}  // namespace

Value::Value(std::string_view v) {
  if (v.size() <= kMaxInlineStr) {
    tag_ = Tag::kStrInline;
    len_ = static_cast<std::uint8_t>(v.size());
    std::memcpy(rep_.str, v.data(), v.size());
  } else {
    tag_ = Tag::kStrHeap;
    len_ = 0;
    new (&rep_.sp) std::shared_ptr<const std::string>(std::make_shared<const std::string>(v));
  }
}

Value::Value(ValueVec v) {
  if (v.size() <= kMaxInlineVec) {
    std::int16_t lanes[kMaxInlineVec];
    bool ok = true;
    for (std::size_t i = 0; i < v.size() && ok; ++i) ok = lane_packable(v[i], lanes[i]);
    if (ok) {
      tag_ = Tag::kVecInline;
      len_ = static_cast<std::uint8_t>(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) rep_.iv[i] = lanes[i];
      return;
    }
  }
  tag_ = Tag::kVecHeap;
  len_ = 0;
  new (&rep_.vp) std::shared_ptr<const ValueVec>(std::make_shared<const ValueVec>(std::move(v)));
}

Value::Value(const Value* first, const Value* last) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n <= kMaxInlineVec) {
    std::int16_t lanes[kMaxInlineVec];
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) ok = lane_packable(first[i], lanes[i]);
    if (ok) {
      tag_ = Tag::kVecInline;
      len_ = static_cast<std::uint8_t>(n);
      for (std::size_t i = 0; i < n; ++i) rep_.iv[i] = lanes[i];
      return;
    }
  }
  tag_ = Tag::kVecHeap;
  len_ = 0;
  new (&rep_.vp) std::shared_ptr<const ValueVec>(std::make_shared<const ValueVec>(first, last));
}

ValueVec Value::as_vec() const {
  if (tag_ == Tag::kVecHeap) return *rep_.vp;
  if (tag_ != Tag::kVecInline) throw std::bad_variant_access{};
  ValueVec out;
  out.reserve(len_);
  for (std::size_t i = 0; i < len_; ++i) out.push_back(at(i));
  return out;
}

void Value::unpack_vec(ValueVec& out) const {
  out.clear();
  if (tag_ == Tag::kVecHeap) {
    out.assign(rep_.vp->begin(), rep_.vp->end());
    return;
  }
  if (tag_ != Tag::kVecInline) throw std::bad_variant_access{};
  out.reserve(len_);
  for (std::size_t i = 0; i < len_; ++i) out.push_back(at(i));
}

bool operator==(const Value& a, const Value& b) noexcept {
  return (a <=> b) == std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const Value& a, const Value& b) noexcept {
  if (const int ra = kind_rank(a), rb = kind_rank(b); ra != rb) return ra <=> rb;
  if (a.is_nil()) return std::strong_ordering::equal;
  if (a.is_int()) return a.int_or(0) <=> b.int_or(0);
  if (a.is_str()) return a.as_str().compare(b.as_str()) <=> 0;
  if (a.tag_ == Value::Tag::kVecHeap && b.tag_ == Value::Tag::kVecHeap) {
    // Reference fast path: no per-element Value copies (refcount traffic).
    const ValueVec& va = *a.rep_.vp;
    const ValueVec& vb = *b.rep_.vp;
    const std::size_t n = std::min(va.size(), vb.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (auto c = va[i] <=> vb[i]; c != std::strong_ordering::equal) return c;
    }
    return va.size() <=> vb.size();
  }
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 0; i < n; ++i) {
    const Value ea = a.at(i);
    const Value eb = b.at(i);
    if (auto c = ea <=> eb; c != std::strong_ordering::equal) return c;
  }
  return na <=> nb;
}

std::string Value::to_string() const {
  if (is_nil()) return "nil";
  if (is_int()) return std::to_string(rep_.i);
  if (is_str()) return "\"" + std::string(as_str()) + "\"";
  std::ostringstream os;
  os << '[';
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) os << ", ";
    os << at(i).to_string();
  }
  os << ']';
  return os.str();
}

// Structural: an inline vector/string hashes exactly like its heap twin
// (same canonical byte encoding as the pre-inlining variant representation).
void Value::hash_into(std::uint64_t& h) const noexcept {
  switch (tag_) {
    case Tag::kNil:
      hash_bytes(h, "N", 1);
      break;
    case Tag::kInt:
      hash_bytes(h, "I", 1);
      hash_bytes(h, &rep_.i, sizeof(rep_.i));
      break;
    case Tag::kStrInline:
    case Tag::kStrHeap: {
      const std::string_view s = as_str();
      hash_bytes(h, "S", 1);
      hash_bytes(h, s.data(), s.size());
      break;
    }
    case Tag::kVecInline:
      hash_bytes(h, "V", 1);
      for (std::size_t i = 0; i < len_; ++i) {
        if (rep_.iv[i] == kNilLane) {
          hash_bytes(h, "N", 1);
        } else {
          const std::int64_t x = rep_.iv[i];
          hash_bytes(h, "I", 1);
          hash_bytes(h, &x, sizeof(x));
        }
      }
      hash_bytes(h, "]", 1);
      break;
    case Tag::kVecHeap:
      hash_bytes(h, "V", 1);
      for (const Value& e : *rep_.vp) e.hash_into(h);
      hash_bytes(h, "]", 1);
      break;
  }
}

std::uint64_t Value::hash() const noexcept {
  std::uint64_t h = kFnvOffset;
  hash_into(h);
  return h;
}

}  // namespace efd
