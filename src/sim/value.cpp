#include "sim/value.hpp"

#include <sstream>

namespace efd {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void hash_value(std::uint64_t& h, const Value& v) noexcept {
  if (v.is_nil()) {
    hash_bytes(h, "N", 1);
  } else if (v.is_int()) {
    const std::int64_t x = v.as_int();
    hash_bytes(h, "I", 1);
    hash_bytes(h, &x, sizeof(x));
  } else if (v.is_str()) {
    const auto& s = v.as_str();
    hash_bytes(h, "S", 1);
    hash_bytes(h, s.data(), s.size());
  } else {
    hash_bytes(h, "V", 1);
    for (const auto& e : v.as_vec()) hash_value(h, e);
    hash_bytes(h, "]", 1);
  }
}

int kind_rank(const Value& v) noexcept {
  if (v.is_nil()) return 0;
  if (v.is_int()) return 1;
  if (v.is_str()) return 2;
  return 3;
}

}  // namespace

Value Value::at(std::size_t i) const noexcept {
  if (!is_vec()) return {};
  const auto& v = as_vec();
  return i < v.size() ? v[i] : Value{};
}

std::size_t Value::size() const noexcept { return is_vec() ? as_vec().size() : 0; }

bool operator==(const Value& a, const Value& b) noexcept {
  return (a <=> b) == std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const Value& a, const Value& b) noexcept {
  if (const int ra = kind_rank(a), rb = kind_rank(b); ra != rb) return ra <=> rb;
  if (a.is_nil()) return std::strong_ordering::equal;
  if (a.is_int()) return a.as_int() <=> b.as_int();
  if (a.is_str()) return a.as_str().compare(b.as_str()) <=> 0;
  const auto& va = a.as_vec();
  const auto& vb = b.as_vec();
  const std::size_t n = std::min(va.size(), vb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (auto c = va[i] <=> vb[i]; c != std::strong_ordering::equal) return c;
  }
  return va.size() <=> vb.size();
}

std::string Value::to_string() const {
  if (is_nil()) return "nil";
  if (is_int()) return std::to_string(as_int());
  if (is_str()) return "\"" + as_str() + "\"";
  std::ostringstream os;
  os << '[';
  const auto& v = as_vec();
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << v[i].to_string();
  }
  os << ']';
  return os.str();
}

std::uint64_t Value::hash() const noexcept {
  std::uint64_t h = kFnvOffset;
  hash_value(h, *this);
  return h;
}

}  // namespace efd
