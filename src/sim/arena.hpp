// Arena-pooled coroutine frame allocation.
//
// Every Co<T> coroutine frame used to come from the global heap: one
// operator-new per spawn/respawn and one per subroutine co_await (collect,
// double_collect, ...). The incremental explorer (core/solvability) respawns
// and fast-forwards millions of frames per sweep, so frame traffic dominated
// its allocation profile. This layer gives each World a FrameArena — a bump
// allocator with size-class freelists — and routes Co<T>::promise_type's
// operator new/delete through the thread-local "current arena":
//
//  * World::spawn/respawn/step/redeliver/pending_op install the world's
//    arena as current (RAII scope) before anything can allocate a frame;
//  * a frame allocated while an arena is current carries a small header
//    naming its owner, so operator delete needs NO thread-local state and a
//    frame may outlive any scope (it is freed back to its own arena);
//  * frames allocated with no current arena (bare coroutines in tests,
//    frames created outside any World entry point) fall back to the global
//    heap — the header's null owner routes the delete correspondingly.
//
// The steady state of an explore sweep is allocation-free: after the first
// few respawn/redeliver cycles every frame size has a warm freelist and
// respawns recycle frames without touching the heap.
//
// Thread model: a FrameArena is single-threaded — it belongs to one World,
// and a World is only ever stepped by one thread at a time (the parallel
// frontier gives every worker its own World). The current-arena pointer is
// thread-local, so concurrent Worlds on different threads never share
// freelists. The process-global kill switch (set_enabled / EFD_FRAME_ARENA=0)
// exists for A/B tests: pooled and heap runs must be bit-identical, which
// tests/test_alloc_pool.cpp checks property-style.
#pragma once

#include <cstddef>
#include <cstdint>

namespace efd {

/// Allocation telemetry of one arena (monotonic, never rewound).
struct ArenaStats {
  std::int64_t allocs = 0;      ///< frame allocations served by this arena
  std::int64_t frees = 0;       ///< frames returned to this arena
  std::int64_t pool_hits = 0;   ///< allocations served from a freelist
  std::int64_t chunk_bytes = 0; ///< bytes reserved from the global heap
  /// Frames currently live out of this arena.
  [[nodiscard]] std::int64_t live() const noexcept { return allocs - frees; }
};

/// Bump arena with size-class freelists for coroutine frames. One per World.
/// Heap-allocated and address-stable: freed frames find it via their header.
class FrameArena {
 public:
  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  /// Releases the chunks. All frames of this arena must already be freed
  /// (World destroys its coroutines before its arena).
  ~FrameArena();

  /// Allocates a `bytes`-sized block (without header; callers go through
  /// frame_alloc below, which adds the header).
  void* allocate(std::size_t bytes);
  /// Returns a block to its size-class freelist.
  void deallocate(void* p, std::size_t bytes) noexcept;

  [[nodiscard]] const ArenaStats& stats() const noexcept { return stats_; }

  /// The thread's current arena (frame allocations target it), or nullptr.
  [[nodiscard]] static FrameArena* current() noexcept;

  /// Process-global kill switch (default on; EFD_FRAME_ARENA=0 disables at
  /// startup). When off, frame_alloc ignores the current arena and uses the
  /// heap; already-live pooled frames still free correctly via their header.
  static void set_enabled(bool on) noexcept;
  [[nodiscard]] static bool enabled() noexcept;

  /// RAII: installs `a` as the thread's current arena, restoring the
  /// previous one on destruction (scopes nest).
  class Scope {
   public:
    explicit Scope(FrameArena* a) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FrameArena* prev_;
  };

 private:
  // Frames are grouped into 64-byte size classes; anything above the largest
  // class (a pathological frame) bypasses the arena entirely.
  static constexpr std::size_t kClassBytes = 64;
  static constexpr std::size_t kNumClasses = 64;  // up to 4 KiB frames
  static constexpr std::size_t kMaxPooled = kClassBytes * kNumClasses;

  struct FreeNode {
    FreeNode* next;
  };
  struct Chunk {
    Chunk* next;
    // chunk payload follows
  };

  [[nodiscard]] static std::size_t class_of(std::size_t bytes) noexcept {
    return (bytes + kClassBytes - 1) / kClassBytes;  // 1-based; 0 unused
  }

  void grow(std::size_t need);

  FreeNode* freelists_[kNumClasses + 1] = {};
  Chunk* chunks_ = nullptr;
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  std::size_t next_chunk_bytes_ = 16 * 1024;
  ArenaStats stats_;

  friend void* frame_alloc(std::size_t);
};

/// Allocates a coroutine frame: from the current arena when one is installed
/// (and pooling is enabled), else from the global heap. Always prefixes a
/// 16-byte owner header so frame_free is self-routing.
[[nodiscard]] void* frame_alloc(std::size_t bytes);
/// Frees a frame allocated by frame_alloc, wherever it came from.
void frame_free(void* p) noexcept;

}  // namespace efd
