// Immutable register datum for the EFD shared-memory simulator.
//
// Every shared register in the model holds one Value. Values form a small
// recursive algebra: Nil (the paper's bottom, written ⊥), 64-bit integers,
// strings, and vectors of Values. Values are ordered and hashable so they can
// be used as keys in deterministic explorations (corridor DFS, bivalence
// search) and as canonical encodings of simulated-process states.
//
// Representation (PR 6): a 24-byte hand-rolled tagged union. Small payloads
// are stored INLINE — no heap allocation, no shared_ptr refcount traffic:
//  * strings of at most 15 bytes live in the union's byte buffer;
//  * vectors of at most 8 elements, each Nil or an integer in
//    [-32767, 32767], are packed as int16 lanes (INT16_MIN encodes Nil).
// Everything else falls back to the original shared_ptr<const T> payloads.
// The encoding is CANONICAL: whether a value is inline is a pure function of
// its content, so structural equality, ordering, hash() and to_string() are
// representation-independent (and all comparisons/hashes are implemented
// structurally anyway — an inline vector compares equal to a heap vector
// with the same elements, which test_value's property sweep pins down).
//
// API note: as_vec() MATERIALIZES a ValueVec (inline vectors have no
// std::vector behind them), so it returns by value. Hot paths iterate with
// size()/at() instead; as_str() returns a string_view over either rep.
#pragma once

#include <compare>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <variant>  // std::bad_variant_access: kept as the wrong-kind accessor error
#include <vector>

namespace efd {

class Value;
using ValueVec = std::vector<Value>;

/// One immutable datum. Cheap to copy (small payloads are inline; large
/// vector/string payloads are shared).
class Value {
 public:
  /// Longest string stored inline (bytes).
  static constexpr std::size_t kMaxInlineStr = 15;
  /// Longest int-only vector stored inline (elements).
  static constexpr std::size_t kMaxInlineVec = 8;

  /// Nil — the paper's ⊥ (unwritten register / non-participating / undecided).
  constexpr Value() noexcept : tag_(Tag::kNil), len_(0) {}
  Value(std::int64_t v) noexcept : tag_(Tag::kInt), len_(0) {  // NOLINT(google-explicit-constructor)
    rep_.i = v;
  }
  Value(int v) noexcept : Value(static_cast<std::int64_t>(v)) {}   // NOLINT
  Value(bool v) noexcept : Value(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::string v) : Value(std::string_view(v)) {}             // NOLINT
  Value(const char* v) : Value(std::string_view(v)) {}             // NOLINT
  Value(std::string_view v);                                       // NOLINT
  Value(ValueVec v);                                               // NOLINT
  /// Vector value from a contiguous range, without requiring the caller to
  /// materialize a ValueVec first (inline-packable ranges never touch the
  /// heap; collect() builds from a frame-local buffer through this).
  Value(const Value* first, const Value* last);
  Value(std::initializer_list<Value> v) : Value(v.begin(), v.end()) {}

  Value(const Value& o) { copy_from(o); }
  Value(Value&& o) noexcept { move_from(o); }
  Value& operator=(const Value& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  ~Value() { destroy(); }

  [[nodiscard]] bool is_nil() const noexcept { return tag_ == Tag::kNil; }
  [[nodiscard]] bool is_int() const noexcept { return tag_ == Tag::kInt; }
  [[nodiscard]] bool is_str() const noexcept {
    return tag_ == Tag::kStrInline || tag_ == Tag::kStrHeap;
  }
  [[nodiscard]] bool is_vec() const noexcept {
    return tag_ == Tag::kVecInline || tag_ == Tag::kVecHeap;
  }

  /// Integer payload. Precondition: is_int(); throws std::bad_variant_access otherwise.
  [[nodiscard]] std::int64_t as_int() const {
    if (tag_ != Tag::kInt) throw std::bad_variant_access{};
    return rep_.i;
  }
  /// Integer payload or `dflt` when this Value is not an integer (e.g. Nil).
  [[nodiscard]] std::int64_t int_or(std::int64_t dflt) const noexcept {
    return tag_ == Tag::kInt ? rep_.i : dflt;
  }
  /// String payload as a view over either representation. Precondition:
  /// is_str(); throws std::bad_variant_access otherwise. The view is valid
  /// while this Value (or any sharing copy) is alive.
  [[nodiscard]] std::string_view as_str() const {
    if (tag_ == Tag::kStrInline) return {rep_.str, len_};
    if (tag_ == Tag::kStrHeap) return *rep_.sp;
    throw std::bad_variant_access{};
  }
  /// Vector payload, MATERIALIZED by value (inline vectors have no backing
  /// std::vector). Precondition: is_vec(). Hot paths use size()/at().
  [[nodiscard]] ValueVec as_vec() const;
  /// Copies the vector payload into `out` (cleared first), reusing its
  /// capacity: the allocation-free counterpart of as_vec() for hot paths
  /// that re-materialize vectors repeatedly (e.g. explorer respawn
  /// re-execution unpacking the same snapshot shape every backtrack).
  /// Precondition: is_vec(); throws std::bad_variant_access otherwise.
  void unpack_vec(ValueVec& out) const;

  /// Element access for vectors; Nil when out of range or not a vector.
  [[nodiscard]] Value at(std::size_t i) const noexcept {
    if (tag_ == Tag::kVecInline) {
      if (i >= len_) return {};
      const std::int16_t e = rep_.iv[i];
      return e == kNilLane ? Value{} : Value(static_cast<std::int64_t>(e));
    }
    if (tag_ == Tag::kVecHeap) {
      const ValueVec& v = *rep_.vp;
      return i < v.size() ? v[i] : Value{};
    }
    return {};
  }
  /// Vector size; 0 for non-vectors.
  [[nodiscard]] std::size_t size() const noexcept {
    if (tag_ == Tag::kVecInline) return len_;
    if (tag_ == Tag::kVecHeap) return rep_.vp->size();
    return 0;
  }

  /// Structural equality (deep for vectors, by content for strings).
  friend bool operator==(const Value& a, const Value& b) noexcept;
  /// Total order: Nil < Int < Str < Vec, lexicographic within a kind.
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) noexcept;

  /// Stable textual form, e.g. `[1, "x", nil]`. Used in traces and tests.
  [[nodiscard]] std::string to_string() const;

  /// Deterministic structural hash (FNV-1a over the canonical encoding;
  /// representation-independent: inline and heap forms hash identically).
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  enum class Tag : std::uint8_t { kNil, kInt, kStrInline, kStrHeap, kVecInline, kVecHeap };
  /// int16 lane value encoding a Nil element of an inline vector. Integers
  /// equal to it (INT16_MIN) force the heap representation instead.
  static constexpr std::int16_t kNilLane = -32768;

  union Rep {
    constexpr Rep() noexcept : i(0) {}
    ~Rep() noexcept {}  // managed by Value::destroy() via the tag
    std::int64_t i;
    char str[16];
    std::int16_t iv[8];
    std::shared_ptr<const std::string> sp;
    std::shared_ptr<const ValueVec> vp;
  };

  void destroy() noexcept {
    if (tag_ == Tag::kStrHeap) {
      rep_.sp.~shared_ptr();
    } else if (tag_ == Tag::kVecHeap) {
      rep_.vp.~shared_ptr();
    }
    tag_ = Tag::kNil;
    len_ = 0;
  }
  void copy_from(const Value& o) {
    tag_ = o.tag_;
    len_ = o.len_;
    switch (tag_) {
      case Tag::kStrHeap:
        new (&rep_.sp) std::shared_ptr<const std::string>(o.rep_.sp);
        break;
      case Tag::kVecHeap:
        new (&rep_.vp) std::shared_ptr<const ValueVec>(o.rep_.vp);
        break;
      default:
        std::memcpy(rep_.str, o.rep_.str, sizeof(rep_.str));
        break;
    }
  }
  void move_from(Value& o) noexcept {
    tag_ = o.tag_;
    len_ = o.len_;
    switch (tag_) {
      case Tag::kStrHeap:
        new (&rep_.sp) std::shared_ptr<const std::string>(std::move(o.rep_.sp));
        o.rep_.sp.~shared_ptr();
        break;
      case Tag::kVecHeap:
        new (&rep_.vp) std::shared_ptr<const ValueVec>(std::move(o.rep_.vp));
        o.rep_.vp.~shared_ptr();
        break;
      default:
        std::memcpy(rep_.str, o.rep_.str, sizeof(rep_.str));
        break;
    }
    o.tag_ = Tag::kNil;
    o.len_ = 0;
  }

  void hash_into(std::uint64_t& h) const noexcept;

  Tag tag_;
  std::uint8_t len_;  ///< inline payload length (string bytes / vector lanes)
  Rep rep_;
};

static_assert(sizeof(Value) == 24, "Value must stay a 24-byte tagged union");

/// The paper's ⊥.
inline const Value kNil{};

/// Convenience: build a vector Value from parts.
template <class... Ts>
Value vec(Ts&&... parts) {
  ValueVec v;
  v.reserve(sizeof...(parts));
  (v.emplace_back(std::forward<Ts>(parts)), ...);
  return Value(std::move(v));
}

}  // namespace efd

template <>
struct std::hash<efd::Value> {
  std::size_t operator()(const efd::Value& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};
