// Immutable register datum for the EFD shared-memory simulator.
//
// Every shared register in the model holds one Value. Values form a small
// recursive algebra: Nil (the paper's bottom, written ⊥), 64-bit integers,
// strings, and vectors of Values. Values are ordered and hashable so they can
// be used as keys in deterministic explorations (corridor DFS, bivalence
// search) and as canonical encodings of simulated-process states.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace efd {

class Value;
using ValueVec = std::vector<Value>;

/// One immutable datum. Cheap to copy (vector/string payloads are shared).
class Value {
 public:
  /// Nil — the paper's ⊥ (unwritten register / non-participating / undecided).
  Value() noexcept = default;
  Value(std::int64_t v) : rep_(v) {}                       // NOLINT(google-explicit-constructor)
  Value(int v) : rep_(static_cast<std::int64_t>(v)) {}     // NOLINT(google-explicit-constructor)
  Value(bool v) : rep_(static_cast<std::int64_t>(v)) {}    // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::make_shared<const std::string>(std::move(v))) {}  // NOLINT
  Value(const char* v) : Value(std::string(v)) {}          // NOLINT(google-explicit-constructor)
  Value(ValueVec v) : rep_(std::make_shared<const ValueVec>(std::move(v))) {}  // NOLINT
  Value(std::initializer_list<Value> v) : Value(ValueVec(v)) {}

  [[nodiscard]] bool is_nil() const noexcept { return std::holds_alternative<std::monostate>(rep_); }
  [[nodiscard]] bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(rep_); }
  [[nodiscard]] bool is_str() const noexcept {
    return std::holds_alternative<std::shared_ptr<const std::string>>(rep_);
  }
  [[nodiscard]] bool is_vec() const noexcept {
    return std::holds_alternative<std::shared_ptr<const ValueVec>>(rep_);
  }

  /// Integer payload. Precondition: is_int(); throws std::bad_variant_access otherwise.
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  /// Integer payload or `dflt` when this Value is not an integer (e.g. Nil).
  [[nodiscard]] std::int64_t int_or(std::int64_t dflt) const noexcept {
    return is_int() ? std::get<std::int64_t>(rep_) : dflt;
  }
  [[nodiscard]] const std::string& as_str() const {
    return *std::get<std::shared_ptr<const std::string>>(rep_);
  }
  [[nodiscard]] const ValueVec& as_vec() const {
    return *std::get<std::shared_ptr<const ValueVec>>(rep_);
  }

  /// Element access for vectors; Nil when out of range or not a vector.
  [[nodiscard]] Value at(std::size_t i) const noexcept;
  /// Vector size; 0 for non-vectors.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Structural equality (deep for vectors, by content for strings).
  friend bool operator==(const Value& a, const Value& b) noexcept;
  /// Total order: Nil < Int < Str < Vec, lexicographic within a kind.
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) noexcept;

  /// Stable textual form, e.g. `[1, "x", nil]`. Used in traces and tests.
  [[nodiscard]] std::string to_string() const;

  /// Deterministic structural hash (FNV-1a over the canonical encoding).
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  std::variant<std::monostate, std::int64_t, std::shared_ptr<const std::string>,
               std::shared_ptr<const ValueVec>>
      rep_;
};

/// The paper's ⊥.
inline const Value kNil{};

/// Convenience: build a vector Value from parts.
template <class... Ts>
Value vec(Ts&&... parts) {
  ValueVec v;
  v.reserve(sizeof...(parts));
  (v.emplace_back(std::forward<Ts>(parts)), ...);
  return Value(std::move(v));
}

}  // namespace efd

template <>
struct std::hash<efd::Value> {
  std::size_t operator()(const efd::Value& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};
