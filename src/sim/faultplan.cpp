#include "sim/faultplan.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "sim/world.hpp"

namespace efd {
namespace {

// splitmix64: the same generator family the detectors use for seeded noise.
struct Rng {
  std::uint64_t s;

  std::uint64_t next() {
    std::uint64_t z = (s += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n); 0 when n == 0.
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

std::optional<Pid> parse_pid_token(const std::string& tok) {
  if (tok.size() < 2 || (tok[0] != 'p' && tok[0] != 'q')) return std::nullopt;
  int idx = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
    idx = idx * 10 + (tok[i] - '0');
  }
  if (idx < 1) return std::nullopt;
  return tok[0] == 'p' ? cpid(idx - 1) : spid(idx - 1);
}

const char* op_token(OpKind op) { return op == OpKind::kRead ? "read" : "write"; }

[[noreturn]] void plan_fail(const std::string& what) {
  throw std::invalid_argument("FaultPlan::parse: " + what);
}

}  // namespace

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "plan-v1";
  if (fd.kind != FdFaultKind::kNone) {
    os << "; fd " << efd::to_string(fd.kind) << ' ' << fd.gst << ' ' << fd.param;
  }
  for (const auto& c : storm) os << "; storm " << c.step_index << ' ' << c.s_index;
  for (const auto& t : triggers) {
    os << "; trig " << t.reg_prefix << ' ' << op_token(t.op) << ' ' << t.delay << ' '
       << t.occurrence;
  }
  for (const auto& b : bursts) {
    os << "; burst " << b.start_step << ' ' << b.length << ' ' << b.victim.to_string();
  }
  for (const auto& l : links) {
    os << "; link " << link_fault_token(l.kind) << ' ' << l.step << ' ' << l.from << ' '
       << l.to << ' ' << l.amount;
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    std::istringstream seg(text.substr(pos, semi - pos));
    pos = semi + 1;
    std::string key;
    if (!(seg >> key)) {
      if (first) plan_fail("empty plan text");
      plan_fail("empty segment");
    }
    if (first) {
      if (key != "plan-v1") plan_fail("missing 'plan-v1' header, got '" + key + "'");
      std::string extra;
      if (seg >> extra) plan_fail("trailing token '" + extra + "' after header");
      first = false;
      if (pos > text.size()) break;
      continue;
    }
    if (key == "fd") {
      std::string kind;
      if (!(seg >> kind >> plan.fd.gst >> plan.fd.param) || plan.fd.gst < 0 ||
          plan.fd.param < 1) {
        plan_fail("fd: want '<kind> <gst> <param>'");
      }
      plan.fd.kind = fd_fault_kind_from(kind);  // throws on unknown kind
      if (plan.fd.kind == FdFaultKind::kNone) plan_fail("fd: kind 'none' is the default; drop the segment");
    } else if (key == "storm") {
      CrashPoint c;
      if (!(seg >> c.step_index >> c.s_index) || c.step_index < 0 || c.s_index < 0) {
        plan_fail("storm: want '<step> <qi>' (both >= 0)");
      }
      plan.storm.push_back(c);
    } else if (key == "trig") {
      CrashTrigger t;
      std::string op;
      if (!(seg >> t.reg_prefix >> op >> t.delay >> t.occurrence) || t.delay < 1 ||
          t.occurrence < 1) {
        plan_fail("trig: want '<prefix> <op> <delay>=1.. <occurrence>=1..'");
      }
      if (op == "read") {
        t.op = OpKind::kRead;
      } else if (op == "write") {
        t.op = OpKind::kWrite;
      } else {
        plan_fail("trig: op must be 'read' or 'write', got '" + op + "'");
      }
      plan.triggers.push_back(std::move(t));
    } else if (key == "burst") {
      StarvationBurst b;
      std::string victim;
      if (!(seg >> b.start_step >> b.length >> victim) || b.start_step < 0 || b.length < 1) {
        plan_fail("burst: want '<start>=0.. <len>=1.. <pid>'");
      }
      const auto pid = parse_pid_token(victim);
      if (!pid) plan_fail("burst: bad pid token '" + victim + "'");
      b.victim = *pid;
      plan.bursts.push_back(b);
    } else if (key == "link") {
      LinkAction l;
      std::string kind;
      if (!(seg >> kind >> l.step >> l.from >> l.to >> l.amount) || l.step < 0 || l.from < 0 ||
          l.to < 0 || l.amount < 1) {
        plan_fail("link: want '<kind> <step>=0.. <i>=0.. <j>=0.. <k>=1..'");
      }
      if (!parse_link_fault_token(kind, l.kind)) {
        plan_fail("link: unknown fault kind '" + kind + "'");
      }
      plan.links.push_back(l);
    } else {
      plan_fail("unknown segment '" + key + "'");
    }
    std::string extra;
    if (seg >> extra) plan_fail(key + ": trailing token '" + extra + "'");
    if (pos > text.size()) break;
  }
  if (first) plan_fail("empty plan text");
  return plan;
}

std::vector<LinkFaultPoint> FaultPlan::resolve_links() const {
  std::vector<LinkFaultPoint> out;
  out.reserve(links.size());
  for (const auto& l : links) {
    const std::string name =
        "ch[" + std::to_string(l.from) + "][" + std::to_string(l.to) + "]";
    if (l.kind == LinkFaultKind::kSever) {
      out.push_back(LinkFaultPoint{l.step, name, LinkFaultKind::kSever, 1});
      out.push_back(
          LinkFaultPoint{l.step + std::max(1, l.amount), name, LinkFaultKind::kHeal, 1});
    } else {
      out.push_back(LinkFaultPoint{l.step, name, l.kind, l.amount});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LinkFaultPoint& a, const LinkFaultPoint& b) {
                     return a.step_index < b.step_index;
                   });
  return out;
}

FaultPlan FaultPlan::sample(std::uint64_t seed, const Space& space) {
  Rng rng{seed * 0x2545F4914F6CDD1DULL + 0x632BE59BD9B4E019ULL};
  FaultPlan plan;
  const std::int64_t horizon = std::max<std::int64_t>(1, space.horizon);

  if (space.num_s > 0 && space.max_crashes > 0) {
    const auto n_crash = rng.below(static_cast<std::uint64_t>(space.max_crashes) + 1);
    for (std::uint64_t i = 0; i < n_crash; ++i) {
      if (!space.trigger_prefixes.empty() && rng.below(2) == 0) {
        CrashTrigger t;
        t.reg_prefix = space.trigger_prefixes[rng.below(space.trigger_prefixes.size())];
        t.op = rng.below(4) == 0 ? OpKind::kRead : OpKind::kWrite;
        t.delay = 1 + static_cast<int>(rng.below(8));
        t.occurrence = 1 + static_cast<int>(rng.below(3));
        plan.triggers.push_back(std::move(t));
      } else {
        plan.storm.push_back(CrashPoint{
            static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon))),
            static_cast<int>(rng.below(static_cast<std::uint64_t>(space.num_s)))});
      }
    }
  }

  if (space.allow_fd_faults && space.num_s > 0) {
    const Time max_gst = space.max_gst > 0 ? space.max_gst : std::max<Time>(1, horizon / 4);
    switch (rng.below(4)) {
      case 1: plan.fd.kind = FdFaultKind::kLying; break;
      case 2: plan.fd.kind = FdFaultKind::kOmissive; break;
      case 3: plan.fd.kind = FdFaultKind::kStuttering; break;
      default: break;  // kNone: honest advice keeps the baseline in the mix
    }
    if (plan.fd.kind != FdFaultKind::kNone) {
      plan.fd.gst = 1 + static_cast<Time>(rng.below(static_cast<std::uint64_t>(max_gst)));
      plan.fd.param = 2 + static_cast<int>(rng.below(14));
    }
  }

  const int population = space.num_c + space.num_s;
  if (space.max_bursts > 0 && population > 0) {
    const std::int64_t max_len =
        space.max_burst_len > 0 ? space.max_burst_len : std::max<std::int64_t>(1, horizon / 8);
    const auto n_burst = rng.below(static_cast<std::uint64_t>(space.max_bursts) + 1);
    for (std::uint64_t i = 0; i < n_burst; ++i) {
      StarvationBurst b;
      const auto v = static_cast<int>(rng.below(static_cast<std::uint64_t>(population)));
      b.victim = v < space.num_c ? cpid(v) : spid(v - space.num_c);
      b.start_step = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon)));
      b.length = 1 + static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(max_len)));
      plan.bursts.push_back(b);
    }
  }

  // Link actions last: non-MP spaces (grid dims zero) draw nothing here, so
  // their sampling streams are unchanged from earlier plan versions.
  if (space.max_link_actions > 0 && space.mp_senders > 0 && space.mp_mailboxes > 0) {
    const std::int64_t sever_max =
        space.max_sever_window > 0 ? space.max_sever_window : std::max<std::int64_t>(1, horizon / 8);
    const int charge_max = std::max(1, space.max_link_charge);
    const auto n_link = rng.below(static_cast<std::uint64_t>(space.max_link_actions) + 1);
    for (std::uint64_t i = 0; i < n_link; ++i) {
      LinkAction l;
      // Drop-weighted kind draw (3/7): loss is the fault class that actually
      // starves protocols — dup/delay/reorder/sever mostly perturb timing —
      // so a uniform draw wastes most of the campaign's action budget.
      switch (rng.below(7)) {
        case 1: l.kind = LinkFaultKind::kDup; break;
        case 2: l.kind = LinkFaultKind::kDelay; break;
        case 3: l.kind = LinkFaultKind::kReorder; break;
        case 4: l.kind = LinkFaultKind::kSever; break;
        default: l.kind = LinkFaultKind::kDrop; break;
      }
      l.step = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon)));
      l.from = static_cast<int>(rng.below(static_cast<std::uint64_t>(space.mp_senders)));
      l.to = static_cast<int>(rng.below(static_cast<std::uint64_t>(space.mp_mailboxes)));
      l.amount = l.kind == LinkFaultKind::kSever
                     ? 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(sever_max)))
                     : 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(charge_max)));
      plan.links.push_back(l);
    }
  }
  return plan;
}

namespace {

/// Clamps a plan into `space`: at most max_crashes S-kills (storm points
/// first, then triggers), at most max_bursts bursts, every index inside the
/// horizon and every victim inside the population. sample() respects the
/// caps by construction; mutate/splice re-clamp after editing.
FaultPlan clamp_to_space(FaultPlan plan, const FaultPlan::Space& space) {
  const std::int64_t horizon = std::max<std::int64_t>(1, space.horizon);
  if (space.num_s <= 0 || space.max_crashes == 0) {
    plan.storm.clear();
    plan.triggers.clear();
  }
  for (auto& c : plan.storm) {
    c.step_index = std::clamp<std::int64_t>(c.step_index, 0, horizon - 1);
    c.s_index = std::clamp(c.s_index, 0, std::max(0, space.num_s - 1));
  }
  while (static_cast<int>(plan.storm.size()) > space.max_crashes) plan.storm.pop_back();
  while (static_cast<int>(plan.storm.size() + plan.triggers.size()) > space.max_crashes) {
    plan.triggers.pop_back();
  }
  if (!space.allow_fd_faults || space.num_s <= 0) plan.fd = FdFault{};
  if (plan.fd.kind != FdFaultKind::kNone) {
    const Time max_gst = space.max_gst > 0 ? space.max_gst : std::max<Time>(1, horizon / 4);
    plan.fd.gst = std::clamp<Time>(plan.fd.gst, 1, max_gst);
    plan.fd.param = std::max(1, plan.fd.param);
  }
  const int population = space.num_c + space.num_s;
  if (space.max_bursts <= 0 || population <= 0) plan.bursts.clear();
  while (static_cast<int>(plan.bursts.size()) > space.max_bursts) plan.bursts.pop_back();
  const std::int64_t max_len =
      space.max_burst_len > 0 ? space.max_burst_len : std::max<std::int64_t>(1, horizon / 8);
  for (auto& b : plan.bursts) {
    b.start_step = std::clamp<std::int64_t>(b.start_step, 0, horizon - 1);
    b.length = std::clamp<std::int64_t>(b.length, 1, max_len);
    const bool in_world = b.victim.is_s() ? b.victim.index < space.num_s
                                          : b.victim.index < space.num_c;
    if (!in_world) {
      const int v = b.victim.index % std::max(1, population);
      b.victim = v < space.num_c ? cpid(v) : spid(v - space.num_c);
    }
  }
  if (space.max_link_actions <= 0 || space.mp_senders <= 0 || space.mp_mailboxes <= 0) {
    plan.links.clear();
  }
  while (static_cast<int>(plan.links.size()) > space.max_link_actions) plan.links.pop_back();
  const std::int64_t sever_max =
      space.max_sever_window > 0 ? space.max_sever_window : std::max<std::int64_t>(1, horizon / 8);
  for (auto& l : plan.links) {
    l.step = std::clamp<std::int64_t>(l.step, 0, horizon - 1);
    l.from = std::clamp(l.from, 0, std::max(0, space.mp_senders - 1));
    l.to = std::clamp(l.to, 0, std::max(0, space.mp_mailboxes - 1));
    if (l.kind == LinkFaultKind::kSever) {
      l.amount = static_cast<int>(std::clamp<std::int64_t>(l.amount, 1, sever_max));
    } else {
      l.amount = std::clamp(l.amount, 1, std::max(1, space.max_link_charge));
    }
  }
  return plan;
}

}  // namespace

FaultPlan FaultPlan::mutate(std::uint64_t seed, const Space& space) const {
  Rng rng{seed * 0xD1342543DE82EF95ULL + 0x9E6C63D0876A9A47ULL};
  FaultPlan plan = *this;
  const std::int64_t horizon = std::max<std::int64_t>(1, space.horizon);
  const std::int64_t jitter = std::max<std::int64_t>(1, horizon / 8);
  const int population = space.num_c + space.num_s;

  const int edits = 1 + static_cast<int>(rng.below(2));
  for (int e = 0; e < edits; ++e) {
    switch (rng.below(6)) {
      case 0:  // perturb (or seed) a storm point
        if (!plan.storm.empty()) {
          CrashPoint& c = plan.storm[rng.below(plan.storm.size())];
          if (rng.below(4) == 0 && space.num_s > 0) {
            c.s_index = static_cast<int>(rng.below(static_cast<std::uint64_t>(space.num_s)));
          } else {
            c.step_index += static_cast<std::int64_t>(rng.below(2 * jitter + 1)) - jitter;
          }
        } else if (space.num_s > 0 && space.max_crashes > 0) {
          plan.storm.push_back(CrashPoint{
              static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon))),
              static_cast<int>(rng.below(static_cast<std::uint64_t>(space.num_s)))});
        }
        break;
      case 1:  // perturb (or seed) a trigger
        if (!plan.triggers.empty()) {
          CrashTrigger& t = plan.triggers[rng.below(plan.triggers.size())];
          switch (rng.below(3)) {
            case 0: t.delay = 1 + static_cast<int>(rng.below(16)); break;
            case 1: t.occurrence = 1 + static_cast<int>(rng.below(5)); break;
            default:
              if (!space.trigger_prefixes.empty()) {
                t.reg_prefix = space.trigger_prefixes[rng.below(space.trigger_prefixes.size())];
              }
              break;
          }
        } else if (!space.trigger_prefixes.empty() && space.num_s > 0 && space.max_crashes > 0) {
          CrashTrigger t;
          t.reg_prefix = space.trigger_prefixes[rng.below(space.trigger_prefixes.size())];
          t.op = rng.below(4) == 0 ? OpKind::kRead : OpKind::kWrite;
          t.delay = 1 + static_cast<int>(rng.below(8));
          t.occurrence = 1 + static_cast<int>(rng.below(3));
          plan.triggers.push_back(std::move(t));
        }
        break;
      case 2:  // widen / narrow / retarget the FD corruption window
        if (space.allow_fd_faults && space.num_s > 0) {
          if (plan.fd.kind == FdFaultKind::kNone) {
            plan.fd.kind = rng.below(3) == 0   ? FdFaultKind::kLying
                           : rng.below(2) == 0 ? FdFaultKind::kOmissive
                                               : FdFaultKind::kStuttering;
            plan.fd.gst = 1 + static_cast<Time>(rng.below(16));
            plan.fd.param = 2 + static_cast<int>(rng.below(14));
          } else if (rng.below(2) == 0) {
            plan.fd.gst = rng.below(2) == 0 ? plan.fd.gst * 2 : std::max<Time>(1, plan.fd.gst / 2);
          } else {
            plan.fd.param = 1 + static_cast<int>(rng.below(16));
          }
        }
        break;
      case 3:  // jitter (or seed) a burst window
        if (!plan.bursts.empty()) {
          StarvationBurst& b = plan.bursts[rng.below(plan.bursts.size())];
          switch (rng.below(3)) {
            case 0:
              b.start_step += static_cast<std::int64_t>(rng.below(2 * jitter + 1)) - jitter;
              break;
            case 1: b.length = 1 + static_cast<std::int64_t>(rng.below(
                        static_cast<std::uint64_t>(std::max<std::int64_t>(1, 2 * b.length))));
              break;
            default:
              if (population > 0) {
                const auto v = static_cast<int>(rng.below(static_cast<std::uint64_t>(population)));
                b.victim = v < space.num_c ? cpid(v) : spid(v - space.num_c);
              }
              break;
          }
        } else if (space.max_bursts > 0 && population > 0) {
          StarvationBurst b;
          const auto v = static_cast<int>(rng.below(static_cast<std::uint64_t>(population)));
          b.victim = v < space.num_c ? cpid(v) : spid(v - space.num_c);
          b.start_step = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon)));
          b.length = 1 + static_cast<std::int64_t>(rng.below(8));
          plan.bursts.push_back(b);
        }
        break;
      case 4:  // drop one fault element (shrinking move)
        if (!plan.storm.empty() && rng.below(2) == 0) {
          plan.storm.erase(plan.storm.begin() +
                           static_cast<std::ptrdiff_t>(rng.below(plan.storm.size())));
        } else if (!plan.triggers.empty()) {
          plan.triggers.erase(plan.triggers.begin() +
                              static_cast<std::ptrdiff_t>(rng.below(plan.triggers.size())));
        } else if (!plan.bursts.empty()) {
          plan.bursts.erase(plan.bursts.begin() +
                            static_cast<std::ptrdiff_t>(rng.below(plan.bursts.size())));
        } else {
          plan.fd = FdFault{};
        }
        break;
      default:  // drop the advice corruption entirely
        plan.fd = FdFault{};
        break;
    }
  }
  // Link edit drawn after the generic loop: non-MP spaces skip it entirely,
  // keeping their mutation streams identical to earlier plan versions.
  if (space.max_link_actions > 0 && space.mp_senders > 0 && space.mp_mailboxes > 0) {
    const std::int64_t sever_max =
        space.max_sever_window > 0 ? space.max_sever_window : std::max<std::int64_t>(1, horizon / 8);
    const int charge_max = std::max(1, space.max_link_charge);
    switch (rng.below(3)) {
      case 0:  // perturb (or seed) a link action
        if (!plan.links.empty()) {
          LinkAction& l = plan.links[rng.below(plan.links.size())];
          switch (rng.below(3)) {
            case 0:
              l.step += static_cast<std::int64_t>(rng.below(2 * jitter + 1)) - jitter;
              break;
            case 1:
              l.from = static_cast<int>(rng.below(static_cast<std::uint64_t>(space.mp_senders)));
              l.to = static_cast<int>(rng.below(static_cast<std::uint64_t>(space.mp_mailboxes)));
              break;
            default:
              l.amount = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                             l.kind == LinkFaultKind::kSever ? sever_max : charge_max)));
              break;
          }
          break;
        }
        [[fallthrough]];
      case 1: {  // add a link action
        LinkAction l;
        switch (rng.below(5)) {
          case 1: l.kind = LinkFaultKind::kDup; break;
          case 2: l.kind = LinkFaultKind::kDelay; break;
          case 3: l.kind = LinkFaultKind::kReorder; break;
          case 4: l.kind = LinkFaultKind::kSever; break;
          default: l.kind = LinkFaultKind::kDrop; break;
        }
        l.step = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(horizon)));
        l.from = static_cast<int>(rng.below(static_cast<std::uint64_t>(space.mp_senders)));
        l.to = static_cast<int>(rng.below(static_cast<std::uint64_t>(space.mp_mailboxes)));
        l.amount = l.kind == LinkFaultKind::kSever
                       ? 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(sever_max)))
                       : 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(charge_max)));
        plan.links.push_back(l);
        break;
      }
      default:  // drop one link action (shrinking move)
        if (!plan.links.empty()) {
          plan.links.erase(plan.links.begin() +
                           static_cast<std::ptrdiff_t>(rng.below(plan.links.size())));
        }
        break;
    }
  }
  return clamp_to_space(std::move(plan), space);
}

FaultPlan FaultPlan::splice(const FaultPlan& a, const FaultPlan& b, std::uint64_t seed,
                            const Space& space) {
  Rng rng{seed * 0xA24BAED4963EE407ULL + 0x9FB21C651E98DF25ULL};
  FaultPlan plan;
  plan.storm = a.storm;
  plan.triggers = a.triggers;
  plan.fd = b.fd;
  // Interleave bursts: draw each slot from a or b.
  const std::size_t total = a.bursts.size() + b.bursts.size();
  std::size_t ia = 0;
  std::size_t ib = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const bool from_a = ib >= b.bursts.size() || (ia < a.bursts.size() && rng.below(2) == 0);
    plan.bursts.push_back(from_a ? a.bursts[ia++] : b.bursts[ib++]);
  }
  // Link actions: a's first, then b's; clamping trims past the cap.
  plan.links = a.links;
  plan.links.insert(plan.links.end(), b.links.begin(), b.links.end());
  return clamp_to_space(std::move(plan), space);
}

bool BurstScheduler::suppressed(Pid pid, std::int64_t step) const {
  for (const auto& b : bursts_) {
    if (b.victim == pid && step >= b.start_step && step < b.start_step + b.length) return true;
  }
  return false;
}

std::optional<Pid> BurstScheduler::next(const World& w) {
  const std::int64_t idx = attempt_++;
  auto pick = inner_.next(w);
  if (!pick || !suppressed(*pick, idx)) return pick;

  // The inner scheduler proposed a suppressed victim: poll it a bounded
  // number of times for an alternative (randomized/cyclic inners will move
  // on; the extra polls are invisible to replay because the RecordingScheduler
  // wraps THIS scheduler and records only the final choice).
  for (int i = 0; i < 64; ++i) {
    const auto alt = inner_.next(w);
    if (!alt) return std::nullopt;  // inner exhausted mid-burst
    if (!suppressed(*alt, idx)) return alt;
    pick = alt;
  }
  // Stubborn inner (e.g. an admission window whose only admitted process is
  // the victim): the burst yields rather than override the inner scheduler's
  // invariants — a finite burst may starve a process, not the world.
  return pick;
}

PlanDriveResult drive_with_plan(World& w, Scheduler& sched, std::int64_t max_steps,
                                const FaultPlan& plan) {
  PlanDriveResult out;
  DriveResult& r = out.drive;

  std::vector<CrashPoint> storm = plan.storm;
  std::sort(storm.begin(), storm.end(),
            [](const CrashPoint& a, const CrashPoint& b) { return a.step_index < b.step_index; });
  std::size_t next_storm = 0;

  struct TrigState {
    const CrashTrigger* trig;
    int remaining;
  };
  std::vector<TrigState> trig;
  trig.reserve(plan.triggers.size());
  for (const auto& t : plan.triggers) trig.push_back({&t, std::max(1, t.occurrence)});
  std::vector<CrashPoint> armed;
  if (!trig.empty()) w.enable_trace();  // trigger matching reads the trace
  std::size_t trace_seen = w.trace().size();

  const std::vector<LinkFaultPoint> lf = plan.resolve_links();
  std::size_t next_lf = 0;

  // Kills a live, in-range S-process and records the effective crash point;
  // mirrors drive_with_crashes' loop-top `step_index <= r.steps` convention so
  // the recorded points replay the faults at the exact same step indices.
  const auto apply = [&](int qi) {
    if (qi < 0 || qi >= w.pattern().n()) return;       // plan wider than world
    if (!w.pattern().alive(qi, w.now())) return;       // already down: no-op
    w.inject_crash(qi);
    out.applied.push_back(CrashPoint{r.steps, qi});
    out.applied_at.push_back(w.now());
  };

  bool done = false;
  while (!done) {
    while (next_storm < storm.size() && storm[next_storm].step_index <= r.steps) {
      apply(storm[next_storm].s_index);
      ++next_storm;
    }
    while (next_lf < lf.size() && lf[next_lf].step_index <= r.steps) {
      const LinkFaultPoint& p = lf[next_lf++];
      try {
        w.substrate().apply_link_fault(RegAddr(p.link), p.kind, p.amount);
        out.applied_links.push_back(LinkFaultPoint{r.steps, p.link, p.kind, p.amount});
      } catch (const std::exception&) {
        // Link absent from this world (plan wider than the grid) or a
        // substrate without faultable links: the action is a no-op.
      }
    }
    for (std::size_t i = 0; i < armed.size();) {
      if (armed[i].step_index <= r.steps) {
        apply(armed[i].s_index);
        armed.erase(armed.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    if (w.num_c() > 0 && w.all_c_decided()) {
      r.all_c_decided = true;
      done = true;
    } else if (r.steps >= max_steps) {
      r.budget_exhausted = true;
      done = true;
    } else {
      const auto pid = sched.next(w);
      if (!pid) {
        r.exhausted = true;
        done = true;
      } else {
        w.step(*pid);
        ++r.steps;
        if (!trig.empty()) {
          const Trace& tr = w.trace();
          for (; trace_seen < tr.size(); ++trace_seen) {
            const StepRecord& rec = tr[trace_seen];
            if (rec.null_step || !rec.pid.is_s()) continue;
            for (auto& ts : trig) {
              if (ts.remaining <= 0 || rec.op != ts.trig->op) continue;
              const std::string& name = rec.addr_name();
              if (name.rfind(ts.trig->reg_prefix, 0) != 0) continue;
              if (--ts.remaining == 0) {
                // The match was step index r.steps - 1; the kill lands
                // `delay` steps after it (delay == 1: before the very next
                // step executes).
                armed.push_back(
                    CrashPoint{r.steps - 1 + std::max(1, ts.trig->delay), rec.pid.index});
                ++out.triggers_fired;
              }
            }
          }
        }
      }
    }
  }
  // Both lists were appended in loop order (step_index is non-decreasing
  // across loop iterations), so applied / applied_at stay aligned and sorted.
  return out;
}

}  // namespace efd
