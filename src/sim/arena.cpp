#include "sim/arena.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace efd {
namespace {

thread_local FrameArena* tls_current = nullptr;

bool enabled_from_env() {
  const char* v = std::getenv("EFD_FRAME_ARENA");
  return v == nullptr || (v[0] != '0' || v[1] != '\0');
}

std::atomic<bool> g_enabled{enabled_from_env()};

// Prefixed to every frame_alloc block. 16 bytes keeps the frame itself on a
// 16-byte boundary (coroutine frames may hold over-aligned locals up to that).
struct FrameHeader {
  FrameArena* owner;  // nullptr => block came from the global heap
  std::size_t bytes;  // header-inclusive size, for the arena's size class
};
static_assert(sizeof(FrameHeader) == 16);

}  // namespace

FrameArena::~FrameArena() {
  Chunk* c = chunks_;
  while (c != nullptr) {
    Chunk* next = c->next;
    ::operator delete(static_cast<void*>(c));
    c = next;
  }
}

void FrameArena::grow(std::size_t need) {
  std::size_t payload = next_chunk_bytes_;
  if (payload < need) payload = need;
  next_chunk_bytes_ = next_chunk_bytes_ < (1u << 20) ? next_chunk_bytes_ * 2 : next_chunk_bytes_;
  const std::size_t total = sizeof(Chunk) + payload;
  auto* raw = static_cast<char*>(::operator new(total));
  auto* chunk = reinterpret_cast<Chunk*>(raw);
  chunk->next = chunks_;
  chunks_ = chunk;
  bump_ = raw + sizeof(Chunk);
  bump_end_ = raw + total;
  stats_.chunk_bytes += static_cast<std::int64_t>(total);
}

void* FrameArena::allocate(std::size_t bytes) {
  const std::size_t cls = class_of(bytes);
  const std::size_t rounded = cls * kClassBytes;
  ++stats_.allocs;
  if (FreeNode* n = freelists_[cls]) {
    freelists_[cls] = n->next;
    ++stats_.pool_hits;
    return n;
  }
  if (static_cast<std::size_t>(bump_end_ - bump_) < rounded) grow(rounded);
  char* p = bump_;
  bump_ += rounded;
  return p;
}

void FrameArena::deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t cls = class_of(bytes);
  auto* n = static_cast<FreeNode*>(p);
  n->next = freelists_[cls];
  freelists_[cls] = n;
  ++stats_.frees;
}

FrameArena* FrameArena::current() noexcept { return tls_current; }

void FrameArena::set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool FrameArena::enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

FrameArena::Scope::Scope(FrameArena* a) noexcept : prev_(tls_current) { tls_current = a; }
FrameArena::Scope::~Scope() { tls_current = prev_; }

void* frame_alloc(std::size_t bytes) {
  const std::size_t total = sizeof(FrameHeader) + bytes;
  FrameArena* arena = tls_current;
  void* block;
  if (arena != nullptr && total <= FrameArena::kMaxPooled &&
      FrameArena::enabled()) {
    block = arena->allocate(total);
  } else {
    arena = nullptr;
    block = ::operator new(total);
  }
  auto* hdr = static_cast<FrameHeader*>(block);
  hdr->owner = arena;
  hdr->bytes = total;
  return hdr + 1;
}

void frame_free(void* p) noexcept {
  if (p == nullptr) return;
  auto* hdr = static_cast<FrameHeader*>(p) - 1;
  if (hdr->owner != nullptr) {
    hdr->owner->deallocate(hdr, hdr->bytes);
  } else {
    ::operator delete(static_cast<void*>(hdr));
  }
}

}  // namespace efd
