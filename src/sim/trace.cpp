#include "sim/trace.hpp"

#include <cstdint>
#include <sstream>
#include <unordered_set>

namespace efd {
namespace {

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kQuery:
      return "query";
    case OpKind::kYield:
      return "yield";
    case OpKind::kDecide:
      return "decide";
    case OpKind::kSend:
      return "send";
    case OpKind::kRecv:
      return "recv";
    case OpKind::kDeliver:
      return "deliver";
  }
  return "?";
}

}  // namespace

const std::string& StepRecord::addr_name() const {
  static const std::string empty;
  return addr.valid() ? addr.name() : empty;
}

std::string StepRecord::to_string() const {
  std::ostringstream os;
  os << "t=" << time << " " << pid.to_string() << " " << op_name(op);
  if (op == OpKind::kRead) os << " " << addr_name() << " -> " << result.to_string();
  if (op == OpKind::kWrite) os << " " << addr_name() << " := " << value.to_string();
  if (op == OpKind::kQuery) os << " -> " << result.to_string();
  if (op == OpKind::kDecide) os << " " << value.to_string();
  if (op == OpKind::kSend) os << " " << addr_name() << " <- " << value.to_string();
  if (op == OpKind::kRecv) os << " " << addr_name() << " -> " << result.to_string();
  if (op == OpKind::kDeliver) os << " " << addr_name() << " ~> " << result.to_string();
  if (null_step) os << " (null)";
  if (terminated) os << " (end)";
  return os.str();
}

int max_concurrency(const Trace& trace) {
  std::unordered_set<int> undecided;
  int peak = 0;
  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Pid pid = trace.pid_at(i);
    if (!pid.is_c() || trace.null_at(i)) continue;
    undecided.insert(pid.index);
    peak = std::max(peak, static_cast<int>(undecided.size()));
    // Retire on decide OR termination: a coroutine that ran to completion
    // without deciding can never decide later, so counting it as "undecided"
    // forever would inflate the measured concurrency (the same
    // terminated-undecided inconsistency AdmissionWindow::refresh fixes on
    // the scheduling side).
    if (trace.op_at(i) == OpKind::kDecide || trace.term_at(i)) undecided.erase(pid.index);
  }
  return peak;
}

bool is_k_concurrent(const Trace& trace, int k) { return max_concurrency(trace) <= k; }

int steps_of(const Trace& trace, Pid pid) {
  int n = 0;
  const std::size_t sz = trace.size();
  for (std::size_t i = 0; i < sz; ++i) {
    if (trace.pid_at(i) == pid && !trace.null_at(i)) ++n;
  }
  return n;
}

std::uint64_t trace_hash(const Trace& trace) {
  auto mix = [](std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 29;
    return h;
  };
  // The Nil hash is a constant of the Value encoding; hoisting it makes the
  // common all-Nil record a pure integer scan over the column arrays.
  static const std::uint64_t kNilHash = Value{}.hash();
  std::uint64_t h = 0x9AE16A3B2F90404FULL;
  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Pid pid = trace.pid_at(i);
    const RegAddr addr = trace.addr_at(i);
    const Value& value = trace.value_at(i);
    const Value& result = trace.result_at(i);
    h = mix(h, static_cast<std::uint64_t>(trace.time_at(i)));
    h = mix(h, (static_cast<std::uint64_t>(pid.kind) << 32) |
                   static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid.index)));
    h = mix(h, static_cast<std::uint64_t>(trace.op_at(i)));
    h = mix(h, addr.valid() ? addr.name_hash() : 0);
    h = mix(h, value.is_nil() ? kNilHash : value.hash());
    h = mix(h, result.is_nil() ? kNilHash : result.hash());
    h = mix(h, (trace.null_at(i) ? 2u : 0u) | (trace.term_at(i) ? 1u : 0u));
  }
  return h;
}

std::string format_trace(const Trace& trace, std::size_t limit) {
  std::ostringstream os;
  const std::size_t n = std::min(limit, trace.size());
  for (std::size_t i = 0; i < n; ++i) os << trace[i].to_string() << "\n";
  if (trace.size() > n) os << "... (" << (trace.size() - n) << " more steps)\n";
  return os.str();
}

}  // namespace efd
