// Substrates: pluggable step semantics for the World's communication ops.
//
// The paper's model is asynchronous shared memory; the ROADMAP's second
// substrate is asynchronous message passing (Biely-Robinson-Schmid style).
// A Substrate is the strategy object World::step consults for the three
// communication ops that are NOT plain register accesses:
//
//     kSend    — enqueue a message onto a mailbox;
//     kRecv    — dequeue the mailbox head (Nil when empty);
//     kDeliver — move one in-flight message from a per-link channel onto its
//                destination mailbox (link-daemon step; message backends only).
//
// Two implementations ship:
//  * ShmSubstrate — mailboxes ARE registers: a mailbox is one register
//    holding the full pending FIFO as a vector Value, so every send/recv is
//    exactly one register mutation (one undo_write inverts it). This is the
//    "registers-as-mailboxes" emulation the differential tests compare
//    against, and the default a World lazily installs on first MP op.
//  * MsgSubstrate (sim/msg_world.hpp) — a native ChannelFabric with per-link
//    FIFO channels and explicit delivery steps.
//
// Explorer contract (what record/replay + the incremental explorer need from
// any backend; see DESIGN.md 4h):
//  * one step mutates at most ONE mailbox cell, and cell_state()/
//    restore_cell() observe and exactly invert that mutation (the undo-log
//    protocol mem.read()/written()/undo_write() implements for registers);
//  * peek_recv() reports the value the NEXT recv on a mailbox would return
//    without mutating anything (the explorer's blocked-recv test);
//  * hash_acc() is a commutative accumulator over the substrate's own state,
//    built from cell_content_hash terms keyed by mailbox NAME hashes, so
//    World::state_hash() is byte-identical across backends holding the same
//    mailbox contents (ShmSubstrate keeps no state: its mailboxes already
//    live in the RegisterFile's accumulator).
// Send/recv steps are never ghost-replayed (world-side state cannot be
// re-applied safely); the explorer refuses them in try_ghost_step.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/channel.hpp"  // LinkFaultKind / LinkFaultCounters
#include "sim/ids.hpp"
#include "sim/memory.hpp"
#include "sim/value.hpp"

namespace efd {

enum class SubstrateKind : std::uint8_t {
  kShm,  ///< registers-as-mailboxes emulation
  kMsg,  ///< native message passing (per-link FIFO channels)
};

class Substrate {
 public:
  virtual ~Substrate() = default;

  [[nodiscard]] virtual SubstrateKind kind() const noexcept = 0;
  /// Tape provenance token ("shm" / "msg"); parsed by sim/replay.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  // ---- step semantics (one model step each; at most one cell mutated) ----

  /// Appends `msg` to `mbox`'s pending FIFO (or to the (sender, mbox) link's
  /// in-flight channel when the backend delivers asynchronously). Returns the
  /// step result (always Nil).
  virtual Value apply_send(RegisterFile& mem, Pid sender, RegAddr mbox, const Value& msg) = 0;

  /// Pops and returns `mbox`'s pending head; Nil when the mailbox is empty.
  /// An empty-mailbox recv still TOUCHES the mailbox cell (an explicitly
  /// emptied mailbox is distinguishable from a never-used one, on every
  /// backend, so state hashes agree).
  virtual Value apply_recv(RegisterFile& mem, RegAddr mbox) = 0;

  /// Moves the head of `link`'s in-flight channel onto its destination
  /// mailbox; returns the delivered message (Nil when the channel is empty).
  /// Backends without explicit delivery throw std::logic_error.
  virtual Value apply_deliver(RegisterFile& mem, RegAddr link) = 0;

  // ---- explorer contract ----

  /// The value the next apply_recv(mbox) would return, without mutating.
  [[nodiscard]] virtual Value peek_recv(const RegisterFile& mem, RegAddr mbox) const = 0;

  /// Observes a mailbox cell before a send/recv step: `out` receives the
  /// cell's current content (the pending FIFO as a vector Value; Nil when
  /// untouched); returns whether the cell was ever touched. The pair feeds
  /// restore_cell on backtrack.
  [[nodiscard]] virtual bool cell_state(const RegisterFile& mem, RegAddr mbox,
                                        Value& out) const = 0;

  /// Exact inverse of the one send/recv mutation performed since
  /// (prev, prev_present) was observed via cell_state on the same mailbox.
  virtual void restore_cell(RegisterFile& mem, RegAddr mbox, const Value& prev,
                            bool prev_present) = 0;

  /// Commutative accumulator over substrate-held mailbox state (0 when the
  /// substrate keeps none). Folded into World::state_hash().
  [[nodiscard]] virtual std::uint64_t hash_acc() const noexcept = 0;

  // ---- link-fault adversary (message backends only) ----

  /// Charges `amount` link faults of `kind` against `link` (tape `linkfaults`
  /// directives and plan-v1 `link` actions land here). Backends without
  /// faultable links throw std::logic_error — a lossy tape replayed into a
  /// register world is a hard error, not a silent no-op.
  virtual void apply_link_fault(RegAddr /*link*/, LinkFaultKind /*kind*/, int /*amount*/) {
    throw std::logic_error("substrate: link faults require a message substrate");
  }

  /// Consumed-fault tallies (all zero for backends without faultable links).
  [[nodiscard]] virtual LinkFaultCounters link_fault_counters() const noexcept { return {}; }
};

/// Registers-as-mailboxes: mailbox == one register whose value is the whole
/// pending FIFO (a vector Value). Stateless — everything lives in `mem`, so
/// undo is the register undo and hash_acc() is 0.
class ShmSubstrate final : public Substrate {
 public:
  [[nodiscard]] SubstrateKind kind() const noexcept override { return SubstrateKind::kShm; }
  [[nodiscard]] const char* name() const noexcept override { return "shm"; }

  Value apply_send(RegisterFile& mem, Pid /*sender*/, RegAddr mbox, const Value& msg) override {
    ValueVec q;
    const Value cur = mem.read(mbox);
    if (cur.is_vec()) cur.unpack_vec(q);  // Nil (never used) => empty queue
    q.push_back(msg);
    mem.write(mbox, Value(std::move(q)));
    return Value{};
  }

  Value apply_recv(RegisterFile& mem, RegAddr mbox) override {
    const Value cur = mem.read(mbox);
    if (!cur.is_vec() || cur.size() == 0) {
      // Empty recv still touches the cell: write an (empty) queue so the
      // footprint/hash matches a message backend marking the mailbox used.
      mem.write(mbox, Value(ValueVec{}));
      return Value{};
    }
    ValueVec q;
    cur.unpack_vec(q);
    Value head = std::move(q.front());
    q.erase(q.begin());
    mem.write(mbox, Value(std::move(q)));
    return head;
  }

  Value apply_deliver(RegisterFile&, RegAddr) override {
    throw std::logic_error("ShmSubstrate: deliver steps require a message substrate");
  }

  [[nodiscard]] Value peek_recv(const RegisterFile& mem, RegAddr mbox) const override {
    const Value cur = mem.read(mbox);
    return cur.size() > 0 ? cur.at(0) : Value{};
  }

  [[nodiscard]] bool cell_state(const RegisterFile& mem, RegAddr mbox,
                                Value& out) const override {
    out = mem.read(mbox);
    return mem.written(mbox);
  }

  void restore_cell(RegisterFile& mem, RegAddr mbox, const Value& prev,
                    bool prev_present) override {
    mem.undo_write(mbox, prev, prev_present);
  }

  [[nodiscard]] std::uint64_t hash_acc() const noexcept override { return 0; }
};

}  // namespace efd
