#include "sim/schedule.hpp"

#include <algorithm>

namespace efd {
namespace {

bool eligible(const World& w, Pid pid) {
  if (!w.alive(pid)) return false;
  // Terminated processes only take null steps; scheduling them is legal but
  // useless, so fair schedulers skip them.
  return !w.terminated(pid);
}

std::uint64_t mix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::optional<Pid> RoundRobinScheduler::next(const World& w) {
  const auto pids = w.pids();
  if (pids.empty()) return std::nullopt;
  for (std::size_t tries = 0; tries < pids.size(); ++tries) {
    const Pid cand = pids[cursor_ % pids.size()];
    ++cursor_;
    if (eligible(w, cand)) return cand;
  }
  return std::nullopt;
}

std::optional<Pid> RandomScheduler::next(const World& w) {
  std::vector<Pid> pool;
  for (const Pid pid : w.pids()) {
    if (eligible(w, pid)) pool.push_back(pid);
  }
  if (pool.empty()) return std::nullopt;
  return pool[static_cast<std::size_t>(mix(state_) % pool.size())];
}

std::optional<Pid> KConcurrencyScheduler::next(const World& w) {
  // Retire finished C-processes, admit arrivals (shared AdmissionWindow
  // semantics — identical to the exhaustive explorers').
  window_.refresh(w);
  const std::vector<int>& active_ = window_.active();

  // Interleave: s_stride_ S-steps, then one C-step, round-robin on each side.
  const int ns = w.num_s();
  if (s_budget_ > 0 && ns > 0) {
    for (int tries = 0; tries < ns; ++tries) {
      const int qi = static_cast<int>(s_cursor_ % static_cast<std::size_t>(ns));
      ++s_cursor_;
      const Pid pid = spid(qi);
      if (w.exists(pid) && eligible(w, pid)) {
        --s_budget_;
        return pid;
      }
    }
    s_budget_ = 0;  // no eligible S-process; fall through to C
  }

  if (!active_.empty()) {
    const int ci = active_[c_cursor_ % active_.size()];
    ++c_cursor_;
    s_budget_ = s_stride_;
    return cpid(ci);
  }

  // No undecided C-process left; keep S-processes running if any remain
  // (callers typically stop via all_c_decided()).
  for (int tries = 0; tries < ns; ++tries) {
    const int qi = static_cast<int>(s_cursor_ % static_cast<std::size_t>(std::max(ns, 1)));
    ++s_cursor_;
    const Pid pid = spid(qi);
    if (w.exists(pid) && eligible(w, pid)) return pid;
  }
  return std::nullopt;
}

DriveResult drive(World& w, Scheduler& sched, std::int64_t max_steps) {
  DriveResult r;
  for (;;) {
    if (w.num_c() > 0 && w.all_c_decided()) {
      r.all_c_decided = true;
      return r;
    }
    if (r.steps >= max_steps) {
      r.budget_exhausted = true;
      return r;
    }
    const auto pid = sched.next(w);
    if (!pid) {
      r.exhausted = true;
      return r;
    }
    w.step(*pid);
    ++r.steps;
  }
}

}  // namespace efd
