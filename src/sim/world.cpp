#include "sim/world.hpp"

#include "fd/detectors.hpp"

namespace efd {

World World::failure_free(int num_s) {
  return World(FailurePattern(num_s), TrivialFd{}.history(FailurePattern(num_s), 0));
}

void World::spawn(Pid pid, const ProcBody& body) {
  if (exists(pid)) throw std::invalid_argument("World::spawn: duplicate pid " + pid.to_string());
  if (pid.index < 0) throw std::invalid_argument("World::spawn: negative index");
  if (pid.is_s() && pid.index >= pattern_.n()) {
    throw std::invalid_argument("World::spawn: S-process index beyond failure pattern");
  }
  auto& v = pid.is_c() ? c_slots_ : s_slots_;
  if (static_cast<std::size_t>(pid.index) >= v.size()) {
    v.resize(static_cast<std::size_t>(pid.index) + 1);
  }
  Slot& s = v[static_cast<std::size_t>(pid.index)];
  s.ctx = std::make_unique<Context>(pid);
  {
    FrameArena::Scope scope(arena_.get());
    s.proc = body(*s.ctx);
  }
  if (!s.proc.valid()) {
    s.ctx.reset();
    throw std::invalid_argument("World::spawn: body produced no coroutine");
  }
  if (pid.is_c()) {
    num_c_ = std::max(num_c_, pid.index + 1);
  } else {
    num_s_ = std::max(num_s_, pid.index + 1);
  }
}

void World::respawn(Pid pid, const ProcBody& body) {
  Slot& s = slot(pid);  // throws if pid was never spawned
  FrameArena::Scope scope(arena_.get());
  // Drop the old frame first: it lands on a freelist the new frame of the
  // same body (same size class) is immediately recycled from.
  s.proc = Proc{};
  s.ctx->reset();
  s.primed = false;
  s.steps = 0;
  s.proc = body(*s.ctx);
  if (!s.proc.valid()) {
    throw std::invalid_argument("World::respawn: body produced no coroutine");
  }
  ++stats_.respawns;
}

const PendingOp* World::pending_op(Pid pid) {
  Slot& s = slot(pid);
  prime(s);
  if (s.proc.done() || !s.ctx->has_pending()) return nullptr;
  return &s.ctx->pending();
}

void World::redeliver(Pid pid, Value result) {
  if (!pid.is_c()) throw std::logic_error("World::redeliver: C-processes only");
  Slot& s = slot(pid);
  prime(s);
  if (s.proc.done() || !s.ctx->has_pending()) {
    throw std::logic_error("World::redeliver: " + pid.to_string() + " has no pending op");
  }
  if (s.ctx->pending().kind == OpKind::kDecide) {
    s.ctx->record_decision(s.ctx->pending().value);
  }
  {
    FrameArena::Scope scope(arena_.get());
    s.ctx->deliver(std::move(result));
  }
  if (auto err = s.proc.handle().promise().error) std::rethrow_exception(err);
  ++s.steps;
  ++stats_.redelivers;
}

void World::redeliver_all(Pid pid, const std::vector<Value>& results) {
  if (!pid.is_c()) throw std::logic_error("World::redeliver: C-processes only");
  Slot& s = slot(pid);
  prime(s);
  FrameArena::Scope scope(arena_.get());
  for (const Value& result : results) {
    if (s.proc.done() || !s.ctx->has_pending()) {
      throw std::logic_error("World::redeliver: " + pid.to_string() + " has no pending op");
    }
    if (s.ctx->pending().kind == OpKind::kDecide) {
      s.ctx->record_decision(s.ctx->pending().value);
    }
    s.ctx->deliver(Value(result));
    if (s.proc.handle().promise().error) {
      std::rethrow_exception(s.proc.handle().promise().error);
    }
  }
  s.steps += static_cast<int>(results.size());
  stats_.redelivers += static_cast<std::int64_t>(results.size());
}

std::vector<Pid> World::pids() const {
  std::vector<Pid> out;
  out.reserve(c_slots_.size() + s_slots_.size());
  // C before S, ascending index: already Pid order (kind is the major key).
  for (std::size_t i = 0; i < c_slots_.size(); ++i) {
    if (c_slots_[i].ctx) out.push_back(cpid(static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < s_slots_.size(); ++i) {
    if (s_slots_[i].ctx) out.push_back(spid(static_cast<int>(i)));
  }
  return out;
}

const World::Slot& World::slot(Pid pid) const {
  const auto& v = pid.is_c() ? c_slots_ : s_slots_;
  if (pid.index < 0 || static_cast<std::size_t>(pid.index) >= v.size() ||
      !v[static_cast<std::size_t>(pid.index)].ctx) {
    throw std::out_of_range("World: unknown pid " + pid.to_string());
  }
  return v[static_cast<std::size_t>(pid.index)];
}

World::Slot& World::slot(Pid pid) {
  auto& v = pid.is_c() ? c_slots_ : s_slots_;
  if (pid.index < 0 || static_cast<std::size_t>(pid.index) >= v.size() ||
      !v[static_cast<std::size_t>(pid.index)].ctx) {
    throw std::out_of_range("World: unknown pid " + pid.to_string());
  }
  return v[static_cast<std::size_t>(pid.index)];
}

void World::prime(Slot& s) {
  if (s.primed) return;
  s.primed = true;
  // Run local initialization up to the first operation; this consumes no
  // step. Resuming can start subroutine frames, hence the arena scope.
  FrameArena::Scope scope(arena_.get());
  s.proc.handle().resume();
  if (auto err = s.proc.handle().promise().error) std::rethrow_exception(err);
}

bool World::step(Pid pid) {
  Slot& s = slot(pid);
  if (pid.is_s() && !pattern_.alive(pid.index, now_)) {
    ++stats_.crashed_attempts;  // no time advance, no trace record
    return false;
  }
  prime(s);

  OpKind op_kind = OpKind::kYield;
  RegAddr addr;
  bool null_step = false;
  bool terminated = false;
  Value traced_value;   // only populated when tracing
  Value traced_result;  // only populated when tracing

  if (s.proc.done() || !s.ctx->has_pending()) {
    // Terminated (typically after a decide): null steps forever.
    null_step = true;
    ++stats_.null_steps;
  } else {
    // The pending op stays valid until deliver() resumes the coroutine;
    // everything needed after the resume is copied out first.
    const PendingOp& op = s.ctx->pending();
    op_kind = op.kind;
    addr = op.addr;
    Value result;
    switch (op_kind) {
      case OpKind::kRead:
        result = mem_.read(addr);
        ++stats_.reads;
        break;
      case OpKind::kWrite:
        mem_.write(addr, op.value);
        ++stats_.writes;
        break;
      case OpKind::kQuery:
        if (!pid.is_s()) throw std::logic_error("FD query from C-process " + pid.to_string());
        result = history_->at(pid.index, now_);
        ++stats_.queries;
        break;
      case OpKind::kYield:
        ++stats_.yields;
        break;
      case OpKind::kDecide:
        s.ctx->record_decision(op.value);
        ++stats_.decides;
        break;
      case OpKind::kSend:
        result = substrate().apply_send(mem_, pid, addr, op.value);
        ++stats_.sends;
        break;
      case OpKind::kRecv:
        result = substrate().apply_recv(mem_, addr);
        ++stats_.recvs;
        break;
      case OpKind::kDeliver:
        result = substrate().apply_deliver(mem_, addr);
        ++stats_.delivers;
        break;
    }
    if (tracing_) {
      traced_value = op.value;
      traced_result = result;
    }
    {
      FrameArena::Scope scope(arena_.get());
      s.ctx->deliver(std::move(result));
    }
    if (auto err = s.proc.handle().promise().error) std::rethrow_exception(err);
    ++s.steps;
    // Mark the step that completes the coroutine: checkers retire the
    // process here even when it never decided (quitters).
    terminated = s.proc.done();
  }

  ++stats_.steps;
  if (observer_ != nullptr) {
    observer_->on_step(pid, op_kind, null_step, !null_step && op_kind == OpKind::kDecide,
                       terminated);
  }
  if (tracing_) {
    trace_.append(now_, pid, op_kind, addr, traced_value, traced_result, null_step, terminated);
  }
  ++now_;
  return true;
}

bool World::all_c_decided() const {
  for (const Slot& s : c_slots_) {
    if (s.ctx && !s.ctx->decided()) return false;
  }
  return true;
}

ValueVec World::output_vector() const {
  ValueVec out(static_cast<std::size_t>(num_c_));
  for (std::size_t i = 0; i < c_slots_.size(); ++i) {
    const Slot& s = c_slots_[i];
    if (s.ctx && s.ctx->decided()) out[i] = s.ctx->decision();
  }
  return out;
}

}  // namespace efd
