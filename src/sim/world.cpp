#include "sim/world.hpp"

#include "fd/detectors.hpp"

namespace efd {

World World::failure_free(int num_s) {
  return World(FailurePattern(num_s), TrivialFd{}.history(FailurePattern(num_s), 0));
}

void World::spawn(Pid pid, ProcBody body) {
  if (exists(pid)) throw std::invalid_argument("World::spawn: duplicate pid " + pid.to_string());
  if (pid.is_s() && pid.index >= pattern_.n()) {
    throw std::invalid_argument("World::spawn: S-process index beyond failure pattern");
  }
  Slot s;
  s.ctx = std::make_unique<Context>(pid);
  s.proc = body(*s.ctx);
  if (!s.proc.valid()) throw std::invalid_argument("World::spawn: body produced no coroutine");
  slots_.emplace(pid, std::move(s));
  if (pid.is_c()) {
    num_c_ = std::max(num_c_, pid.index + 1);
  } else {
    num_s_ = std::max(num_s_, pid.index + 1);
  }
}

void World::respawn(Pid pid, ProcBody body) {
  Slot& s = slot(pid);  // throws if pid was never spawned
  Slot fresh;
  fresh.ctx = std::make_unique<Context>(pid);
  fresh.proc = body(*fresh.ctx);
  if (!fresh.proc.valid()) {
    throw std::invalid_argument("World::respawn: body produced no coroutine");
  }
  s = std::move(fresh);
  ++stats_.respawns;
}

const PendingOp* World::pending_op(Pid pid) {
  Slot& s = slot(pid);
  prime(s);
  if (s.proc.done() || !s.ctx->has_pending()) return nullptr;
  return &s.ctx->pending();
}

void World::redeliver(Pid pid, Value result) {
  if (!pid.is_c()) throw std::logic_error("World::redeliver: C-processes only");
  Slot& s = slot(pid);
  prime(s);
  if (s.proc.done() || !s.ctx->has_pending()) {
    throw std::logic_error("World::redeliver: " + pid.to_string() + " has no pending op");
  }
  if (s.ctx->pending().kind == OpKind::kDecide) {
    s.ctx->record_decision(s.ctx->pending().value);
  }
  s.ctx->deliver(std::move(result));
  if (auto err = s.proc.handle().promise().error) std::rethrow_exception(err);
  ++s.steps;
  ++stats_.redelivers;
}

std::vector<Pid> World::pids() const {
  std::vector<Pid> out;
  out.reserve(slots_.size());
  for (const auto& [pid, _] : slots_) out.push_back(pid);
  std::sort(out.begin(), out.end());
  return out;
}

const World::Slot& World::slot(Pid pid) const {
  const auto it = slots_.find(pid);
  if (it == slots_.end()) throw std::out_of_range("World: unknown pid " + pid.to_string());
  return it->second;
}

World::Slot& World::slot(Pid pid) {
  const auto it = slots_.find(pid);
  if (it == slots_.end()) throw std::out_of_range("World: unknown pid " + pid.to_string());
  return it->second;
}

void World::prime(Slot& s) {
  if (s.primed) return;
  s.primed = true;
  // Run local initialization up to the first operation; this consumes no step.
  s.proc.handle().resume();
  if (auto err = s.proc.handle().promise().error) std::rethrow_exception(err);
}

bool World::step(Pid pid) {
  Slot& s = slot(pid);
  if (pid.is_s() && !pattern_.alive(pid.index, now_)) {
    ++stats_.crashed_attempts;  // no time advance, no trace record
    return false;
  }
  prime(s);

  StepRecord rec;
  rec.time = now_;
  rec.pid = pid;

  if (s.proc.done() || !s.ctx->has_pending()) {
    // Terminated (typically after a decide): null steps forever.
    rec.null_step = true;
    rec.op = OpKind::kYield;
    ++stats_.null_steps;
  } else {
    const PendingOp op = s.ctx->pending();  // copy: deliver() consumes it
    rec.op = op.kind;
    rec.addr = op.addr;
    rec.value = op.value;
    Value result;
    switch (op.kind) {
      case OpKind::kRead:
        result = mem_.read(op.addr);
        ++stats_.reads;
        break;
      case OpKind::kWrite:
        mem_.write(op.addr, op.value);
        ++stats_.writes;
        break;
      case OpKind::kQuery:
        if (!pid.is_s()) throw std::logic_error("FD query from C-process " + pid.to_string());
        result = history_->at(pid.index, now_);
        ++stats_.queries;
        break;
      case OpKind::kYield:
        ++stats_.yields;
        break;
      case OpKind::kDecide:
        s.ctx->record_decision(op.value);
        ++stats_.decides;
        break;
    }
    rec.result = result;
    s.ctx->deliver(std::move(result));
    if (auto err = s.proc.handle().promise().error) std::rethrow_exception(err);
    ++s.steps;
    // Mark the step that completes the coroutine: checkers retire the
    // process here even when it never decided (quitters).
    rec.terminated = s.proc.done();
  }

  ++stats_.steps;
  if (observer_ != nullptr) {
    observer_->on_step(pid, rec.null_step, !rec.null_step && rec.op == OpKind::kDecide,
                       rec.terminated);
  }
  if (tracing_) trace_.push_back(std::move(rec));
  ++now_;
  return true;
}

bool World::all_c_decided() const {
  for (const auto& [pid, s] : slots_) {
    if (pid.is_c() && !s.ctx->decided()) return false;
  }
  return true;
}

ValueVec World::output_vector() const {
  ValueVec out(static_cast<std::size_t>(num_c_));
  for (const auto& [pid, s] : slots_) {
    if (pid.is_c() && s.ctx->decided()) out[static_cast<std::size_t>(pid.index)] = s.ctx->decision();
  }
  return out;
}

}  // namespace efd
