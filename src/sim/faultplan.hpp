// Fault plans: one value type for everything a campaign can do to a run.
//
// A FaultPlan unifies the repository's fault families behind one seedable,
// serializable artifact:
//
//  * crash storms      — unconditional step-indexed S-crashes (CrashPoint);
//  * crash triggers    — targeted kills generalizing PR 4's hand-built
//                        "kill the leader after its next ACC write": watch
//                        the trace for the k-th matching S-op on a register
//                        prefix, crash that S-process `delay` steps later;
//  * advice corruption — wrap the scenario's detector in a fd/faulty.hpp
//                        family (lying / omissive / stuttering) until a GST;
//  * starvation bursts — unfair-but-eventually-fair scheduling: suppress one
//                        process over a step-index window (BurstScheduler);
//  * link faults       — step-indexed charges against a message world's
//                        links (sim/channel.hpp): drop/dup/delay/reorder the
//                        next deliveries of ch[i][j], or sever it for a
//                        bounded window (always paired with a heal, so a
//                        plan can partition transiently, never permanently).
//
// drive_with_plan executes a plan: storms and trigger kills resolve ONLINE
// into concrete, tape-ready CrashPoints (PlanDriveResult::applied), advice
// corruption is baked into the FD samples the trace records, and bursts are
// baked into the recorded pid schedule — so a recorded campaign failure is a
// plain `efd-tape-v1` tape that replays and ddmin-shrinks with the existing
// machinery, no plan object needed. The plan's one-line to_string() is
// attached to the tape as a `plan` provenance line (ScheduleTape::plan).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fd/faulty.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"

namespace efd {

/// Kill the S-process that performs the `occurrence`-th trace step matching
/// (op, register-name prefix), `delay` schedule steps after the match.
struct CrashTrigger {
  std::string reg_prefix;       ///< canonical register-name prefix to watch
  OpKind op = OpKind::kWrite;   ///< kWrite or kRead
  int delay = 1;                ///< >= 1: steps between the match and the kill
  int occurrence = 1;           ///< >= 1: fire on the k-th match

  friend bool operator==(const CrashTrigger&, const CrashTrigger&) = default;
};

/// Suppress `victim` while the schedule-step index lies in
/// [start_step, start_step + length). Finite, so eventual fairness of the
/// underlying scheduler is preserved.
struct StarvationBurst {
  std::int64_t start_step = 0;
  std::int64_t length = 0;
  Pid victim{};

  friend bool operator==(const StarvationBurst&, const StarvationBurst&) = default;
};

/// One link-layer fault: charge link ch[from][to] with `kind` when the drive
/// reaches schedule step `step`. `amount` is the charge count (how many
/// deliveries to drop/dup/delay, or the reorder window); for kSever it is
/// the sever WINDOW — drive_with_plan resolves a sever into a sever charge
/// at `step` plus a heal at `step + amount`.
struct LinkAction {
  LinkFaultKind kind = LinkFaultKind::kDrop;
  std::int64_t step = 0;
  int from = 0;   ///< sender index i of ch[i][j]
  int to = 0;     ///< mailbox index j of ch[i][j]
  int amount = 1; ///< >= 1: charge count / sever window length

  friend bool operator==(const LinkAction&, const LinkAction&) = default;
};

/// Advice corruption window (applied via make_faulty on the target's base
/// detector). kind == kNone means the advice is left honest.
struct FdFault {
  FdFaultKind kind = FdFaultKind::kNone;
  Time gst = 0;   ///< corruption window bound (wrapper stabilization)
  int param = 8;  ///< drop_period / stutter period

  friend bool operator==(const FdFault&, const FdFault&) = default;
};

class FaultPlan {
 public:
  std::vector<CrashPoint> storm;        ///< unconditional step-indexed kills
  std::vector<CrashTrigger> triggers;   ///< targeted kills
  FdFault fd;                           ///< advice corruption
  std::vector<StarvationBurst> bursts;  ///< scheduler starvation windows
  std::vector<LinkAction> links;        ///< message-link fault charges

  [[nodiscard]] bool empty() const {
    return storm.empty() && triggers.empty() && bursts.empty() && links.empty() &&
           fd.kind == FdFaultKind::kNone;
  }

  /// Wraps `base` advice per the plan's FdFault.
  [[nodiscard]] DetectorPtr corrupt(DetectorPtr base) const {
    return make_faulty(fd.kind, std::move(base), fd.gst, fd.param);
  }

  /// One-line canonical text ("plan-v1; fd lying 40 8; storm 12 3; ...");
  /// round-trips through parse. Attached to tapes as provenance.
  [[nodiscard]] std::string to_string() const;
  /// Inverse of to_string; throws std::invalid_argument on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& text);

  /// The plan's link actions as tape-ready LinkFaultPoints against the
  /// canonical link names ("ch[i][j]"), stably sorted by step index. Each
  /// kSever action expands into a sever/heal pair `amount` steps apart, so
  /// every resolved sequence heals what it severs. No grid bounds are
  /// checked here — charging skips links the target world does not have.
  [[nodiscard]] std::vector<LinkFaultPoint> resolve_links() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

  /// The dimensions a campaign target exposes for plan sampling.
  struct Space {
    int num_s = 0;
    int num_c = 0;
    std::int64_t horizon = 2000;  ///< step-index range for storms and bursts
    int max_crashes = 0;          ///< cap on S-kills (storm + triggers)
    std::vector<std::string> trigger_prefixes;  ///< registers worth targeting
    bool allow_fd_faults = true;
    Time max_gst = 0;             ///< 0: horizon / 4
    int max_bursts = 2;
    std::int64_t max_burst_len = 0;  ///< 0: horizon / 8
    // Link-fault dimensions; all zero for shared-memory targets (sampling
    // then never emits link actions and clamping strips any present).
    int mp_senders = 0;      ///< link grid rows of ch[i][j] (0: no links)
    int mp_mailboxes = 0;    ///< link grid columns
    int max_link_actions = 0;         ///< cap on link actions per plan
    int max_link_charge = 3;          ///< per-action drop/dup/delay charge cap
    std::int64_t max_sever_window = 0;  ///< 0: horizon / 8
  };

  /// Deterministic pseudo-random plan. Storm sizes, trigger choices, FD
  /// corruption and bursts are all drawn from `seed`; the same (seed, space)
  /// always yields the same plan.
  [[nodiscard]] static FaultPlan sample(std::uint64_t seed, const Space& space);

  /// Coverage-guided mutation (the campaign farm's search move): applies one
  /// or two small operators to a copy of this plan — perturb a storm point's
  /// step index or victim, perturb a trigger's delay/occurrence, widen or
  /// narrow the FD corruption window (double/halve gst, clamped to
  /// [1, max_gst]), jitter a burst's window or victim, or add/drop one fault
  /// element within the space's caps. Deterministic in (this, seed, space);
  /// the result always respects `space` (crash cap, burst cap, horizon).
  [[nodiscard]] FaultPlan mutate(std::uint64_t seed, const Space& space) const;

  /// Crossover: a's crash faults (storm + triggers) combined with b's advice
  /// corruption and a seeded interleaving of both plans' bursts, re-clamped
  /// to the space caps. Deterministic in (a, b, seed, space).
  [[nodiscard]] static FaultPlan splice(const FaultPlan& a, const FaultPlan& b,
                                        std::uint64_t seed, const Space& space);
};

/// Wraps an inner scheduler and suppresses each burst's victim while the
/// attempt index (== drive step index) is inside the burst window: the inner
/// scheduler is re-polled (bounded) until it proposes someone else. If the
/// inner scheduler insists on the victim — e.g. a 1-concurrent admission
/// window whose only admitted process IS the victim — the burst yields and
/// the victim steps anyway: a burst may starve a process, never override the
/// inner scheduler's invariants or stall the whole world (finite bursts keep
/// runs eventually fair).
class BurstScheduler final : public Scheduler {
 public:
  BurstScheduler(Scheduler& inner, std::vector<StarvationBurst> bursts)
      : inner_(inner), bursts_(std::move(bursts)) {}

  [[nodiscard]] std::optional<Pid> next(const World& w) override;

 private:
  [[nodiscard]] bool suppressed(Pid pid, std::int64_t step) const;

  Scheduler& inner_;
  std::vector<StarvationBurst> bursts_;
  std::int64_t attempt_ = 0;
};

struct PlanDriveResult {
  DriveResult drive;
  /// Crash points actually applied (storm hits on live processes + resolved
  /// trigger kills), recorded at their application step index — feeding them
  /// to drive_with_crashes replays the faults exactly. Sorted by step_index;
  /// applied_at[i] is the model TIME of applied[i]'s injection, so an
  /// equivalent FailurePattern (crash_time = applied_at) can be built — the
  /// campaign uses it to recompute honest advice over the EFFECTIVE pattern.
  std::vector<CrashPoint> applied;
  std::vector<Time> applied_at;
  /// Link-fault charges actually applied (resolved sever/heal pairs
  /// included, charges against links the world lacks skipped), recorded at
  /// their application step index: tape-ready for ScheduleTape::linkfaults,
  /// replaying byte-identically through drive_with_crashes.
  std::vector<LinkFaultPoint> applied_links;
  int triggers_fired = 0;
};

/// drive() under `plan`'s crash and link faults: storm points apply at their
/// step index, trigger matches arm kills `delay` steps later, both via
/// World::inject_crash; resolved link actions charge the substrate at their
/// step index (charges against links the world does not have are skipped —
/// a plan may be wider than its world). Enables tracing when the plan has
/// triggers (matching reads the trace). Starvation bursts are NOT applied
/// here — wrap the scheduler in a BurstScheduler; advice corruption happens
/// at world construction (FaultPlan::corrupt).
PlanDriveResult drive_with_plan(World& w, Scheduler& sched, std::int64_t max_steps,
                                const FaultPlan& plan);

}  // namespace efd
