// Per-link FIFO channels for the message-passing substrate.
//
// A ChannelFabric owns the mailbox queues of a message-passing world and,
// in daemon (non-eager) mode, one in-flight FIFO per (sender, mailbox) link:
//
//     send  —  eager: message lands directly on the destination mailbox
//              (sends are instantaneous, the subfamily exhaustive
//              exploration certifies over);
//              daemon: message lands on the (sender, mailbox) link's
//              in-flight channel and only a later deliver step moves it
//              onto the mailbox — delivery order/timing is the scheduler's
//              choice, so RecordingScheduler/ReplayScheduler drive it
//              unchanged, and crashing a link's daemon severs the link
//              permanently (a partition is just a set of daemon crashes).
//     recv  —  pops the mailbox head; an empty recv marks the mailbox
//              touched (see Substrate's contract).
//     deliver — pops the link's in-flight head onto the mailbox FIFO.
//
// Hashing: the fabric maintains the same commutative accumulator a
// RegisterFile would if each mailbox were one register holding its pending
// FIFO as a vector Value — per touched mailbox, cell_content_hash(name hash
// of the mailbox address, Value(pending).hash()), summed mod 2^64. That is
// what makes World::state_hash() byte-identical across ShmSubstrate and
// MsgSubstrate for equal mailbox contents. In-flight channel contents are
// NOT hashed: exploration runs eager mode only, and driven (recorded) runs
// never consult state hashes.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/ids.hpp"
#include "sim/regid.hpp"
#include "sim/value.hpp"

namespace efd {

class ChannelFabric {
 public:
  /// `mailboxes[j]` is the register-namespace address of mailbox j; links
  /// are (sender c-index, mailbox slot) pairs addressed via `links` (empty
  /// in eager mode). Duplicate addresses throw std::invalid_argument.
  ChannelFabric(int num_senders, std::vector<RegAddr> mailboxes,
                std::vector<RegAddr> links, bool eager);

  [[nodiscard]] bool eager() const noexcept { return eager_; }
  [[nodiscard]] int num_senders() const noexcept { return num_senders_; }
  [[nodiscard]] int num_mailboxes() const noexcept {
    return static_cast<int>(mailboxes_.size());
  }

  /// One send step. Eager: straight onto the mailbox. Daemon: onto the
  /// (sender, mbox) link's in-flight FIFO — `sender` must then be a
  /// C-process with index < num_senders.
  void send(Pid sender, RegAddr mbox, const Value& msg);

  /// One recv step: pops and returns the mailbox head (Nil when empty; the
  /// mailbox is marked touched either way).
  [[nodiscard]] Value recv(RegAddr mbox);

  /// One deliver step on a link address: moves the link's in-flight head
  /// onto its destination mailbox. Returns the delivered message, Nil when
  /// the channel was empty. Throws std::logic_error in eager mode.
  [[nodiscard]] Value deliver(RegAddr link);

  /// The value the next recv(mbox) returns, without mutating.
  [[nodiscard]] Value peek(RegAddr mbox) const;

  /// Pending FIFO of `mbox` as a vector Value (Nil when never touched);
  /// returns the touched flag. Feeds restore() on explorer backtrack.
  [[nodiscard]] bool state(RegAddr mbox, Value& out) const;

  /// Exact inverse of the one send/recv since (prev, prev_present) was
  /// observed via state() on the same mailbox.
  void restore(RegAddr mbox, const Value& prev, bool prev_present);

  /// Messages sitting in `link`'s in-flight channel (0 in eager mode).
  [[nodiscard]] std::size_t in_flight(RegAddr link) const;
  /// Total undelivered messages across all links.
  [[nodiscard]] std::size_t total_in_flight() const noexcept { return total_in_flight_; }

  /// Commutative accumulator over touched mailboxes (see header comment).
  [[nodiscard]] std::uint64_t hash_acc() const noexcept { return hash_acc_; }

 private:
  struct Mailbox {
    RegAddr addr;
    std::uint64_t name_hash = 0;
    ValueVec pending;
    bool touched = false;
    std::uint64_t term = 0;  ///< current contribution to hash_acc_
  };
  struct Link {
    RegAddr addr;
    int mbox_slot = 0;
    std::deque<Value> in_flight;
  };

  [[nodiscard]] Mailbox& mbox_at(RegAddr addr);
  [[nodiscard]] const Mailbox& mbox_at(RegAddr addr) const;
  /// Recomputes a mailbox's hash term after a pending/touched mutation.
  void rehash(Mailbox& m);

  int num_senders_;
  bool eager_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Link> links_;
  std::unordered_map<RegId, int> mbox_slot_;  ///< RegId -> mailboxes_ index
  std::unordered_map<RegId, int> link_slot_;  ///< RegId -> links_ index
  std::size_t total_in_flight_ = 0;
  std::uint64_t hash_acc_ = 0;
};

}  // namespace efd
