// Per-link FIFO channels for the message-passing substrate.
//
// A ChannelFabric owns the mailbox queues of a message-passing world and,
// in daemon (non-eager) mode, one in-flight FIFO per (sender, mailbox) link:
//
//     send  —  eager: message lands directly on the destination mailbox
//              (sends are instantaneous, the subfamily exhaustive
//              exploration certifies over);
//              daemon: message lands on the (sender, mailbox) link's
//              in-flight channel and only a later deliver step moves it
//              onto the mailbox — delivery order/timing is the scheduler's
//              choice, so RecordingScheduler/ReplayScheduler drive it
//              unchanged, and crashing a link's daemon severs the link
//              permanently (a partition is just a set of daemon crashes).
//     recv  —  pops the mailbox head; an empty recv marks the mailbox
//              touched (see Substrate's contract).
//     deliver — pops the link's in-flight head onto the mailbox FIFO.
//
// Hashing: the fabric maintains the same commutative accumulator a
// RegisterFile would if each mailbox were one register holding its pending
// FIFO as a vector Value — per touched mailbox, cell_content_hash(name hash
// of the mailbox address, Value(pending).hash()), summed mod 2^64. That is
// what makes World::state_hash() byte-identical across ShmSubstrate and
// MsgSubstrate for equal mailbox contents. In-flight channel contents are
// NOT hashed: exploration runs eager mode only, and driven (recorded) runs
// never consult state hashes.
//
// Link faults (PR 10): each daemon-mode link can carry a LinkFaultModel —
// drop-next-k, duplicate-next-k, bounded delay (hold the head for the next
// k deliver steps), a reorder window, and transient sever/heal. Faults are
// CHARGES consumed deterministically at deliver steps in a fixed precedence
// order (severed > empty > delay > reorder pick > pop > drop > dup), so a
// faulty delivery is an ordinary schedulable step and any run is replayed
// exactly by re-charging the same faults at the same step indices — no
// randomness lives in the fabric. Fault state is kept in a sparse side map
// that the hot path consults only through one `empty()` test, so a fabric
// with no charges behaves (and hashes) byte-identically to PR 9's.
// Exploration (eager mode) supports only the STATELESS subset: statically
// lossy (sender, mailbox) pairs whose sends silently vanish — safe under
// explorer undo because a dropped send mutates nothing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/ids.hpp"
#include "sim/regid.hpp"
#include "sim/value.hpp"

namespace efd {

/// The link-fault vocabulary shared by the fabric, the Substrate contract,
/// tape `linkfaults` directives and plan-v1 `link` actions.
enum class LinkFaultKind : std::uint8_t {
  kDrop,     ///< discard the next `amount` popped messages
  kDup,      ///< re-enqueue a copy of the next `amount` popped messages
  kDelay,    ///< hold the head through the next `amount` deliver steps
  kReorder,  ///< next `amount` delivers pop from deeper in the channel
  kSever,    ///< transient partition: deliveries hold until healed
  kHeal,     ///< end a transient sever
};

/// Token <-> kind for tapes and plans ("drop", "dup", "delay", "reorder",
/// "sever", "heal"). parse returns false on an unknown token.
[[nodiscard]] const char* link_fault_token(LinkFaultKind kind) noexcept;
[[nodiscard]] bool parse_link_fault_token(const std::string& tok, LinkFaultKind& out) noexcept;

/// Per-link fault charges (see header comment for consumption order). All
/// counters are small and saturating semantics are the caller's problem —
/// the fabric only ever decrements toward the idle state.
struct LinkFaultModel {
  int drop_next = 0;
  int dup_next = 0;
  int delay_next = 0;
  int reorder_window = 0;
  bool severed = false;

  [[nodiscard]] bool idle() const noexcept {
    return drop_next == 0 && dup_next == 0 && delay_next == 0 && reorder_window == 0 &&
           !severed;
  }
};

/// Fabric-wide tallies of consumed fault charges (monitoring / benches).
struct LinkFaultCounters {
  std::int64_t dropped = 0;      ///< messages discarded at a deliver step
  std::int64_t duplicated = 0;   ///< messages re-enqueued after delivery
  std::int64_t delayed = 0;      ///< deliver steps that held the head
  std::int64_t reordered = 0;    ///< delivers that popped out of FIFO order
  std::int64_t held_severed = 0; ///< deliver steps refused while severed
  std::int64_t lost_sends = 0;   ///< sends swallowed by a lossy pair
};

class ChannelFabric {
 public:
  /// `mailboxes[j]` is the register-namespace address of mailbox j; links
  /// are (sender c-index, mailbox slot) pairs addressed via `links` (empty
  /// in eager mode). Duplicate addresses throw std::invalid_argument.
  ChannelFabric(int num_senders, std::vector<RegAddr> mailboxes,
                std::vector<RegAddr> links, bool eager);

  [[nodiscard]] bool eager() const noexcept { return eager_; }
  [[nodiscard]] int num_senders() const noexcept { return num_senders_; }
  [[nodiscard]] int num_mailboxes() const noexcept {
    return static_cast<int>(mailboxes_.size());
  }

  /// One send step. Eager: straight onto the mailbox. Daemon: onto the
  /// (sender, mbox) link's in-flight FIFO — `sender` must then be a
  /// C-process with index < num_senders.
  void send(Pid sender, RegAddr mbox, const Value& msg);

  /// One recv step: pops and returns the mailbox head (Nil when empty; the
  /// mailbox is marked touched either way).
  [[nodiscard]] Value recv(RegAddr mbox);

  /// One deliver step on a link address: moves the link's in-flight head
  /// onto its destination mailbox. Returns the delivered message, Nil when
  /// the channel was empty. Throws std::logic_error in eager mode.
  [[nodiscard]] Value deliver(RegAddr link);

  /// The value the next recv(mbox) returns, without mutating.
  [[nodiscard]] Value peek(RegAddr mbox) const;

  /// Pending FIFO of `mbox` as a vector Value (Nil when never touched);
  /// returns the touched flag. Feeds restore() on explorer backtrack.
  [[nodiscard]] bool state(RegAddr mbox, Value& out) const;

  /// Exact inverse of the one send/recv since (prev, prev_present) was
  /// observed via state() on the same mailbox.
  void restore(RegAddr mbox, const Value& prev, bool prev_present);

  /// Messages sitting in `link`'s in-flight channel (0 in eager mode).
  [[nodiscard]] std::size_t in_flight(RegAddr link) const;
  /// Total undelivered messages across all links.
  [[nodiscard]] std::size_t total_in_flight() const noexcept { return total_in_flight_; }

  /// Adds `amount` fault charges of `kind` to a daemon-mode link (sever /
  /// heal ignore the amount). Throws std::logic_error in eager mode and
  /// std::out_of_range on an unknown link.
  void charge_fault(RegAddr link, LinkFaultKind kind, int amount);

  /// Marks the (sender c-index, mailbox) pair statically lossy: its sends
  /// are silently swallowed (both modes; the only fault eager exploration
  /// supports — it never mutates state, so explorer undo stays exact).
  void set_lossy(int sender, RegAddr mbox, bool lossy);

  /// Current fault charges of a link (idle model when never charged).
  [[nodiscard]] LinkFaultModel link_faults(RegAddr link) const;
  /// True iff no link carries charges and no pair is lossy.
  [[nodiscard]] bool faults_idle() const noexcept {
    return link_faults_.empty() && lossy_.empty();
  }
  [[nodiscard]] const LinkFaultCounters& fault_counters() const noexcept { return fault_counters_; }

  /// Commutative accumulator over touched mailboxes (see header comment).
  [[nodiscard]] std::uint64_t hash_acc() const noexcept { return hash_acc_; }

 private:
  struct Mailbox {
    RegAddr addr;
    std::uint64_t name_hash = 0;
    ValueVec pending;
    bool touched = false;
    std::uint64_t term = 0;  ///< current contribution to hash_acc_
  };
  struct Link {
    RegAddr addr;
    int mbox_slot = 0;
    std::deque<Value> in_flight;
  };

  [[nodiscard]] Mailbox& mbox_at(RegAddr addr);
  [[nodiscard]] const Mailbox& mbox_at(RegAddr addr) const;
  /// Recomputes a mailbox's hash term after a pending/touched mutation.
  void rehash(Mailbox& m);
  /// deliver() with a non-idle fault model on the link; erases the map entry
  /// once the model drains back to idle.
  Value faulty_deliver(Link& l, int slot);

  int num_senders_;
  bool eager_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Link> links_;
  std::unordered_map<RegId, int> mbox_slot_;  ///< RegId -> mailboxes_ index
  std::unordered_map<RegId, int> link_slot_;  ///< RegId -> links_ index
  std::size_t total_in_flight_ = 0;
  std::uint64_t hash_acc_ = 0;
  std::unordered_map<int, LinkFaultModel> link_faults_;  ///< links_ index -> charges
  std::vector<std::uint64_t> lossy_;  ///< packed (sender, mbox slot) lossy pairs
  LinkFaultCounters fault_counters_;
};

}  // namespace efd
