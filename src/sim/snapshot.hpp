// Snapshot objects built from read/write registers.
//
// Two classic constructions the simulation layer offers to algorithms:
//
//  * versioned atomic snapshot — single-writer registers hold [seq, value];
//    a repeated double collect that sees two identical collects is a
//    linearizable snapshot (identical collects of versioned registers pin a
//    linearization point between them, with no ABA because seq grows).
//    Lock-free: a snapshot can be delayed only by concurrent writes.
//
//  * one-shot immediate snapshot (Borowsky–Gafni) — every participant writes
//    its value once and obtains a view such that views are totally ordered
//    by containment, contain their owner, and satisfy immediacy
//    (q ∈ view_p ⇒ view_q ⊆ view_p). This is the object behind the
//    participating-set task and BG-style simulations.
#pragma once

#include "sim/proc.hpp"

namespace efd {

/// Writes [next-seq, v] to reg(base, me). One register write per call plus
/// one read to learn the current sequence number (2 steps).
Co<void> versioned_write(Context& ctx, Sym base, int me, Value v);

/// Linearizable snapshot of the n versioned registers at `base`; returns the
/// n current values (Nil where never written), stripped of seq numbers.
Co<Value> atomic_snapshot(Context& ctx, Sym base, int n);

/// One-shot immediate snapshot for participant `me` of n, contributing `v`.
/// Uses the level registers reg(sym(ns + "/R"), p). Returns an n-vector with
/// the contribution of every process in the view (Nil outside the view).
/// Classic descending-level algorithm: O(n^2) steps.
Co<Value> immediate_snapshot(Context& ctx, Sym ns_r, int me, int n, Value v);

/// String conveniences (intern per call; hot paths hoist the Sym).
inline Co<void> versioned_write(Context& ctx, const std::string& base, int me, Value v) {
  return versioned_write(ctx, sym(base), me, std::move(v));
}
inline Co<Value> atomic_snapshot(Context& ctx, const std::string& base, int n) {
  return atomic_snapshot(ctx, sym(base), n);
}
inline Co<Value> immediate_snapshot(Context& ctx, const std::string& ns, int me, int n, Value v) {
  return immediate_snapshot(ctx, sym(ns + "/R"), me, n, std::move(v));
}

/// View-shape checkers used by the property tests and the participating-set
/// task: all on n-vectors with Nil outside the view.
[[nodiscard]] bool view_contains(const Value& view, int id);
[[nodiscard]] bool view_subset(const Value& a, const Value& b);
[[nodiscard]] int view_size(const Value& view);

}  // namespace efd
