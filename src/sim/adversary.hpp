// Adversarial schedulers: targeted worst-case interleavings.
//
// The fair and random schedulers exercise the common case; impossibility-
// flavored experiments need schedules crafted against an algorithm's
// structure. Two reusable adversaries:
//
//  * LockstepScheduler — single-steps a chosen set of processes in strict
//    rotation. Against ballot/flag protocols this maximizes preemption
//    (paxos livelock, naive-renaming flipping); it is the schedule family
//    behind the Fig. 1 hunt.
//
//  * SuppressScheduler — wraps another scheduler but refuses to schedule a
//    (dynamically chosen) set of processes: crash-like starvation of
//    C-processes, which the model permits (a C-process may simply stop
//    taking steps) and wait-freedom must tolerate.
#pragma once

#include <functional>
#include <vector>

#include "sim/schedule.hpp"

namespace efd {

/// Strict single-step rotation over a fixed pid list (skips pids that are
/// crashed or terminated; exhausted when none can step).
class LockstepScheduler final : public Scheduler {
 public:
  explicit LockstepScheduler(std::vector<Pid> pids) : pids_(std::move(pids)) {}

  [[nodiscard]] std::optional<Pid> next(const World& w) override {
    for (std::size_t tries = 0; tries < pids_.size(); ++tries) {
      const Pid cand = pids_[cursor_ % pids_.size()];
      ++cursor_;
      if (w.alive(cand) && !w.terminated(cand)) return cand;
    }
    return std::nullopt;
  }

 private:
  std::vector<Pid> pids_;
  std::size_t cursor_ = 0;
};

/// Filters an inner scheduler: pids for which `suppressed` returns true are
/// never scheduled. The inner scheduler is polled (bounded retries) until it
/// yields an allowed pid; if the polls run dry while the world still has a
/// schedulable non-suppressed process, that process is scheduled directly.
/// Without the fallback a fair inner scheduler over a mostly-suppressed pid
/// set could spuriously return nullopt — reported upstream as schedule
/// exhaustion even though eligible processes remained (e.g. an inner
/// LockstepScheduler whose whole rotation is suppressed never proposes the
/// eligible outsider at all).
class SuppressScheduler final : public Scheduler {
 public:
  SuppressScheduler(Scheduler& inner, std::function<bool(Pid, const World&)> suppressed)
      : inner_(inner), suppressed_(std::move(suppressed)) {}

  [[nodiscard]] std::optional<Pid> next(const World& w) override {
    for (int tries = 0; tries < 256; ++tries) {
      const auto pid = inner_.next(w);
      if (!pid) return std::nullopt;
      if (!suppressed_(*pid, w)) return pid;
    }
    // The inner scheduler kept proposing suppressed pids. Consult the world
    // directly (rotating for fairness) before declaring exhaustion.
    const auto pids = w.pids();
    for (std::size_t tries = 0; tries < pids.size(); ++tries) {
      const Pid cand = pids[fallback_cursor_ % pids.size()];
      ++fallback_cursor_;
      if (w.alive(cand) && !w.terminated(cand) && !suppressed_(cand, w)) return cand;
    }
    return std::nullopt;
  }

 private:
  Scheduler& inner_;
  std::function<bool(Pid, const World&)> suppressed_;
  std::size_t fallback_cursor_ = 0;
};

}  // namespace efd
