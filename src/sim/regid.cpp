#include "sim/regid.hpp"

#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace efd {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Transparent string hashing for map lookups without temporary strings.
struct StrHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return static_cast<std::size_t>(fnv1a(s));
  }
};

struct AddrKey {
  std::uint32_t sym;
  std::int32_t i, j, k;  // unused trailing indices are -1
  friend bool operator==(const AddrKey& a, const AddrKey& b) noexcept {
    return a.sym == b.sym && a.i == b.i && a.j == b.j && a.k == b.k;
  }
};

struct AddrKeyHash {
  std::size_t operator()(const AddrKey& a) const noexcept {
    // splitmix64-style integer mix over the packed fields.
    std::uint64_t x = (static_cast<std::uint64_t>(a.sym) << 32) ^
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.i)));
    x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.j)) * 0x9E3779B97F4A7C15ULL;
    x ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.k)) * 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Fast-path size of the per-symbol dense child cache for reg(base, i):
/// indices below this resolve by plain array lookup.
constexpr std::size_t kDenseChildren = 1024;

/// Process-global append-only interner. Thread-safe: the parallel frontier
/// explorer runs many Worlds concurrently, all resolving register addresses
/// through this table. Reads (the overwhelmingly common case once a program
/// is warmed up) take a shared lock; the first resolution of a new name
/// upgrades to an exclusive lock, re-checks, and appends. Entry storage uses
/// std::deque so references returned to callers (reg_name) stay valid across
/// concurrent appends; ids are handed out densely and never change.
class Interner {
 public:
  static Interner& instance() {
    static Interner it;
    return it;
  }

  std::uint32_t sym_id(std::string_view name) {
    {
      std::shared_lock lk(mu_);
      const auto hit = sym_ids_.find(name);
      if (hit != sym_ids_.end()) return hit->second;
    }
    std::unique_lock lk(mu_);
    const auto hit = sym_ids_.find(name);
    if (hit != sym_ids_.end()) return hit->second;
    const auto id = static_cast<std::uint32_t>(syms_.size());
    syms_.push_back(SymEntry{std::string(name), kInvalidRegId, {}});
    sym_ids_.emplace(syms_.back().name, id);
    return id;
  }

  const std::string& sym_name(std::uint32_t id) const {
    std::shared_lock lk(mu_);
    return syms_.at(id).name;
  }

  RegId resolve0(std::uint32_t s) {
    {
      std::shared_lock lk(mu_);
      const RegId id = syms_.at(s).self;
      if (id != kInvalidRegId) return id;
    }
    std::unique_lock lk(mu_);
    SymEntry& e = syms_.at(s);
    if (e.self == kInvalidRegId) e.self = intern_name_locked(e.name);
    return e.self;
  }

  RegId resolve1(std::uint32_t s, int i) {
    if (i >= 0 && static_cast<std::size_t>(i) < kDenseChildren) {
      {
        std::shared_lock lk(mu_);
        const SymEntry& e = syms_.at(s);
        if (static_cast<std::size_t>(i) < e.children.size()) {
          const RegId id = e.children[static_cast<std::size_t>(i)];
          if (id != kInvalidRegId) return id;
        }
      }
      std::unique_lock lk(mu_);
      SymEntry& e = syms_.at(s);
      if (static_cast<std::size_t>(i) >= e.children.size()) {
        e.children.resize(static_cast<std::size_t>(i) + 1, kInvalidRegId);
      }
      RegId& slot = e.children[static_cast<std::size_t>(i)];
      if (slot == kInvalidRegId) slot = intern_name_locked(render_locked(s, i, nullptr, nullptr));
      return slot;
    }
    return resolve_slow(AddrKey{s, i, -1, -1});
  }

  RegId resolve2(std::uint32_t s, int i, int j) { return resolve_slow(AddrKey{s, i, j, -1}); }

  RegId resolve3(std::uint32_t s, int i, int j, int k) {
    return resolve_slow(AddrKey{s, i, j, k});
  }

  RegId intern_name(std::string_view name) {
    {
      std::shared_lock lk(mu_);
      const auto hit = by_name_.find(name);
      if (hit != by_name_.end()) return hit->second;
    }
    std::unique_lock lk(mu_);
    return intern_name_locked(name);
  }

  const std::string& reg_name(RegId id) const {
    std::shared_lock lk(mu_);
    return regs_.at(id).name;
  }
  std::uint64_t reg_name_hash(RegId id) const {
    std::shared_lock lk(mu_);
    return regs_.at(id).name_hash;
  }
  std::size_t count() const noexcept {
    std::shared_lock lk(mu_);
    return regs_.size();
  }

 private:
  struct SymEntry {
    std::string name;
    RegId self;                   ///< arity-0 RegId, lazily interned
    std::vector<RegId> children;  ///< reg(base, i) fast path for small i
  };
  struct RegEntry {
    std::string name;        ///< canonical register name
    std::uint64_t name_hash; ///< FNV-1a of `name`; stable across processes
  };

  /// Precondition: exclusive lock held.
  RegId intern_name_locked(std::string_view name) {
    const auto hit = by_name_.find(name);
    if (hit != by_name_.end()) return hit->second;
    const auto id = static_cast<RegId>(regs_.size());
    if (id == kInvalidRegId) throw std::length_error("register interner exhausted");
    regs_.push_back(RegEntry{std::string(name), fnv1a(name)});
    by_name_.emplace(regs_.back().name, id);
    return id;
  }

  RegId resolve_slow(const AddrKey& key) {
    {
      std::shared_lock lk(mu_);
      const auto hit = by_addr_.find(key);
      if (hit != by_addr_.end()) return hit->second;
    }
    std::unique_lock lk(mu_);
    const auto hit = by_addr_.find(key);
    if (hit != by_addr_.end()) return hit->second;
    const RegId id = intern_name_locked(render_locked(
        key.sym, key.i, key.j >= 0 ? &key.j : nullptr, key.k >= 0 ? &key.k : nullptr));
    by_addr_.emplace(key, id);
    return id;
  }

  /// Precondition: a lock (shared suffices) is held.
  std::string render_locked(std::uint32_t s, int i, const std::int32_t* j,
                            const std::int32_t* k) {
    std::string out = syms_.at(s).name;
    out += '[';
    out += std::to_string(i);
    out += ']';
    if (j != nullptr) {
      out += '[';
      out += std::to_string(*j);
      out += ']';
    }
    if (k != nullptr) {
      out += '[';
      out += std::to_string(*k);
      out += ']';
    }
    return out;
  }

  // Map keys are owned copies; transparent hashing lets lookups run on
  // string_views without building a temporary std::string. Entry storage is
  // a deque so concurrent readers can keep references across later appends.
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::uint32_t, StrHash, std::equal_to<>> sym_ids_;
  std::deque<SymEntry> syms_;
  std::unordered_map<std::string, RegId, StrHash, std::equal_to<>> by_name_;
  std::unordered_map<AddrKey, RegId, AddrKeyHash> by_addr_;
  std::deque<RegEntry> regs_;
};

}  // namespace

Sym sym(std::string_view name) { return Sym{Interner::instance().sym_id(name)}; }

const std::string& Sym::name() const { return Interner::instance().sym_name(id_); }

RegAddr::RegAddr(const std::string& name)
    : id_(Interner::instance().intern_name(name)) {}
RegAddr::RegAddr(const char* name) : id_(Interner::instance().intern_name(name)) {}
RegAddr::RegAddr(std::string_view name) : id_(Interner::instance().intern_name(name)) {}

const std::string& RegAddr::name() const { return Interner::instance().reg_name(id_); }
std::uint64_t RegAddr::name_hash() const { return Interner::instance().reg_name_hash(id_); }

RegAddr reg(Sym base) { return RegAddr::from_id(Interner::instance().resolve0(base.id())); }
RegAddr reg(Sym base, int i) {
  // (sym, index) -> RegId is append-only and immutable once resolved, so a
  // tiny direct-mapped thread-local memo can skip the interner's shared
  // lock: collect() resolves the same handful of addresses millions of
  // times per exploration sweep, and two atomic ops per resolve dominated
  // the interner's cost. Stale entries are impossible; collisions just
  // fall through to the interner.
  struct Memo {
    std::uint64_t tag;  // key + 1; 0 marks an empty slot
    RegId id;
  };
  static thread_local Memo memo[256] = {};
  const std::uint64_t key =
      ((static_cast<std::uint64_t>(base.id()) << 32) |
       static_cast<std::uint64_t>(static_cast<std::uint32_t>(i))) + 1;
  Memo& m = memo[(key * 0x9E3779B97F4A7C15ULL) >> 56];
  if (m.tag == key) return RegAddr::from_id(m.id);
  const RegId id = Interner::instance().resolve1(base.id(), i);
  m.tag = key;
  m.id = id;
  return RegAddr::from_id(id);
}
RegAddr reg2(Sym base, int i, int j) {
  return RegAddr::from_id(Interner::instance().resolve2(base.id(), i, j));
}
RegAddr reg3(Sym base, int i, int j, int k) {
  return RegAddr::from_id(Interner::instance().resolve3(base.id(), i, j, k));
}

RegAddr reg(const std::string& base, int i) { return reg(sym(base), i); }
RegAddr reg2(const std::string& base, int i, int j) { return reg2(sym(base), i, j); }
RegAddr reg3(const std::string& base, int i, int j, int k) { return reg3(sym(base), i, j, k); }

std::size_t interned_register_count() { return Interner::instance().count(); }
const std::string& reg_name(RegId id) { return Interner::instance().reg_name(id); }
std::uint64_t reg_name_hash(RegId id) { return Interner::instance().reg_name_hash(id); }

}  // namespace efd
