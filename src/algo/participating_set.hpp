// Wait-free solver for the participating-set task: one-shot immediate
// snapshot (sim/snapshot.hpp). Restricted algorithm — no S-processes, no
// advice, any concurrency: the constructive witness that the task sits in
// class n of the Thm. 10 hierarchy.
#pragma once

#include "sim/world.hpp"

namespace efd {

struct ParticipatingSetConfig {
  std::string ns = "ps";
  int n = 0;
};

/// C-process p_{i+1}: contributes its input to the immediate snapshot and
/// decides the view (a sorted Vec of participant ids).
ProcBody make_participating_set_solver(ParticipatingSetConfig cfg, Value input);

}  // namespace efd
