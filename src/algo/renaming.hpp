// The k-concurrent (j, j+k-1)-renaming algorithm (Fig. 4, Thm. 15).
//
// A restricted algorithm (S-processes take only null steps) that mimics the
// wait-free (j, 2j-1)-renaming of Attiya et al.: each process repeatedly
// suggests a name, publishes (id, suggestion, contending-bit), and on
// conflict re-suggests the r-th name not suggested by others, where r is its
// rank among the not-yet-decided participants. In k-concurrent runs the rank
// is at most k and at most j-1 foreign suggestions exist, so every chosen
// name is at most j+k-1; Thm. 16 then gives solvability with ¬Ωk.
#pragma once

#include "sim/world.hpp"

namespace efd {

struct RenamingConfig {
  std::string ns = "ren";
  int n = 0;  ///< total C-processes (register width)
};

/// Body of C-process p_{i+1} with original name `input` (the algorithm keys
/// on the register index i, as in the paper; the original name is written
/// alongside for the record).
ProcBody make_renaming_kconc(RenamingConfig cfg, Value input);

}  // namespace efd
