// EFD consensus with Ω advice (paper §2.3, Prop. 6 with k = 1).
//
// C-process p_i writes its proposal to ns/In[i] and busy-waits on the
// decision register — it depends only on S-processes taking steps, never on
// other C-processes, so progress is wait-free in the EFD sense. Each
// S-process queries Ω; whoever is leader repeatedly drives Paxos ballots,
// proposing the first published input it sees. After Ω stabilizes on one
// correct S-process, that leader's ballot eventually dominates and the
// instance decides; Paxos keeps agreement/validity safe during the chaotic
// pre-GST period.
#pragma once

#include "algo/paxos.hpp"
#include "sim/world.hpp"

namespace efd {

struct LeaderConsensusConfig {
  std::string ns = "cons";
  int n = 0;  ///< number of C-processes = number of S-processes (actors)
};

/// Body of C-process p_{i+1} proposing `input`.
ProcBody make_consensus_client(LeaderConsensusConfig cfg, Value input);

/// Body of S-process q_{i+1}; queries Ω (history must emit Int S-ids).
ProcBody make_consensus_server(LeaderConsensusConfig cfg);

/// Ablation variant of the server: instead of Paxos ballots, the leader runs
/// rounds of adopt-commit objects (one per round), carrying the adopted
/// value forward and publishing the decision on commit. Same interface and
/// client; compared against the Paxos server in bench E12. Safety argument:
/// commit in round r fixes the value every later round can adopt or commit.
ProcBody make_consensus_server_ac(LeaderConsensusConfig cfg);

}  // namespace efd
