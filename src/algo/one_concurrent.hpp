// The generic 1-concurrent solver (Prop. 1, Appendix A).
//
// Every task is 1-concurrently solvable: a process (1) writes its input,
// (2) collects the inputs written so far, (3) collects the outputs already
// chosen, and (4) extends the output vector using the task's sequential
// specification (Task::pick_output). In 1-concurrent runs processes execute
// these four phases without interleaving, so the inductive argument of
// Appendix A applies verbatim. This is a *restricted* algorithm: S-processes
// take only null steps.
#pragma once

#include "sim/proc.hpp"
#include "sim/world.hpp"
#include "tasks/task.hpp"

namespace efd {

/// Register bases used by the solver (shared with the extraction harness,
/// which simulates this algorithm): inputs at ns/In[i], outputs at ns/Out[i].
struct OneConcurrentRegs {
  Sym in_base;
  Sym out_base;
  explicit OneConcurrentRegs(const std::string& ns)
      : in_base(sym(ns + "/In")), out_base(sym(ns + "/Out")) {}
};

/// Body of C-process p_{i+1} solving `task` with input `input`. Takes the
/// pre-interned register bases by value (8 trivially-copyable bytes): the
/// incremental explorer respawns bodies ~10^5 times per sweep, and interning
/// "ns/In"/"ns/Out" inside the coroutine put two string builds plus two
/// interner lookups on every respawn.
Proc one_concurrent_solver(Context& ctx, TaskPtr task, Value input, OneConcurrentRegs regs);

/// Convenience factory binding (task, input, namespace) into a ProcBody.
ProcBody make_one_concurrent(TaskPtr task, Value input, std::string ns = "p1c");

}  // namespace efd
