#include "algo/renaming_1resilient.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/memory.hpp"

namespace efd {
namespace {

Proc one_resilient_wrapper(Context& ctx, OneResilientConfig cfg, SimProgramPtr inner,
                           Value input) {
  const int i = ctx.pid().index;
  const Sym w_base = sym(cfg.ns + "/W");
  const RegAddr my_w = reg(w_base, i);
  co_await ctx.write(my_w, Value(1));  // register participation

  Value st = inner->init(i, input);
  std::optional<Value> name;

  while (!name) {
    const Value wv = co_await collect(ctx, w_base, cfg.n);
    std::vector<int> participants;  // S  = {ℓ | R_ℓ ≠ ⊥}
    std::vector<int> undecided;     // S' = {ℓ | R_ℓ = 1}
    for (int l = 0; l < cfg.n; ++l) {
      const Value w = wv.at(static_cast<std::size_t>(l));
      if (w.is_nil()) continue;
      participants.push_back(l);
      if (w.int_or(0) == 1) undecided.push_back(l);
    }
    if (undecided.empty()) break;  // we decided concurrently with the collect? impossible: we're undecided
    const int min1 = undecided.front();
    const int min2 = undecided.size() >= 2 ? undecided[1] : min1;

    const auto sz = static_cast<int>(participants.size());
    const bool my_turn = (sz == cfg.j && (i == min1 || i == min2)) ||
                         (sz == cfg.j - 1 && i == min1);
    if (!my_turn) {
      co_await ctx.yield();
      continue;
    }

    // One more step of A.
    const SimAction act = inner->action(st);
    Value result;
    switch (act.kind) {
      case SimAction::Kind::kRead:
        result = co_await ctx.read(act.addr);
        break;
      case SimAction::Kind::kWrite:
        co_await ctx.write(act.addr, act.value);
        break;
      case SimAction::Kind::kYield:
        co_await ctx.yield();
        break;
      case SimAction::Kind::kDecide:
        co_await ctx.yield();  // the decide itself is a wrapper-level step
        name = act.value;
        break;
      case SimAction::Kind::kQuery:
        throw std::logic_error("one_resilient_wrapper: restricted algorithm may not query a FD");
      case SimAction::Kind::kHalt:
        throw std::logic_error("one_resilient_wrapper: inner algorithm halted without deciding");
    }
    st = inner->transition(st, result);
  }

  co_await ctx.write(my_w, Value(0));  // declare decided, depart
  co_await ctx.decide(*name);
}

}  // namespace

ProcBody make_one_resilient_wrapper(OneResilientConfig cfg, SimProgramPtr inner, Value input) {
  return [cfg = std::move(cfg), inner = std::move(inner), input = std::move(input)](Context& ctx) {
    return one_resilient_wrapper(ctx, cfg, inner, input);
  };
}

}  // namespace efd
