// Simulating k codes with →Ωk (Fig. 2, Thm. 14).
//
// n C-process simulators jointly execute k simulated codes p'_1..p'_k. The
// result of every simulated READ is fixed by one leader-based consensus
// instance cons(j, ℓ) per (code, read-index); deterministic actions (writes,
// local steps, decides) need no agreement and are replayed by every simulator
// (same write-once contract as BG-simulation). The leader of code j's
// consensus instances is
//   * the j-th smallest registered simulator while at most k simulators are
//     registered (a C-process actor), and
//   * the S-process named by slot j of →Ωk otherwise
// — evaluated locally from the registration registers and the →Ωk slots the
// S-processes keep published. Both C- and S-processes share one Paxos actor
// id space (C i -> i, S i -> n+i), so either kind can drive an instance, as
// in the paper's query/response consensus. Thm. 14: in every environment at
// least one simulated code takes infinitely many steps, and if ℓ simulators
// participate at most min(k, ℓ) codes do.
#pragma once

#include <functional>

#include "algo/sim_program.hpp"
#include "sim/world.hpp"

namespace efd {

struct KCodesConfig {
  std::string ns = "kc";
  int n = 0;        ///< simulators (C) = S-processes
  int k = 0;        ///< number of simulated codes
  SimProgramPtr code;  ///< program each code runs (index = code id)
  ValueVec inputs;     ///< inputs[j] = input of code j (size k)

  /// When non-empty, simulator i departs with the value of reg(poll_base, i)
  /// once that register becomes non-⊥, instead of harvesting the codes' own
  /// decisions. This is how the Thm. 9 double simulation returns each
  /// process its OWN task decision: the simulated codes are BG-simulators
  /// that publish per-task-process decisions to poll_base.
  std::string poll_base;
};

/// Same shape as BgHarvest: Nil = keep simulating, otherwise the simulator's
/// own decision extracted from the codes' decision vector ns/dec[0..k-1].
using KCodesHarvest = std::function<Value(const ValueVec& code_decisions)>;

/// C-process p_{i+1}: registers, advances codes, drives consensus instances
/// it leads; departs (R_i := 0) once `harvest` yields its decision.
ProcBody make_kcodes_simulator(KCodesConfig cfg, KCodesHarvest harvest);

/// S-process q_{i+1}: publishes its →Ωk slots and drives the consensus
/// instances its slots make it lead, echoing published estimates.
ProcBody make_kcodes_server(KCodesConfig cfg);

/// Steps (agreed reads) of code j as currently published at ns/steps[j].
[[nodiscard]] std::int64_t kcodes_progress(const World& w, const KCodesConfig& cfg, int j);

}  // namespace efd
