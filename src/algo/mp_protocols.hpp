// Message-passing protocols (the minimal algorithm port for the second
// substrate; sim/msg_world.hpp).
//
// * FloodMin k-set agreement — each process floods (index, input) to every
//   mailbox, then drains its own inbox until it has heard n - f distinct
//   senders (itself counted from the start: a process knows its own input)
//   and decides the minimum value heard. Any
//   (n-f)-subset of the inputs contains one of the f+1 smallest, so the
//   protocol solves k-set agreement for every k >= f + 1; for k <= f an
//   asynchronous adversary can hand each process a different subset and
//   reach k+1 distinct decisions — the Biely-Robinson-Schmid impossibility
//   boundary E19 mechanizes (unsolvable side: exploration finds the
//   violation; solvable side: exploration certifies clean).
//
// * Flooding consensus with Omega — clients flood their proposal to every
//   server's mailbox; servers (S-processes 0..n_servers-1, crash-prone,
//   advice-querying) adopt the first proposal they receive and, while the
//   advice names them leader, run rounds of the repo's proven adopt-commit
//   ballot over shared registers, writing committed values to ns + "/DEC";
//   clients busy-wait on DEC. Message passing carries dissemination, the
//   register adopt-commit carries safety — the hybrid the "port the
//   algorithm layer minimally" tentpole asks for. Safety holds under
//   arbitrary advice lies; liveness needs an eventually-accurate leader
//   among the servers (place servers at S-indices 0..n_servers-1, link
//   daemons above them, so an Omega-style detector elects a server).
//
// * Lossy-link variants (PR 10) — FloodMin above never times out, so
//   message LOSS cannot break its safety, only its liveness. The timeout
//   variant (make_floodmin_timeout) is the realistic protocol that decides
//   the minimum heard SO FAR after a patience of consecutive empty polls:
//   correct on reliable links, violated under drop storms (three processes
//   starved into three distinct decisions break 2-set agreement) — E20's
//   raw target. The retransmission-hardened variant (make_floodmin_rt)
//   layers an ack/retransmit reliable broadcast under the same decision
//   rule: DATA vec(0, sender, seq, value) is dedup'd by (sender, seq) and
//   ALWAYS acked with vec(1, acker, seq) (a duplicate's ack may be the one
//   that survives); a sender retransmits to still-unacked peers after a
//   doubling backoff of empty polls, bounded rounds. It only decides after
//   hearing n - f senders, so it stays safe AND live under any storm whose
//   per-link drop budget is below the retry budget. The consensus client
//   gets the same treatment (make_mp_consensus_client_rt).
//
// All bodies speak ctx.send/ctx.recv only — the SAME body runs on
// ShmSubstrate (registers-as-mailboxes) and MsgSubstrate, which is the
// differential axis tests/test_substrate.cpp sweeps.
#pragma once

#include "sim/msg_world.hpp"
#include "sim/world.hpp"

namespace efd {

struct FloodMinConfig {
  int n = 3;  ///< processes (mailboxes mb[0..n-1], one per process)
  int f = 1;  ///< tolerated crashes: decide after hearing n - f senders
};

/// C-process index `index` of the FloodMin protocol, proposing `input`.
[[nodiscard]] ProcBody make_floodmin(FloodMinConfig cfg, int index, Value input);

/// FloodMin with a decision timeout: after `patience` consecutive empty
/// polls the process gives up waiting and decides the minimum heard so far
/// (the counter resets on every non-empty poll). Correct when every flooded
/// message arrives; under message loss it can decide on fewer than n - f
/// inputs and break k-set agreement — E20's deliberately lossy-unsafe
/// protocol. Driven runs only (under exhaustive exploration an empty-inbox
/// recv blocks, so the timeout never fires).
[[nodiscard]] ProcBody make_floodmin_timeout(FloodMinConfig cfg, int index, Value input,
                                             int patience = 16);

/// Retransmission parameters of the ack/retransmit-hardened bodies. Backoff
/// is expressed in the process's OWN empty polls (model steps), not time:
/// the first retransmit fires after `initial_backoff` consecutive empty
/// polls, the next after twice that, for at most `max_rounds` rounds.
struct RetransmitConfig {
  int initial_backoff = 16;
  int max_rounds = 12;
};

/// Retransmission-hardened FloodMin: same decision rule as make_floodmin
/// (min after n - f distinct senders — never decides early), carried over
/// an ack/retransmit layer with (sender, seq) dedup. Safe unconditionally;
/// live whenever every link's drop budget is below the retry budget. After
/// deciding, runs a bounded helper phase acking peers' retransmits so they
/// can stop too.
[[nodiscard]] ProcBody make_floodmin_rt(FloodMinConfig cfg, int index, Value input,
                                        RetransmitConfig rt = {});

struct MpConsensusConfig {
  std::string ns = "mpc";  ///< register namespace (DEC + adopt-commit rounds)
  int n_servers = 2;       ///< S-servers; their inboxes are mb[0..n_servers-1]
};

/// Client p_{index+1}: floods vec(index, input) to every server mailbox,
/// then busy-waits on ns + "/DEC" and decides its value.
[[nodiscard]] ProcBody make_mp_consensus_client(MpConsensusConfig cfg, Value input);

/// Server q_{j+1} (spawn at S-index j < n_servers): adopts the first
/// proposal from its inbox, then drives adopt-commit rounds while leading.
[[nodiscard]] ProcBody make_mp_consensus_server(MpConsensusConfig cfg);

/// make_mp_consensus_client hardened against proposal loss: while DEC is
/// still Nil, refloods its proposal to every server mailbox after a
/// doubling backoff of empty DEC reads (bounded rounds). Safety is the
/// servers' adopt-commit's; the retransmits only restore dissemination.
[[nodiscard]] ProcBody make_mp_consensus_client_rt(MpConsensusConfig cfg, Value input,
                                                   RetransmitConfig rt = {});

}  // namespace efd
