// Message-passing protocols (the minimal algorithm port for the second
// substrate; sim/msg_world.hpp).
//
// * FloodMin k-set agreement — each process floods (index, input) to every
//   mailbox, then drains its own inbox until it has heard n - f distinct
//   senders (itself counted from the start: a process knows its own input)
//   and decides the minimum value heard. Any
//   (n-f)-subset of the inputs contains one of the f+1 smallest, so the
//   protocol solves k-set agreement for every k >= f + 1; for k <= f an
//   asynchronous adversary can hand each process a different subset and
//   reach k+1 distinct decisions — the Biely-Robinson-Schmid impossibility
//   boundary E19 mechanizes (unsolvable side: exploration finds the
//   violation; solvable side: exploration certifies clean).
//
// * Flooding consensus with Omega — clients flood their proposal to every
//   server's mailbox; servers (S-processes 0..n_servers-1, crash-prone,
//   advice-querying) adopt the first proposal they receive and, while the
//   advice names them leader, run rounds of the repo's proven adopt-commit
//   ballot over shared registers, writing committed values to ns + "/DEC";
//   clients busy-wait on DEC. Message passing carries dissemination, the
//   register adopt-commit carries safety — the hybrid the "port the
//   algorithm layer minimally" tentpole asks for. Safety holds under
//   arbitrary advice lies; liveness needs an eventually-accurate leader
//   among the servers (place servers at S-indices 0..n_servers-1, link
//   daemons above them, so an Omega-style detector elects a server).
//
// Both bodies speak ctx.send/ctx.recv only — the SAME body runs on
// ShmSubstrate (registers-as-mailboxes) and MsgSubstrate, which is the
// differential axis tests/test_substrate.cpp sweeps.
#pragma once

#include "sim/msg_world.hpp"
#include "sim/world.hpp"

namespace efd {

struct FloodMinConfig {
  int n = 3;  ///< processes (mailboxes mb[0..n-1], one per process)
  int f = 1;  ///< tolerated crashes: decide after hearing n - f senders
};

/// C-process index `index` of the FloodMin protocol, proposing `input`.
[[nodiscard]] ProcBody make_floodmin(FloodMinConfig cfg, int index, Value input);

struct MpConsensusConfig {
  std::string ns = "mpc";  ///< register namespace (DEC + adopt-commit rounds)
  int n_servers = 2;       ///< S-servers; their inboxes are mb[0..n_servers-1]
};

/// Client p_{index+1}: floods vec(index, input) to every server mailbox,
/// then busy-waits on ns + "/DEC" and decides its value.
[[nodiscard]] ProcBody make_mp_consensus_client(MpConsensusConfig cfg, Value input);

/// Server q_{j+1} (spawn at S-index j < n_servers): adopts the first
/// proposal from its inbox, then drives adopt-commit rounds while leading.
[[nodiscard]] ProcBody make_mp_consensus_server(MpConsensusConfig cfg);

}  // namespace efd
