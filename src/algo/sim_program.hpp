// Simulable process programs.
//
// Simulation-based computing is the engine of the paper: BG-simulation
// (Thm. 7), the k-codes simulation of Fig. 2, the Asim construction and
// corridor DFS of Fig. 1 all need to advance OTHER processes' automata one
// step at a time, feeding each step's result from an agreement protocol or a
// recorded FD sample instead of live memory. A SimProgram is exactly such an
// automaton: `action(state)` says what the process wants to do next and
// `transition(state, result)` advances it.
//
// Algorithms in this library are written once, as coroutines (ProcBody). The
// ReplayProgram adapter turns any deterministic ProcBody into a SimProgram by
// encoding the state as the sequence of step results delivered so far and
// re-executing the coroutine to answer `action` — O(steps^2) per simulated
// run, which is fine at model-exploration scales and keeps a single source of
// truth for every algorithm.
#pragma once

#include <memory>
#include <string>

#include "sim/proc.hpp"
#include "sim/world.hpp"

namespace efd {

struct SimAction {
  enum class Kind : std::uint8_t { kRead, kWrite, kQuery, kYield, kDecide, kHalt };
  Kind kind = Kind::kHalt;
  RegAddr addr;  ///< interned register handle for kRead/kWrite
  Value value;   ///< written / decided value
};

/// A deterministic process automaton with explicit, copyable state.
class SimProgram {
 public:
  virtual ~SimProgram() = default;

  /// Initial state of the process with the given index and task input.
  [[nodiscard]] virtual Value init(int index, const Value& input) const = 0;

  /// The pending operation in `state` (kHalt once the process returned).
  [[nodiscard]] virtual SimAction action(const Value& state) const = 0;

  /// State after the pending operation completes with `result` (Nil for
  /// writes/yields/decides).
  [[nodiscard]] virtual Value transition(const Value& state, const Value& result) const = 0;
};

using SimProgramPtr = std::shared_ptr<const SimProgram>;

/// Adapts a deterministic coroutine algorithm into a SimProgram. The encoded
/// state is [index, input, r_1, ..., r_t]: the process identity plus the
/// results of its first t steps. Determinism of the body is required (all our
/// algorithms are; schedulers are the only source of nondeterminism).
class ReplayProgram final : public SimProgram {
 public:
  /// `body(index, input, ctx)` must return the process coroutine.
  using Body = std::function<Proc(int index, const Value& input, Context& ctx)>;

  explicit ReplayProgram(Body body) : body_(std::move(body)) {}

  [[nodiscard]] Value init(int index, const Value& input) const override;
  [[nodiscard]] SimAction action(const Value& state) const override;
  [[nodiscard]] Value transition(const Value& state, const Value& result) const override;

 private:
  Body body_;
};

/// Runs `prog` natively: every SimAction becomes one real step through `ctx`.
/// This makes SimPrograms directly spawnable into a World.
Proc run_sim_program(Context& ctx, SimProgramPtr prog, int index, Value input);

/// ProcBody factory for run_sim_program.
ProcBody make_sim_program_body(SimProgramPtr prog, int index, Value input);

/// Runs `prog` through `ctx` like run_sim_program but intercepts its decide
/// step and RETURNS the decided value instead of deciding for the caller —
/// the subroutine form used by task reductions (e.g. Lemma 11 builds
/// consensus around a renaming algorithm's decision).
Co<Value> run_until_decision(Context& ctx, SimProgramPtr prog, int index, Value input);

}  // namespace efd
