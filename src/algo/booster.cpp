#include "algo/booster.hpp"

#include "algo/bg_simulation.hpp"
#include "algo/sim_program.hpp"

namespace efd {

ProcBody make_booster_simulator(const BoosterConfig& cfg, Value input) {
  const KsaConfig inner = cfg.inner();
  // The simulated code: the inner algorithm's C-side, as a replayable automaton.
  auto code = std::make_shared<ReplayProgram>(
      [inner](int index, const Value& in, Context& ctx) {
        return make_ksa_client(inner, in)(ctx);
        (void)index;  // the client derives its index from ctx.pid()
      });
  BgConfig bg;
  bg.ns = cfg.ns + "/bg";
  bg.num_simulators = cfg.n;
  bg.num_codes = cfg.k + 1;  // U = {p_1, ..., p_{k+1}}
  bg.code = std::move(code);
  return make_bg_simulator(std::move(bg), std::move(input), adopt_any());
}

ProcBody make_booster_server(const BoosterConfig& cfg) { return make_ksa_server(cfg.inner()); }

}  // namespace efd
