// The Thm. 9 double simulation: solving any k-concurrently solvable task
// with ¬Ωk (via its equivalent →Ωk), in every environment.
//
// Composition, exactly as Appendix C.2 builds it:
//   * every C-process p_i publishes its task input and becomes a Fig. 2
//     simulator: the n processes, helped by the S-processes and →Ωk,
//     jointly run k simulated codes p'_1..p'_k (algo/k_codes_sim.hpp);
//   * each simulated code p'_j is a BG-simulator over the n task codes
//     p''_1..p''_n (algo/bg_simulation.hpp) in smallest-id-first mode, so
//     with k BG-simulators the induced run of the task algorithm is
//     k-concurrent;
//   * the task codes are the given k-concurrent solution (a SimProgram);
//     their inputs are read from the published input registers (a code is
//     not started before its owner participates), and their decisions are
//     published per-process, where the owning simulator polls for its own.
//
// The task algorithm must obey the BG write contract (write-once /
// per-step-address registers); the generic Prop. 1 solver does, and it
// solves k-set agreement k-concurrently (see tests/test_solvability.cpp),
// which is the instantiation the integration tests and bench E4b exercise.
#pragma once

#include "algo/sim_program.hpp"
#include "sim/world.hpp"

namespace efd {

struct Thm9Config {
  std::string ns = "t9";
  int n = 0;  ///< C-processes = S-processes = task codes
  int k = 0;  ///< concurrency level of the task solution = codes simulated

  /// The k-concurrent task solution, as a deterministic automaton.
  SimProgramPtr task_code;
};

/// C-process p_{i+1} with task input `input`.
ProcBody make_thm9_simulator(const Thm9Config& cfg, Value input);

/// S-process q_{i+1}; queries →Ωk.
ProcBody make_thm9_server(const Thm9Config& cfg);

}  // namespace efd
