#include "algo/bg_simulation.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "algo/safe_agreement.hpp"
#include "sim/memory.hpp"

namespace efd {
namespace {

struct CodeState {
  bool started = false;  // input known, state initialized
  bool halted = false;
  Value state;
  int reads_agreed = 0;
  SafeAgreementInstance read_sa;  // cached instance for read index read_sa_idx
  int read_sa_idx = -1;
};

Proc bg_simulator(Context& ctx, BgConfig cfg, Value my_input, BgHarvest harvest) {
  const int me = ctx.pid().index;
  std::vector<CodeState> codes(static_cast<std::size_t>(cfg.num_codes));
  std::unordered_set<Sym> proposed;  // SA instances (by level base) we already proposed in
  const Sym dec_base = sym(cfg.ns + "/dec");
  const Sym input_base = cfg.input_base.empty() ? Sym{} : sym(cfg.input_base);

  auto sa_of = [&cfg](const std::string& tag) {
    return SafeAgreementInstance{cfg.ns + "/sa/" + tag, cfg.num_simulators};
  };
  // Per-code input-agreement instances (colorless mode), interned once.
  std::vector<SafeAgreementInstance> in_sa;
  if (!input_base.valid()) {
    in_sa.reserve(static_cast<std::size_t>(cfg.num_codes));
    for (int c = 0; c < cfg.num_codes; ++c) in_sa.push_back(sa_of("in/" + std::to_string(c)));
  }

  for (;;) {
    for (int c = 0; c < cfg.num_codes; ++c) {
      CodeState& cs = codes[static_cast<std::size_t>(c)];
      if (cs.halted) continue;

      if (!cs.started) {
        if (input_base.valid()) {
          // Thm. 9 mode: the code's input is the real process's published input.
          const Value in = co_await ctx.read(reg(input_base, c));
          if (in.is_nil()) continue;  // not participating (yet)
          cs.state = cfg.code->init(c, in);
        } else {
          // Colorless mode: agree on an input, each simulator proposing its own.
          const auto& inst = in_sa[static_cast<std::size_t>(c)];
          if (proposed.insert(inst.level).second) {
            co_await sa_propose(ctx, inst, me, my_input);
          }
          const Value r = co_await sa_try_resolve(ctx, inst);
          if (r.at(0).int_or(0) == 0) continue;  // blocked: advance other codes
          cs.state = cfg.code->init(c, r.at(1));
        }
        cs.started = true;
      }

      // Advance this code until it halts or blocks on a read agreement.
      bool blocked = false;
      bool progressed = false;
      while (!cs.halted && !blocked) {
        const SimAction act = cfg.code->action(cs.state);
        switch (act.kind) {
          case SimAction::Kind::kWrite:
            co_await ctx.write(act.addr, act.value);
            cs.state = cfg.code->transition(cs.state, Value{});
            progressed = true;
            break;
          case SimAction::Kind::kYield:
            cs.state = cfg.code->transition(cs.state, Value{});
            progressed = true;
            break;
          case SimAction::Kind::kRead: {
            if (cs.read_sa_idx != cs.reads_agreed) {
              cs.read_sa = sa_of(std::to_string(c) + "/r" + std::to_string(cs.reads_agreed));
              cs.read_sa_idx = cs.reads_agreed;
            }
            const auto& inst = cs.read_sa;
            if (proposed.insert(inst.level).second) {
              const Value seen = co_await ctx.read(act.addr);
              co_await sa_propose(ctx, inst, me, seen);
            }
            const Value r = co_await sa_try_resolve(ctx, inst);
            if (r.at(0).int_or(0) == 0) {
              blocked = true;  // someone is mid-propose: switch codes
              break;
            }
            cs.state = cfg.code->transition(cs.state, r.at(1));
            ++cs.reads_agreed;
            progressed = true;
            break;
          }
          case SimAction::Kind::kDecide:
            co_await ctx.write(reg(dec_base, c), act.value);
            cs.state = cfg.code->transition(cs.state, Value{});
            progressed = true;
            break;
          case SimAction::Kind::kQuery:
            throw std::logic_error("bg_simulator: simulated code queried a failure detector");
          case SimAction::Kind::kHalt:
            cs.halted = true;
            break;
        }
      }
      // Smallest-id-first (Thm. 9): after real progress on the smallest
      // live code, restart the pass from code 0.
      if (cfg.smallest_id_first && progressed) break;
    }

    const Value decisions = co_await collect(ctx, dec_base, cfg.num_codes);
    const Value mine = harvest(decisions.as_vec());
    if (!mine.is_nil()) {
      co_await ctx.decide(mine);
      co_return;
    }
    co_await ctx.yield();
  }
}

}  // namespace

ProcBody make_bg_simulator(BgConfig cfg, Value my_input, BgHarvest harvest) {
  return [cfg = std::move(cfg), my_input = std::move(my_input),
          harvest = std::move(harvest)](Context& ctx) {
    return bg_simulator(ctx, cfg, my_input, harvest);
  };
}

BgHarvest adopt_any() {
  return [](const ValueVec& decisions) {
    for (const auto& d : decisions) {
      if (!d.is_nil()) return d;
    }
    return Value{};
  };
}

}  // namespace efd
