#include "algo/k_codes_sim.hpp"

#include <stdexcept>
#include <vector>

#include "algo/paxos.hpp"
#include "sim/memory.hpp"

namespace efd {
namespace {

std::string cons_ns(const KCodesConfig& cfg, int j, int ell) {
  return cfg.ns + "/c/" + std::to_string(j) + "/" + std::to_string(ell);
}

/// Interned bases of a k-codes run; built once per coroutine.
struct KCodesRegs {
  explicit KCodesRegs(const KCodesConfig& cfg)
      : r(sym(cfg.ns + "/R")),
        dec(sym(cfg.ns + "/dec")),
        steps(sym(cfg.ns + "/steps")),
        vom(sym(cfg.ns + "/vOm")),
        est(sym(cfg.ns + "/est")) {}
  Sym r;      ///< ns/R[i] = participation bit
  Sym dec;    ///< ns/dec[j] = code j's decision
  Sym steps;  ///< ns/steps[j] = agreed reads of code j
  Sym vom;    ///< ns/vOm[j] = leader advice for slot j
  Sym est;    ///< ns/est[j][ell][i] = simulator i's estimate for read ell
};

/// Active simulators (R[i] == 1), ascending.
Co<Value> read_pars(Context& ctx, Sym r_base, int n) {
  ValueVec pars;
  for (int i = 0; i < n; ++i) {
    const Value r = co_await ctx.read(reg(r_base, i));
    if (r.int_or(0) == 1) pars.emplace_back(i);
  }
  co_return Value(std::move(pars));
}

struct CodeState {
  Value state;
  int ell = 0;  // agreed reads so far
  bool halted = false;
  PaxosInstance cons;  // cached consensus instance for read index cons_ell
  int cons_ell = -1;
  int cons_round = 0;  // my next paxos round in `cons`
};

Proc kcodes_simulator(Context& ctx, KCodesConfig cfg, KCodesHarvest harvest) {
  const int me = ctx.pid().index;
  const KCodesRegs rs(cfg);
  const RegAddr poll =
      cfg.poll_base.empty() ? RegAddr{} : reg(sym(cfg.poll_base), me);
  co_await ctx.write(reg(rs.r, me), Value(1));

  std::vector<CodeState> codes(static_cast<std::size_t>(cfg.k));
  for (int j = 0; j < cfg.k; ++j) {
    codes[static_cast<std::size_t>(j)].state =
        cfg.code->init(j, j < static_cast<int>(cfg.inputs.size()) ? cfg.inputs[static_cast<std::size_t>(j)]
                                                                  : Value{});
  }
  for (;;) {
    const Value pars = co_await read_pars(ctx, rs.r, cfg.n);
    const int m = static_cast<int>(pars.size());

    for (int j = 0; j < std::min(m, cfg.k); ++j) {
      CodeState& cs = codes[static_cast<std::size_t>(j)];
      if (cs.halted) continue;

      const SimAction act = cfg.code->action(cs.state);
      switch (act.kind) {
        case SimAction::Kind::kWrite:
          co_await ctx.write(act.addr, act.value);
          cs.state = cfg.code->transition(cs.state, Value{});
          break;
        case SimAction::Kind::kYield:
          cs.state = cfg.code->transition(cs.state, Value{});
          break;
        case SimAction::Kind::kDecide:
          co_await ctx.write(reg(rs.dec, j), act.value);
          cs.state = cfg.code->transition(cs.state, Value{});
          break;
        case SimAction::Kind::kHalt:
          cs.halted = true;
          break;
        case SimAction::Kind::kQuery:
          throw std::logic_error("kcodes_simulator: simulated code queried a failure detector");
        case SimAction::Kind::kRead: {
          if (cs.cons_ell != cs.ell) {  // intern this read's instance once
            cs.cons = PaxosInstance{cons_ns(cfg, j, cs.ell), 2 * cfg.n};
            cs.cons_ell = cs.ell;
            cs.cons_round = 0;
          }
          const PaxosInstance& inst = cs.cons;
          const Value dec = co_await paxos_decision(ctx, inst);
          if (!dec.is_nil()) {  // next step of p'_j is decided: adopt it
            cs.state = cfg.code->transition(cs.state, dec.at(0));
            ++cs.ell;
            co_await ctx.write(reg(rs.steps, j), Value(cs.ell));
            break;
          }
          // Publish my estimate (the value I currently read), then drive the
          // instance if I am its leader.
          const Value seen = co_await ctx.read(act.addr);
          co_await ctx.write(reg3(rs.est, j, cs.ell, me), vec(seen));
          bool i_lead = false;
          if (m <= cfg.k) {
            i_lead = pars.at(static_cast<std::size_t>(j)).int_or(-1) == me;
          } else {
            const Value lead = co_await ctx.read(reg(rs.vom, j));
            // Slot j names an S-process; as a C-actor I never lead here.
            i_lead = false;
            (void)lead;
          }
          if (i_lead) {
            co_await paxos_attempt(ctx, inst, me, cs.cons_round++, vec(seen));
          }
          break;
        }
      }
    }

    Value mine;
    if (poll.valid()) {
      mine = co_await ctx.read(poll);
    } else {
      const Value decisions = co_await collect(ctx, rs.dec, cfg.k);
      mine = harvest(decisions.as_vec());
    }
    if (!mine.is_nil()) {
      co_await ctx.write(reg(rs.r, me), Value(0));  // depart
      co_await ctx.decide(mine);
      co_return;
    }
    co_await ctx.yield();
  }
}

Proc kcodes_server(Context& ctx, KCodesConfig cfg) {
  const int me = ctx.pid().index;
  const KCodesRegs rs(cfg);
  // Cached consensus instance + my round counter per slot (re-interned only
  // when the slot's agreed-read index moves).
  struct SlotCons {
    PaxosInstance cons;
    int ell = -1;
    int round = 0;
  };
  std::vector<SlotCons> slots(static_cast<std::size_t>(cfg.k));
  for (;;) {
    const Value advice = co_await ctx.query();  // →Ωk sample: k-vector of S-ids
    for (int j = 0; j < cfg.k; ++j) {
      co_await ctx.write(reg(rs.vom, j), advice.at(static_cast<std::size_t>(j)));
    }
    const Value pars = co_await read_pars(ctx, rs.r, cfg.n);
    if (static_cast<int>(pars.size()) <= cfg.k) {
      co_await ctx.yield();  // ranked C-simulators lead; nothing for me to do
      continue;
    }
    for (int j = 0; j < cfg.k; ++j) {
      if (advice.at(static_cast<std::size_t>(j)).int_or(-1) != me) continue;
      const int ell =
          static_cast<int>((co_await ctx.read(reg(rs.steps, j))).int_or(0));
      SlotCons& sc = slots[static_cast<std::size_t>(j)];
      if (sc.ell != ell) {
        sc.cons = PaxosInstance{cons_ns(cfg, j, ell), 2 * cfg.n};
        sc.ell = ell;
        sc.round = 0;
      }
      const PaxosInstance& inst = sc.cons;
      const Value dec = co_await paxos_decision(ctx, inst);
      if (!dec.is_nil()) continue;
      // Echo a published estimate, as the paper's leader answers queries.
      Value est;
      for (int i = 0; i < cfg.n && est.is_nil(); ++i) {
        est = co_await ctx.read(reg3(rs.est, j, ell, i));
      }
      if (est.is_nil()) continue;  // no simulator asked yet
      co_await paxos_attempt(ctx, inst, cfg.n + me, sc.round++, est);
    }
  }
}

}  // namespace

ProcBody make_kcodes_simulator(KCodesConfig cfg, KCodesHarvest harvest) {
  return [cfg = std::move(cfg), harvest = std::move(harvest)](Context& ctx) {
    return kcodes_simulator(ctx, cfg, harvest);
  };
}

ProcBody make_kcodes_server(KCodesConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return kcodes_server(ctx, cfg); };
}

std::int64_t kcodes_progress(const World& w, const KCodesConfig& cfg, int j) {
  return w.memory().read(reg(cfg.ns + "/steps", j)).int_or(0);
}

}  // namespace efd
