#include "algo/one_concurrent.hpp"

#include "sim/memory.hpp"

namespace efd {

Proc one_concurrent_solver(Context& ctx, TaskPtr task, Value input, OneConcurrentRegs regs) {
  const int n = task->n_procs();
  const int i = ctx.pid().index;

  co_await ctx.write(reg(regs.in_base, i), input);  // (1) register participation

  const Value iv = co_await collect(ctx, regs.in_base, n);   // (2) inputs seen
  const Value ov = co_await collect(ctx, regs.out_base, n);  // (3) outputs seen

  ValueVec in(iv.as_vec());
  ValueVec out(ov.as_vec());
  const Value mine = task->pick_output(in, out, i);  // (4) extend per Δ

  co_await ctx.write(reg(regs.out_base, i), mine);
  co_await ctx.decide(mine);
}

ProcBody make_one_concurrent(TaskPtr task, Value input, std::string ns) {
  // Intern the register bases once at bind time; every invocation (including
  // explorer respawns) then passes two Syms instead of re-deriving them.
  const OneConcurrentRegs regs(ns);
  return [task = std::move(task), input = std::move(input), regs](Context& ctx) {
    return one_concurrent_solver(ctx, task, input, regs);
  };
}

}  // namespace efd
