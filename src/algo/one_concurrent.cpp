#include "algo/one_concurrent.hpp"

#include "sim/memory.hpp"

namespace efd {

Proc one_concurrent_solver(Context& ctx, TaskPtr task, Value input, OneConcurrentRegs regs) {
  const int n = task->n_procs();
  const int i = ctx.pid().index;

  co_await ctx.write(reg(regs.in_base, i), input);  // (1) register participation

  const Value iv = co_await collect(ctx, regs.in_base, n);   // (2) inputs seen
  const Value ov = co_await collect(ctx, regs.out_base, n);  // (3) outputs seen

  // Unpacked into per-thread scratch: the explorer re-executes this region
  // on every respawn, and two fresh ValueVecs per respawn were the last
  // measurable allocation source on the sweep hot path (E14 alloc probe).
  // Safe: no suspension point between the unpack and the last use, so the
  // coroutine cannot migrate threads while the scratch is borrowed.
  thread_local ValueVec in_scratch;
  thread_local ValueVec out_scratch;
  iv.unpack_vec(in_scratch);
  ov.unpack_vec(out_scratch);
  const Value mine = task->pick_output(in_scratch, out_scratch, i);  // (4) extend per Δ

  co_await ctx.write(reg(regs.out_base, i), mine);
  co_await ctx.decide(mine);
}

ProcBody make_one_concurrent(TaskPtr task, Value input, std::string ns) {
  // Intern the register bases once at bind time; every invocation (including
  // explorer respawns) then passes two Syms instead of re-deriving them.
  const OneConcurrentRegs regs(ns);
  return [task = std::move(task), input = std::move(input), regs](Context& ctx) {
    return one_concurrent_solver(ctx, task, input, regs);
  };
}

}  // namespace efd
