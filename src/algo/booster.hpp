// The Thm. 7 booster: from (U, k)-set agreement to (Π^C, k)-set agreement.
//
// Given a failure detector that solves k-set agreement among ONE fixed set U
// of k+1 C-processes (here: →Ωk driving the algorithm of
// set_agreement_antiomega.hpp), all n C-processes solve k-set agreement as
// follows: they BG-simulate the k+1 C-codes of the U-algorithm, each
// simulator seeding every simulated code with its own input (legal because
// set agreement is colorless), while the REAL S-processes execute the
// algorithm's S-part against the real failure detector. Any simulated code's
// decision is adopted by every simulator. At most k distinct values can come
// out of the inner algorithm, so at most k distinct values are decided by all
// n processes — the paper's "puzzle" generalizing [12].
#pragma once

#include "algo/set_agreement_antiomega.hpp"
#include "sim/world.hpp"

namespace efd {

struct BoosterConfig {
  std::string ns = "boost";
  int n = 0;  ///< C-processes (= S-processes)
  int k = 0;  ///< agreement degree; the inner scope U has k+1 codes

  /// Namespace of the inner (U, k)-agreement instance shared by the simulated
  /// C-codes and the real S-processes.
  [[nodiscard]] KsaConfig inner() const { return KsaConfig{ns + "/inner", n, k}; }
};

/// C-process p_{i+1}: BG-simulator of the k+1 inner codes, proposing `input`.
ProcBody make_booster_simulator(const BoosterConfig& cfg, Value input);

/// S-process q_{i+1}: runs the inner algorithm's S-part (queries →Ωk).
ProcBody make_booster_server(const BoosterConfig& cfg);

}  // namespace efd
