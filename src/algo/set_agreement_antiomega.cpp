#include "algo/set_agreement_antiomega.hpp"

#include <vector>

#include "sim/memory.hpp"

namespace efd {
namespace {

std::string inst_ns(const KsaConfig& cfg, int j) { return cfg.ns + "/inst" + std::to_string(j); }

Proc ksa_client(Context& ctx, KsaConfig cfg, Value input) {
  const int i = ctx.pid().index;
  co_await ctx.write(reg(sym(cfg.ns + "/In"), i), input);
  std::vector<RegAddr> dec;  // per-instance decision registers, interned once
  dec.reserve(static_cast<std::size_t>(cfg.k));
  for (int j = 0; j < cfg.k; ++j) dec.push_back(reg(sym(inst_ns(cfg, j) + "/DEC")));
  for (;;) {
    for (int j = 0; j < cfg.k; ++j) {
      const Value d = co_await ctx.read(dec[static_cast<std::size_t>(j)]);
      if (!d.is_nil()) {
        co_await ctx.decide(d);
        co_return;
      }
    }
  }
}

// Shared server loop; `use_query` selects the live FD module, otherwise the
// injected step-free `advice_src` is consulted (Nil = no advice yet).
Proc ksa_server_core(Context& ctx, KsaConfig cfg, bool use_query, AdviceSource advice_src) {
  const int me = ctx.pid().index;
  std::vector<int> round(static_cast<std::size_t>(cfg.k), 0);
  const Sym in = sym(cfg.ns + "/In");
  std::vector<PaxosInstance> insts;  // per-slot consensus instances, interned once
  insts.reserve(static_cast<std::size_t>(cfg.k));
  for (int j = 0; j < cfg.k; ++j) insts.emplace_back(inst_ns(cfg, j), cfg.n);
  for (;;) {
    Value advice;
    if (use_query) {
      advice = co_await ctx.query();  // k-vector of S-ids
    } else {
      advice = advice_src();
      if (advice.is_nil()) {  // recorded samples exhausted: idle
        co_await ctx.yield();
        continue;
      }
    }
    bool led_any = false;
    for (int j = 0; j < cfg.k; ++j) {
      if (advice.at(static_cast<std::size_t>(j)).int_or(-1) != me) continue;
      Value proposal;
      for (int c = 0; c < cfg.n && proposal.is_nil(); ++c) {
        proposal = co_await ctx.read(reg(in, c));
      }
      if (proposal.is_nil()) continue;
      const PaxosInstance& inst = insts[static_cast<std::size_t>(j)];
      co_await paxos_attempt(ctx, inst, me, round[static_cast<std::size_t>(j)]++, proposal);
      led_any = true;
    }
    if (!led_any) co_await ctx.yield();
  }
}

Proc ksa_server(Context& ctx, KsaConfig cfg) {
  return ksa_server_core(ctx, std::move(cfg), /*use_query=*/true, {});
}

Proc nsa_client(Context& ctx, KsaConfig cfg, Value input) {
  const int i = ctx.pid().index;
  const Sym v_base = sym(cfg.ns + "/V");
  co_await ctx.write(reg(sym(cfg.ns + "/In"), i), input);
  for (;;) {
    for (int j = 0; j < cfg.n; ++j) {
      const Value v = co_await ctx.read(reg(v_base, j));
      if (!v.is_nil()) {
        co_await ctx.decide(v);
        co_return;
      }
    }
  }
}

Proc nsa_server(Context& ctx, KsaConfig cfg) {
  const int me = ctx.pid().index;
  const Sym in = sym(cfg.ns + "/In");
  // Wait until at least one C-process wrote its input, then relay it once.
  for (;;) {
    for (int c = 0; c < cfg.n; ++c) {
      const Value v = co_await ctx.read(reg(in, c));
      if (!v.is_nil()) {
        co_await ctx.write(reg(sym(cfg.ns + "/V"), me), v);
        co_return;
      }
    }
    co_await ctx.yield();
  }
}

}  // namespace

ProcBody make_ksa_client(KsaConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return ksa_client(ctx, cfg, input);
  };
}

ProcBody make_ksa_server(KsaConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return ksa_server(ctx, cfg); };
}

ProcBody make_ksa_server_with_advice(KsaConfig cfg, AdviceSource advice) {
  return [cfg = std::move(cfg), advice = std::move(advice)](Context& ctx) {
    return ksa_server_core(ctx, cfg, /*use_query=*/false, advice);
  };
}

ProcBody make_nsa_noadvice_client(KsaConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return nsa_client(ctx, cfg, input);
  };
}

ProcBody make_nsa_noadvice_server(KsaConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return nsa_server(ctx, cfg); };
}

}  // namespace efd
