#include "algo/paxos.hpp"

#include "sim/memory.hpp"

namespace efd {

Co<Value> paxos_attempt(Context& ctx, PaxosInstance inst, int me, int round, Value v) {
  const std::int64_t ballot =
      static_cast<std::int64_t>(round) * inst.num_actors + me + 1;  // ballots >= 1, unique per actor

  co_await ctx.write(reg(inst.rb, me), Value(ballot));

  // Phase 1: abort if a higher ballot started; adopt the highest accepted value.
  std::int64_t best_ballot = 0;
  Value best_value;
  for (int a = 0; a < inst.num_actors; ++a) {
    const Value rb = co_await ctx.read(reg(inst.rb, a));
    if (rb.int_or(0) > ballot) co_return Value{};
    const Value acc = co_await ctx.read(reg(inst.acc, a));
    if (acc.is_vec() && acc.at(0).int_or(0) > best_ballot) {
      best_ballot = acc.at(0).int_or(0);
      best_value = acc.at(1);
    }
  }
  if (best_ballot > 0) v = best_value;

  co_await ctx.write(reg(inst.acc, me), vec(Value(ballot), v));

  // Phase 2: re-validate the ballot, then publish the decision.
  for (int a = 0; a < inst.num_actors; ++a) {
    const Value rb = co_await ctx.read(reg(inst.rb, a));
    if (rb.int_or(0) > ballot) co_return Value{};
  }
  co_await ctx.write(inst.dec, v);
  co_return v;
}

Co<Value> paxos_decision(Context& ctx, PaxosInstance inst) {
  co_return co_await ctx.read(inst.dec);
}

}  // namespace efd
