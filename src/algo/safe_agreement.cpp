#include "algo/safe_agreement.hpp"

#include "sim/memory.hpp"

namespace efd {

Co<void> sa_propose(Context& ctx, SafeAgreementInstance inst, int me, Value v) {
  co_await ctx.write(reg(inst.level, me), vec(v, Value(1)));
  const Value snap = co_await double_collect(ctx, inst.level, inst.num_parties);
  bool saw_committed = false;
  for (int p = 0; p < inst.num_parties; ++p) {
    if (snap.at(static_cast<std::size_t>(p)).at(1).int_or(0) == 2) saw_committed = true;
  }
  co_await ctx.write(reg(inst.level, me), vec(v, Value(saw_committed ? 0 : 2)));
}

Co<Value> sa_try_resolve(Context& ctx, SafeAgreementInstance inst) {
  const Value snap = co_await double_collect(ctx, inst.level, inst.num_parties);
  bool found = false;  // Nil is a legal agreed value, so track the winner explicitly
  Value winner;
  for (int p = 0; p < inst.num_parties; ++p) {
    const Value cell = snap.at(static_cast<std::size_t>(p));
    if (cell.is_nil()) continue;
    const auto level = cell.at(1).int_or(0);
    if (level == 1) co_return vec(Value(0));  // blocked: someone mid-propose
    if (level == 2 && !found) {
      found = true;
      winner = cell.at(0);  // min id wins
    }
  }
  if (!found) co_return vec(Value(0));  // nobody committed yet
  co_return vec(Value(1), winner);
}

Co<Value> sa_resolve(Context& ctx, SafeAgreementInstance inst) {
  for (;;) {
    const Value r = co_await sa_try_resolve(ctx, inst);
    if (r.at(0).int_or(0) == 1) co_return r.at(1);
    co_await ctx.yield();
  }
}

}  // namespace efd
