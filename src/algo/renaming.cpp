#include "algo/renaming.hpp"

#include <algorithm>
#include <vector>

#include "sim/memory.hpp"

namespace efd {
namespace {

Proc renaming_kconc(Context& ctx, RenamingConfig cfg, Value input) {
  const int i = ctx.pid().index;
  const Sym r_base = sym(cfg.ns + "/R");
  const RegAddr mine = reg(r_base, i);
  std::int64_t s = 1;  // current name suggestion

  for (;;) {
    co_await ctx.write(mine, vec(Value(i), Value(s), Value(1), input));
    const Value view = co_await collect(ctx, r_base, cfg.n);

    bool conflict = false;
    std::vector<int> contenders;                 // {ℓ | R_ℓ = (ℓ, s_ℓ, true)}
    std::vector<std::int64_t> foreign_names;     // {s_ℓ | R_ℓ ≠ ⊥, ℓ ≠ i}
    for (int l = 0; l < cfg.n; ++l) {
      const Value r = view.at(static_cast<std::size_t>(l));
      if (r.is_nil()) continue;
      const std::int64_t sl = r.at(1).int_or(0);
      const bool busy = r.at(2).int_or(0) == 1;
      if (busy) contenders.push_back(l);
      if (l != i) {
        foreign_names.push_back(sl);
        if (sl == s) conflict = true;
      }
    }

    if (!conflict) {
      co_await ctx.write(mine, vec(Value(i), Value(s), Value(0), input));
      co_await ctx.decide(Value(s));
      co_return;
    }

    // Rank of i among the contenders (1-based; i is always among them since
    // it just published with the bit set).
    std::sort(contenders.begin(), contenders.end());
    const auto pos = std::lower_bound(contenders.begin(), contenders.end(), i);
    const std::int64_t rank = (pos - contenders.begin()) + 1;

    // s := the rank-th positive integer not suggested by anyone else.
    std::sort(foreign_names.begin(), foreign_names.end());
    foreign_names.erase(std::unique(foreign_names.begin(), foreign_names.end()),
                        foreign_names.end());
    std::int64_t cand = 0;
    std::int64_t skipped = 0;
    while (skipped < rank) {
      ++cand;
      if (!std::binary_search(foreign_names.begin(), foreign_names.end(), cand)) ++skipped;
    }
    s = cand;
  }
}

}  // namespace

ProcBody make_renaming_kconc(RenamingConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return renaming_kconc(ctx, cfg, input);
  };
}

}  // namespace efd
