// Extracting ¬Ωk from a failure detector that solves a hard task
// (Thm. 8 / Fig. 1 / Appendix B).
//
// Setting: a detector D solves task T (here: k-set agreement via the KSA
// algorithm A of set_agreement_antiomega.hpp), and T is not (k+1)-
// concurrently solvable. Each S-process q_i (1) builds the CHT sampling DAG
// by querying D and publishing vertices (fd/dag.hpp), and (2) locally
// simulates (k+1)-concurrent runs of the restricted algorithm A_sim — the
// C-part of A plus simulated S-processes whose queries are answered from the
// DAG — hunting for a run in which some live participant never decides.
// Since at most k simulated S-processes may be starved in a (k+1)-concurrent
// simulation, emitting the OTHER n−k ids emulates ¬Ωk: once the hunt locks
// onto a persistently non-deciding run, its starved set must contain a
// correct process (else A would have decided), and that correct process is
// permanently excluded from the output.
//
// Search-space substitution (documented in DESIGN.md): instead of the
// unbounded corridor DFS over all schedules, the hunt enumerates the
// structured adversary family {starve U, |U| = k; single-step round-robin
// everywhere else} with a growing step budget. Lockstep round-robin
// livelocks every contested Paxos instance, so a candidate U is a persistent
// witness exactly when it covers the post-stabilization proposers — which is
// the paper's σ*: the starved set of the first never-deciding run. The
// emulated output is the complement of the locked-in U.
#pragma once

#include <vector>

#include "algo/set_agreement_antiomega.hpp"
#include "fd/dag.hpp"
#include "fd/history.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace efd {

struct ExtractionConfig {
  std::string ns = "extract";
  int n = 0;  ///< S-processes (= C-processes)
  int k = 0;  ///< target: emulate ¬Ωk

  int explore_every = 3;    ///< run the hunt every this many DAG rounds
  int budget0 = 1500;       ///< simulation step budget of the first hunt
  int budget_step = 1500;   ///< budget growth per subsequent hunt
  int max_budget = 60000;   ///< cap (keeps each emulation step bounded)
};

/// One hunt over a DAG snapshot.
struct ExtractionResult {
  std::vector<int> output;   ///< the emitted (n-k)-set of S-ids
  std::vector<int> starved;  ///< the witness starved set U (empty on fallback)
  bool witness_found = false;
  std::int64_t sim_steps = 0;  ///< local simulation steps spent
};

/// Pure local computation (zero model steps): simulate (k+1)-concurrent runs
/// of A_sim fed from `dag` and return the emulated ¬Ωk sample.
ExtractionResult extract_once(const FdDag& dag, const ExtractionConfig& cfg, int budget);

/// S-process body: interleaves DAG building (queries D) with periodic hunts;
/// publishes each emulated sample to reg(ns + "/out", me) so the emulated
/// history is reconstructible from the run trace. Runs forever.
ProcBody make_extraction_sproc(ExtractionConfig cfg);

/// Rebuilds the emulated ¬Ωk history H'(q_i, t) from a traced run: the value
/// of q_i's module at time t is its latest published sample at or before t
/// (before the first publication: the fallback set {k..n-1}).
HistoryPtr emulated_history_from_trace(const Trace& trace, const ExtractionConfig& cfg);

}  // namespace efd
