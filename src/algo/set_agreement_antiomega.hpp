// k-set agreement with →Ωk advice (Prop. 6 / the colorless face of Thm. 9).
//
// The classic construction from [28]: run k parallel consensus instances; the
// proposer of instance j is whoever slot j of →Ωk currently names. Since
// eventually at least one slot stabilizes on a correct S-process, at least
// one instance decides; since there are only k instances, at most k distinct
// values are decided; validity is inherited from Paxos. C-processes publish
// their proposal and adopt the first instance decision they observe — their
// progress depends only on S-processes, never on other C-processes.
//
// Also exposes a no-advice variant (§2.2 example): with n S-processes and NO
// failure detector, (Π^C, n)-set agreement is solvable in every environment —
// each S-process relays the first input it sees into its own slot.
#pragma once

#include "algo/paxos.hpp"
#include "sim/world.hpp"

namespace efd {

struct KsaConfig {
  std::string ns = "ksa";
  int n = 0;  ///< C-process count = S-process count
  int k = 0;  ///< agreement degree (number of parallel instances)
};

/// C-process p_{i+1} proposing `input`; decides the first instance decision seen.
ProcBody make_ksa_client(KsaConfig cfg, Value input);

/// S-process q_{i+1}; queries →Ωk (history must emit k-vectors of Int S-ids).
ProcBody make_ksa_server(KsaConfig cfg);

/// Step-free advice source: the next →Ωk sample, or Nil when none is
/// available yet (the server then idles for one step). Host-side state;
/// consumes no model steps — used by the Fig. 1 extraction to replay
/// recorded DAG samples into a simulated S-process.
using AdviceSource = std::function<Value()>;

/// S-part of the KSA algorithm with an injected advice source instead of a
/// live failure-detector module.
ProcBody make_ksa_server_with_advice(KsaConfig cfg, AdviceSource advice);

/// §2.2 example, C side: wait for ns/V[j] (any j) and decide it.
ProcBody make_nsa_noadvice_client(KsaConfig cfg, Value input);
/// §2.2 example, S side: copy the first published input into ns/V[me]. Takes
/// no FD queries at all.
ProcBody make_nsa_noadvice_server(KsaConfig cfg);

}  // namespace efd
