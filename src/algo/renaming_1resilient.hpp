// The 1-resilient renaming wrapper (Fig. 3, Thm. 12).
//
// Given ANY restricted algorithm A (as a SimProgram), the wrapper lets at
// most the two smallest-id undecided participants advance A concurrently:
// each process registers (R_i := 1), repeatedly collects the registration
// vector, and takes one step of its A-automaton only while it is among the
// two smallest undecided ids of a full participating set (or the single
// smallest of a (j-1)-sized set). The induced run of A is thus 2-concurrent.
// In the paper this turns a hypothetical 2-concurrent strong-renaming
// algorithm into a 1-resilient one, powering the impossibility of Thm. 12;
// here we instantiate it with real algorithms (e.g. Fig. 4 with k = 2) to
// measure the wrapper's 2-concurrency and liveness under one crash.
#pragma once

#include "algo/sim_program.hpp"
#include "sim/world.hpp"

namespace efd {

struct OneResilientConfig {
  std::string ns = "wrap";
  int n = 0;  ///< total C-processes
  int j = 0;  ///< max participants of the wrapped renaming task
};

/// Body of C-process p_{i+1}: runs `inner` (the algorithm A) under the
/// Fig. 3 gating discipline, then decides the name A decided.
ProcBody make_one_resilient_wrapper(OneResilientConfig cfg, SimProgramPtr inner, Value input);

}  // namespace efd
