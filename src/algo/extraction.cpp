#include "algo/extraction.hpp"

#include <algorithm>
#include <memory>

#include "fd/detectors.hpp"
#include "fd/reduction.hpp"
#include "sim/memory.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

/// The structured adversary of the hunt: a (k+1)-window over the C-codes
/// (arrival order 0..n-1) interleaved with single-step round-robin over the
/// non-starved simulated S-processes. Lockstep single-stepping is what keeps
/// contested Paxos instances livelocked, as an adversarial scheduler may.
class CorridorScheduler final : public Scheduler {
 public:
  CorridorScheduler(int n, int k, std::vector<int> starved)
      : n_(n), window_(k + 1), starved_(std::move(starved)) {
    std::sort(starved_.begin(), starved_.end());
  }

  std::optional<Pid> next(const World& w) override {
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&w](int i) { return w.decided(cpid(i)) || w.terminated(cpid(i)); }),
                  active_.end());
    while (next_arrival_ < n_ && static_cast<int>(active_.size()) < window_) {
      active_.push_back(next_arrival_++);
    }
    // Alternate: one C step, one (non-starved) S step.
    if (!s_turn_ && !active_.empty()) {
      const int ci = active_[c_cursor_ % active_.size()];
      ++c_cursor_;
      s_turn_ = true;
      return cpid(ci);
    }
    s_turn_ = false;
    for (int tries = 0; tries < n_; ++tries) {
      const int qi = static_cast<int>(s_cursor_ % static_cast<std::size_t>(n_));
      ++s_cursor_;
      if (std::binary_search(starved_.begin(), starved_.end(), qi)) continue;
      const Pid pid = spid(qi);
      if (w.exists(pid) && !w.terminated(pid)) return pid;
    }
    if (!active_.empty()) {
      const int ci = active_[c_cursor_ % active_.size()];
      ++c_cursor_;
      return cpid(ci);
    }
    return std::nullopt;
  }

 private:
  int n_;
  int window_;
  std::vector<int> starved_;
  int next_arrival_ = 0;
  std::vector<int> active_;
  std::size_t c_cursor_ = 0;
  std::size_t s_cursor_ = 0;
  bool s_turn_ = false;
};

/// Lexicographic k-subsets of {0..n-1}.
std::vector<std::vector<int>> k_subsets(int n, int k) {
  std::vector<std::vector<int>> out;
  std::vector<int> cur;
  const std::function<void(int)> rec = [&](int start) {
    if (static_cast<int>(cur.size()) == k) {
      out.push_back(cur);
      return;
    }
    for (int i = start; i < n; ++i) {
      cur.push_back(i);
      rec(i + 1);
      cur.pop_back();
    }
  };
  rec(0);
  return out;
}

std::vector<int> complement_of(const std::vector<int>& u, int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    if (!std::binary_search(u.begin(), u.end(), i)) out.push_back(i);
  }
  return out;
}

Value encode_set(const std::vector<int>& ids) {
  ValueVec v;
  v.reserve(ids.size());
  for (int i : ids) v.emplace_back(i);
  return Value(std::move(v));
}

}  // namespace

ExtractionResult extract_once(const FdDag& dag, const ExtractionConfig& cfg, int budget) {
  ExtractionResult res;
  const KsaConfig inner{"A", cfg.n, cfg.k};

  for (const auto& u : k_subsets(cfg.n, cfg.k)) {
    // A fresh local universe per candidate starved set: replay determinism
    // makes every hunt over the same DAG snapshot reproducible.
    World local(FailurePattern(cfg.n), TrivialFd{}.history(FailurePattern(cfg.n), 0));
    for (int i = 0; i < cfg.n; ++i) {
      local.spawn_c(i, make_ksa_client(inner, Value(i % (cfg.k + 1))));
    }
    for (int j = 0; j < cfg.n; ++j) {
      auto samples = std::make_shared<ValueVec>(dag.samples_of(j));
      auto next = std::make_shared<std::size_t>(0);
      local.spawn_s(j, make_ksa_server_with_advice(inner, [samples, next]() {
        if (*next >= samples->size()) return Value{};
        return (*samples)[(*next)++];
      }));
    }
    CorridorScheduler sched(cfg.n, cfg.k, u);
    const DriveResult r = drive(local, sched, budget);
    res.sim_steps += r.steps;
    if (!local.all_c_decided()) {
      res.witness_found = true;
      res.starved = u;
      res.output = complement_of(u, cfg.n);
      return res;
    }
  }

  // No witness at this budget (all explored runs decided): fall back to a
  // fixed set; pre-convergence samples of ¬Ωk are unconstrained.
  res.output.resize(static_cast<std::size_t>(cfg.n - cfg.k));
  for (int i = cfg.k; i < cfg.n; ++i) res.output[static_cast<std::size_t>(i - cfg.k)] = i;
  return res;
}

namespace {

// Standalone coroutine (a coroutine lambda's captures die with the lambda
// object after World::spawn, so factories only bind and call).
Proc extraction_sproc(Context& ctx, ExtractionConfig cfg) {
  const int me = ctx.pid().index;
  const Sym dag_base = sym(cfg.ns + "/dag");
  const RegAddr my_dag = reg(dag_base, me);
  const RegAddr my_out = reg(sym(cfg.ns + "/out"), me);
  FdDag local(cfg.n);
  int round = 0;
  int budget = cfg.budget0;
  for (;;) {
    // --- DAG round: sample D, merge publications, publish own vertex ---
    const Value sample = co_await ctx.query();
    for (int j = 0; j < cfg.n; ++j) {
      if (j == me) continue;
      const Value pub = co_await ctx.read(reg(dag_base, j));
      if (!pub.is_nil()) local.merge(FdDag::decode(pub));
    }
    std::vector<int> preds(static_cast<std::size_t>(cfg.n));
    for (int j = 0; j < cfg.n; ++j) preds[static_cast<std::size_t>(j)] = local.count(j) - 1;
    local.append(me, sample, std::move(preds));
    co_await ctx.write(my_dag, local.encode());

    // --- Periodic hunt: pure local computation, then publish the sample ---
    if (++round % cfg.explore_every == 0) {
      const ExtractionResult r = extract_once(local, cfg, budget);
      budget = std::min(budget + cfg.budget_step, cfg.max_budget);
      co_await ctx.write(my_out, encode_set(r.output));
    }
  }
}

}  // namespace

ProcBody make_extraction_sproc(ExtractionConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return extraction_sproc(ctx, cfg); };
}

HistoryPtr emulated_history_from_trace(const Trace& trace, const ExtractionConfig& cfg) {
  std::vector<int> fallback_ids;
  for (int i = cfg.k; i < cfg.n; ++i) fallback_ids.push_back(i);
  return history_from_out_registers(trace, cfg.ns + "/out", cfg.n, encode_set(fallback_ids));
}

}  // namespace efd
