#include "algo/leader_consensus.hpp"

#include "algo/adopt_commit.hpp"
#include "sim/memory.hpp"

namespace efd {
namespace {

Proc consensus_client(Context& ctx, LeaderConsensusConfig cfg, Value input) {
  const int i = ctx.pid().index;
  co_await ctx.write(reg(sym(cfg.ns + "/In"), i), input);
  const Value d = co_await await_nonnil(ctx, reg(sym(cfg.ns + "/DEC")));
  co_await ctx.decide(d);
}

Proc consensus_server(Context& ctx, LeaderConsensusConfig cfg) {
  const int me = ctx.pid().index;
  const PaxosInstance inst{cfg.ns, cfg.n};
  const Sym in = sym(cfg.ns + "/In");
  int round = 0;
  for (;;) {
    const Value leader = co_await ctx.query();
    if (leader.int_or(-1) != me) {
      co_await ctx.yield();
      continue;
    }
    // Leader: pick the first published proposal and push a ballot.
    Value proposal;
    for (int j = 0; j < cfg.n && proposal.is_nil(); ++j) {
      proposal = co_await ctx.read(reg(in, j));
    }
    if (proposal.is_nil()) {
      co_await ctx.yield();  // nobody participates yet
      continue;
    }
    co_await paxos_attempt(ctx, inst, me, round++, proposal);
  }
}

Proc consensus_server_ac(Context& ctx, LeaderConsensusConfig cfg) {
  const int me = ctx.pid().index;
  const Sym in = sym(cfg.ns + "/In");
  const RegAddr dec = reg(sym(cfg.ns + "/DEC"));
  // Round registers: cfg.ns/ac<r>/... adopt-commit instances over the n
  // S-actors.
  Value est;
  int round = 0;
  for (;;) {
    const Value leader = co_await ctx.query();
    if (leader.int_or(-1) != me) {
      co_await ctx.yield();
      continue;
    }
    if (est.is_nil()) {
      for (int j = 0; j < cfg.n && est.is_nil(); ++j) {
        est = co_await ctx.read(reg(in, j));
      }
      if (est.is_nil()) {
        co_await ctx.yield();  // nobody participates yet
        continue;
      }
    }
    // One adopt-commit per round, rounds taken strictly in order: a commit at
    // round r is safe because every process that later passes round r adopts
    // the committed value there (commit-agreement) before it can commit in
    // any round > r.
    const AdoptCommitInstance inst{cfg.ns + "/ac" + std::to_string(round), cfg.n};
    const Value r = co_await adopt_commit(ctx, inst, me, est);
    est = r.at(1);  // carry the adopted value into the next round
    if (r.at(0).int_or(0) == 1) {
      co_await ctx.write(dec, est);
    }
    ++round;
  }
}

}  // namespace

ProcBody make_consensus_client(LeaderConsensusConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return consensus_client(ctx, cfg, input);
  };
}

ProcBody make_consensus_server(LeaderConsensusConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return consensus_server(ctx, cfg); };
}

ProcBody make_consensus_server_ac(LeaderConsensusConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return consensus_server_ac(ctx, cfg); };
}

}  // namespace efd
