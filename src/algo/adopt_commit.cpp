#include "algo/adopt_commit.hpp"

#include "sim/memory.hpp"

namespace efd {

Co<Value> adopt_commit(Context& ctx, AdoptCommitInstance inst, int me, Value v) {
  // Phase A: publish the proposal, look for disagreement.
  co_await ctx.write(reg(inst.a, me), v);
  Value seen;
  bool conflict = false;
  for (int p = 0; p < inst.num_parties; ++p) {
    const Value a = co_await ctx.read(reg(inst.a, p));
    if (a.is_nil()) continue;
    if (seen.is_nil()) {
      seen = a;
    } else if (!(a == seen)) {
      conflict = true;
    }
  }
  const Value mine = conflict ? seen : v;  // on conflict, push the first value seen

  // Phase B: publish (value, clean-bit); commit only on a unanimous clean view.
  co_await ctx.write(reg(inst.b, me), vec(mine, Value(conflict ? 0 : 1)));
  bool all_clean = true;
  bool any_clean = false;
  Value clean_value;
  Value any_value;
  for (int p = 0; p < inst.num_parties; ++p) {
    const Value b = co_await ctx.read(reg(inst.b, p));
    if (b.is_nil()) continue;
    any_value = b.at(0);
    if (b.at(1).int_or(0) == 1) {
      any_clean = true;
      clean_value = b.at(0);
    } else {
      all_clean = false;
    }
  }
  if (all_clean && any_clean) co_return vec(Value(1), clean_value);  // commit
  if (any_clean) co_return vec(Value(0), clean_value);               // adopt the clean value
  co_return vec(Value(0), any_value.is_nil() ? mine : any_value);    // adopt
}

}  // namespace efd
