#include "algo/double_sim.hpp"

#include "algo/bg_simulation.hpp"
#include "algo/k_codes_sim.hpp"
#include "sim/memory.hpp"

namespace efd {
namespace {

KCodesConfig outer_config(const Thm9Config& cfg) {
  // The simulated code p'_j: a BG-simulator over the n task codes. Its
  // harvest never fires (Nil forever): codes run as long as task codes need
  // progress; the OUTER simulators decide by polling their own task-decision
  // register (poll_base).
  BgConfig bg;
  bg.ns = cfg.ns + "/ibg";
  bg.num_simulators = cfg.k;
  bg.num_codes = cfg.n;
  bg.code = cfg.task_code;
  bg.smallest_id_first = true;
  bg.input_base = cfg.ns + "/In";
  auto code = std::make_shared<ReplayProgram>(
      [bg](int index, const Value&, Context& ctx) {
        return make_bg_simulator(bg, Value{}, [](const ValueVec&) { return Value{}; })(ctx);
        (void)index;
      });

  KCodesConfig kc;
  kc.ns = cfg.ns + "/kc";
  kc.n = cfg.n;
  kc.k = cfg.k;
  kc.code = std::move(code);
  kc.inputs.assign(static_cast<std::size_t>(cfg.k), Value{});
  kc.poll_base = cfg.ns + "/ibg/dec";
  return kc;
}

Proc thm9_simulator(Context& ctx, Thm9Config cfg, Value input) {
  co_await ctx.write(reg(cfg.ns + "/In", ctx.pid().index), input);
  // Keep the awaited coroutine in a named object: GCC 12 mishandles the
  // lifetime of some temporaries in co_await full-expressions.
  Proc inner = make_kcodes_simulator(outer_config(cfg), {})(ctx);
  co_await std::move(inner);
}

}  // namespace

ProcBody make_thm9_simulator(const Thm9Config& cfg, Value input) {
  return [cfg, input = std::move(input)](Context& ctx) { return thm9_simulator(ctx, cfg, input); };
}

ProcBody make_thm9_server(const Thm9Config& cfg) {
  return make_kcodes_server(outer_config(cfg));
}

}  // namespace efd
