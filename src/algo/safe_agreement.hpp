// Safe agreement — the BG-simulation building block [5, 7].
//
// Propose/resolve object with the classic guarantees: agreement and validity
// always; the resolve phase may BLOCK (only) while some party is inside its
// propose window. A simulator that stalls mid-propose blocks at most this one
// object, which is exactly the accounting BG-simulation relies on.
//
// Snapshots are taken with repeated double collects (atomic when they
// return), which is required for agreement: with plain collects a late
// proposer with a small id could commit after an early resolver already
// returned a larger-id value.
//
// Registers of instance `ns` (P parties): ns/L[p] = [value, level] with
// level 1 = proposing, 2 = committed, 0 = abstained.
#pragma once

#include <string>

#include "sim/proc.hpp"

namespace efd {

/// Interns the instance's level-register base once at construction so the
/// propose/resolve loops touch no strings.
struct SafeAgreementInstance {
  SafeAgreementInstance() = default;
  SafeAgreementInstance(const std::string& ns, int num_parties)
      : level(sym(ns + "/L")), num_parties(num_parties) {}

  Sym level;  ///< ns/L[p] = [value, level]
  int num_parties = 0;
};

/// Propose phase for party `me`. O(P) steps amortized; never blocks forever
/// under fair scheduling. Call at most once per instance per party.
Co<void> sa_propose(Context& ctx, SafeAgreementInstance inst, int me, Value v);

/// One resolve attempt: returns [1, value] when resolved, [0] when blocked by
/// an in-flight proposer. Safe to call repeatedly; must be preceded by the
/// caller's own sa_propose on this instance.
Co<Value> sa_try_resolve(Context& ctx, SafeAgreementInstance inst);

/// Blocking resolve: spins on sa_try_resolve until resolved.
Co<Value> sa_resolve(Context& ctx, SafeAgreementInstance inst);

}  // namespace efd
