// Register-based single-shot consensus, Disk-Paxos style (Gafni–Lamport),
// used as the "leader-based consensus algorithm" of Appendix C.1.
//
// Safety (agreement + validity) holds under arbitrary concurrency and any
// number of stalled actors; termination requires that eventually a single
// live actor keeps proposing (the leader, supplied by Ω / →Ωk advice or by a
// deterministic rank rule). Actors share a global id space so that both
// C-processes and S-processes can drive the same instance, exactly as the
// paper's query/response consensus allows either kind of process to act as
// leader.
//
// Registers of instance `ns` (A actors):
//   ns/RB[a]   highest ballot actor a has entered (int, 0 = none)
//   ns/ACC[a]  [ballot, value] last accepted by actor a
//   ns/DEC     decided value (written once a ballot fully succeeds)
#pragma once

#include <string>

#include "sim/proc.hpp"

namespace efd {

/// A Paxos instance handle: interns the instance's register bases once at
/// construction so ballot attempts touch no strings.
struct PaxosInstance {
  PaxosInstance() = default;
  PaxosInstance(const std::string& ns, int num_actors)
      : rb(sym(ns + "/RB")), acc(sym(ns + "/ACC")), dec(reg(sym(ns + "/DEC"))),
        num_actors(num_actors) {}

  Sym rb;       ///< ns/RB[a]: highest ballot actor a entered
  Sym acc;      ///< ns/ACC[a]: [ballot, value] last accepted by actor a
  RegAddr dec;  ///< ns/DEC: decided value
  int num_actors = 0;
};

/// One complete ballot attempt by actor `me` (0-based) in round `round`,
/// proposing `v` if no previously-accepted value is discovered. Returns the
/// decided value on success, Nil when preempted by a higher ballot. Takes
/// O(num_actors) steps; never blocks.
Co<Value> paxos_attempt(Context& ctx, PaxosInstance inst, int me, int round, Value v);

/// Single-step peek at the decision register; Nil if undecided.
Co<Value> paxos_decision(Context& ctx, PaxosInstance inst);

}  // namespace efd
