#include "algo/participating_set.hpp"

#include "sim/snapshot.hpp"
#include "tasks/participating_set.hpp"

namespace efd {
namespace {

Proc participating_set_solver(Context& ctx, ParticipatingSetConfig cfg, Value input) {
  const int me = ctx.pid().index;
  const Value view = co_await immediate_snapshot(ctx, cfg.ns, me, cfg.n, input);
  std::vector<int> ids;
  for (int q = 0; q < cfg.n; ++q) {
    if (!view.at(static_cast<std::size_t>(q)).is_nil()) ids.push_back(q);
  }
  co_await ctx.decide(ParticipatingSetTask::encode_view(ids));
}

}  // namespace

ProcBody make_participating_set_solver(ParticipatingSetConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return participating_set_solver(ctx, cfg, input);
  };
}

}  // namespace efd
