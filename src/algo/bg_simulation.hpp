// BG-simulation [5, 7]: n simulators jointly execute N simulated codes.
//
// Each simulated code is a deterministic SimProgram. Writes and local steps
// of a code are deterministic, so every simulator can perform them directly;
// the result of every simulated READ is agreed through one safe-agreement
// object per (code, read-index), each simulator proposing the value it
// currently sees in the shared memory. A simulator that stalls mid-propose
// blocks at most one code (safe agreement's propose window), which yields the
// classic BG resilience accounting: s stalled simulators block at most s of
// the N codes.
//
// The code inputs are agreed the same way: each simulator proposes its OWN
// input for every code (legal for colorless tasks — exactly how Thm. 7 seeds
// the simulation of A_x).
//
// Each code's decision is published to ns/dec[c]; a simulator finishes when
// the caller-supplied `harvest` extracts its own decision from the decision
// vector.
//
// CONTRACT on simulated codes: writes are replayed directly by every
// simulator, so a register written by a simulated code must be write-once or
// monotone-idempotent per code (all codes in this library satisfy this:
// input/decision/level registers are written once, progress registers grow a
// per-step address). Codes that overwrite one register with changing values
// (e.g. Fig. 4 renaming's R_i) must be run natively or under the Fig. 3
// gating wrapper, not under BG.
#pragma once

#include <functional>

#include "algo/sim_program.hpp"
#include "sim/world.hpp"

namespace efd {

struct BgConfig {
  std::string ns = "bg";
  int num_simulators = 0;
  int num_codes = 0;
  SimProgramPtr code;  ///< the program every simulated code runs

  /// When true, each pass advances the smallest-id code that is neither
  /// halted nor blocked (instead of round-robin). With s simulators this
  /// keeps at most s codes concurrently un-halted mid-protocol — the
  /// discipline Thm. 9 uses to squeeze a k-concurrent run of A out of k
  /// simulating codes.
  bool smallest_id_first = false;

  /// When non-empty, code c's input is read from reg(input_base, c) (the
  /// code is not started until that register is non-⊥) instead of being
  /// safe-agreed from the simulators' own inputs. Thm. 9 needs this: inputs
  /// of a colored task belong to specific processes and may not be invented.
  std::string input_base;
};

/// Extracts the simulator's decision from the codes' decision vector
/// (ns/dec[0..N-1], ⊥ where undecided); Nil = keep simulating.
using BgHarvest = std::function<Value(const ValueVec& code_decisions)>;

/// Body of simulator `me` (a C-process) with task input `my_input`.
ProcBody make_bg_simulator(BgConfig cfg, Value my_input, BgHarvest harvest);

/// Harvest policy for colorless adoption: decide the first code decision seen.
[[nodiscard]] BgHarvest adopt_any();

}  // namespace efd
