#include "algo/mp_protocols.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "algo/adopt_commit.hpp"

namespace efd {
namespace {

Proc floodmin(Context& ctx, FloodMinConfig cfg, int index, Value input) {
  // Flood (sender, value) to every mailbox, own one included.
  for (int j = 0; j < cfg.n; ++j) {
    co_await ctx.send(mp_mailbox(j), vec(index, input));
  }
  // A process knows its own input: it counts as heard from the start (the
  // self-send above is kept for broadcast symmetry and simply ignored).
  // Drain own inbox until n - f distinct senders were heard. Under
  // exhaustive exploration an empty-inbox recv BLOCKS (the explorer never
  // schedules it; see core/solvability); in driven runs it returns Nil and
  // the loop polls again.
  const RegAddr inbox = mp_mailbox(index);
  std::vector<char> seen(static_cast<std::size_t>(cfg.n), 0);
  seen[static_cast<std::size_t>(index)] = 1;
  int heard = 1;
  Value best = input;
  while (heard < cfg.n - cfg.f) {
    const Value msg = co_await ctx.recv(inbox);
    if (msg.is_nil()) continue;  // empty poll (driven runs only)
    const std::int64_t from = msg.at(0).int_or(-1);
    if (from < 0 || from >= cfg.n || seen[static_cast<std::size_t>(from)]) continue;
    seen[static_cast<std::size_t>(from)] = 1;
    ++heard;
    const Value v = msg.at(1);
    if (best.is_nil() || v < best) best = v;
  }
  co_await ctx.decide(best);
}

Proc floodmin_timeout(Context& ctx, FloodMinConfig cfg, int index, Value input, int patience) {
  // Same wire format as floodmin: vec(sender, value) to every mailbox.
  for (int j = 0; j < cfg.n; ++j) {
    co_await ctx.send(mp_mailbox(j), vec(index, input));
  }
  const RegAddr inbox = mp_mailbox(index);
  std::vector<char> seen(static_cast<std::size_t>(cfg.n), 0);
  seen[static_cast<std::size_t>(index)] = 1;
  int heard = 1;
  Value best = input;
  int idle = 0;
  while (heard < cfg.n - cfg.f && idle < patience) {
    const Value msg = co_await ctx.recv(inbox);
    if (msg.is_nil()) {
      ++idle;  // patience runs out only on CONSECUTIVE empty polls
      continue;
    }
    idle = 0;
    const std::int64_t from = msg.at(0).int_or(-1);
    if (from < 0 || from >= cfg.n || seen[static_cast<std::size_t>(from)]) continue;
    seen[static_cast<std::size_t>(from)] = 1;
    ++heard;
    const Value v = msg.at(1);
    if (best.is_nil() || v < best) best = v;
  }
  co_await ctx.decide(best);  // possibly on < n - f inputs: the lossy bug
}

Proc floodmin_rt(Context& ctx, FloodMinConfig cfg, int index, Value input, RetransmitConfig rt) {
  // DATA vec(0, sender, seq, value); ACK vec(1, acker, seq, acker_value).
  // One datum per sender here, so seq is always 0 — kept for the dedup
  // key's generality. ACKs piggyback the acker's own input: a process that
  // decided and stopped retransmitting still hands its value to starving
  // peers every time it acks their retries (without this, an early decider
  // goes quiet and a peer whose inbound DATA was dropped starves forever).
  for (int j = 0; j < cfg.n; ++j) {
    co_await ctx.send(mp_mailbox(j), vec(0, index, 0, input));
  }
  const RegAddr inbox = mp_mailbox(index);
  std::vector<char> seen(static_cast<std::size_t>(cfg.n), 0);
  std::vector<char> acked(static_cast<std::size_t>(cfg.n), 0);
  seen[static_cast<std::size_t>(index)] = 1;
  acked[static_cast<std::size_t>(index)] = 1;  // own datum needs no ack
  int heard = 1;
  Value best = input;
  int idle = 0;
  int backoff = std::max(1, rt.initial_backoff);
  int rounds = 0;
  while (heard < cfg.n - cfg.f) {
    const Value msg = co_await ctx.recv(inbox);
    if (msg.is_nil()) {
      ++idle;
      if (idle >= backoff && rounds < rt.max_rounds) {
        // Retransmit to every still-unacked peer (their DATA or our ACK may
        // be the lost one; the always-ack rule below converges either way).
        for (int j = 0; j < cfg.n; ++j) {
          if (!acked[static_cast<std::size_t>(j)]) {
            co_await ctx.send(mp_mailbox(j), vec(0, index, 0, input));
          }
        }
        idle = 0;
        backoff *= 2;
        ++rounds;
      }
      continue;
    }
    idle = 0;
    const std::int64_t tag = msg.at(0).int_or(-1);
    const std::int64_t from = msg.at(1).int_or(-1);
    if (from < 0 || from >= cfg.n) continue;
    if (tag == 0 || tag == 1) {  // both DATA and ACK carry (sender, value)
      if (!seen[static_cast<std::size_t>(from)]) {
        seen[static_cast<std::size_t>(from)] = 1;
        ++heard;
        const Value v = msg.at(3);
        if (best.is_nil() || v < best) best = v;
      }
    }
    if (tag == 0) {  // DATA: ALWAYS ack, duplicates included — the
                     // duplicate's ack may be the one that survives the link
      if (from != index) {
        co_await ctx.send(mp_mailbox(static_cast<int>(from)), vec(1, index, msg.at(2), input));
      }
    } else if (tag == 1) {
      acked[static_cast<std::size_t>(from)] = 1;
    }
  }
  co_await ctx.decide(best);
  // Bounded helper phase: peers still collecting retransmit at us; keep
  // acking (value piggybacked) long enough to cover their backoff horizon,
  // then quit. The bound keeps the body terminating in driven runs.
  const int helper_polls = std::max(1, rt.initial_backoff) * 64;
  for (int polls = 0; polls < helper_polls; ++polls) {
    const Value msg = co_await ctx.recv(inbox);
    if (msg.is_nil() || msg.at(0).int_or(-1) != 0) continue;
    const std::int64_t from = msg.at(1).int_or(-1);
    if (from >= 0 && from < cfg.n && from != index) {
      co_await ctx.send(mp_mailbox(static_cast<int>(from)), vec(1, index, msg.at(2), input));
    }
  }
}

Proc mp_consensus_client(Context& ctx, MpConsensusConfig cfg, Value input) {
  const int i = ctx.pid().index;
  for (int j = 0; j < cfg.n_servers; ++j) {
    co_await ctx.send(mp_mailbox(j), vec(i, input));
  }
  const Value d = co_await await_nonnil(ctx, reg(sym(cfg.ns + "/DEC")));
  co_await ctx.decide(d);
}

Proc mp_consensus_client_rt(Context& ctx, MpConsensusConfig cfg, Value input,
                            RetransmitConfig rt) {
  const int i = ctx.pid().index;
  for (int j = 0; j < cfg.n_servers; ++j) {
    co_await ctx.send(mp_mailbox(j), vec(i, input));
  }
  const RegAddr dec = reg(sym(cfg.ns + "/DEC"));
  int idle = 0;
  int backoff = std::max(1, rt.initial_backoff);
  int rounds = 0;
  for (;;) {
    const Value d = co_await ctx.read(dec);
    if (!d.is_nil()) {
      co_await ctx.decide(d);
      co_return;
    }
    ++idle;
    if (idle >= backoff && rounds < rt.max_rounds) {
      // DEC still empty: our proposal may have been swallowed — reflood it.
      for (int j = 0; j < cfg.n_servers; ++j) {
        co_await ctx.send(mp_mailbox(j), vec(i, input));
      }
      idle = 0;
      backoff *= 2;
      ++rounds;
    }
  }
}

Proc mp_consensus_server(Context& ctx, MpConsensusConfig cfg) {
  const int me = ctx.pid().index;  // servers sit at S-indices 0..n_servers-1
  const RegAddr inbox = mp_mailbox(me);
  const RegAddr dec = reg(sym(cfg.ns + "/DEC"));
  Value est;
  int round = 0;
  for (;;) {
    const Value leader = co_await ctx.query();
    if (leader.int_or(-1) != me) {
      co_await ctx.yield();
      continue;
    }
    if (est.is_nil()) {
      const Value msg = co_await ctx.recv(inbox);
      if (msg.is_nil()) {
        co_await ctx.yield();  // no proposal flooded to us yet
        continue;
      }
      est = msg.at(1);
    }
    // One proven adopt-commit per round, rounds strictly in order (safety
    // argument as in algo/leader_consensus.cpp's server_ac).
    const AdoptCommitInstance inst{cfg.ns + "/ac" + std::to_string(round), cfg.n_servers};
    const Value r = co_await adopt_commit(ctx, inst, me, est);
    est = r.at(1);
    if (r.at(0).int_or(0) == 1) {
      co_await ctx.write(dec, est);
    }
    ++round;
  }
}

}  // namespace

ProcBody make_floodmin(FloodMinConfig cfg, int index, Value input) {
  return [cfg, index, input = std::move(input)](Context& ctx) {
    return floodmin(ctx, cfg, index, input);
  };
}

ProcBody make_floodmin_timeout(FloodMinConfig cfg, int index, Value input, int patience) {
  return [cfg, index, input = std::move(input), patience](Context& ctx) {
    return floodmin_timeout(ctx, cfg, index, input, patience);
  };
}

ProcBody make_floodmin_rt(FloodMinConfig cfg, int index, Value input, RetransmitConfig rt) {
  return [cfg, index, input = std::move(input), rt](Context& ctx) {
    return floodmin_rt(ctx, cfg, index, input, rt);
  };
}

ProcBody make_mp_consensus_client(MpConsensusConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return mp_consensus_client(ctx, cfg, input);
  };
}

ProcBody make_mp_consensus_server(MpConsensusConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return mp_consensus_server(ctx, cfg); };
}

ProcBody make_mp_consensus_client_rt(MpConsensusConfig cfg, Value input, RetransmitConfig rt) {
  return [cfg = std::move(cfg), input = std::move(input), rt](Context& ctx) {
    return mp_consensus_client_rt(ctx, cfg, input, rt);
  };
}

}  // namespace efd
