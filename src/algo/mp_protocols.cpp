#include "algo/mp_protocols.hpp"

#include <string>
#include <utility>
#include <vector>

#include "algo/adopt_commit.hpp"

namespace efd {
namespace {

Proc floodmin(Context& ctx, FloodMinConfig cfg, int index, Value input) {
  // Flood (sender, value) to every mailbox, own one included.
  for (int j = 0; j < cfg.n; ++j) {
    co_await ctx.send(mp_mailbox(j), vec(index, input));
  }
  // A process knows its own input: it counts as heard from the start (the
  // self-send above is kept for broadcast symmetry and simply ignored).
  // Drain own inbox until n - f distinct senders were heard. Under
  // exhaustive exploration an empty-inbox recv BLOCKS (the explorer never
  // schedules it; see core/solvability); in driven runs it returns Nil and
  // the loop polls again.
  const RegAddr inbox = mp_mailbox(index);
  std::vector<char> seen(static_cast<std::size_t>(cfg.n), 0);
  seen[static_cast<std::size_t>(index)] = 1;
  int heard = 1;
  Value best = input;
  while (heard < cfg.n - cfg.f) {
    const Value msg = co_await ctx.recv(inbox);
    if (msg.is_nil()) continue;  // empty poll (driven runs only)
    const std::int64_t from = msg.at(0).int_or(-1);
    if (from < 0 || from >= cfg.n || seen[static_cast<std::size_t>(from)]) continue;
    seen[static_cast<std::size_t>(from)] = 1;
    ++heard;
    const Value v = msg.at(1);
    if (best.is_nil() || v < best) best = v;
  }
  co_await ctx.decide(best);
}

Proc mp_consensus_client(Context& ctx, MpConsensusConfig cfg, Value input) {
  const int i = ctx.pid().index;
  for (int j = 0; j < cfg.n_servers; ++j) {
    co_await ctx.send(mp_mailbox(j), vec(i, input));
  }
  const Value d = co_await await_nonnil(ctx, reg(sym(cfg.ns + "/DEC")));
  co_await ctx.decide(d);
}

Proc mp_consensus_server(Context& ctx, MpConsensusConfig cfg) {
  const int me = ctx.pid().index;  // servers sit at S-indices 0..n_servers-1
  const RegAddr inbox = mp_mailbox(me);
  const RegAddr dec = reg(sym(cfg.ns + "/DEC"));
  Value est;
  int round = 0;
  for (;;) {
    const Value leader = co_await ctx.query();
    if (leader.int_or(-1) != me) {
      co_await ctx.yield();
      continue;
    }
    if (est.is_nil()) {
      const Value msg = co_await ctx.recv(inbox);
      if (msg.is_nil()) {
        co_await ctx.yield();  // no proposal flooded to us yet
        continue;
      }
      est = msg.at(1);
    }
    // One proven adopt-commit per round, rounds strictly in order (safety
    // argument as in algo/leader_consensus.cpp's server_ac).
    const AdoptCommitInstance inst{cfg.ns + "/ac" + std::to_string(round), cfg.n_servers};
    const Value r = co_await adopt_commit(ctx, inst, me, est);
    est = r.at(1);
    if (r.at(0).int_or(0) == 1) {
      co_await ctx.write(dec, est);
    }
    ++round;
  }
}

}  // namespace

ProcBody make_floodmin(FloodMinConfig cfg, int index, Value input) {
  return [cfg, index, input = std::move(input)](Context& ctx) {
    return floodmin(ctx, cfg, index, input);
  };
}

ProcBody make_mp_consensus_client(MpConsensusConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return mp_consensus_client(ctx, cfg, input);
  };
}

ProcBody make_mp_consensus_server(MpConsensusConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return mp_consensus_server(ctx, cfg); };
}

}  // namespace efd
