#include "algo/sim_program.hpp"

#include <stdexcept>

namespace efd {
namespace {

SimAction::Kind to_sim_kind(OpKind k) {
  switch (k) {
    case OpKind::kRead:
      return SimAction::Kind::kRead;
    case OpKind::kWrite:
      return SimAction::Kind::kWrite;
    case OpKind::kQuery:
      return SimAction::Kind::kQuery;
    case OpKind::kYield:
      return SimAction::Kind::kYield;
    case OpKind::kDecide:
      return SimAction::Kind::kDecide;
  }
  return SimAction::Kind::kHalt;
}

}  // namespace

Value ReplayProgram::init(int index, const Value& input) const {
  return vec(Value(index), input);
}

SimAction ReplayProgram::action(const Value& state) const {
  const auto& st = state.as_vec();
  const int index = static_cast<int>(st[0].int_or(0));
  const Value& input = st[1];

  Context ctx(cpid(index));
  Proc proc = body_(index, input, ctx);
  if (!proc.valid()) throw std::logic_error("ReplayProgram: body produced no coroutine");
  proc.handle().resume();  // prime to the first pending op
  if (auto err = proc.handle().promise().error) std::rethrow_exception(err);

  for (std::size_t t = 2; t < st.size(); ++t) {
    if (proc.done() || !ctx.has_pending()) {
      return SimAction{};  // already halted earlier than the recorded history
    }
    ctx.deliver(st[t]);
    if (auto err = proc.handle().promise().error) std::rethrow_exception(err);
  }

  if (proc.done() || !ctx.has_pending()) return SimAction{};
  const PendingOp& op = ctx.pending();
  return SimAction{to_sim_kind(op.kind), op.addr, op.value};
}

Value ReplayProgram::transition(const Value& state, const Value& result) const {
  ValueVec st = state.as_vec();
  st.push_back(result);
  return Value(std::move(st));
}

Proc run_sim_program(Context& ctx, SimProgramPtr prog, int index, Value input) {
  Value state = prog->init(index, input);
  for (;;) {
    const SimAction act = prog->action(state);
    Value result;
    switch (act.kind) {
      case SimAction::Kind::kRead:
        result = co_await ctx.read(act.addr);
        break;
      case SimAction::Kind::kWrite:
        co_await ctx.write(act.addr, act.value);
        break;
      case SimAction::Kind::kQuery:
        result = co_await ctx.query();
        break;
      case SimAction::Kind::kYield:
        co_await ctx.yield();
        break;
      case SimAction::Kind::kDecide:
        co_await ctx.decide(act.value);
        break;
      case SimAction::Kind::kHalt:
        co_return;
    }
    state = prog->transition(state, result);
  }
}

Co<Value> run_until_decision(Context& ctx, SimProgramPtr prog, int index, Value input) {
  Value state = prog->init(index, input);
  for (;;) {
    const SimAction act = prog->action(state);
    Value result;
    switch (act.kind) {
      case SimAction::Kind::kRead:
        result = co_await ctx.read(act.addr);
        break;
      case SimAction::Kind::kWrite:
        co_await ctx.write(act.addr, act.value);
        break;
      case SimAction::Kind::kQuery:
        result = co_await ctx.query();
        break;
      case SimAction::Kind::kYield:
        co_await ctx.yield();
        break;
      case SimAction::Kind::kDecide:
        co_return act.value;
      case SimAction::Kind::kHalt:
        throw std::logic_error("run_until_decision: program halted without deciding");
    }
    state = prog->transition(state, result);
  }
}

ProcBody make_sim_program_body(SimProgramPtr prog, int index, Value input) {
  return [prog = std::move(prog), index, input = std::move(input)](Context& ctx) {
    return run_sim_program(ctx, std::move(prog), index, input);
  };
}

}  // namespace efd
