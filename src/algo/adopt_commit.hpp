// Adopt-commit object (Gafni's commit-adopt), register-based, one-shot.
//
// propose(v) returns (commit, u) or (adopt, u) with the classic guarantees:
//  * validity — u was proposed by someone;
//  * commit-validity — if every proposal equals v, everyone commits v;
//  * agreement — if anyone commits u, everyone returns (·, u).
// Obstruction-free termination in O(P) steps; never blocks. The round-based
// consensus ablation (App. C.1 alternative in bench E12) builds consensus
// from one adopt-commit per round plus Ω to break ties.
//
// Registers of instance `ns` (P parties): ns/A[p] = proposal,
// ns/B[p] = [value, committed-bit].
#pragma once

#include "sim/proc.hpp"

namespace efd {

/// Interns the instance's register bases once at construction.
struct AdoptCommitInstance {
  AdoptCommitInstance() = default;
  AdoptCommitInstance(const std::string& ns, int num_parties)
      : a(sym(ns + "/A")), b(sym(ns + "/B")), num_parties(num_parties) {}

  Sym a;  ///< ns/A[p] = proposal
  Sym b;  ///< ns/B[p] = [value, committed-bit]
  int num_parties = 0;
};

/// Outcome encoding: [1, u] = commit u; [0, u] = adopt u.
Co<Value> adopt_commit(Context& ctx, AdoptCommitInstance inst, int me, Value v);

}  // namespace efd
