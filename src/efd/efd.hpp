// Umbrella header for the EFD (external failure detection) library — a C++
// reproduction of "Wait-Freedom with Advice" (Delporte-Gallet, Fauconnier,
// Gafni, Kuznetsov; PODC 2012 / arXiv:1109.3056).
//
// Layering (each header documents its piece of the paper):
//   sim/    deterministic shared-memory simulator: Values, registers,
//           coroutine processes, the World executor, schedulers, traces
//   fd/     failure patterns, environments, detector zoo (Ω, ¬Ωk, →Ωk, ...),
//           the CHT sampling DAG, the reduction harness
//   tasks/  the task formalism and the paper's menu of tasks
//   algo/   the constructions: Prop. 1 solver, Paxos, Ω-consensus, k-set
//           agreement with →Ωk, safe agreement, BG-simulation, Fig. 2
//           k-codes simulation, Fig. 4 renaming, Fig. 3 wrapper, Thm. 7
//           booster, Fig. 1 ¬Ωk extraction
//   core/   system harness, exhaustive k-concurrency exploration, FLP-style
//           lasso search, task reductions, the Thm. 10 hierarchy table
#pragma once

#include "algo/bg_simulation.hpp"
#include "algo/booster.hpp"
#include "algo/double_sim.hpp"
#include "algo/extraction.hpp"
#include "algo/k_codes_sim.hpp"
#include "algo/leader_consensus.hpp"
#include "algo/mp_protocols.hpp"
#include "algo/one_concurrent.hpp"
#include "algo/participating_set.hpp"
#include "algo/adopt_commit.hpp"
#include "algo/paxos.hpp"
#include "algo/renaming.hpp"
#include "algo/renaming_1resilient.hpp"
#include "algo/safe_agreement.hpp"
#include "algo/set_agreement_antiomega.hpp"
#include "algo/sim_program.hpp"
#include "core/bivalence.hpp"
#include "core/campaign.hpp"
#include "core/efd_system.hpp"
#include "core/hierarchy.hpp"
#include "core/monitors.hpp"
#include "core/reduction.hpp"
#include "core/repro_scenarios.hpp"
#include "core/telemetry.hpp"
#include "core/weakest.hpp"
#include "core/solvability.hpp"
#include "fd/dag.hpp"
#include "fd/detectors.hpp"
#include "fd/emulations.hpp"
#include "fd/failure_pattern.hpp"
#include "fd/faulty.hpp"
#include "fd/history.hpp"
#include "fd/reduction.hpp"
#include "sim/ids.hpp"
#include "sim/memory.hpp"
#include "sim/msg_world.hpp"
#include "sim/proc.hpp"
#include "sim/snapshot.hpp"
#include "sim/adversary.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/value.hpp"
#include "sim/world.hpp"
#include "tasks/consensus.hpp"
#include "tasks/identity.hpp"
#include "tasks/participating_set.hpp"
#include "tasks/renaming.hpp"
#include "tasks/set_agreement.hpp"
#include "tasks/symmetry_breaking.hpp"
#include "tasks/task.hpp"
