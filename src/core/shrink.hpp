// ddmin-style tape shrinking: reduce a failing ScheduleTape to a locally
// minimal counterexample.
//
// Given a tape whose replay violates some predicate (a task relation, a
// safety check, any user lambda over the replayed world encoded as a
// TapePredicate), the shrinker repeatedly removes parts of the tape —
// trailing suffix, step ranges at halving granularities (delta debugging),
// individual crash points, individual link-fault charges — re-replaying
// after every candidate edit and keeping only edits that still fail. The
// result is locally minimal: no single step, contiguous chunk at the tried
// granularities, crash point, or link-fault charge can be removed without
// losing the failure.
//
// Removing steps shifts later step indices, so crash points and link-fault
// points are remapped (points inside a removed range snap to its start —
// the fault itself is never silently dropped by a step removal). FD deltas are keyed by model
// TIME and left untouched: the tape's history() semantics (latest delta at
// or before t) stays well-defined for any schedule the shrinker produces.
// The recorded expect_hash is cleared as soon as the schedule changes — it
// certified the ORIGINAL run; tools re-stamp it by replaying the minimized
// tape once (tools/efd_repro shrink does).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/replay.hpp"

namespace efd {

/// True when the candidate tape still reproduces the failure of interest.
/// The predicate owns world reconstruction: typically build from
/// tape.pattern()/tape.history(), replay_tape, and evaluate the violated
/// property (core/repro_scenarios.hpp provides this for named scenarios).
using TapePredicate = std::function<bool(const ScheduleTape&)>;

struct ShrinkOptions {
  int max_rounds = 64;  ///< full granularity sweeps before giving up
};

struct ShrinkStats {
  std::int64_t candidates = 0;  ///< predicate evaluations (replays)
  std::int64_t removed_steps = 0;
  std::int64_t removed_crashes = 0;
  std::int64_t removed_linkfaults = 0;
  int rounds = 0;               ///< full passes until the fixed point
  bool reached_fixpoint = false;
};

/// Shrinks `tape` while `still_fails` keeps returning true. If the input
/// tape itself does not satisfy the predicate, it is returned unchanged
/// (stats report zero candidates kept). Deterministic: same tape + same
/// predicate => same minimized tape.
[[nodiscard]] ScheduleTape shrink_tape(ScheduleTape tape, const TapePredicate& still_fails,
                                       const ShrinkOptions& opts = {},
                                       ShrinkStats* stats = nullptr);

}  // namespace efd
