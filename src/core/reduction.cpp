#include "core/reduction.hpp"

#include <unordered_map>
#include <vector>

#include "algo/paxos.hpp"
#include "sim/memory.hpp"

namespace efd {
namespace {

std::string slot_ns(const SlotRenamingConfig& cfg, int t) {
  return cfg.ns + "/slot" + std::to_string(t);
}

Proc slot_renaming_client(Context& ctx, SlotRenamingConfig cfg, Value input) {
  const int me = ctx.pid().index;
  co_await ctx.write(reg(sym(cfg.ns + "/Part"), me), input);  // register with original name
  std::vector<RegAddr> slot_dec;  // slot t's decision register, interned once
  slot_dec.reserve(static_cast<std::size_t>(cfg.j));
  for (int t = 1; t <= cfg.j; ++t) slot_dec.push_back(reg(sym(slot_ns(cfg, t) + "/DEC")));
  for (;;) {
    for (int t = 1; t <= cfg.j; ++t) {
      const Value winner = co_await ctx.read(slot_dec[static_cast<std::size_t>(t - 1)]);
      if (winner.is_nil()) break;  // slots fill in order; later ones are empty too
      if (winner.int_or(-1) == me) {
        co_await ctx.decide(Value(t));
        co_return;
      }
    }
    co_await ctx.yield();
  }
}

Proc slot_renaming_server(Context& ctx, SlotRenamingConfig cfg) {
  const int me = ctx.pid().index;
  const Sym part = sym(cfg.ns + "/Part");
  std::vector<PaxosInstance> insts;  // slot t's consensus instance, interned once
  insts.reserve(static_cast<std::size_t>(cfg.j));
  for (int t = 1; t <= cfg.j; ++t) insts.emplace_back(slot_ns(cfg, t), cfg.n);
  std::unordered_map<int, int> rounds;
  for (;;) {
    const Value leader = co_await ctx.query();  // Ω
    if (leader.int_or(-1) != me) {
      co_await ctx.yield();
      continue;
    }
    // Find the first undecided slot and the already-named ids.
    int slot = 0;
    std::vector<bool> named(static_cast<std::size_t>(cfg.n), false);
    for (int t = 1; t <= cfg.j && slot == 0; ++t) {
      const Value winner = co_await ctx.read(insts[static_cast<std::size_t>(t - 1)].dec);
      if (winner.is_nil()) {
        slot = t;
      } else if (winner.int_or(-1) >= 0 && winner.int_or(-1) < cfg.n) {
        named[static_cast<std::size_t>(winner.as_int())] = true;
      }
    }
    if (slot == 0) {  // all slots assigned
      co_await ctx.yield();
      continue;
    }
    // Candidate: smallest registered id without a name yet.
    int cand = -1;
    for (int i = 0; i < cfg.n && cand < 0; ++i) {
      if (named[static_cast<std::size_t>(i)]) continue;
      const Value p = co_await ctx.read(reg(part, i));
      if (!p.is_nil()) cand = i;
    }
    if (cand < 0) {
      co_await ctx.yield();  // nobody is waiting for a name
      continue;
    }
    const PaxosInstance& inst = insts[static_cast<std::size_t>(slot - 1)];
    co_await paxos_attempt(ctx, inst, me, rounds[slot]++, Value(cand));
  }
}

Proc consensus_from_renaming(Context& ctx, std::string ns, int me, Value input,
                             SimProgramPtr renaming) {
  const Sym v_base = sym(ns + "/V");
  co_await ctx.write(reg(v_base, me), input);  // publish proposal
  const Value name = co_await run_until_decision(ctx, renaming, me, Value(me + 1));
  if (name.int_or(0) == 1) {
    co_await ctx.decide(input);                       // I won: my proposal
  } else {
    // Name 2 proves the other process wrote its proposal before my renaming
    // finished, so this read busy-waits only finitely.
    const Value other = co_await await_nonnil(ctx, reg(v_base, 1 - me));
    co_await ctx.decide(other);
  }
}

}  // namespace

ProcBody make_slot_renaming_client(SlotRenamingConfig cfg, Value input) {
  return [cfg = std::move(cfg), input = std::move(input)](Context& ctx) {
    return slot_renaming_client(ctx, cfg, input);
  };
}

ProcBody make_slot_renaming_server(SlotRenamingConfig cfg) {
  return [cfg = std::move(cfg)](Context& ctx) { return slot_renaming_server(ctx, cfg); };
}

ProcBody make_consensus_from_renaming(std::string ns, int me, Value input,
                                      SimProgramPtr renaming) {
  return [ns = std::move(ns), me, input = std::move(input),
          renaming = std::move(renaming)](Context& ctx) {
    return consensus_from_renaming(ctx, ns, me, input, renaming);
  };
}

}  // namespace efd
