// Named reproduction scenarios: the bridge between a ScheduleTape (which
// stores only the environment and the schedule) and a runnable World (which
// needs process bodies).
//
// A tape names its scenario; the registry rebuilds that scenario's processes
// around the tape's recorded pattern + FD history, replays, and evaluates
// the scenario's violation predicate. The same registry drives:
//  * tools/efd_repro  — record / replay / shrink from the command line;
//  * tests/test_replay_corpus.cpp — every checked-in corpus tape replays as
//    a regression (ctest -L replay);
//  * core/shrink.hpp — scenario_predicate() is the ddmin oracle.
//
// Scenario contract: make_world must spawn DETERMINISTIC bodies — fixed
// sizes, fixed inputs, fixed namespaces — so a tape recorded today rebuilds
// bit-identically in any future process. All seed-dependence lives in
// record() (pattern, history, schedule), whose products the tape carries.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/shrink.hpp"
#include "sim/replay.hpp"
#include "sim/world.hpp"

namespace efd {

struct Scenario {
  std::string name;
  std::string summary;

  /// Rebuilds the scenario's processes in a world over the given
  /// environment (typically tape.pattern() / tape.history()).
  std::function<World(const FailurePattern&, HistoryPtr)> make_world;

  /// True when the scenario's property is violated in the stopped world.
  std::function<bool(const World&)> violated;

  /// Records a fresh native run from `seed` (scenario-specific scheduler,
  /// detector and fault plan); the returned tape has expect_violated and
  /// expect_hash stamped from the observed run.
  std::function<ScheduleTape(std::uint64_t seed)> record;
};

/// All registered scenarios (stable order; names are unique).
[[nodiscard]] const std::vector<Scenario>& scenarios();
/// Lookup by name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(const std::string& name);

struct ScenarioReplayOutcome {
  ReplayResult replay;
  bool violated = false;  ///< scenario predicate on the replayed world
  RunStats stats;         ///< the replayed world's run stats
  /// expect_hash and expect_violated (where present) both matched.
  [[nodiscard]] bool matches(const ScheduleTape& tape) const {
    return replay.hash_match &&
           (!tape.expect_violated || *tape.expect_violated == violated);
  }
};

/// Replays `tape` in a fresh world of scenario `sc` and evaluates the
/// predicate.
[[nodiscard]] ScenarioReplayOutcome replay_in_scenario(const Scenario& sc,
                                                       const ScheduleTape& tape);

/// ddmin oracle: candidate tapes still count as failing while the
/// scenario's predicate outcome equals `expect_violated`.
[[nodiscard]] TapePredicate scenario_predicate(const Scenario& sc, bool expect_violated);

}  // namespace efd
