// The weakest-failure-detector round trip (Thm. 10, operationally).
//
// Thm. 10 is an equivalence: a level-k task is solvable WITH ¬Ωk (Thm. 9),
// and any detector solving it YIELDS ¬Ωk (Thm. 8). This driver runs both
// directions on one detector and reports the round trip:
//
//   D --(solves)--> k-set agreement          [algo/set_agreement_antiomega]
//   D --(Fig. 1 extraction)--> emulated ¬Ωk  [algo/extraction]
//   emulated history |= ¬Ωk spec             [AntiOmegaK::check]
//
// Used by tests/test_weakest.cpp and as a one-call demonstration of the
// paper's headline classification.
#pragma once

#include "algo/extraction.hpp"
#include "fd/detectors.hpp"

namespace efd {

struct RoundTripConfig {
  int n = 4;
  int k = 2;
  std::uint64_t seed = 1;
  FailurePattern pattern{0};

  std::int64_t solve_steps = 2000000;    ///< budget for the solving run
  std::int64_t extract_steps = 6000;     ///< budget for the reduction run
  ExtractionConfig extraction{};         ///< ns/budgets; n,k are overwritten
};

struct RoundTripResult {
  bool solved = false;          ///< all n processes decided, ≤ k values
  std::size_t distinct = 0;
  std::int64_t solve_steps = 0;
  bool anti_omega_ok = false;   ///< emulated history passes the ¬Ωk check
  Time horizon = 0;
};

/// Runs both directions of Thm. 10 with detector `d` (expected to emit →Ωk
/// shaped samples, e.g. VectorOmegaK or a MappedDetector chain ending there).
RoundTripResult weakest_fd_round_trip(const DetectorPtr& d, RoundTripConfig cfg);

}  // namespace efd
