#include "core/repro_scenarios.hpp"

#include <algorithm>
#include <set>

#include "algo/leader_consensus.hpp"
#include "algo/mp_protocols.hpp"
#include "algo/one_concurrent.hpp"
#include "algo/paxos.hpp"
#include "algo/renaming.hpp"
#include "algo/set_agreement_antiomega.hpp"
#include "fd/detectors.hpp"
#include "sim/adversary.hpp"
#include "sim/faultplan.hpp"
#include "sim/memory.hpp"
#include "tasks/consensus.hpp"

namespace efd {
namespace {

// NOTE: every ProcBody below is a lambda that CALLS a standalone coroutine
// with by-value parameters (sim/proc.hpp authoring rules).

Proc spin_forever(Context& ctx) {
  for (;;) co_await ctx.yield();
}

Proc write_then_decide(Context& ctx, RegAddr addr, Value v, Value dec) {
  co_await ctx.write(addr, std::move(v));
  co_await ctx.decide(std::move(dec));
}

Proc yield_n_then_decide(Context& ctx, int n, Value dec) {
  for (int i = 0; i < n; ++i) co_await ctx.yield();
  co_await ctx.decide(std::move(dec));
}

Proc yield_n_then_quit(Context& ctx, int n) {
  for (int i = 0; i < n; ++i) co_await ctx.yield();
  // Terminates WITHOUT deciding: the quitter the admission window must
  // retire (the terminated-undecided case of AdmissionWindow::refresh).
}

Proc bcf_client(Context& ctx, int i) {
  const Sym v = sym("bcf/V");
  co_await ctx.write(reg(v, i), Value(100 + i));
  const Value first = co_await ctx.read(reg(v, 0));
  co_await ctx.decide(first.is_nil() ? Value(100 + i) : first);
}

Proc brn_client(Context& ctx, int i) {
  const Sym claim = sym("brn/C");
  co_await ctx.write(reg(sym("brn/P"), i), Value(i));
  for (int s = 1; s <= 9; ++s) {
    const Value cur = co_await ctx.read(reg(claim, s));
    if (cur.is_nil()) {
      co_await ctx.write(reg(claim, s), Value(i));  // claim without recheck: the bug
      co_await ctx.decide(Value(s));
      co_return;
    }
  }
  co_await ctx.decide(Value(9));  // unreachable with 8 clients and 9 slots
}

Proc tw_writer(Context& ctx) {
  const RegAddr a{"tw/A"};
  const RegAddr b{"tw/B"};
  for (std::int64_t e = 1;; ++e) {
    co_await ctx.write(a, Value(e));
    co_await ctx.write(b, Value(e));  // the commit; a crash in between tears the pair
    co_await ctx.yield();
  }
}

Proc tw_client(Context& ctx) {
  const RegAddr a{"tw/A"};
  const RegAddr b{"tw/B"};
  int torn = 0;
  for (;;) {
    const Value va = co_await ctx.read(a);
    if (va.is_nil()) {
      co_await ctx.yield();
      continue;
    }
    const Value vb = co_await ctx.read(b);
    if (vb == va || ++torn >= 3) {
      // torn >= 3 is the bug: "the writer must be dead" — decides the
      // uncommitted A value instead of falling back to the committed B.
      co_await ctx.decide(va);
      co_return;
    }
    co_await ctx.yield();
  }
}

Proc endless_proposer(Context& ctx, int me, Value v) {
  const PaxosInstance inst{"px", 2};
  for (int r = 0;; ++r) {
    const Value d = co_await paxos_attempt(ctx, inst, me, r, v);
    if (!d.is_nil()) {
      co_await ctx.decide(d);
      co_return;
    }
  }
}

/// Records `sched` driving `w` (which must be freshly spawned) with the
/// given crash plan, and captures the tape with expect_* stamped.
ScheduleTape record_run(const std::string& scenario_name, World& w, const FailurePattern& base,
                        Scheduler& sched, std::int64_t max_steps,
                        std::vector<CrashPoint> crashes) {
  w.enable_trace();
  RecordingScheduler rec(sched);
  drive_with_crashes(w, rec, max_steps, crashes);
  ScheduleTape t = ScheduleTape::capture(scenario_name, base, rec.steps(), std::move(crashes),
                                         w.trace());
  t.expect_violated = find_scenario(scenario_name)->violated(w);
  return t;
}

// ---- synth_write_race ------------------------------------------------------
// Synthetic known-bad scenario (the shrinker's reference workload): three
// writers race on one register; "p1's write lost to p2's although p1 also
// decided" is the injected bug. Minimal witness: p1 writes, p2 overwrites,
// p1 decides — 3 steps out of a ~100-step random recording.

const RegAddr kSynthX{"synth/X"};

World make_synth_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  w.spawn_c(0, [](Context& ctx) { return write_then_decide(ctx, kSynthX, Value(1), Value(1)); });
  w.spawn_c(1, [](Context& ctx) { return write_then_decide(ctx, kSynthX, Value(2), Value(2)); });
  w.spawn_c(2, [](Context& ctx) { return yield_n_then_decide(ctx, 30, Value(0)); });
  for (int i = 0; i < f.n(); ++i) w.spawn_s(i, spin_forever);
  return w;
}

bool synth_violated(const World& w) {
  return w.memory().read(kSynthX) == Value(2) && w.decided(cpid(0));
}

ScheduleTape synth_record(std::uint64_t seed) {
  const FailurePattern base(1);
  World w = make_synth_world(base, TrivialFd{}.history(base, 0));
  RandomScheduler rs(seed);
  return record_run("synth_write_race", w, base, rs, 2000, {});
}

// ---- paxos_lockstep_livelock ----------------------------------------------
// The Fig. 1 adversarial fact: strict lockstep rotation of two endless Paxos
// proposers preempts every ballot. Violation = livelock witness (both
// proposers keep working, nothing decides), so the EXPECTED outcome of this
// scenario's tapes is `violated` — the counterexample is the artifact.

World make_paxos_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  for (int i = 0; i < 2; ++i) {
    w.spawn_c(i, [i](Context& ctx) { return endless_proposer(ctx, i, Value(i)); });
  }
  return w;
}

bool paxos_violated(const World& w) {
  return w.memory().read("px/DEC").is_nil() && w.steps_taken(cpid(0)) >= 8 &&
         w.steps_taken(cpid(1)) >= 8;
}

ScheduleTape paxos_record(std::uint64_t) {
  const FailurePattern base(0);
  World w = make_paxos_world(base, TrivialFd{}.history(base, 0));
  LockstepScheduler ls({cpid(0), cpid(1)});
  return record_run("paxos_lockstep_livelock", w, base, ls, 400, {});
}

// ---- cons_leader_crash_commit ---------------------------------------------
// Directed fault injection: leader-based consensus (Ω advice); the recording
// locates the leader's first Paxos accept (the ns/ACC write that commits a
// ballot) and kills that S-process at exactly the NEXT step index — the
// crash lands mid-commit, after the accept but before the decision write.
// Agreement and validity must survive (paxos safety needs no liveness).

constexpr int kConsN = 3;

World make_cons_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  const LeaderConsensusConfig cfg{"cons", kConsN};
  for (int i = 0; i < kConsN; ++i) w.spawn_c(i, make_consensus_client(cfg, Value(10 + i)));
  for (int i = 0; i < kConsN; ++i) w.spawn_s(i, make_consensus_server(cfg));
  return w;
}

bool cons_violated(const World& w) {
  std::set<std::int64_t> vals;
  for (int i = 0; i < kConsN; ++i) {
    if (!w.decided(cpid(i))) continue;
    const Value d = w.decision(cpid(i));
    if (!d.is_int() || d.as_int() < 10 || d.as_int() >= 10 + kConsN) return true;  // validity
    vals.insert(d.as_int());
  }
  return vals.size() > 1;  // agreement
}

ScheduleTape cons_record(std::uint64_t seed) {
  const FailurePattern base(kConsN);
  const OmegaFd omega(12);

  // Phase 1: clean recording to locate the commit point. The base pattern is
  // failure-free and nothing is injected, so no step is refused and trace
  // position == schedule step index.
  std::vector<CrashPoint> crashes;
  {
    World w = make_cons_world(base, omega.history(base, seed));
    w.enable_trace();
    RandomScheduler inner(seed ^ 0x5EED);
    RecordingScheduler rec(inner);
    drive_with_crashes(w, rec, 4000, {});
    const Sym acc = sym("cons/ACC");
    const auto& trace = w.trace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto& s = trace[i];
      if (s.pid.is_s() && s.op == OpKind::kWrite && s.addr == reg(acc, s.pid.index)) {
        crashes.push_back(CrashPoint{static_cast<std::int64_t>(i) + 1, s.pid.index});
        break;
      }
    }
  }

  // Phase 2: the actual recording, same seed, with the mid-commit kill. The
  // dead leader means nobody ever decides, so bound the post-crash window
  // explicitly — it is where the safety predicate gets exercised.
  const std::int64_t budget = crashes.empty() ? 1500 : crashes.front().step_index + 400;
  World w = make_cons_world(base, omega.history(base, seed));
  RandomScheduler inner(seed ^ 0x5EED);
  return record_run("cons_leader_crash_commit", w, base, inner, budget, std::move(crashes));
}

// ---- renaming_flip_lockstep ------------------------------------------------
// Fig. 4 renaming under the flip-maximizing adversary: strict lockstep of
// all j participants keeps every collect one step stale, so suggestions
// flip-flop before settling. Safety: chosen names distinct and in
// [1, 2j-1].

constexpr int kRenJ = 3;

World make_ren_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  const RenamingConfig cfg{"ren", kRenJ};
  for (int i = 0; i < kRenJ; ++i) {
    w.spawn_c(i, make_renaming_kconc(cfg, Value(100 + i)));
  }
  for (int i = 0; i < f.n(); ++i) w.spawn_s(i, spin_forever);
  return w;
}

bool ren_violated(const World& w) {
  std::set<std::int64_t> names;
  for (int i = 0; i < kRenJ; ++i) {
    if (!w.decided(cpid(i))) continue;
    const Value d = w.decision(cpid(i));
    if (!d.is_int() || d.as_int() < 1 || d.as_int() > 2 * kRenJ - 1) return true;
    if (!names.insert(d.as_int()).second) return true;  // duplicate name
  }
  return false;
}

ScheduleTape ren_record(std::uint64_t) {
  const FailurePattern base(1);
  World w = make_ren_world(base, TrivialFd{}.history(base, 0));
  LockstepScheduler ls({cpid(0), cpid(1), cpid(2)});
  return record_run("renaming_flip_lockstep", w, base, ls, 5000, {});
}

// ---- ksa_starved_leader ----------------------------------------------------
// The ¬Ωk starvation adversary against KSA: →Ωk's stable slot names one
// correct S-process, and the schedule suppresses exactly that process — the
// advice permanently points at a server that never steps (the FD-level
// starvation ¬Ωk's permanent-exclusion clause is about). Liveness may go,
// safety (≤ k distinct decisions, validity) must not.

constexpr int kKsaN = 4;
constexpr int kKsaK = 2;

World make_ksa_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  const KsaConfig cfg{"ksa", kKsaN, kKsaK};
  for (int i = 0; i < kKsaN; ++i) w.spawn_c(i, make_ksa_client(cfg, Value(i)));
  for (int i = 0; i < kKsaN; ++i) w.spawn_s(i, make_ksa_server(cfg));
  return w;
}

bool ksa_violated(const World& w) {
  std::set<std::int64_t> vals;
  for (int i = 0; i < kKsaN; ++i) {
    if (!w.decided(cpid(i))) continue;
    const Value d = w.decision(cpid(i));
    if (!d.is_int() || d.as_int() < 0 || d.as_int() >= kKsaN) return true;  // validity
    vals.insert(d.as_int());
  }
  return static_cast<int>(vals.size()) > kKsaK;
}

ScheduleTape ksa_record(std::uint64_t seed) {
  const FailurePattern base(kKsaN);
  const VectorOmegaK vo(kKsaK, 25);
  const int starved = vo.stable_slot(base, seed);
  World w = make_ksa_world(base, vo.history(base, seed));
  RoundRobinScheduler inner;
  SuppressScheduler sup(inner, [starved](Pid pid, const World&) {
    return pid == spid(starved);
  });
  return record_run("ksa_starved_leader", w, base, sup, 6000, {});
}

// ---- quitter_window --------------------------------------------------------
// The terminated-undecided window case: under a 1-concurrent admission
// window, the middle arrival terminates WITHOUT deciding. The window must
// retire it (a quitter can only take null steps) or the remaining arrivals
// starve; concurrency must never exceed 1 either way.

World make_quitter_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  w.spawn_c(0, [](Context& ctx) { return yield_n_then_decide(ctx, 3, Value(0)); });
  w.spawn_c(1, [](Context& ctx) { return yield_n_then_quit(ctx, 2); });
  w.spawn_c(2, [](Context& ctx) { return yield_n_then_decide(ctx, 3, Value(2)); });
  return w;
}

bool quitter_violated(const World& w) {
  return !w.decided(cpid(0)) || !w.decided(cpid(2)) || max_concurrency(w.trace()) > 1;
}

ScheduleTape quitter_record(std::uint64_t) {
  const FailurePattern base(0);
  World w = make_quitter_world(base, TrivialFd{}.history(base, 0));
  KConcurrencyScheduler ks(1, {0, 1, 2}, 0);
  return record_run("quitter_window", w, base, ks, 200, {});
}

// ---- one_conc_window -------------------------------------------------------
// The generic 1-concurrent solver (Prop. 1) on consensus: correct ONLY in
// 1-concurrent runs, so the campaign drives it under a 1-slot admission
// window (plus starvation bursts, which the BurstScheduler must never let
// break the window). Safety: the decided vector satisfies the task relation.

constexpr int kP1cN = 3;

TaskPtr p1c_task() {
  static const TaskPtr task = std::make_shared<ConsensusTask>(kP1cN);
  return task;
}

World make_p1c_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  for (int i = 0; i < kP1cN; ++i) {
    w.spawn_c(i, make_one_concurrent(p1c_task(), Value(70 + i), "p1c"));
  }
  for (int i = 0; i < f.n(); ++i) w.spawn_s(i, spin_forever);
  return w;
}

bool p1c_violated(const World& w) {
  ValueVec in(kP1cN);
  for (int i = 0; i < kP1cN; ++i) {
    if (w.participating(cpid(i))) in[static_cast<std::size_t>(i)] = Value(70 + i);
  }
  return !p1c_task()->relation(in, w.output_vector());
}

ScheduleTape p1c_record(std::uint64_t) {
  const FailurePattern base(0);
  World w = make_p1c_world(base, TrivialFd{}.history(base, 0));
  KConcurrencyScheduler ks(1, {0, 1, 2}, 0);
  return record_run("one_conc_window", w, base, ks, 400, {});
}

// ---- buggy_cons_first_writer -----------------------------------------------
// Seeded-bug consensus variant: each client publishes its proposal, then
// decides whatever it reads from slot 0 — OWN value if the read still shows
// ⊥. The classic write/read race: a client reading before p1's publish lands
// decides differently from one reading after. Campaigns must find the
// disagreement and shrink it to the ~6-step witness.

// 8 clients: the violating witness needs only TWO deciders (one reading
// before slot 0's publish, one after), so ddmin strips the other six bodies
// — campaign tapes shrink well below a quarter of their recorded length.
constexpr int kBcfN = 8;

World make_bcf_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  for (int i = 0; i < kBcfN; ++i) {
    w.spawn_c(i, [i](Context& ctx) { return bcf_client(ctx, i); });
  }
  for (int i = 0; i < f.n(); ++i) w.spawn_s(i, spin_forever);
  return w;
}

bool bcf_violated(const World& w) {
  std::set<std::int64_t> vals;
  for (int i = 0; i < kBcfN; ++i) {
    if (!w.decided(cpid(i))) continue;
    const Value d = w.decision(cpid(i));
    if (!d.is_int() || d.as_int() < 100 || d.as_int() >= 100 + kBcfN) return true;  // validity
    vals.insert(d.as_int());
  }
  return vals.size() > 1;  // agreement
}

ScheduleTape bcf_record(std::uint64_t seed) {
  const FailurePattern base(1);
  World w = make_bcf_world(base, TrivialFd{}.history(base, 0));
  RandomScheduler rs(seed);
  return record_run("buggy_cons_first_writer", w, base, rs, 400, {});
}

// ---- buggy_ren_stale_claim -------------------------------------------------
// Seeded-bug renaming variant: a client claims the first free name slot
// WITHOUT re-reading after its claim write. Two clients observing the same
// free slot both claim it — duplicate names.

// 8 clients over 9 slots; a duplicate needs only two colliding claimants, so
// the other six bodies are ddmin fodder (see kBcfN).
constexpr int kBrnN = 8;

World make_brn_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  for (int i = 0; i < kBrnN; ++i) {
    w.spawn_c(i, [i](Context& ctx) { return brn_client(ctx, i); });
  }
  for (int i = 0; i < f.n(); ++i) w.spawn_s(i, spin_forever);
  return w;
}

bool brn_violated(const World& w) {
  std::set<std::int64_t> names;
  for (int i = 0; i < kBrnN; ++i) {
    if (!w.decided(cpid(i))) continue;
    const Value d = w.decision(cpid(i));
    if (!d.is_int() || d.as_int() < 1 || d.as_int() > 9) return true;
    if (!names.insert(d.as_int()).second) return true;  // duplicate name
  }
  return false;
}

ScheduleTape brn_record(std::uint64_t seed) {
  const FailurePattern base(1);
  World w = make_brn_world(base, TrivialFd{}.history(base, 0));
  RandomScheduler rs(seed);
  return record_run("buggy_ren_stale_claim", w, base, rs, 400, {});
}

// ---- buggy_torn_commit -----------------------------------------------------
// Seeded-bug variant whose violation is FAULT-dependent, not just
// schedule-dependent: an S-writer publishes epochs as the pair A=e then B=e
// (B is the commit). The client double-reads; after three torn observations
// (A ≠ B) it concludes the writer is dead and decides A — the UNCOMMITTED
// value. That decision is only wrong at the end of the run if B never caught
// up, i.e. the writer crashed (or stayed starved) between the two writes —
// exactly what crash triggers ("kill after the next tw/A write") and storms
// landing mid-pair produce.

// 4 clients all double-reading the same pair; one wrong decider is a
// violation, the other three bodies shrink away.
constexpr int kTwC = 4;

World make_tw_world(const FailurePattern& f, HistoryPtr h) {
  World w(f, std::move(h));
  for (int i = 0; i < kTwC; ++i) {
    w.spawn_c(i, [](Context& ctx) { return tw_client(ctx); });
  }
  w.spawn_s(0, [](Context& ctx) { return tw_writer(ctx); });
  for (int i = 1; i < f.n(); ++i) w.spawn_s(i, spin_forever);
  return w;
}

bool tw_violated(const World& w) {
  const std::int64_t committed = w.memory().read("tw/B").int_or(0);
  for (int i = 0; i < kTwC; ++i) {
    if (!w.decided(cpid(i))) continue;
    const Value d = w.decision(cpid(i));
    if (!d.is_int() || d.as_int() < 1 || d.as_int() > committed) return true;
  }
  return false;
}

ScheduleTape tw_record(std::uint64_t seed) {
  const FailurePattern base(1);
  World w = make_tw_world(base, TrivialFd{}.history(base, 0));
  // Canonical fault: kill the writer right after its next A write — the
  // trigger resolves online into a concrete crash point the tape carries.
  FaultPlan plan;
  plan.triggers.push_back(CrashTrigger{"tw/A", OpKind::kWrite, 1, 1 + static_cast<int>(seed % 2)});
  w.enable_trace();
  RandomScheduler inner(seed);
  RecordingScheduler rec(inner);
  const PlanDriveResult pdr = drive_with_plan(w, rec, 600, plan);
  ScheduleTape t = ScheduleTape::capture("buggy_torn_commit", base, rec.steps(), pdr.applied,
                                         w.trace());
  t.expect_violated = tw_violated(w);
  t.plan = plan.to_string();
  return t;
}

// ---- mp_floodmin family ----------------------------------------------------
// FloodMin k-set agreement on the message-passing substrate (daemon-mode
// MsgSubstrate; sim/msg_world.hpp): 3 senders flood (index, input) to every
// mailbox and decide the min of the first n - f = 2 distinct senders heard.
// The three scenarios share one world builder and differ in faults + the k
// the predicate checks:
//  * mp_floodmin_clean       — failure-free; k = f+1 = 2 must hold (and does);
//  * mp_floodmin_partition   — {p0} vs {p1,p2} partition at t=0 (cross-group
//    link daemons crashed in the base pattern): p0 blocks forever polling its
//    inbox, p1/p2 decide among themselves; safety at k = 2 still holds — the
//    tape is the partition-induced-blocking artifact;
//  * mp_floodmin_crash_bcast — daemons ch[0][1], ch[0][2] killed right after
//    p0's FIRST send: the broadcast lands only on p0's own mailbox, its
//    messages to mb[1]/mb[2] die in flight. p1/p2 decide min{1,2} = 1 while
//    p0 (hearing its own 0) decides 0 — checked at k = 1 this is the decision
//    split behind the MP set-agreement impossibility boundary (E19), and the
//    injected MP violation the shrink pipeline minimizes.

constexpr int kMpfmN = 3;
constexpr int kMpfmF = 1;

World make_mpfm_world(const FailurePattern& f, HistoryPtr h) {
  World w = make_mp_world(kMpfmN, kMpfmN, f, std::move(h));
  const FloodMinConfig cfg{kMpfmN, kMpfmF};
  for (int i = 0; i < kMpfmN; ++i) w.spawn_c(i, make_floodmin(cfg, i, Value(i)));
  return w;
}

bool mpfm_violated_at(const World& w, int k) {
  std::set<std::int64_t> vals;
  for (int i = 0; i < kMpfmN; ++i) {
    if (!w.decided(cpid(i))) continue;
    const Value d = w.decision(cpid(i));
    if (!d.is_int() || d.as_int() < 0 || d.as_int() >= kMpfmN) return true;  // validity
    vals.insert(d.as_int());
  }
  return static_cast<int>(vals.size()) > k;
}

bool mpfm_kset_violated(const World& w) { return mpfm_violated_at(w, kMpfmF + 1); }
bool mpfm_cons_violated(const World& w) { return mpfm_violated_at(w, 1); }

ScheduleTape mpfm_clean_record(std::uint64_t seed) {
  const FailurePattern base(kMpfmN * kMpfmN);
  World w = make_mpfm_world(base, TrivialFd{}.history(base, 0));
  RandomScheduler rs(seed);
  ScheduleTape t = record_run("mp_floodmin_clean", w, base, rs, 4000, {});
  t.substrate = "msg";
  return t;
}

ScheduleTape mpfm_part_record(std::uint64_t seed) {
  const FailurePattern base = mp_partition(kMpfmN, kMpfmN, {0}, 0);
  World w = make_mpfm_world(base, TrivialFd{}.history(base, 0));
  RandomScheduler rs(seed);
  // p0 never decides (its group is alone), so the drive runs its full
  // budget: keep it small — the artifact is the blocking, not the length.
  ScheduleTape t = record_run("mp_floodmin_partition", w, base, rs, 700, {});
  t.substrate = "msg";
  return t;
}

ScheduleTape mpfm_crash_record(std::uint64_t seed) {
  const FailurePattern base(kMpfmN * kMpfmN);

  // Phase 1: clean same-seed recording to locate p0's first send (the base
  // pattern is failure-free and nothing is injected, so no step is refused
  // and trace position == schedule step index).
  std::vector<CrashPoint> crashes;
  {
    World w = make_mpfm_world(base, TrivialFd{}.history(base, 0));
    w.enable_trace();
    RandomScheduler inner(seed);
    RecordingScheduler rec(inner);
    drive_with_crashes(w, rec, 4000, {});
    const auto& trace = w.trace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto& s = trace[i];
      if (s.pid == cpid(0) && s.op == OpKind::kSend) {
        // Kill p0's remaining outbound link daemons mid-broadcast: its
        // messages to mb[1]/mb[2] are sent but can never be delivered.
        crashes.push_back(CrashPoint{static_cast<std::int64_t>(i) + 1,
                                     mp_link_s_index(kMpfmN, 0, 1)});
        crashes.push_back(CrashPoint{static_cast<std::int64_t>(i) + 2,
                                     mp_link_s_index(kMpfmN, 0, 2)});
        break;
      }
    }
  }

  // Phase 2: the actual recording, same seed, with the mid-broadcast kills.
  World w = make_mpfm_world(base, TrivialFd{}.history(base, 0));
  RandomScheduler rs(seed);
  ScheduleTape t =
      record_run("mp_floodmin_crash_bcast", w, base, rs, 4000, std::move(crashes));
  t.substrate = "msg";
  return t;
}

// ---- mp_floodmin lossy pair ------------------------------------------------
// E20's acceptance pair: the SAME drop storm (every cross link ch[i][j],
// i != j, charged to swallow the next 2 deliveries at step 0) against the
// timeout-unsafe and the retransmission-hardened FloodMin.
//  * mp_floodmin_lossy_raw — make_floodmin_timeout: every process's flood is
//    swallowed, every inbox stays empty, all three run out of patience and
//    decide their OWN input — 3 distinct decisions violate 2-set agreement.
//    The tape's `linkfaults` line is semantic: replay re-charges the fabric.
//  * mp_floodmin_lossy_rt  — make_floodmin_rt under the identical plan: the
//    2-per-link drop budget is below the retry budget, the second retransmit
//    round gets through, everyone decides min of n - f heard. Safety holds.

World make_mpfm_lossy_raw_world(const FailurePattern& f, HistoryPtr h) {
  World w = make_mp_world(kMpfmN, kMpfmN, f, std::move(h));
  const FloodMinConfig cfg{kMpfmN, kMpfmF};
  for (int i = 0; i < kMpfmN; ++i) w.spawn_c(i, make_floodmin_timeout(cfg, i, Value(i)));
  return w;
}

World make_mpfm_lossy_rt_world(const FailurePattern& f, HistoryPtr h) {
  World w = make_mp_world(kMpfmN, kMpfmN, f, std::move(h));
  const FloodMinConfig cfg{kMpfmN, kMpfmF};
  for (int i = 0; i < kMpfmN; ++i) w.spawn_c(i, make_floodmin_rt(cfg, i, Value(i)));
  return w;
}

FaultPlan mpfm_drop_storm() {
  FaultPlan plan;
  for (int i = 0; i < kMpfmN; ++i) {
    for (int j = 0; j < kMpfmN; ++j) {
      if (i != j) plan.links.push_back(LinkAction{LinkFaultKind::kDrop, 0, i, j, 2});
    }
  }
  return plan;
}

ScheduleTape mpfm_lossy_record(const std::string& scenario_name, World w, std::uint64_t seed,
                               std::int64_t max_steps) {
  const FaultPlan plan = mpfm_drop_storm();
  w.enable_trace();
  RandomScheduler inner(seed);
  RecordingScheduler rec(inner);
  const PlanDriveResult pdr = drive_with_plan(w, rec, max_steps, plan);
  ScheduleTape t =
      ScheduleTape::capture(scenario_name, w.pattern(), rec.steps(), pdr.applied, w.trace());
  t.expect_violated = find_scenario(scenario_name)->violated(w);
  t.plan = plan.to_string();
  t.linkfaults = pdr.applied_links;
  t.substrate = "msg";
  return t;
}

ScheduleTape mpfm_lossy_raw_record(std::uint64_t seed) {
  const FailurePattern base(kMpfmN * kMpfmN);
  return mpfm_lossy_record("mp_floodmin_lossy_raw",
                           make_mpfm_lossy_raw_world(base, TrivialFd{}.history(base, 0)), seed,
                           4000);
}

ScheduleTape mpfm_lossy_rt_record(std::uint64_t seed) {
  const FailurePattern base(kMpfmN * kMpfmN);
  // The hardened run needs room for two doubling backoff rounds per process
  // before the retransmits get through.
  return mpfm_lossy_record("mp_floodmin_lossy_rt",
                           make_mpfm_lossy_rt_world(base, TrivialFd{}.history(base, 0)), seed,
                           8000);
}

std::vector<Scenario> build_registry() {
  return {
      {"synth_write_race",
       "synthetic writer race (shrinker reference; minimal witness = 3 steps)",
       make_synth_world, synth_violated, synth_record},
      {"paxos_lockstep_livelock",
       "two endless Paxos proposers under strict lockstep never decide",
       make_paxos_world, paxos_violated, paxos_record},
      {"cons_leader_crash_commit",
       "Omega-led consensus; leader killed mid-commit (first ACC write); safety holds",
       make_cons_world, cons_violated, cons_record},
      {"renaming_flip_lockstep",
       "Fig. 4 renaming under flip-maximizing lockstep; names distinct in [1, 2j-1]",
       make_ren_world, ren_violated, ren_record},
      {"ksa_starved_leader",
       "KSA with the stable →Ωk slot's server suppressed (¬Ωk starvation); ≤ k values",
       make_ksa_world, ksa_violated, ksa_record},
      {"quitter_window",
       "1-concurrent window with a terminated-undecided quitter; window retires it",
       make_quitter_world, quitter_violated, quitter_record},
      {"one_conc_window",
       "generic 1-concurrent consensus solver (Prop. 1) under a 1-slot window",
       make_p1c_world, p1c_violated, p1c_record},
      {"buggy_cons_first_writer",
       "seeded bug: consensus that decides the slot-0 read, own value on bottom",
       make_bcf_world, bcf_violated, bcf_record},
      {"buggy_ren_stale_claim",
       "seeded bug: renaming that claims a free slot without rechecking",
       make_brn_world, brn_violated, brn_record},
      {"buggy_torn_commit",
       "seeded bug: client trusts the uncommitted half of a torn A/B epoch write",
       make_tw_world, tw_violated, tw_record},
      {"mp_floodmin_clean",
       "FloodMin (n=3, f=1) on the MP substrate, failure-free; 2-set agreement holds",
       make_mpfm_world, mpfm_kset_violated, mpfm_clean_record},
      {"mp_floodmin_partition",
       "FloodMin under a {p0}|{p1,p2} partition (severed-link daemons); p0 blocks, safety holds",
       make_mpfm_world, mpfm_kset_violated, mpfm_part_record},
      {"mp_floodmin_crash_bcast",
       "FloodMin with p0's broadcast cut mid-flight (link daemons killed); decisions split at k=1",
       make_mpfm_world, mpfm_cons_violated, mpfm_crash_record},
      {"mp_floodmin_lossy_raw",
       "timeout FloodMin under a full cross-link drop storm; 3 own-input decisions break 2-set",
       make_mpfm_lossy_raw_world, mpfm_kset_violated, mpfm_lossy_raw_record},
      {"mp_floodmin_lossy_rt",
       "retransmit-hardened FloodMin under the same drop storm; retries recover, safety holds",
       make_mpfm_lossy_rt_world, mpfm_kset_violated, mpfm_lossy_rt_record},
  };
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> registry = build_registry();
  return registry;
}

const Scenario* find_scenario(const std::string& name) {
  for (const auto& s : scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ScenarioReplayOutcome replay_in_scenario(const Scenario& sc, const ScheduleTape& tape) {
  World w = sc.make_world(tape.pattern(), tape.history());
  ScenarioReplayOutcome out;
  out.replay = replay_tape(w, tape);
  out.violated = sc.violated(w);
  out.stats = w.run_stats();
  return out;
}

TapePredicate scenario_predicate(const Scenario& sc, bool expect_violated) {
  return [&sc, expect_violated](const ScheduleTape& tape) {
    World w = sc.make_world(tape.pattern(), tape.history());
    replay_tape(w, tape);
    return sc.violated(w) == expect_violated;
  };
}

}  // namespace efd
