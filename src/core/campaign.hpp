// Adversarial fault campaigns: seeded sweeps of random FaultPlans against
// the paper's algorithms, with liveness monitoring, violation tapes, and
// automatic ddmin shrinking.
//
// A CampaignTarget binds a repro scenario (core/repro_scenarios.hpp) to an
// honest advice detector, a scheduler family, liveness bounds, and a
// FaultPlan::Space. For every plan seed the campaign:
//
//  1. samples a FaultPlan and, when it contains S-kills, resolves them in a
//     REHEARSAL drive (drive_with_plan over the base pattern) into concrete
//     crash times;
//  2. re-runs authoritatively with the EFFECTIVE failure pattern — the base
//     pattern plus the rehearsed crash times — so honest advice is computed
//     over the failures that actually happen (an Ω that keeps endorsing a
//     killed leader would be a lie, not a fault-tolerance finding). The
//     plan's FD corruption wraps the advice (fd/faulty.hpp), bursts wrap the
//     scheduler, and a LivenessMonitor (core/monitors.hpp) watches every
//     step with bounds scaled by the plan's corruption window and burst
//     lengths;
//  3. evaluates the scenario safety predicate + the monitor's wait-freedom
//     certificate; violations are captured as plain efd-tape-v1 tapes
//     (FaultPlan text attached as the `plan` provenance line), saved under
//     save_dir, ddmin-shrunk via the scenario predicate, and re-verified by
//     bit-identical double replay of the shrunk tape.
//
// Campaign runs are deterministic in (seed, plans): same inputs, same plans,
// same verdicts, same tapes. Starvation watchdog hits are reported as
// schedule observations and never counted as algorithm violations.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/corpus.hpp"
#include "core/monitors.hpp"
#include "core/telemetry.hpp"
#include "fd/detectors.hpp"
#include "sim/faultplan.hpp"

namespace efd {

struct CampaignTarget {
  std::string name;       ///< short key for the CLI / JSON ("cons", "tw", ...)
  std::string scenario;   ///< repro-scenario registry key (worlds + safety)
  std::string algorithm;  ///< human-readable algorithm label

  int num_s = 0;                              ///< S-processes of the base pattern
  std::function<DetectorPtr()> advice;        ///< honest advice detector
  /// Scheduler family (seeded); the campaign wraps it in Burst + Recording.
  std::function<std::unique_ptr<Scheduler>(std::uint64_t seed)> make_sched;

  std::int64_t max_steps = 4000;

  // Base liveness bounds (0 disables the check). Scaled PER PLAN: the
  // wait-freedom bound grows with the advice stabilization time and the
  // plan's total burst length, the watchdog windows likewise — planned
  // unfairness must not masquerade as an algorithm violation.
  MonitorBounds bounds;

  bool expect_clean = true;  ///< correct algorithm: any violation is a finding
  FaultPlan::Space space;    ///< plan sampling dimensions
};

/// The built-in sweep list: the paper algorithms expected to survive every
/// plan, plus the seeded-buggy variants the campaign must catch.
[[nodiscard]] const std::vector<CampaignTarget>& campaign_targets();
[[nodiscard]] const CampaignTarget* find_campaign_target(const std::string& name);

struct CampaignViolation {
  std::string target;
  std::uint64_t plan_seed = 0;
  std::string plan;           ///< FaultPlan::to_string of the offending plan
  bool safety = false;        ///< scenario predicate fired
  bool wait_free = false;     ///< monitor wait-freedom bound broken
  std::string detail;         ///< one-line human diagnosis
  std::int64_t tape_steps = 0;
  std::int64_t shrunk_steps = 0;   ///< 0 when shrinking was skipped
  bool shrunk_replay_ok = false;   ///< shrunk tape double-replayed bit-identically
  std::string tape_path;           ///< "" when save_dir was empty
};

struct CampaignOptions {
  std::uint64_t seed = 42;
  int plans = 100;          ///< plans per target
  bool monitors = true;     ///< attach the LivenessMonitor
  bool shrink = true;       ///< ddmin-shrink safety-violation tapes
  std::string save_dir;     ///< violation tape directory; "" disables saving
};

/// One target's sweep outcome.
struct CampaignRun {
  std::string target;
  std::string scenario;
  std::string algorithm;
  bool expect_clean = true;
  int plans = 0;
  int clean_plans = 0;
  // Plan-mix counters (how many sampled plans contained each fault family).
  int plans_with_fd_fault = 0;
  int plans_with_storm = 0;
  int plans_with_trigger = 0;
  int plans_with_burst = 0;
  int plans_with_link = 0;  ///< plans carrying link actions (drop/dup/delay/reorder/sever)
  std::int64_t total_steps = 0;       ///< authoritative-drive steps
  std::int64_t rehearsal_steps = 0;   ///< trigger/storm rehearsal steps
  std::int64_t monitored_steps = 0;
  std::int64_t max_own_steps_to_decide = 0;  ///< worst over all plans
  std::int64_t starvation_observations = 0;  ///< watchdog hits (not violations)
  std::vector<CampaignViolation> violations;

  [[nodiscard]] int safety_violations() const;
  [[nodiscard]] int wait_free_violations() const;
  /// expect_clean targets must have zero violations; buggy targets at least
  /// one safety violation with a verified shrunk tape.
  [[nodiscard]] bool verdict_ok() const;
};

/// Sweeps `opts.plans` seeded fault plans against one target. Throws
/// CorpusIoError when `opts.save_dir` cannot be created (checked ONCE, up
/// front — tools map it to a distinct exit code; tapes must never vanish
/// silently into an unwritable directory).
[[nodiscard]] CampaignRun run_campaign(const CampaignTarget& target, const CampaignOptions& opts);

/// The `efd-campaign-v1` document for a set of runs (schema in
/// EXPERIMENTS.md E15; bench_diff.py --validate accepts it).
[[nodiscard]] telemetry::Json campaign_json(const std::vector<CampaignRun>& runs,
                                            const CampaignOptions& opts);

// ---------------------------------------------------------------------------
// Campaign farm: the resident, corpus-backed form of the sweep (DESIGN.md
// 4g, EXPERIMENTS.md E18). run_farm streams plans from the seeded
// generator / coverage-guided mutator / an external PlanSource, dispatches
// them across workers as WorkStealingPool batches, dedups findings against a
// persistent CorpusStore, and shrinks + double-replay-verifies only novel
// findings. Verdicts for identical (plan_seed, plan) inputs are byte-
// identical to the one-shot runner's: both run the same run_plan.
// ---------------------------------------------------------------------------

/// Deterministic per-plan seed: folds the campaign seed, the TARGET NAME and
/// the plan index. Folding the name is load-bearing — deriving from the
/// index alone made every target sample the SAME plan sequence (perfectly
/// correlated coverage across targets; regression-pinned in test_campaign).
[[nodiscard]] std::uint64_t campaign_plan_seed(std::uint64_t campaign_seed,
                                               const std::string& target, int index);

/// One plan's verdict — the unit of work both run_campaign and run_farm
/// execute. Pure in (target, plan, plan_seed, monitors): thread-safe and
/// byte-deterministic, which is what lets the farm fan plans out across
/// workers without perturbing verdicts.
struct PlanOutcome {
  std::uint64_t plan_seed = 0;
  FaultPlan plan;
  bool safety = false;          ///< scenario predicate fired
  /// Monitor liveness verdict broken: the wait-freedom bound, or (on targets
  /// with a retransmit_storm_window) a retransmit-storm livelock flag.
  bool wait_free_bad = false;
  bool retransmit_storm = false;  ///< the storm watchdog specifically fired
  std::string detail;
  std::int64_t steps = 0;
  std::int64_t rehearsal_steps = 0;
  std::int64_t monitored_steps = 0;
  std::int64_t max_own_steps_to_decide = 0;
  std::int64_t starvation_observations = 0;
  /// Coarse trace-shape signature (which (process, op, register) triples the
  /// run exercised + decision count). Interleaving-insensitive by design:
  /// the farm mutates plans whose runs flip a bit nobody flipped before.
  std::uint64_t coverage_sig = 0;
  /// Populated ONLY on violation: the captured tape, finding + plan lines
  /// stamped (finding = "safety" / "wait-free" / "safety+wait-free").
  ScheduleTape tape;

  [[nodiscard]] bool violated() const { return safety || wait_free_bad; }
};

/// Runs one plan against one target (rehearsal, effective-pattern re-drive,
/// monitors, tape capture on violation). Shared by the one-shot sweep and
/// the farm workers.
[[nodiscard]] PlanOutcome run_plan(const CampaignTarget& target, const FaultPlan& plan,
                                   std::uint64_t plan_seed, bool monitors);

/// ddmin-shrinks a safety-finding tape and double-replay-verifies the
/// minimized tape; provenance (plan, finding) carries over and expectations
/// are re-stamped from the minimized tape's own replay.
struct ShrunkFinding {
  ScheduleTape mini;
  bool replay_ok = false;  ///< shrunk tape double-replayed bit-identically
};
[[nodiscard]] ShrunkFinding shrink_finding(const std::string& scenario, const ScheduleTape& tape);

/// External plan queue (the `serve` FIFO): non-blocking; each poll returns
/// one (target-name, plan) submission or nullopt.
class PlanSource {
 public:
  virtual ~PlanSource() = default;
  virtual std::optional<std::pair<std::string, FaultPlan>> poll() = 0;
};

struct FarmOptions {
  std::uint64_t seed = 42;
  int workers = 8;
  int batch = 64;              ///< plans per work-stealing dispatch batch
  std::int64_t max_plans = 0;  ///< stop after this many plans (0: unbounded)
  double duration_s = 0;       ///< stop after this much wall time (0: unbounded)
  bool monitors = true;
  bool shrink = true;
  bool mutate = true;          ///< coverage-guided mutation of novel-coverage plans
  std::string corpus_dir;     ///< persistent corpus directory ("": in-memory dedup)
  std::vector<std::string> seed_corpora;  ///< read-only corpora absorbed at startup
  double soak_interval_s = 5.0;           ///< streaming soak-record cadence
  std::function<void(const telemetry::Json&)> on_soak;  ///< soak-record sink
  PlanSource* source = nullptr;             ///< external plan queue (may be null)
  const std::atomic<bool>* stop = nullptr;  ///< graceful-drain flag (SIGINT)
};

struct FarmTargetStats {
  std::string target;
  bool expect_clean = true;
  std::int64_t plans = 0;
  std::int64_t clean = 0;
  std::int64_t safety_violations = 0;
  std::int64_t wait_free_violations = 0;
  std::int64_t novel = 0;       ///< findings inserted into the corpus
  std::int64_t duplicates = 0;  ///< findings already in the corpus
  std::int64_t starvation_observations = 0;
  std::int64_t coverage_sigs = 0;  ///< distinct coverage signatures seen
  std::int64_t mutated = 0;        ///< plans produced by mutate/splice
  std::int64_t external = 0;       ///< plans submitted via the PlanSource
  std::int64_t total_steps = 0;
};

struct FarmStats {
  std::int64_t plans = 0;
  std::int64_t clean = 0;
  std::int64_t violations = 0;
  std::int64_t novel = 0;
  std::int64_t duplicates = 0;
  std::int64_t shrunk = 0;
  std::int64_t shrink_replays_ok = 0;
  std::int64_t mutated = 0;
  std::int64_t external = 0;
  std::int64_t coverage_sigs = 0;
  std::int64_t total_steps = 0;
  std::int64_t batches = 0;
  double elapsed_s = 0;
  std::size_t corpus_size = 0;
  std::size_t corpus_aliases = 0;
  int corpus_seeded = 0;     ///< entries indexed from corpus dir + seed corpora
  int quarantined = 0;       ///< malformed corpus entries moved aside at open
  bool drained = false;      ///< stopped via the stop flag (graceful drain)
  std::vector<FarmTargetStats> targets;
};

/// Runs the farm until a stop condition (stop flag, duration, max_plans)
/// holds at a batch boundary — the in-flight batch always completes and its
/// findings are processed (graceful drain). Throws CorpusIoError when the
/// corpus directory cannot be created or written.
[[nodiscard]] FarmStats run_farm(const std::vector<const CampaignTarget*>& targets,
                                 const FarmOptions& opts);

/// One `efd-campaign-farm-v1` soak record (schema in EXPERIMENTS.md E18;
/// bench_diff.py --validate dispatches on it). `mode` is "soak" for the
/// streaming interval records and "final" for the end-of-run document.
[[nodiscard]] telemetry::Json farm_json(const FarmStats& stats, const FarmOptions& opts,
                                        const std::string& mode);

}  // namespace efd
