// Adversarial fault campaigns: seeded sweeps of random FaultPlans against
// the paper's algorithms, with liveness monitoring, violation tapes, and
// automatic ddmin shrinking.
//
// A CampaignTarget binds a repro scenario (core/repro_scenarios.hpp) to an
// honest advice detector, a scheduler family, liveness bounds, and a
// FaultPlan::Space. For every plan seed the campaign:
//
//  1. samples a FaultPlan and, when it contains S-kills, resolves them in a
//     REHEARSAL drive (drive_with_plan over the base pattern) into concrete
//     crash times;
//  2. re-runs authoritatively with the EFFECTIVE failure pattern — the base
//     pattern plus the rehearsed crash times — so honest advice is computed
//     over the failures that actually happen (an Ω that keeps endorsing a
//     killed leader would be a lie, not a fault-tolerance finding). The
//     plan's FD corruption wraps the advice (fd/faulty.hpp), bursts wrap the
//     scheduler, and a LivenessMonitor (core/monitors.hpp) watches every
//     step with bounds scaled by the plan's corruption window and burst
//     lengths;
//  3. evaluates the scenario safety predicate + the monitor's wait-freedom
//     certificate; violations are captured as plain efd-tape-v1 tapes
//     (FaultPlan text attached as the `plan` provenance line), saved under
//     save_dir, ddmin-shrunk via the scenario predicate, and re-verified by
//     bit-identical double replay of the shrunk tape.
//
// Campaign runs are deterministic in (seed, plans): same inputs, same plans,
// same verdicts, same tapes. Starvation watchdog hits are reported as
// schedule observations and never counted as algorithm violations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/monitors.hpp"
#include "core/telemetry.hpp"
#include "fd/detectors.hpp"
#include "sim/faultplan.hpp"

namespace efd {

struct CampaignTarget {
  std::string name;       ///< short key for the CLI / JSON ("cons", "tw", ...)
  std::string scenario;   ///< repro-scenario registry key (worlds + safety)
  std::string algorithm;  ///< human-readable algorithm label

  int num_s = 0;                              ///< S-processes of the base pattern
  std::function<DetectorPtr()> advice;        ///< honest advice detector
  /// Scheduler family (seeded); the campaign wraps it in Burst + Recording.
  std::function<std::unique_ptr<Scheduler>(std::uint64_t seed)> make_sched;

  std::int64_t max_steps = 4000;

  // Base liveness bounds (0 disables the check). Scaled PER PLAN: the
  // wait-freedom bound grows with the advice stabilization time and the
  // plan's total burst length, the watchdog windows likewise — planned
  // unfairness must not masquerade as an algorithm violation.
  MonitorBounds bounds;

  bool expect_clean = true;  ///< correct algorithm: any violation is a finding
  FaultPlan::Space space;    ///< plan sampling dimensions
};

/// The built-in sweep list: the paper algorithms expected to survive every
/// plan, plus the seeded-buggy variants the campaign must catch.
[[nodiscard]] const std::vector<CampaignTarget>& campaign_targets();
[[nodiscard]] const CampaignTarget* find_campaign_target(const std::string& name);

struct CampaignViolation {
  std::string target;
  std::uint64_t plan_seed = 0;
  std::string plan;           ///< FaultPlan::to_string of the offending plan
  bool safety = false;        ///< scenario predicate fired
  bool wait_free = false;     ///< monitor wait-freedom bound broken
  std::string detail;         ///< one-line human diagnosis
  std::int64_t tape_steps = 0;
  std::int64_t shrunk_steps = 0;   ///< 0 when shrinking was skipped
  bool shrunk_replay_ok = false;   ///< shrunk tape double-replayed bit-identically
  std::string tape_path;           ///< "" when save_dir was empty
};

struct CampaignOptions {
  std::uint64_t seed = 42;
  int plans = 100;          ///< plans per target
  bool monitors = true;     ///< attach the LivenessMonitor
  bool shrink = true;       ///< ddmin-shrink safety-violation tapes
  std::string save_dir;     ///< violation tape directory; "" disables saving
};

/// One target's sweep outcome.
struct CampaignRun {
  std::string target;
  std::string scenario;
  std::string algorithm;
  bool expect_clean = true;
  int plans = 0;
  int clean_plans = 0;
  // Plan-mix counters (how many sampled plans contained each fault family).
  int plans_with_fd_fault = 0;
  int plans_with_storm = 0;
  int plans_with_trigger = 0;
  int plans_with_burst = 0;
  std::int64_t total_steps = 0;       ///< authoritative-drive steps
  std::int64_t rehearsal_steps = 0;   ///< trigger/storm rehearsal steps
  std::int64_t monitored_steps = 0;
  std::int64_t max_own_steps_to_decide = 0;  ///< worst over all plans
  std::int64_t starvation_observations = 0;  ///< watchdog hits (not violations)
  std::vector<CampaignViolation> violations;

  [[nodiscard]] int safety_violations() const;
  [[nodiscard]] int wait_free_violations() const;
  /// expect_clean targets must have zero violations; buggy targets at least
  /// one safety violation with a verified shrunk tape.
  [[nodiscard]] bool verdict_ok() const;
};

/// Sweeps `opts.plans` seeded fault plans against one target.
[[nodiscard]] CampaignRun run_campaign(const CampaignTarget& target, const CampaignOptions& opts);

/// The `efd-campaign-v1` document for a set of runs (schema in
/// EXPERIMENTS.md E15; bench_diff.py --validate accepts it).
[[nodiscard]] telemetry::Json campaign_json(const std::vector<CampaignRun>& runs,
                                            const CampaignOptions& opts);

}  // namespace efd
