#include "core/workpool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <thread>

namespace efd {
namespace {

struct Deque {
  std::mutex mu;
  std::deque<std::function<void()>> q;
};

bool pop_own(Deque& d, std::function<void()>& out) {
  std::lock_guard<std::mutex> lk(d.mu);
  if (d.q.empty()) return false;
  out = std::move(d.q.back());
  d.q.pop_back();
  return true;
}

bool steal(Deque& d, std::function<void()>& out) {
  std::lock_guard<std::mutex> lk(d.mu);
  if (d.q.empty()) return false;
  out = std::move(d.q.front());
  d.q.pop_front();
  return true;
}

}  // namespace

void WorkStealingPool::run(std::vector<std::function<void()>>&& tasks, int threads,
                           PoolStats* stats) {
  if (threads <= 1 || tasks.size() <= 1) {
    for (auto& t : tasks) t();
    if (stats != nullptr) {
      *stats = PoolStats{};
      stats->tasks = static_cast<std::int64_t>(tasks.size());
      stats->per_worker.assign(1, stats->tasks);
    }
    return;
  }
  const std::size_t n = static_cast<std::size_t>(threads);
  std::vector<Deque> deques(n);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    deques[i % n].q.push_back(std::move(tasks[i]));
  }

  std::atomic<std::size_t> remaining{tasks.size()};
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::int64_t> executed(n, 0);
  std::vector<std::int64_t> stolen(n, 0);

  auto worker = [&](std::size_t me) {
    std::function<void()> task;
    while (remaining.load(std::memory_order_acquire) > 0) {
      bool got = pop_own(deques[me], task);
      bool was_steal = false;
      for (std::size_t off = 1; !got && off < n; ++off) {
        got = steal(deques[(me + off) % n], task);
        was_steal = got;
      }
      if (!got) {
        // All deques empty: tasks never respawn, so any still-counted task
        // is executing on another worker. Nothing left for us.
        break;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      task = nullptr;
      ++executed[me];
      if (was_steal) ++stolen[me];
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> crew;
  crew.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) crew.emplace_back(worker, i);
  worker(0);
  for (auto& t : crew) t.join();

  if (stats != nullptr) {
    *stats = PoolStats{};
    stats->per_worker = executed;
    for (std::size_t i = 0; i < n; ++i) {
      stats->tasks += executed[i];
      stats->steals += stolen[i];
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// One batch's worth of shared pool state plus the persistent crew. The
// worker protocol is epoch-based: run() deals tasks into the deques, bumps
// `epoch`, and wakes everyone; each worker drains (own deque LIFO, steal
// FIFO) until every deque is empty, then decrements `active` and goes back
// to waiting for the next epoch. run() itself drains as worker 0 and
// returns once `active` hits zero — at which point every task has finished
// and every stats write happened-before the caller's read.
struct ResidentPool::Impl {
  std::size_t n = 0;
  std::vector<Deque> deques;
  std::vector<std::int64_t> executed;
  std::vector<std::int64_t> stolen;
  std::atomic<std::size_t> remaining{0};
  std::mutex err_mu;
  std::exception_ptr first_error;

  std::mutex wake_mu;
  std::condition_variable wake_cv;
  std::uint64_t epoch = 0;
  bool stop = false;

  std::atomic<int> active{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::vector<std::thread> crew;

  void drain(std::size_t me) {
    std::function<void()> task;
    while (remaining.load(std::memory_order_acquire) > 0) {
      bool got = pop_own(deques[me], task);
      bool was_steal = false;
      for (std::size_t off = 1; !got && off < n; ++off) {
        got = steal(deques[(me + off) % n], task);
        was_steal = got;
      }
      if (!got) break;  // any still-counted task is executing elsewhere
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      task = nullptr;
      ++executed[me];
      if (was_steal) ++stolen[me];
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  void worker(std::size_t me) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(wake_mu);
        wake_cv.wait(lk, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
      }
      drain(me);
      if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(done_mu);
        done_cv.notify_one();
      }
    }
  }
};

ResidentPool::ResidentPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  if (threads_ <= 1) return;
  impl_ = std::make_unique<Impl>();
  Impl& im = *impl_;
  im.n = static_cast<std::size_t>(threads_);
  im.deques = std::vector<Deque>(im.n);
  im.executed.assign(im.n, 0);
  im.stolen.assign(im.n, 0);
  im.crew.reserve(im.n - 1);
  for (std::size_t i = 1; i < im.n; ++i) {
    im.crew.emplace_back([this, i] { impl_->worker(i); });
  }
}

ResidentPool::~ResidentPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lk(impl_->wake_mu);
    impl_->stop = true;
  }
  impl_->wake_cv.notify_all();
  for (auto& t : impl_->crew) t.join();
}

void ResidentPool::run(std::vector<std::function<void()>>&& tasks, PoolStats* stats) {
  if (impl_ == nullptr || tasks.size() <= 1) {
    for (auto& t : tasks) t();
    if (stats != nullptr) {
      *stats = PoolStats{};
      stats->tasks = static_cast<std::int64_t>(tasks.size());
      stats->per_worker.assign(1, stats->tasks);
    }
    return;
  }
  Impl& im = *impl_;
  std::fill(im.executed.begin(), im.executed.end(), 0);
  std::fill(im.stolen.begin(), im.stolen.end(), 0);
  im.first_error = nullptr;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    im.deques[i % im.n].q.push_back(std::move(tasks[i]));
  }
  im.remaining.store(tasks.size(), std::memory_order_release);
  im.active.store(static_cast<int>(im.n), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(im.wake_mu);
    ++im.epoch;
  }
  im.wake_cv.notify_all();
  im.drain(0);
  if (im.active.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    std::unique_lock<std::mutex> lk(im.done_mu);
    im.done_cv.wait(lk, [&] { return im.active.load(std::memory_order_acquire) == 0; });
  }
  if (stats != nullptr) {
    *stats = PoolStats{};
    stats->per_worker = im.executed;
    for (std::size_t i = 0; i < im.n; ++i) {
      stats->tasks += im.executed[i];
      stats->steals += im.stolen[i];
    }
  }
  if (im.first_error) {
    std::exception_ptr e = im.first_error;
    im.first_error = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace efd
