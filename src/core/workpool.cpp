#include "core/workpool.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <thread>

namespace efd {
namespace {

struct Deque {
  std::mutex mu;
  std::deque<std::function<void()>> q;
};

bool pop_own(Deque& d, std::function<void()>& out) {
  std::lock_guard<std::mutex> lk(d.mu);
  if (d.q.empty()) return false;
  out = std::move(d.q.back());
  d.q.pop_back();
  return true;
}

bool steal(Deque& d, std::function<void()>& out) {
  std::lock_guard<std::mutex> lk(d.mu);
  if (d.q.empty()) return false;
  out = std::move(d.q.front());
  d.q.pop_front();
  return true;
}

}  // namespace

void WorkStealingPool::run(std::vector<std::function<void()>>&& tasks, int threads,
                           PoolStats* stats) {
  if (threads <= 1 || tasks.size() <= 1) {
    for (auto& t : tasks) t();
    if (stats != nullptr) {
      *stats = PoolStats{};
      stats->tasks = static_cast<std::int64_t>(tasks.size());
      stats->per_worker.assign(1, stats->tasks);
    }
    return;
  }
  const std::size_t n = static_cast<std::size_t>(threads);
  std::vector<Deque> deques(n);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    deques[i % n].q.push_back(std::move(tasks[i]));
  }

  std::atomic<std::size_t> remaining{tasks.size()};
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::int64_t> executed(n, 0);
  std::vector<std::int64_t> stolen(n, 0);

  auto worker = [&](std::size_t me) {
    std::function<void()> task;
    while (remaining.load(std::memory_order_acquire) > 0) {
      bool got = pop_own(deques[me], task);
      bool was_steal = false;
      for (std::size_t off = 1; !got && off < n; ++off) {
        got = steal(deques[(me + off) % n], task);
        was_steal = got;
      }
      if (!got) {
        // All deques empty: tasks never respawn, so any still-counted task
        // is executing on another worker. Nothing left for us.
        break;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      task = nullptr;
      ++executed[me];
      if (was_steal) ++stolen[me];
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> crew;
  crew.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) crew.emplace_back(worker, i);
  worker(0);
  for (auto& t : crew) t.join();

  if (stats != nullptr) {
    *stats = PoolStats{};
    stats->per_worker = executed;
    for (std::size_t i = 0; i < n; ++i) {
      stats->tasks += executed[i];
      stats->steals += stolen[i];
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace efd
