// Exploration telemetry and machine-readable bench emission.
//
// Two pieces live here, both consumed by the bench layer (bench_common.hpp)
// and by tools/bench_diff.py:
//
//  * ExploreStats — the counter block threaded through both solvability
//    engines and the parallel frontier (core/solvability). The first group
//    of fields is DETERMINISTIC for fully-covered clean sweeps: states,
//    terminal runs and dedup traffic depend only on the explored signature
//    closure, so they are byte-identical across engines (full-replay vs
//    incremental) and thread counts — the property test_telemetry pins.
//    The second group (undo depth, respawns, steals, timing) describes how
//    a particular run got there and is excluded from equality checks.
//
//  * telemetry::Json + telemetry::BenchEmitter — a minimal ordered JSON
//    value (writer AND parser, so emission is round-trip testable without
//    external deps) and the per-process collector behind the BENCH_E<n>.json
//    files: experiment name, one counter map per benchmark, the stdout
//    tables, and `git describe`. BenchEmitter also owns the once-per-TITLE
//    table-header suppression (the old bench-local std::once_flag dropped
//    every header after the first in two-table binaries).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace efd {

/// Counters of one exploration sweep (explore_k_concurrent) or an aggregate
/// of several (max_clean_level, classify). All counts are totals across the
/// probe + every parallel shard.
struct ExploreStats {
  // -- deterministic for fully-covered clean sweeps (engine- and
  //    thread-count-invariant; see DESIGN.md "Exploration engine") --
  std::int64_t states = 0;         ///< configurations charged against the budget
  std::int64_t terminal_runs = 0;  ///< complete runs reached
  std::int64_t dedup_queries = 0;  ///< signature-set lookups
  std::int64_t dedup_misses = 0;   ///< lookups that inserted (unique configurations)

  // -- run-shape dependent (schedule, engine and thread-count specific) --
  std::int64_t blocked_runs = 0;   ///< dead-end nodes: live processes, every one
                                   ///< blocked on an empty-mailbox recv (substrate
                                   ///< worlds only; see core/solvability "blocking
                                   ///< recv"). Cross-backend equality is asserted
                                   ///< by tests/test_substrate, not test_telemetry.
  std::int64_t dedup_hits = 0;     ///< lookups pruned as already-seen
  std::int64_t max_undo_depth = 0; ///< deepest undo log (incremental engine)
  std::int64_t respawns = 0;       ///< coroutines rebuilt after a backtrack
  std::int64_t redelivers = 0;     ///< logged results replayed into rebuilt frames
  std::int64_t ghost_hits = 0;     ///< steps replayed against a ran-ahead frame (no rebuild)
  std::int64_t pool_steals = 0;    ///< frontier jobs executed by a stealing worker
  int threads = 1;                 ///< worker count of the sweep
  double elapsed_s = 0;            ///< wall time of the sweep
  double states_per_s = 0;         ///< states / elapsed_s (0 when unmeasured)

  // -- tiered dedup store traffic (core/diskset.hpp; all zero when the
  //    store runs in plain in-memory mode). Which tier answers a duplicate
  //    is thread-interleaving dependent, so these live in the run-shape
  //    group even though their sums relate to the deterministic dedup
  //    counters (recent+mem+cold hits == dedup_hits). --
  std::int64_t dedup_recent_hits = 0;  ///< duplicates answered by the tier-0 TLS cache
  std::int64_t dedup_mem_hits = 0;     ///< duplicates found in the in-memory shards
  std::int64_t dedup_cold_probes = 0;  ///< in-memory misses that consulted the disk tier
  std::int64_t dedup_bloom_skips = 0;  ///< cold probes settled by the bloom prefilter
  std::int64_t dedup_cold_hits = 0;    ///< duplicates found in an mmap'd run
  std::int64_t dedup_spills = 0;       ///< shard drains to disk
  std::int64_t dedup_spilled_sigs = 0; ///< signatures moved to disk in total
  std::int64_t dedup_spill_bytes = 0;  ///< bytes written to run files in total
  std::int64_t dedup_merges = 0;       ///< per-shard run merges
  bool mem_exhausted = false;          ///< a sweep hit its memory cap with no disk tier

  /// Accumulates another sweep's counters (sums; max for depth; threads and
  /// rates keep the maximum seen so aggregates stay meaningful).
  void merge(const ExploreStats& o);
};

namespace telemetry {

/// Minimal JSON value: null, bool, int64, double, string, array, object.
/// Objects preserve insertion order so emitted files diff stably. The parser
/// accepts exactly what dump() produces (plus arbitrary whitespace), which
/// is all the round-trip tests and bench_diff need.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(double v) : kind_(Kind::kDouble), dbl_(v) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(dbl_) : int_;
  }
  [[nodiscard]] double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : dbl_;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Array/object element count.
  [[nodiscard]] std::size_t size() const noexcept {
    return kind_ == Kind::kArray ? arr_.size() : obj_.size();
  }
  /// Array element (throws std::out_of_range).
  [[nodiscard]] const Json& at(std::size_t i) const { return arr_.at(i); }
  /// Appends to an array (converts a null value into an empty array first).
  void push_back(Json v);

  /// Object field, inserted null if absent (converts null into an object).
  Json& operator[](const std::string& key);
  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items() const { return obj_; }

  /// Serializes with `indent` spaces per level (0 = compact single line).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a JSON document. Throws std::runtime_error on malformed input
  /// or trailing garbage.
  [[nodiscard]] static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// `git describe --always --dirty` of the working tree, "unknown" when git
/// is unavailable. Invoked once per emission, not per benchmark.
[[nodiscard]] std::string git_describe();

/// Per-process collector for one experiment's BENCH_E<n>.json. Thread-safe;
/// the bench binaries drive the process-global instance() through the
/// bench_common.hpp helpers, tests construct their own.
class BenchEmitter {
 public:
  BenchEmitter() = default;
  static BenchEmitter& instance();

  void set_experiment(std::string name);
  [[nodiscard]] std::string experiment() const;

  /// True exactly once per distinct TITLE, and makes that table current for
  /// subsequent add_row calls. Keyed by title: a process printing several
  /// tables gets every header (the old single process-global once_flag
  /// suppressed all but the first).
  bool table_header_once(const std::string& title, const std::string& columns);

  /// Records one rendered row into the current table (no-op before the
  /// first table_header_once).
  void add_row(const std::string& row);

  /// Records a benchmark's counters; re-recording the same name overwrites
  /// (google-benchmark re-invokes functions while calibrating).
  void record_benchmark(const std::string& name,
                        std::vector<std::pair<std::string, double>> counters,
                        std::int64_t iterations);

  /// The efd-bench-v1 document: schema, experiment, git, benchmarks, tables.
  [[nodiscard]] Json to_json() const;

  /// Writes BENCH_<experiment>.json into `dir` (empty: $EFD_BENCH_JSON_DIR,
  /// falling back to "."). False if nothing was recorded or the write failed.
  bool write_file(const std::string& dir = "") const;

 private:
  struct Table {
    std::string title;
    std::string columns;
    std::vector<std::string> rows;
  };
  struct Bench {
    std::string name;
    std::int64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  mutable std::mutex mu_;
  std::string experiment_;
  std::vector<Table> tables_;
  std::size_t current_table_ = static_cast<std::size_t>(-1);
  std::vector<Bench> benches_;
};

}  // namespace telemetry
}  // namespace efd
