#include "core/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace efd {

void ExploreStats::merge(const ExploreStats& o) {
  states += o.states;
  terminal_runs += o.terminal_runs;
  dedup_queries += o.dedup_queries;
  dedup_misses += o.dedup_misses;
  blocked_runs += o.blocked_runs;
  dedup_hits += o.dedup_hits;
  max_undo_depth = std::max(max_undo_depth, o.max_undo_depth);
  respawns += o.respawns;
  redelivers += o.redelivers;
  ghost_hits += o.ghost_hits;
  pool_steals += o.pool_steals;
  threads = std::max(threads, o.threads);
  elapsed_s += o.elapsed_s;
  states_per_s = std::max(states_per_s, o.states_per_s);
  dedup_recent_hits += o.dedup_recent_hits;
  dedup_mem_hits += o.dedup_mem_hits;
  dedup_cold_probes += o.dedup_cold_probes;
  dedup_bloom_skips += o.dedup_bloom_skips;
  dedup_cold_hits += o.dedup_cold_hits;
  dedup_spills += o.dedup_spills;
  dedup_spilled_sigs += o.dedup_spilled_sigs;
  dedup_spill_bytes += o.dedup_spill_bytes;
  dedup_merges += o.dedup_merges;
  mem_exhausted = mem_exhausted || o.mem_exhausted;
}

namespace telemetry {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json document() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("Json::parse: " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our emitter only escapes control characters; decode BMP code
          // points to UTF-8 so round-trips are lossless for them.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (tok.find_first_of(".eE") == std::string::npos) {
      try {
        return Json(static_cast<std::int64_t>(std::stoll(tok)));
      } catch (const std::exception&) {
        fail("bad integer");
      }
    }
    try {
      return Json(std::stod(tok));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      for (;;) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        obj[key] = value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      for (;;) {
        arr.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(string_body());
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) return number();
    fail("unexpected character");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw std::logic_error("Json::push_back on non-array");
  arr_.push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::logic_error("Json::operator[] on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, Json{});
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      out += buf;
      break;
    }
    case Kind::kDouble:
      append_number(out, dbl_);
      break;
    case Kind::kString:
      append_escaped(out, str_);
      break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).document(); }

std::string git_describe() {
#if defined(_WIN32)
  return "unknown";
#else
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128] = {0};
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
#endif
}

BenchEmitter& BenchEmitter::instance() {
  static BenchEmitter e;
  return e;
}

void BenchEmitter::set_experiment(std::string name) {
  const std::lock_guard<std::mutex> lk(mu_);
  experiment_ = std::move(name);
}

std::string BenchEmitter::experiment() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return experiment_;
}

bool BenchEmitter::table_header_once(const std::string& title, const std::string& columns) {
  const std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].title == title) {
      current_table_ = i;
      return false;
    }
  }
  tables_.push_back(Table{title, columns, {}});
  current_table_ = tables_.size() - 1;
  return true;
}

void BenchEmitter::add_row(const std::string& row) {
  const std::lock_guard<std::mutex> lk(mu_);
  if (current_table_ >= tables_.size()) return;
  std::string r = row;
  while (!r.empty() && r.back() == '\n') r.pop_back();
  tables_[current_table_].rows.push_back(std::move(r));
}

void BenchEmitter::record_benchmark(const std::string& name,
                                    std::vector<std::pair<std::string, double>> counters,
                                    std::int64_t iterations) {
  const std::lock_guard<std::mutex> lk(mu_);
  for (Bench& b : benches_) {
    if (b.name == name) {  // calibration rerun: the final invocation wins
      b.iterations = iterations;
      b.counters = std::move(counters);
      return;
    }
  }
  benches_.push_back(Bench{name, iterations, std::move(counters)});
}

Json BenchEmitter::to_json() const {
  const std::lock_guard<std::mutex> lk(mu_);
  Json doc = Json::object();
  doc["schema"] = "efd-bench-v1";
  doc["experiment"] = experiment_;
  doc["git"] = git_describe();
  Json benches = Json::array();
  for (const Bench& b : benches_) {
    Json jb = Json::object();
    jb["name"] = b.name;
    jb["iterations"] = b.iterations;
    Json counters = Json::object();
    for (const auto& [k, v] : b.counters) counters[k] = v;
    jb["counters"] = std::move(counters);
    benches.push_back(std::move(jb));
  }
  doc["benchmarks"] = std::move(benches);
  Json tables = Json::array();
  for (const Table& t : tables_) {
    Json jt = Json::object();
    jt["title"] = t.title;
    jt["columns"] = t.columns;
    Json rows = Json::array();
    for (const std::string& r : t.rows) rows.push_back(r);
    jt["rows"] = std::move(rows);
    tables.push_back(std::move(jt));
  }
  doc["tables"] = std::move(tables);
  return doc;
}

bool BenchEmitter::write_file(const std::string& dir) const {
  std::string exp;
  bool empty = true;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    exp = experiment_;
    empty = benches_.empty() && tables_.empty();
  }
  if (exp.empty() || empty) return false;
  std::string target = dir;
  if (target.empty()) {
    const char* env = std::getenv("EFD_BENCH_JSON_DIR");
    target = (env != nullptr && env[0] != '\0') ? env : ".";
  }
  const std::string path = target + "/BENCH_" + exp + ".json";
  std::ofstream os(path);
  if (!os) return false;
  os << to_json().dump(2) << "\n";
  return static_cast<bool>(os);
}

}  // namespace telemetry
}  // namespace efd
