#include "core/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "core/repro_scenarios.hpp"
#include "core/shrink.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

std::uint64_t mix_seed(std::uint64_t seed, int i) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(i) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::function<std::unique_ptr<Scheduler>(std::uint64_t)> random_sched() {
  return [](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
    return std::make_unique<RandomScheduler>(seed ^ 0x5EEDF00DULL);
  };
}

/// Seeded arrival permutation for the 1-concurrent window target.
std::function<std::unique_ptr<Scheduler>(std::uint64_t)> window_sched(int num_c) {
  return [num_c](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
    std::vector<int> arrival(static_cast<std::size_t>(num_c));
    for (int i = 0; i < num_c; ++i) arrival[static_cast<std::size_t>(i)] = i;
    std::uint64_t z = seed;
    for (int i = num_c - 1; i > 0; --i) {
      z = mix_seed(z, i);
      std::swap(arrival[static_cast<std::size_t>(i)],
                arrival[static_cast<std::size_t>(z % static_cast<std::uint64_t>(i + 1))]);
    }
    return std::make_unique<KConcurrencyScheduler>(1, std::move(arrival), 0);
  };
}

std::vector<CampaignTarget> build_targets() {
  std::vector<CampaignTarget> out;
  {
    CampaignTarget t;
    t.name = "cons";
    t.scenario = "cons_leader_crash_commit";
    t.algorithm = "leader consensus (Omega advice + Paxos)";
    t.num_s = 3;
    t.advice = [] { return std::make_shared<OmegaFd>(12); };
    t.make_sched = random_sched();
    t.max_steps = 12000;
    t.bounds = {800, 2500, 5000};
    t.expect_clean = true;
    t.space.num_s = 3;
    t.space.num_c = 3;
    t.space.horizon = 2500;
    t.space.max_crashes = 2;
    t.space.trigger_prefixes = {"cons/ACC"};
    t.space.allow_fd_faults = true;
    t.space.max_gst = 60;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 400;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "ksa";
    t.scenario = "ksa_starved_leader";
    t.algorithm = "k-set agreement (vector-Omega-k advice, KSA)";
    t.num_s = 4;
    t.advice = [] { return std::make_shared<VectorOmegaK>(2, 25); };
    t.make_sched = random_sched();
    t.max_steps = 12000;
    t.bounds = {1200, 2500, 5000};
    t.expect_clean = true;
    t.space.num_s = 4;
    t.space.num_c = 4;
    t.space.horizon = 2500;
    t.space.max_crashes = 2;
    t.space.trigger_prefixes = {"ksa/"};
    t.space.allow_fd_faults = true;
    t.space.max_gst = 60;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 400;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "ren";
    t.scenario = "renaming_flip_lockstep";
    t.algorithm = "k-concurrent renaming (Fig. 4)";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 8000;
    t.bounds = {600, 2000, 4000};
    t.expect_clean = true;
    t.space.num_s = 1;
    t.space.num_c = 3;
    t.space.horizon = 2000;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 300;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "p1c";
    t.scenario = "one_conc_window";
    t.algorithm = "generic 1-concurrent solver (Prop. 1) on consensus";
    t.num_s = 0;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = window_sched(3);
    t.max_steps = 2000;
    t.bounds = {64, 500, 500};
    t.expect_clean = true;
    t.space.num_s = 0;
    t.space.num_c = 3;
    t.space.horizon = 500;
    t.space.max_crashes = 0;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "synth";
    t.scenario = "synth_write_race";
    t.algorithm = "seeded bug: racing writers (shrinker reference)";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 2000;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 3;
    t.space.horizon = 1000;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 200;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "bcf";
    t.scenario = "buggy_cons_first_writer";
    t.algorithm = "seeded bug: first-writer consensus";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 1500;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 8;
    t.space.horizon = 500;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "brn";
    t.scenario = "buggy_ren_stale_claim";
    t.algorithm = "seeded bug: stale-claim renaming";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 1500;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 8;
    t.space.horizon = 500;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "tw";
    t.scenario = "buggy_torn_commit";
    t.algorithm = "seeded bug: torn A/B epoch commit";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 2000;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 4;
    t.space.horizon = 800;
    t.space.max_crashes = 1;
    t.space.trigger_prefixes = {"tw/A", "tw/B"};
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 150;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

const std::vector<CampaignTarget>& campaign_targets() {
  static const std::vector<CampaignTarget> targets = build_targets();
  return targets;
}

const CampaignTarget* find_campaign_target(const std::string& name) {
  for (const auto& t : campaign_targets()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

int CampaignRun::safety_violations() const {
  return static_cast<int>(std::count_if(violations.begin(), violations.end(),
                                        [](const CampaignViolation& v) { return v.safety; }));
}

int CampaignRun::wait_free_violations() const {
  return static_cast<int>(std::count_if(violations.begin(), violations.end(),
                                        [](const CampaignViolation& v) { return v.wait_free; }));
}

bool CampaignRun::verdict_ok() const {
  if (expect_clean) return violations.empty();
  return std::any_of(violations.begin(), violations.end(), [](const CampaignViolation& v) {
    return v.safety && (v.shrunk_steps == 0 || v.shrunk_replay_ok);
  });
}

CampaignRun run_campaign(const CampaignTarget& target, const CampaignOptions& opts) {
  const Scenario* sc = find_scenario(target.scenario);
  if (sc == nullptr) {
    throw std::invalid_argument("run_campaign: unknown scenario " + target.scenario);
  }
  if (!target.advice || !target.make_sched) {
    throw std::invalid_argument("run_campaign: target '" + target.name +
                                "' missing advice or scheduler factory");
  }

  CampaignRun run;
  run.target = target.name;
  run.scenario = target.scenario;
  run.algorithm = target.algorithm;
  run.expect_clean = target.expect_clean;
  run.plans = opts.plans;

  for (int i = 0; i < opts.plans; ++i) {
    const std::uint64_t plan_seed = mix_seed(opts.seed, i);
    const FaultPlan plan = FaultPlan::sample(plan_seed, target.space);
    if (plan.fd.kind != FdFaultKind::kNone) ++run.plans_with_fd_fault;
    if (!plan.storm.empty()) ++run.plans_with_storm;
    if (!plan.triggers.empty()) ++run.plans_with_trigger;
    if (!plan.bursts.empty()) ++run.plans_with_burst;

    const FailurePattern base(target.num_s);
    const DetectorPtr advice = plan.corrupt(target.advice());

    // Rehearsal: resolve the plan's S-kills (storm step indices, trigger
    // matches) into concrete crash TIMES over the base pattern.
    std::vector<std::optional<Time>> crash_at(static_cast<std::size_t>(target.num_s));
    if (!plan.storm.empty() || !plan.triggers.empty()) {
      World rehearsal = sc->make_world(base, advice->history(base, plan_seed));
      const auto inner = target.make_sched(plan_seed);
      BurstScheduler bursts(*inner, plan.bursts);
      const PlanDriveResult pdr = drive_with_plan(rehearsal, bursts, target.max_steps, plan);
      run.rehearsal_steps += pdr.drive.steps;
      int never_crashed = target.num_s;
      for (std::size_t k = 0; k < pdr.applied.size(); ++k) {
        const auto qi = static_cast<std::size_t>(pdr.applied[k].s_index);
        if (crash_at[qi]) continue;
        // Correct algorithms are only live while some S-process survives:
        // cap the kills there so a liveness violation is the ALGORITHM's.
        if (target.expect_clean && never_crashed <= 1) continue;
        crash_at[qi] = pdr.applied_at[k];
        --never_crashed;
      }
    }
    const FailurePattern eff(crash_at);

    // Authoritative run: honest advice recomputed over the EFFECTIVE
    // pattern, then plan-corrupted; bursts wrap the scheduler; the monitor
    // watches with plan-scaled bounds.
    const DetectorPtr eff_advice = plan.corrupt(target.advice());
    World w = sc->make_world(eff, eff_advice->history(eff, plan_seed));
    w.enable_trace();

    std::int64_t total_burst = 0;
    for (const auto& b : plan.bursts) total_burst += b.length;
    const Time stab = eff_advice->stabilization_time(eff);
    MonitorBounds mb;
    if (target.bounds.own_steps_to_decide > 0) {
      mb.own_steps_to_decide = target.bounds.own_steps_to_decide + 2 * stab + total_burst;
    }
    if (target.bounds.starvation_window > 0) {
      mb.starvation_window = target.bounds.starvation_window + total_burst;
    }
    if (target.bounds.livelock_window > 0) {
      mb.livelock_window = target.bounds.livelock_window + 4 * stab + 2 * total_burst;
    }
    LivenessMonitor monitor(mb);
    if (opts.monitors) w.attach_observer(&monitor);

    const auto inner = target.make_sched(plan_seed);
    BurstScheduler bursts(*inner, plan.bursts);
    RecordingScheduler rec(bursts);
    const DriveResult dr = drive(w, rec, target.max_steps);
    w.attach_observer(nullptr);
    if (opts.monitors) monitor.finalize(w);

    run.total_steps += dr.steps;
    run.monitored_steps += monitor.monitored_steps();
    run.max_own_steps_to_decide =
        std::max(run.max_own_steps_to_decide, monitor.max_own_steps_to_decide());
    for (const auto& v : monitor.violations()) {
      if (v.kind == MonitorViolation::Kind::kStarvation) ++run.starvation_observations;
    }

    const bool safety = sc->violated(w);
    const bool wait_free_bad = opts.monitors && !monitor.wait_free_ok();
    if (!safety && !wait_free_bad) {
      ++run.clean_plans;
      continue;
    }

    CampaignViolation viol;
    viol.target = target.name;
    viol.plan_seed = plan_seed;
    viol.plan = plan.to_string();
    viol.safety = safety;
    viol.wait_free = wait_free_bad;
    if (safety) {
      viol.detail = "scenario safety predicate violated";
    }
    if (wait_free_bad) {
      for (const auto& v : monitor.violations()) {
        if (v.kind == MonitorViolation::Kind::kWaitFree) {
          if (!viol.detail.empty()) viol.detail += "; ";
          viol.detail += v.to_string();
          break;
        }
      }
    }

    ScheduleTape tape = ScheduleTape::capture(target.scenario, eff, rec.steps(), {}, w.trace());
    tape.expect_violated = safety;
    tape.plan = plan.to_string();
    viol.tape_steps = static_cast<std::int64_t>(tape.steps.size());

    std::string stem;
    if (!opts.save_dir.empty()) {
      std::filesystem::create_directories(opts.save_dir);
      stem = opts.save_dir + "/" + target.name + "_" + std::to_string(plan_seed);
      save_tape(tape, stem + ".tape");
      viol.tape_path = stem + ".tape";
    }

    // Auto-shrink safety violations (the ddmin oracle is the scenario
    // predicate; wait-freedom-only findings have no tape-level oracle).
    if (opts.shrink && safety) {
      const TapePredicate still_fails = scenario_predicate(*sc, true);
      ScheduleTape mini = shrink_tape(tape, still_fails);
      const ScenarioReplayOutcome stamp = replay_in_scenario(*sc, mini);
      mini.expect_hash = stamp.replay.hash;
      mini.expect_violated = true;
      const ScenarioReplayOutcome again = replay_in_scenario(*sc, mini);
      viol.shrunk_steps = static_cast<std::int64_t>(mini.steps.size());
      viol.shrunk_replay_ok = again.replay.hash_match && again.violated;
      if (!stem.empty()) save_tape(mini, stem + ".min.tape");
    }
    run.violations.push_back(std::move(viol));
  }
  return run;
}

telemetry::Json campaign_json(const std::vector<CampaignRun>& runs, const CampaignOptions& opts) {
  using telemetry::Json;
  Json doc = Json::object();
  doc["schema"] = Json("efd-campaign-v1");
  doc["experiment"] = Json("campaign");
  doc["git"] = Json(telemetry::git_describe());
  doc["seed"] = Json(static_cast<std::int64_t>(opts.seed));
  doc["plans_per_target"] = Json(opts.plans);
  doc["monitors"] = Json(opts.monitors);
  Json targets = Json::array();
  for (const auto& r : runs) {
    Json t = Json::object();
    t["target"] = Json(r.target);
    t["scenario"] = Json(r.scenario);
    t["algorithm"] = Json(r.algorithm);
    t["expect_clean"] = Json(r.expect_clean);
    t["verdict_ok"] = Json(r.verdict_ok());
    t["plans"] = Json(r.plans);
    t["clean_plans"] = Json(r.clean_plans);
    t["violations"] = Json(static_cast<std::int64_t>(r.violations.size()));
    t["safety_violations"] = Json(r.safety_violations());
    t["wait_free_violations"] = Json(r.wait_free_violations());
    t["starvation_observations"] = Json(r.starvation_observations);
    Json mix = Json::object();
    mix["fd_fault"] = Json(r.plans_with_fd_fault);
    mix["storm"] = Json(r.plans_with_storm);
    mix["trigger"] = Json(r.plans_with_trigger);
    mix["burst"] = Json(r.plans_with_burst);
    t["plan_mix"] = std::move(mix);
    t["total_steps"] = Json(r.total_steps);
    t["rehearsal_steps"] = Json(r.rehearsal_steps);
    t["monitored_steps"] = Json(r.monitored_steps);
    t["max_own_steps_to_decide"] = Json(r.max_own_steps_to_decide);
    Json viols = Json::array();
    for (const auto& v : r.violations) {
      Json e = Json::object();
      e["plan_seed"] = Json(static_cast<std::int64_t>(v.plan_seed));
      e["plan"] = Json(v.plan);
      e["safety"] = Json(v.safety);
      e["wait_free"] = Json(v.wait_free);
      e["detail"] = Json(v.detail);
      e["tape_steps"] = Json(v.tape_steps);
      e["shrunk_steps"] = Json(v.shrunk_steps);
      e["shrunk_replay_ok"] = Json(v.shrunk_replay_ok);
      e["tape"] = Json(v.tape_path);
      viols.push_back(std::move(e));
    }
    t["violation_list"] = std::move(viols);
    targets.push_back(std::move(t));
  }
  doc["targets"] = std::move(targets);
  return doc;
}

}  // namespace efd
